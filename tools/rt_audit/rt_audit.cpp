/**
 * @file
 * qec-rt-audit — static real-time contract auditor.
 *
 * Proves, over the compiled artifacts, that no QEC_REALTIME-
 * annotated hot-path root (src/qec/util/realtime.hpp) can reach a
 * forbidden operation — allocation, locking, clock reads, throws,
 * I/O, process exit, or nondeterminism — through any direct call
 * chain. The dynamic suites (counting allocator, TSan/UBSan) catch
 * a violation only when a test happens to execute the offending
 * path; this pass closes the rest of the call graph at build time.
 *
 * Pipeline:
 *  1. Parse compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS)
 *     and keep every object whose source path matches a --filter.
 *  2. `objdump -t` each object for its symbol table (globals,
 *     locals, per-section function extents).
 *  3. `objdump -dr` each object; every relocation inside a
 *     function body becomes a call-graph edge. Section+offset
 *     relocations (static / cold-part functions) are resolved back
 *     to the containing symbol through the extents from step 2.
 *  4. Roots are the functions whose bodies relocate against
 *     qec_rt_root_anchor (the QEC_REALTIME marker).
 *  5. BFS from every root. Edges into denylisted symbols are
 *     violations (reported with the full chain); edges matching an
 *     allowlist pattern stop traversal and are recorded as
 *     exemptions; undefined symbols in the builtin safe list are
 *     leaves; other undefined symbols are "unknown externals"
 *     (policy set by --unknown).
 *
 * Honest-limitation notes (see docs/static_analysis.md): virtual
 * and function-pointer calls carry no relocation, so polymorphic
 * hot paths are closed by annotating every override (enforced
 * socially by review plus --baseline, which fails when the audited
 * root set shrinks). Address-taken functions do produce
 * relocations and are traversed conservatively as calls.
 */

#include <cxxabi.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace
{

// ---------------------------------------------------------------
// Policy tables
// ---------------------------------------------------------------

struct DenyRule
{
    const char *cls;  //!< Violation class (alloc, lock, clock, ...).
    const char *glob; //!< Glob over the mangled symbol name.
};

// The real-time denylist. Matched against the *target* symbol of
// every traversed edge, by mangled name.
const DenyRule kDenylist[] = {
    // -- alloc: any heap traffic outside the workspace discipline.
    {"alloc", "_Znwm*"},          // operator new
    {"alloc", "_Znam*"},          // operator new[]
    {"alloc", "_Znwj*"},
    {"alloc", "_Znaj*"},
    {"alloc", "_ZdlPv*"},         // operator delete
    {"alloc", "_ZdaPv*"},         // operator delete[]
    {"alloc", "malloc"},
    {"alloc", "calloc"},
    {"alloc", "realloc"},
    {"alloc", "reallocarray"},
    {"alloc", "free"},
    {"alloc", "cfree"},
    {"alloc", "posix_memalign"},
    {"alloc", "aligned_alloc"},
    {"alloc", "memalign"},
    {"alloc", "pvalloc"},
    {"alloc", "valloc"},
    {"alloc", "strdup"},
    {"alloc", "strndup"},
    {"alloc", "asprintf"},
    // -- lock: blocking synchronization and one-time-init guards.
    {"lock", "pthread_mutex_*"},
    {"lock", "pthread_rwlock_*"},
    {"lock", "pthread_cond_*"},
    {"lock", "pthread_spin_*"},
    {"lock", "pthread_barrier_*"},
    {"lock", "sem_wait"},
    {"lock", "sem_timedwait"},
    {"lock", "sem_trywait"},
    {"lock", "sem_post"},
    {"lock", "__cxa_guard_acquire"},
    {"lock", "__cxa_guard_release"},
    {"lock", "__cxa_guard_abort"},
    {"lock", "_ZSt9call_once*"},
    {"lock", "futex*"},
    // -- clock: wall/steady time reads and sleeps. Inject a
    //    qec::TimeSource instead; its virtual dispatch keeps the
    //    syscall off the static hot-path graph by construction.
    {"clock", "clock_gettime*"},
    {"clock", "clock_getres*"},
    {"clock", "gettimeofday"},
    {"clock", "time"},
    {"clock", "clock"},
    {"clock", "timespec_get"},
    {"clock", "_ZNSt6chrono3_V212steady_clock3nowEv"},
    {"clock", "_ZNSt6chrono3_V212system_clock3nowEv"},
    {"clock", "_ZNSt6chrono*3nowEv"},
    {"clock", "nanosleep"},
    {"clock", "clock_nanosleep"},
    {"clock", "usleep"},
    {"clock", "sleep"},
    {"clock", "_ZNSt11this_thread*sleep*"},
    {"clock", "_ZNSt11this_thread11__sleep_for*"},
    // -- throw: exception unwinding initiation (catching/cleanup
    //    landing pads are passive and stay off the denylist).
    {"throw", "__cxa_throw"},
    {"throw", "__cxa_allocate_exception"},
    {"throw", "__cxa_rethrow"},
    {"throw", "_ZSt*__throw_*"},
    {"throw", "_ZSt9terminatev"},
    {"throw", "_ZSt17rethrow_exception*"},
    // -- io: streams, stdio and raw fd traffic (the sanctioned
    //    noreturn panic funnel qec::qecPanic is allowlisted).
    {"io", "printf"},
    {"io", "fprintf"},
    {"io", "vfprintf"},
    {"io", "sprintf"},
    {"io", "snprintf"},
    {"io", "vsnprintf"},
    {"io", "puts"},
    {"io", "fputs"},
    {"io", "fputc"},
    {"io", "putchar"},
    {"io", "fwrite"},
    {"io", "fread"},
    {"io", "fflush"},
    {"io", "write"},
    {"io", "read"},
    {"io", "open"},
    {"io", "open64"},
    {"io", "close"},
    {"io", "fopen"},
    {"io", "fopen64"},
    {"io", "fclose"},
    {"io", "_ZSt4cout"},
    {"io", "_ZSt4cerr"},
    {"io", "_ZSt4clog"},
    {"io", "_ZSt4endl*"},
    {"io", "_ZNSo*"},  // std::basic_ostream<char> members
    {"io", "_ZNSi*"},  // std::basic_istream<char> members
    {"io", "_ZStlsISt11char_traits*"},
    {"io", "_ZStrsISt11char_traits*"},
    // -- rand: nondeterminism sources. Hot paths draw from the
    //    counter-based qec::Rng streams only.
    {"rand", "rand"},
    {"rand", "rand_r"},
    {"rand", "random"},
    {"rand", "random_r"},
    {"rand", "srand"},
    {"rand", "srandom"},
    {"rand", "drand48"},
    {"rand", "lrand48"},
    {"rand", "_ZNSt13random_device*"},
    {"rand", "getrandom"},
    {"rand", "getentropy"},
    // -- term: process exit. Invariant failures go through
    //    QEC_PANIC (abort is a permitted leaf); stray exit() on a
    //    hot path is a config-validation call that belongs at
    //    construction time.
    {"term", "exit"},
    {"term", "_exit"},
    {"term", "_Exit"},
    {"term", "quick_exit"},
    {"term", "abort_message"},
};

// Undefined symbols that are always acceptable leaves: memory/str
// intrinsics, math, unwinding bookkeeping, libgcc helpers.
const char *const kSafeExternals[] = {
    "memcpy", "memset", "memmove", "memcmp", "bcmp", "memchr",
    "strlen", "strcmp", "strncmp", "strchr", "strrchr",
    "abort", "__assert_fail", "__stack_chk_fail",
    "_Unwind_Resume", "__gxx_personality_v0",
    "__cxa_begin_catch", "__cxa_end_catch", "__cxa_pure_virtual",
    "__cxa_deleted_virtual", "__cxa_atexit", "atexit",
    "__dso_handle", "__errno_location", "sched_yield",
    "pthread_self",
    "sqrt", "sqrtf", "cbrt", "exp", "expf", "exp2", "exp2f",
    "log", "logf", "log2", "log2f", "log10", "log1p", "log1pf",
    "pow", "powf", "floor", "floorf", "ceil", "ceilf", "round",
    "roundf", "trunc", "truncf", "lround", "llround", "fmod",
    "fmodf", "fabs", "fabsf", "fmin", "fmax", "hypot", "atan2",
    "sin", "cos", "tan", "asin", "acos", "atan", "sinh", "cosh",
    "tanh", "erf", "erfc", "lgamma", "tgamma", "nextafter",
    "nextafterf",
    "__divti3", "__udivti3", "__modti3", "__umodti3", "__multi3",
    "__popcountdi2", "__clzdi2", "__ctzdi2",
};

// The QEC_REALTIME marker symbol (see src/qec/util/realtime.hpp).
const char kAnchor[] = "qec_rt_root_anchor";

// ---------------------------------------------------------------
// Small utilities
// ---------------------------------------------------------------

bool
globMatch(const char *pat, const char *str)
{
    // Iterative glob with '*' backtracking; '?' matches one char.
    const char *star = nullptr;
    const char *starStr = nullptr;
    while (*str) {
        if (*pat == *str || *pat == '?') {
            ++pat;
            ++str;
        } else if (*pat == '*') {
            star = pat++;
            starStr = str;
        } else if (star) {
            pat = star + 1;
            str = ++starStr;
        } else {
            return false;
        }
    }
    while (*pat == '*') {
        ++pat;
    }
    return *pat == '\0';
}

std::string
demangle(const std::string &name)
{
    int status = 0;
    char *out = abi::__cxa_demangle(name.c_str(), nullptr, nullptr,
                                    &status);
    if (status != 0 || out == nullptr) {
        std::free(out);
        return name;
    }
    std::string result(out);
    std::free(out);
    return result;
}

std::string
runCommand(const std::string &cmd, bool *ok)
{
    std::string out;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
        *ok = false;
        return out;
    }
    char buf[1 << 16];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
        out.append(buf, n);
    }
    *ok = pclose(pipe) == 0;
    return out;
}

std::string
shellQuote(const std::string &path)
{
    std::string quoted = "'";
    for (char c : path) {
        if (c == '\'') {
            quoted += "'\\''";
        } else {
            quoted += c;
        }
    }
    quoted += "'";
    return quoted;
}

// ---------------------------------------------------------------
// compile_commands.json → object file list
// ---------------------------------------------------------------

/** One compile entry: the fields rt-audit needs. */
struct CompileEntry
{
    std::string directory;
    std::string file;
    std::string object;
};

std::string
decodeJsonString(const std::string &text, size_t &pos)
{
    // pos points at the opening quote; returns the decoded string
    // and leaves pos after the closing quote.
    std::string out;
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
        char c = text[pos];
        if (c == '\\' && pos + 1 < text.size()) {
            char esc = text[pos + 1];
            switch (esc) {
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u':
                // Paths never need non-ASCII here; keep the
                // escape verbatim rather than decoding UTF-16.
                out += "\\u";
                pos += 1;
                break;
            default: out += esc; break;
            }
            pos += 2;
        } else {
            out += c;
            ++pos;
        }
    }
    ++pos;
    return out;
}

std::vector<CompileEntry>
parseCompileCommands(const std::string &path, std::string *err)
{
    std::vector<CompileEntry> entries;
    std::ifstream in(path);
    if (!in) {
        *err = "cannot open " + path;
        return entries;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    size_t pos = 0;
    int depth = 0;
    CompileEntry current;
    std::string command;
    std::string arguments; // space-joined "arguments" array form
    bool inArguments = false;
    while (pos < text.size()) {
        char c = text[pos];
        if (c == '"') {
            std::string key = decodeJsonString(text, pos);
            if (depth == 1 && !inArguments) {
                // Expect  "key" : <value>
                size_t colon = text.find_first_not_of(" \t\n\r",
                                                      pos);
                if (colon == std::string::npos ||
                    text[colon] != ':') {
                    continue;
                }
                size_t valueStart = text.find_first_not_of(
                    " \t\n\r", colon + 1);
                if (valueStart == std::string::npos) {
                    continue;
                }
                if (text[valueStart] == '"') {
                    pos = valueStart;
                    std::string value = decodeJsonString(text, pos);
                    if (key == "directory") {
                        current.directory = value;
                    } else if (key == "file") {
                        current.file = value;
                    } else if (key == "output") {
                        current.object = value;
                    } else if (key == "command") {
                        command = value;
                    }
                } else if (text[valueStart] == '[' &&
                           key == "arguments") {
                    inArguments = true;
                    pos = valueStart + 1;
                }
            } else if (inArguments) {
                if (!arguments.empty()) {
                    arguments += ' ';
                }
                arguments += key;
            }
            continue;
        }
        if (c == '{') {
            ++depth;
            if (depth == 1) {
                current = CompileEntry();
                command.clear();
                arguments.clear();
            }
        } else if (c == '}') {
            if (depth == 1) {
                if (current.object.empty()) {
                    // Derive from the -o argument of the command.
                    const std::string &src =
                        command.empty() ? arguments : command;
                    size_t o = 0;
                    while ((o = src.find("-o", o)) !=
                           std::string::npos) {
                        if ((o == 0 || src[o - 1] == ' ') &&
                            o + 2 < src.size() &&
                            src[o + 2] == ' ') {
                            size_t start = src.find_first_not_of(
                                ' ', o + 2);
                            size_t end = src.find(' ', start);
                            current.object = src.substr(
                                start, end == std::string::npos
                                           ? std::string::npos
                                           : end - start);
                            break;
                        }
                        o += 2;
                    }
                }
                if (!current.object.empty()) {
                    if (current.object[0] != '/') {
                        current.object = current.directory + "/" +
                                         current.object;
                    }
                    entries.push_back(current);
                }
            }
            --depth;
        } else if (c == ']' && inArguments) {
            inArguments = false;
        }
        ++pos;
    }
    if (entries.empty()) {
        *err = "no compile entries found in " + path;
    }
    return entries;
}

// ---------------------------------------------------------------
// Object file parsing (objdump -t / objdump -dr)
// ---------------------------------------------------------------

/** A defined function symbol inside one object. */
struct FuncSym
{
    std::string name;
    std::string section;
    uint64_t value = 0;
    uint64_t size = 0;
    bool global = false;
};

struct ObjectInfo
{
    std::string path;
    std::vector<FuncSym> funcs;
    // section → indices into funcs, sorted by value (extent map
    // for resolving section+offset relocations).
    std::map<std::string, std::vector<size_t>> bySection;
    std::unordered_set<std::string> localNames;
};

bool
parseSymtab(ObjectInfo &obj, std::string *err)
{
    bool ok = false;
    const std::string out = runCommand(
        "objdump -t " + shellQuote(obj.path) + " 2>/dev/null", &ok);
    if (!ok) {
        *err = "objdump -t failed on " + obj.path;
        return false;
    }
    std::istringstream lines(out);
    std::string line;
    while (std::getline(lines, line)) {
        // Format: VALUE(16 hex) space FLAGS(7 chars) space SECTION
        //         space SIZE space NAME
        if (line.size() < 26 || !isxdigit(line[0])) {
            continue;
        }
        const uint64_t value =
            std::strtoull(line.substr(0, 16).c_str(), nullptr, 16);
        const std::string flags = line.substr(17, 7);
        const bool isFunc = flags.find('F') != std::string::npos;
        const bool global = flags[0] == 'g' || flags[0] == 'u' ||
                            flags[1] == 'w';
        std::istringstream rest(line.substr(25));
        std::string section, sizeHex, name;
        rest >> section >> sizeHex >> name;
        if (name.empty() || section == "*UND*" ||
            section == "*ABS*") {
            continue;
        }
        if (!isFunc) {
            // Track local data names too? Only function extents
            // matter for edge resolution; skip.
            continue;
        }
        FuncSym sym;
        sym.name = name;
        sym.section = section;
        sym.value = value;
        sym.size = std::strtoull(sizeHex.c_str(), nullptr, 16);
        sym.global = global;
        if (!global) {
            obj.localNames.insert(name);
        }
        obj.funcs.push_back(std::move(sym));
    }
    for (size_t i = 0; i < obj.funcs.size(); ++i) {
        obj.bySection[obj.funcs[i].section].push_back(i);
    }
    for (auto &entry : obj.bySection) {
        std::sort(entry.second.begin(), entry.second.end(),
                  [&](size_t a, size_t b) {
                      return obj.funcs[a].value <
                             obj.funcs[b].value;
                  });
    }
    return true;
}

// ---------------------------------------------------------------
// Call graph
// ---------------------------------------------------------------

struct Node
{
    std::string mangled;
    int object = -1;    //!< Defining object (-1: undefined/external).
    bool local = false; //!< Static / internal linkage.
    bool root = false;  //!< Carries the QEC_REALTIME marker.
    std::vector<int> edges;
};

class CallGraph
{
  public:
    int
    internNode(const std::string &name, int object, bool local)
    {
        const std::string key =
            local ? name + "@" + std::to_string(object) : name;
        auto it = index_.find(key);
        if (it != index_.end()) {
            return it->second;
        }
        const int id = static_cast<int>(nodes_.size());
        index_.emplace(key, id);
        Node node;
        node.mangled = name;
        node.object = object;
        node.local = local;
        nodes_.push_back(std::move(node));
        return id;
    }

    /** Global lookup without creating (external references). */
    int
    findGlobal(const std::string &name) const
    {
        auto it = index_.find(name);
        return it == index_.end() ? -1 : it->second;
    }

    void
    addEdge(int from, int to)
    {
        if (from < 0 || to < 0 || from == to) {
            return;
        }
        nodes_[from].edges.push_back(to);
    }

    void
    markDefined(int id, int object)
    {
        if (nodes_[id].object < 0) {
            nodes_[id].object = object;
        }
    }

    Node &node(int id) { return nodes_[id]; }
    const Node &node(int id) const { return nodes_[id]; }
    size_t size() const { return nodes_.size(); }

    void
    dedupEdges()
    {
        for (Node &n : nodes_) {
            std::sort(n.edges.begin(), n.edges.end());
            n.edges.erase(
                std::unique(n.edges.begin(), n.edges.end()),
                n.edges.end());
        }
    }

  private:
    std::vector<Node> nodes_;
    std::unordered_map<std::string, int> index_;
};

/** Resolve a section+offset reloc to the containing function. */
int
resolveSectionTarget(const ObjectInfo &obj, const CallGraph &graph,
                     CallGraph &mutableGraph,
                     const std::string &section, uint64_t offset,
                     int objIndex)
{
    (void)graph;
    auto it = obj.bySection.find(section);
    if (it == obj.bySection.end()) {
        return -1; // Data section or no function symbols: ignore.
    }
    // Last symbol with value <= offset whose extent covers it (zero
    // sized symbols cover until the next symbol).
    const std::vector<size_t> &syms = it->second;
    int best = -1;
    for (size_t idx : syms) {
        const FuncSym &sym = obj.funcs[idx];
        if (sym.value > offset) {
            break;
        }
        if (sym.size == 0 || offset < sym.value + sym.size) {
            best = static_cast<int>(idx);
        }
    }
    if (best < 0) {
        return -1;
    }
    const FuncSym &sym = obj.funcs[static_cast<size_t>(best)];
    return mutableGraph.internNode(sym.name, objIndex, !sym.global);
}

bool
parseDisassembly(ObjectInfo &obj, int objIndex, CallGraph &graph,
                 std::string *err)
{
    bool ok = false;
    const std::string out = runCommand(
        "objdump -dr " + shellQuote(obj.path) + " 2>/dev/null",
        &ok);
    if (!ok) {
        *err = "objdump -dr failed on " + obj.path;
        return false;
    }
    std::istringstream lines(out);
    std::string line;
    int current = -1;
    while (std::getline(lines, line)) {
        // Function label:  0000000000000000 <mangled>:
        if (!line.empty() && isxdigit(line[0])) {
            const size_t open = line.find('<');
            if (open != std::string::npos &&
                line.back() == ':') {
                const size_t close = line.rfind('>');
                if (close != std::string::npos && close > open) {
                    const std::string name = line.substr(
                        open + 1, close - open - 1);
                    const bool local = obj.localNames.count(name) >
                                       0;
                    current = graph.internNode(name, objIndex,
                                               local);
                    graph.markDefined(current, objIndex);
                    continue;
                }
            }
        }
        // Relocation line:  OFFSET: R_X86_64_TYPE\tTARGET[+-addend]
        const size_t rel = line.find("R_X86_64_");
        if (rel == std::string::npos || current < 0) {
            continue;
        }
        size_t tgt = line.find_first_of(" \t", rel);
        if (tgt == std::string::npos) {
            continue;
        }
        tgt = line.find_first_not_of(" \t", tgt);
        if (tgt == std::string::npos) {
            continue;
        }
        std::string target = line.substr(tgt);
        while (!target.empty() &&
               (target.back() == '\r' || target.back() == ' ')) {
            target.pop_back();
        }
        // Strip the addend (+0x... / -0x...). Careful: symbol
        // names never contain '+'; '-' only appears in the addend
        // suffix form "-0x".
        size_t plus = target.rfind("+0x");
        size_t minus = target.rfind("-0x");
        uint64_t addend = 0;
        bool negAddend = false;
        size_t cut = std::string::npos;
        if (plus != std::string::npos &&
            (minus == std::string::npos || plus > minus)) {
            cut = plus;
            addend = std::strtoull(target.c_str() + plus + 1,
                                   nullptr, 16);
        } else if (minus != std::string::npos) {
            cut = minus;
            addend = std::strtoull(target.c_str() + minus + 1,
                                   nullptr, 16);
            negAddend = true;
        }
        if (cut != std::string::npos) {
            target = target.substr(0, cut);
        }
        if (target.empty()) {
            continue;
        }
        int to = -1;
        if (target[0] == '.') {
            // Section-relative: resolve through function extents.
            // PC-relative relocs (PC32/PLT32) store target - 4 as
            // the addend — the fixup is relative to the *next*
            // instruction — so the real branch target is addend + 4.
            // Without the bias, a jump to a cold clone's first byte
            // resolves one-past-the-end of the *previous* clone in
            // the section, fabricating cross-function edges (e.g.
            // workerLoop -> drain.cold). Absolute relocs (64/32S,
            // jump tables) carry the plain offset. A -0x4 addend is
            // a PC-relative branch to the section start: offset 0.
            const size_t typeEnd =
                line.find_first_of(" \t", rel);
            const std::string relType = line.substr(
                rel, typeEnd == std::string::npos
                         ? std::string::npos
                         : typeEnd - rel);
            const bool pcRel = relType == "R_X86_64_PC32" ||
                               relType == "R_X86_64_PLT32";
            const uint64_t bias = pcRel ? 4 : 0;
            const uint64_t offset =
                negAddend ? (addend <= bias ? bias - addend : 0)
                          : addend + bias;
            to = resolveSectionTarget(obj, graph, graph,
                                      target, offset, objIndex);
            if (to < 0) {
                continue; // Data reference: not a call edge.
            }
        } else {
            const bool local = obj.localNames.count(target) > 0;
            to = graph.internNode(target, local ? objIndex : -1,
                                  local);
        }
        graph.addEdge(current, to);
    }
    return true;
}

// ---------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------

struct AllowEntry
{
    std::string glob;
    std::string reason;
    int hits = 0;
};

bool
loadAllowlist(const std::string &path,
              std::vector<AllowEntry> &allow, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        *err = "cannot open allowlist " + path;
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        const size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#') {
            continue;
        }
        const size_t end = line.find_first_of(" \t", start);
        AllowEntry entry;
        entry.glob = line.substr(start, end - start);
        if (end != std::string::npos) {
            const size_t reason = line.find_first_not_of(" \t",
                                                         end);
            if (reason != std::string::npos) {
                entry.reason = line.substr(reason);
            }
        }
        allow.push_back(std::move(entry));
    }
    return true;
}

// ---------------------------------------------------------------
// Audit
// ---------------------------------------------------------------

struct Violation
{
    std::string cls;
    int root;
    int denied;
    std::vector<int> chain; // root .. caller, then denied target.
};

struct Options
{
    std::string compileCommands;
    std::vector<std::string> filters;
    std::string allowPath;
    std::string baselinePath;
    std::string writeBaselinePath;
    std::string reportPath;
    int requireRoots = 0;
    enum { kIgnore, kWarn, kError } unknownPolicy = kWarn;
    bool verbose = false;
};

const char *
denyClass(const std::string &name)
{
    for (const DenyRule &rule : kDenylist) {
        if (globMatch(rule.glob, name.c_str())) {
            return rule.cls;
        }
    }
    return nullptr;
}

bool
isSafeExternal(const std::string &name)
{
    for (const char *safe : kSafeExternals) {
        if (name == safe) {
            return true;
        }
    }
    // RTTI / vtable data referenced from landing pads and
    // constructors: address-only, never a call.
    return name.rfind("_ZTI", 0) == 0 ||
           name.rfind("_ZTV", 0) == 0 ||
           name.rfind("_ZTS", 0) == 0 ||
           name.rfind("_ZTT", 0) == 0;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --compile-commands <json> [options]\n"
        "  --filter <substr>       audit objects whose source path"
        " contains <substr>\n"
        "                          (repeatable; default src/qec/)\n"
        "  --allow <file>          allowlist of exempted edge"
        " targets (glob + reason)\n"
        "  --baseline <file>       fail if any listed root symbol"
        " is no longer audited\n"
        "  --write-baseline <file> write the current root symbol"
        " list and exit\n"
        "  --report <file>         write the full call-graph"
        " report\n"
        "  --require-roots <n>     fail when fewer than n roots"
        " are found\n"
        "  --unknown <policy>      ignore|warn|error for"
        " unclassified externals\n"
        "  --verbose               log per-object progress\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "rt-audit: %s needs a value\n",
                             what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--compile-commands") {
            opt.compileCommands = next("--compile-commands");
        } else if (arg == "--filter") {
            opt.filters.push_back(next("--filter"));
        } else if (arg == "--allow") {
            opt.allowPath = next("--allow");
        } else if (arg == "--baseline") {
            opt.baselinePath = next("--baseline");
        } else if (arg == "--write-baseline") {
            opt.writeBaselinePath = next("--write-baseline");
        } else if (arg == "--report") {
            opt.reportPath = next("--report");
        } else if (arg == "--require-roots") {
            opt.requireRoots = std::atoi(next("--require-roots"));
        } else if (arg == "--unknown") {
            const std::string policy = next("--unknown");
            if (policy == "ignore") {
                opt.unknownPolicy = Options::kIgnore;
            } else if (policy == "warn") {
                opt.unknownPolicy = Options::kWarn;
            } else if (policy == "error") {
                opt.unknownPolicy = Options::kError;
            } else {
                return usage(argv[0]);
            }
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (opt.compileCommands.empty()) {
        return usage(argv[0]);
    }
    if (opt.filters.empty()) {
        opt.filters.push_back("src/qec/");
    }

    std::string err;
    std::vector<CompileEntry> entries =
        parseCompileCommands(opt.compileCommands, &err);
    if (entries.empty()) {
        std::fprintf(stderr, "rt-audit: %s\n", err.c_str());
        return 2;
    }

    std::vector<ObjectInfo> objects;
    for (const CompileEntry &entry : entries) {
        bool wanted = false;
        for (const std::string &f : opt.filters) {
            if (entry.file.find(f) != std::string::npos) {
                wanted = true;
                break;
            }
        }
        if (!wanted) {
            continue;
        }
        ObjectInfo obj;
        obj.path = entry.object;
        objects.push_back(std::move(obj));
    }
    if (objects.empty()) {
        std::fprintf(stderr,
                     "rt-audit: no objects matched the filters\n");
        return 2;
    }

    CallGraph graph;
    for (size_t i = 0; i < objects.size(); ++i) {
        if (opt.verbose) {
            std::fprintf(stderr, "rt-audit: parsing %s\n",
                         objects[i].path.c_str());
        }
        if (!parseSymtab(objects[i], &err) ||
            !parseDisassembly(objects[i], static_cast<int>(i),
                              graph, &err)) {
            std::fprintf(stderr, "rt-audit: %s\n", err.c_str());
            return 2;
        }
    }
    graph.dedupEdges();

    // Roots: functions with an edge to the anchor.
    const int anchorId = graph.findGlobal(kAnchor);
    std::vector<int> roots;
    if (anchorId >= 0) {
        for (size_t id = 0; id < graph.size(); ++id) {
            Node &n = graph.node(static_cast<int>(id));
            if (std::find(n.edges.begin(), n.edges.end(),
                          anchorId) != n.edges.end()) {
                n.root = true;
                roots.push_back(static_cast<int>(id));
            }
        }
    }
    std::sort(roots.begin(), roots.end(), [&](int a, int b) {
        return graph.node(a).mangled < graph.node(b).mangled;
    });

    if (!opt.writeBaselinePath.empty()) {
        std::ofstream out(opt.writeBaselinePath);
        if (!out) {
            std::fprintf(stderr,
                         "rt-audit: cannot write baseline %s\n",
                         opt.writeBaselinePath.c_str());
            return 2;
        }
        out << "# qec-rt-audit root baseline — one mangled symbol"
               " per line.\n"
            << "# Regenerate with: qec-rt-audit ..."
               " --write-baseline <this file>\n"
            << "# CI fails when a listed root is no longer"
               " annotated (dropped QEC_REALTIME).\n";
        for (int root : roots) {
            out << graph.node(root).mangled << "\n";
        }
        std::printf("rt-audit: wrote %zu roots to %s\n",
                    roots.size(),
                    opt.writeBaselinePath.c_str());
        return 0;
    }

    std::vector<AllowEntry> allow;
    if (!opt.allowPath.empty() &&
        !loadAllowlist(opt.allowPath, allow, &err)) {
        std::fprintf(stderr, "rt-audit: %s\n", err.c_str());
        return 2;
    }

    // BFS from every root.
    std::vector<Violation> violations;
    std::vector<std::string> exemptLines;
    std::set<std::pair<int, int>> unknownEdges;
    std::unordered_set<std::string> reachable;
    auto allowMatch = [&](const std::string &name) -> AllowEntry * {
        for (AllowEntry &entry : allow) {
            if (globMatch(entry.glob.c_str(), name.c_str())) {
                return &entry;
            }
        }
        return nullptr;
    };

    for (int root : roots) {
        std::unordered_map<int, int> parent; // node → caller
        std::deque<int> queue;
        std::set<int> reported; // denied nodes already reported
        parent[root] = -1;
        queue.push_back(root);
        while (!queue.empty()) {
            const int id = queue.front();
            queue.pop_front();
            reachable.insert(graph.node(id).mangled);
            for (int to : graph.node(id).edges) {
                if (to == anchorId) {
                    continue;
                }
                const Node &target = graph.node(to);
                const char *cls = denyClass(target.mangled);
                if (cls != nullptr) {
                    AllowEntry *entry =
                        allowMatch(target.mangled);
                    if (entry != nullptr) {
                        ++entry->hits;
                        exemptLines.push_back(
                            "EXEMPT pattern=" + entry->glob +
                            " edge: " +
                            demangle(graph.node(id).mangled) +
                            " -> " + demangle(target.mangled));
                        continue;
                    }
                    if (reported.insert(to).second) {
                        Violation v;
                        v.cls = cls;
                        v.root = root;
                        v.denied = to;
                        for (int at = id; at != -1;
                             at = parent[at]) {
                            v.chain.push_back(at);
                        }
                        std::reverse(v.chain.begin(),
                                     v.chain.end());
                        v.chain.push_back(to);
                        violations.push_back(std::move(v));
                    }
                    continue;
                }
                AllowEntry *entry = allowMatch(target.mangled);
                if (entry != nullptr) {
                    ++entry->hits;
                    exemptLines.push_back(
                        "EXEMPT pattern=" + entry->glob +
                        " edge: " +
                        demangle(graph.node(id).mangled) +
                        " -> " + demangle(target.mangled));
                    continue;
                }
                if (target.object < 0) {
                    // Undefined external, not denied/allowed.
                    if (!isSafeExternal(target.mangled)) {
                        unknownEdges.emplace(id, to);
                    }
                    continue;
                }
                if (parent.emplace(to, id).second) {
                    queue.push_back(to);
                }
            }
        }
    }

    // ---- Output ------------------------------------------------
    std::ostringstream report;
    report << "qec-rt-audit report\n"
           << "===================\n"
           << "objects audited: " << objects.size() << "\n"
           << "graph nodes:     " << graph.size() << "\n"
           << "roots:           " << roots.size() << "\n"
           << "reachable fns:   " << reachable.size() << "\n\n"
           << "Roots (QEC_REALTIME):\n";
    for (int root : roots) {
        report << "  ROOT " << graph.node(root).mangled << "  # "
               << demangle(graph.node(root).mangled) << "\n";
    }
    report << "\n";

    for (const Violation &v : violations) {
        std::string line = "VIOLATION class=" + v.cls +
                           " root=\"" +
                           demangle(graph.node(v.root).mangled) +
                           "\" denied=\"" +
                           demangle(graph.node(v.denied).mangled) +
                           "\" chain: ";
        for (size_t i = 0; i < v.chain.size(); ++i) {
            if (i > 0) {
                line += " -> ";
            }
            line += demangle(graph.node(v.chain[i]).mangled);
        }
        std::printf("%s\n", line.c_str());
        report << line << "\n";
    }

    std::sort(exemptLines.begin(), exemptLines.end());
    exemptLines.erase(std::unique(exemptLines.begin(),
                                  exemptLines.end()),
                      exemptLines.end());
    report << "\nExemptions (" << exemptLines.size() << "):\n";
    for (const std::string &line : exemptLines) {
        report << "  " << line << "\n";
    }

    bool staleAllow = false;
    for (const AllowEntry &entry : allow) {
        if (entry.hits == 0) {
            staleAllow = true;
            std::printf("STALE allowlist pattern=%s (matched no"
                        " edge; remove or fix it)\n",
                        entry.glob.c_str());
            report << "STALE allowlist pattern=" << entry.glob
                   << "\n";
        }
    }

    report << "\nUnknown externals (" << unknownEdges.size()
           << "):\n";
    for (const auto &edge : unknownEdges) {
        const std::string line =
            "UNKNOWN " + demangle(graph.node(edge.first).mangled) +
            " -> " + demangle(graph.node(edge.second).mangled);
        if (opt.unknownPolicy != Options::kIgnore) {
            std::printf("%s\n", line.c_str());
        }
        report << "  " << line << "\n";
    }

    bool baselineMissing = false;
    if (!opt.baselinePath.empty()) {
        std::ifstream in(opt.baselinePath);
        if (!in) {
            std::fprintf(stderr,
                         "rt-audit: cannot open baseline %s\n",
                         opt.baselinePath.c_str());
            return 2;
        }
        std::set<std::string> current;
        for (int root : roots) {
            current.insert(graph.node(root).mangled);
        }
        std::string line;
        size_t listed = 0;
        while (std::getline(in, line)) {
            const size_t start = line.find_first_not_of(" \t");
            if (start == std::string::npos || line[start] == '#') {
                continue;
            }
            size_t end = line.find_first_of(" \t\r", start);
            const std::string name = line.substr(
                start, end == std::string::npos
                           ? std::string::npos
                           : end - start);
            ++listed;
            if (current.count(name) == 0) {
                baselineMissing = true;
                std::printf("BASELINE-MISSING %s  # %s\n",
                            name.c_str(),
                            demangle(name).c_str());
                report << "BASELINE-MISSING " << name << "\n";
            }
        }
        if (current.size() > listed) {
            std::printf("note: %zu roots vs %zu in baseline —"
                        " update %s (--write-baseline)\n",
                        current.size(), listed,
                        opt.baselinePath.c_str());
        }
    }

    const std::string summary =
        "rt-audit: " + std::to_string(roots.size()) + " roots, " +
        std::to_string(reachable.size()) +
        " reachable functions, " +
        std::to_string(violations.size()) + " violations, " +
        std::to_string(exemptLines.size()) + " exemptions, " +
        std::to_string(unknownEdges.size()) +
        " unknown externals";
    std::printf("%s\n", summary.c_str());
    report << "\n" << summary << "\n";

    if (!opt.reportPath.empty()) {
        std::ofstream out(opt.reportPath);
        if (!out) {
            std::fprintf(stderr,
                         "rt-audit: cannot write report %s\n",
                         opt.reportPath.c_str());
            return 2;
        }
        out << report.str();
    }

    bool failed = !violations.empty() || staleAllow ||
                  baselineMissing;
    if (opt.requireRoots > 0 &&
        static_cast<int>(roots.size()) < opt.requireRoots) {
        std::printf("rt-audit: only %zu roots found, %d required —"
                    " the QEC_REALTIME marker scheme is broken or"
                    " annotations were dropped\n",
                    roots.size(), opt.requireRoots);
        failed = true;
    }
    if (opt.unknownPolicy == Options::kError &&
        !unknownEdges.empty()) {
        failed = true;
    }
    return failed ? 1 : 0;
}
