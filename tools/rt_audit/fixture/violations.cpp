/**
 * @file
 * Seeded-violation fixture for qec-rt-audit.
 *
 * Each rtXxxViolation function below is a QEC_REALTIME root that
 * deliberately commits exactly one denylist class. The auditor run
 * in tests/test_rt_audit.cpp (and the rt_audit_fixture ctest
 * entry) must flag every one of them with a readable call chain —
 * proving the pass actually detects each forbidden-operation
 * class, not just that the production library happens to audit
 * clean. rtCleanControl must NOT be flagged (no false positives),
 * and rtAllocViaHelper must be flagged through the intermediate
 * helper frame (proving chains are transitive, not just direct
 * relocations).
 *
 * Never linked into anything; compiled only so its objects land in
 * compile_commands.json for the fixture audit.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>

#include "qec/util/realtime.hpp"

namespace qec_rt_fixture
{

// Out-of-line on purpose: the alloc chain must cross a real call
// edge (root -> helper -> operator new), like the documentation
// example "decode -> buildDefectGraphInto -> operator new".
__attribute__((noinline)) int *
allocatingHelper(int n)
{
    return new int[static_cast<unsigned>(n)];
}

/** alloc, via an intermediate frame: root -> helper -> new[]. */
int
rtAllocViaHelper(int n)
{
    QEC_REALTIME;
    int *p = allocatingHelper(n);
    const int out = p[0];
    delete[] p;
    return out;
}

/**
 * alloc, direct: operator new in the root body. Returns the
 * pointer so GCC's paired new/delete elision cannot remove the
 * allocation.
 */
int *
rtAllocViolation(int n)
{
    QEC_REALTIME;
    return new int(n);
}

/** lock: std::mutex lock/unlock -> pthread_mutex_*. */
int
rtLockViolation(std::mutex &m, int x)
{
    QEC_REALTIME;
    const std::lock_guard<std::mutex> guard(m);
    return x + 1;
}

/** clock: std::chrono::steady_clock::now(). */
long long
rtClockViolation()
{
    QEC_REALTIME;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

/** throw: __cxa_throw / __cxa_allocate_exception. */
int
rtThrowViolation(int x)
{
    QEC_REALTIME;
    if (x < 0) {
        throw x;
    }
    return x;
}

/** rand: libc rand(). */
int
rtRandViolation()
{
    QEC_REALTIME;
    return std::rand();
}

/** io: stdio on the hot path. */
int
rtIoViolation(int x)
{
    QEC_REALTIME;
    return std::printf("%d\n", x);
}

/**
 * Control: arithmetic only. The audit of this fixture must report
 * zero violations rooted here — a false positive on this function
 * means the pass is broken in the other direction.
 */
int
rtCleanControl(int x)
{
    QEC_REALTIME;
    int acc = 1;
    for (int i = 1; i <= x; ++i) {
        acc = acc * 31 + i;
    }
    return acc;
}

} // namespace qec_rt_fixture
