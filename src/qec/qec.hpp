/**
 * @file
 * Umbrella header: the full public API of the Promatch reproduction.
 *
 * Quickstart:
 * @code
 *   const auto &ctx = qec::ExperimentContext::get(11, 1e-4);
 *   auto decoder = qec::build(
 *       qec::DecoderSpec::parse("promatch+astrea||astrea_g"),
 *       ctx.graph(), ctx.paths());
 *   auto estimate = qec::estimateLer(ctx, *decoder, {});
 *   std::printf("LER = %.3e\n", estimate.ler);
 * @endcode
 *
 * The spec grammar, option keys, and registry extension recipe are
 * documented in docs/api.md.
 */

#ifndef QEC_QEC_HPP
#define QEC_QEC_HPP

#include "qec/api/decoder_spec.hpp"
#include "qec/api/registry.hpp"
#include "qec/api/status.hpp"
#include "qec/circuit/circuit.hpp"
#include "qec/decoders/astrea.hpp"
#include "qec/decoders/astrea_g.hpp"
#include "qec/decoders/decoder.hpp"
#include "qec/decoders/factory.hpp"
#include "qec/decoders/fallback.hpp"
#include "qec/decoders/latency.hpp"
#include "qec/decoders/mwpm_decoder.hpp"
#include "qec/decoders/parallel.hpp"
#include "qec/decoders/pipeline.hpp"
#include "qec/decoders/union_find.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/dem/decompose.hpp"
#include "qec/dem/dem.hpp"
#include "qec/fault/fault_injector.hpp"
#include "qec/gf2/gf2.hpp"
#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/distance_view.hpp"
#include "qec/graph/path_table.hpp"
#include "qec/harness/context.hpp"
#include "qec/harness/histogram.hpp"
#include "qec/harness/importance_sampler.hpp"
#include "qec/harness/ler_estimator.hpp"
#include "qec/harness/report.hpp"
#include "qec/hwmodel/resources.hpp"
#include "qec/matching/blossom.hpp"
#include "qec/matching/defect_graph.hpp"
#include "qec/matching/exhaustive.hpp"
#include "qec/matching/near_exhaustive.hpp"
#include "qec/pauli/pauli.hpp"
#include "qec/predecode/clique.hpp"
#include "qec/predecode/hierarchical.hpp"
#include "qec/predecode/promatch.hpp"
#include "qec/predecode/smith.hpp"
#include "qec/predecode/syndrome_subgraph.hpp"
#include "qec/serve/ring.hpp"
#include "qec/serve/server.hpp"
#include "qec/serve/stream.hpp"
#include "qec/serve/streaming.hpp"
#include "qec/util/arena.hpp"
#include "qec/util/backoff.hpp"
#include "qec/util/eytzinger.hpp"
#include "qec/util/time_source.hpp"
#include "qec/sim/error_enumerator.hpp"
#include "qec/sim/frame_simulator.hpp"
#include "qec/surface/circuit_gen.hpp"
#include "qec/surface/layout.hpp"

#endif // QEC_QEC_HPP
