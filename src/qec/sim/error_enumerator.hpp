/**
 * @file
 * Exhaustive fault enumeration: circuit -> detector error model.
 *
 * Every elementary fault the noise model can produce (each Pauli
 * component of each channel instance, and each measurement record
 * flip) is propagated deterministically through the remainder of the
 * circuit using the batch frame simulator, 64 faults at a time. The
 * resulting (detector set, observable mask, probability) triples are
 * merged into a DetectorErrorModel.
 */

#ifndef QEC_SIM_ERROR_ENUMERATOR_HPP
#define QEC_SIM_ERROR_ENUMERATOR_HPP

#include "qec/circuit/circuit.hpp"
#include "qec/dem/dem.hpp"

namespace qec
{

/** Build the detector error model of a noisy circuit. */
DetectorErrorModel buildDetectorErrorModel(const Circuit &circuit);

} // namespace qec

#endif // QEC_SIM_ERROR_ENUMERATOR_HPP
