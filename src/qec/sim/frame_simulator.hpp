/**
 * @file
 * Batch Pauli-frame simulator.
 *
 * Simulates 64 shots at once by packing one shot per bit of a 64-bit
 * word (the same trick Stim uses). A Pauli frame tracks, per qubit,
 * whether an X and/or Z error has been accumulated relative to the
 * noiseless reference execution; Clifford gates act linearly on the
 * frame, and Z-basis measurement outcomes are flipped exactly by the
 * X component of the frame.
 *
 * Two modes share the propagation core:
 *  - Monte-Carlo sampling: noise channels draw random errors.
 *  - Deterministic injection: noise channels are inert and a chosen
 *    set of elementary faults is inserted instead (one per bit lane).
 *    The fault enumerator uses this to build detector error models.
 */

#ifndef QEC_SIM_FRAME_SIMULATOR_HPP
#define QEC_SIM_FRAME_SIMULATOR_HPP

#include <cstdint>
#include <vector>

#include "qec/circuit/circuit.hpp"
#include "qec/pauli/pauli.hpp"
#include "qec/util/bitvec.hpp"
#include "qec/util/rng.hpp"

namespace qec
{

/** Detector and observable outcomes for a batch of <= 64 shots. */
struct BatchResult
{
    /** One 64-lane word per detector. */
    std::vector<uint64_t> detectors;
    /** One 64-lane word per observable. */
    std::vector<uint64_t> observables;

    /** Detector values of one lane as a BitVec. */
    BitVec detectorBits(int lane) const;

    /** Observable word of one lane (bit o = observable o flipped). */
    uint64_t observableMask(int lane) const;
};

/** An elementary fault to insert during deterministic propagation. */
struct Injection
{
    /** Index of the instruction the fault is attached to. */
    uint32_t opIndex = 0;
    /**
     * Which target the fault acts on: for Depolarize2 this is the
     * pair index (0 = first pair), otherwise the target index.
     */
    uint32_t targetOffset = 0;
    /** Pauli applied to the (first) qubit of the target. */
    Pauli p1 = Pauli::I;
    /** Pauli applied to the second qubit of a pair (Depolarize2). */
    Pauli p2 = Pauli::I;
    /** If true, flip the measurement record bit instead (M faults). */
    bool recordFlip = false;
};

/** Batch Pauli-frame simulator over a fixed circuit. */
class FrameSimulator
{
  public:
    explicit FrameSimulator(const Circuit &circuit);

    /** Monte-Carlo sample 64 shots; results overwrite `out`. */
    void sampleBatch(Rng &rng, BatchResult &out);

    /**
     * Deterministically propagate up to 64 injected faults, one per
     * lane (lane i gets injections[i]); noise channels are skipped.
     * Lanes beyond injections.size() stay fault-free.
     */
    void runInjections(const std::vector<Injection> &injections,
                       BatchResult &out);

    /**
     * Convenience: sample `shots` shots and count how often each
     * (any-detector-nonzero, observable-flipped) case occurs.
     * Returns the number of shots in which observable 0 flipped.
     */
    uint64_t countObservableFlips(Rng &rng, uint64_t shots);

  private:
    void run(Rng *rng, const std::vector<Injection> *injections,
             BatchResult &out);

    const Circuit &circuit_;
    // Frame state: one 64-lane word per qubit.
    std::vector<uint64_t> frameX;
    std::vector<uint64_t> frameZ;
    std::vector<uint64_t> record;
};

} // namespace qec

#endif // QEC_SIM_FRAME_SIMULATOR_HPP
