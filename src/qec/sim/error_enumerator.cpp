#include "qec/sim/error_enumerator.hpp"

#include <array>
#include <bit>

#include "qec/pauli/pauli.hpp"
#include "qec/sim/frame_simulator.hpp"
#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

/** An injection together with the probability of its fault. */
struct WeightedInjection
{
    Injection injection;
    double prob;
};

/** List every elementary fault of the circuit. */
std::vector<WeightedInjection>
enumerateFaults(const Circuit &circuit)
{
    std::vector<WeightedInjection> faults;
    const auto &instructions = circuit.instructions();
    for (uint32_t idx = 0; idx < instructions.size(); ++idx) {
        const Instruction &inst = instructions[idx];
        switch (inst.type) {
          case OpType::XError:
          case OpType::ZError: {
            const Pauli p = (inst.type == OpType::XError) ? Pauli::X
                                                          : Pauli::Z;
            for (uint32_t t = 0; t < inst.targets.size(); ++t) {
                faults.push_back(
                    {{idx, t, p, Pauli::I, false}, inst.arg});
            }
            break;
          }

          case OpType::Depolarize1:
            for (uint32_t t = 0; t < inst.targets.size(); ++t) {
                for (Pauli p : oneQubitPaulis()) {
                    faults.push_back(
                        {{idx, t, p, Pauli::I, false},
                         inst.arg / 3.0});
                }
            }
            break;

          case OpType::Depolarize2:
            for (uint32_t pair = 0;
                 pair < inst.targets.size() / 2; ++pair) {
                for (const auto &[pa, pb] : twoQubitPaulis()) {
                    faults.push_back(
                        {{idx, pair, pa, pb, false},
                         inst.arg / 15.0});
                }
            }
            break;

          case OpType::M:
            if (inst.arg > 0.0) {
                for (uint32_t t = 0; t < inst.targets.size(); ++t) {
                    faults.push_back(
                        {{idx, t, Pauli::I, Pauli::I, true},
                         inst.arg});
                }
            }
            break;

          default:
            break;
        }
    }
    return faults;
}

} // namespace

DetectorErrorModel
buildDetectorErrorModel(const Circuit &circuit)
{
    DetectorErrorModel dem(circuit.numDetectors(),
                           circuit.numObservables());
    const std::vector<WeightedInjection> faults =
        enumerateFaults(circuit);

    FrameSimulator simulator(circuit);
    BatchResult batch;
    std::vector<Injection> lane_injections;
    for (size_t base = 0; base < faults.size(); base += 64) {
        const size_t lanes =
            std::min<size_t>(64, faults.size() - base);
        lane_injections.clear();
        for (size_t lane = 0; lane < lanes; ++lane) {
            lane_injections.push_back(faults[base + lane].injection);
        }
        simulator.runInjections(lane_injections, batch);
        // Scatter flipped detectors to their lanes; the loop is
        // proportional to the number of flips, not detectors*lanes.
        std::array<std::vector<uint32_t>, 64> lane_dets;
        for (size_t det = 0; det < batch.detectors.size(); ++det) {
            uint64_t bits = batch.detectors[det];
            while (bits) {
                const int lane = std::countr_zero(bits);
                bits &= bits - 1;
                lane_dets[lane].push_back(
                    static_cast<uint32_t>(det));
            }
        }
        for (size_t lane = 0; lane < lanes; ++lane) {
            dem.addMechanism(std::move(lane_dets[lane]),
                             batch.observableMask(
                                 static_cast<int>(lane)),
                             faults[base + lane].prob);
        }
    }
    return dem;
}

} // namespace qec
