#include "qec/sim/frame_simulator.hpp"

#include <bit>

#include "qec/util/assert.hpp"

namespace qec
{

BitVec
BatchResult::detectorBits(int lane) const
{
    BitVec bits(detectors.size());
    for (size_t i = 0; i < detectors.size(); ++i) {
        if ((detectors[i] >> lane) & 1) {
            bits.set(i, true);
        }
    }
    return bits;
}

uint64_t
BatchResult::observableMask(int lane) const
{
    uint64_t mask = 0;
    for (size_t o = 0; o < observables.size(); ++o) {
        if ((observables[o] >> lane) & 1) {
            mask |= 1ull << o;
        }
    }
    return mask;
}

FrameSimulator::FrameSimulator(const Circuit &circuit)
    : circuit_(circuit),
      frameX(circuit.numQubits(), 0),
      frameZ(circuit.numQubits(), 0)
{
    record.reserve(circuit.numMeasurements());
}

void
FrameSimulator::sampleBatch(Rng &rng, BatchResult &out)
{
    run(&rng, nullptr, out);
}

void
FrameSimulator::runInjections(const std::vector<Injection> &injections,
                              BatchResult &out)
{
    QEC_ASSERT(injections.size() <= 64,
               "at most 64 injected faults per batch");
    run(nullptr, &injections, out);
}

void
FrameSimulator::run(Rng *rng, const std::vector<Injection> *injections,
                    BatchResult &out)
{
    for (auto &w : frameX) {
        w = 0;
    }
    for (auto &w : frameZ) {
        w = 0;
    }
    record.clear();
    out.detectors.assign(circuit_.numDetectors(), 0);
    out.observables.assign(circuit_.numObservables(), 0);

    // Group injections by instruction for O(1) dispatch in the walk.
    // Instruction indices are visited in order, so a cursor suffices
    // if the list is sorted; we instead scan the (tiny, <= 64) list.
    const auto apply_injections = [&](uint32_t op_index,
                                      const Instruction &inst) {
        for (size_t lane = 0; lane < injections->size(); ++lane) {
            const Injection &inj = (*injections)[lane];
            if (inj.opIndex != op_index || inj.recordFlip) {
                continue;
            }
            const uint64_t bit = 1ull << lane;
            if (inst.type == OpType::Depolarize2) {
                const uint32_t a = inst.targets[2 * inj.targetOffset];
                const uint32_t b =
                    inst.targets[2 * inj.targetOffset + 1];
                if (pauliX(inj.p1)) frameX[a] ^= bit;
                if (pauliZ(inj.p1)) frameZ[a] ^= bit;
                if (pauliX(inj.p2)) frameX[b] ^= bit;
                if (pauliZ(inj.p2)) frameZ[b] ^= bit;
            } else {
                const uint32_t q = inst.targets[inj.targetOffset];
                if (pauliX(inj.p1)) frameX[q] ^= bit;
                if (pauliZ(inj.p1)) frameZ[q] ^= bit;
            }
        }
    };

    const auto &instructions = circuit_.instructions();
    for (uint32_t idx = 0; idx < instructions.size(); ++idx) {
        const Instruction &inst = instructions[idx];
        switch (inst.type) {
          case OpType::R:
            for (uint32_t q : inst.targets) {
                frameX[q] = 0;
                frameZ[q] = 0;
            }
            break;

          case OpType::H:
            for (uint32_t q : inst.targets) {
                std::swap(frameX[q], frameZ[q]);
            }
            break;

          case OpType::CX:
            for (size_t i = 0; i < inst.targets.size(); i += 2) {
                const uint32_t c = inst.targets[i];
                const uint32_t t = inst.targets[i + 1];
                frameX[t] ^= frameX[c];
                frameZ[c] ^= frameZ[t];
            }
            break;

          case OpType::M:
            for (size_t i = 0; i < inst.targets.size(); ++i) {
                const uint32_t q = inst.targets[i];
                uint64_t result = frameX[q];
                if (rng) {
                    result ^= rng->biasedMask64(inst.arg);
                    // Measurement decoheres the conjugate frame.
                    frameZ[q] = rng->next64();
                } else {
                    const uint32_t rec_index =
                        static_cast<uint32_t>(record.size());
                    for (size_t lane = 0; lane < injections->size();
                         ++lane) {
                        const Injection &inj = (*injections)[lane];
                        if (inj.recordFlip && inj.opIndex == idx &&
                            inst.targets[inj.targetOffset] == q &&
                            inj.targetOffset == i) {
                            result ^= 1ull << lane;
                        }
                    }
                    (void)rec_index;
                }
                record.push_back(result);
            }
            break;

          case OpType::XError:
            if (rng) {
                for (uint32_t q : inst.targets) {
                    frameX[q] ^= rng->biasedMask64(inst.arg);
                }
            } else {
                apply_injections(idx, inst);
            }
            break;

          case OpType::ZError:
            if (rng) {
                for (uint32_t q : inst.targets) {
                    frameZ[q] ^= rng->biasedMask64(inst.arg);
                }
            } else {
                apply_injections(idx, inst);
            }
            break;

          case OpType::Depolarize1:
            if (rng) {
                for (uint32_t q : inst.targets) {
                    uint64_t mask = rng->biasedMask64(inst.arg);
                    while (mask) {
                        const int lane = std::countr_zero(mask);
                        mask &= mask - 1;
                        const uint64_t bit = 1ull << lane;
                        // Uniform over {X, Y, Z}.
                        switch (rng->nextBelow(3)) {
                          case 0: frameX[q] ^= bit; break;
                          case 1: frameX[q] ^= bit;
                                  frameZ[q] ^= bit; break;
                          default: frameZ[q] ^= bit; break;
                        }
                    }
                }
            } else {
                apply_injections(idx, inst);
            }
            break;

          case OpType::Depolarize2:
            if (rng) {
                for (size_t i = 0; i < inst.targets.size(); i += 2) {
                    const uint32_t a = inst.targets[i];
                    const uint32_t b = inst.targets[i + 1];
                    uint64_t mask = rng->biasedMask64(inst.arg);
                    while (mask) {
                        const int lane = std::countr_zero(mask);
                        mask &= mask - 1;
                        const uint64_t bit = 1ull << lane;
                        // Uniform over the 15 non-identity pairs:
                        // encode as 2 bits per qubit, skip II.
                        const uint64_t pick = rng->nextBelow(15) + 1;
                        const auto pa = static_cast<Pauli>(pick & 3);
                        const auto pb =
                            static_cast<Pauli>((pick >> 2) & 3);
                        if (pauliX(pa)) frameX[a] ^= bit;
                        if (pauliZ(pa)) frameZ[a] ^= bit;
                        if (pauliX(pb)) frameX[b] ^= bit;
                        if (pauliZ(pb)) frameZ[b] ^= bit;
                    }
                }
            } else {
                apply_injections(idx, inst);
            }
            break;

          case OpType::Tick:
          case OpType::Detector:
          case OpType::Observable:
            // Detectors/observables are evaluated in a second pass
            // once the measurement record is complete.
            break;
        }
    }

    // Second pass for detectors/observables so that the ordinal
    // bookkeeping stays trivial (records are complete by now).
    uint32_t det_cursor = 0;
    for (const Instruction &inst : instructions) {
        if (inst.type == OpType::Detector) {
            uint64_t value = 0;
            for (uint32_t rec : inst.targets) {
                value ^= record[rec];
            }
            out.detectors[det_cursor++] = value;
        } else if (inst.type == OpType::Observable) {
            uint64_t value = 0;
            for (uint32_t rec : inst.targets) {
                value ^= record[rec];
            }
            out.observables[inst.id] ^= value;
        }
    }
}

uint64_t
FrameSimulator::countObservableFlips(Rng &rng, uint64_t shots)
{
    uint64_t flips = 0;
    BatchResult batch;
    uint64_t done = 0;
    while (done < shots) {
        sampleBatch(rng, batch);
        uint64_t word = batch.observables.empty()
                            ? 0
                            : batch.observables[0];
        const uint64_t lanes = std::min<uint64_t>(64, shots - done);
        if (lanes < 64) {
            word &= (lanes == 64) ? ~0ull : ((1ull << lanes) - 1);
        }
        flips += std::popcount(word);
        done += lanes;
    }
    return flips;
}

} // namespace qec
