#include "qec/api/decoder_spec.hpp"

#include <cctype>

namespace qec
{

namespace
{

bool
isComponentChar(char c)
{
    return std::islower(static_cast<unsigned char>(c)) ||
           std::isdigit(static_cast<unsigned char>(c)) || c == '_';
}

void
validateComponent(const std::string &name, const char *role)
{
    if (name.empty()) {
        throw SpecError(std::string("empty ") + role +
                        " component in decoder spec");
    }
    for (char c : name) {
        if (!isComponentChar(c)) {
            throw SpecError(std::string("illegal character '") + c +
                            "' in " + role + " component '" + name +
                            "'");
        }
    }
}

StackSpec
parseStack(const std::string &text)
{
    StackSpec stack;
    const size_t plus = text.find('+');
    if (plus == std::string::npos) {
        stack.main = text;
    } else {
        if (text.find('+', plus + 1) != std::string::npos) {
            throw SpecError("more than one '+' in stack '" + text +
                            "' (only predecoder+main is allowed)");
        }
        stack.predecoder = text.substr(0, plus);
        stack.main = text.substr(plus + 1);
        validateComponent(stack.predecoder, "predecoder");
    }
    validateComponent(stack.main, "main decoder");
    return stack;
}

std::map<std::string, std::string>
parseOptions(const std::string &text)
{
    std::map<std::string, std::string> options;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t amp = text.find('&', pos);
        if (amp == std::string::npos) {
            amp = text.size();
        }
        const std::string item = text.substr(pos, amp - pos);
        if (item.empty()) {
            throw SpecError("empty option in decoder spec ('" +
                            text + "')");
        }
        const size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == item.size()) {
            throw SpecError("option '" + item +
                            "' is not of the form key=value");
        }
        const std::string key = item.substr(0, eq);
        for (char c : key) {
            if (!isComponentChar(c)) {
                throw SpecError(
                    std::string("illegal character '") + c +
                    "' in option key '" + key + "'");
            }
        }
        if (!options.emplace(key, item.substr(eq + 1)).second) {
            throw SpecError("duplicate option key '" + key + "'");
        }
        pos = amp + 1;
    }
    return options;
}

} // namespace

std::string
StackSpec::toString() const
{
    return predecoder.empty() ? main : predecoder + "+" + main;
}

DecoderSpec
DecoderSpec::parse(const std::string &text)
{
    if (text.empty()) {
        throw SpecError("empty decoder spec");
    }
    DecoderSpec spec;
    std::string stacks = text;
    const size_t question = text.find('?');
    if (question != std::string::npos) {
        stacks = text.substr(0, question);
        spec.options = parseOptions(text.substr(question + 1));
    }
    const size_t par = stacks.find("||");
    if (par == std::string::npos) {
        spec.primary = parseStack(stacks);
    } else {
        if (stacks.find("||", par + 2) != std::string::npos) {
            throw SpecError("more than one '||' in decoder spec '" +
                            stacks + "'");
        }
        if (par == 0 || par + 2 == stacks.size()) {
            throw SpecError("'||' needs a stack on both sides in '" +
                            stacks + "'");
        }
        spec.primary = parseStack(stacks.substr(0, par));
        spec.partner = parseStack(stacks.substr(par + 2));
    }
    return spec;
}

std::string
DecoderSpec::toString() const
{
    std::string out = primary.toString();
    if (partner) {
        out += "||" + partner->toString();
    }
    // std::map iteration is key-sorted: the printed form is
    // canonical and stable regardless of the order options were
    // written in the input.
    char sep = '?';
    for (const auto &[key, value] : options) {
        out += sep;
        out += key;
        out += '=';
        out += value;
        sep = '&';
    }
    return out;
}

std::optional<std::string>
DecoderSpec::option(const std::string &key) const
{
    const auto it = options.find(key);
    if (it == options.end()) {
        return std::nullopt;
    }
    return it->second;
}

} // namespace qec
