/**
 * @file
 * Recoverable error taxonomy for untrusted entry paths.
 *
 * The library's internal invariants stay hard asserts (QEC_ASSERT
 * aborts — a violated invariant means the process state is gone).
 * Inputs that cross a trust boundary — a syndrome stream arriving
 * over the serve layer, a DEM read from a file, a spec string typed
 * by a user — are a different matter: one poisoned request must
 * fail alone, not take the worker pool down with it. Those paths
 * report a DecodeStatus instead of asserting, and the serve layer
 * carries the status through to the response handler so callers can
 * count, log, or retry per request.
 */

#ifndef QEC_API_STATUS_HPP
#define QEC_API_STATUS_HPP

#include <cstdint>

namespace qec
{

/** Per-request outcome of the serving / streaming entry paths. */
enum class DecodeStatus : uint8_t
{
    /** Decoded normally (the result fields are meaningful). */
    kOk = 0,
    /**
     * Stream structure is invalid: layer offsets out of order, a
     * defect outside its declared layer, unsorted defects, or a
     * detectorsPerRound that disagrees with the decoder.
     */
    kMalformedStream,
    /** A defect id is >= the decoding graph's detector count. */
    kDetectorOutOfRange,
    /** The request's deadline passed before a worker picked it up. */
    kDeadlineExpired,
    /** Admission failed: every request slot was in flight. */
    kQueueFull,
    /** Admission failed: the server is stopping or stopped. */
    kStopped,
};

/** Stable lower_snake name for logs and JSON (never nullptr). */
inline const char *
statusName(DecodeStatus status)
{
    switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kMalformedStream: return "malformed_stream";
    case DecodeStatus::kDetectorOutOfRange:
        return "detector_out_of_range";
    case DecodeStatus::kDeadlineExpired: return "deadline_expired";
    case DecodeStatus::kQueueFull: return "queue_full";
    case DecodeStatus::kStopped: return "stopped";
    }
    return "unknown";
}

} // namespace qec

#endif // QEC_API_STATUS_HPP
