/**
 * @file
 * DecoderSpec: a structured, parseable description of a decoder
 * stack.
 *
 * Grammar (see docs/api.md for the full reference):
 *
 *   spec    := stack [ "||" stack ] [ "?" options ]
 *   stack   := [ predecoder "+" ] main
 *   options := key "=" value { "&" key "=" value }
 *
 * Examples:
 *
 *   "mwpm"                                 software MWPM baseline
 *   "promatch+astrea"                      the paper's Promatch
 *   "promatch+astrea||astrea_g"            ||AG arbitration
 *   "promatch+astrea||astrea_g?hw_threshold=10&promatch_lanes=2"
 *
 * Component names refer to builders registered with the
 * DecoderRegistry (qec/api/registry.hpp); options override
 * LatencyConfig / PromatchConfig knobs by key. parse() and
 * toString() round-trip: toString() prints the canonical form
 * (options sorted by key), and parsing that string reproduces the
 * spec exactly.
 *
 * Malformed input throws SpecError — the registry-facing build()
 * also throws it for unknown components or option keys, so callers
 * get one error type for "this spec is unusable".
 */

#ifndef QEC_API_DECODER_SPEC_HPP
#define QEC_API_DECODER_SPEC_HPP

#include <map>
#include <optional>
#include <stdexcept>
#include <string>

namespace qec
{

/** Error for malformed specs, unknown components, or bad options. */
class SpecError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One side of a (possibly parallel) decoder stack. */
struct StackSpec
{
    /** Registered predecoder component name; empty = none. */
    std::string predecoder;
    /** Registered main-decoder component name. */
    std::string main;

    std::string toString() const;

    bool
    operator==(const StackSpec &other) const
    {
        return predecoder == other.predecoder &&
               main == other.main;
    }
};

/** Structured description of a full decoder configuration. */
struct DecoderSpec
{
    /** The primary stack (left of "||"). */
    StackSpec primary;
    /** Optional parallel partner stack (right of "||"). */
    std::optional<StackSpec> partner;
    /** Key-value option overrides (latency / Promatch / HW knobs). */
    std::map<std::string, std::string> options;

    /**
     * Parse a spec string; throws SpecError on malformed input
     * (empty components, repeated "||", missing '=' in an option,
     * illegal identifier characters, ...). Component names are
     * validated against the registry at build() time, not here.
     */
    static DecoderSpec parse(const std::string &text);

    /** Canonical printable form; parse(toString()) == *this. */
    std::string toString() const;

    /** Convenience option accessor (empty optional if absent). */
    std::optional<std::string> option(const std::string &key) const;

    bool
    operator==(const DecoderSpec &other) const
    {
        return primary == other.primary &&
               partner == other.partner &&
               options == other.options;
    }
};

} // namespace qec

#endif // QEC_API_DECODER_SPEC_HPP
