/**
 * @file
 * Open component registry for decoder stacks.
 *
 * Every main decoder and predecoder registers a builder under its
 * component name, in its own translation unit, via the
 * QEC_REGISTER_DECODER / QEC_REGISTER_PREDECODER helpers. build()
 * then assembles any DecoderSpec from registered parts:
 *
 *   auto d = qec::build(qec::DecoderSpec::parse(
 *                "promatch+astrea||astrea_g?hw_threshold=10"),
 *            ctx.graph(), ctx.paths());
 *
 * Adding a new component never touches this file or the factory: a
 * new predecoder drops one .cpp with a registration object and is
 * immediately reachable from every spec string (recipe in
 * docs/api.md). The registry is guarded by a mutex, so concurrent
 * build() calls from a threaded harness are safe.
 *
 * Spec options are applied to copies of the LatencyConfig /
 * PromatchConfig defaults before any component is built; unknown
 * components and unknown or malformed option values throw SpecError.
 */

#ifndef QEC_API_REGISTRY_HPP
#define QEC_API_REGISTRY_HPP

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qec/api/decoder_spec.hpp"
#include "qec/decoders/decoder.hpp"
#include "qec/decoders/latency.hpp"
#include "qec/predecode/pinball.hpp"
#include "qec/predecode/predecoder.hpp"
#include "qec/predecode/promatch.hpp"

namespace qec
{

/** Everything a component builder may draw on. */
struct BuildContext
{
    const DecodingGraph &graph;
    const PathTable &paths;
    /** Latency model, with spec options already applied. */
    LatencyConfig latency;
    /** Promatch tunables, with spec options already applied. */
    PromatchConfig promatch;
    /** Pinball tunables, with spec options already applied. */
    PinballConfig pinball;
};

/** Process-wide registry of decoder / predecoder builders. */
class DecoderRegistry
{
  public:
    using DecoderBuilder =
        std::function<std::unique_ptr<Decoder>(const BuildContext &)>;
    using PredecoderBuilder = std::function<std::unique_ptr<Predecoder>(
        const BuildContext &)>;

    static DecoderRegistry &instance();

    void addDecoder(const std::string &name,
                    const std::string &description,
                    DecoderBuilder builder);
    void addPredecoder(const std::string &name,
                       const std::string &description,
                       PredecoderBuilder builder);

    bool hasDecoder(const std::string &name) const;
    bool hasPredecoder(const std::string &name) const;

    /** Registered component names, sorted. */
    std::vector<std::string> decoderComponents() const;
    std::vector<std::string> predecoderComponents() const;

    /** One-line description of a component; empty if unknown. */
    std::string describe(const std::string &name) const;

    /** Build one component; throws SpecError if unregistered. */
    std::unique_ptr<Decoder> buildDecoder(
        const std::string &name, const BuildContext &context) const;
    std::unique_ptr<Predecoder> buildPredecoder(
        const std::string &name, const BuildContext &context) const;

  private:
    DecoderRegistry() = default;

    template <typename Builder> struct Entry
    {
        std::string description;
        Builder builder;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Entry<DecoderBuilder>> decoders_;
    std::map<std::string, Entry<PredecoderBuilder>> predecoders_;
};

/**
 * Assemble a decoder stack from a spec.
 *
 * Options in the spec override fields of the passed-in latency /
 * Promatch defaults (docs/api.md lists the keys). Throws SpecError
 * for unknown components or options.
 */
std::unique_ptr<Decoder> build(const DecoderSpec &spec,
                               const DecodingGraph &graph,
                               const PathTable &paths,
                               const LatencyConfig &latency = {},
                               const PromatchConfig &promatch = {});

/**
 * Apply spec option overrides onto config copies; exposed so
 * harnesses can resolve the effective configs without building.
 * Throws SpecError on unknown keys or unparseable values.
 */
void applySpecOptions(const std::map<std::string, std::string> &options,
                      LatencyConfig &latency,
                      PromatchConfig &promatch,
                      PinballConfig &pinball);

/** Convenience overload discarding the Pinball config. */
void applySpecOptions(const std::map<std::string, std::string> &options,
                      LatencyConfig &latency,
                      PromatchConfig &promatch);

/** Self-registration handle for main decoders. */
struct DecoderRegistration
{
    DecoderRegistration(const char *name, const char *description,
                        DecoderRegistry::DecoderBuilder builder)
    {
        DecoderRegistry::instance().addDecoder(name, description,
                                               std::move(builder));
    }
};

/** Self-registration handle for predecoders. */
struct PredecoderRegistration
{
    PredecoderRegistration(const char *name, const char *description,
                           DecoderRegistry::PredecoderBuilder builder)
    {
        DecoderRegistry::instance().addPredecoder(
            name, description, std::move(builder));
    }
};

/** Register a main decoder in the enclosing translation unit. */
#define QEC_REGISTER_DECODER(name, description, ...)                        \
    static const ::qec::DecoderRegistration                                 \
        qecDecoderRegistration_##name(#name, description, __VA_ARGS__)

/** Register a predecoder in the enclosing translation unit. */
#define QEC_REGISTER_PREDECODER(name, description, ...)                     \
    static const ::qec::PredecoderRegistration                              \
        qecPredecoderRegistration_##name(#name, description, __VA_ARGS__)

} // namespace qec

#endif // QEC_API_REGISTRY_HPP
