#include "qec/api/registry.hpp"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "qec/decoders/parallel.hpp"
#include "qec/decoders/pipeline.hpp"
#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

long long
parseLongOption(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        throw SpecError("option '" + key + "' expects an integer, "
                        "got '" + value + "'");
    }
    return parsed;
}

int
parseIntOption(const std::string &key, const std::string &value)
{
    const long long parsed = parseLongOption(key, value);
    if (parsed < INT_MIN || parsed > INT_MAX) {
        throw SpecError("option '" + key + "' is out of range: '" +
                        value + "'");
    }
    return static_cast<int>(parsed);
}

double
parseDoubleOption(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    errno = 0;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' ||
        errno == ERANGE || !std::isfinite(parsed)) {
        throw SpecError("option '" + key + "' expects a finite "
                        "number, got '" + value + "'");
    }
    return parsed;
}

bool
parseBoolOption(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "on") {
        return true;
    }
    if (value == "0" || value == "false" || value == "off") {
        return false;
    }
    throw SpecError("option '" + key + "' expects a boolean "
                    "(0/1/true/false/on/off), got '" + value + "'");
}

std::unique_ptr<Decoder>
buildStack(const StackSpec &stack, const BuildContext &context)
{
    const DecoderRegistry &registry = DecoderRegistry::instance();
    std::unique_ptr<Decoder> main =
        registry.buildDecoder(stack.main, context);
    if (stack.predecoder.empty()) {
        return main;
    }
    return std::make_unique<PredecodedDecoder>(
        context.graph, context.paths,
        registry.buildPredecoder(stack.predecoder, context),
        std::move(main), context.latency);
}

} // namespace

DecoderRegistry &
DecoderRegistry::instance()
{
    static DecoderRegistry registry;
    return registry;
}

void
DecoderRegistry::addDecoder(const std::string &name,
                            const std::string &description,
                            DecoderBuilder builder)
{
    std::lock_guard<std::mutex> lock(mutex_);
    QEC_ASSERT(!decoders_.count(name) && !predecoders_.count(name),
               "duplicate decoder component registration");
    decoders_[name] = {description, std::move(builder)};
}

void
DecoderRegistry::addPredecoder(const std::string &name,
                               const std::string &description,
                               PredecoderBuilder builder)
{
    std::lock_guard<std::mutex> lock(mutex_);
    QEC_ASSERT(!decoders_.count(name) && !predecoders_.count(name),
               "duplicate predecoder component registration");
    predecoders_[name] = {description, std::move(builder)};
}

bool
DecoderRegistry::hasDecoder(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return decoders_.count(name) != 0;
}

bool
DecoderRegistry::hasPredecoder(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return predecoders_.count(name) != 0;
}

std::vector<std::string>
DecoderRegistry::decoderComponents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    for (const auto &[name, entry] : decoders_) {
        names.push_back(name);
    }
    return names;
}

std::vector<std::string>
DecoderRegistry::predecoderComponents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    for (const auto &[name, entry] : predecoders_) {
        names.push_back(name);
    }
    return names;
}

std::string
DecoderRegistry::describe(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = decoders_.find(name);
        it != decoders_.end()) {
        return it->second.description;
    }
    if (const auto it = predecoders_.find(name);
        it != predecoders_.end()) {
        return it->second.description;
    }
    return {};
}

std::unique_ptr<Decoder>
DecoderRegistry::buildDecoder(const std::string &name,
                              const BuildContext &context) const
{
    DecoderBuilder builder;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = decoders_.find(name);
        if (it == decoders_.end()) {
            if (predecoders_.count(name)) {
                throw SpecError("component '" + name +
                                "' is a predecoder, not a main "
                                "decoder");
            }
            throw SpecError("unknown decoder component '" + name +
                            "'");
        }
        builder = it->second.builder;
    }
    return builder(context);
}

std::unique_ptr<Predecoder>
DecoderRegistry::buildPredecoder(const std::string &name,
                                 const BuildContext &context) const
{
    PredecoderBuilder builder;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = predecoders_.find(name);
        if (it == predecoders_.end()) {
            if (decoders_.count(name)) {
                throw SpecError("component '" + name +
                                "' is a main decoder, not a "
                                "predecoder");
            }
            throw SpecError("unknown predecoder component '" + name +
                            "'");
        }
        builder = it->second.builder;
    }
    return builder(context);
}

void
applySpecOptions(const std::map<std::string, std::string> &options,
                 LatencyConfig &latency, PromatchConfig &promatch)
{
    PinballConfig pinball;
    applySpecOptions(options, latency, promatch, pinball);
}

void
applySpecOptions(const std::map<std::string, std::string> &options,
                 LatencyConfig &latency, PromatchConfig &promatch,
                 PinballConfig &pinball)
{
    for (const auto &[key, value] : options) {
        // Domain guard: several knobs are divisors or physical
        // quantities; a syntactically valid but out-of-domain value
        // must throw like any other malformed option, not crash a
        // decode later.
        const auto require = [&key = key, &value = value](
                                 bool ok, const char *domain) {
            if (!ok) {
                throw SpecError("option '" + key + "' must be " +
                                domain + ", got '" + value + "'");
            }
        };
        if (key == "hw_threshold") {
            latency.astreaMaxHw = parseIntOption(key, value);
            require(latency.astreaMaxHw >= 0, "non-negative");
        } else if (key == "budget_ns") {
            latency.budgetNs = parseDoubleOption(key, value);
            require(latency.budgetNs > 0, "positive");
        } else if (key == "ns_per_cycle") {
            latency.nsPerCycle = parseDoubleOption(key, value);
            require(latency.nsPerCycle > 0, "positive");
        } else if (key == "compare_cycles") {
            latency.compareCycles = parseIntOption(key, value);
            require(latency.compareCycles >= 0, "non-negative");
        } else if (key == "astrea_parallelism") {
            latency.astreaParallelism = parseIntOption(key, value);
            require(latency.astreaParallelism > 0, "positive");
        } else if (key == "astrea_fixed_cycles") {
            latency.astreaFixedCycles = parseIntOption(key, value);
            require(latency.astreaFixedCycles >= 0,
                    "non-negative");
        } else if (key == "promatch_fixed_cycles") {
            latency.promatchFixedCycles = parseIntOption(key, value);
            require(latency.promatchFixedCycles >= 0,
                    "non-negative");
        } else if (key == "promatch_lanes") {
            latency.promatchLanes = parseIntOption(key, value);
            require(latency.promatchLanes > 0, "positive");
        } else if (key == "astrea_g_budget") {
            latency.astreaGSearchBudget =
                parseLongOption(key, value);
            require(latency.astreaGSearchBudget >= 0,
                    "non-negative");
        } else if (key == "astrea_g_prune") {
            latency.astreaGPruneProbability =
                parseDoubleOption(key, value);
            require(latency.astreaGPruneProbability > 0,
                    "positive");
        } else if (key == "astrea_g_bound") {
            latency.astreaGUseBound = parseBoolOption(key, value);
        } else if (key == "exact_singleton") {
            promatch.exactSingletonCheck =
                parseBoolOption(key, value);
        } else if (key == "adaptive") {
            promatch.adaptiveTarget = parseBoolOption(key, value);
        } else if (key == "fixed_target") {
            promatch.fixedTarget = parseIntOption(key, value);
            require(promatch.fixedTarget >= 0, "non-negative");
        } else if (key == "step3") {
            promatch.enableStep3 = parseBoolOption(key, value);
        } else if (key == "step4") {
            promatch.enableStep4 = parseBoolOption(key, value);
        } else if (key == "pinball_rounds") {
            pinball.rounds = parseIntOption(key, value);
            require(pinball.rounds >= 1, "positive");
        } else if (key == "pinball_boundary") {
            pinball.matchBoundary = parseBoolOption(key, value);
        } else {
            throw SpecError("unknown spec option '" + key + "'");
        }
    }
}

std::unique_ptr<Decoder>
build(const DecoderSpec &spec, const DecodingGraph &graph,
      const PathTable &paths, const LatencyConfig &latency,
      const PromatchConfig &promatch)
{
    BuildContext context{graph, paths, latency, promatch, {}};
    applySpecOptions(spec.options, context.latency,
                     context.promatch, context.pinball);
    std::unique_ptr<Decoder> primary =
        buildStack(spec.primary, context);
    if (!spec.partner) {
        return primary;
    }
    return std::make_unique<ParallelDecoder>(
        graph, paths, std::move(primary),
        buildStack(*spec.partner, context), context.latency);
}

} // namespace qec
