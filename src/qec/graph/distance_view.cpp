#include "qec/graph/distance_view.hpp"

#include <algorithm>
#include <limits>

#include "qec/util/rt_grow.hpp"

namespace qec
{

bool
DistanceView::covers(const PathTable &paths,
                     std::span<const uint32_t> defects) const
{
    return paths_ == &paths && dets_.size() == defects.size() &&
           std::equal(dets_.begin(), dets_.end(), defects.begin());
}

void
DistanceView::gather(const PathTable &paths,
                     std::span<const uint32_t> defects)
{
    if (covers(paths, defects)) {
        return;
    }
    paths_ = &paths;
    rt::assignRange(dets_, defects.begin(), defects.end());
    const size_t s = dets_.size();
    stride_ = s;
    rt::resizeTo(cells_, s * s);
    rt::resizeTo(bcells_, s);
    if (!paths.pairsAvailable()) {
        // Deferred table: compute each row with the oracle (one
        // Dijkstra per defect, bit-identical to the table's cells).
        oracle_.bind(paths.graph());
        const double no_radius =
            std::numeric_limits<double>::infinity();
        for (size_t a = 0; a < s; ++a) {
            oracle_.grow(dets_[a], dets_, no_radius,
                         cells_.data() + a * s);
            bcells_[a] = paths.boundaryCell(dets_[a]);
        }
        return;
    }
    // Row-major gather: row a streams PathTable row dets_[a] at the
    // S defect columns; all three fields ride in the one PathCell.
    for (size_t a = 0; a < s; ++a) {
        const PathCell *src = paths.row(dets_[a]);
        PathCell *dst = cells_.data() + a * s;
        for (size_t b = 0; b < s; ++b) {
            dst[b] = src[dets_[b]];
        }
        bcells_[a] = paths.boundaryCell(dets_[a]);
    }
}

bool
DistanceView::subsetMap(const PathTable &paths,
                        std::span<const uint32_t> defects,
                        std::vector<int32_t> &map) const
{
    if (paths_ != &paths || defects.size() > dets_.size()) {
        return false;
    }
    map.clear();
    // Both sides sorted ascending: one merge scan.
    size_t v = 0;
    for (uint32_t det : defects) {
        while (v < dets_.size() && dets_[v] < det) {
            ++v;
        }
        if (v == dets_.size() || dets_[v] != det) {
            return false;
        }
        rt::pushBack(map, static_cast<int32_t>(v));
        ++v;
    }
    return true;
}

} // namespace qec
