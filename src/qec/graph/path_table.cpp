#include "qec/graph/path_table.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

constexpr float kInf = std::numeric_limits<float>::infinity();

/** Dijkstra state entry: (distance, node). */
using HeapEntry = std::pair<double, uint32_t>;

/** Shared relax loop of both build phases (and the reference
 *  semantics DistanceOracle mirrors): boundary edges never serve as
 *  intermediate hops, distances accumulate in double, and a node's
 *  labels are final once popped. */
struct DijkstraScratch
{
    std::vector<double> dist;
    std::vector<uint8_t> obs;
    std::vector<uint16_t> hops;
    std::vector<bool> done;

    explicit DijkstraScratch(uint32_t n)
        : dist(n), obs(n), hops(n), done(n)
    {
    }

    void reset()
    {
        std::fill(dist.begin(), dist.end(),
                  std::numeric_limits<double>::infinity());
        std::fill(obs.begin(), obs.end(), 0);
        std::fill(hops.begin(), hops.end(), 0);
        std::fill(done.begin(), done.end(), false);
    }

    void relaxAll(const DecodingGraph &graph,
                  std::priority_queue<HeapEntry,
                                      std::vector<HeapEntry>,
                                      std::greater<>> &heap)
    {
        while (!heap.empty()) {
            const auto [du, u] = heap.top();
            heap.pop();
            if (done[u]) {
                continue;
            }
            done[u] = true;
            for (uint32_t eid : graph.adjacentEdges(u)) {
                const GraphEdge &edge = graph.edges()[eid];
                if (edge.v == kBoundary) {
                    continue; // Boundary is never an intermediate hop.
                }
                const uint32_t w = (edge.u == u) ? edge.v : edge.u;
                const double dw = du + edge.weight;
                if (dw < dist[w]) {
                    dist[w] = dw;
                    obs[w] = obs[u] ^
                             static_cast<uint8_t>(edge.obsMask);
                    hops[w] = static_cast<uint16_t>(hops[u] + 1);
                    heap.push({dw, w});
                }
            }
        }
    }
};

} // namespace

PathTable::PathTable(const DecodingGraph &graph)
    : graph_(&graph), n(graph.numDetectors()),
      cells(static_cast<size_t>(n) * n, PathCell{kInf, 0, 255}),
      boundary(n, PathCell{kInf, 0, 255})
{
    QEC_ASSERT(graph.numObservables() <= 8,
               "PathTable packs obs masks into 8 bits");
    buildPairs(graph);
    buildBoundary(graph);
}

PathTable::PathTable(const DecodingGraph &graph, DeferPairs)
    : graph_(&graph), n(graph.numDetectors()),
      boundary(n, PathCell{kInf, 0, 255})
{
    QEC_ASSERT(graph.numObservables() <= 8,
               "PathTable packs obs masks into 8 bits");
    buildBoundary(graph);
}

void
PathTable::buildPairs(const DecodingGraph &graph)
{
    DijkstraScratch s(n);
    // Per-source Dijkstra for the pair tables.
    for (uint32_t src = 0; src < n; ++src) {
        s.reset();
        std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                            std::greater<>>
            heap;
        s.dist[src] = 0.0;
        heap.push({0.0, src});
        s.relaxAll(graph, heap);
        for (uint32_t v = 0; v < n; ++v) {
            PathCell &cell = cells[index(src, v)];
            cell.dist = static_cast<float>(s.dist[v]);
            cell.obs = s.obs[v];
            cell.hops = static_cast<uint8_t>(
                std::min<uint16_t>(s.hops[v], 255));
        }
    }
}

void
PathTable::buildBoundary(const DecodingGraph &graph)
{
    // Multi-source Dijkstra seeded by every boundary edge.
    DijkstraScratch s(n);
    s.reset();
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>>
        heap;
    for (uint32_t det = 0; det < n; ++det) {
        const int eid = graph.boundaryEdge(det);
        if (eid < 0) {
            continue;
        }
        const GraphEdge &edge = graph.edges()[eid];
        if (edge.weight < s.dist[det]) {
            s.dist[det] = edge.weight;
            s.obs[det] = static_cast<uint8_t>(edge.obsMask);
            s.hops[det] = 1;
            heap.push({edge.weight, det});
        }
    }
    s.relaxAll(graph, heap);
    for (uint32_t v = 0; v < n; ++v) {
        boundary[v].dist = static_cast<float>(s.dist[v]);
        boundary[v].obs = s.obs[v];
        boundary[v].hops = static_cast<uint8_t>(
            std::min<uint16_t>(s.hops[v], 255));
    }
}

bool
PathTable::unreachable(uint32_t a, uint32_t b) const
{
    return cells[index(a, b)].dist == kInf;
}

} // namespace qec
