#include "qec/graph/path_table.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

constexpr float kInf = std::numeric_limits<float>::infinity();

/** Dijkstra state entry: (distance, node). */
using HeapEntry = std::pair<double, uint32_t>;

} // namespace

PathTable::PathTable(const DecodingGraph &graph)
    : n(graph.numDetectors()),
      cells(static_cast<size_t>(n) * n, PathCell{kInf, 0, 255}),
      boundary(n, PathCell{kInf, 0, 255})
{
    QEC_ASSERT(graph.numObservables() <= 8,
               "PathTable packs obs masks into 8 bits");

    std::vector<double> dist(n);
    std::vector<uint8_t> obs(n);
    std::vector<uint16_t> hops(n);
    std::vector<bool> done(n);

    auto relax_all = [&](std::priority_queue<HeapEntry,
                                             std::vector<HeapEntry>,
                                             std::greater<>> &heap) {
        while (!heap.empty()) {
            const auto [du, u] = heap.top();
            heap.pop();
            if (done[u]) {
                continue;
            }
            done[u] = true;
            for (uint32_t eid : graph.adjacentEdges(u)) {
                const GraphEdge &edge = graph.edges()[eid];
                if (edge.v == kBoundary) {
                    continue; // Boundary is never an intermediate hop.
                }
                const uint32_t w = (edge.u == u) ? edge.v : edge.u;
                const double dw = du + edge.weight;
                if (dw < dist[w]) {
                    dist[w] = dw;
                    obs[w] = obs[u] ^
                             static_cast<uint8_t>(edge.obsMask);
                    hops[w] = static_cast<uint16_t>(hops[u] + 1);
                    heap.push({dw, w});
                }
            }
        }
    };

    // Per-source Dijkstra for the pair tables.
    for (uint32_t src = 0; src < n; ++src) {
        std::fill(dist.begin(), dist.end(),
                  std::numeric_limits<double>::infinity());
        std::fill(obs.begin(), obs.end(), 0);
        std::fill(hops.begin(), hops.end(), 0);
        std::fill(done.begin(), done.end(), false);
        std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                            std::greater<>>
            heap;
        dist[src] = 0.0;
        heap.push({0.0, src});
        relax_all(heap);
        for (uint32_t v = 0; v < n; ++v) {
            PathCell &cell = cells[index(src, v)];
            cell.dist = static_cast<float>(dist[v]);
            cell.obs = obs[v];
            cell.hops =
                static_cast<uint8_t>(std::min<uint16_t>(hops[v], 255));
        }
    }

    // Multi-source Dijkstra seeded by every boundary edge.
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    std::fill(obs.begin(), obs.end(), 0);
    std::fill(hops.begin(), hops.end(), 0);
    std::fill(done.begin(), done.end(), false);
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>>
        heap;
    for (uint32_t det = 0; det < n; ++det) {
        const int eid = graph.boundaryEdge(det);
        if (eid < 0) {
            continue;
        }
        const GraphEdge &edge = graph.edges()[eid];
        if (edge.weight < dist[det]) {
            dist[det] = edge.weight;
            obs[det] = static_cast<uint8_t>(edge.obsMask);
            hops[det] = 1;
            heap.push({edge.weight, det});
        }
    }
    relax_all(heap);
    for (uint32_t v = 0; v < n; ++v) {
        boundary[v].dist = static_cast<float>(dist[v]);
        boundary[v].obs = obs[v];
        boundary[v].hops =
            static_cast<uint8_t>(std::min<uint16_t>(hops[v], 255));
    }
}

bool
PathTable::unreachable(uint32_t a, uint32_t b) const
{
    return cells[index(a, b)].dist == kInf;
}

} // namespace qec
