/**
 * @file
 * All-pairs shortest paths over the decoding graph.
 *
 * The matchers (MWPM, Astrea, Astrea-G) operate on a complete graph
 * over the flipped detectors whose edge weights are shortest-path
 * distances in the decoding graph; Promatch's Step 3 consults the
 * same table (the paper's on-chip "Path table", §4.2.2/Table 8).
 *
 * Boundary distances are computed with a multi-source Dijkstra seeded
 * by every boundary edge; pair distances never route through the
 * boundary (matching two defects "via the boundary" is represented as
 * two separate boundary matches instead).
 */

#ifndef QEC_GRAPH_PATH_TABLE_HPP
#define QEC_GRAPH_PATH_TABLE_HPP

#include <cstdint>
#include <vector>

#include "qec/graph/decoding_graph.hpp"

namespace qec
{

/** Precomputed distance / observable-parity / hop tables. */
class PathTable
{
  public:
    explicit PathTable(const DecodingGraph &graph);

    /** Shortest-path weight between two detectors. */
    double dist(uint32_t a, uint32_t b) const
    {
        return distMat[index(a, b)];
    }

    /** XOR of observable masks along the shortest a-b path. */
    uint64_t pathObs(uint32_t a, uint32_t b) const
    {
        return obsMat[index(a, b)];
    }

    /** Number of edges along the shortest a-b path (255 = saturated). */
    int pathHops(uint32_t a, uint32_t b) const
    {
        return hopsMat[index(a, b)];
    }

    /** Shortest-path weight from a detector to the boundary. */
    double distToBoundary(uint32_t a) const { return distBoundary[a]; }

    /** Observable parity of the best path to the boundary. */
    uint64_t boundaryObs(uint32_t a) const { return obsBoundary[a]; }

    /** Hop count of the best path to the boundary. */
    int boundaryHops(uint32_t a) const { return hopsBoundary[a]; }

    /** True if b is unreachable from a without the boundary. */
    bool unreachable(uint32_t a, uint32_t b) const;

    uint32_t numDetectors() const { return n; }

  private:
    size_t index(uint32_t a, uint32_t b) const
    {
        return static_cast<size_t>(a) * n + b;
    }

    uint32_t n = 0;
    std::vector<float> distMat;
    std::vector<uint8_t> obsMat;
    std::vector<uint8_t> hopsMat;
    std::vector<double> distBoundary;
    std::vector<uint8_t> obsBoundary;
    std::vector<uint8_t> hopsBoundary;
};

} // namespace qec

#endif // QEC_GRAPH_PATH_TABLE_HPP
