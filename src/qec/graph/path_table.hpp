/**
 * @file
 * All-pairs shortest paths over the decoding graph.
 *
 * The matchers (MWPM, Astrea, Astrea-G) operate on a complete graph
 * over the flipped detectors whose edge weights are shortest-path
 * distances in the decoding graph; Promatch's Step 3 consults the
 * same table (the paper's on-chip "Path table", §4.2.2/Table 8).
 *
 * Boundary distances are computed with a multi-source Dijkstra seeded
 * by every boundary edge; pair distances never route through the
 * boundary (matching two defects "via the boundary" is represented as
 * two separate boundary matches instead).
 *
 * Data layout (docs/api.md "Data layout"): the three per-pair fields
 * (distance, path observable parity, hop count) are interleaved into
 * one 8-byte PathCell so a decode touches one cache line per pair
 * lookup instead of striding three separate n² arrays, and the
 * DistanceView gather streams all three fields in a single pass.
 * Every distance is float: the Dijkstra accumulates in double and
 * narrows once on store. (distBoundary was historically double while
 * distMat was float; they are unified to float so the gathered
 * DistanceView has one element type — a 24-bit mantissa is orders of
 * magnitude below the precision of any physical error prior.)
 *
 * Deferred mode: the pair half of the table is O(V²) cells plus V
 * per-source Dijkstras, which is what caps setup at d≈13 (≈54 MB at
 * d=17, ≈187 MB at d=21 — see bench/table8_storage.cpp). A table
 * constructed with PathTable::DeferPairs builds only the O(V)
 * boundary column and remembers the graph; pair distances are then
 * computed on demand by DistanceOracle / the sparse matcher (both
 * reproduce this file's Dijkstra bit-for-bit), and the pair-cell
 * accessors assert. pairsAvailable() tells the two modes apart.
 */

#ifndef QEC_GRAPH_PATH_TABLE_HPP
#define QEC_GRAPH_PATH_TABLE_HPP

#include <cstdint>
#include <vector>

#include "qec/graph/decoding_graph.hpp"
#include "qec/util/assert.hpp"

namespace qec
{

/** One interleaved entry of the all-pairs table. */
struct PathCell
{
    float dist = 0.0f;  //!< Shortest-path weight.
    uint8_t obs = 0;    //!< XOR of obs masks along the path.
    uint8_t hops = 255; //!< Edge count (255 = saturated).
};

static_assert(sizeof(PathCell) == 8,
              "PathCell must stay one half cache line per 8 pairs");

/** Precomputed distance / observable-parity / hop tables. */
class PathTable
{
  public:
    /** Tag selecting boundary-only construction (see file comment). */
    struct DeferPairs
    {
    };

    explicit PathTable(const DecodingGraph &graph);

    /** Boundary-only table: O(V) memory, one multi-source Dijkstra.
     *  Pair-cell accessors assert until pairsAvailable(). */
    PathTable(const DecodingGraph &graph, DeferPairs);

    /** False when constructed with DeferPairs: the O(V²) pair half
     *  was skipped and consumers must compute pair distances via a
     *  DistanceOracle instead. */
    bool pairsAvailable() const { return !cells.empty(); }

    /** The decoding graph this table was built over. */
    const DecodingGraph &graph() const { return *graph_; }

    /** Shortest-path weight between two detectors. */
    float dist(uint32_t a, uint32_t b) const
    {
        return cells[index(a, b)].dist;
    }

    /** XOR of observable masks along the shortest a-b path. */
    uint64_t pathObs(uint32_t a, uint32_t b) const
    {
        return cells[index(a, b)].obs;
    }

    /** Number of edges along the shortest a-b path (255 = saturated). */
    int pathHops(uint32_t a, uint32_t b) const
    {
        return cells[index(a, b)].hops;
    }

    /** The full interleaved cell of a detector pair. */
    const PathCell &cell(uint32_t a, uint32_t b) const
    {
        return cells[index(a, b)];
    }

    /** One row of the interleaved table (all pairs of detector a). */
    const PathCell *row(uint32_t a) const
    {
        return cells.data() + index(a, 0);
    }

    /** Shortest-path weight from a detector to the boundary. */
    float distToBoundary(uint32_t a) const
    {
        return boundary[a].dist;
    }

    /** Observable parity of the best path to the boundary. */
    uint64_t boundaryObs(uint32_t a) const { return boundary[a].obs; }

    /** Hop count of the best path to the boundary. */
    int boundaryHops(uint32_t a) const { return boundary[a].hops; }

    /** The full interleaved boundary cell of a detector. */
    const PathCell &boundaryCell(uint32_t a) const
    {
        return boundary[a];
    }

    /** True if b is unreachable from a without the boundary. */
    bool unreachable(uint32_t a, uint32_t b) const;

    uint32_t numDetectors() const { return n; }

  private:
    size_t index(uint32_t a, uint32_t b) const
    {
        QEC_ASSERT(pairsAvailable(),
                   "pair cells were deferred (DeferPairs); use a "
                   "DistanceOracle");
        return static_cast<size_t>(a) * n + b;
    }

    void buildBoundary(const DecodingGraph &graph);
    void buildPairs(const DecodingGraph &graph);

    const DecodingGraph *graph_ = nullptr;
    uint32_t n = 0;
    std::vector<PathCell> cells;    //!< n x n interleaved pairs.
    std::vector<PathCell> boundary; //!< Per-detector boundary column.
};

} // namespace qec

#endif // QEC_GRAPH_PATH_TABLE_HPP
