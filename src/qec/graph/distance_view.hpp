/**
 * @file
 * Gathered defect-to-defect distance view of one syndrome.
 *
 * The PathTable is an n² matrix (multi-MB at d >= 11); every decode
 * consults only the S×S submatrix of its S flipped detectors
 * (S = 2k <= ~48), but used to stride the full matrix for each
 * lookup. A DistanceView gathers that submatrix — pair cells and the
 * boundary column, all three fields (dist/obs/hops) per 8-byte
 * PathCell — once per decode into a dense cache-line-friendly block
 * that Promatch Step 3, the MWPM/Astrea problem builders, and the
 * solution read-back then hit repeatedly.
 *
 * Every gathered value is a bit-copy of the PathTable entry, so a
 * consumer reading the view is bit-identical with one reading the
 * table directly.
 *
 * Deferred tables: when the PathTable was built with DeferPairs
 * (no O(V²) pair half — the high-distance configuration), the
 * gather computes the S×S block on the fly with the view's own
 * DistanceOracle instead of copying table rows. The oracle
 * reproduces the table's Dijkstra bit-for-bit, so consumers cannot
 * tell the two gather paths apart.
 *
 * Reuse across a decode stack: the pipeline's predecoder gathers the
 * view for the full defect set; the main decoder's residual is a
 * subset, and subsetMap() resolves it against the already-gathered
 * block (a sorted merge) instead of regathering. One view lives in
 * each DecodeWorkspace; all buffers reuse their capacity, so a warm
 * view gathers without allocating.
 */

#ifndef QEC_GRAPH_DISTANCE_VIEW_HPP
#define QEC_GRAPH_DISTANCE_VIEW_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "qec/graph/distance_oracle.hpp"
#include "qec/graph/path_table.hpp"

namespace qec
{

/** Dense gathered submatrix of the PathTable for one defect set. */
class DistanceView
{
  public:
    /**
     * Gather the S×S pair cells and boundary column of `defects`
     * (sorted detector indices) out of `paths`. A no-op when the
     * view already covers exactly this set of this table.
     */
    void gather(const PathTable &paths,
                std::span<const uint32_t> defects);

    /** True if the view holds exactly `defects` of `paths`. */
    bool covers(const PathTable &paths,
                std::span<const uint32_t> defects) const;

    /**
     * Resolve `defects` against the gathered set: when every entry
     * is already present (the pipeline's residual-subset case, or an
     * exact match), fills `map[k]` = view index of defects[k] by a
     * sorted merge and returns true without touching the PathTable.
     * Returns false when the view must be (re)gathered first.
     */
    bool subsetMap(const PathTable &paths,
                   std::span<const uint32_t> defects,
                   std::vector<int32_t> &map) const;

    int size() const { return static_cast<int>(dets_.size()); }
    uint32_t det(int i) const { return dets_[i]; }

    /** The interleaved cell of local pair (i, j). */
    const PathCell &
    cell(int i, int j) const
    {
        return cells_[static_cast<size_t>(i) * stride_ + j];
    }

    float dist(int i, int j) const { return cell(i, j).dist; }
    uint64_t obs(int i, int j) const { return cell(i, j).obs; }
    int hops(int i, int j) const { return cell(i, j).hops; }

    const PathCell &boundaryCell(int i) const { return bcells_[i]; }
    float distToBoundary(int i) const { return bcells_[i].dist; }
    uint64_t boundaryObs(int i) const { return bcells_[i].obs; }
    int boundaryHops(int i) const { return bcells_[i].hops; }

  private:
    const PathTable *paths_ = nullptr;
    std::vector<uint32_t> dets_;
    size_t stride_ = 0;
    std::vector<PathCell> cells_;  //!< S×S gathered pair cells.
    std::vector<PathCell> bcells_; //!< Gathered boundary column.
    DistanceOracle oracle_;        //!< Deferred-table gather engine.
};

} // namespace qec

#endif // QEC_GRAPH_DISTANCE_VIEW_HPP
