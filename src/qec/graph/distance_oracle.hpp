/**
 * @file
 * On-demand shortest-path distances over the decoding graph.
 *
 * A DistanceOracle answers the same queries as a PathTable row —
 * PathCell{dist, obs, hops} from one source detector to a set of
 * target detectors — but computes them with a per-query Dijkstra
 * over the CSR adjacency instead of reading an O(V²) precomputed
 * matrix. It exists so high-distance stacks can run on a
 * PathTable built with DeferPairs (boundary column only, O(V)
 * memory): DistanceView falls back to it for gathers, and the
 * sparse matcher uses its truncated growth to discover candidate
 * edges locally.
 *
 * Bit-identity contract: the relax loop reproduces
 * PathTable::buildPairs exactly — the same (double dist, node id)
 * heap ordering (distinct entries are totally ordered, so the pop
 * sequence is independent of heap layout), the same
 * strict-improvement relaxation over adjacentEdges() with boundary
 * edges excluded as intermediate hops, double accumulation along
 * paths, and one float narrowing on record. Every cell the oracle
 * settles is therefore bit-identical to the dense table's cell for
 * the same pair.
 *
 * Truncated growth: Dijkstra settles nodes in nondecreasing
 * distance order and a settled label is final, so the search can
 * stop once the popped distance exceeds a caller radius — every
 * already-settled target holds its exact table value, and every
 * unsettled target is guaranteed to lie strictly beyond the radius
 * (reported as an infinite cell). The stop test narrows the popped
 * distance to float first so "beyond the radius" remains true of
 * the float value a dense-table consumer would have read.
 *
 * Memory contract: all scratch is epoch-stamped and reused, so a
 * warm oracle performs zero heap allocations per query (the
 * DecodeWorkspace property). One oracle must not be shared between
 * threads.
 */

#ifndef QEC_GRAPH_DISTANCE_ORACLE_HPP
#define QEC_GRAPH_DISTANCE_ORACLE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/path_table.hpp"

namespace qec
{

/** Reusable single-source Dijkstra engine over a decoding graph. */
class DistanceOracle
{
  public:
    /** Bind to a graph, sizing the scratch; cheap when already
     *  bound to the same graph. */
    void bind(const DecodingGraph &graph);

    const DecodingGraph *boundGraph() const { return graph_; }

    /**
     * Single-source growth from `src`: fills out[k] with the
     * PathCell for targets[k] (bit-identical to the dense
     * PathTable entry) for every target settled within `radius`;
     * targets beyond the radius — or unreachable without crossing
     * the boundary — come back as {inf, 0, 255}. The search stops
     * as soon as every target is settled or the frontier passes
     * the radius, whichever is first; pass an infinite radius to
     * settle all reachable targets (a full table-row gather).
     *
     * `targets` must be distinct detector indices; `out` must hold
     * targets.size() cells. `src` may itself appear in `targets`
     * (settled immediately at distance zero, like the table's
     * diagonal).
     */
    void grow(uint32_t src, std::span<const uint32_t> targets,
              double radius, PathCell *out);

  private:
    /** Dijkstra state entry: (distance, node). */
    using HeapEntry = std::pair<double, uint32_t>;

    void nextEpoch();

    const DecodingGraph *graph_ = nullptr;
    uint32_t n_ = 0;
    uint32_t epoch_ = 0;
    // Epoch-stamped labels: dist_/obs_/hops_ are valid (and done_
    // means settled) only where the matching stamp equals epoch_,
    // so a new query needs no O(V) clear.
    std::vector<uint32_t> stamp_;
    std::vector<uint32_t> doneStamp_;
    std::vector<double> dist_;
    std::vector<uint8_t> obs_;
    std::vector<uint16_t> hops_;
    // Stamped target membership: slot into `out` per detector.
    std::vector<uint32_t> targetStamp_;
    std::vector<uint32_t> targetSlot_;
    std::vector<HeapEntry> heap_; //!< Binary heap via push/pop_heap.
};

} // namespace qec

#endif // QEC_GRAPH_DISTANCE_ORACLE_HPP
