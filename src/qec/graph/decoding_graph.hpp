/**
 * @file
 * The decoding graph (§2.2 of the paper).
 *
 * Nodes are detectors (plus one virtual boundary); edges are graphlike
 * error mechanisms weighted by w = log((1-p)/p), so that a
 * minimum-weight matching corresponds to a maximum-probability error
 * hypothesis.
 */

#ifndef QEC_GRAPH_DECODING_GRAPH_HPP
#define QEC_GRAPH_DECODING_GRAPH_HPP

#include <cstdint>
#include <vector>

#include "qec/dem/decompose.hpp"
#include "qec/surface/circuit_gen.hpp"

namespace qec
{

/** One weighted edge of the decoding graph. */
struct GraphEdge
{
    uint32_t id = 0;        //!< Position in edges().
    uint32_t u = 0;         //!< First detector.
    uint32_t v = kBoundary; //!< Second detector or kBoundary.
    double prob = 0.0;      //!< Combined mechanism probability.
    double weight = 0.0;    //!< log((1-p)/p).
    uint64_t obsMask = 0;   //!< Observables crossed by this edge.
};

/** Weighted detector graph with a virtual boundary node. */
class DecodingGraph
{
  public:
    /**
     * Build from a graphlike DEM. Parallel edges with different
     * observable masks are merged into the most probable variant
     * (with XOR-combined probability); the number of such conflicts
     * is reported by obsConflicts().
     *
     * @param coords optional space-time coordinates per detector
     *               (from MemoryExperiment), used by predecoder
     *               heuristics and debug output.
     */
    static DecodingGraph fromDem(const GraphlikeDem &dem,
                                 std::vector<DetectorCoord> coords = {});

    uint32_t numDetectors() const { return numDetectors_; }
    uint32_t numObservables() const { return numObservables_; }

    const std::vector<GraphEdge> &edges() const { return edges_; }

    /** Ids of edges incident to a detector (boundary edges included). */
    const std::vector<uint32_t> &adjacentEdges(uint32_t det) const
    {
        return adjacency[det];
    }

    /** Edge id between two detectors, or -1 if not adjacent. */
    int edgeBetween(uint32_t a, uint32_t b) const;

    /** Boundary edge id of a detector, or -1 if none. */
    int boundaryEdge(uint32_t det) const { return boundaryEdgeOf[det]; }

    /** Number of parallel-edge observable conflicts during merge. */
    uint32_t obsConflicts() const { return obsConflicts_; }

    /** Space-time coordinate of a detector (empty vector if unset). */
    const std::vector<DetectorCoord> &coords() const { return coords_; }

    /** Mean number of pair-edges per detector (graph sparsity). */
    double averageDegree() const;

  private:
    uint32_t numDetectors_ = 0;
    uint32_t numObservables_ = 0;
    uint32_t obsConflicts_ = 0;
    std::vector<GraphEdge> edges_;
    std::vector<std::vector<uint32_t>> adjacency;
    std::vector<int> boundaryEdgeOf;
    std::vector<DetectorCoord> coords_;
};

/** Matching weight of an error probability: log((1-p)/p). */
double probToWeight(double prob);

} // namespace qec

#endif // QEC_GRAPH_DECODING_GRAPH_HPP
