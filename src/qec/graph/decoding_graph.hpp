/**
 * @file
 * The decoding graph (§2.2 of the paper).
 *
 * Nodes are detectors (plus one virtual boundary); edges are graphlike
 * error mechanisms weighted by w = log((1-p)/p), so that a
 * minimum-weight matching corresponds to a maximum-probability error
 * hypothesis.
 *
 * Data layout (docs/api.md "Data layout"): adjacency is stored as a
 * CSR — one offsets array plus one flat edge-id array — instead of a
 * vector-of-vectors, and the edge fields consulted by the decode
 * inner loops (weight, observable mask, endpoints) are additionally
 * split into SoA arrays. The weight SoA is float: path distances are
 * already float in the PathTable, and a 24-bit mantissa is far below
 * the physical uncertainty of any error prior. The full-precision
 * GraphEdge AoS remains the construction-time source of truth (the
 * PathTable Dijkstra accumulates the double weights).
 */

#ifndef QEC_GRAPH_DECODING_GRAPH_HPP
#define QEC_GRAPH_DECODING_GRAPH_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "qec/dem/decompose.hpp"
#include "qec/surface/circuit_gen.hpp"

namespace qec
{

/** One weighted edge of the decoding graph. */
struct GraphEdge
{
    uint32_t id = 0;        //!< Position in edges().
    uint32_t u = 0;         //!< First detector.
    uint32_t v = kBoundary; //!< Second detector or kBoundary.
    double prob = 0.0;      //!< Combined mechanism probability.
    double weight = 0.0;    //!< log((1-p)/p).
    uint64_t obsMask = 0;   //!< Observables crossed by this edge.
};

/** One entry of the pair-edge CSR: in-graph neighbor + edge id. */
struct PairHalfEdge
{
    uint32_t neighbor = 0; //!< The detector across the edge.
    uint32_t edgeId = 0;   //!< Position in edges().
};

/** Weighted detector graph with a virtual boundary node. */
class DecodingGraph
{
  public:
    /**
     * Build from a graphlike DEM. Parallel edges with different
     * observable masks are merged into the most probable variant
     * (with XOR-combined probability); the number of such conflicts
     * is reported by obsConflicts().
     *
     * @param coords optional space-time coordinates per detector
     *               (from MemoryExperiment), used by predecoder
     *               heuristics and debug output.
     */
    static DecodingGraph fromDem(const GraphlikeDem &dem,
                                 std::vector<DetectorCoord> coords = {});

    uint32_t numDetectors() const { return numDetectors_; }
    uint32_t numObservables() const { return numObservables_; }

    const std::vector<GraphEdge> &edges() const { return edges_; }

    /** Ids of edges incident to a detector (boundary edges included),
     *  in construction order — row det of the adjacency CSR. */
    std::span<const uint32_t>
    adjacentEdges(uint32_t det) const
    {
        return {adjEdgeIds_.data() + adjOffsets_[det],
                adjEdgeIds_.data() + adjOffsets_[det + 1]};
    }

    /**
     * Detector-detector half-edges of a detector (boundary edges
     * excluded), in the same relative order as adjacentEdges(). The
     * hot subgraph construction walks these 8-byte records instead
     * of chasing edge ids into the 40-byte GraphEdge AoS.
     */
    std::span<const PairHalfEdge>
    pairNeighbors(uint32_t det) const
    {
        return {pairHalfEdges_.data() + pairOffsets_[det],
                pairHalfEdges_.data() + pairOffsets_[det + 1]};
    }

    // --- SoA hot fields, bit-copied from the GraphEdge AoS at
    // construction (weight additionally narrowed to float — the
    // documented precision choice of the decode inner loops).
    float edgeWeight(uint32_t eid) const { return edgeWeightF_[eid]; }
    uint64_t edgeObsMask(uint32_t eid) const { return edgeObs_[eid]; }
    uint32_t edgeU(uint32_t eid) const { return edgeEndU_[eid]; }
    /** Second endpoint, or kBoundary. */
    uint32_t edgeV(uint32_t eid) const { return edgeEndV_[eid]; }

    /** Edge id between two detectors, or -1 if not adjacent. */
    int edgeBetween(uint32_t a, uint32_t b) const;

    /** Boundary edge id of a detector, or -1 if none. */
    int boundaryEdge(uint32_t det) const { return boundaryEdgeOf[det]; }

    /** Number of parallel-edge observable conflicts during merge. */
    uint32_t obsConflicts() const { return obsConflicts_; }

    /** Space-time coordinate of a detector (empty vector if unset). */
    const std::vector<DetectorCoord> &coords() const { return coords_; }

    /** Mean number of pair-edges per detector (graph sparsity). */
    double averageDegree() const;

  private:
    uint32_t numDetectors_ = 0;
    uint32_t numObservables_ = 0;
    uint32_t obsConflicts_ = 0;
    std::vector<GraphEdge> edges_;
    // Adjacency CSR: row det spans
    // [adjOffsets_[det], adjOffsets_[det+1]) of adjEdgeIds_.
    std::vector<uint32_t> adjOffsets_;
    std::vector<uint32_t> adjEdgeIds_;
    // Pair-edge CSR (boundary edges filtered out at construction).
    std::vector<uint32_t> pairOffsets_;
    std::vector<PairHalfEdge> pairHalfEdges_;
    // SoA hot fields, parallel to edges_.
    std::vector<float> edgeWeightF_;
    std::vector<uint64_t> edgeObs_;
    std::vector<uint32_t> edgeEndU_;
    std::vector<uint32_t> edgeEndV_;
    std::vector<int> boundaryEdgeOf;
    std::vector<DetectorCoord> coords_;
};

/** Matching weight of an error probability: log((1-p)/p). */
double probToWeight(double prob);

} // namespace qec

#endif // QEC_GRAPH_DECODING_GRAPH_HPP
