#include "qec/graph/distance_oracle.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "qec/util/assert.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

namespace
{

constexpr float kInf = std::numeric_limits<float>::infinity();

} // namespace

void
DistanceOracle::bind(const DecodingGraph &graph)
{
    if (graph_ == &graph) {
        return;
    }
    graph_ = &graph;
    n_ = graph.numDetectors();
    epoch_ = 0;
    rt::assignFill(stamp_, n_, uint32_t{0});
    rt::assignFill(doneStamp_, n_, uint32_t{0});
    rt::resizeTo(dist_, n_);
    rt::resizeTo(obs_, n_);
    rt::resizeTo(hops_, n_);
    rt::assignFill(targetStamp_, n_, uint32_t{0});
    rt::resizeTo(targetSlot_, n_);
}

void
DistanceOracle::nextEpoch()
{
    if (++epoch_ == 0) {
        // Stamp wraparound: invalidate everything the hard way.
        std::fill(stamp_.begin(), stamp_.end(), 0);
        std::fill(doneStamp_.begin(), doneStamp_.end(), 0);
        std::fill(targetStamp_.begin(), targetStamp_.end(), 0);
        epoch_ = 1;
    }
}

void
DistanceOracle::grow(uint32_t src, std::span<const uint32_t> targets,
                     double radius, PathCell *out)
{
    QEC_REALTIME;
    QEC_ASSERT(graph_ != nullptr, "DistanceOracle is not bound");
    const DecodingGraph &graph = *graph_;
    nextEpoch();
    size_t remaining = targets.size();
    for (size_t k = 0; k < targets.size(); ++k) {
        out[k] = PathCell{kInf, 0, 255};
        targetStamp_[targets[k]] = epoch_;
        targetSlot_[targets[k]] = static_cast<uint32_t>(k);
    }

    heap_.clear();
    dist_[src] = 0.0;
    obs_[src] = 0;
    hops_[src] = 0;
    stamp_[src] = epoch_;
    rt::pushBack(heap_, {0.0, src});

    // The relax loop mirrors PathTable::buildPairs (see the header's
    // bit-identity contract); the vector heap with std::greater<>
    // pops the same (dist, node) sequence as the table's
    // priority_queue because distinct entries are totally ordered.
    while (!heap_.empty() && remaining > 0) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        const auto [du, u] = heap_.back();
        heap_.pop_back();
        if (doneStamp_[u] == epoch_) {
            continue;
        }
        if (static_cast<double>(static_cast<float>(du)) > radius) {
            // Frontier past the radius: every unsettled target is
            // provably farther than the radius even after float
            // narrowing, which is what the caller's pruning needs.
            break;
        }
        doneStamp_[u] = epoch_;
        if (targetStamp_[u] == epoch_) {
            PathCell &cell = out[targetSlot_[u]];
            cell.dist = static_cast<float>(du);
            cell.obs = obs_[u];
            cell.hops = static_cast<uint8_t>(
                std::min<uint16_t>(hops_[u], 255));
            --remaining;
        }
        for (uint32_t eid : graph.adjacentEdges(u)) {
            const GraphEdge &edge = graph.edges()[eid];
            if (edge.v == kBoundary) {
                continue; // Boundary is never an intermediate hop.
            }
            const uint32_t w = (edge.u == u) ? edge.v : edge.u;
            const double dw = du + edge.weight;
            const bool fresh = stamp_[w] != epoch_;
            if (fresh || dw < dist_[w]) {
                dist_[w] = dw;
                obs_[w] =
                    obs_[u] ^ static_cast<uint8_t>(edge.obsMask);
                hops_[w] = static_cast<uint16_t>(hops_[u] + 1);
                stamp_[w] = epoch_;
                rt::pushBack(heap_, {dw, w});
                std::push_heap(heap_.begin(), heap_.end(),
                               std::greater<>{});
            }
        }
    }
}

} // namespace qec
