#include "qec/graph/decoding_graph.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "qec/util/assert.hpp"

namespace qec
{

double
probToWeight(double prob)
{
    QEC_ASSERT(prob > 0.0 && prob < 0.5,
               "edge probability must be in (0, 0.5)");
    return std::log((1.0 - prob) / prob);
}

DecodingGraph
DecodingGraph::fromDem(const GraphlikeDem &dem,
                       std::vector<DetectorCoord> coords)
{
    DecodingGraph graph;
    graph.numDetectors_ = dem.numDetectors;
    graph.numObservables_ = dem.numObservables;
    graph.coords_ = std::move(coords);
    QEC_ASSERT(graph.coords_.empty() ||
                   graph.coords_.size() == dem.numDetectors,
               "coordinate list size mismatch");

    // Merge parallel edges (same endpoints, different obs variants):
    // probabilities XOR-combine; the most probable variant supplies
    // the observable mask.
    struct Variant
    {
        double prob = 0.0;
        double bestProb = 0.0;
        uint64_t obsMask = 0;
        uint32_t variants = 0;
    };
    std::map<std::pair<uint32_t, uint32_t>, Variant> merged;
    for (const DemEdge &edge : dem.edges) {
        auto key = std::make_pair(std::min(edge.u, edge.v),
                                  std::max(edge.u, edge.v));
        Variant &slot = merged[key];
        slot.prob = xorProbability(slot.prob, edge.prob);
        if (edge.prob > slot.bestProb) {
            slot.bestProb = edge.prob;
            slot.obsMask = edge.obsMask;
        }
        ++slot.variants;
    }

    graph.boundaryEdgeOf.assign(dem.numDetectors, -1);
    for (const auto &[key, variant] : merged) {
        if (variant.variants > 1) {
            graph.obsConflicts_ += variant.variants - 1;
        }
        GraphEdge edge;
        edge.id = static_cast<uint32_t>(graph.edges_.size());
        edge.u = key.first;
        edge.v = key.second;
        edge.prob = variant.prob;
        edge.weight = probToWeight(variant.prob);
        edge.obsMask = variant.obsMask;
        graph.edges_.push_back(edge);
        if (edge.v == kBoundary) {
            graph.boundaryEdgeOf[edge.u] =
                static_cast<int>(edge.id);
        }
    }

    // SoA hot fields: bit-copies of the AoS (weight narrowed to
    // float, the documented inner-loop precision).
    const size_t m = graph.edges_.size();
    graph.edgeWeightF_.resize(m);
    graph.edgeObs_.resize(m);
    graph.edgeEndU_.resize(m);
    graph.edgeEndV_.resize(m);
    for (size_t e = 0; e < m; ++e) {
        const GraphEdge &edge = graph.edges_[e];
        graph.edgeWeightF_[e] = static_cast<float>(edge.weight);
        graph.edgeObs_[e] = edge.obsMask;
        graph.edgeEndU_[e] = edge.u;
        graph.edgeEndV_[e] = edge.v;
    }

    // Adjacency CSR (edge-id insertion order per row matches the
    // historical vector-of-vectors: ascending edge id, because edges
    // are created in merged-map order and appended to both endpoint
    // rows). Counting pass, prefix sum, then fill.
    const uint32_t n = dem.numDetectors;
    graph.adjOffsets_.assign(n + 1, 0);
    graph.pairOffsets_.assign(n + 1, 0);
    for (const GraphEdge &edge : graph.edges_) {
        ++graph.adjOffsets_[edge.u + 1];
        if (edge.v != kBoundary) {
            ++graph.adjOffsets_[edge.v + 1];
            ++graph.pairOffsets_[edge.u + 1];
            ++graph.pairOffsets_[edge.v + 1];
        }
    }
    for (uint32_t d = 0; d < n; ++d) {
        graph.adjOffsets_[d + 1] += graph.adjOffsets_[d];
        graph.pairOffsets_[d + 1] += graph.pairOffsets_[d];
    }
    graph.adjEdgeIds_.resize(graph.adjOffsets_[n]);
    graph.pairHalfEdges_.resize(graph.pairOffsets_[n]);
    std::vector<uint32_t> adjFill(graph.adjOffsets_.begin(),
                                  graph.adjOffsets_.end() - 1);
    std::vector<uint32_t> pairFill(graph.pairOffsets_.begin(),
                                   graph.pairOffsets_.end() - 1);
    for (const GraphEdge &edge : graph.edges_) {
        graph.adjEdgeIds_[adjFill[edge.u]++] = edge.id;
        if (edge.v != kBoundary) {
            graph.adjEdgeIds_[adjFill[edge.v]++] = edge.id;
            graph.pairHalfEdges_[pairFill[edge.u]++] = {edge.v,
                                                        edge.id};
            graph.pairHalfEdges_[pairFill[edge.v]++] = {edge.u,
                                                        edge.id};
        }
    }
    return graph;
}

int
DecodingGraph::edgeBetween(uint32_t a, uint32_t b) const
{
    const auto smaller =
        adjacentEdges(a).size() <= adjacentEdges(b).size()
            ? adjacentEdges(a)
            : adjacentEdges(b);
    for (uint32_t id : smaller) {
        const GraphEdge &edge = edges_[id];
        if ((edge.u == a && edge.v == b) ||
            (edge.u == b && edge.v == a)) {
            return static_cast<int>(id);
        }
    }
    return -1;
}

double
DecodingGraph::averageDegree() const
{
    if (numDetectors_ == 0) {
        return 0.0;
    }
    size_t pair_slots = 0;
    for (const GraphEdge &edge : edges_) {
        if (edge.v != kBoundary) {
            pair_slots += 2;
        }
    }
    return static_cast<double>(pair_slots) / numDetectors_;
}

} // namespace qec
