#include "qec/surface/circuit_gen.hpp"

#include <algorithm>
#include <array>
#include <set>

#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

/**
 * Corner visit orders (offsets into the plaquette) for the two
 * stabilizer types. An X fault on an X ancilla (the CX control)
 * mid-round sprays a partial X stabilizer onto the corners visited
 * *after* the fault; the dangerous case is the two-corner suffix
 * after step 1. X plaquettes therefore sweep NW, NE, SW, SE ("N"
 * shape) so that suffix {SW, SE} is a horizontal pair —
 * perpendicular to the vertical logical X, preserving the effective
 * distance of the Z-memory experiment. Z plaquettes sweep
 * NW, SW, NE, SE ("Z" shape) so their Z hooks land vertically,
 * perpendicular to the horizontal logical Z (the symmetric property
 * for X memory). The two orders share steps 0 and 3 and differ in
 * the middle, which the checkerboard parity makes conflict-free
 * (asserted below).
 */
constexpr std::array<std::pair<int, int>, 4> kOrderZ = {
    {{0, 0}, {1, 0}, {0, 1}, {1, 1}}};
constexpr std::array<std::pair<int, int>, 4> kOrderX = {
    {{0, 0}, {0, 1}, {1, 0}, {1, 1}}};

/** Data qubit at a plaquette corner, or -1 if off-grid. */
int
cornerData(const SurfaceCodeLayout &layout, const Stabilizer &stab,
           std::pair<int, int> offset)
{
    const int r = stab.row + offset.first;
    const int c = stab.col + offset.second;
    const int d = layout.distance();
    if (r < 0 || r >= d || c < 0 || c >= d) {
        return -1;
    }
    return static_cast<int>(layout.dataIndex(r, c));
}

} // namespace

namespace
{

/** Shared generator for both measurement bases. */
MemoryExperiment
generateMemory(const SurfaceCodeLayout &layout, int rounds,
               const NoiseParams &noise, StabType basis)
{
    QEC_ASSERT(rounds >= 1, "memory experiment needs >= 1 round");

    MemoryExperiment exp;
    exp.rounds = rounds;
    Circuit &circuit = exp.circuit;
    circuit.setNumQubits(layout.numQubits());

    std::vector<uint32_t> all_data;
    for (uint32_t q = 0; q < layout.numDataQubits(); ++q) {
        all_data.push_back(q);
    }
    std::vector<uint32_t> all_ancilla, x_ancilla;
    for (const Stabilizer &stab : layout.stabilizers()) {
        all_ancilla.push_back(stab.ancilla);
        if (stab.type == StabType::X) {
            x_ancilla.push_back(stab.ancilla);
        }
    }

    // Precompute the CX pair list for each of the 4 schedule steps and
    // assert that no qubit is touched twice within a step.
    std::array<std::vector<uint32_t>, 4> step_pairs;
    for (int step = 0; step < 4; ++step) {
        std::set<uint32_t> touched;
        for (const Stabilizer &stab : layout.stabilizers()) {
            const auto offset = (stab.type == StabType::Z)
                                    ? kOrderZ[step]
                                    : kOrderX[step];
            const int data = cornerData(layout, stab, offset);
            if (data < 0) {
                continue;
            }
            // Z ancillas are CX targets (collect data X parity);
            // X ancillas are CX controls (spread X to data).
            uint32_t control, target;
            if (stab.type == StabType::Z) {
                control = static_cast<uint32_t>(data);
                target = stab.ancilla;
            } else {
                control = stab.ancilla;
                target = static_cast<uint32_t>(data);
            }
            QEC_ASSERT(touched.insert(control).second,
                       "CX schedule conflict on control qubit");
            QEC_ASSERT(touched.insert(target).second,
                       "CX schedule conflict on target qubit");
            step_pairs[step].push_back(control);
            step_pairs[step].push_back(target);
        }
    }

    // --- Initialization: reset everything, with reset errors. For
    // the X basis the data qubits are then rotated into |+> (with
    // one-qubit gate noise on the H layer).
    circuit.appendReset(all_data);
    if (noise.resetFlip > 0.0) {
        circuit.appendXError(all_data, noise.resetFlip);
    }
    if (basis == StabType::X) {
        circuit.appendH(all_data);
        if (noise.gateDepolarize1 > 0.0) {
            circuit.appendDepolarize1(all_data,
                                      noise.gateDepolarize1);
        }
    }

    // Measurement record base index of each round's ancilla block.
    std::vector<uint32_t> round_meas_base(rounds, 0);

    for (int round = 0; round < rounds; ++round) {
        circuit.appendTick();

        // (1) Start-of-round depolarizing on data qubits.
        if (noise.dataDepolarize > 0.0) {
            circuit.appendDepolarize1(all_data, noise.dataDepolarize);
        }

        // Ancilla reset (with initialization errors).
        circuit.appendReset(all_ancilla);
        if (noise.resetFlip > 0.0) {
            circuit.appendXError(all_ancilla, noise.resetFlip);
        }

        // Basis change for X stabilizers.
        circuit.appendH(x_ancilla);
        if (noise.gateDepolarize1 > 0.0) {
            circuit.appendDepolarize1(x_ancilla, noise.gateDepolarize1);
        }

        // Four CX layers with two-qubit depolarizing after each.
        for (int step = 0; step < 4; ++step) {
            circuit.appendCx(step_pairs[step]);
            if (noise.gateDepolarize2 > 0.0) {
                circuit.appendDepolarize2(step_pairs[step],
                                          noise.gateDepolarize2);
            }
        }

        circuit.appendH(x_ancilla);
        if (noise.gateDepolarize1 > 0.0) {
            circuit.appendDepolarize1(x_ancilla, noise.gateDepolarize1);
        }

        // Measure all ancillas (stabilizer order).
        round_meas_base[round] =
            circuit.appendMeasure(all_ancilla, noise.measureFlip);

        // Detectors on the stabilizers of the memory basis only.
        const auto &z_stabs = (basis == StabType::Z)
                                  ? layout.zStabilizers()
                                  : layout.xStabilizers();
        for (uint32_t zo = 0; zo < z_stabs.size(); ++zo) {
            const uint32_t stab_index = z_stabs[zo];
            const uint32_t rec = round_meas_base[round] + stab_index;
            if (round == 0) {
                circuit.appendDetector({rec});
            } else {
                const uint32_t prev =
                    round_meas_base[round - 1] + stab_index;
                circuit.appendDetector({rec, prev});
            }
            const Stabilizer &stab =
                layout.stabilizers()[stab_index];
            exp.detectors.push_back(
                {zo, round, stab.row, stab.col});
        }
    }

    // --- Final transversal data measurement (basis change first
    // for X memory).
    circuit.appendTick();
    if (basis == StabType::X) {
        circuit.appendH(all_data);
        if (noise.gateDepolarize1 > 0.0) {
            circuit.appendDepolarize1(all_data,
                                      noise.gateDepolarize1);
        }
    }
    const uint32_t data_base =
        circuit.appendMeasure(all_data, noise.measureFlip);

    const auto &z_stabs = (basis == StabType::Z)
                              ? layout.zStabilizers()
                              : layout.xStabilizers();
    for (uint32_t zo = 0; zo < z_stabs.size(); ++zo) {
        const uint32_t stab_index = z_stabs[zo];
        const Stabilizer &stab = layout.stabilizers()[stab_index];
        std::vector<uint32_t> recs;
        for (uint32_t q : stab.support) {
            recs.push_back(data_base + q);
        }
        recs.push_back(round_meas_base[rounds - 1] + stab_index);
        circuit.appendDetector(recs);
        exp.detectors.push_back({zo, rounds, stab.row, stab.col});
    }

    std::vector<uint32_t> obs_recs;
    const auto &logical = (basis == StabType::Z)
                              ? layout.logicalZSupport()
                              : layout.logicalXSupport();
    for (uint32_t q : logical) {
        obs_recs.push_back(data_base + q);
    }
    circuit.appendObservable(0, obs_recs);

    circuit.validate();
    QEC_ASSERT(exp.detectors.size() == circuit.numDetectors(),
               "detector metadata out of sync");
    return exp;
}

} // namespace

MemoryExperiment
generateMemoryZ(const SurfaceCodeLayout &layout, int rounds,
                const NoiseParams &noise)
{
    return generateMemory(layout, rounds, noise, StabType::Z);
}

MemoryExperiment
generateMemoryX(const SurfaceCodeLayout &layout, int rounds,
                const NoiseParams &noise)
{
    return generateMemory(layout, rounds, noise, StabType::X);
}

} // namespace qec
