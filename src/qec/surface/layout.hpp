/**
 * @file
 * Rotated surface code lattice (Fig. 2(a) of the Promatch paper).
 *
 * A distance-d rotated surface code has d*d data qubits on a square
 * grid and d*d-1 weight-4/weight-2 stabilizers on the plaquettes
 * between them. The constructor derives the stabilizer supports from
 * the standard checkerboard convention, then *proves* the construction
 * correct: stabilizer counts, pairwise commutation, GF(2) independence,
 * and logical operators (found by kernel computation, not hard-coded)
 * are all checked before the object is returned.
 */

#ifndef QEC_SURFACE_LAYOUT_HPP
#define QEC_SURFACE_LAYOUT_HPP

#include <cstdint>
#include <vector>

#include "qec/util/bitvec.hpp"

namespace qec
{

/** Stabilizer type: Z stabilizers detect X errors and vice versa. */
enum class StabType : uint8_t { Z, X };

/** One stabilizer (plaquette) of the rotated code. */
struct Stabilizer
{
    StabType type;
    /** Plaquette row/col (top-left data corner); -1 for boundary. */
    int row;
    int col;
    /** Data qubit indices in the support (2 or 4 of them). */
    std::vector<uint32_t> support;
    /** Ancilla qubit index used to measure this stabilizer. */
    uint32_t ancilla;
};

/**
 * Rotated surface code layout for odd distance d >= 3.
 *
 * Data qubits are indices [0, d*d); ancillas follow at
 * [d*d, d*d + d*d - 1). Conventions: X-type weight-2 stabilizers sit on
 * the top/bottom boundaries, Z-type on left/right; the logical X is a
 * vertical chain and logical Z a horizontal one (both derived, then
 * verified).
 */
class SurfaceCodeLayout
{
  public:
    /** Build and self-validate a distance-d layout. */
    explicit SurfaceCodeLayout(int distance);

    int distance() const { return d; }
    uint32_t numDataQubits() const { return static_cast<uint32_t>(d * d); }
    uint32_t numStabilizers() const
    {
        return static_cast<uint32_t>(stabs.size());
    }
    uint32_t numQubits() const
    {
        return numDataQubits() + numStabilizers();
    }

    /** Data qubit index at grid position (row, col). */
    uint32_t dataIndex(int row, int col) const;

    /** All stabilizers; Z-type first, then X-type. */
    const std::vector<Stabilizer> &stabilizers() const { return stabs; }

    /** Indices into stabilizers() of the Z-type (X-type) entries. */
    const std::vector<uint32_t> &zStabilizers() const { return zIdx; }
    const std::vector<uint32_t> &xStabilizers() const { return xIdx; }

    /**
     * Support of the logical Z (X) operator over data qubits, as
     * derived from the GF(2) kernel. Logical Z is the observable of
     * the memory-Z experiment.
     */
    const std::vector<uint32_t> &logicalZSupport() const
    {
        return logicalZ;
    }
    const std::vector<uint32_t> &logicalXSupport() const
    {
        return logicalX;
    }

  private:
    void buildStabilizers();
    void validate() const;
    void deriveLogicals();

    int d;
    std::vector<Stabilizer> stabs;
    std::vector<uint32_t> zIdx;
    std::vector<uint32_t> xIdx;
    std::vector<uint32_t> logicalZ;
    std::vector<uint32_t> logicalX;
};

} // namespace qec

#endif // QEC_SURFACE_LAYOUT_HPP
