#include "qec/surface/layout.hpp"

#include <algorithm>

#include "qec/gf2/gf2.hpp"
#include "qec/util/assert.hpp"

namespace qec
{

SurfaceCodeLayout::SurfaceCodeLayout(int distance) : d(distance)
{
    QEC_ASSERT(d >= 3 && (d % 2) == 1,
               "rotated surface code requires odd distance >= 3");
    buildStabilizers();
    validate();
    deriveLogicals();
}

uint32_t
SurfaceCodeLayout::dataIndex(int row, int col) const
{
    QEC_ASSERT(row >= 0 && row < d && col >= 0 && col < d,
               "data coordinate out of range");
    return static_cast<uint32_t>(row * d + col);
}

void
SurfaceCodeLayout::buildStabilizers()
{
    // Plaquette (r, c) has data corners (r,c), (r,c+1), (r+1,c),
    // (r+1,c+1) clipped to the grid. Checkerboard: Z-type iff (r+c)
    // is even. Weight-2 boundary plaquettes are kept only where their
    // type belongs: X on top/bottom rows, Z on left/right columns.
    std::vector<Stabilizer> z_list, x_list;
    for (int r = -1; r < d; ++r) {
        for (int c = -1; c < d; ++c) {
            std::vector<uint32_t> support;
            for (int dr = 0; dr <= 1; ++dr) {
                for (int dc = 0; dc <= 1; ++dc) {
                    const int rr = r + dr, cc = c + dc;
                    if (rr >= 0 && rr < d && cc >= 0 && cc < d) {
                        support.push_back(dataIndex(rr, cc));
                    }
                }
            }
            if (support.size() < 2) {
                continue;
            }
            const StabType type =
                ((r + c) % 2 == 0) ? StabType::Z : StabType::X;
            if (support.size() == 2) {
                const bool top_bottom = (r == -1 || r == d - 1);
                if (top_bottom && type != StabType::X) {
                    continue;
                }
                if (!top_bottom && type != StabType::Z) {
                    continue;
                }
            }
            std::sort(support.begin(), support.end());
            Stabilizer stab{type, r, c, std::move(support), 0};
            (type == StabType::Z ? z_list : x_list)
                .push_back(std::move(stab));
        }
    }

    // Z stabilizers first, then X; ancilla indices follow the data.
    stabs.clear();
    for (auto &s : z_list) {
        stabs.push_back(std::move(s));
    }
    for (auto &s : x_list) {
        stabs.push_back(std::move(s));
    }
    for (size_t i = 0; i < stabs.size(); ++i) {
        stabs[i].ancilla =
            numDataQubits() + static_cast<uint32_t>(i);
        if (stabs[i].type == StabType::Z) {
            zIdx.push_back(static_cast<uint32_t>(i));
        } else {
            xIdx.push_back(static_cast<uint32_t>(i));
        }
    }
}

void
SurfaceCodeLayout::validate() const
{
    const uint32_t expected = static_cast<uint32_t>(d * d - 1);
    QEC_ASSERT(stabs.size() == expected,
               "stabilizer count != d*d-1");
    QEC_ASSERT(zIdx.size() == expected / 2 && xIdx.size() == expected / 2,
               "Z/X stabilizer counts unbalanced");

    // Pairwise commutation: every X stabilizer must overlap every Z
    // stabilizer in an even number of data qubits.
    for (uint32_t zi : zIdx) {
        for (uint32_t xi : xIdx) {
            const auto &a = stabs[zi].support;
            const auto &b = stabs[xi].support;
            int overlap = 0;
            for (uint32_t q : a) {
                if (std::binary_search(b.begin(), b.end(), q)) {
                    ++overlap;
                }
            }
            QEC_ASSERT(overlap % 2 == 0,
                       "X and Z stabilizers anticommute");
        }
    }

    // GF(2) independence of each stabilizer family.
    Gf2Matrix z_mat(0, numDataQubits());
    Gf2Matrix x_mat(0, numDataQubits());
    for (uint32_t zi : zIdx) {
        BitVec row(numDataQubits());
        for (uint32_t q : stabs[zi].support) {
            row.set(q, true);
        }
        z_mat.appendRow(row);
    }
    for (uint32_t xi : xIdx) {
        BitVec row(numDataQubits());
        for (uint32_t q : stabs[xi].support) {
            row.set(q, true);
        }
        x_mat.appendRow(row);
    }
    QEC_ASSERT(z_mat.rank() == zIdx.size(),
               "Z stabilizers not independent");
    QEC_ASSERT(x_mat.rank() == xIdx.size(),
               "X stabilizers not independent");
}

void
SurfaceCodeLayout::deriveLogicals()
{
    // Build support matrices once more (cheap at these sizes).
    Gf2Matrix z_mat(0, numDataQubits());
    Gf2Matrix x_mat(0, numDataQubits());
    for (uint32_t zi : zIdx) {
        BitVec row(numDataQubits());
        for (uint32_t q : stabs[zi].support) {
            row.set(q, true);
        }
        z_mat.appendRow(row);
    }
    for (uint32_t xi : xIdx) {
        BitVec row(numDataQubits());
        for (uint32_t q : stabs[xi].support) {
            row.set(q, true);
        }
        x_mat.appendRow(row);
    }

    // Logical X: an X-type operator, i.e. a data-qubit set with even
    // overlap with every Z stabilizer (kernel of z_mat) that is not a
    // product of X stabilizers (outside x_mat's row space). Prefer a
    // straight column, which exists in this convention.
    auto find_logical = [&](const Gf2Matrix &commute_with,
                            const Gf2Matrix &modulo,
                            bool try_columns) -> std::vector<uint32_t> {
        // Straight-line candidates first (column for L_X, row for L_Z).
        for (int i = 0; i < d; ++i) {
            BitVec v(numDataQubits());
            for (int j = 0; j < d; ++j) {
                const int r = try_columns ? j : i;
                const int c = try_columns ? i : j;
                v.set(dataIndex(r, c), true);
            }
            bool commutes = true;
            for (size_t s = 0; s < commute_with.rows(); ++s) {
                if (gf2Dot(commute_with.row(s), v)) {
                    commutes = false;
                    break;
                }
            }
            if (commutes && !modulo.inRowSpace(v)) {
                return v.onesIndices();
            }
        }
        // Fall back to any kernel vector outside the row space.
        for (const BitVec &v : commute_with.kernelBasis()) {
            if (!modulo.inRowSpace(v)) {
                return v.onesIndices();
            }
        }
        QEC_PANIC("no logical operator representative found");
    };

    logicalX = find_logical(z_mat, x_mat, /*try_columns=*/true);
    logicalZ = find_logical(x_mat, z_mat, /*try_columns=*/false);

    // Logical X and logical Z must anticommute (odd overlap).
    int overlap = 0;
    for (uint32_t q : logicalX) {
        if (std::binary_search(logicalZ.begin(), logicalZ.end(), q)) {
            ++overlap;
        }
    }
    QEC_ASSERT(overlap % 2 == 1, "logical X and Z do not anticommute");

    // Minimum weight check: representatives should achieve distance d.
    QEC_ASSERT(static_cast<int>(logicalX.size()) == d,
               "logical X representative is not weight d");
    QEC_ASSERT(static_cast<int>(logicalZ.size()) == d,
               "logical Z representative is not weight d");
}

} // namespace qec
