/**
 * @file
 * Memory-experiment circuit generation with circuit-level noise.
 *
 * Implements the noise model of the paper (§5.3): start-of-round
 * depolarizing on data qubits, depolarizing after every gate on all
 * operands, measurement record flips, and reset initialization errors,
 * each with probability p.
 */

#ifndef QEC_SURFACE_CIRCUIT_GEN_HPP
#define QEC_SURFACE_CIRCUIT_GEN_HPP

#include <cstdint>
#include <vector>

#include "qec/circuit/circuit.hpp"
#include "qec/surface/layout.hpp"

namespace qec
{

/**
 * Probabilities of the four noise mechanisms. The paper uses a single
 * uniform p; the split knobs exist for ablation studies.
 */
struct NoiseParams
{
    double dataDepolarize = 0.0; //!< Start-of-round data depolarizing.
    double gateDepolarize1 = 0.0; //!< After one-qubit gates.
    double gateDepolarize2 = 0.0; //!< After two-qubit gates.
    double measureFlip = 0.0;     //!< Measurement record flips.
    double resetFlip = 0.0;       //!< Reset initialization errors.

    /** Uniform circuit-level noise at physical error rate p. */
    static NoiseParams uniform(double p)
    {
        return {p, p, p, p, p};
    }

    /** All channels off (for round-trip correctness tests). */
    static NoiseParams noiseless() { return {}; }
};

/** Where a detector sits in space-time (used by predecoder heuristics
 *  and debugging output). */
struct DetectorCoord
{
    uint32_t zOrdinal; //!< Index into layout.zStabilizers().
    int layer;         //!< 0..rounds (rounds = the final data layer).
    int row;           //!< Plaquette row of the stabilizer.
    int col;           //!< Plaquette col of the stabilizer.
};

/** A generated memory experiment: circuit plus detector metadata. */
struct MemoryExperiment
{
    Circuit circuit;
    int rounds = 0;
    std::vector<DetectorCoord> detectors;
};

/**
 * Generate a Z-basis memory experiment on the given layout.
 *
 * The logical qubit is prepared in |0>, syndrome extraction runs for
 * `rounds` rounds, and all data qubits are finally measured in Z.
 * Detectors are declared on Z-type stabilizers only (single matching
 * graph, as in the paper's evaluation); the single observable is the
 * logical Z parity.
 *
 * The CX schedule uses the standard N/Z zig-zag orders, chosen so that
 * ancilla hook errors land perpendicular to the logical operator they
 * could damage; the schedule is asserted conflict-free.
 */
MemoryExperiment generateMemoryZ(const SurfaceCodeLayout &layout,
                                 int rounds,
                                 const NoiseParams &noise);

/**
 * Generate an X-basis memory experiment (the dual of
 * generateMemoryZ): data qubits are prepared in |+>, detectors are
 * declared on the X-type stabilizers, and the observable is the
 * logical X parity measured transversally in the X basis. The paper
 * evaluates Z memory only (its footnote 4 notes the equivalence);
 * this generator exists to exercise the dual decoding graph.
 */
MemoryExperiment generateMemoryX(const SurfaceCodeLayout &layout,
                                 int rounds,
                                 const NoiseParams &noise);

} // namespace qec

#endif // QEC_SURFACE_CIRCUIT_GEN_HPP
