/**
 * @file
 * Model of the Pinball cryogenic predecoder (arXiv:2512.09807).
 *
 * Pinball is an in-fridge pattern-matching predecoder for surface
 * codes under circuit-level noise: each parity bit owns a small
 * precomputed table of the error patterns most likely to flip it,
 * ranked by likelihood, and per-bit logic compares the bit's local
 * syndrome neighborhood against that table every round. Matched
 * patterns are corrected locally at cryogenic temperatures; only
 * the residual syndrome crosses the fridge boundary to the room-
 * temperature main decoder (an SM predecoder in this repo's
 * taxonomy — see predecoder.hpp).
 *
 * Distillation used here (simplifications documented in docs/api.md
 * "Worked example: onboarding Pinball"):
 *
 *  - The per-detector pattern table is derived from the decoding
 *    graph: each detector ranks its pair edges by descending
 *    mechanism probability (ascending matching weight, edge id as
 *    the tie-break), standing in for the paper's likelihood-sorted
 *    pattern ROM. The table is built once at construction and
 *    shared by every decode.
 *  - Each round, every flipped bit independently selects the
 *    highest-ranked table entry whose partner bit is also flipped
 *    (its local neighborhood "pattern hit"); a bit with no flipped
 *    neighbor falls through to its boundary pattern when it has a
 *    boundary edge. Mutual selections commit as prematched pairs,
 *    boundary hits commit unilaterally, and committed bits leave
 *    the syndrome. This propose/commit handshake is the per-bit
 *    constant-depth logic the hardware evaluates in parallel.
 *  - Rounds repeat a fixed number of times (PinballConfig::rounds,
 *    default 2) or until a round commits nothing, modeling the
 *    fixed-latency cryogenic pipeline rather than an adaptive
 *    budget (cycle_budget is ignored, like Smith/Clique).
 */

#ifndef QEC_PREDECODE_PINBALL_HPP
#define QEC_PREDECODE_PINBALL_HPP

#include "qec/predecode/predecoder.hpp"

namespace qec
{

/** Tunables for Pinball (spec keys `pinball_rounds` /
 *  `pinball_boundary`, see docs/api.md). */
struct PinballConfig
{
    /** Propose/commit rounds the fixed-latency pipeline evaluates
     *  (>= 1); later rounds re-match bits whose partner committed
     *  elsewhere in an earlier round. */
    int rounds = 2;
    /** Enable the boundary pattern (lone flipped bit with a
     *  boundary edge commits to the boundary). */
    bool matchBoundary = true;
};

/** Pattern-table local predecoder after Pinball (SM). */
class PinballPredecoder : public Predecoder
{
  public:
    PinballPredecoder(const DecodingGraph &graph,
                      const PathTable &paths,
                      const PinballConfig &config = {});

    using Predecoder::predecode;
    void predecode(std::span<const uint32_t> defects,
                   long long cycle_budget,
                   DecodeWorkspace &workspace,
                   PredecodeResult &result) override;

    /** Bit-parallel word kernel: all 64 lanes walk the pattern
     *  tables together (propose/commit masks per table entry),
     *  bit-identical per lane with the serial path. */
    void predecodeBlock(std::span<const uint64_t> detectorWords,
                        uint64_t laneMask, long long cycle_budget,
                        DecodeWorkspace &workspace,
                        BlockPredecodeResult &result) override;

    std::unique_ptr<Predecoder>
    clone() const override
    {
        return std::make_unique<PinballPredecoder>(graph_, paths_,
                                                   config_);
    }

    std::string name() const override { return "Pinball"; }

    const PinballConfig &config() const { return config_; }

  private:
    PinballConfig config_;
    // Pattern table: row det spans
    // [tableOffset_[det], tableOffset_[det + 1]) of
    // tableNeighbor_/tableEdge_, ranked by descending edge
    // probability (ascending weight). Built once at construction;
    // decode never allocates from it.
    std::vector<int32_t> tableOffset_;
    std::vector<uint32_t> tableNeighbor_;
    std::vector<uint32_t> tableEdge_;
};

} // namespace qec

#endif // QEC_PREDECODE_PINBALL_HPP
