#include "qec/predecode/pinball.hpp"

#include <algorithm>
#include <numeric>

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/util/arena.hpp"
#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

/** Proposal sentinels: a bit with no pattern hit this round, and a
 *  boundary-pattern hit (local indices are >= 0). */
constexpr int32_t kNoProposal = -2;
constexpr int32_t kBoundaryProposal = -1;

/** Per-round pipeline depth: table lookup, partner exchange, and
 *  commit run as three per-bit stages evaluated in parallel across
 *  bits, so the charge is constant per round regardless of HW. */
constexpr long long kCyclesPerRound = 3;

} // namespace

PinballPredecoder::PinballPredecoder(const DecodingGraph &graph,
                                     const PathTable &paths,
                                     const PinballConfig &config)
    : Predecoder(graph, paths), config_(config)
{
    QEC_ASSERT(config_.rounds >= 1,
               "pinball rounds must be positive");
    // Rank each detector's pair edges by descending probability
    // (ascending matching weight, edge id as the deterministic
    // tie-break) — the likelihood-sorted pattern table of the
    // paper, distilled to decoding-graph patterns.
    const uint32_t n = graph.numDetectors();
    tableOffset_.assign(n + 1, 0);
    for (uint32_t det = 0; det < n; ++det) {
        tableOffset_[det + 1] =
            tableOffset_[det] +
            static_cast<int32_t>(graph.pairNeighbors(det).size());
    }
    tableNeighbor_.resize(tableOffset_[n]);
    tableEdge_.resize(tableOffset_[n]);
    std::vector<uint32_t> order;
    for (uint32_t det = 0; det < n; ++det) {
        const auto row = graph.pairNeighbors(det);
        order.resize(row.size());
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](uint32_t a, uint32_t b) {
                      const float wa = graph.edgeWeight(row[a].edgeId);
                      const float wb = graph.edgeWeight(row[b].edgeId);
                      if (wa != wb) {
                          return wa < wb;
                      }
                      return row[a].edgeId < row[b].edgeId;
                  });
        for (size_t o = 0; o < row.size(); ++o) {
            const PairHalfEdge &half = row[order[o]];
            tableNeighbor_[tableOffset_[det] + o] = half.neighbor;
            tableEdge_[tableOffset_[det] + o] = half.edgeId;
        }
    }
}

void
PinballPredecoder::predecode(std::span<const uint32_t> defects,
                             long long cycle_budget,
                             DecodeWorkspace &workspace,
                             PredecodeResult &result)
{
    (void)cycle_budget; // Fixed-latency pipeline, not adaptive.
    result.reset();

    SyndromeSubgraph &sg = workspace.subgraph;
    sg.build(graph_, defects);
    MonotonicArena &arena = workspace.arena;
    arena.reset();
    const int n = sg.size();

    int32_t *proposal = arena.allocate<int32_t>(n);
    uint32_t *proposalEdge = arena.allocate<uint32_t>(n);

    for (int round = 0; round < config_.rounds; ++round) {
        // No sg.refresh() needed: the propose loop reads only the
        // alive flags and membership, both updated eagerly by
        // kill(); round-start consistency comes from kills
        // happening exclusively in the commit phase below.
        ++result.rounds;
        result.cycles += kCyclesPerRound;

        // Propose: every flipped bit independently walks its
        // pattern table and selects the highest-ranked entry whose
        // partner bit is also flipped; a bit whose neighborhood is
        // all-quiet falls through to the boundary pattern. Pure
        // reads — proposals see a consistent round-start state.
        for (int i = 0; i < n; ++i) {
            proposal[i] = kNoProposal;
            if (!sg.alive(i)) {
                continue;
            }
            const uint32_t det = sg.det(i);
            for (int32_t o = tableOffset_[det];
                 o < tableOffset_[det + 1]; ++o) {
                const int32_t j =
                    sg.localIndexOf(tableNeighbor_[o]);
                if (j >= 0 && sg.alive(j)) {
                    proposal[i] = j;
                    proposalEdge[i] = tableEdge_[o];
                    break;
                }
            }
            if (proposal[i] == kNoProposal &&
                config_.matchBoundary) {
                const int beid = graph_.boundaryEdge(det);
                if (beid >= 0) {
                    proposal[i] = kBoundaryProposal;
                    proposalEdge[i] =
                        static_cast<uint32_t>(beid);
                }
            }
        }

        // Commit: mutual selections pair up; boundary hits commit
        // unilaterally (only all-quiet bits reach the boundary
        // pattern, so no pair proposal can target them).
        bool any_commit = false;
        for (int i = 0; i < n; ++i) {
            if (proposal[i] == kBoundaryProposal) {
                result.obsMask ^=
                    graph_.edgeObsMask(proposalEdge[i]);
                result.weight +=
                    graph_.edgeWeight(proposalEdge[i]);
                sg.kill(i);
                any_commit = true;
            } else if (proposal[i] > i &&
                       proposal[proposal[i]] == i) {
                result.obsMask ^=
                    graph_.edgeObsMask(proposalEdge[i]);
                result.weight +=
                    graph_.edgeWeight(proposalEdge[i]);
                sg.kill(i);
                sg.kill(proposal[i]);
                any_commit = true;
            }
        }
        if (!any_commit) {
            break;
        }
    }

    for (int i = 0; i < n; ++i) {
        if (sg.alive(i)) {
            result.residual.push_back(sg.det(i));
        }
    }
}

QEC_REGISTER_PREDECODER(
    pinball,
    "Pinball cryogenic pattern-table local predecoder (SM)",
    [](const BuildContext &context) {
        return std::make_unique<PinballPredecoder>(
            context.graph, context.paths, context.pinball);
    });

} // namespace qec
