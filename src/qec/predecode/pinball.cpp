#include "qec/predecode/pinball.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/util/arena.hpp"
#include "qec/util/assert.hpp"
#include "qec/util/bitvec.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

namespace
{

/** Proposal sentinels: a bit with no pattern hit this round, and a
 *  boundary-pattern hit (local indices are >= 0). */
constexpr int32_t kNoProposal = -2;
constexpr int32_t kBoundaryProposal = -1;

/** Per-round pipeline depth: table lookup, partner exchange, and
 *  commit run as three per-bit stages evaluated in parallel across
 *  bits, so the charge is constant per round regardless of HW. */
constexpr long long kCyclesPerRound = 3;

} // namespace

PinballPredecoder::PinballPredecoder(const DecodingGraph &graph,
                                     const PathTable &paths,
                                     const PinballConfig &config)
    : Predecoder(graph, paths), config_(config)
{
    QEC_ASSERT(config_.rounds >= 1,
               "pinball rounds must be positive");
    // Rank each detector's pair edges by descending probability
    // (ascending matching weight, edge id as the deterministic
    // tie-break) — the likelihood-sorted pattern table of the
    // paper, distilled to decoding-graph patterns.
    const uint32_t n = graph.numDetectors();
    tableOffset_.assign(n + 1, 0);
    for (uint32_t det = 0; det < n; ++det) {
        tableOffset_[det + 1] =
            tableOffset_[det] +
            static_cast<int32_t>(graph.pairNeighbors(det).size());
    }
    tableNeighbor_.resize(tableOffset_[n]);
    tableEdge_.resize(tableOffset_[n]);
    std::vector<uint32_t> order;
    for (uint32_t det = 0; det < n; ++det) {
        const auto row = graph.pairNeighbors(det);
        order.resize(row.size());
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](uint32_t a, uint32_t b) {
                      const float wa = graph.edgeWeight(row[a].edgeId);
                      const float wb = graph.edgeWeight(row[b].edgeId);
                      if (wa != wb) {
                          return wa < wb;
                      }
                      return row[a].edgeId < row[b].edgeId;
                  });
        for (size_t o = 0; o < row.size(); ++o) {
            const PairHalfEdge &half = row[order[o]];
            tableNeighbor_[tableOffset_[det] + o] = half.neighbor;
            tableEdge_[tableOffset_[det] + o] = half.edgeId;
        }
    }
}

void
PinballPredecoder::predecode(std::span<const uint32_t> defects,
                             long long cycle_budget,
                             DecodeWorkspace &workspace,
                             PredecodeResult &result)
{
    QEC_REALTIME;
    (void)cycle_budget; // Fixed-latency pipeline, not adaptive.
    result.reset();

    SyndromeSubgraph &sg = workspace.subgraph;
    sg.build(graph_, defects);
    MonotonicArena &arena = workspace.arena;
    arena.reset();
    const int n = sg.size();

    int32_t *proposal = arena.allocate<int32_t>(n);
    uint32_t *proposalEdge = arena.allocate<uint32_t>(n);

    for (int round = 0; round < config_.rounds; ++round) {
        // No sg.refresh() needed: the propose loop reads only the
        // alive flags and membership, both updated eagerly by
        // kill(); round-start consistency comes from kills
        // happening exclusively in the commit phase below.
        ++result.rounds;
        result.cycles += kCyclesPerRound;

        // Propose: every flipped bit independently walks its
        // pattern table and selects the highest-ranked entry whose
        // partner bit is also flipped; a bit whose neighborhood is
        // all-quiet falls through to the boundary pattern. Pure
        // reads — proposals see a consistent round-start state.
        for (int i = 0; i < n; ++i) {
            proposal[i] = kNoProposal;
            if (!sg.alive(i)) {
                continue;
            }
            const uint32_t det = sg.det(i);
            for (int32_t o = tableOffset_[det];
                 o < tableOffset_[det + 1]; ++o) {
                const int32_t j =
                    sg.localIndexOf(tableNeighbor_[o]);
                if (j >= 0 && sg.alive(j)) {
                    proposal[i] = j;
                    proposalEdge[i] = tableEdge_[o];
                    break;
                }
            }
            if (proposal[i] == kNoProposal &&
                config_.matchBoundary) {
                const int beid = graph_.boundaryEdge(det);
                if (beid >= 0) {
                    proposal[i] = kBoundaryProposal;
                    proposalEdge[i] =
                        static_cast<uint32_t>(beid);
                }
            }
        }

        // Commit: mutual selections pair up; boundary hits commit
        // unilaterally (only all-quiet bits reach the boundary
        // pattern, so no pair proposal can target them).
        bool any_commit = false;
        for (int i = 0; i < n; ++i) {
            if (proposal[i] == kBoundaryProposal) {
                result.obsMask ^=
                    graph_.edgeObsMask(proposalEdge[i]);
                result.weight +=
                    graph_.edgeWeight(proposalEdge[i]);
                sg.kill(i);
                any_commit = true;
            } else if (proposal[i] > i &&
                       proposal[proposal[i]] == i) {
                result.obsMask ^=
                    graph_.edgeObsMask(proposalEdge[i]);
                result.weight +=
                    graph_.edgeWeight(proposalEdge[i]);
                sg.kill(i);
                sg.kill(proposal[i]);
                any_commit = true;
            }
        }
        if (!any_commit) {
            break;
        }
    }

    for (int i = 0; i < n; ++i) {
        if (sg.alive(i)) {
            rt::pushBack(result.residual, sg.det(i));
        }
    }
}

void
PinballPredecoder::predecodeBlock(
    std::span<const uint64_t> detectorWords, uint64_t laneMask,
    long long cycle_budget, DecodeWorkspace &workspace,
    BlockPredecodeResult &result)
{
    QEC_REALTIME;
    (void)cycle_budget; // Fixed-latency pipeline, not adaptive.
    result.reset();
    result.laneMask = laneMask;
    if (laneMask == 0) {
        return;
    }

    // Union syndrome: every detector flipped in any requested lane.
    // Lane l's subgraph nodes are exactly the union nodes whose
    // alive word has bit l set, so per-lane local indices and union
    // indices enumerate the same detectors in the same (ascending)
    // order — which is what keeps per-lane commit order, and hence
    // the floating-point weight accumulation, identical to serial.
    BlockScratch &block = workspace.block;
    block.unionDets.clear();
    for (uint32_t det = 0;
         det < static_cast<uint32_t>(detectorWords.size()); ++det) {
        if (detectorWords[det] & laneMask) {
            rt::pushBack(block.unionDets, det);
        }
    }
    SyndromeSubgraph &sg = workspace.subgraph;
    sg.build(graph_, block.unionDets);
    MonotonicArena &arena = workspace.arena;
    arena.reset();
    const int n = sg.size();

    // Union-restricted pattern rows, rank order preserved. Entries
    // whose partner is outside the union can never hit in any lane
    // (the partner is absent from that lane's syndrome too), so
    // dropping them here changes nothing per lane.
    int32_t *rowOffset = arena.allocate<int32_t>(n + 1);
    int32_t upper = 0;
    for (int i = 0; i < n; ++i) {
        const uint32_t det = sg.det(i);
        upper += tableOffset_[det + 1] - tableOffset_[det];
    }
    int32_t *rowPartner = arena.allocate<int32_t>(upper);
    uint32_t *rowEdge = arena.allocate<uint32_t>(upper);
    uint64_t *rowChoice = arena.allocate<uint64_t>(upper);
    int32_t cursor = 0;
    for (int i = 0; i < n; ++i) {
        rowOffset[i] = cursor;
        const uint32_t det = sg.det(i);
        for (int32_t o = tableOffset_[det];
             o < tableOffset_[det + 1]; ++o) {
            const int32_t j = sg.localIndexOf(tableNeighbor_[o]);
            if (j >= 0) {
                rowPartner[cursor] = j;
                rowEdge[cursor] = tableEdge_[o];
                ++cursor;
            }
        }
    }
    rowOffset[n] = cursor;

    uint64_t *alive = arena.allocate<uint64_t>(n);
    uint64_t *boundaryChoice = arena.allocate<uint64_t>(n);
    int32_t *boundaryEdgeOf = arena.allocate<int32_t>(n);
    for (int i = 0; i < n; ++i) {
        alive[i] = detectorWords[sg.det(i)] & laneMask;
        boundaryEdgeOf[i] =
            config_.matchBoundary ? graph_.boundaryEdge(sg.det(i))
                                  : -1;
    }

    // Per-lane round of the last commit: a lane whose round commits
    // nothing is at a fixed point (its alive set no longer changes,
    // so neither do its proposals), which is how the serial early
    // exit is recovered per lane below.
    std::array<int, 64> lastCommit{};

    for (int round = 1; round <= config_.rounds; ++round) {
        // Propose: each lane of each defect bit independently claims
        // the highest-ranked entry whose partner is alive in that
        // lane; leftover lanes fall through to the boundary pattern.
        for (int i = 0; i < n; ++i) {
            uint64_t pending = alive[i];
            for (int32_t o = rowOffset[i]; o < rowOffset[i + 1];
                 ++o) {
                const uint64_t hit = pending & alive[rowPartner[o]];
                rowChoice[o] = hit;
                pending &= ~hit;
            }
            boundaryChoice[i] =
                boundaryEdgeOf[i] >= 0 ? pending : 0;
        }

        // Commit, ascending union index — the same detector order
        // as each lane's serial commit scan. Boundary hits commit
        // unilaterally; pair proposals commit where mutual, from
        // the smaller index with its own chosen edge (the serial
        // proposal[i] > i && proposal[proposal[i]] == i rule).
        uint64_t round_commit = 0;
        for (int i = 0; i < n; ++i) {
            const uint64_t bmask = boundaryChoice[i];
            if (bmask) {
                const uint32_t eid =
                    static_cast<uint32_t>(boundaryEdgeOf[i]);
                const uint64_t obs = graph_.edgeObsMask(eid);
                const float w = graph_.edgeWeight(eid);
                forEachSetBit(bmask, [&](int lane) {
                    result.obsMask[lane] ^= obs;
                    result.weight[lane] += w;
                });
                alive[i] &= ~bmask;
                round_commit |= bmask;
            }
            for (int32_t o = rowOffset[i]; o < rowOffset[i + 1];
                 ++o) {
                const int32_t j = rowPartner[o];
                if (j <= i) {
                    continue;
                }
                uint64_t m = rowChoice[o];
                if (!m) {
                    continue;
                }
                // Lanes whose partner chose us back (any of j's
                // entries pointing at i — rows are short).
                uint64_t reverse = 0;
                for (int32_t ro = rowOffset[j];
                     ro < rowOffset[j + 1]; ++ro) {
                    if (rowPartner[ro] == i) {
                        reverse |= rowChoice[ro];
                    }
                }
                m &= reverse;
                if (!m) {
                    continue;
                }
                const uint32_t eid = rowEdge[o];
                const uint64_t obs = graph_.edgeObsMask(eid);
                const float w = graph_.edgeWeight(eid);
                forEachSetBit(m, [&](int lane) {
                    result.obsMask[lane] ^= obs;
                    result.weight[lane] += w;
                });
                alive[i] &= ~m;
                alive[j] &= ~m;
                round_commit |= m;
            }
        }
        forEachSetBit(round_commit,
                      [&](int lane) { lastCommit[lane] = round; });
        if (!round_commit) {
            break; // Every lane is at a fixed point.
        }
    }

    for (int i = 0; i < n; ++i) {
        if (alive[i]) {
            rt::pushBack(result.residualDets, sg.det(i));
            rt::pushBack(result.residualWords, alive[i]);
        }
    }
    forEachSetBit(laneMask, [&](int lane) {
        // Serial runs until (and counts) the first commit-free
        // round, capped at the configured depth.
        const int rounds =
            std::min(config_.rounds, lastCommit[lane] + 1);
        result.rounds[lane] = rounds;
        result.cycles[lane] = kCyclesPerRound * rounds;
    });
}

QEC_REGISTER_PREDECODER(
    pinball,
    "Pinball cryogenic pattern-table local predecoder (SM)",
    [](const BuildContext &context) {
        return std::make_unique<PinballPredecoder>(
            context.graph, context.paths, context.pinball);
    });

} // namespace qec
