#include "qec/predecode/clique.hpp"

#include <algorithm>
#include <cmath>

#include "qec/api/registry.hpp"

namespace qec
{

PredecodeResult
CliquePredecoder::predecode(std::span<const uint32_t> defects,
                            long long cycle_budget)
{
    (void)cycle_budget;
    PredecodeResult result;
    result.rounds = 1;
    // Clique's per-parity-bit logic runs in parallel across bits:
    // constant pipeline depth regardless of HW.
    result.cycles = 2;

    // Local degrees within the defect set.
    const int n = static_cast<int>(defects.size());
    std::vector<int> deg(n, 0);
    std::vector<int> only_neighbor(n, -1);
    std::vector<uint32_t> pair_edge(n, 0);
    for (int i = 0; i < n; ++i) {
        for (uint32_t eid : graph_.adjacentEdges(defects[i])) {
            const GraphEdge &edge = graph_.edges()[eid];
            if (edge.v == kBoundary) {
                continue;
            }
            const uint32_t other =
                (edge.u == defects[i]) ? edge.v : edge.u;
            const auto it = std::lower_bound(defects.begin(),
                                             defects.end(), other);
            if (it != defects.end() && *it == other) {
                ++deg[i];
                only_neighbor[i] =
                    static_cast<int>(it - defects.begin());
                pair_edge[i] = eid;
            }
        }
    }

    // Simple patterns: isolated pairs, or lone defects one hop from
    // the boundary. All-or-nothing (NSM).
    uint64_t obs = 0;
    double weight = 0.0;
    std::vector<bool> covered(n, false);
    for (int i = 0; i < n; ++i) {
        if (covered[i]) {
            continue;
        }
        if (deg[i] == 1) {
            const int j = only_neighbor[i];
            if (deg[j] == 1 && only_neighbor[j] == i) {
                covered[i] = true;
                covered[j] = true;
                obs ^= graph_.edges()[pair_edge[i]].obsMask;
                weight += graph_.edges()[pair_edge[i]].weight;
                continue;
            }
        } else if (deg[i] == 0) {
            const int beid = graph_.boundaryEdge(defects[i]);
            if (beid >= 0) {
                covered[i] = true;
                obs ^= graph_.edges()[beid].obsMask;
                weight += graph_.edges()[beid].weight;
                continue;
            }
        }
    }

    const bool all_covered =
        std::all_of(covered.begin(), covered.end(),
                    [](bool c) { return c; });
    if (all_covered) {
        result.decodedAll = true;
        result.obsMask = obs;
        result.weight = weight;
    } else {
        result.forwarded = true;
        result.residual.assign(defects.begin(), defects.end());
    }
    return result;
}

QEC_REGISTER_PREDECODER(
    clique,
    "Clique all-or-nothing simple-pattern predecoder (NSM)",
    [](const BuildContext &context) {
        return std::make_unique<CliquePredecoder>(context.graph,
                                                  context.paths);
    });

} // namespace qec
