#include "qec/predecode/clique.hpp"

#include <algorithm>

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/util/arena.hpp"

namespace qec
{

void
CliquePredecoder::predecode(std::span<const uint32_t> defects,
                            long long cycle_budget,
                            DecodeWorkspace &workspace,
                            PredecodeResult &result)
{
    (void)cycle_budget;
    result.reset();
    result.rounds = 1;
    // Clique's per-parity-bit logic runs in parallel across bits:
    // constant pipeline depth regardless of HW.
    result.cycles = 2;

    // Defect subgraph (shared, workspace-rebuilt view): Clique only
    // needs the static in-set degrees and sole neighbors.
    SyndromeSubgraph &sg = workspace.subgraph;
    sg.build(graph_, defects);
    MonotonicArena &arena = workspace.arena;
    arena.reset();
    const int n = sg.size();

    // Simple patterns: isolated pairs, or lone defects one hop from
    // the boundary. All-or-nothing (NSM).
    uint64_t obs = 0;
    double weight = 0.0;
    uint8_t *covered = arena.allocate<uint8_t>(n);
    std::fill_n(covered, n, uint8_t{0});
    for (int i = 0; i < n; ++i) {
        if (covered[i]) {
            continue;
        }
        if (sg.degree(i) == 1) {
            const int j = sg.soleNeighbor(i);
            if (sg.degree(j) == 1 && sg.soleNeighbor(j) == i) {
                covered[i] = 1;
                covered[j] = 1;
                const uint32_t eid = sg.soleEdge(i);
                obs ^= graph_.edgeObsMask(eid);
                weight += graph_.edgeWeight(eid);
                continue;
            }
        } else if (sg.degree(i) == 0) {
            const int beid = graph_.boundaryEdge(defects[i]);
            if (beid >= 0) {
                const uint32_t eid =
                    static_cast<uint32_t>(beid);
                covered[i] = 1;
                obs ^= graph_.edgeObsMask(eid);
                weight += graph_.edgeWeight(eid);
                continue;
            }
        }
    }

    const bool all_covered = std::all_of(
        covered, covered + n, [](uint8_t c) { return c != 0; });
    if (all_covered) {
        result.decodedAll = true;
        result.obsMask = obs;
        result.weight = weight;
    } else {
        result.forwarded = true;
        result.residual.assign(defects.begin(), defects.end());
    }
}

QEC_REGISTER_PREDECODER(
    clique,
    "Clique all-or-nothing simple-pattern predecoder (NSM)",
    [](const BuildContext &context) {
        return std::make_unique<CliquePredecoder>(context.graph,
                                                  context.paths);
    });

} // namespace qec
