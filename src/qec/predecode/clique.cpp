#include "qec/predecode/clique.hpp"

#include <algorithm>

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/util/arena.hpp"
#include "qec/util/bitvec.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

void
CliquePredecoder::predecode(std::span<const uint32_t> defects,
                            long long cycle_budget,
                            DecodeWorkspace &workspace,
                            PredecodeResult &result)
{
    QEC_REALTIME;
    (void)cycle_budget;
    result.reset();
    result.rounds = 1;
    // Clique's per-parity-bit logic runs in parallel across bits:
    // constant pipeline depth regardless of HW.
    result.cycles = 2;

    // Defect subgraph (shared, workspace-rebuilt view): Clique only
    // needs the static in-set degrees and sole neighbors.
    SyndromeSubgraph &sg = workspace.subgraph;
    sg.build(graph_, defects);
    MonotonicArena &arena = workspace.arena;
    arena.reset();
    const int n = sg.size();

    // Simple patterns: isolated pairs, or lone defects one hop from
    // the boundary. All-or-nothing (NSM).
    uint64_t obs = 0;
    double weight = 0.0;
    uint8_t *covered = arena.allocate<uint8_t>(n);
    std::fill_n(covered, n, uint8_t{0});
    for (int i = 0; i < n; ++i) {
        if (covered[i]) {
            continue;
        }
        if (sg.degree(i) == 1) {
            const int j = sg.soleNeighbor(i);
            if (sg.degree(j) == 1 && sg.soleNeighbor(j) == i) {
                covered[i] = 1;
                covered[j] = 1;
                const uint32_t eid = sg.soleEdge(i);
                obs ^= graph_.edgeObsMask(eid);
                weight += graph_.edgeWeight(eid);
                continue;
            }
        } else if (sg.degree(i) == 0) {
            const int beid = graph_.boundaryEdge(defects[i]);
            if (beid >= 0) {
                const uint32_t eid =
                    static_cast<uint32_t>(beid);
                covered[i] = 1;
                obs ^= graph_.edgeObsMask(eid);
                weight += graph_.edgeWeight(eid);
                continue;
            }
        }
    }

    const bool all_covered = std::all_of(
        covered, covered + n, [](uint8_t c) { return c != 0; });
    if (all_covered) {
        result.decodedAll = true;
        result.obsMask = obs;
        result.weight = weight;
    } else {
        result.forwarded = true;
        rt::assignRange(result.residual, defects.begin(),
                        defects.end());
    }
}

void
CliquePredecoder::predecodeBlock(
    std::span<const uint64_t> detectorWords, uint64_t laneMask,
    long long cycle_budget, DecodeWorkspace &workspace,
    BlockPredecodeResult &result)
{
    QEC_REALTIME;
    (void)cycle_budget;
    result.reset();
    result.laneMask = laneMask;
    if (laneMask == 0) {
        return;
    }

    // Union subgraph over every lane's defects (lane adjacency is
    // the union restricted to that lane's present bits).
    BlockScratch &block = workspace.block;
    block.unionDets.clear();
    for (size_t det = 0; det < detectorWords.size(); ++det) {
        if (detectorWords[det] & laneMask) {
            rt::pushBack(block.unionDets,
                         static_cast<uint32_t>(det));
        }
    }
    SyndromeSubgraph &sg = workspace.subgraph;
    sg.build(graph_, block.unionDets);
    MonotonicArena &arena = workspace.arena;
    arena.reset();
    const int n = sg.size();

    uint64_t *present = arena.allocate<uint64_t>(n);
    uint64_t *deg0 = arena.allocate<uint64_t>(n);
    uint64_t *deg1 = arena.allocate<uint64_t>(n);
    uint64_t *covered = arena.allocate<uint64_t>(n);
    for (int i = 0; i < n; ++i) {
        present[i] = detectorWords[sg.det(i)] & laneMask;
    }
    // Per-lane in-set degree of every union node via a 2-state
    // saturating counter per lane bit: after folding all neighbor
    // entries, c0 = "saw >= 1", c1 = "saw >= 2" (parallel edges
    // count per entry, exactly like the serial row length).
    for (int i = 0; i < n; ++i) {
        uint64_t c0 = 0;
        uint64_t c1 = 0;
        const int32_t deg = sg.degree(i);
        for (int32_t o = 0; o < deg; ++o) {
            const uint64_t m = present[sg.neighbors(i)[o]];
            c1 |= c0 & m;
            c0 |= m;
        }
        deg0[i] = present[i] & ~c0;
        deg1[i] = present[i] & c0 & ~c1;
        covered[i] = 0;
    }

    // Ascending scan, committing each pattern at the index the
    // serial loop commits it: an isolated pair at its smaller
    // endpoint, a lone-by-the-boundary defect at itself. A deg1 bit
    // means the entry's neighbor is that lane's sole present
    // neighbor, so deg1[i] & deg1[j] is exactly the serial mutual
    // sole-neighbor test and fires for at most one entry per lane.
    for (int i = 0; i < n; ++i) {
        const int32_t deg = sg.degree(i);
        for (int32_t o = 0; o < deg; ++o) {
            const int j = sg.neighbors(i)[o];
            if (j <= i) {
                continue;
            }
            const uint64_t pair = deg1[i] & deg1[j];
            if (pair == 0) {
                continue;
            }
            covered[i] |= pair;
            covered[j] |= pair;
            const uint32_t eid = sg.edgeIdAt(i, o);
            const uint64_t obs = graph_.edgeObsMask(eid);
            const double weight = graph_.edgeWeight(eid);
            forEachSetBit(pair, [&](int lane) {
                result.obsMask[lane] ^= obs;
                result.weight[lane] += weight;
            });
        }
        if (deg0[i] != 0) {
            const int beid = graph_.boundaryEdge(sg.det(i));
            if (beid >= 0) {
                const uint32_t eid = static_cast<uint32_t>(beid);
                const uint64_t obs = graph_.edgeObsMask(eid);
                const double weight = graph_.edgeWeight(eid);
                covered[i] |= deg0[i];
                forEachSetBit(deg0[i], [&](int lane) {
                    result.obsMask[lane] ^= obs;
                    result.weight[lane] += weight;
                });
            }
        }
    }

    // All-or-nothing per lane: any uncovered defect forwards the
    // whole lane unmodified (obs/weight discarded, like the serial
    // path's local accumulators never reaching the result).
    uint64_t uncovered = 0;
    for (int i = 0; i < n; ++i) {
        uncovered |= present[i] & ~covered[i];
    }
    result.forwardedMask = uncovered;
    result.decodedAllMask = laneMask & ~uncovered;
    forEachSetBit(uncovered, [&](int lane) {
        result.obsMask[lane] = 0;
        result.weight[lane] = 0.0;
    });
    for (int i = 0; i < n; ++i) {
        const uint64_t r = present[i] & uncovered;
        if (r != 0) {
            rt::pushBack(result.residualDets, sg.det(i));
            rt::pushBack(result.residualWords, r);
        }
    }
    forEachSetBit(laneMask, [&](int lane) {
        result.cycles[lane] = 2;
        result.rounds[lane] = 1;
    });
}

QEC_REGISTER_PREDECODER(
    clique,
    "Clique all-or-nothing simple-pattern predecoder (NSM)",
    [](const BuildContext &context) {
        return std::make_unique<CliquePredecoder>(context.graph,
                                                  context.paths);
    });

} // namespace qec
