/**
 * @file
 * Model of the Clique predecoder [49] — an NSM predecoder.
 *
 * Clique handles only "simple patterns": isolated pairs of adjacent
 * flipped bits and lone flipped bits sitting next to the boundary.
 * If every flipped bit is covered by such patterns the syndrome is
 * decoded entirely locally; otherwise the whole, unmodified syndrome
 * is forwarded to the main decoder (Fig. 3(a)). Because it never
 * reduces the Hamming weight, Clique cannot help a HW <= 10 main
 * decoder on complex high-HW syndromes (Table 3).
 */

#ifndef QEC_PREDECODE_CLIQUE_HPP
#define QEC_PREDECODE_CLIQUE_HPP

#include "qec/predecode/predecoder.hpp"

namespace qec
{

/** NSM local predecoder: all-or-nothing simple-pattern matching. */
class CliquePredecoder : public Predecoder
{
  public:
    using Predecoder::Predecoder;

    using Predecoder::predecode;
    void predecode(std::span<const uint32_t> defects,
                   long long cycle_budget,
                   DecodeWorkspace &workspace,
                   PredecodeResult &result) override;

    /** Bit-parallel word kernel: saturating-counter degree classes
     *  over the union subgraph classify all 64 lanes at once,
     *  bit-identical per lane with the serial path. */
    void predecodeBlock(std::span<const uint64_t> detectorWords,
                        uint64_t laneMask, long long cycle_budget,
                        DecodeWorkspace &workspace,
                        BlockPredecodeResult &result) override;

    std::unique_ptr<Predecoder>
    clone() const override
    {
        return std::make_unique<CliquePredecoder>(graph_, paths_);
    }

    std::string name() const override { return "Clique"; }
};

} // namespace qec

#endif // QEC_PREDECODE_CLIQUE_HPP
