#include "qec/predecode/predecoder.hpp"

#include "qec/decoders/workspace.hpp"

namespace qec
{

// Out of line: DecodeWorkspace is only forward-declared where the
// interface is defined.
Predecoder::Predecoder(const DecodingGraph &graph,
                       const PathTable &paths)
    : graph_(graph), paths_(paths)
{
}

Predecoder::~Predecoder() = default;

PredecodeResult
Predecoder::predecode(std::span<const uint32_t> defects,
                      long long cycle_budget)
{
    if (!workspace_) {
        workspace_ = std::make_unique<DecodeWorkspace>();
    }
    PredecodeResult result;
    predecode(defects, cycle_budget, *workspace_, result);
    return result;
}

} // namespace qec
