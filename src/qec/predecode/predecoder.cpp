#include "qec/predecode/predecoder.hpp"

#include <algorithm>

#include "qec/decoders/workspace.hpp"
#include "qec/util/bitvec.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

// Out of line: DecodeWorkspace is only forward-declared where the
// interface is defined.
Predecoder::Predecoder(const DecodingGraph &graph,
                       const PathTable &paths)
    : graph_(graph), paths_(paths)
{
}

Predecoder::~Predecoder() = default;

PredecodeResult
Predecoder::predecode(std::span<const uint32_t> defects,
                      long long cycle_budget)
{
    if (!workspace_) {
        workspace_ = std::make_unique<DecodeWorkspace>();
    }
    PredecodeResult result;
    predecode(defects, cycle_budget, *workspace_, result);
    return result;
}

void
Predecoder::predecodeBlock(std::span<const uint64_t> detectorWords,
                           uint64_t laneMask, long long cycle_budget,
                           DecodeWorkspace &workspace,
                           BlockPredecodeResult &result)
{
    QEC_REALTIME;
    // Serial fallback: loop every requested lane through the scalar
    // path — bit-identical by construction. Word kernels override
    // this (Pinball/Smith/Clique).
    result.reset();
    result.laneMask = laneMask;
    if (laneMask == 0) {
        return;
    }
    BlockScratch &block = workspace.block;
    scatterBlockLanes(detectorWords, laneMask, block.laneDefects);
    // Merge the per-lane residual lists into the sparse column
    // layout via the dense laneWords scratch (all-zero invariant:
    // every entry set here is cleared again below).
    rt::resizeFill(block.laneWords, detectorWords.size(),
                   uint64_t{0});
    block.touched.clear();
    PredecodeResult &lane_result = workspace.predecodeResult;
    forEachSetBit(laneMask, [&](int lane) {
        predecode(block.laneDefects[lane], cycle_budget, workspace,
                  lane_result);
        const uint64_t bit = uint64_t{1} << lane;
        result.obsMask[lane] = lane_result.obsMask;
        result.weight[lane] = lane_result.weight;
        result.cycles[lane] = lane_result.cycles;
        result.rounds[lane] = lane_result.rounds;
        if (lane_result.decodedAll) {
            result.decodedAllMask |= bit;
        }
        if (lane_result.forwarded) {
            result.forwardedMask |= bit;
        }
        for (uint32_t det : lane_result.residual) {
            if (block.laneWords[det] == 0) {
                rt::pushBack(block.touched, det);
            }
            block.laneWords[det] |= bit;
        }
    });
    std::sort(block.touched.begin(), block.touched.end());
    for (uint32_t det : block.touched) {
        rt::pushBack(result.residualDets, det);
        rt::pushBack(result.residualWords, block.laneWords[det]);
        block.laneWords[det] = 0;
    }
}

} // namespace qec
