/**
 * @file
 * The Promatch adaptive predecoder — the paper's core contribution
 * (§4, Algorithm 1).
 *
 * Promatch iterates over the decoding subgraph (flipped bits and the
 * edges between them) and prematches pairs in increasing order of
 * risk until the residual Hamming weight fits the main decoder's
 * remaining time budget:
 *
 *   Step 1   match all isolated pairs (cannot create singletons);
 *   Step 2.1 lowest-weight safe edge with a degree-1 endpoint;
 *   Step 2.2 lowest-weight safe edge;
 *   Step 3   only when no safe edge exists and singletons are
 *            present: match a singleton along its lowest-weight
 *            path (boundary included) without creating singletons;
 *   Step 4   riskiest: lowest-weight edge even if it creates
 *            singletons (4.1 degree-1 endpoint first, then 4.2).
 *
 * "Safe" means the hardware singleton-detection logic of Fig. 11
 * (based on #dependent counters); the exact graph recount is also
 * implemented for the ablation study.
 *
 * Cycle accounting follows §6.4: each round charges the number of
 * subgraph edges; a round that engages Step 3 charges
 * max(#paths, #edges) extra. The adaptive HW target is the largest
 * T in {10, 8, 6} such that the main decoder's modeled latency at
 * HW = T still fits in the remaining budget.
 */

#ifndef QEC_PREDECODE_PROMATCH_HPP
#define QEC_PREDECODE_PROMATCH_HPP

#include "qec/decoders/latency.hpp"
#include "qec/predecode/predecoder.hpp"

namespace qec
{

/** Tunables for Promatch (defaults reproduce the paper). */
struct PromatchConfig
{
    /** Use the exact singleton recount instead of the Fig. 11
     *  hardware #dependent logic (ablation). */
    bool exactSingletonCheck = false;
    /** Disable the adaptive target and always stop at fixedTarget
     *  (ablation). */
    bool adaptiveTarget = true;
    int fixedTarget = 10;
    /** Step enables (ablation). */
    bool enableStep3 = true;
    bool enableStep4 = true;
};

/** Locality-aware greedy adaptive predecoder. */
class PromatchPredecoder : public Predecoder
{
  public:
    PromatchPredecoder(const DecodingGraph &graph,
                       const PathTable &paths,
                       const LatencyConfig &latency = {},
                       const PromatchConfig &config = {})
        : Predecoder(graph, paths), latency_(latency),
          config_(config)
    {
    }

    using Predecoder::predecode;
    void predecode(std::span<const uint32_t> defects,
                   long long cycle_budget,
                   DecodeWorkspace &workspace,
                   PredecodeResult &result) override;

    std::unique_ptr<Predecoder>
    clone() const override
    {
        return std::make_unique<PromatchPredecoder>(
            graph_, paths_, latency_, config_);
    }

    std::string name() const override { return "Promatch"; }

    const PromatchConfig &config() const { return config_; }

  private:
    LatencyConfig latency_;
    PromatchConfig config_;
};

} // namespace qec

#endif // QEC_PREDECODE_PROMATCH_HPP
