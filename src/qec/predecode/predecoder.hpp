/**
 * @file
 * Predecoder interface (Fig. 3 of the paper).
 *
 * A predecoder sees the syndrome before the main decoder. Syndrome-
 * Modified (SM) predecoders prematch a subset of the flipped bits and
 * hand the (smaller) residual to the main decoder; Non-Syndrome-
 * Modified (NSM) predecoders either decode everything themselves or
 * forward the syndrome untouched.
 *
 * Like decoders, predecoders keep no per-call state (everything the
 * caller needs comes back in the PredecodeResult) and are cloneable
 * so composed stacks can be replicated across threads. The hot
 * `predecode()` overload borrows a caller-owned DecodeWorkspace and
 * fills a caller-owned PredecodeResult in place — with warm buffers
 * this is allocation-free; the historical returning overload runs
 * on a lazily created internal workspace. New predecoders
 * self-register with the component registry in their own
 * translation unit (see qec/api/registry.hpp).
 */

#ifndef QEC_PREDECODE_PREDECODER_HPP
#define QEC_PREDECODE_PREDECODER_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "qec/decoders/decoder.hpp"
#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/path_table.hpp"

namespace qec
{

/** Outcome of predecoding one syndrome. */
struct PredecodeResult
{
    /** Defects left for the main decoder (sorted). */
    std::vector<uint32_t> residual;
    /** Observable flips implied by the prematched corrections. */
    uint64_t obsMask = 0;
    /** Total weight of the prematched corrections. */
    double weight = 0.0;
    /** Modeled pipeline cycles consumed (§6.4 accounting). */
    long long cycles = 0;
    /** Predecode rounds executed. */
    int rounds = 0;
    /** NSM: the syndrome was forwarded unmodified. */
    bool forwarded = false;
    /** NSM: everything was decoded locally; residual is empty. */
    bool decodedAll = false;
    /** Steps used (meaningful for Promatch). */
    StepUsage steps;

    /** Clear for reuse, keeping residual capacity. */
    void
    reset()
    {
        residual.clear();
        obsMask = 0;
        weight = 0.0;
        cycles = 0;
        rounds = 0;
        forwarded = false;
        decodedAll = false;
        steps = {};
    }
};

/**
 * Outcome of predecoding a 64-lane syndrome block.
 *
 * Lane layout matches the FrameSimulator's BatchResult: shot l of
 * the block is bit l of every word. Residual defects come back as a
 * sorted sparse column list — residualDets[r] is a detector index
 * and residualWords[r] the word of lanes in which that detector is
 * still flipped after predecoding. Per-lane scalar outcomes
 * (obsMask/weight/cycles/rounds) land at index l; decodedAllMask /
 * forwardedMask carry the per-lane NSM flags. Only lanes present in
 * `laneMask` (the request) hold meaningful entries.
 *
 * Bit-identity contract: for every requested lane, the per-lane
 * fields must equal what the serial `predecode()` of that lane's
 * defect list would produce — including the floating-point
 * accumulation order of `weight` (enforced registry-wide by
 * tests/test_block_decode.cpp).
 */
struct BlockPredecodeResult
{
    /** Sorted detectors with a residual defect in any lane. */
    std::vector<uint32_t> residualDets;
    /** Lanes still holding residualDets[r] (parallel array). */
    std::vector<uint64_t> residualWords;
    /** Per-lane observable flips of the prematched corrections. */
    std::array<uint64_t, 64> obsMask;
    /** Per-lane total prematched weight. */
    std::array<double, 64> weight;
    /** Per-lane modeled pipeline cycles. */
    std::array<long long, 64> cycles;
    /** Per-lane predecode rounds executed. */
    std::array<int, 64> rounds;
    /** Lanes this result covers (the request's laneMask). */
    uint64_t laneMask = 0;
    /** Lanes fully decoded locally (NSM; residual empty). */
    uint64_t decodedAllMask = 0;
    /** Lanes forwarded unmodified (NSM; residual = full input). */
    uint64_t forwardedMask = 0;

    /** Clear for reuse, keeping the sparse lists' capacity. */
    void
    reset()
    {
        residualDets.clear();
        residualWords.clear();
        obsMask.fill(0);
        weight.fill(0.0);
        cycles.fill(0);
        rounds.fill(0);
        laneMask = 0;
        decodedAllMask = 0;
        forwardedMask = 0;
    }
};

/** Abstract predecoder over a fixed decoding graph. */
class Predecoder
{
  public:
    // Out of line: the workspace_ member's deleter needs the full
    // DecodeWorkspace type (see predecoder.cpp).
    Predecoder(const DecodingGraph &graph, const PathTable &paths);
    virtual ~Predecoder();

    /**
     * Predecode a syndrome into a caller-owned result, borrowing
     * the caller's workspace for all scratch state.
     *
     * @param defects       sorted flipped-detector indices
     * @param cycle_budget  pipeline cycles available before the
     *                      main decoder must still fit (adaptive SM
     *                      predecoders use this; NSM ones ignore
     *                      it)
     * @param workspace     caller-owned scratch (not shareable
     *                      between threads); warm buffers make the
     *                      call allocation-free
     * @param result        reset and filled in place, reusing its
     *                      residual capacity
     */
    virtual void predecode(std::span<const uint32_t> defects,
                           long long cycle_budget,
                           DecodeWorkspace &workspace,
                           PredecodeResult &result) = 0;

    /**
     * Historical returning overload: runs on this instance's
     * lazily created internal workspace. Bit-identical with the
     * workspace overload.
     */
    PredecodeResult predecode(std::span<const uint32_t> defects,
                              long long cycle_budget);

    /**
     * Predecode all requested lanes of a 64-lane syndrome block at
     * once (one word per detector, shot l = bit l — the
     * FrameSimulator's BatchResult layout).
     *
     * Every requested lane's outcome must be bit-identical to the
     * serial `predecode()` of that lane's defect list. The base
     * implementation guarantees this by looping the lanes through
     * the serial path; pattern-table predecoders (Pinball, Smith,
     * Clique) override it with bit-parallel word kernels that carry
     * all 64 lanes through the pattern logic together.
     *
     * Scratch contract: the call may clobber
     * `workspace.predecodeResult` and the `workspace.block` entries
     * of lanes in `laneMask` (the pipeline rebuilds those from the
     * residual lists anyway); buckets of lanes outside the mask are
     * left untouched.
     *
     * @param detectorWords one 64-lane word per detector
     * @param laneMask      lanes to predecode (bit l = lane l);
     *                      zero is a no-op
     * @param cycle_budget  as in predecode()
     * @param workspace     caller-owned scratch
     * @param result        reset and filled in place
     */
    virtual void predecodeBlock(
        std::span<const uint64_t> detectorWords, uint64_t laneMask,
        long long cycle_budget, DecodeWorkspace &workspace,
        BlockPredecodeResult &result);

    /** Independent copy with identical configuration. */
    virtual std::unique_ptr<Predecoder> clone() const = 0;

    virtual std::string name() const = 0;

  protected:
    const DecodingGraph &graph_;
    const PathTable &paths_;

  private:
    std::unique_ptr<DecodeWorkspace> workspace_;
};

} // namespace qec

#endif // QEC_PREDECODE_PREDECODER_HPP
