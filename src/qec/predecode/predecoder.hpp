/**
 * @file
 * Predecoder interface (Fig. 3 of the paper).
 *
 * A predecoder sees the syndrome before the main decoder. Syndrome-
 * Modified (SM) predecoders prematch a subset of the flipped bits and
 * hand the (smaller) residual to the main decoder; Non-Syndrome-
 * Modified (NSM) predecoders either decode everything themselves or
 * forward the syndrome untouched.
 *
 * Like decoders, predecoders keep no per-call state (everything the
 * caller needs comes back in the PredecodeResult) and are cloneable
 * so composed stacks can be replicated across threads. The hot
 * `predecode()` overload borrows a caller-owned DecodeWorkspace and
 * fills a caller-owned PredecodeResult in place — with warm buffers
 * this is allocation-free; the historical returning overload runs
 * on a lazily created internal workspace. New predecoders
 * self-register with the component registry in their own
 * translation unit (see qec/api/registry.hpp).
 */

#ifndef QEC_PREDECODE_PREDECODER_HPP
#define QEC_PREDECODE_PREDECODER_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "qec/decoders/decoder.hpp"
#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/path_table.hpp"

namespace qec
{

/** Outcome of predecoding one syndrome. */
struct PredecodeResult
{
    /** Defects left for the main decoder (sorted). */
    std::vector<uint32_t> residual;
    /** Observable flips implied by the prematched corrections. */
    uint64_t obsMask = 0;
    /** Total weight of the prematched corrections. */
    double weight = 0.0;
    /** Modeled pipeline cycles consumed (§6.4 accounting). */
    long long cycles = 0;
    /** Predecode rounds executed. */
    int rounds = 0;
    /** NSM: the syndrome was forwarded unmodified. */
    bool forwarded = false;
    /** NSM: everything was decoded locally; residual is empty. */
    bool decodedAll = false;
    /** Steps used (meaningful for Promatch). */
    StepUsage steps;

    /** Clear for reuse, keeping residual capacity. */
    void
    reset()
    {
        residual.clear();
        obsMask = 0;
        weight = 0.0;
        cycles = 0;
        rounds = 0;
        forwarded = false;
        decodedAll = false;
        steps = {};
    }
};

/** Abstract predecoder over a fixed decoding graph. */
class Predecoder
{
  public:
    // Out of line: the workspace_ member's deleter needs the full
    // DecodeWorkspace type (see predecoder.cpp).
    Predecoder(const DecodingGraph &graph, const PathTable &paths);
    virtual ~Predecoder();

    /**
     * Predecode a syndrome into a caller-owned result, borrowing
     * the caller's workspace for all scratch state.
     *
     * @param defects       sorted flipped-detector indices
     * @param cycle_budget  pipeline cycles available before the
     *                      main decoder must still fit (adaptive SM
     *                      predecoders use this; NSM ones ignore
     *                      it)
     * @param workspace     caller-owned scratch (not shareable
     *                      between threads); warm buffers make the
     *                      call allocation-free
     * @param result        reset and filled in place, reusing its
     *                      residual capacity
     */
    virtual void predecode(std::span<const uint32_t> defects,
                           long long cycle_budget,
                           DecodeWorkspace &workspace,
                           PredecodeResult &result) = 0;

    /**
     * Historical returning overload: runs on this instance's
     * lazily created internal workspace. Bit-identical with the
     * workspace overload.
     */
    PredecodeResult predecode(std::span<const uint32_t> defects,
                              long long cycle_budget);

    /** Independent copy with identical configuration. */
    virtual std::unique_ptr<Predecoder> clone() const = 0;

    virtual std::string name() const = 0;

  protected:
    const DecodingGraph &graph_;
    const PathTable &paths_;

  private:
    std::unique_ptr<DecodeWorkspace> workspace_;
};

} // namespace qec

#endif // QEC_PREDECODE_PREDECODER_HPP
