/**
 * @file
 * Predecoder interface (Fig. 3 of the paper).
 *
 * A predecoder sees the syndrome before the main decoder. Syndrome-
 * Modified (SM) predecoders prematch a subset of the flipped bits and
 * hand the (smaller) residual to the main decoder; Non-Syndrome-
 * Modified (NSM) predecoders either decode everything themselves or
 * forward the syndrome untouched.
 *
 * Like decoders, predecoders keep no per-call state (everything the
 * caller needs comes back in the PredecodeResult) and are cloneable
 * so composed stacks can be replicated across threads. New
 * predecoders self-register with the component registry in their own
 * translation unit (see qec/api/registry.hpp).
 */

#ifndef QEC_PREDECODE_PREDECODER_HPP
#define QEC_PREDECODE_PREDECODER_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "qec/decoders/decoder.hpp"
#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/path_table.hpp"

namespace qec
{

/** Outcome of predecoding one syndrome. */
struct PredecodeResult
{
    /** Defects left for the main decoder (sorted). */
    std::vector<uint32_t> residual;
    /** Observable flips implied by the prematched corrections. */
    uint64_t obsMask = 0;
    /** Total weight of the prematched corrections. */
    double weight = 0.0;
    /** Modeled pipeline cycles consumed (§6.4 accounting). */
    long long cycles = 0;
    /** Predecode rounds executed. */
    int rounds = 0;
    /** NSM: the syndrome was forwarded unmodified. */
    bool forwarded = false;
    /** NSM: everything was decoded locally; residual is empty. */
    bool decodedAll = false;
    /** Steps used (meaningful for Promatch). */
    StepUsage steps;
};

/** Abstract predecoder over a fixed decoding graph. */
class Predecoder
{
  public:
    Predecoder(const DecodingGraph &graph, const PathTable &paths)
        : graph_(graph), paths_(paths)
    {
    }
    virtual ~Predecoder() = default;

    /**
     * Predecode a syndrome.
     *
     * @param defects       sorted flipped-detector indices
     * @param cycle_budget  pipeline cycles available before the main
     *                      decoder must still fit (adaptive SM
     *                      predecoders use this; NSM ones ignore it)
     */
    virtual PredecodeResult predecode(
        std::span<const uint32_t> defects,
        long long cycle_budget) = 0;

    /** Independent copy with identical configuration. */
    virtual std::unique_ptr<Predecoder> clone() const = 0;

    virtual std::string name() const = 0;

  protected:
    const DecodingGraph &graph_;
    const PathTable &paths_;
};

} // namespace qec

#endif // QEC_PREDECODE_PREDECODER_HPP
