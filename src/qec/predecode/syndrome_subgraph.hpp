/**
 * @file
 * The decoding subgraph of one syndrome, rebuilt in place.
 *
 * Every predecoder starts from the same view: the flipped detectors
 * and the decoding-graph edges between them (the paper's "decoding
 * subgraph", Fig. 9). This type centralizes that construction —
 * previously duplicated across promatch/clique/smith/hierarchical —
 * as a flat CSR adjacency that rebuilds from a DecodeWorkspace
 * without allocating once its buffers are warm.
 *
 * The rebuild walks the graph's pair-edge CSR (8-byte half-edge
 * records, boundary edges pre-filtered) and tests membership with a
 * dense detector -> local-index scratch array (O(1) per half-edge;
 * only the previous syndrome's entries are cleared between builds),
 * so construction touches no GraphEdge AoS records at all. Edge
 * weight/obs lookups go through the graph's SoA hot fields.
 *
 * Liveness (kill / refresh / #dependent counters) supports the
 * iterative Promatch rounds; one-pass predecoders just use the
 * static structure (degree / soleNeighbor / soleEdge).
 *
 * Liveness is maintained incrementally: kill(i) decrements the live
 * degree of i's alive neighbors and propagates the induced
 * #dependent deltas (a degree 2 -> 1 transition makes a node
 * dependent on its last neighbor; 1 -> 0 has nothing left to
 * notify), recording every touched index on a dirty list. refresh()
 * — the per-round synchronization point that consumers like
 * Promatch call between kill batches — then just publishes the
 * dirty entries into the snapshot arrays read by degree() /
 * createsSingletonHw(), instead of recomputing all V+E counters
 * from scratch. Between refresh() calls the snapshot intentionally
 * lags the kills, matching the per-round hardware evaluation the
 * predecoders model (and the historical full-recompute behavior
 * bit for bit; equivalence is enforced by a randomized kill-
 * sequence test in tests/test_workspace.cpp).
 */

#ifndef QEC_PREDECODE_SYNDROME_SUBGRAPH_HPP
#define QEC_PREDECODE_SYNDROME_SUBGRAPH_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "qec/graph/decoding_graph.hpp"

namespace qec
{

/** Flat-CSR defect subgraph with liveness tracking (Fig. 9). */
class SyndromeSubgraph
{
  public:
    /**
     * Rebuild from a sorted defect list, reusing all buffers. All
     * nodes start alive; degrees are the in-set adjacency counts
     * and the #dependent counters are refreshed.
     */
    void build(const DecodingGraph &graph,
               std::span<const uint32_t> defects);

    int size() const { return static_cast<int>(dets_.size()); }
    int aliveCount() const { return aliveCount_; }
    uint32_t det(int i) const { return dets_[i]; }
    bool alive(int i) const { return alive_[i] != 0; }
    int degree(int i) const { return deg_[i]; }
    /** Published #dependent counter of node i (Fig. 11): how many
     *  alive neighbors have live degree 1. */
    int dependentCount(int i) const { return dependent_[i]; }

    /** Local index of a detector of the current build, or -1 when
     *  the detector is not part of this syndrome. */
    int32_t
    localIndexOf(uint32_t det) const
    {
        return localIndex_[det];
    }

    /** In-set neighbors of i (local indices), dead ones included. */
    std::span<const int32_t>
    neighbors(int i) const
    {
        return {adjNode_.data() + adjOffset_[i],
                adjNode_.data() + adjOffset_[i + 1]};
    }

    /**
     * The single in-set neighbor of a static-degree-1 node (the
     * last one recorded, matching the historical per-predecoder
     * scan order); meaningful only when degree(i) == 1.
     */
    int
    soleNeighbor(int i) const
    {
        return adjNode_[adjOffset_[i + 1] - 1];
    }

    /** Edge id to soleNeighbor(i). */
    uint32_t
    soleEdge(int i) const
    {
        return adjEdge_[adjOffset_[i + 1] - 1];
    }

    /** Edge id of row i's o-th entry (parallel to neighbors(i)). */
    uint32_t
    edgeIdAt(int i, int32_t o) const
    {
        return adjEdge_[adjOffset_[i] + o];
    }

    /**
     * Publish the live degree and #dependent counters accumulated
     * by kill() into the snapshot read by degree() /
     * createsSingletonHw() (Fig. 9). O(entries touched since the
     * last refresh), not O(V + E).
     */
    void refresh();

    /** Append the alive-alive edges (i < j) of the current
     *  subgraph to `out` (any push_back container of pairs). */
    template <typename OutVec>
    void
    appendAliveEdges(OutVec &out) const
    {
        for (int i = 0; i < size(); ++i) {
            if (!alive_[i]) {
                continue;
            }
            for (int32_t o = adjOffset_[i]; o < adjOffset_[i + 1];
                 ++o) {
                const int j = adjNode_[o];
                if (j > i && alive_[j]) {
                    out.push_back({i, j});
                }
            }
        }
    }

    /** Id of the direct edge between two alive neighbors. */
    uint32_t edgeIdOf(int i, int j) const;

    /** Weight of the direct edge (i, j), from the SoA hot fields. */
    float
    edgeWeightOf(int i, int j) const
    {
        return graph_->edgeWeight(edgeIdOf(i, j));
    }

    /** Hardware singleton check (Fig. 11): would matching (i, j)
     *  strand a degree-1 neighbor? */
    bool
    createsSingletonHw(int i, int j) const
    {
        const int di = dependent_[i] - (deg_[j] == 1 ? 1 : 0);
        const int dj = dependent_[j] - (deg_[i] == 1 ? 1 : 0);
        return di + dj > 0;
    }

    /** Exact singleton check: recompute each neighbor's degree
     *  after removing i and j. Also catches a shared degree-2
     *  neighbor, which the hardware counters miss. */
    bool createsSingletonExact(int i, int j) const;

    bool adjacent(int a, int b) const;

    /** Would removing only node j (a Step-3 pair partner) strand a
     *  neighbor of j? */
    bool
    removalCreatesSingleton(int j) const
    {
        return dependent_[j] > 0;
    }

    void kill(int i);

  private:
    const DecodingGraph *graph_ = nullptr;
    std::vector<uint32_t> dets_;    //!< Local index -> detector.
    std::vector<uint8_t> alive_;
    // Local adjacency in CSR form: row i spans
    // [adjOffset_[i], adjOffset_[i+1]) of adjNode_/adjEdge_.
    std::vector<int32_t> adjOffset_;
    std::vector<int32_t> adjNode_;
    std::vector<uint32_t> adjEdge_;
    // Snapshot counters, published by refresh(); what degree() and
    // the singleton checks read between rounds.
    std::vector<int> deg_;
    std::vector<int> dependent_;
    // Live counters, maintained eagerly by kill(); dirty_ records
    // which indices diverged from the snapshot (duplicates are
    // fine — publishing is idempotent).
    std::vector<int> degLive_;
    std::vector<int> depLive_;
    std::vector<int32_t> dirty_;
    // Dense detector -> local index scratch (-1 = not in set). Only
    // the previous build's entries are cleared, so a rebuild is
    // O(defects + incident half-edges), not O(numDetectors).
    std::vector<int32_t> localIndex_;
    int aliveCount_ = 0;
};

} // namespace qec

#endif // QEC_PREDECODE_SYNDROME_SUBGRAPH_HPP
