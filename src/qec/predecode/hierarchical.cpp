#include "qec/predecode/hierarchical.hpp"

#include <algorithm>
#include <cmath>

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/util/arena.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

void
HierarchicalPredecoder::predecode(std::span<const uint32_t> defects,
                                  long long cycle_budget,
                                  DecodeWorkspace &workspace,
                                  PredecodeResult &result)
{
    QEC_REALTIME;
    (void)cycle_budget;
    result.reset();
    result.rounds = 1;
    // Per-bit local logic evaluates in parallel (constant depth).
    result.cycles = 2;

    const auto &coords = graph_.coords();
    SyndromeSubgraph &sg = workspace.subgraph;
    sg.build(graph_, defects);
    MonotonicArena &arena = workspace.arena;
    arena.reset();
    const int n = sg.size();

    // A pair is "weight-1 local" if both bits have each other as the
    // unique neighbor and the pair is either time-like (same
    // stabilizer, adjacent layers) or space-like within one layer.
    uint64_t obs = 0;
    double weight = 0.0;
    uint8_t *covered = arena.allocate<uint8_t>(n);
    std::fill_n(covered, n, uint8_t{0});
    for (int i = 0; i < n; ++i) {
        if (covered[i] || sg.degree(i) != 1) {
            continue;
        }
        const int j = sg.soleNeighbor(i);
        if (covered[j] || sg.degree(j) != 1 ||
            sg.soleNeighbor(j) != i) {
            continue;
        }
        bool local = true;
        if (!coords.empty()) {
            const DetectorCoord &a = coords[defects[i]];
            const DetectorCoord &b = coords[defects[j]];
            const bool timelike = a.zOrdinal == b.zOrdinal &&
                                  std::abs(a.layer - b.layer) == 1;
            const bool spacelike = a.layer == b.layer;
            local = timelike || spacelike;
        }
        if (local) {
            covered[i] = 1;
            covered[j] = 1;
            const uint32_t eid = sg.soleEdge(i);
            obs ^= graph_.edgeObsMask(eid);
            weight += graph_.edgeWeight(eid);
        }
    }

    if (std::all_of(covered, covered + n,
                    [](uint8_t c) { return c != 0; })) {
        result.decodedAll = true;
        result.obsMask = obs;
        result.weight = weight;
    } else {
        result.forwarded = true;
        rt::assignRange(result.residual, defects.begin(),
                        defects.end());
    }
}

QEC_REGISTER_PREDECODER(
    hierarchical,
    "Delfosse hierarchical weight-1 local predecoder (NSM)",
    [](const BuildContext &context) {
        return std::make_unique<HierarchicalPredecoder>(
            context.graph, context.paths);
    });

} // namespace qec
