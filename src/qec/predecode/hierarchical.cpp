#include "qec/predecode/hierarchical.hpp"

#include <algorithm>

#include "qec/api/registry.hpp"

namespace qec
{

PredecodeResult
HierarchicalPredecoder::predecode(std::span<const uint32_t> defects,
                                  long long cycle_budget)
{
    (void)cycle_budget;
    PredecodeResult result;
    result.rounds = 1;
    // Per-bit local logic evaluates in parallel (constant depth).
    result.cycles = 2;

    const auto &coords = graph_.coords();
    const int n = static_cast<int>(defects.size());
    std::vector<int> deg(n, 0);
    std::vector<int> only_neighbor(n, -1);
    std::vector<uint32_t> pair_edge(n, 0);
    for (int i = 0; i < n; ++i) {
        for (uint32_t eid : graph_.adjacentEdges(defects[i])) {
            const GraphEdge &edge = graph_.edges()[eid];
            if (edge.v == kBoundary) {
                continue;
            }
            const uint32_t other =
                (edge.u == defects[i]) ? edge.v : edge.u;
            const auto it = std::lower_bound(defects.begin(),
                                             defects.end(), other);
            if (it != defects.end() && *it == other) {
                ++deg[i];
                only_neighbor[i] =
                    static_cast<int>(it - defects.begin());
                pair_edge[i] = eid;
            }
        }
    }

    // A pair is "weight-1 local" if both bits have each other as the
    // unique neighbor and the pair is either time-like (same
    // stabilizer, adjacent layers) or space-like within one layer.
    uint64_t obs = 0;
    double weight = 0.0;
    std::vector<bool> covered(n, false);
    for (int i = 0; i < n; ++i) {
        if (covered[i] || deg[i] != 1) {
            continue;
        }
        const int j = only_neighbor[i];
        if (covered[j] || deg[j] != 1 || only_neighbor[j] != i) {
            continue;
        }
        bool local = true;
        if (!coords.empty()) {
            const DetectorCoord &a = coords[defects[i]];
            const DetectorCoord &b = coords[defects[j]];
            const bool timelike = a.zOrdinal == b.zOrdinal &&
                                  std::abs(a.layer - b.layer) == 1;
            const bool spacelike = a.layer == b.layer;
            local = timelike || spacelike;
        }
        if (local) {
            covered[i] = true;
            covered[j] = true;
            obs ^= graph_.edges()[pair_edge[i]].obsMask;
            weight += graph_.edges()[pair_edge[i]].weight;
        }
    }

    if (std::all_of(covered.begin(), covered.end(),
                    [](bool c) { return c; })) {
        result.decodedAll = true;
        result.obsMask = obs;
        result.weight = weight;
    } else {
        result.forwarded = true;
        result.residual.assign(defects.begin(), defects.end());
    }
    return result;
}

QEC_REGISTER_PREDECODER(
    hierarchical,
    "Delfosse hierarchical weight-1 local predecoder (NSM)",
    [](const BuildContext &context) {
        return std::make_unique<HierarchicalPredecoder>(
            context.graph, context.paths);
    });

} // namespace qec
