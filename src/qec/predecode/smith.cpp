#include "qec/predecode/smith.hpp"

#include <algorithm>

#include "qec/api/registry.hpp"

namespace qec
{

PredecodeResult
SmithPredecoder::predecode(std::span<const uint32_t> defects,
                           long long cycle_budget)
{
    (void)cycle_budget; // Not adaptive: one fixed pass.
    PredecodeResult result;
    result.rounds = 1;

    // Collect subgraph edges (defect-defect adjacencies).
    struct LocalEdge
    {
        double weight;
        uint32_t eid;
        int i, j;
    };
    std::vector<LocalEdge> edges;
    for (size_t i = 0; i < defects.size(); ++i) {
        for (uint32_t eid : graph_.adjacentEdges(defects[i])) {
            const GraphEdge &edge = graph_.edges()[eid];
            if (edge.v == kBoundary) {
                continue;
            }
            const uint32_t other =
                (edge.u == defects[i]) ? edge.v : edge.u;
            const auto it = std::lower_bound(defects.begin(),
                                             defects.end(), other);
            if (it != defects.end() && *it == other) {
                const int j = static_cast<int>(it - defects.begin());
                if (j > static_cast<int>(i)) {
                    edges.push_back({edge.weight, eid,
                                     static_cast<int>(i), j});
                }
            }
        }
    }
    result.cycles = static_cast<long long>(edges.size());

    std::sort(edges.begin(), edges.end(),
              [](const LocalEdge &a, const LocalEdge &b) {
                  return a.weight < b.weight;
              });

    std::vector<bool> matched(defects.size(), false);
    for (const LocalEdge &edge : edges) {
        if (matched[edge.i] || matched[edge.j]) {
            continue;
        }
        matched[edge.i] = true;
        matched[edge.j] = true;
        result.obsMask ^= graph_.edges()[edge.eid].obsMask;
        result.weight += graph_.edges()[edge.eid].weight;
    }

    for (size_t i = 0; i < defects.size(); ++i) {
        if (!matched[i]) {
            result.residual.push_back(defects[i]);
        }
    }
    return result;
}

QEC_REGISTER_PREDECODER(
    smith, "Smith et al. one-pass greedy local predecoder (SM)",
    [](const BuildContext &context) {
        return std::make_unique<SmithPredecoder>(context.graph,
                                                 context.paths);
    });

} // namespace qec
