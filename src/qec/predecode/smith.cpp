#include "qec/predecode/smith.hpp"

#include <algorithm>

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/util/arena.hpp"
#include "qec/util/bitvec.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

namespace
{

/** A defect-defect adjacency, sortable by weight. */
struct LocalEdge
{
    double weight;
    uint32_t eid;
    int i, j;
};

} // namespace

void
SmithPredecoder::predecode(std::span<const uint32_t> defects,
                           long long cycle_budget,
                           DecodeWorkspace &workspace,
                           PredecodeResult &result)
{
    QEC_REALTIME;
    (void)cycle_budget; // Not adaptive: one fixed pass.
    result.reset();
    result.rounds = 1;

    // Collect subgraph edges (defect-defect adjacencies) from the
    // shared workspace-rebuilt subgraph view.
    SyndromeSubgraph &sg = workspace.subgraph;
    sg.build(graph_, defects);
    MonotonicArena &arena = workspace.arena;
    arena.reset();
    const int n = sg.size();

    ArenaVector<LocalEdge> edges(arena, 64);
    for (int i = 0; i < n; ++i) {
        for (int32_t o = 0; o < sg.degree(i); ++o) {
            const int j = sg.neighbors(i)[o];
            if (j > i) {
                const uint32_t eid = sg.edgeIdAt(i, o);
                edges.push_back(
                    {graph_.edgeWeight(eid), eid, i, j});
            }
        }
    }
    result.cycles = static_cast<long long>(edges.size());

    // Total order (weight, then edge id): ties between equal-weight
    // edges resolve identically no matter which subgraph collected
    // them, which is what lets the 64-lane block kernel's one
    // union-sorted walk stay bit-identical with every lane's own
    // sorted walk.
    std::sort(edges.begin(), edges.end(),
              [](const LocalEdge &a, const LocalEdge &b) {
                  return a.weight != b.weight ? a.weight < b.weight
                                              : a.eid < b.eid;
              });

    uint8_t *matched = arena.allocate<uint8_t>(n);
    std::fill_n(matched, n, uint8_t{0});
    for (const LocalEdge &edge : edges) {
        if (matched[edge.i] || matched[edge.j]) {
            continue;
        }
        matched[edge.i] = 1;
        matched[edge.j] = 1;
        result.obsMask ^= graph_.edgeObsMask(edge.eid);
        result.weight += graph_.edgeWeight(edge.eid);
    }

    for (int i = 0; i < n; ++i) {
        if (!matched[i]) {
            rt::pushBack(result.residual, defects[i]);
        }
    }
}

void
SmithPredecoder::predecodeBlock(
    std::span<const uint64_t> detectorWords, uint64_t laneMask,
    long long cycle_budget, DecodeWorkspace &workspace,
    BlockPredecodeResult &result)
{
    QEC_REALTIME;
    (void)cycle_budget; // Not adaptive: one fixed pass.
    result.reset();
    result.laneMask = laneMask;
    if (laneMask == 0) {
        return;
    }

    // Union subgraph over every lane's defects. A lane's own
    // subgraph is exactly the union restricted to its present bits:
    // adjacency between two defects depends only on the decoding
    // graph, never on which other defects are flipped.
    BlockScratch &block = workspace.block;
    block.unionDets.clear();
    for (size_t det = 0; det < detectorWords.size(); ++det) {
        if (detectorWords[det] & laneMask) {
            rt::pushBack(block.unionDets,
                         static_cast<uint32_t>(det));
        }
    }
    SyndromeSubgraph &sg = workspace.subgraph;
    sg.build(graph_, block.unionDets);
    MonotonicArena &arena = workspace.arena;
    arena.reset();
    const int n = sg.size();

    uint64_t *present = arena.allocate<uint64_t>(n);
    uint64_t *matched = arena.allocate<uint64_t>(n);
    for (int i = 0; i < n; ++i) {
        present[i] = detectorWords[sg.det(i)] & laneMask;
        matched[i] = 0;
    }

    ArenaVector<LocalEdge> edges(arena, 64);
    for (int i = 0; i < n; ++i) {
        for (int32_t o = 0; o < sg.degree(i); ++o) {
            const int j = sg.neighbors(i)[o];
            if (j > i) {
                const uint32_t eid = sg.edgeIdAt(i, o);
                edges.push_back(
                    {graph_.edgeWeight(eid), eid, i, j});
            }
        }
    }
    std::sort(edges.begin(), edges.end(),
              [](const LocalEdge &a, const LocalEdge &b) {
                  return a.weight != b.weight ? a.weight < b.weight
                                              : a.eid < b.eid;
              });

    // One greedy walk over the union-sorted edges. Because the sort
    // key is total, each lane sees its own edges in exactly its own
    // serial sorted order, so the per-lane weight sums accumulate in
    // the same floating-point order as the serial pass.
    for (const LocalEdge &edge : edges) {
        const uint64_t both = present[edge.i] & present[edge.j];
        if (both == 0) {
            continue;
        }
        forEachSetBit(both, [&](int lane) {
            ++result.cycles[lane]; // serial: one cycle per lane edge
        });
        const uint64_t m =
            both & ~matched[edge.i] & ~matched[edge.j];
        if (m == 0) {
            continue;
        }
        matched[edge.i] |= m;
        matched[edge.j] |= m;
        const uint64_t obs = graph_.edgeObsMask(edge.eid);
        const double weight = graph_.edgeWeight(edge.eid);
        forEachSetBit(m, [&](int lane) {
            result.obsMask[lane] ^= obs;
            result.weight[lane] += weight;
        });
    }

    for (int i = 0; i < n; ++i) {
        const uint64_t r = present[i] & ~matched[i];
        if (r != 0) {
            rt::pushBack(result.residualDets, sg.det(i));
            rt::pushBack(result.residualWords, r);
        }
    }
    forEachSetBit(laneMask,
                  [&](int lane) { result.rounds[lane] = 1; });
}

QEC_REGISTER_PREDECODER(
    smith, "Smith et al. one-pass greedy local predecoder (SM)",
    [](const BuildContext &context) {
        return std::make_unique<SmithPredecoder>(context.graph,
                                                 context.paths);
    });

} // namespace qec
