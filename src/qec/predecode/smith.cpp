#include "qec/predecode/smith.hpp"

#include <algorithm>

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/util/arena.hpp"

namespace qec
{

namespace
{

/** A defect-defect adjacency, sortable by weight. */
struct LocalEdge
{
    double weight;
    uint32_t eid;
    int i, j;
};

} // namespace

void
SmithPredecoder::predecode(std::span<const uint32_t> defects,
                           long long cycle_budget,
                           DecodeWorkspace &workspace,
                           PredecodeResult &result)
{
    (void)cycle_budget; // Not adaptive: one fixed pass.
    result.reset();
    result.rounds = 1;

    // Collect subgraph edges (defect-defect adjacencies) from the
    // shared workspace-rebuilt subgraph view.
    SyndromeSubgraph &sg = workspace.subgraph;
    sg.build(graph_, defects);
    MonotonicArena &arena = workspace.arena;
    arena.reset();
    const int n = sg.size();

    ArenaVector<LocalEdge> edges(arena, 64);
    for (int i = 0; i < n; ++i) {
        for (int32_t o = 0; o < sg.degree(i); ++o) {
            const int j = sg.neighbors(i)[o];
            if (j > i) {
                const uint32_t eid = sg.edgeIdAt(i, o);
                edges.push_back(
                    {graph_.edgeWeight(eid), eid, i, j});
            }
        }
    }
    result.cycles = static_cast<long long>(edges.size());

    std::sort(edges.begin(), edges.end(),
              [](const LocalEdge &a, const LocalEdge &b) {
                  return a.weight < b.weight;
              });

    uint8_t *matched = arena.allocate<uint8_t>(n);
    std::fill_n(matched, n, uint8_t{0});
    for (const LocalEdge &edge : edges) {
        if (matched[edge.i] || matched[edge.j]) {
            continue;
        }
        matched[edge.i] = 1;
        matched[edge.j] = 1;
        result.obsMask ^= graph_.edgeObsMask(edge.eid);
        result.weight += graph_.edgeWeight(edge.eid);
    }

    for (int i = 0; i < n; ++i) {
        if (!matched[i]) {
            result.residual.push_back(defects[i]);
        }
    }
}

QEC_REGISTER_PREDECODER(
    smith, "Smith et al. one-pass greedy local predecoder (SM)",
    [](const BuildContext &context) {
        return std::make_unique<SmithPredecoder>(context.graph,
                                                 context.paths);
    });

} // namespace qec
