/**
 * @file
 * Model of Delfosse's hierarchical predecoder [20] — NSM.
 *
 * The hierarchical scheme targets bandwidth reduction: it locally
 * resolves the overwhelmingly common weight-1 faults, i.e. isolated
 * vertical (time-like) defect pairs caused by measurement errors and
 * isolated space-like pairs from single data errors, and forwards
 * anything more complex untouched. Like Clique it never lowers the
 * Hamming weight of what the main decoder must handle.
 */

#ifndef QEC_PREDECODE_HIERARCHICAL_HPP
#define QEC_PREDECODE_HIERARCHICAL_HPP

#include "qec/predecode/predecoder.hpp"

namespace qec
{

/** NSM predecoder for isolated weight-1 fault patterns. */
class HierarchicalPredecoder : public Predecoder
{
  public:
    using Predecoder::Predecoder;

    using Predecoder::predecode;
    void predecode(std::span<const uint32_t> defects,
                   long long cycle_budget,
                   DecodeWorkspace &workspace,
                   PredecodeResult &result) override;

    std::unique_ptr<Predecoder>
    clone() const override
    {
        return std::make_unique<HierarchicalPredecoder>(graph_,
                                                        paths_);
    }

    std::string name() const override { return "Hierarchical"; }
};

} // namespace qec

#endif // QEC_PREDECODE_HIERARCHICAL_HPP
