/**
 * @file
 * Model of the Smith et al. local predecoder [55].
 *
 * A one-pass ("monolithic", §3.2) greedy matcher: it sorts the
 * decoding-subgraph edges by weight and matches every still-unmatched
 * adjacent pair, with no singleton awareness and no adaptivity. This
 * gives high coverage but low accuracy — defects stranded by a bad
 * early match are left for the main decoder at whatever Hamming
 * weight remains (Figs. 16/17 of the paper).
 */

#ifndef QEC_PREDECODE_SMITH_HPP
#define QEC_PREDECODE_SMITH_HPP

#include "qec/predecode/predecoder.hpp"

namespace qec
{

/** One-pass greedy adjacent-pair predecoder. */
class SmithPredecoder : public Predecoder
{
  public:
    using Predecoder::Predecoder;

    using Predecoder::predecode;
    void predecode(std::span<const uint32_t> defects,
                   long long cycle_budget,
                   DecodeWorkspace &workspace,
                   PredecodeResult &result) override;

    /** Bit-parallel word kernel: one sorted walk over the union
     *  subgraph's edges carries all 64 lanes through the greedy
     *  pass, bit-identical per lane with the serial path. */
    void predecodeBlock(std::span<const uint64_t> detectorWords,
                        uint64_t laneMask, long long cycle_budget,
                        DecodeWorkspace &workspace,
                        BlockPredecodeResult &result) override;

    std::unique_ptr<Predecoder>
    clone() const override
    {
        return std::make_unique<SmithPredecoder>(graph_, paths_);
    }

    std::string name() const override { return "Smith"; }
};

} // namespace qec

#endif // QEC_PREDECODE_SMITH_HPP
