#include "qec/predecode/syndrome_subgraph.hpp"

#include <algorithm>

#include "qec/util/assert.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

void
SyndromeSubgraph::build(const DecodingGraph &graph,
                        std::span<const uint32_t> defects)
{
    QEC_REALTIME;
    // Membership scratch: initialize once per graph (the only
    // allocation this type ever performs), then clear just the
    // previous syndrome's marks.
    if (graph_ != &graph ||
        localIndex_.size() != graph.numDetectors()) {
        rt::assignFill(localIndex_, graph.numDetectors(), -1);
    } else {
        for (uint32_t det : dets_) {
            localIndex_[det] = -1;
        }
    }
    graph_ = &graph;
    rt::assignRange(dets_, defects.begin(), defects.end());
    const int n = size();
    rt::assignFill<uint8_t>(alive_, n, 1);
    aliveCount_ = n;
    rt::assignFill(adjOffset_, n + 1, 0);
    for (int i = 0; i < n; ++i) {
        localIndex_[dets_[i]] = i;
    }

    // Single pass over the pair-edge CSR, appending straight into
    // the local CSR arrays: the outer loop visits rows in ascending
    // order, so the entries land already grouped and only the
    // offsets need a prefix sum. Row i holds every in-set neighbor
    // of defect i, in the order of graph.adjacentEdges(dets[i])
    // minus boundary edges (the pair CSR preserves that order);
    // membership is one O(1) scratch lookup per half-edge.
    adjNode_.clear();
    adjEdge_.clear();
    for (int i = 0; i < n; ++i) {
        for (const PairHalfEdge &half :
             graph.pairNeighbors(dets_[i])) {
            const int32_t j = localIndex_[half.neighbor];
            if (j >= 0) {
                rt::pushBack(adjNode_, j);
                rt::pushBack(adjEdge_, half.edgeId);
                ++adjOffset_[i + 1];
            }
        }
    }
    for (int i = 0; i < n; ++i) {
        adjOffset_[i + 1] += adjOffset_[i];
    }
    // All nodes start alive, so the live degree is the static row
    // length and #dependent counts static degree-1 neighbors; the
    // first snapshot is published directly.
    rt::assignFill(degLive_, n, 0);
    rt::assignFill(depLive_, n, 0);
    dirty_.clear();
    for (int i = 0; i < n; ++i) {
        degLive_[i] = adjOffset_[i + 1] - adjOffset_[i];
    }
    for (int i = 0; i < n; ++i) {
        int dep = 0;
        for (int j : neighbors(i)) {
            if (degLive_[j] == 1) {
                ++dep;
            }
        }
        depLive_[i] = dep;
    }
    rt::assignRange(deg_, degLive_.begin(), degLive_.end());
    rt::assignRange(dependent_, depLive_.begin(),
                    depLive_.end());
}

void
SyndromeSubgraph::refresh()
{
    QEC_REALTIME;
    for (const int32_t i : dirty_) {
        deg_[i] = degLive_[i];
        dependent_[i] = depLive_[i];
    }
    dirty_.clear();
}

uint32_t
SyndromeSubgraph::edgeIdOf(int i, int j) const
{
    for (int32_t o = adjOffset_[i]; o < adjOffset_[i + 1]; ++o) {
        if (adjNode_[o] == j) {
            return adjEdge_[o];
        }
    }
    QEC_PANIC("edgeIdOf called on non-adjacent pair");
}

bool
SyndromeSubgraph::createsSingletonExact(int i, int j) const
{
    const auto strands_neighbor_of = [&](int a, int b) {
        for (int k : neighbors(a)) {
            if (k == b || !alive_[k]) {
                continue;
            }
            const int new_deg =
                deg_[k] - 1 - (adjacent(k, b) ? 1 : 0);
            if (new_deg == 0) {
                return true;
            }
        }
        return false;
    };
    return strands_neighbor_of(i, j) || strands_neighbor_of(j, i);
}

bool
SyndromeSubgraph::adjacent(int a, int b) const
{
    for (int k : neighbors(a)) {
        if (k == b) {
            return alive_[b] != 0;
        }
    }
    return false;
}

void
SyndromeSubgraph::kill(int i)
{
    QEC_ASSERT(alive_[i], "killing a dead node");
    // A live degree-1 node contributes to its sole alive neighbor's
    // #dependent; retire that contribution before i disappears.
    if (degLive_[i] == 1) {
        for (const int j : neighbors(i)) {
            if (alive_[j]) {
                --depLive_[j];
                rt::pushBack(dirty_, j);
            }
        }
    }
    alive_[i] = 0;
    --aliveCount_;
    for (const int j : neighbors(i)) {
        if (!alive_[j]) {
            continue;
        }
        const int old_deg = degLive_[j]--;
        rt::pushBack(dirty_, j);
        if (old_deg == 2) {
            // j just became degree-1: every remaining alive
            // neighbor of j now depends on it. (A 1 -> 0 transition
            // needs no propagation — j's only alive neighbor was i.)
            for (const int k : neighbors(j)) {
                if (alive_[k]) {
                    ++depLive_[k];
                    rt::pushBack(dirty_, k);
                }
            }
        }
    }
    degLive_[i] = 0;
    depLive_[i] = 0;
    rt::pushBack(dirty_, i);
}

} // namespace qec
