#include "qec/predecode/promatch.hpp"

#include <algorithm>
#include <cmath>

#include "qec/api/registry.hpp"
#include "qec/matching/matching_problem.hpp"
#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

/** Decoding-subgraph state shared by the per-round logic. */
struct Subgraph
{
    const DecodingGraph &graph;
    std::vector<uint32_t> dets;   //!< Local index -> detector.
    std::vector<bool> alive;
    /** Local adjacency: (neighbor local index, edge id). */
    std::vector<std::vector<std::pair<int, uint32_t>>> adj;
    std::vector<int> deg;
    std::vector<int> dependent;
    int aliveCount = 0;

    Subgraph(const DecodingGraph &g,
             std::span<const uint32_t> defects)
        : graph(g), dets(defects.begin(), defects.end()),
          alive(defects.size(), true),
          adj(defects.size()), deg(defects.size(), 0),
          dependent(defects.size(), 0),
          aliveCount(static_cast<int>(defects.size()))
    {
        // Local index lookup (defects are sorted).
        for (size_t i = 0; i < dets.size(); ++i) {
            for (uint32_t eid : graph.adjacentEdges(dets[i])) {
                const GraphEdge &edge = graph.edges()[eid];
                if (edge.v == kBoundary) {
                    continue;
                }
                const uint32_t other =
                    (edge.u == dets[i]) ? edge.v : edge.u;
                const auto it = std::lower_bound(
                    dets.begin(), dets.end(), other);
                if (it != dets.end() && *it == other) {
                    const int j =
                        static_cast<int>(it - dets.begin());
                    if (j > static_cast<int>(i)) {
                        adj[i].push_back({j, eid});
                        adj[j].push_back({static_cast<int>(i),
                                          eid});
                    }
                }
            }
        }
        refresh();
    }

    /** Recompute degrees and #dependent counters (Fig. 9). */
    void
    refresh()
    {
        for (size_t i = 0; i < dets.size(); ++i) {
            if (!alive[i]) {
                deg[i] = 0;
                continue;
            }
            int d = 0;
            for (const auto &[j, eid] : adj[i]) {
                if (alive[j]) {
                    ++d;
                }
            }
            deg[i] = d;
        }
        for (size_t i = 0; i < dets.size(); ++i) {
            if (!alive[i]) {
                dependent[i] = 0;
                continue;
            }
            int dep = 0;
            for (const auto &[j, eid] : adj[i]) {
                if (alive[j] && deg[j] == 1) {
                    ++dep;
                }
            }
            dependent[i] = dep;
        }
    }

    /** Alive-alive edges of the current subgraph. */
    std::vector<std::pair<int, int>>
    aliveEdges() const
    {
        std::vector<std::pair<int, int>> edges;
        for (size_t i = 0; i < dets.size(); ++i) {
            if (!alive[i]) {
                continue;
            }
            for (const auto &[j, eid] : adj[i]) {
                if (j > static_cast<int>(i) && alive[j]) {
                    edges.push_back({static_cast<int>(i), j});
                }
            }
        }
        return edges;
    }

    /** Weight/obs of the direct edge between two alive neighbors. */
    const GraphEdge &
    edgeOf(int i, int j) const
    {
        for (const auto &[k, eid] : adj[i]) {
            if (k == j) {
                return graph.edges()[eid];
            }
        }
        QEC_PANIC("edgeOf called on non-adjacent pair");
    }

    /** Hardware singleton check (Fig. 11): would matching (i, j)
     *  strand a degree-1 neighbor? */
    bool
    createsSingletonHw(int i, int j) const
    {
        const int di = dependent[i] - (deg[j] == 1 ? 1 : 0);
        const int dj = dependent[j] - (deg[i] == 1 ? 1 : 0);
        return di + dj > 0;
    }

    /** Exact singleton check: recompute each neighbor's degree after
     *  removing i and j. Also catches a shared degree-2 neighbor,
     *  which the hardware counters miss. */
    bool
    createsSingletonExact(int i, int j) const
    {
        const auto strands_neighbor_of = [&](int a, int b) {
            for (const auto &[k, eid] : adj[a]) {
                if (k == b || !alive[k]) {
                    continue;
                }
                const int new_deg = deg[k] - 1 -
                                    (adjacent(k, b) ? 1 : 0);
                if (new_deg == 0) {
                    return true;
                }
            }
            return false;
        };
        return strands_neighbor_of(i, j) || strands_neighbor_of(j, i);
    }

    bool
    adjacent(int a, int b) const
    {
        for (const auto &[k, eid] : adj[a]) {
            if (k == b) {
                return alive[b];
            }
        }
        return false;
    }

    /** Would removing only node j (a Step-3 pair partner) strand a
     *  neighbor of j? */
    bool
    removalCreatesSingleton(int j) const
    {
        return dependent[j] > 0;
    }

    void
    kill(int i)
    {
        QEC_ASSERT(alive[i], "killing a dead node");
        alive[i] = false;
        --aliveCount;
    }
};

} // namespace

PredecodeResult
PromatchPredecoder::predecode(std::span<const uint32_t> defects,
                              long long cycle_budget)
{
    PredecodeResult result;
    Subgraph sg(graph_, defects);
    bool engaged = false;

    // Adaptive HW target (§4.1): the largest T the main decoder can
    // still afford given the cycles already burned.
    const auto target_now = [&](long long used) -> int {
        if (!config_.adaptiveTarget) {
            return config_.fixedTarget;
        }
        for (int t : {latency_.astreaMaxHw, 8, 6}) {
            const long long astrea = latency_.astreaCycles(t);
            if (astrea >= 0 && used + astrea <= cycle_budget) {
                return t;
            }
        }
        return 6; // Nothing fits; keep shrinking, pipeline aborts.
    };

    const auto match_pair = [&](int i, int j) {
        const GraphEdge &edge = sg.edgeOf(i, j);
        result.obsMask ^= edge.obsMask;
        result.weight += edge.weight;
        sg.kill(i);
        sg.kill(j);
    };

    const auto creates_singleton = [&](int i, int j) {
        return config_.exactSingletonCheck
                   ? sg.createsSingletonExact(i, j)
                   : sg.createsSingletonHw(i, j);
    };

    int guard = 0;
    while (true) {
        QEC_ASSERT(++guard < 4096, "promatch failed to terminate");
        const int hw = sg.aliveCount;
        if (hw <= target_now(result.cycles)) {
            break;
        }
        const auto edges = sg.aliveEdges();

        if (!engaged) {
            // Subgraph generation and edge-table loads (§4.2) are
            // charged once when the predecoder engages.
            engaged = true;
            result.cycles += latency_.promatchFixedCycles;
        }
        // Round charge: the pipelines walk every subgraph edge,
        // split across the configured parallel lanes.
        const int lanes = std::max(1, latency_.promatchLanes);
        result.cycles += (static_cast<long long>(edges.size()) +
                          lanes - 1) /
                         lanes;
        ++result.rounds;
        sg.refresh();

        // --- Step 1: isolated pairs, applied as a batch.
        std::vector<std::pair<int, int>> isolated;
        for (const auto &[i, j] : edges) {
            if (sg.deg[i] == 1 && sg.deg[j] == 1) {
                isolated.push_back({i, j});
            }
        }
        if (!isolated.empty()) {
            result.steps.step1 = true;
            for (const auto &[i, j] : isolated) {
                if (sg.aliveCount <= target_now(result.cycles)) {
                    break;
                }
                match_pair(i, j);
            }
            continue;
        }

        // --- Scan all edges for Step 2 / Step 4 candidates.
        struct Candidate
        {
            double weight = kNoEdge;
            int i = -1, j = -1;
        };
        Candidate c21, c22, c41, c42;
        const auto consider = [&](Candidate &c, int i, int j,
                                  double w) {
            if (w < c.weight) {
                c = {w, i, j};
            }
        };
        for (const auto &[i, j] : edges) {
            const double w = sg.edgeOf(i, j).weight;
            const bool deg1 =
                std::min(sg.deg[i], sg.deg[j]) == 1;
            if (!creates_singleton(i, j)) {
                consider(deg1 ? c21 : c22, i, j, w);
            } else {
                consider(deg1 ? c41 : c42, i, j, w);
            }
        }

        // --- Step 3: singleton rescue via shortest paths, only when
        // no safe Step-2 candidate exists (Algorithm 1).
        struct Step3Candidate
        {
            double weight = kNoEdge;
            int singleton = -1;
            int partner = -1; //!< Local index, or -1 for boundary.
        };
        Step3Candidate c3;
        bool used_step3_scan = false;
        if (config_.enableStep3 && c21.i < 0 && c22.i < 0) {
            std::vector<int> singletons;
            for (size_t i = 0; i < sg.dets.size(); ++i) {
                if (sg.alive[i] && sg.deg[i] == 0) {
                    singletons.push_back(static_cast<int>(i));
                }
            }
            if (!singletons.empty()) {
                used_step3_scan = true;
                long long paths = 0;
                for (int s : singletons) {
                    // Boundary is always a legal partner.
                    ++paths;
                    const double bw =
                        paths_.distToBoundary(sg.dets[s]);
                    if (std::isfinite(bw) && bw < c3.weight) {
                        c3 = {bw, s, -1};
                    }
                    for (size_t i = 0; i < sg.dets.size(); ++i) {
                        const int ii = static_cast<int>(i);
                        if (!sg.alive[i] || ii == s) {
                            continue;
                        }
                        ++paths;
                        if (sg.removalCreatesSingleton(ii)) {
                            continue;
                        }
                        const double w = paths_.dist(
                            sg.dets[s], sg.dets[i]);
                        if (std::isfinite(w) && w < c3.weight) {
                            c3 = {w, s, ii};
                        }
                    }
                }
                // Step-3 charge: the path engine runs beside the
                // edge pipeline (§6.4), also split across lanes.
                const int lanes3 =
                    std::max(1, latency_.promatchLanes);
                result.cycles +=
                    (std::max(paths,
                              static_cast<long long>(
                                  edges.size())) +
                     lanes3 - 1) /
                    lanes3;
            }
        }

        // --- Commit exactly one match, in priority order.
        if (c21.i >= 0) {
            result.steps.step2 = true;
            match_pair(c21.i, c21.j);
        } else if (c22.i >= 0) {
            result.steps.step2 = true;
            match_pair(c22.i, c22.j);
        } else if (used_step3_scan && c3.singleton >= 0) {
            result.steps.step3 = true;
            if (c3.partner < 0) {
                result.obsMask ^=
                    paths_.boundaryObs(sg.dets[c3.singleton]);
                result.weight += c3.weight;
                sg.kill(c3.singleton);
            } else {
                result.obsMask ^= paths_.pathObs(
                    sg.dets[c3.singleton], sg.dets[c3.partner]);
                result.weight += c3.weight;
                sg.kill(c3.singleton);
                sg.kill(c3.partner);
            }
        } else if (config_.enableStep4 && c41.i >= 0) {
            result.steps.step4 = true;
            match_pair(c41.i, c41.j);
        } else if (config_.enableStep4 && c42.i >= 0) {
            result.steps.step4 = true;
            match_pair(c42.i, c42.j);
        } else {
            break; // No candidate anywhere: coverage exhausted.
        }
    }

    for (size_t i = 0; i < sg.dets.size(); ++i) {
        if (sg.alive[i]) {
            result.residual.push_back(sg.dets[i]);
        }
    }
    return result;
}

QEC_REGISTER_PREDECODER(
    promatch,
    "Promatch locality-aware greedy adaptive predecoder (SM)",
    [](const BuildContext &context) {
        return std::make_unique<PromatchPredecoder>(
            context.graph, context.paths, context.latency,
            context.promatch);
    });

} // namespace qec
