#include "qec/predecode/promatch.hpp"

#include <algorithm>
#include <cmath>

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/matching/matching_problem.hpp"
#include "qec/util/arena.hpp"
#include "qec/util/assert.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

void
PromatchPredecoder::predecode(std::span<const uint32_t> defects,
                              long long cycle_budget,
                              DecodeWorkspace &workspace,
                              PredecodeResult &result)
{
    QEC_REALTIME;
    result.reset();
    SyndromeSubgraph &sg = workspace.subgraph;
    sg.build(graph_, defects);
    // Step 3 consults defect-to-defect shortest paths through the
    // workspace's gathered S×S block (local indices coincide with
    // the subgraph's). The gather is lazy — most syndromes resolve
    // in Steps 1/2 and never touch a path — and idempotent across
    // rounds. When it does fire, the pipeline's main decoder later
    // resolves its residual as a subset of the same block.
    DistanceView &dv = workspace.distances;
    // All per-round lists below are arena transients; they die with
    // this call, and the arena keeps its high-water capacity across
    // decodes (zero allocations once warm).
    MonotonicArena &arena = workspace.arena;
    arena.reset();
    bool engaged = false;

    // Adaptive HW target (§4.1): the largest T the main decoder can
    // still afford given the cycles already burned.
    const auto target_now = [&](long long used) -> int {
        if (!config_.adaptiveTarget) {
            return config_.fixedTarget;
        }
        for (int t : {latency_.astreaMaxHw, 8, 6}) {
            const long long astrea = latency_.astreaCycles(t);
            if (astrea >= 0 && used + astrea <= cycle_budget) {
                return t;
            }
        }
        return 6; // Nothing fits; keep shrinking, pipeline aborts.
    };

    const auto match_pair = [&](int i, int j) {
        const uint32_t eid = sg.edgeIdOf(i, j);
        result.obsMask ^= graph_.edgeObsMask(eid);
        result.weight += graph_.edgeWeight(eid);
        sg.kill(i);
        sg.kill(j);
    };

    const auto creates_singleton = [&](int i, int j) {
        return config_.exactSingletonCheck
                   ? sg.createsSingletonExact(i, j)
                   : sg.createsSingletonHw(i, j);
    };

    ArenaVector<std::pair<int, int>> edges(arena, 64);
    ArenaVector<std::pair<int, int>> isolated(arena, 16);
    ArenaVector<int> singletons(arena, 16);

    int guard = 0;
    while (true) {
        QEC_ASSERT(++guard < 4096, "promatch failed to terminate");
        const int hw = sg.aliveCount();
        if (hw <= target_now(result.cycles)) {
            break;
        }
        edges.clear();
        sg.appendAliveEdges(edges);

        if (!engaged) {
            // Subgraph generation and edge-table loads (§4.2) are
            // charged once when the predecoder engages.
            engaged = true;
            result.cycles += latency_.promatchFixedCycles;
        }
        // Round charge: the pipelines walk every subgraph edge,
        // split across the configured parallel lanes.
        const int lanes = std::max(1, latency_.promatchLanes);
        result.cycles += (static_cast<long long>(edges.size()) +
                          lanes - 1) /
                         lanes;
        ++result.rounds;
        sg.refresh();

        // --- Step 1: isolated pairs, applied as a batch.
        isolated.clear();
        for (const auto &[i, j] : edges) {
            if (sg.degree(i) == 1 && sg.degree(j) == 1) {
                isolated.push_back({i, j});
            }
        }
        if (!isolated.empty()) {
            result.steps.step1 = true;
            for (const auto &[i, j] : isolated) {
                if (sg.aliveCount() <= target_now(result.cycles)) {
                    break;
                }
                match_pair(i, j);
            }
            continue;
        }

        // --- Scan all edges for Step 2 / Step 4 candidates.
        struct Candidate
        {
            double weight = kNoEdge;
            int i = -1, j = -1;
        };
        Candidate c21, c22, c41, c42;
        const auto consider = [&](Candidate &c, int i, int j,
                                  double w) {
            if (w < c.weight) {
                c = {w, i, j};
            }
        };
        for (const auto &[i, j] : edges) {
            const double w = sg.edgeWeightOf(i, j);
            const bool deg1 =
                std::min(sg.degree(i), sg.degree(j)) == 1;
            if (!creates_singleton(i, j)) {
                consider(deg1 ? c21 : c22, i, j, w);
            } else {
                consider(deg1 ? c41 : c42, i, j, w);
            }
        }

        // --- Step 3: singleton rescue via shortest paths, only when
        // no safe Step-2 candidate exists (Algorithm 1).
        struct Step3Candidate
        {
            double weight = kNoEdge;
            int singleton = -1;
            int partner = -1; //!< Local index, or -1 for boundary.
        };
        Step3Candidate c3;
        bool used_step3_scan = false;
        if (config_.enableStep3 && c21.i < 0 && c22.i < 0) {
            singletons.clear();
            for (int i = 0; i < sg.size(); ++i) {
                if (sg.alive(i) && sg.degree(i) == 0) {
                    singletons.push_back(i);
                }
            }
            if (!singletons.empty()) {
                used_step3_scan = true;
                dv.gather(paths_, defects);
                long long paths = 0;
                for (int s : singletons) {
                    // Boundary is always a legal partner. All path
                    // lookups below hit the gathered dense block
                    // (bit-copies of the PathTable).
                    ++paths;
                    const double bw = dv.distToBoundary(s);
                    if (std::isfinite(bw) && bw < c3.weight) {
                        c3 = {bw, s, -1};
                    }
                    for (int i = 0; i < sg.size(); ++i) {
                        if (!sg.alive(i) || i == s) {
                            continue;
                        }
                        ++paths;
                        if (sg.removalCreatesSingleton(i)) {
                            continue;
                        }
                        const double w = dv.dist(s, i);
                        if (std::isfinite(w) && w < c3.weight) {
                            c3 = {w, s, i};
                        }
                    }
                }
                // Step-3 charge: the path engine runs beside the
                // edge pipeline (§6.4), also split across lanes.
                const int lanes3 =
                    std::max(1, latency_.promatchLanes);
                result.cycles +=
                    (std::max(paths,
                              static_cast<long long>(
                                  edges.size())) +
                     lanes3 - 1) /
                    lanes3;
            }
        }

        // --- Commit exactly one match, in priority order.
        if (c21.i >= 0) {
            result.steps.step2 = true;
            match_pair(c21.i, c21.j);
        } else if (c22.i >= 0) {
            result.steps.step2 = true;
            match_pair(c22.i, c22.j);
        } else if (used_step3_scan && c3.singleton >= 0) {
            result.steps.step3 = true;
            if (c3.partner < 0) {
                result.obsMask ^= dv.boundaryObs(c3.singleton);
                result.weight += c3.weight;
                sg.kill(c3.singleton);
            } else {
                result.obsMask ^=
                    dv.obs(c3.singleton, c3.partner);
                result.weight += c3.weight;
                sg.kill(c3.singleton);
                sg.kill(c3.partner);
            }
        } else if (config_.enableStep4 && c41.i >= 0) {
            result.steps.step4 = true;
            match_pair(c41.i, c41.j);
        } else if (config_.enableStep4 && c42.i >= 0) {
            result.steps.step4 = true;
            match_pair(c42.i, c42.j);
        } else {
            break; // No candidate anywhere: coverage exhausted.
        }
    }

    for (int i = 0; i < sg.size(); ++i) {
        if (sg.alive(i)) {
            rt::pushBack(result.residual, sg.det(i));
        }
    }
}

QEC_REGISTER_PREDECODER(
    promatch,
    "Promatch locality-aware greedy adaptive predecoder (SM)",
    [](const BuildContext &context) {
        return std::make_unique<PromatchPredecoder>(
            context.graph, context.paths, context.latency,
            context.promatch);
    });

} // namespace qec
