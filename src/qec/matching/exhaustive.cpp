#include "qec/matching/exhaustive.hpp"

#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

struct SearchState
{
    const MatchingProblem &problem;
    std::vector<int> mate;
    std::vector<int> best_mate;
    double best = kNoEdge;
    uint64_t explored = 0;

    explicit SearchState(const MatchingProblem &p)
        : problem(p), mate(p.n, -2), best_mate(p.n, -2)
    {
    }

    void
    recurse(int matched, double weight)
    {
        if (weight >= best) {
            // Even a complete extension cannot improve (weights >= 0).
            return;
        }
        const int n = problem.n;
        int first = 0;
        while (first < n && mate[first] != -2) {
            ++first;
        }
        if (first == n) {
            ++explored;
            if (weight < best) {
                best = weight;
                best_mate = mate;
            }
            return;
        }
        (void)matched;

        // Option 1: boundary.
        const double bw = problem.boundaryWeight[first];
        if (bw != kNoEdge) {
            mate[first] = -1;
            recurse(matched + 1, weight + bw);
            mate[first] = -2;
        }
        // Option 2: each later unmatched defect.
        for (int j = first + 1; j < n; ++j) {
            if (mate[j] != -2) {
                continue;
            }
            const double pw = problem.pair(first, j);
            if (pw == kNoEdge) {
                continue;
            }
            mate[first] = j;
            mate[j] = first;
            recurse(matched + 2, weight + pw);
            mate[first] = -2;
            mate[j] = -2;
        }
    }
};

} // namespace

double
matchingWeight(const MatchingProblem &problem,
               const MatchingSolution &solution)
{
    double total = 0.0;
    for (int i = 0; i < problem.n; ++i) {
        const int m = solution.mate[i];
        if (m == -1) {
            total += problem.boundaryWeight[i];
        } else if (m > i) {
            total += problem.pair(i, m);
        }
    }
    return total;
}

MatchingSolution
solveExhaustive(const MatchingProblem &problem, uint64_t *explored)
{
    SearchState state(problem);
    state.recurse(0, 0.0);
    MatchingSolution solution;
    if (state.best == kNoEdge) {
        solution.valid = false;
        return solution;
    }
    solution.mate = state.best_mate;
    solution.totalWeight = state.best;
    solution.valid = true;
    if (explored) {
        *explored = state.explored;
    }
    return solution;
}

} // namespace qec
