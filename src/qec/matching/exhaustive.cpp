#include "qec/matching/exhaustive.hpp"

#include "qec/util/assert.hpp"

namespace qec
{

double
matchingWeight(const MatchingProblem &problem,
               const MatchingSolution &solution)
{
    double total = 0.0;
    for (int i = 0; i < problem.n; ++i) {
        const int m = solution.mate[i];
        if (m == -1) {
            total += problem.boundaryWeight[i];
        } else if (m > i) {
            total += problem.pair(i, m);
        }
    }
    return total;
}

void
ExhaustiveSolver::recurse(const MatchingProblem &problem,
                          double weight)
{
    if (weight >= best_) {
        // Even a complete extension cannot improve (weights >= 0).
        return;
    }
    const int n = problem.n;
    int first = 0;
    while (first < n && mate_[first] != -2) {
        ++first;
    }
    if (first == n) {
        ++explored_;
        if (weight < best_) {
            best_ = weight;
            bestMate_.assign(mate_.begin(), mate_.begin() + n);
        }
        return;
    }

    // Option 1: boundary.
    const double bw = problem.boundaryWeight[first];
    if (bw != kNoEdge) {
        mate_[first] = -1;
        recurse(problem, weight + bw);
        mate_[first] = -2;
    }
    // Option 2: each later unmatched defect.
    for (int j = first + 1; j < n; ++j) {
        if (mate_[j] != -2) {
            continue;
        }
        const double pw = problem.pair(first, j);
        if (pw == kNoEdge) {
            continue;
        }
        mate_[first] = j;
        mate_[j] = first;
        recurse(problem, weight + pw);
        mate_[first] = -2;
        mate_[j] = -2;
    }
}

void
ExhaustiveSolver::solve(const MatchingProblem &problem,
                        MatchingSolution &out, uint64_t *explored)
{
    mate_.assign(problem.n, -2);
    bestMate_.assign(problem.n, -2);
    best_ = kNoEdge;
    explored_ = 0;
    recurse(problem, 0.0);
    if (explored) {
        *explored = explored_;
    }
    if (best_ == kNoEdge) {
        out.mate.clear();
        out.totalWeight = 0.0;
        out.valid = false;
        return;
    }
    out.mate.assign(bestMate_.begin(), bestMate_.end());
    out.totalWeight = best_;
    out.valid = true;
}

MatchingSolution
solveExhaustive(const MatchingProblem &problem, uint64_t *explored)
{
    ExhaustiveSolver solver;
    MatchingSolution solution;
    solver.solve(problem, solution, explored);
    return solution;
}

} // namespace qec
