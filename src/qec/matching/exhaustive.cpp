#include "qec/matching/exhaustive.hpp"

#include <cmath>

#include "qec/util/assert.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

double
matchingWeight(const MatchingProblem &problem,
               MatchingSolution &solution)
{
    double total = 0.0;
    for (int i = 0; i < problem.n; ++i) {
        const int m = solution.mate[i];
        const double w = (m == -1)  ? problem.boundaryWeight[i]
                         : (m > i)  ? problem.pair(i, m)
                                    : 0.0;
        if (w == kNoEdge) {
            // Disallowed pairing: not a valid solution, and summing
            // infinity would silently poison the total.
            solution.valid = false;
            return kNoEdge;
        }
        total += w;
    }
    return total;
}

void
ExhaustiveSolver::recurse(const MatchingProblem &problem,
                          double weight)
{
    if (weight >= best_) {
        // Even a complete extension cannot improve (weights >= 0).
        return;
    }
    const int n = problem.n;
    int first = 0;
    while (first < n && mate_[first] != -2) {
        ++first;
    }
    if (first == n) {
        ++explored_;
        if (weight < best_) {
            best_ = weight;
            rt::assignRange(bestMate_, mate_.begin(),
                            mate_.begin() + n);
        }
        return;
    }

    // Option 1: boundary.
    const double bw = problem.boundaryWeight[first];
    if (bw != kNoEdge) {
        mate_[first] = -1;
        recurse(problem, weight + bw);
        mate_[first] = -2;
    }
    // Option 2: each later unmatched defect.
    for (int j = first + 1; j < n; ++j) {
        if (mate_[j] != -2) {
            continue;
        }
        const double pw = problem.pair(first, j);
        if (pw == kNoEdge) {
            continue;
        }
        mate_[first] = j;
        mate_[j] = first;
        recurse(problem, weight + pw);
        mate_[first] = -2;
        mate_[j] = -2;
    }
}

void
ExhaustiveSolver::seedGreedyBound(const MatchingProblem &problem)
{
    // Seed best_ with the weight of one greedily built matching so
    // the branch-and-bound prunes above it from the first descent.
    // The greedy walk mirrors the DFS exactly — lowest unmatched
    // defect first, weight accumulated per commit in the same
    // floating-point order — so the bound equals the DFS's own
    // weight for this matching, and seeding nextafter(bound) keeps
    // every matching with weight <= bound reachable. The DFS winner
    // (first matching attaining the optimum in DFS order) has all
    // prefix weights <= the optimum <= bound, so it is never pruned:
    // the solution is bit-identical with the unseeded search, only
    // the explored count shrinks.
    const int n = problem.n;
    double bound = 0.0;
    for (int first = 0; first < n; ++first) {
        if (mate_[first] != -2) {
            continue;
        }
        double best_w = problem.boundaryWeight[first];
        int best_j = -1;
        for (int j = first + 1; j < n; ++j) {
            if (mate_[j] != -2) {
                continue;
            }
            const double pw = problem.pair(first, j);
            if (pw < best_w) {
                best_w = pw;
                best_j = j;
            }
        }
        if (best_w == kNoEdge) {
            // Greedy got stuck (no boundary, no free partner):
            // leave best_ unseeded rather than guess a bound.
            rt::assignFill(mate_, n, -2);
            return;
        }
        if (best_j >= 0) {
            mate_[first] = best_j;
            mate_[best_j] = first;
        } else {
            mate_[first] = -1;
        }
        bound += best_w;
    }
    rt::assignFill(mate_, n, -2);
    best_ = std::nextafter(bound, kNoEdge);
}

// Outlined so the QEC_REALTIME anchor stays inside this body: GCC
// would otherwise inline the whole solve into the solveExhaustive
// convenience wrapper, and the audit root would migrate to the
// wrapper — whose by-value MatchingSolution return allocates.
QEC_RT_OUTLINE void
ExhaustiveSolver::solve(const MatchingProblem &problem,
                        MatchingSolution &out, uint64_t *explored)
{
    QEC_REALTIME;
    rt::assignFill(mate_, problem.n, -2);
    rt::assignFill(bestMate_, problem.n, -2);
    best_ = kNoEdge;
    explored_ = 0;
    seedGreedyBound(problem);
    recurse(problem, 0.0);
    if (explored) {
        *explored = explored_;
    }
    if (best_ == kNoEdge) {
        out.mate.clear();
        out.totalWeight = 0.0;
        out.valid = false;
        return;
    }
    rt::assignRange(out.mate, bestMate_.begin(),
                    bestMate_.end());
    out.totalWeight = best_;
    out.valid = true;
}

MatchingSolution
solveExhaustive(const MatchingProblem &problem, uint64_t *explored)
{
    ExhaustiveSolver solver;
    MatchingSolution solution;
    solver.solve(problem, solution, explored);
    return solution;
}

} // namespace qec
