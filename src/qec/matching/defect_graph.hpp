/**
 * @file
 * Construction of matching problems from syndromes.
 *
 * A DefectGraph is the complete graph over the flipped detectors of
 * one syndrome, with shortest-path weights from the PathTable (the
 * "MWPM graph" of §4.2.3). It also knows how to turn a matching
 * solution back into physics: the observable flips implied by the
 * matched paths and the error-chain lengths (Fig. 5).
 *
 * The hot decode path rebuilds one workspace-owned DefectGraph in
 * place through the workspace's DistanceView: the S×S block of the
 * PathTable is gathered (or resolved as a subset of the block the
 * predecoder already gathered — see distance_view.hpp) and the
 * problem matrix plus the solution read-back then touch only that
 * dense block. `viewMap` records each local defect's index into the
 * view. The PathTable-reading builders stay for convenience and are
 * bit-identical (the view holds bit-copies).
 */

#ifndef QEC_MATCHING_DEFECT_GRAPH_HPP
#define QEC_MATCHING_DEFECT_GRAPH_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "qec/graph/distance_view.hpp"
#include "qec/graph/path_table.hpp"
#include "qec/matching/matching_problem.hpp"

namespace qec
{

/** Matching view of one syndrome. */
struct DefectGraph
{
    /** Flipped detector indices (sorted). */
    std::vector<uint32_t> defects;
    /** Complete-graph matching instance over the defects. */
    MatchingProblem problem;
    /** Local defect index -> index into the DistanceView this graph
     *  was built from (identity when the view was gathered for
     *  exactly this defect set). Empty for PathTable-built graphs. */
    std::vector<int32_t> viewMap;

    /** XOR of observable masks along all matched paths. */
    uint64_t solutionObs(const PathTable &paths,
                         const MatchingSolution &solution) const;

    /** solutionObs through the gathered view (uses viewMap). */
    uint64_t solutionObs(const DistanceView &view,
                         const MatchingSolution &solution) const;

    /** Error-chain length (hops) of each matched pair/boundary. */
    std::vector<int> chainLengths(const PathTable &paths,
                                  const MatchingSolution &sol) const;

    /** chainLengths into a caller-owned buffer (capacity reused). */
    void chainLengthsInto(const PathTable &paths,
                          const MatchingSolution &sol,
                          std::vector<int> &out) const;

    /** chainLengthsInto through the gathered view (uses viewMap). */
    void chainLengthsInto(const DistanceView &view,
                          const MatchingSolution &sol,
                          std::vector<int> &out) const;
};

/** Build the complete defect graph of a syndrome. */
DefectGraph buildDefectGraph(std::span<const uint32_t> defects,
                             const PathTable &paths);

/** Rebuild `out` in place from a syndrome, reusing its buffers. */
void buildDefectGraphInto(std::span<const uint32_t> defects,
                          const PathTable &paths, DefectGraph &out);

/**
 * Rebuild `out` in place through `view`: resolves `defects` against
 * the view's gathered block (gathering from `paths` only when the
 * block does not already contain them) and fills the problem matrix
 * from the dense cells. Bit-identical with the PathTable builder.
 */
void buildDefectGraphInto(std::span<const uint32_t> defects,
                          const PathTable &paths,
                          DistanceView &view, DefectGraph &out);

} // namespace qec

#endif // QEC_MATCHING_DEFECT_GRAPH_HPP
