/**
 * @file
 * Construction of matching problems from syndromes.
 *
 * A DefectGraph is the complete graph over the flipped detectors of
 * one syndrome, with shortest-path weights from the PathTable (the
 * "MWPM graph" of §4.2.3). It also knows how to turn a matching
 * solution back into physics: the observable flips implied by the
 * matched paths and the error-chain lengths (Fig. 5).
 *
 * The hot decode path rebuilds one workspace-owned DefectGraph in
 * place via buildDefectGraphInto (all buffers reuse their capacity);
 * the returning buildDefectGraph wrapper stays for convenience.
 */

#ifndef QEC_MATCHING_DEFECT_GRAPH_HPP
#define QEC_MATCHING_DEFECT_GRAPH_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "qec/graph/path_table.hpp"
#include "qec/matching/matching_problem.hpp"

namespace qec
{

/** Matching view of one syndrome. */
struct DefectGraph
{
    /** Flipped detector indices (sorted). */
    std::vector<uint32_t> defects;
    /** Complete-graph matching instance over the defects. */
    MatchingProblem problem;

    /** XOR of observable masks along all matched paths. */
    uint64_t solutionObs(const PathTable &paths,
                         const MatchingSolution &solution) const;

    /** Error-chain length (hops) of each matched pair/boundary. */
    std::vector<int> chainLengths(const PathTable &paths,
                                  const MatchingSolution &sol) const;

    /** chainLengths into a caller-owned buffer (capacity reused). */
    void chainLengthsInto(const PathTable &paths,
                          const MatchingSolution &sol,
                          std::vector<int> &out) const;
};

/** Build the complete defect graph of a syndrome. */
DefectGraph buildDefectGraph(std::span<const uint32_t> defects,
                             const PathTable &paths);

/** Rebuild `out` in place from a syndrome, reusing its buffers. */
void buildDefectGraphInto(std::span<const uint32_t> defects,
                          const PathTable &paths, DefectGraph &out);

} // namespace qec

#endif // QEC_MATCHING_DEFECT_GRAPH_HPP
