#include "qec/matching/near_exhaustive.hpp"

#include <algorithm>
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

double
NearExhaustiveSolver::remainingBound() const
{
    double bound = 0.0;
    for (int i = 0; i < problem_->n; ++i) {
        if (mate_[i] == -2) {
            bound += minOption_[i] * 0.5;
        }
    }
    return bound;
}

void
NearExhaustiveSolver::greedyComplete(double weight)
{
    rt::assignRange(savedMate_, mate_.begin(), mate_.end());
    for (int i = 0; i < problem_->n; ++i) {
        if (mate_[i] != -2) {
            continue;
        }
        double best_w = kNoEdge;
        int best_j = -3;
        for (int o = optOffset_[i]; o < optOffset_[i + 1]; ++o) {
            const auto &[w, j] = options_[o];
            if (j == -1 || mate_[j] == -2) {
                best_w = w;
                best_j = j;
                break; // Options are sorted by weight.
            }
        }
        if (best_j == -3) {
            rt::assignRange(mate_, savedMate_.begin(),
                        savedMate_.end());
            return; // Dead end; keep previous best.
        }
        mate_[i] = best_j;
        if (best_j >= 0) {
            mate_[best_j] = i;
        }
        weight += best_w;
    }
    if (weight < best_) {
        best_ = weight;
        rt::assignRange(bestMate_, mate_.begin(), mate_.end());
    }
    rt::assignRange(mate_, savedMate_.begin(),
                        savedMate_.end());
}

void
NearExhaustiveSolver::recurse(double weight)
{
    if (hitBudget_) {
        return;
    }
    if (++states_ > budget_) {
        hitBudget_ = true;
        return;
    }
    if (weight + (useBound_ ? remainingBound() : 0.0) >= best_) {
        return;
    }
    int first = 0;
    const int n = problem_->n;
    while (first < n && mate_[first] != -2) {
        ++first;
    }
    if (first == n) {
        if (weight < best_) {
            best_ = weight;
            rt::assignRange(bestMate_, mate_.begin(), mate_.end());
        }
        return;
    }
    for (int o = optOffset_[first]; o < optOffset_[first + 1];
         ++o) {
        const auto [w, j] = options_[o];
        if (j >= 0 && mate_[j] != -2) {
            continue;
        }
        mate_[first] = j;
        if (j >= 0) {
            mate_[j] = first;
        }
        recurse(weight + w);
        mate_[first] = -2;
        if (j >= 0) {
            mate_[j] = -2;
        }
        if (hitBudget_) {
            // Out of budget mid-expansion: finish this branch
            // greedily so we always return some matching.
            mate_[first] = j;
            if (j >= 0) {
                mate_[j] = first;
            }
            greedyComplete(weight + w);
            mate_[first] = -2;
            if (j >= 0) {
                mate_[j] = -2;
            }
            return;
        }
    }
}

void
NearExhaustiveSolver::solve(const MatchingProblem &problem,
                            long long budget, bool use_bound,
                            MatchingSolution &out)
{
    QEC_REALTIME;
    problem_ = &problem;
    budget_ = budget;
    useBound_ = use_bound;
    const int n = problem.n;
    rt::assignFill(mate_, n, -2);
    rt::assignFill(bestMate_, n, -2);
    best_ = kNoEdge;
    states_ = 0;
    hitBudget_ = false;

    rt::assignFill(optOffset_, n + 1, 0);
    options_.clear();
    rt::assignFill(minOption_, n, kNoEdge);
    for (int i = 0; i < n; ++i) {
        optOffset_[i] = static_cast<int>(options_.size());
        if (problem.boundaryWeight[i] != kNoEdge) {
            rt::pushBack(options_,
                         {problem.boundaryWeight[i], -1});
        }
        for (int j = 0; j < n; ++j) {
            if (j != i && problem.pair(i, j) != kNoEdge) {
                rt::pushBack(options_,
                             {problem.pair(i, j), j});
            }
        }
        std::sort(options_.begin() + optOffset_[i],
                  options_.end());
        if (static_cast<int>(options_.size()) > optOffset_[i]) {
            minOption_[i] = options_[optOffset_[i]].first;
        }
    }
    optOffset_[n] = static_cast<int>(options_.size());

    recurse(0.0);
    if (best_ == kNoEdge) {
        // Not even a greedy completion existed.
        out.mate.clear();
        out.totalWeight = 0.0;
        out.valid = false;
        return;
    }
    rt::assignRange(out.mate, bestMate_.begin(),
                    bestMate_.end());
    out.totalWeight = best_;
    out.valid = true;
}

} // namespace qec
