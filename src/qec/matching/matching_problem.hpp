/**
 * @file
 * Common types for minimum-weight matching over defects.
 *
 * A MatchingProblem is a complete graph over n defects, each of which
 * may alternatively be matched to the boundary at a per-defect cost.
 * Solvers return a mate array where -1 denotes a boundary match.
 */

#ifndef QEC_MATCHING_MATCHING_PROBLEM_HPP
#define QEC_MATCHING_MATCHING_PROBLEM_HPP

#include <cstddef>
#include <limits>
#include <vector>

namespace qec
{

/** Weight marking a disallowed pairing. */
constexpr double kNoEdge = std::numeric_limits<double>::infinity();

/** Dense matching instance over n defects plus the boundary. */
struct MatchingProblem
{
    int n = 0;
    /** Symmetric n*n pair weights; kNoEdge where pairing is illegal. */
    std::vector<double> pairWeight;
    /** Per-defect boundary weight; kNoEdge where illegal. */
    std::vector<double> boundaryWeight;

    double pair(int a, int b) const
    {
        return pairWeight[static_cast<size_t>(a) * n + b];
    }
    void setPair(int a, int b, double w)
    {
        pairWeight[static_cast<size_t>(a) * n + b] = w;
        pairWeight[static_cast<size_t>(b) * n + a] = w;
    }
};

/** A (possibly partial) solution to a MatchingProblem. */
struct MatchingSolution
{
    /** mate[i] = partner defect, or -1 for a boundary match. */
    std::vector<int> mate;
    /** Sum of the chosen edge weights. */
    double totalWeight = 0.0;
    /** False if the solver could not produce a perfect matching. */
    bool valid = false;
};

/**
 * Recompute a solution's weight from the problem (for validation).
 *
 * A solution that uses a disallowed pairing (kNoEdge pair or
 * boundary weight) is not a solution at all: it is marked
 * valid=false and the returned weight is kNoEdge, instead of the
 * historical behavior of silently summing infinity into the total.
 */
double matchingWeight(const MatchingProblem &problem,
                      MatchingSolution &solution);

} // namespace qec

#endif // QEC_MATCHING_MATCHING_PROBLEM_HPP
