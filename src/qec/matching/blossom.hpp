/**
 * @file
 * Exact minimum-weight perfect matching via the blossom algorithm.
 *
 * This is the "idealized MWPM" engine (the paper's software baseline,
 * §5.2). The core is the classic O(n^3) maximum-weight general
 * matching algorithm with dual variables and blossom
 * shrinking/expansion. Boundary matches are handled by the standard
 * duplication trick: each defect i gets a twin i' connected to i at
 * the boundary cost, twins are interconnected at cost zero, and the
 * minimum-weight perfect matching of the doubled graph projects back
 * onto matches and boundary matches of the original instance.
 *
 * BlossomSolver is a *reusable* engine: all of its dense matrices are
 * flat buffers that grow monotonically to the largest instance seen
 * and are overwritten (never reallocated) on subsequent solves, so a
 * warm solver performs zero heap allocations per solve — the property
 * the DecodeWorkspace hot path builds on. One solver instance must
 * not be shared between threads.
 *
 * Weights are quantized to integers internally; correctness against
 * an exhaustive oracle is enforced by the test suite over thousands
 * of random instances.
 */

#ifndef QEC_MATCHING_BLOSSOM_HPP
#define QEC_MATCHING_BLOSSOM_HPP

#include <vector>

#include "qec/matching/matching_problem.hpp"

namespace qec
{

/** Reusable exact blossom matcher (see file comment for the memory
 *  contract). */
class BlossomSolver
{
  public:
    /**
     * Solve a defect matching problem exactly. `out` is reset and
     * filled in place, reusing its capacity. Warm steady-state
     * solves perform no heap allocation.
     */
    void solve(const MatchingProblem &problem,
               MatchingSolution &out);

    /**
     * Low-level access: maximum-weight matching on a dense graph.
     * weights[u][v] > 0 means an edge of that weight; 0 means no
     * edge. Returns mate (0 = unmatched) over 1-based vertices
     * [0, n]; the reference stays valid until the next call.
     * Exposed for direct testing.
     */
    const std::vector<int> &maxWeightMatching(
        const std::vector<std::vector<long long>> &weights);

  private:
    // --- Dense primal-dual core. Vertices are 1-based; indices in
    // (n, 2n] name contracted blossoms. The implementation follows
    // the well-known dense template: S-labels (0 outer, 1 inner,
    // -1 free), per-vertex slack pointers, and lazily maintained
    // blossom adjacency.
    void beginDense(int n);
    void setEdge(int u, int v, long long w);
    void run();

    int &gu(int u, int v) { return gu_[idx(u, v)]; }
    int &gv(int u, int v) { return gv_[idx(u, v)]; }
    long long &gw(int u, int v) { return gw_[idx(u, v)]; }
    size_t idx(int u, int v) const
    {
        return static_cast<size_t>(u) * cap_ + v;
    }
    int &flowerFrom(int b, int x)
    {
        return flowerFrom_[static_cast<size_t>(b) * fcap_ + x];
    }

    long long eDelta(int u, int v);
    void updateSlack(int u, int x);
    void setSlack(int x);
    void queuePush(int x);
    void setSt(int x, int b);
    int getPr(int b, int xr);
    void setMatch(int u, int v);
    void augment(int u, int v);
    int getLca(int u, int v);
    void addBlossom(int u, int lca, int v);
    void expandBlossom(int b);
    bool onFoundEdge(int eu, int ev);
    bool matchingRound();

    int n_ = 0;   //!< Real vertices of the current instance.
    int nx_ = 0;  //!< High-water vertex index incl. blossoms.
    int cap_ = 0; //!< Allocated vertex slots (row stride).
    int fcap_ = 0; //!< flowerFrom_ row stride.
    long long wMax_ = 0;
    // Edge bookkeeping: original endpoints and weight per slot; a
    // blossom's slot toward x caches its best member edge.
    std::vector<int> gu_, gv_;
    std::vector<long long> gw_;
    std::vector<long long> lab_;
    std::vector<int> match_, slack_, st_, pa_;
    std::vector<int> flowerFrom_;
    std::vector<int> S_, vis_;
    std::vector<std::vector<int>> flower_;
    std::vector<int> queue_; //!< BFS queue; head index, no pops.
    size_t queueHead_ = 0;
    int visitT_ = 0; //!< getLca stamp; monotonic across solves.
};

/** One-shot convenience over a temporary BlossomSolver. */
MatchingSolution solveBlossom(const MatchingProblem &problem);

/**
 * One-shot convenience over a temporary solver (see
 * BlossomSolver::maxWeightMatching). Exposed for direct testing.
 */
std::vector<int> maxWeightMatchingDense(
    const std::vector<std::vector<long long>> &weights);

} // namespace qec

#endif // QEC_MATCHING_BLOSSOM_HPP
