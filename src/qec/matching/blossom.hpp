/**
 * @file
 * Exact minimum-weight perfect matching via the blossom algorithm.
 *
 * This is the "idealized MWPM" engine (the paper's software baseline,
 * §5.2). The core is the classic O(n^3) maximum-weight general
 * matching algorithm with dual variables and blossom
 * shrinking/expansion. Boundary matches are handled by the standard
 * duplication trick: each defect i gets a twin i' connected to i at
 * the boundary cost, twins are interconnected at cost zero, and the
 * minimum-weight perfect matching of the doubled graph projects back
 * onto matches and boundary matches of the original instance.
 *
 * Weights are quantized to integers internally; correctness against
 * an exhaustive oracle is enforced by the test suite over thousands
 * of random instances.
 */

#ifndef QEC_MATCHING_BLOSSOM_HPP
#define QEC_MATCHING_BLOSSOM_HPP

#include "qec/matching/matching_problem.hpp"

namespace qec
{

/** Solve a defect matching problem exactly with the blossom core. */
MatchingSolution solveBlossom(const MatchingProblem &problem);

/**
 * Low-level access: maximum-weight matching on a dense graph.
 * weights[u][v] > 0 means an edge of that weight; 0 means no edge.
 * Returns mate (0 = unmatched) over 1-based vertices.
 * Exposed for direct testing.
 */
std::vector<int> maxWeightMatchingDense(
    const std::vector<std::vector<long long>> &weights);

} // namespace qec

#endif // QEC_MATCHING_BLOSSOM_HPP
