#include "qec/matching/sparse_matcher.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "qec/util/assert.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

namespace
{

/** Keep a pair iff it is strictly cheaper than matching both ends
 *  to the boundary (see the header's exactness argument; exact ties
 *  are dropped because the two boundary matches cost the same and
 *  are always available when the tie is finite). All compares in
 *  double over the float cells, matching the dense builders. */
bool
keepCandidate(const PathCell &cell, const PathCell &bi,
              const PathCell &bj)
{
    return std::isfinite(cell.dist) &&
           static_cast<double>(cell.dist) <
               static_cast<double>(bi.dist) +
                   static_cast<double>(bj.dist);
}

} // namespace

void
SparseMatchingProblem::build(const PathTable &paths,
                             std::span<const uint32_t> defects)
{
    QEC_REALTIME;
    n_ = static_cast<int>(defects.size());
    rt::assignRange(defects_, defects.begin(), defects.end());
    rt::resizeTo(bcells_, n_);
    for (int i = 0; i < n_; ++i) {
        bcells_[i] = paths.boundaryCell(defects_[i]);
    }
    offsets_.clear();
    cands_.clear();

    if (paths.pairsAvailable()) {
        // Dense backend: read table rows on demand and prune. No
        // S×S block is materialized — only the kept candidates.
        for (int i = 0; i < n_; ++i) {
            rt::pushBack(offsets_,
                         static_cast<int32_t>(cands_.size()));
            const PathCell *row = paths.row(defects_[i]);
            for (int j = i + 1; j < n_; ++j) {
                const PathCell &cell = row[defects_[j]];
                if (keepCandidate(cell, bcells_[i], bcells_[j])) {
                    rt::pushBack(cands_, {j, cell});
                }
            }
        }
        rt::pushBack(offsets_,
                 static_cast<int32_t>(cands_.size()));
        return;
    }

    // Sparse backend: truncated local growth per source. The radius
    // db(i) + max db(j) over the remaining targets guarantees every
    // unsettled target fails keepCandidate, so the two backends
    // produce the identical candidate set (oracle cells are
    // bit-identical to table cells).
    oracle_.bind(paths.graph());
    rt::resizeTo(suffixMax_, static_cast<size_t>(n_) + 1);
    suffixMax_[n_] = 0.0;
    for (int i = n_ - 1; i >= 0; --i) {
        suffixMax_[i] = std::max(
            suffixMax_[i + 1], static_cast<double>(bcells_[i].dist));
    }
    rt::resizeTo(rowScratch_,
                 n_ > 0 ? static_cast<size_t>(n_) : 0);
    for (int i = 0; i < n_; ++i) {
        rt::pushBack(offsets_,
                 static_cast<int32_t>(cands_.size()));
        const int targets = n_ - 1 - i;
        if (targets == 0) {
            continue;
        }
        const double radius =
            static_cast<double>(bcells_[i].dist) + suffixMax_[i + 1];
        oracle_.grow(
            defects_[i],
            std::span<const uint32_t>(defects_).subspan(i + 1),
            radius, rowScratch_.data());
        for (int k = 0; k < targets; ++k) {
            const int j = i + 1 + k;
            const PathCell &cell = rowScratch_[k];
            if (keepCandidate(cell, bcells_[i], bcells_[j])) {
                rt::pushBack(cands_, {j, cell});
            }
        }
    }
    rt::pushBack(offsets_,
                 static_cast<int32_t>(cands_.size()));
}

const PathCell &
SparseMatchingProblem::pairCell(int i, int j) const
{
    for (const SparseCandidate &cand : candidates(i)) {
        if (cand.j == j) {
            return cand.cell;
        }
    }
    QEC_PANIC("matched pair is not a kept sparse candidate");
}

uint64_t
SparseMatchingProblem::solutionObs(
    const MatchingSolution &solution) const
{
    QEC_ASSERT(solution.mate.size() == static_cast<size_t>(n_),
               "solution size mismatch");
    uint64_t obs = 0;
    for (int i = 0; i < n_; ++i) {
        const int m = solution.mate[i];
        if (m == -1) {
            obs ^= bcells_[i].obs;
        } else if (m > i) {
            obs ^= pairCell(i, m).obs;
        }
    }
    return obs;
}

void
SparseMatchingProblem::chainLengthsInto(
    const MatchingSolution &solution, std::vector<int> &out) const
{
    QEC_ASSERT(solution.mate.size() == static_cast<size_t>(n_),
               "solution size mismatch");
    out.clear();
    for (int i = 0; i < n_; ++i) {
        const int m = solution.mate[i];
        if (m == -1) {
            rt::pushBack(out, int{bcells_[i].hops});
        } else if (m > i) {
            rt::pushBack(out, int{pairCell(i, m).hops});
        }
    }
}

int32_t
SparseMatcher::find(int32_t x)
{
    while (parent_[x] != x) {
        parent_[x] = parent_[parent_[x]]; // Path halving.
        x = parent_[x];
    }
    return x;
}

void
SparseMatcher::solve(const SparseMatchingProblem &problem,
                     MatchingSolution &out)
{
    QEC_REALTIME;
    const int n = problem.size();
    rt::assignFill(out.mate, n, -2);
    out.totalWeight = 0.0;
    out.valid = true;
    if (n == 0) {
        return;
    }

    // Connected components of the candidate graph: defects in
    // different components never match each other (no kept edge),
    // so each component is an independent exact subproblem — the
    // win over one monolithic dense solve.
    rt::resizeTo(parent_, n);
    for (int i = 0; i < n; ++i) {
        parent_[i] = i;
    }
    for (int i = 0; i < n; ++i) {
        for (const SparseCandidate &cand : problem.candidates(i)) {
            const int32_t a = find(i);
            const int32_t b = find(cand.j);
            if (a != b) {
                parent_[b] = a;
            }
        }
    }
    rt::assignFill(compOf_, n, -1);
    compCount_.clear();
    int comps = 0;
    for (int i = 0; i < n; ++i) {
        const int32_t r = find(i);
        if (compOf_[r] == -1) {
            compOf_[r] = comps++;
            rt::pushBack(compCount_, 0);
        }
        compOf_[i] = compOf_[r];
        ++compCount_[compOf_[i]];
    }
    rt::resizeTo(compStart_, comps + 1);
    compStart_[0] = 0;
    for (int c = 0; c < comps; ++c) {
        compStart_[c + 1] = compStart_[c] + compCount_[c];
    }
    rt::resizeTo(members_, n);
    rt::resizeTo(localPos_, n);
    {
        // Counting sort by component, ascending local index within.
        std::vector<int32_t> &fill = compCount_; // Reuse as cursor.
        for (int c = 0; c < comps; ++c) {
            fill[c] = compStart_[c];
        }
        for (int i = 0; i < n; ++i) {
            const int c = compOf_[i];
            localPos_[i] = fill[c] - compStart_[c];
            members_[fill[c]++] = i;
        }
    }

    for (int c = 0; c < comps; ++c) {
        const int32_t *mem = members_.data() + compStart_[c];
        const int m = compStart_[c + 1] - compStart_[c];
        if (m == 1) {
            // Isolated defect: every pair was pruned (or none is
            // finite), so the boundary is the only legal mate.
            const int i = mem[0];
            if (!std::isfinite(problem.boundaryCell(i).dist)) {
                out.valid = false;
                return;
            }
            out.mate[i] = -1;
            continue;
        }
        if (m == 2) {
            // One candidate edge by construction: pair up unless
            // two boundary matches are strictly cheaper.
            const int i = mem[0];
            const int j = mem[1];
            const double wp = problem.pairCell(i, j).dist;
            const double wb =
                static_cast<double>(
                    problem.boundaryCell(i).dist) +
                static_cast<double>(problem.boundaryCell(j).dist);
            if (wp <= wb) {
                out.mate[i] = j;
                out.mate[j] = i;
            } else {
                out.mate[i] = -1;
                out.mate[j] = -1;
            }
            continue;
        }
        // General component: its dense subproblem over members only.
        sub_.n = m;
        rt::assignFill(sub_.pairWeight,
                       static_cast<size_t>(m) * m, kNoEdge);
        rt::assignFill(sub_.boundaryWeight,
                       static_cast<size_t>(m), kNoEdge);
        for (int a = 0; a < m; ++a) {
            const int i = mem[a];
            const double db = problem.boundaryCell(i).dist;
            if (std::isfinite(db)) {
                sub_.boundaryWeight[a] = db;
            }
            for (const SparseCandidate &cand :
                 problem.candidates(i)) {
                sub_.setPair(a, localPos_[cand.j],
                             static_cast<double>(cand.cell.dist));
            }
        }
        if (m <= kDpMaxSize) {
            // Subset DP, exact and unquantized: dp[mask] is the
            // cheapest way to resolve the defect subset `mask`,
            // matching the mask's lowest bit either to the boundary
            // or to another member. Infinities (pruned pairs,
            // unreachable boundary) propagate naturally; an
            // infinite dp[full] means the component is infeasible.
            const uint32_t full = (1u << m) - 1;
            rt::resizeTo(dpCost_,
                         static_cast<size_t>(full) + 1);
            rt::resizeTo(dpChoice_,
                         static_cast<size_t>(full) + 1);
            double *const dp = dpCost_.data();
            int8_t *const choice_of = dpChoice_.data();
            dp[0] = 0.0;
            for (uint32_t mask = 1; mask <= full; ++mask) {
                const int i = std::countr_zero(mask);
                const uint32_t rest = mask & (mask - 1);
                const double *const prow =
                    sub_.pairWeight.data() +
                    static_cast<size_t>(i) * m;
                double best = sub_.boundaryWeight[i] + dp[rest];
                int8_t choice = -1;
                for (uint32_t bits = rest; bits != 0;) {
                    const uint32_t low = bits & (0u - bits);
                    bits ^= low;
                    const int j = std::countr_zero(low);
                    const double w = prow[j] + dp[rest ^ low];
                    if (w < best) {
                        best = w;
                        choice = static_cast<int8_t>(j);
                    }
                }
                dp[mask] = best;
                choice_of[mask] = choice;
            }
            if (!std::isfinite(dp[full])) {
                out.valid = false;
                return;
            }
            uint32_t mask = full;
            while (mask != 0) {
                const int i = std::countr_zero(mask);
                const int8_t choice = dpChoice_[mask];
                mask &= mask - 1;
                if (choice < 0) {
                    out.mate[mem[i]] = -1;
                } else {
                    out.mate[mem[i]] = mem[choice];
                    out.mate[mem[choice]] = mem[i];
                    mask ^= 1u << choice;
                }
            }
            continue;
        }
        blossom_.solve(sub_, subSol_);
        if (!subSol_.valid) {
            out.valid = false;
            return;
        }
        for (int a = 0; a < m; ++a) {
            const int sm = subSol_.mate[a];
            out.mate[mem[a]] = sm == -1 ? -1 : mem[sm];
        }
    }

    // Total in ascending local order, mirroring matchingWeight's
    // accumulation order over the dense problem.
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
        const int m = out.mate[i];
        if (m == -1) {
            total += problem.boundaryCell(i).dist;
        } else if (m > i) {
            total += problem.pairCell(i, m).dist;
        }
    }
    out.totalWeight = total;
}

} // namespace qec
