#include "qec/matching/blossom.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

/**
 * Classic O(n^3) maximum-weight general matching with blossoms
 * (primal-dual, dense-graph formulation). Vertices are 1-based;
 * indices in (n, 2n] name contracted blossoms. The implementation
 * follows the well-known dense template: S-labels (0 outer, 1 inner,
 * -1 free), per-vertex slack pointers, and lazily maintained blossom
 * adjacency.
 */
class MaxWeightMatcher
{
  public:
    explicit MaxWeightMatcher(
        const std::vector<std::vector<long long>> &weights)
        : n(static_cast<int>(weights.size()) - 1)
    {
        const int cap = 2 * n + 1;
        gu.assign(cap, std::vector<int>(cap, 0));
        gv.assign(cap, std::vector<int>(cap, 0));
        gw.assign(cap, std::vector<long long>(cap, 0));
        lab.assign(cap, 0);
        match.assign(cap, 0);
        slack.assign(cap, 0);
        st.assign(cap, 0);
        pa.assign(cap, 0);
        flowerFrom.assign(cap, std::vector<int>(n + 1, 0));
        S.assign(cap, -1);
        vis.assign(cap, 0);
        flower.assign(cap, {});

        long long w_max = 0;
        for (int u = 1; u <= n; ++u) {
            for (int v = 1; v <= n; ++v) {
                gu[u][v] = u;
                gv[u][v] = v;
                // Doubling keeps every dual quantity integral.
                gw[u][v] = 2 * weights[u][v];
                w_max = std::max(w_max, gw[u][v]);
            }
        }
        nx = n;
        for (int u = 0; u <= n; ++u) {
            st[u] = u;
        }
        for (int u = 1; u <= n; ++u) {
            for (int v = 1; v <= n; ++v) {
                flowerFrom[u][v] = (u == v) ? u : 0;
            }
        }
        for (int u = 1; u <= n; ++u) {
            lab[u] = w_max / 2;
        }
    }

    /** Run augmentations to exhaustion; returns mate array. */
    std::vector<int>
    solve()
    {
        while (matchingRound()) {
        }
        return match;
    }

  private:
    long long
    eDelta(int u, int v) const
    {
        return lab[gu[u][v]] + lab[gv[u][v]] - gw[u][v];
    }

    void
    updateSlack(int u, int x)
    {
        if (!slack[x] ||
            eDelta(gu[u][x], gv[u][x]) <
                eDelta(gu[slack[x]][x], gv[slack[x]][x])) {
            slack[x] = u;
        }
    }

    void
    setSlack(int x)
    {
        slack[x] = 0;
        for (int u = 1; u <= n; ++u) {
            if (gw[u][x] > 0 && st[u] != x && S[st[u]] == 0) {
                updateSlack(u, x);
            }
        }
    }

    void
    queuePush(int x)
    {
        if (x <= n) {
            q.push_back(x);
        } else {
            for (int i : flower[x]) {
                queuePush(i);
            }
        }
    }

    void
    setSt(int x, int b)
    {
        st[x] = b;
        if (x > n) {
            for (int i : flower[x]) {
                setSt(i, b);
            }
        }
    }

    int
    getPr(int b, int xr)
    {
        auto it = std::find(flower[b].begin(), flower[b].end(), xr);
        int pr = static_cast<int>(it - flower[b].begin());
        if (pr % 2 == 1) {
            std::reverse(flower[b].begin() + 1, flower[b].end());
            return static_cast<int>(flower[b].size()) - pr;
        }
        return pr;
    }

    void
    setMatch(int u, int v)
    {
        match[u] = gv[u][v];
        if (u <= n) {
            return;
        }
        const int xr = flowerFrom[u][gu[u][v]];
        const int pr = getPr(u, xr);
        for (int i = 0; i < pr; ++i) {
            setMatch(flower[u][i], flower[u][i ^ 1]);
        }
        setMatch(xr, v);
        std::rotate(flower[u].begin(), flower[u].begin() + pr,
                    flower[u].end());
    }

    void
    augment(int u, int v)
    {
        while (true) {
            const int xnv = st[match[u]];
            setMatch(u, v);
            if (!xnv) {
                return;
            }
            setMatch(xnv, st[pa[xnv]]);
            u = st[pa[xnv]];
            v = xnv;
        }
    }

    int
    getLca(int u, int v)
    {
        static thread_local int t = 0;
        for (++t; u || v; std::swap(u, v)) {
            if (u == 0) {
                continue;
            }
            if (vis[u] == t) {
                return u;
            }
            vis[u] = t;
            u = st[match[u]];
            if (u) {
                u = st[pa[u]];
            }
        }
        return 0;
    }

    void
    addBlossom(int u, int lca, int v)
    {
        int b = n + 1;
        while (b <= nx && st[b]) {
            ++b;
        }
        if (b > nx) {
            ++nx;
        }
        lab[b] = 0;
        S[b] = 0;
        match[b] = match[lca];
        flower[b].clear();
        flower[b].push_back(lca);
        for (int x = u, y; x != lca; x = st[pa[y]]) {
            flower[b].push_back(x);
            y = st[match[x]];
            flower[b].push_back(y);
            queuePush(y);
        }
        std::reverse(flower[b].begin() + 1, flower[b].end());
        for (int x = v, y; x != lca; x = st[pa[y]]) {
            flower[b].push_back(x);
            y = st[match[x]];
            flower[b].push_back(y);
            queuePush(y);
        }
        setSt(b, b);
        for (int x = 1; x <= nx; ++x) {
            gw[b][x] = gw[x][b] = 0;
        }
        for (int x = 1; x <= n; ++x) {
            flowerFrom[b][x] = 0;
        }
        for (int xs : flower[b]) {
            for (int x = 1; x <= nx; ++x) {
                if (gw[b][x] == 0 ||
                    eDelta(gu[xs][x], gv[xs][x]) <
                        eDelta(gu[b][x], gv[b][x])) {
                    gu[b][x] = gu[xs][x];
                    gv[b][x] = gv[xs][x];
                    gw[b][x] = gw[xs][x];
                    gu[x][b] = gu[x][xs];
                    gv[x][b] = gv[x][xs];
                    gw[x][b] = gw[x][xs];
                }
            }
            for (int x = 1; x <= n; ++x) {
                if (flowerFrom[xs][x]) {
                    flowerFrom[b][x] = xs;
                }
            }
        }
        setSlack(b);
    }

    void
    expandBlossom(int b)
    {
        for (int i : flower[b]) {
            setSt(i, i);
        }
        const int xr = flowerFrom[b][gu[b][pa[b]]];
        const int pr = getPr(b, xr);
        for (int i = 0; i < pr; i += 2) {
            const int xs = flower[b][i];
            const int xns = flower[b][i + 1];
            pa[xs] = gu[xns][xs];
            S[xs] = 1;
            S[xns] = 0;
            slack[xs] = 0;
            setSlack(xns);
            queuePush(xns);
        }
        S[xr] = 1;
        pa[xr] = pa[b];
        for (size_t i = pr + 1; i < flower[b].size(); ++i) {
            const int xs = flower[b][i];
            S[xs] = -1;
            setSlack(xs);
        }
        st[b] = 0;
    }

    bool
    onFoundEdge(int eu, int ev)
    {
        const int u = st[eu];
        const int v = st[ev];
        if (S[v] == -1) {
            pa[v] = eu;
            S[v] = 1;
            const int nu = st[match[v]];
            slack[v] = slack[nu] = 0;
            S[nu] = 0;
            queuePush(nu);
        } else if (S[v] == 0) {
            const int lca = getLca(u, v);
            if (!lca) {
                augment(u, v);
                augment(v, u);
                return true;
            }
            addBlossom(u, lca, v);
        }
        return false;
    }

    bool
    matchingRound()
    {
        std::fill(S.begin() + 1, S.begin() + nx + 1, -1);
        std::fill(slack.begin() + 1, slack.begin() + nx + 1, 0);
        q.clear();
        for (int x = 1; x <= nx; ++x) {
            if (st[x] == x && !match[x]) {
                pa[x] = 0;
                S[x] = 0;
                queuePush(x);
            }
        }
        if (q.empty()) {
            return false;
        }
        while (true) {
            while (!q.empty()) {
                const int u = q.front();
                q.pop_front();
                if (S[st[u]] == 1) {
                    continue;
                }
                for (int v = 1; v <= n; ++v) {
                    if (gw[u][v] > 0 && st[u] != st[v]) {
                        if (eDelta(gu[u][v], gv[u][v]) == 0) {
                            if (onFoundEdge(gu[u][v], gv[u][v])) {
                                return true;
                            }
                        } else {
                            updateSlack(u, st[v]);
                        }
                    }
                }
            }
            long long d =
                std::numeric_limits<long long>::max();
            for (int b = n + 1; b <= nx; ++b) {
                if (st[b] == b && S[b] == 1) {
                    d = std::min(d, lab[b] / 2);
                }
            }
            for (int x = 1; x <= nx; ++x) {
                if (st[x] == x && slack[x]) {
                    const long long delta = eDelta(
                        gu[slack[x]][x], gv[slack[x]][x]);
                    if (S[x] == -1) {
                        d = std::min(d, delta);
                    } else if (S[x] == 0) {
                        d = std::min(d, delta / 2);
                    }
                }
            }
            for (int u = 1; u <= n; ++u) {
                if (S[st[u]] == 0) {
                    if (lab[u] <= d) {
                        return false;
                    }
                    lab[u] -= d;
                } else if (S[st[u]] == 1) {
                    lab[u] += d;
                }
            }
            for (int b = n + 1; b <= nx; ++b) {
                if (st[b] == b) {
                    if (S[b] == 0) {
                        lab[b] += 2 * d;
                    } else if (S[b] == 1) {
                        lab[b] -= 2 * d;
                    }
                }
            }
            q.clear();
            for (int x = 1; x <= nx; ++x) {
                if (st[x] == x && slack[x] && st[slack[x]] != x &&
                    eDelta(gu[slack[x]][x], gv[slack[x]][x]) == 0) {
                    if (onFoundEdge(gu[slack[x]][x],
                                    gv[slack[x]][x])) {
                        return true;
                    }
                }
            }
            for (int b = n + 1; b <= nx; ++b) {
                if (st[b] == b && S[b] == 1 && lab[b] == 0) {
                    expandBlossom(b);
                }
            }
        }
    }

    int n;
    int nx;
    // Edge bookkeeping: original endpoints and weight per slot; a
    // blossom's slot toward x caches its best member edge.
    std::vector<std::vector<int>> gu, gv;
    std::vector<std::vector<long long>> gw;
    std::vector<long long> lab;
    std::vector<int> match, slack, st, pa;
    std::vector<std::vector<int>> flowerFrom;
    std::vector<int> S, vis;
    std::vector<std::vector<int>> flower;
    std::deque<int> q;
};

} // namespace

std::vector<int>
maxWeightMatchingDense(
    const std::vector<std::vector<long long>> &weights)
{
    MaxWeightMatcher matcher(weights);
    return matcher.solve();
}

MatchingSolution
solveBlossom(const MatchingProblem &problem)
{
    const int n = problem.n;
    MatchingSolution solution;
    if (n == 0) {
        solution.valid = true;
        return solution;
    }

    // Quantize weights to integers. The scale keeps the largest
    // doubled-graph weight comfortably inside long long after the
    // BIG offset is applied to force perfection.
    double w_max = 0.0;
    for (int i = 0; i < n; ++i) {
        if (problem.boundaryWeight[i] != kNoEdge) {
            w_max = std::max(w_max, problem.boundaryWeight[i]);
        }
        for (int j = i + 1; j < n; ++j) {
            if (problem.pair(i, j) != kNoEdge) {
                w_max = std::max(w_max, problem.pair(i, j));
            }
        }
    }
    const double scale = (w_max > 0.0) ? (1e6 / w_max) : 1.0;
    auto quantize = [&](double w) -> long long {
        return static_cast<long long>(std::llround(w * scale));
    };
    const long long big = 4'000'000;

    // Doubled graph: defects 1..n, twins n+1..2n (1-based).
    const int total = 2 * n;
    std::vector<std::vector<long long>> weights(
        total + 1, std::vector<long long>(total + 1, 0));
    auto set_edge = [&](int a, int b, long long w) {
        weights[a][b] = w;
        weights[b][a] = w;
    };
    for (int i = 0; i < n; ++i) {
        if (problem.boundaryWeight[i] != kNoEdge) {
            set_edge(i + 1, n + i + 1,
                     big - quantize(problem.boundaryWeight[i]));
        }
        for (int j = i + 1; j < n; ++j) {
            if (problem.pair(i, j) != kNoEdge) {
                set_edge(i + 1, j + 1,
                         big - quantize(problem.pair(i, j)));
            }
            // Twins pair up for free.
            set_edge(n + i + 1, n + j + 1, big);
        }
    }
    if (n == 1) {
        // Single defect: twin edge is the only option.
        if (problem.boundaryWeight[0] == kNoEdge) {
            solution.valid = false;
            return solution;
        }
        solution.mate = {-1};
        solution.totalWeight = problem.boundaryWeight[0];
        solution.valid = true;
        return solution;
    }

    const std::vector<int> mate = maxWeightMatchingDense(weights);

    solution.mate.assign(n, -2);
    for (int i = 1; i <= n; ++i) {
        const int m = mate[i];
        if (m == 0) {
            solution.valid = false;
            return solution;
        }
        if (m == n + i) {
            solution.mate[i - 1] = -1;
        } else if (m <= n) {
            solution.mate[i - 1] = m - 1;
        } else {
            // Matched to a foreign twin: not a legal projection.
            solution.valid = false;
            return solution;
        }
    }
    solution.valid = true;
    solution.totalWeight = matchingWeight(problem, solution);
    return solution;
}

} // namespace qec
