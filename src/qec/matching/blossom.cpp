#include "qec/matching/blossom.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qec/util/assert.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

void
BlossomSolver::beginDense(int n)
{
    n_ = n;
    nx_ = n;
    wMax_ = 0;
    const int need = 2 * n + 1;
    if (need > cap_) {
        cap_ = need;
        rt::resizeTo(gu_, static_cast<size_t>(cap_) * cap_);
        rt::resizeTo(gv_, static_cast<size_t>(cap_) * cap_);
        rt::resizeTo(gw_, static_cast<size_t>(cap_) * cap_);
        rt::resizeTo(lab_, cap_);
        rt::resizeTo(match_, cap_);
        rt::resizeTo(slack_, cap_);
        rt::resizeTo(st_, cap_);
        rt::resizeTo(pa_, cap_);
        rt::resizeTo(S_, cap_);
        rt::resizeTo(vis_, cap_);
        rt::resizeTo(flower_, cap_);
    }
    if (n + 1 > fcap_) {
        fcap_ = n + 1;
        rt::resizeTo(flowerFrom_,
                     static_cast<size_t>(cap_) * fcap_);
    }
    // Per-solve overwrite of everything the algorithm reads before
    // writing: the real-vertex edge region, the real flowerFrom
    // rows, and the linear per-vertex state. Blossom slots
    // ((n, 2n]) are fully initialized by addBlossom when created,
    // so stale entries there are never observed.
    for (int u = 1; u <= n; ++u) {
        for (int v = 1; v <= n; ++v) {
            gu(u, v) = u;
            gv(u, v) = v;
            gw(u, v) = 0;
        }
        for (int v = 0; v <= n; ++v) {
            flowerFrom(u, v) = (u == v) ? u : 0;
        }
    }
    for (int u = 0; u < cap_; ++u) {
        st_[u] = u <= n ? u : 0;
        match_[u] = 0;
    }
}

void
BlossomSolver::setEdge(int u, int v, long long w)
{
    // Doubling keeps every dual quantity integral.
    gw(u, v) = 2 * w;
    gw(v, u) = 2 * w;
    wMax_ = std::max(wMax_, 2 * w);
}

void
BlossomSolver::run()
{
    for (int u = 1; u <= n_; ++u) {
        lab_[u] = wMax_ / 2;
    }
    while (matchingRound()) {
    }
}

long long
BlossomSolver::eDelta(int u, int v)
{
    return lab_[gu(u, v)] + lab_[gv(u, v)] - gw(u, v);
}

void
BlossomSolver::updateSlack(int u, int x)
{
    if (!slack_[x] ||
        eDelta(gu(u, x), gv(u, x)) <
            eDelta(gu(slack_[x], x), gv(slack_[x], x))) {
        slack_[x] = u;
    }
}

void
BlossomSolver::setSlack(int x)
{
    slack_[x] = 0;
    for (int u = 1; u <= n_; ++u) {
        if (gw(u, x) > 0 && st_[u] != x && S_[st_[u]] == 0) {
            updateSlack(u, x);
        }
    }
}

void
BlossomSolver::queuePush(int x)
{
    if (x <= n_) {
        rt::pushBack(queue_, x);
    } else {
        for (int i : flower_[x]) {
            queuePush(i);
        }
    }
}

void
BlossomSolver::setSt(int x, int b)
{
    st_[x] = b;
    if (x > n_) {
        for (int i : flower_[x]) {
            setSt(i, b);
        }
    }
}

int
BlossomSolver::getPr(int b, int xr)
{
    auto it =
        std::find(flower_[b].begin(), flower_[b].end(), xr);
    int pr = static_cast<int>(it - flower_[b].begin());
    if (pr % 2 == 1) {
        std::reverse(flower_[b].begin() + 1, flower_[b].end());
        return static_cast<int>(flower_[b].size()) - pr;
    }
    return pr;
}

void
BlossomSolver::setMatch(int u, int v)
{
    match_[u] = gv(u, v);
    if (u <= n_) {
        return;
    }
    const int xr = flowerFrom(u, gu(u, v));
    const int pr = getPr(u, xr);
    for (int i = 0; i < pr; ++i) {
        setMatch(flower_[u][i], flower_[u][i ^ 1]);
    }
    setMatch(xr, v);
    std::rotate(flower_[u].begin(), flower_[u].begin() + pr,
                flower_[u].end());
}

void
BlossomSolver::augment(int u, int v)
{
    while (true) {
        const int xnv = st_[match_[u]];
        setMatch(u, v);
        if (!xnv) {
            return;
        }
        setMatch(xnv, st_[pa_[xnv]]);
        u = st_[pa_[xnv]];
        v = xnv;
    }
}

int
BlossomSolver::getLca(int u, int v)
{
    for (++visitT_; u || v; std::swap(u, v)) {
        if (u == 0) {
            continue;
        }
        if (vis_[u] == visitT_) {
            return u;
        }
        vis_[u] = visitT_;
        u = st_[match_[u]];
        if (u) {
            u = st_[pa_[u]];
        }
    }
    return 0;
}

void
BlossomSolver::addBlossom(int u, int lca, int v)
{
    int b = n_ + 1;
    while (b <= nx_ && st_[b]) {
        ++b;
    }
    if (b > nx_) {
        ++nx_;
    }
    lab_[b] = 0;
    S_[b] = 0;
    match_[b] = match_[lca];
    flower_[b].clear();
    rt::pushBack(flower_[b], lca);
    for (int x = u, y; x != lca; x = st_[pa_[y]]) {
        rt::pushBack(flower_[b], x);
        y = st_[match_[x]];
        rt::pushBack(flower_[b], y);
        queuePush(y);
    }
    std::reverse(flower_[b].begin() + 1, flower_[b].end());
    for (int x = v, y; x != lca; x = st_[pa_[y]]) {
        rt::pushBack(flower_[b], x);
        y = st_[match_[x]];
        rt::pushBack(flower_[b], y);
        queuePush(y);
    }
    setSt(b, b);
    for (int x = 1; x <= nx_; ++x) {
        gw(b, x) = 0;
        gw(x, b) = 0;
    }
    for (int x = 1; x <= n_; ++x) {
        flowerFrom(b, x) = 0;
    }
    for (int xs : flower_[b]) {
        for (int x = 1; x <= nx_; ++x) {
            if (gw(b, x) == 0 ||
                eDelta(gu(xs, x), gv(xs, x)) <
                    eDelta(gu(b, x), gv(b, x))) {
                gu(b, x) = gu(xs, x);
                gv(b, x) = gv(xs, x);
                gw(b, x) = gw(xs, x);
                gu(x, b) = gu(x, xs);
                gv(x, b) = gv(x, xs);
                gw(x, b) = gw(x, xs);
            }
        }
        for (int x = 1; x <= n_; ++x) {
            if (flowerFrom(xs, x)) {
                flowerFrom(b, x) = xs;
            }
        }
    }
    setSlack(b);
}

void
BlossomSolver::expandBlossom(int b)
{
    for (int i : flower_[b]) {
        setSt(i, i);
    }
    const int xr = flowerFrom(b, gu(b, pa_[b]));
    const int pr = getPr(b, xr);
    for (int i = 0; i < pr; i += 2) {
        const int xs = flower_[b][i];
        const int xns = flower_[b][i + 1];
        pa_[xs] = gu(xns, xs);
        S_[xs] = 1;
        S_[xns] = 0;
        slack_[xs] = 0;
        setSlack(xns);
        queuePush(xns);
    }
    S_[xr] = 1;
    pa_[xr] = pa_[b];
    for (size_t i = pr + 1; i < flower_[b].size(); ++i) {
        const int xs = flower_[b][i];
        S_[xs] = -1;
        setSlack(xs);
    }
    st_[b] = 0;
}

bool
BlossomSolver::onFoundEdge(int eu, int ev)
{
    const int u = st_[eu];
    const int v = st_[ev];
    if (S_[v] == -1) {
        pa_[v] = eu;
        S_[v] = 1;
        const int nu = st_[match_[v]];
        slack_[v] = slack_[nu] = 0;
        S_[nu] = 0;
        queuePush(nu);
    } else if (S_[v] == 0) {
        const int lca = getLca(u, v);
        if (!lca) {
            augment(u, v);
            augment(v, u);
            return true;
        }
        addBlossom(u, lca, v);
    }
    return false;
}

bool
BlossomSolver::matchingRound()
{
    std::fill(S_.begin() + 1, S_.begin() + nx_ + 1, -1);
    std::fill(slack_.begin() + 1, slack_.begin() + nx_ + 1, 0);
    queue_.clear();
    queueHead_ = 0;
    for (int x = 1; x <= nx_; ++x) {
        if (st_[x] == x && !match_[x]) {
            pa_[x] = 0;
            S_[x] = 0;
            queuePush(x);
        }
    }
    if (queue_.empty()) {
        return false;
    }
    while (true) {
        while (queueHead_ < queue_.size()) {
            const int u = queue_[queueHead_++];
            if (S_[st_[u]] == 1) {
                continue;
            }
            for (int v = 1; v <= n_; ++v) {
                if (gw(u, v) > 0 && st_[u] != st_[v]) {
                    if (eDelta(gu(u, v), gv(u, v)) == 0) {
                        if (onFoundEdge(gu(u, v), gv(u, v))) {
                            return true;
                        }
                    } else {
                        updateSlack(u, st_[v]);
                    }
                }
            }
        }
        long long d = std::numeric_limits<long long>::max();
        for (int b = n_ + 1; b <= nx_; ++b) {
            if (st_[b] == b && S_[b] == 1) {
                d = std::min(d, lab_[b] / 2);
            }
        }
        for (int x = 1; x <= nx_; ++x) {
            if (st_[x] == x && slack_[x]) {
                const long long delta =
                    eDelta(gu(slack_[x], x), gv(slack_[x], x));
                if (S_[x] == -1) {
                    d = std::min(d, delta);
                } else if (S_[x] == 0) {
                    d = std::min(d, delta / 2);
                }
            }
        }
        for (int u = 1; u <= n_; ++u) {
            if (S_[st_[u]] == 0) {
                if (lab_[u] <= d) {
                    return false;
                }
                lab_[u] -= d;
            } else if (S_[st_[u]] == 1) {
                lab_[u] += d;
            }
        }
        for (int b = n_ + 1; b <= nx_; ++b) {
            if (st_[b] == b) {
                if (S_[b] == 0) {
                    lab_[b] += 2 * d;
                } else if (S_[b] == 1) {
                    lab_[b] -= 2 * d;
                }
            }
        }
        queue_.clear();
        queueHead_ = 0;
        for (int x = 1; x <= nx_; ++x) {
            if (st_[x] == x && slack_[x] && st_[slack_[x]] != x &&
                eDelta(gu(slack_[x], x), gv(slack_[x], x)) == 0) {
                if (onFoundEdge(gu(slack_[x], x),
                                gv(slack_[x], x))) {
                    return true;
                }
            }
        }
        for (int b = n_ + 1; b <= nx_; ++b) {
            if (st_[b] == b && S_[b] == 1 && lab_[b] == 0) {
                expandBlossom(b);
            }
        }
    }
}

const std::vector<int> &
BlossomSolver::maxWeightMatching(
    const std::vector<std::vector<long long>> &weights)
{
    const int n = static_cast<int>(weights.size()) - 1;
    beginDense(n);
    // Copy each directed entry as-is (matching the historical
    // behavior for callers that fill only one triangle); wMax_
    // feeds the initial dual values.
    for (int u = 1; u <= n; ++u) {
        for (int v = 1; v <= n; ++v) {
            gw(u, v) = 2 * weights[u][v];
            wMax_ = std::max(wMax_, gw(u, v));
        }
    }
    run();
    return match_;
}

void
BlossomSolver::solve(const MatchingProblem &problem,
                     MatchingSolution &out)
{
    QEC_REALTIME;
    const int n = problem.n;
    out.mate.clear();
    out.totalWeight = 0.0;
    out.valid = false;
    if (n == 0) {
        out.valid = true;
        return;
    }

    // Quantize weights to integers. The scale keeps the largest
    // doubled-graph weight comfortably inside long long after the
    // BIG offset is applied to force perfection.
    double w_max = 0.0;
    for (int i = 0; i < n; ++i) {
        if (problem.boundaryWeight[i] != kNoEdge) {
            w_max = std::max(w_max, problem.boundaryWeight[i]);
        }
        for (int j = i + 1; j < n; ++j) {
            if (problem.pair(i, j) != kNoEdge) {
                w_max = std::max(w_max, problem.pair(i, j));
            }
        }
    }
    const double scale = (w_max > 0.0) ? (1e6 / w_max) : 1.0;
    auto quantize = [&](double w) -> long long {
        return static_cast<long long>(std::llround(w * scale));
    };
    const long long big = 4'000'000;

    if (n == 1) {
        // Single defect: twin edge is the only option.
        if (problem.boundaryWeight[0] == kNoEdge) {
            return;
        }
        rt::pushBack(out.mate, -1);
        out.totalWeight = problem.boundaryWeight[0];
        out.valid = true;
        return;
    }

    // Doubled graph: defects 1..n, twins n+1..2n (1-based), written
    // straight into the dense core — no intermediate matrix.
    beginDense(2 * n);
    for (int i = 0; i < n; ++i) {
        if (problem.boundaryWeight[i] != kNoEdge) {
            setEdge(i + 1, n + i + 1,
                    big - quantize(problem.boundaryWeight[i]));
        }
        for (int j = i + 1; j < n; ++j) {
            if (problem.pair(i, j) != kNoEdge) {
                setEdge(i + 1, j + 1,
                        big - quantize(problem.pair(i, j)));
            }
            // Twins pair up for free.
            setEdge(n + i + 1, n + j + 1, big);
        }
    }
    run();

    rt::assignFill(out.mate, n, -2);
    for (int i = 1; i <= n; ++i) {
        const int m = match_[i];
        if (m == 0) {
            out.valid = false;
            return;
        }
        if (m == n + i) {
            out.mate[i - 1] = -1;
        } else if (m <= n) {
            out.mate[i - 1] = m - 1;
        } else {
            // Matched to a foreign twin: not a legal projection.
            out.valid = false;
            return;
        }
    }
    out.valid = true;
    out.totalWeight = matchingWeight(problem, out);
}

std::vector<int>
maxWeightMatchingDense(
    const std::vector<std::vector<long long>> &weights)
{
    BlossomSolver solver;
    return solver.maxWeightMatching(weights);
}

MatchingSolution
solveBlossom(const MatchingProblem &problem)
{
    BlossomSolver solver;
    MatchingSolution solution;
    solver.solve(problem, solution);
    return solution;
}

} // namespace qec
