/**
 * @file
 * Sparse local-growth matching: exact MWPM without the dense S×S
 * problem matrix or the O(V²) PathTable.
 *
 * The dense pipeline builds a complete graph over the S defects
 * (MatchingProblem) from precomputed all-pairs distances. This file
 * is the sparse alternative that unlocks high distances (d = 17, 21
 * and beyond): a SparseMatchingProblem grows a truncated Dijkstra
 * region around each defect directly over the CSR DecodingGraph
 * adjacency (via DistanceOracle) and keeps only the *candidate*
 * pairs that can appear in some optimal matching; SparseMatcher
 * then decomposes the candidate graph into connected components and
 * solves each exactly — closed forms for 1-2 defects, an unquantized
 * subset DP up to kDpMaxSize, the blossom core beyond.
 *
 * Exactness: a pair (i, j) with d(i, j) >= db(i) + db(j) — the sum
 * of the two boundary distances — is never needed: replacing the
 * pair with two boundary matches never increases the total weight,
 * and the boundary matches are available whenever the bound is
 * finite (an infinite bound keeps every finite pair). So the pruned
 * problem has the same optimal total weight as the dense problem
 * (the chosen mates may differ between equal-weight optima, as with
 * any exact solver). Each
 * source's growth radius is db(i) plus the largest boundary
 * distance among its remaining targets, so every target left
 * unsettled at the radius is provably prunable. When boundary
 * distances are infinite no pruning applies and the growth runs to
 * exhaustion — the matcher degrades to exact dense behavior.
 *
 * Two interchangeable distance backends feed the same build: with a
 * dense PathTable the problem reads table rows on demand (no S×S
 * gather is materialized); with a DeferPairs table it runs the
 * truncated Dijkstras. The oracle's cells are bit-identical to the
 * table's, so both backends produce the identical candidate set and
 * the identical solution.
 *
 * Memory contract: like the dense solvers, every buffer here grows
 * monotonically and is reused, so a warm problem + matcher pair
 * performs zero heap allocations per decode (the DecodeWorkspace
 * property). Not thread-safe across instances' sharing.
 */

#ifndef QEC_MATCHING_SPARSE_MATCHER_HPP
#define QEC_MATCHING_SPARSE_MATCHER_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "qec/graph/distance_oracle.hpp"
#include "qec/graph/path_table.hpp"
#include "qec/matching/blossom.hpp"
#include "qec/matching/matching_problem.hpp"

namespace qec
{

/** One kept candidate pairing: local partner j and its path cell. */
struct SparseCandidate
{
    int32_t j;     //!< Local index of the partner (always > i).
    PathCell cell; //!< Distance / path obs / hops of the pair.
};

/**
 * Sparse matching view of one syndrome: the defect list, each
 * defect's boundary cell, and the pruned candidate pair lists
 * discovered by local growth (see file comment). Plays the same
 * role as MatchingProblem for the dense solvers; SparseMatcher
 * consumes it and fills the shared MatchingSolution type.
 */
class SparseMatchingProblem
{
  public:
    /**
     * Rebuild in place for one syndrome, reusing all buffers.
     * `defects` are sorted flipped-detector indices. `paths` may be
     * dense (candidates read from table rows) or DeferPairs-built
     * (candidates grown with the internal oracle); both yield the
     * identical problem.
     */
    void build(const PathTable &paths,
               std::span<const uint32_t> defects);

    int size() const { return n_; }
    uint32_t det(int i) const { return defects_[i]; }

    const PathCell &boundaryCell(int i) const { return bcells_[i]; }

    /** Forward candidate list of local defect i (partners j > i). */
    std::span<const SparseCandidate> candidates(int i) const
    {
        return {cands_.data() + offsets_[i],
                cands_.data() + offsets_[i + 1]};
    }

    /** Cell of kept pair (i, j), i < j; asserts if not a candidate. */
    const PathCell &pairCell(int i, int j) const;

    /** XOR of observable masks along all matched paths. */
    uint64_t solutionObs(const MatchingSolution &solution) const;

    /** Error-chain lengths (hops) of each matched pair/boundary. */
    void chainLengthsInto(const MatchingSolution &solution,
                          std::vector<int> &out) const;

  private:
    int n_ = 0;
    std::vector<uint32_t> defects_;
    std::vector<PathCell> bcells_;    //!< Boundary column cells.
    std::vector<int32_t> offsets_;    //!< n+1 CSR offsets.
    std::vector<SparseCandidate> cands_;
    std::vector<double> suffixMax_;   //!< Boundary-dist suffix max.
    std::vector<PathCell> rowScratch_;
    DistanceOracle oracle_;           //!< Lazy distance backend.
};

/**
 * Exact solver over a SparseMatchingProblem: connected-component
 * decomposition of the candidate graph, a closed form for 1- and
 * 2-defect components, an exact subset-DP for small components (the
 * overwhelmingly common case after pruning), and the reusable
 * blossom core for the rest. Fills the same MatchingSolution as the
 * dense solvers (mates are local defect indices, -1 = boundary).
 */
class SparseMatcher
{
  public:
    void solve(const SparseMatchingProblem &problem,
               MatchingSolution &out);

    /** Largest component solved by the subset DP (2^m states); the
     *  blossom core takes over above this. At 12 the DP table is
     *  4096 doubles and the DP is still well under the doubled-graph
     *  blossom's cost at the same size. */
    static constexpr int kDpMaxSize = 12;

  private:
    int32_t find(int32_t x);

    std::vector<int32_t> parent_;   //!< Union-find over locals.
    std::vector<int32_t> compOf_;   //!< Local -> component index.
    std::vector<int32_t> compCount_;
    std::vector<int32_t> compStart_;
    std::vector<int32_t> members_;  //!< Locals grouped by component.
    std::vector<int32_t> localPos_; //!< Local -> index within comp.
    MatchingProblem sub_;           //!< Per-component dense problem.
    MatchingSolution subSol_;
    BlossomSolver blossom_;
    std::vector<double> dpCost_;    //!< Subset DP: cost per mask.
    std::vector<int8_t> dpChoice_;  //!< Mate of the mask's low bit.
};

} // namespace qec

#endif // QEC_MATCHING_SPARSE_MATCHER_HPP
