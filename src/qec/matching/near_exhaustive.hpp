/**
 * @file
 * Budgeted branch-and-bound matcher — the search engine behind the
 * Astrea-G decoder model (pruned, prioritized near-exhaustive walk
 * with greedy completion when the state budget runs out).
 *
 * Promoted out of the decoder into the matching layer so it can be
 * reused as a first-class solver: like BlossomSolver, a
 * NearExhaustiveSolver keeps its per-defect candidate lists and mate
 * scratch across solves (flat CSR storage, grown monotonically), so
 * a warm solver performs zero heap allocations per solve. One
 * instance must not be shared between threads.
 */

#ifndef QEC_MATCHING_NEAR_EXHAUSTIVE_HPP
#define QEC_MATCHING_NEAR_EXHAUSTIVE_HPP

#include <utility>
#include <vector>

#include "qec/matching/matching_problem.hpp"

namespace qec
{

/** Reusable budgeted branch-and-bound over pairings of a (pruned)
 *  defect graph. */
class NearExhaustiveSolver
{
  public:
    /**
     * Run the search; `out` is reset and filled in place (reusing
     * capacity) with the best matching found — possibly a greedy
     * completion when the budget was exhausted. out.valid is false
     * when not even a greedy completion existed.
     *
     * @param budget    search-state budget (Astrea-G's pipeline
     *                  walk length)
     * @param use_bound prune with an admissible lower bound (the
     *                  "smarter Astrea-G" ablation)
     */
    void solve(const MatchingProblem &problem, long long budget,
               bool use_bound, MatchingSolution &out);

    /** States explored by the last solve. */
    long long statesExplored() const { return states_; }
    /** Whether the last solve hit its budget. */
    bool truncated() const { return hitBudget_; }

  private:
    double remainingBound() const;
    void greedyComplete(double weight);
    void recurse(double weight);

    const MatchingProblem *problem_ = nullptr;
    long long budget_ = 0;
    bool useBound_ = false;
    std::vector<int> mate_, bestMate_, savedMate_;
    /**
     * Per-defect candidate lists sorted by ascending weight, the
     * "prioritized matchings" of Astrea-G's greedy order, stored as
     * one flat (weight, partner) array with per-defect offsets;
     * partner -1 is the boundary.
     */
    std::vector<int> optOffset_;
    std::vector<std::pair<double, int>> options_;
    std::vector<double> minOption_;
    double best_ = kNoEdge;
    long long states_ = 0;
    bool hitBudget_ = false;
};

} // namespace qec

#endif // QEC_MATCHING_NEAR_EXHAUSTIVE_HPP
