/**
 * @file
 * Exhaustive minimum-weight matcher.
 *
 * Recursively enumerates every perfect matching (boundary matches
 * included). This is the reference oracle for the blossom
 * implementation and the exact engine behind the Astrea model, whose
 * hardware performs precisely this brute-force search for HW <= 10
 * (945 pairings at HW = 10, §2.3 of the paper).
 *
 * ExhaustiveSolver is reusable: its mate scratch grows to the
 * largest instance seen and is overwritten on subsequent solves, so
 * a warm solver allocates nothing per solve (the DecodeWorkspace
 * memory contract). One instance must not be shared between threads.
 */

#ifndef QEC_MATCHING_EXHAUSTIVE_HPP
#define QEC_MATCHING_EXHAUSTIVE_HPP

#include <cstdint>
#include <vector>

#include "qec/matching/matching_problem.hpp"

namespace qec
{

/** Reusable brute-force matcher. Practical for n <= ~14. */
class ExhaustiveSolver
{
  public:
    /**
     * Solve by exhaustive search; `out` is reset and filled in
     * place, reusing its capacity.
     *
     * @param explored if non-null, receives the number of complete
     *        matchings enumerated (the quantity Astrea's pipeline
     *        walks).
     */
    void solve(const MatchingProblem &problem, MatchingSolution &out,
               uint64_t *explored = nullptr);

  private:
    void recurse(const MatchingProblem &problem, double weight);
    void seedGreedyBound(const MatchingProblem &problem);

    std::vector<int> mate_, bestMate_;
    double best_ = kNoEdge;
    uint64_t explored_ = 0;
};

/** One-shot convenience over a temporary ExhaustiveSolver. */
MatchingSolution solveExhaustive(const MatchingProblem &problem,
                                 uint64_t *explored = nullptr);

} // namespace qec

#endif // QEC_MATCHING_EXHAUSTIVE_HPP
