/**
 * @file
 * Exhaustive minimum-weight matcher.
 *
 * Recursively enumerates every perfect matching (boundary matches
 * included). This is the reference oracle for the blossom
 * implementation and the exact engine behind the Astrea model, whose
 * hardware performs precisely this brute-force search for HW <= 10
 * (945 pairings at HW = 10, §2.3 of the paper).
 */

#ifndef QEC_MATCHING_EXHAUSTIVE_HPP
#define QEC_MATCHING_EXHAUSTIVE_HPP

#include <cstdint>

#include "qec/matching/matching_problem.hpp"

namespace qec
{

/**
 * Solve by exhaustive search. Practical for n <= ~14.
 *
 * @param explored if non-null, receives the number of complete
 *        matchings enumerated (the quantity Astrea's pipeline walks).
 */
MatchingSolution solveExhaustive(const MatchingProblem &problem,
                                 uint64_t *explored = nullptr);

} // namespace qec

#endif // QEC_MATCHING_EXHAUSTIVE_HPP
