#include "qec/matching/defect_graph.hpp"

#include <cmath>

#include "qec/util/assert.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

void
buildDefectGraphInto(std::span<const uint32_t> defects,
                     const PathTable &paths, DefectGraph &out)
{
    rt::assignRange(out.defects, defects.begin(),
                    defects.end());
    out.viewMap.clear();
    const int n = static_cast<int>(defects.size());
    out.problem.n = n;
    rt::assignFill(out.problem.pairWeight,
                   static_cast<size_t>(n) * n, kNoEdge);
    rt::assignFill(out.problem.boundaryWeight,
                   static_cast<size_t>(n), kNoEdge);
    for (int i = 0; i < n; ++i) {
        const double db = paths.distToBoundary(defects[i]);
        if (std::isfinite(db)) {
            out.problem.boundaryWeight[i] = db;
        }
        for (int j = i + 1; j < n; ++j) {
            if (!paths.unreachable(defects[i], defects[j])) {
                out.problem.setPair(
                    i, j, paths.dist(defects[i], defects[j]));
            }
        }
    }
}

void
buildDefectGraphInto(std::span<const uint32_t> defects,
                     const PathTable &paths, DistanceView &view,
                     DefectGraph &out)
{
    rt::assignRange(out.defects, defects.begin(),
                    defects.end());
    const int n = static_cast<int>(defects.size());
    if (!view.subsetMap(paths, defects, out.viewMap)) {
        // Not contained in the gathered block: gather for exactly
        // this set; the map is then the identity.
        view.gather(paths, defects);
        out.viewMap.clear();
        for (int i = 0; i < n; ++i) {
            rt::pushBack(out.viewMap, i);
        }
    }
    out.problem.n = n;
    rt::assignFill(out.problem.pairWeight,
                   static_cast<size_t>(n) * n, kNoEdge);
    rt::assignFill(out.problem.boundaryWeight,
                   static_cast<size_t>(n), kNoEdge);
    for (int i = 0; i < n; ++i) {
        const int vi = out.viewMap[i];
        const double db = view.distToBoundary(vi);
        if (std::isfinite(db)) {
            out.problem.boundaryWeight[i] = db;
        }
        for (int j = i + 1; j < n; ++j) {
            const float w = view.dist(vi, out.viewMap[j]);
            if (std::isfinite(w)) {
                out.problem.setPair(i, j, w);
            }
        }
    }
}

DefectGraph
buildDefectGraph(std::span<const uint32_t> defects,
                 const PathTable &paths)
{
    DefectGraph graph;
    buildDefectGraphInto(defects, paths, graph);
    return graph;
}

uint64_t
DefectGraph::solutionObs(const PathTable &paths,
                         const MatchingSolution &solution) const
{
    QEC_ASSERT(solution.mate.size() == defects.size(),
               "solution size mismatch");
    uint64_t obs = 0;
    for (size_t i = 0; i < defects.size(); ++i) {
        const int m = solution.mate[i];
        if (m == -1) {
            obs ^= paths.boundaryObs(defects[i]);
        } else if (m > static_cast<int>(i)) {
            obs ^= paths.pathObs(defects[i], defects[m]);
        }
    }
    return obs;
}

uint64_t
DefectGraph::solutionObs(const DistanceView &view,
                         const MatchingSolution &solution) const
{
    QEC_ASSERT(solution.mate.size() == defects.size(),
               "solution size mismatch");
    QEC_ASSERT(viewMap.size() == defects.size(),
               "defect graph was not built through a view");
    uint64_t obs = 0;
    for (size_t i = 0; i < defects.size(); ++i) {
        const int m = solution.mate[i];
        if (m == -1) {
            obs ^= view.boundaryObs(viewMap[i]);
        } else if (m > static_cast<int>(i)) {
            obs ^= view.obs(viewMap[i], viewMap[m]);
        }
    }
    return obs;
}

void
DefectGraph::chainLengthsInto(const PathTable &paths,
                              const MatchingSolution &solution,
                              std::vector<int> &out) const
{
    out.clear();
    for (size_t i = 0; i < defects.size(); ++i) {
        const int m = solution.mate[i];
        if (m == -1) {
            rt::pushBack(out, paths.boundaryHops(defects[i]));
        } else if (m > static_cast<int>(i)) {
            rt::pushBack(
                out, paths.pathHops(defects[i], defects[m]));
        }
    }
}

void
DefectGraph::chainLengthsInto(const DistanceView &view,
                              const MatchingSolution &solution,
                              std::vector<int> &out) const
{
    QEC_ASSERT(viewMap.size() == defects.size(),
               "defect graph was not built through a view");
    out.clear();
    for (size_t i = 0; i < defects.size(); ++i) {
        const int m = solution.mate[i];
        if (m == -1) {
            rt::pushBack(out, view.boundaryHops(viewMap[i]));
        } else if (m > static_cast<int>(i)) {
            rt::pushBack(out,
                         view.hops(viewMap[i], viewMap[m]));
        }
    }
}

std::vector<int>
DefectGraph::chainLengths(const PathTable &paths,
                          const MatchingSolution &solution) const
{
    std::vector<int> lengths;
    chainLengthsInto(paths, solution, lengths);
    return lengths;
}

} // namespace qec
