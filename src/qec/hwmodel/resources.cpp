#include "qec/hwmodel/resources.hpp"

#include <algorithm>
#include <cmath>

namespace qec
{

StorageEstimate
estimateStorage(const DecodingGraph &graph)
{
    StorageEstimate estimate;
    // Edge table: 8-bit quantized weight per edge (§4.2).
    estimate.edgeTableBytes = graph.edges().size();
    // Path table: n x n cells, 2 bits each after the four-group
    // quantization of §6.6.
    const uint64_t n = graph.numDetectors();
    estimate.pathTableBytes = (n * n * 2 + 7) / 8;
    return estimate;
}

FpgaEstimate
estimateFpga(const DecodingGraph &graph, int parallel_lanes)
{
    FpgaEstimate estimate;

    // Widths in bits.
    const int weight_bits = 8; // Quantized edge weight.
    const int index_bits = std::max<int>(
        1, static_cast<int>(
               std::ceil(std::log2(
                   std::max<uint32_t>(2, graph.numDetectors())))));
    const int degree_bits = 6; // deg / #dependent counters.

    // Fig. 10 pipeline, per lane:
    //  stage 1: two degree comparators (==1) + table fetch registers
    //  stage 2: singleton detection (two adders + zero test, Fig. 11)
    //  stage 3: step-candidate decode (a few LUTs of control)
    //  stage 4: weight comparator + candidate register update
    const int stage1_luts = 2 * degree_bits + 2 * index_bits;
    const int stage2_luts = 2 * degree_bits + degree_bits; // adders+nor
    const int stage3_luts = 16;
    const int stage4_luts = weight_bits + 2 * (index_bits + weight_bits);
    const int lane_luts =
        stage1_luts + stage2_luts + stage3_luts + stage4_luts;

    // Registers: matching-candidate registers per step (2.1, 2.2,
    // 4.1, 4.2), the isolated-pair register file (say 16 entries),
    // and pipeline staging.
    const int candidate_ff = 4 * (2 * index_bits + weight_bits);
    const int isolated_ff = 16 * 2 * index_bits;
    const int staging_ff = 4 * (2 * index_bits + 2 * degree_bits +
                                weight_bits);
    const int lane_ff = candidate_ff + isolated_ff + staging_ff;

    // Shared control: subgraph generator, syndrome register, and the
    // Step-3 path engine (weight compare over the path table).
    const int control_luts = 40 * index_bits;
    const int control_ff =
        static_cast<int>(graph.numDetectors()) // Syndrome register.
        + 8 * index_bits;

    estimate.luts = static_cast<uint64_t>(lane_luts) *
                        parallel_lanes +
                    control_luts;
    estimate.flipFlops = static_cast<uint64_t>(lane_ff) *
                             parallel_lanes +
                         control_ff;

    // Kintex UltraScale+ KU15P: 523k LUTs, 1045k FFs.
    estimate.lutPercent =
        100.0 * static_cast<double>(estimate.luts) / 523000.0;
    estimate.ffPercent =
        100.0 * static_cast<double>(estimate.flipFlops) / 1045000.0;
    return estimate;
}

} // namespace qec
