/**
 * @file
 * FPGA resource and storage model (§6.6, Tables 7 and 8).
 *
 * No FPGA toolchain is available in this reproduction, so Table 7 is
 * served by an analytical model of the Fig. 10/11 pipeline, and
 * Table 8 by exact arithmetic over the decoding graph:
 *
 *  - Edge table: one 8-bit quantized weight per decoding-graph edge.
 *  - Path table: n x n cells over the detectors; Promatch only needs
 *    the paths binned into four coarse groups (§6.6), i.e. 2 bits
 *    per cell.
 */

#ifndef QEC_HWMODEL_RESOURCES_HPP
#define QEC_HWMODEL_RESOURCES_HPP

#include <cstdint>

#include "qec/graph/decoding_graph.hpp"

namespace qec
{

/** Storage requirements of the on-chip tables (Table 8). */
struct StorageEstimate
{
    uint64_t edgeTableBytes = 0;
    uint64_t pathTableBytes = 0;
};

/** Compute Table 8 for a decoding graph. */
StorageEstimate estimateStorage(const DecodingGraph &graph);

/** Analytical FPGA utilization estimate (Table 7). */
struct FpgaEstimate
{
    uint64_t luts = 0;
    uint64_t flipFlops = 0;
    double lutPercent = 0.0; //!< Of a Kintex UltraScale+ KU15P.
    double ffPercent = 0.0;
    double frequencyMHz = 250.0;
};

/**
 * Model the edge-processing pipeline of Fig. 10: per-stage register
 * widths, comparators, and the #dependent adders of Fig. 11.
 *
 * @param parallel_lanes number of parallel edge pipelines
 */
FpgaEstimate estimateFpga(const DecodingGraph &graph,
                          int parallel_lanes = 1);

} // namespace qec

#endif // QEC_HWMODEL_RESOURCES_HPP
