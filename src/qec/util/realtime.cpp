#include "qec/util/realtime.hpp"

// The one definition of the audit anchor. Placed in its own TU so
// every QEC_REALTIME marker is an external relocation against this
// symbol — which is exactly what tools/rt_audit scans for.
extern "C" const char qec_rt_root_anchor[] = "qec-rt-audit-root";
