#include "qec/util/rng.hpp"

#include <cmath>

#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_) {
        word = splitmix64(s);
    }
}

Rng
Rng::forSample(uint64_t seed, uint64_t stream, uint64_t sample)
{
    // Absorb (stream, sample) into the seed through two splitmix64
    // rounds each, with distinct odd multipliers so (a, b) and
    // (b, a) land in unrelated states. splitmix64 is a bijective
    // avalanche mix, so nearby counters (k, i) and (k, i+1) yield
    // decorrelated xoshiro initial states. Each round: advance s
    // by the splitmix gamma, then fold the hash and the counter
    // term back in (explicit temporaries — splitmix64 advances its
    // argument).
    uint64_t s = seed;
    const uint64_t h1 = splitmix64(s);
    s ^= h1 + stream * 0xd1b54a32d192ed03ull;
    const uint64_t h2 = splitmix64(s);
    s ^= h2 + sample * 0x8cb92ba72f3d8dd7ull;
    return Rng(splitmix64(s));
}

uint64_t
Rng::next64()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    return (next64() >> 11) * 0x1.0p-53;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    QEC_ASSERT(bound >= 1, "nextBelow requires bound >= 1");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = bound * (UINT64_MAX / bound);
    uint64_t v;
    do {
        v = next64();
    } while (v >= limit);
    return v % bound;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return nextDouble() < p;
}

int
Rng::nextBinomial(int n, double p)
{
    if (n <= 0 || p <= 0.0) {
        return 0;
    }
    if (p >= 1.0) {
        return n;
    }
    // Inversion by sequential search on the CDF. Expected work is
    // O(n*p + 1), which is ideal for the tiny n*p this library uses.
    const double q = 1.0 - p;
    double pmf = std::pow(q, n);
    double cdf = pmf;
    const double u = nextDouble();
    int k = 0;
    const double ratio = p / q;
    while (u > cdf && k < n) {
        pmf *= ratio * static_cast<double>(n - k) /
               static_cast<double>(k + 1);
        cdf += pmf;
        ++k;
    }
    return k;
}

uint64_t
Rng::biasedMask64(double p)
{
    if (p <= 0.0) {
        return 0;
    }
    if (p >= 1.0) {
        return ~0ull;
    }
    // Draw the number of set bits, then place them uniformly. For the
    // common Monte-Carlo case (p ~ 1e-4) the binomial draw returns 0
    // almost always, so this is one nextDouble() per call.
    const int ones = nextBinomial(64, p);
    if (ones == 0) {
        return 0;
    }
    uint64_t mask = 0;
    int placed = 0;
    while (placed < ones) {
        const uint64_t bit = 1ull << nextBelow(64);
        if (!(mask & bit)) {
            mask |= bit;
            ++placed;
        }
    }
    return mask;
}

std::vector<uint32_t>
Rng::weightedSampleDistinct(const std::vector<double> &weights, int k)
{
    const int n = static_cast<int>(weights.size());
    QEC_ASSERT(k <= n, "cannot sample more items than available");
    std::vector<uint32_t> chosen;
    chosen.reserve(k);
    // Successive draws from the residual distribution. k is small
    // (<= 24 in the importance sampler), so O(k*n) is fine.
    std::vector<bool> used(n, false);
    double total = 0.0;
    for (double w : weights) {
        total += w;
    }
    for (int pick = 0; pick < k; ++pick) {
        double u = nextDouble() * total;
        int selected = -1;
        for (int i = 0; i < n; ++i) {
            if (used[i]) {
                continue;
            }
            u -= weights[i];
            if (u <= 0.0) {
                selected = i;
                break;
            }
        }
        if (selected < 0) {
            // Numerical slack: take the last unused index.
            for (int i = n - 1; i >= 0; --i) {
                if (!used[i]) {
                    selected = i;
                    break;
                }
            }
        }
        QEC_ASSERT(selected >= 0, "weighted sampling ran out of items");
        used[selected] = true;
        total -= weights[selected];
        chosen.push_back(static_cast<uint32_t>(selected));
    }
    return chosen;
}

} // namespace qec
