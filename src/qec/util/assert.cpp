#include "qec/util/assert.hpp"

#include <cstdio>
#include <cstdlib>

#include "qec/util/realtime.hpp"

namespace qec
{

QEC_RT_COLD void
qecPanic(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

QEC_RT_COLD void
qecFatal(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

} // namespace qec
