/**
 * @file
 * Escalating idle-wait helper for lock-free polling loops.
 *
 * The serving front end's workers poll a lock-free ring; burning a
 * full core while the ring is empty starves co-scheduled producers
 * (and the 1-CPU bench container outright livelocks). SpinBackoff
 * escalates from cheap CPU-relax pauses through yields to short
 * sleeps, and reset() snaps back to the hot path the moment work
 * arrives. No allocation, no synchronization — each polling thread
 * owns its own instance.
 */

#ifndef QEC_UTIL_BACKOFF_HPP
#define QEC_UTIL_BACKOFF_HPP

#include <chrono>
#include <cstdint>
#include <thread>

#include "qec/util/realtime.hpp"

namespace qec
{

/** Hint the CPU that this is a spin-wait iteration. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

/**
 * Short parking nap for idle/parked polling loops. Outlined cold so
 * audited loops (the serve worker) carry a call to this named
 * symbol — exempted in tools/rt_audit/allow.txt as deliberate idle
 * parking — instead of a raw nanosleep relocation that would be
 * indistinguishable from a sleep on the decode latency path.
 */
QEC_RT_COLD inline void
idleNap(uint32_t us)
{
    std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/** Spin → yield → sleep escalation for idle polling loops. */
class SpinBackoff
{
  public:
    /** One idle iteration; call when a poll found nothing. */
    void
    pause()
    {
        if (idle_ < kSpinLimit) {
            ++idle_;
            cpuRelax();
        } else if (idle_ < kYieldLimit) {
            ++idle_;
            std::this_thread::yield();
        } else {
            // Deep idle: cap the wake-up latency at ~50us instead
            // of monopolizing a hardware thread.
            idleNap(50);
        }
    }

    /** Work was found — return to the cheap-spin regime. */
    void reset() { idle_ = 0; }

  private:
    static constexpr int kSpinLimit = 64;
    static constexpr int kYieldLimit = 192;
    int idle_ = 0;
};

} // namespace qec

#endif // QEC_UTIL_BACKOFF_HPP
