/**
 * @file
 * Real-time hot-path annotation for the static contract auditor.
 *
 * The repo's real-time contracts (zero steady-state allocation, no
 * locks, no clock reads, no throws, no nondeterminism — see
 * docs/api.md "Workspace & memory contract" and "Robustness
 * contract") are enforced dynamically by the counting-allocator and
 * sanitizer suites, and *statically* by tools/rt_audit: a whole-
 * program pass over the compiled objects that proves no annotated
 * root ever reaches a forbidden symbol through any direct call
 * chain (docs/static_analysis.md).
 *
 * Place QEC_REALTIME; as the first statement of every hot-path
 * entry point: Decoder::decode/decodeBlock and
 * Predecoder::predecode/predecodeBlock implementations, the
 * matching/oracle layer, SyndromeSubgraph build/refresh, the arena,
 * and the serve worker loop. The macro emits one address-
 * materializing instruction whose relocation names
 * qec_rt_root_anchor; the auditor treats any function whose body
 * relocates against that anchor as an audit root. The instruction
 * never loads or stores through the address, so the runtime cost is
 * one dead lea per call.
 *
 * What annotating a function obligates you to (the auditor enforces
 * it at build time, with the deliberate exceptions documented in
 * tools/rt_audit/allow.txt):
 *  - no allocation outside the workspace discipline (capacity-
 *    keeping members and the MonotonicArena cold grow path),
 *  - no locks, condition variables, or one-time-init guards,
 *  - no clock or sleep syscalls (inject a TimeSource instead),
 *  - no throwing, no I/O (funnel invariant failures through
 *    QEC_PANIC, whose outlined noreturn helper is exempt),
 *  - no nondeterminism (rand/random_device); use qec::Rng streams.
 *
 * Virtual calls carry no static edge, so the audit closes over
 * polymorphic dispatch by convention: every override reachable from
 * a hot path must itself be annotated (the registry-wide hot-path
 * surface is pinned by tools/rt_audit/baseline.txt, which fails CI
 * when an annotation is dropped).
 */

#ifndef QEC_UTIL_REALTIME_HPP
#define QEC_UTIL_REALTIME_HPP

extern "C" {
/**
 * Link-time marker the auditor scans relocations for. Never read or
 * written at runtime; defined in realtime.cpp.
 */
extern const char qec_rt_root_anchor[];
}

#if defined(__GNUC__) || defined(__clang__)
/**
 * Mark the enclosing function as a real-time audit root. Expands to
 * a single lea (address materialization) of qec_rt_root_anchor so
 * the function's object code carries a relocation naming the
 * anchor; the asm is volatile so no optimization level drops it.
 */
#define QEC_REALTIME                                                \
    do {                                                            \
        asm volatile("" ::"r"(qec_rt_root_anchor));                 \
    } while (0)
#else
// Non-GNU toolchains get no marker (and cannot run the auditor,
// which parses GNU binutils output anyway).
#define QEC_REALTIME                                                \
    do {                                                            \
    } while (0)
#endif

/**
 * Outlined-cold-path attribute: the auditor's allowlist exempts
 * deliberate cold paths (arena chunk growth, trace bookkeeping,
 * panic formatting) by symbol name, which only works when the cold
 * path *is* a symbol — QEC_RT_COLD keeps it from inlining back into
 * the annotated caller.
 */
#if defined(__GNUC__) || defined(__clang__)
#define QEC_RT_COLD __attribute__((noinline, cold))
#else
#define QEC_RT_COLD
#endif

/**
 * Outline-only attribute for warm helpers: like QEC_RT_COLD it
 * guarantees the helper stays a distinct symbol the allowlist can
 * name, but without `cold`, so code that runs on every call (e.g.
 * the qec::rt:: growth funnels, trace bookkeeping) keeps full
 * optimization and normal text placement.
 */
#if defined(__GNUC__) || defined(__clang__)
#define QEC_RT_OUTLINE __attribute__((noinline))
#else
#define QEC_RT_OUTLINE
#endif

#endif // QEC_UTIL_REALTIME_HPP
