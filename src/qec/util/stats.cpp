#include "qec/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace qec
{

void
WeightedStats::add(double value, double weight)
{
    if (numSamples == 0) {
        maxValue = value;
        minValue = value;
    } else {
        maxValue = std::max(maxValue, value);
        minValue = std::min(minValue, value);
    }
    weightSum += weight;
    weightedValueSum += weight * value;
    ++numSamples;
}

double
WeightedStats::mean() const
{
    return weightSum > 0.0 ? weightedValueSum / weightSum : 0.0;
}

void
RateStats::add(bool success)
{
    numSuccesses += success ? 1 : 0;
    ++numTrials;
}

void
RateStats::addMany(uint64_t successes, uint64_t trials)
{
    numSuccesses += successes;
    numTrials += trials;
}

double
RateStats::rate() const
{
    return numTrials > 0 ? static_cast<double>(numSuccesses) /
                               static_cast<double>(numTrials)
                         : 0.0;
}

double
RateStats::wilsonHalfWidth() const
{
    if (numTrials == 0) {
        return 0.0;
    }
    const double z = 1.96;
    const double n = static_cast<double>(numTrials);
    const double p = rate();
    return z * std::sqrt(p * (1.0 - p) / n + z * z / (4 * n * n)) /
           (1.0 + z * z / n);
}

} // namespace qec
