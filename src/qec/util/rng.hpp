/**
 * @file
 * Random number generation for Monte-Carlo sampling.
 *
 * Rng wraps a xoshiro256** generator (fast, high-quality, and
 * reproducible across platforms, unlike std::mt19937 seeded via
 * seed_seq). It adds the batch primitives the frame simulator needs:
 * 64-lane biased bit masks generated in O(1) expected time for small
 * probabilities.
 */

#ifndef QEC_UTIL_RNG_HPP
#define QEC_UTIL_RNG_HPP

#include <cstdint>
#include <vector>

namespace qec
{

/**
 * Deterministic pseudo-random generator for all sampling in the library.
 *
 * The same seed always produces the same stream, which the test suite
 * relies on for reproducibility.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /**
     * Counter-based stream derivation: an independent generator for
     * logical sample (stream, sample) under a run seed.
     *
     * The returned Rng is a pure function of its three arguments —
     * no global sequencing — so a parallel harness can hand every
     * sample its own stream and produce bit-identical draws
     * regardless of how samples are partitioned across threads or
     * in what order they run. The LER estimator uses
     * forSample(seed, k, i) for sample i of the k-fault batch; the
     * direct Monte-Carlo estimator uses forSample(seed, 0, block)
     * for each 64-lane block.
     */
    static Rng forSample(uint64_t seed, uint64_t stream,
                         uint64_t sample);

    /** Next raw 64 random bits. */
    uint64_t next64();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound) for bound >= 1. */
    uint64_t nextBelow(uint64_t bound);

    /** Bernoulli trial with success probability p. */
    bool nextBool(double p);

    /**
     * A 64-bit mask where each bit is independently 1 with probability
     * p. Uses binomial thinning: for small p the common case (a zero
     * mask) costs a single uniform draw.
     */
    uint64_t biasedMask64(double p);

    /** Binomial(n, p) sample via inversion (intended for small n*p). */
    int nextBinomial(int n, double p);

    /**
     * Sample k distinct indices from [0, n) with probability
     * proportional to the given weights (without replacement).
     * Used by the importance sampler to pick which error mechanisms
     * fire. Requires k <= n.
     */
    std::vector<uint32_t> weightedSampleDistinct(
        const std::vector<double> &weights, int k);

  private:
    uint64_t state_[4];
};

} // namespace qec

#endif // QEC_UTIL_RNG_HPP
