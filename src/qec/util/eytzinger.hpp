/**
 * @file
 * Cache-friendly branch-predictable search over a sorted array.
 *
 * A plain std::upper_bound over a large sorted array takes log2(N)
 * dependent loads scattered across the whole array — for the
 * importance sampler's ~1e4..1e5-entry cumulative-weight table that
 * is a chain of cache misses on every single mechanism draw, and
 * the sample stage was 42% of the pinball stack's serial time
 * (BENCH_ler_throughput.json). The Eytzinger (BFS / heap-order)
 * layout stores the implicit search tree breadth-first, so the
 * first ~4 levels of every search share one hot cache line region
 * and deeper probes walk an address pattern the prefetcher can
 * follow.
 *
 * The index is a pure accelerator: upperBound(v) returns exactly
 * std::upper_bound(sorted.begin(), sorted.end(), v) -
 * sorted.begin() — same strict `>` predicate, same tie handling —
 * which is what keeps every importance-sampled draw bit-identical
 * to the historical binary search (equivalence-tested against
 * std::upper_bound in tests/test_util.cpp).
 */

#ifndef QEC_UTIL_EYTZINGER_HPP
#define QEC_UTIL_EYTZINGER_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace qec
{

/** Eytzinger-layout upper_bound index over a sorted double array. */
class EytzingerIndex
{
  public:
    EytzingerIndex() = default;

    /** Build from an ascending-sorted array (copied). */
    explicit EytzingerIndex(std::span<const double> sorted)
    {
        build(sorted);
    }

    /** (Re)build from an ascending-sorted array (copied). */
    void
    build(std::span<const double> sorted)
    {
        n_ = sorted.size();
        values_.assign(n_ + 1, 0.0);
        ranks_.assign(n_ + 1, 0);
        size_t next = 0;
        fill(sorted, next, 1);
    }

    size_t size() const { return n_; }

    /**
     * Rank of the first element strictly greater than `value`
     * (n_ when no element is greater) — identical to
     * std::upper_bound(begin, end, value) - begin on the source
     * array, including tie handling among duplicates.
     */
    size_t
    upperBound(double value) const
    {
        size_t k = 1;
        size_t result = n_;
        while (k <= n_) {
            if (values_[k] > value) {
                result = ranks_[k];
                k = 2 * k;
            } else {
                k = 2 * k + 1;
            }
        }
        return result;
    }

  private:
    /** In-order fill: node k receives the next source element, so
     *  the BFS array is a permutation that preserves search order. */
    void
    fill(std::span<const double> sorted, size_t &next, size_t k)
    {
        if (k > n_) {
            return;
        }
        fill(sorted, next, 2 * k);
        values_[k] = sorted[next];
        ranks_[k] = static_cast<uint32_t>(next);
        ++next;
        fill(sorted, next, 2 * k + 1);
    }

    size_t n_ = 0;
    /** 1-based BFS-order mirror of the sorted array. */
    std::vector<double> values_;
    /** Original (sorted-order) rank of each BFS node. */
    std::vector<uint32_t> ranks_;
};

} // namespace qec

#endif // QEC_UTIL_EYTZINGER_HPP
