#include "qec/util/parallel_for.hpp"

#include <algorithm>
#include <thread>
#include <vector>

namespace qec
{

int
resolveHardwareThreads(int threads)
{
    if (threads > 0) {
        return threads;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
parallelWorkers(size_t n, int threads)
{
    if (n == 0) {
        return 0;
    }
    return static_cast<int>(std::min(
        static_cast<size_t>(resolveHardwareThreads(threads)), n));
}

void
parallelFor(
    size_t n, int threads,
    const std::function<void(size_t begin, size_t end, int worker)>
        &body)
{
    const int workers = parallelWorkers(n, threads);
    if (workers == 0) {
        return;
    }
    if (workers == 1) {
        body(0, n, 0);
        return;
    }
    // Contiguous static partition: slice w is [n*w/W, n*(w+1)/W),
    // a pure function of (n, W) — deterministic work assignment.
    // Workers 1..W-1 get their own threads; the calling thread
    // runs slice 0 itself instead of idling in join().
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (int w = 1; w < workers; ++w) {
        const size_t begin =
            n * static_cast<size_t>(w) / workers;
        const size_t end =
            n * (static_cast<size_t>(w) + 1) / workers;
        pool.emplace_back(
            [&body, begin, end, w]() { body(begin, end, w); });
    }
    body(0, n / static_cast<size_t>(workers), 0);
    for (std::thread &t : pool) {
        t.join();
    }
}

} // namespace qec
