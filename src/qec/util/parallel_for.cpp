#include "qec/util/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace qec
{

int
resolveHardwareThreads(int threads)
{
    if (threads > 0) {
        return threads;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
parallelWorkers(size_t n, int threads)
{
    if (n == 0) {
        return 0;
    }
    return static_cast<int>(std::min(
        static_cast<size_t>(resolveHardwareThreads(threads)), n));
}

void
parallelFor(
    size_t n, int threads,
    const std::function<void(size_t begin, size_t end, int worker)>
        &body)
{
    const int workers = parallelWorkers(n, threads);
    if (workers == 0) {
        return;
    }
    if (workers == 1) {
        body(0, n, 0);
        return;
    }
    // Work-stealing chunk queue: workers repeatedly claim the next
    // chunk from an atomic counter until the range is exhausted.
    // ~8 chunks per worker keeps claim overhead negligible while
    // letting fast workers absorb skewed per-index costs. Every
    // index is still covered exactly once; per-index results are
    // scheduling-independent (see the header's determinism
    // contract).
    const size_t chunk = std::max<size_t>(
        1, (n + static_cast<size_t>(workers) * 8 - 1) /
               (static_cast<size_t>(workers) * 8));
    std::atomic<size_t> next{0};
    const auto drain = [&body, &next, n, chunk](int worker) {
        while (true) {
            const size_t begin =
                next.fetch_add(chunk,
                               std::memory_order_relaxed);
            if (begin >= n) {
                return;
            }
            body(begin, std::min(n, begin + chunk), worker);
        }
    };
    // Workers 1..W-1 get their own threads; the calling thread
    // drains alongside them instead of idling in join().
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (int w = 1; w < workers; ++w) {
        pool.emplace_back([&drain, w]() { drain(w); });
    }
    drain(0);
    for (std::thread &t : pool) {
        t.join();
    }
}

} // namespace qec
