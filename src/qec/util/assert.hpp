/**
 * @file
 * Fatal/panic helpers in the spirit of gem5's logging.hh.
 *
 * qecPanic() is for internal invariant violations (library bugs);
 * qecFatal() is for unusable user input (bad configuration).
 *
 * Both are defined out of line (assert.cpp) and marked cold: hot-
 * path functions may QEC_ASSERT freely because the failure path —
 * the only part that formats and does I/O — is a single outlined
 * noreturn symbol, which the static real-time auditor exempts by
 * name (the process is dying; allocation and I/O after a contract
 * breach are acceptable). Inlining the fprintf into callers would
 * instead put denylisted I/O relocations in every hot function.
 */

#ifndef QEC_UTIL_ASSERT_HPP
#define QEC_UTIL_ASSERT_HPP

namespace qec
{

/** Abort with a message; use for "should never happen" conditions. */
[[noreturn]] void qecPanic(const char *file, int line,
                           const char *msg);

/** Exit with a message; use for invalid user-supplied configuration. */
[[noreturn]] void qecFatal(const char *file, int line,
                           const char *msg);

} // namespace qec

#define QEC_PANIC(msg) ::qec::qecPanic(__FILE__, __LINE__, (msg))
#define QEC_FATAL(msg) ::qec::qecFatal(__FILE__, __LINE__, (msg))

/** Always-on invariant check (not compiled out in release builds). */
#define QEC_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::qec::qecPanic(__FILE__, __LINE__, (msg));                     \
        }                                                                   \
    } while (0)

#endif // QEC_UTIL_ASSERT_HPP
