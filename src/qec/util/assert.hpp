/**
 * @file
 * Fatal/panic helpers in the spirit of gem5's logging.hh.
 *
 * qecPanic() is for internal invariant violations (library bugs);
 * qecFatal() is for unusable user input (bad configuration).
 */

#ifndef QEC_UTIL_ASSERT_HPP
#define QEC_UTIL_ASSERT_HPP

#include <cstdio>
#include <cstdlib>

namespace qec
{

/** Abort with a message; use for "should never happen" conditions. */
[[noreturn]] inline void
qecPanic(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

/** Exit with a message; use for invalid user-supplied configuration. */
[[noreturn]] inline void
qecFatal(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

} // namespace qec

#define QEC_PANIC(msg) ::qec::qecPanic(__FILE__, __LINE__, (msg))
#define QEC_FATAL(msg) ::qec::qecFatal(__FILE__, __LINE__, (msg))

/** Always-on invariant check (not compiled out in release builds). */
#define QEC_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::qec::qecPanic(__FILE__, __LINE__, (msg));                     \
        }                                                                   \
    } while (0)

#endif // QEC_UTIL_ASSERT_HPP
