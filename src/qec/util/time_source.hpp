/**
 * @file
 * Injectable monotonic clock.
 *
 * Deadline checks, decode-time budgets, and retry backoff all read
 * wall time on hot paths that tests must drive deterministically. A
 * TimeSource abstracts the clock behind two calls (nowNs / sleepNs)
 * so production code runs on the steady clock while tests substitute
 * FakeTimeSource and advance virtual time by hand — a deadline test
 * never actually sleeps, and an escalation test fires the budget at
 * an exact, reproducible instant.
 */

#ifndef QEC_UTIL_TIME_SOURCE_HPP
#define QEC_UTIL_TIME_SOURCE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace qec
{

/** Monotonic nanosecond clock; implementations are thread-safe. */
class TimeSource
{
  public:
    virtual ~TimeSource() = default;

    /** Monotonic nanoseconds since an arbitrary epoch. */
    virtual uint64_t nowNs() = 0;

    /** Block (or advance virtual time) for `ns` nanoseconds. */
    virtual void sleepNs(uint64_t ns) = 0;
};

/** The process steady clock (production default). */
class SteadyTimeSource final : public TimeSource
{
  public:
    uint64_t
    nowNs() override
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    void
    sleepNs(uint64_t ns) override
    {
        std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    }
};

/** Shared steady-clock instance (stateless, safe to share). */
inline TimeSource &
steadyTimeSource()
{
    static SteadyTimeSource source;
    return source;
}

/**
 * Deterministic virtual clock for tests.
 *
 * Time only moves when a thread calls advance()/set() or sleeps:
 * sleepNs() advances the shared virtual clock by the requested
 * amount instead of blocking, so backoff loops driven by a fake
 * clock terminate immediately and deterministically. Starts at a
 * nonzero instant so "tick 0" stays usable as a never-stamped
 * sentinel.
 */
class FakeTimeSource final : public TimeSource
{
  public:
    explicit FakeTimeSource(uint64_t startNs = 1'000'000)
        : nowNs_(startNs)
    {
    }

    uint64_t
    nowNs() override
    {
        return nowNs_.load(std::memory_order_acquire);
    }

    void
    sleepNs(uint64_t ns) override
    {
        advance(ns);
    }

    /** Move virtual time forward by `ns`. */
    void
    advance(uint64_t ns)
    {
        nowNs_.fetch_add(ns, std::memory_order_acq_rel);
    }

  private:
    std::atomic<uint64_t> nowNs_;
};

} // namespace qec

#endif // QEC_UTIL_TIME_SOURCE_HPP
