/**
 * @file
 * Deterministic fork/join helper shared by the batched decode path
 * and the LER evaluation engine.
 *
 * parallelFor splits [0, n) into at most `threads` contiguous
 * slices and runs the body once per slice, each slice on its own
 * worker thread (inline on the calling thread when a single worker
 * suffices). The partition is a pure function of (n, threads), so
 * callers that key per-index work off the index itself — e.g.
 * counter-based RNG streams via Rng::forSample — produce results
 * that are bit-identical for any thread count.
 */

#ifndef QEC_UTIL_PARALLEL_FOR_HPP
#define QEC_UTIL_PARALLEL_FOR_HPP

#include <cstddef>
#include <functional>

namespace qec
{

/**
 * The project-wide thread-count convention, resolved: values <= 0
 * mean one worker per hardware thread; positive values pass
 * through. Always returns >= 1.
 */
int resolveHardwareThreads(int threads);

/**
 * Run `body(begin, end, worker)` over contiguous slices of [0, n).
 *
 * @param n        iteration-space size; n == 0 returns immediately
 * @param threads  requested worker count; <= 0 means one per
 *                 hardware thread (resolveHardwareThreads), then
 *                 clamped to [1, n]. With one effective worker the
 *                 body runs inline on the calling thread (no
 *                 spawn).
 * @param body     slice handler; `worker` is the slice index in
 *                 [0, workers). The body must only touch state
 *                 disjoint between slices (e.g. per-index output
 *                 cells); exceptions must not escape it.
 */
void parallelFor(
    size_t n, int threads,
    const std::function<void(size_t begin, size_t end, int worker)>
        &body);

/**
 * Effective worker count parallelFor would use:
 * clamp(resolveHardwareThreads(threads), 1, n). Exposed so callers
 * can size per-worker scratch state.
 */
int parallelWorkers(size_t n, int threads);

} // namespace qec

#endif // QEC_UTIL_PARALLEL_FOR_HPP
