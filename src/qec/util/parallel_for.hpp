/**
 * @file
 * Deterministic fork/join helper shared by the batched decode path
 * and the LER evaluation engine.
 *
 * parallelFor runs `body` over chunks of [0, n) pulled from a
 * shared atomic counter (work stealing): fast workers take more
 * chunks, so skewed per-index costs — e.g. the Astrea-G high-HW
 * search tails — no longer idle the other workers the way a static
 * partition did. A worker may therefore receive several
 * (begin, end) calls, in any order.
 *
 * Determinism contract: which worker runs which chunk is
 * scheduling-dependent, so bodies must key all per-index work off
 * the index itself (e.g. counter-based RNG streams via
 * Rng::forSample) and use per-worker state only for reusable
 * scratch or commutative accumulation. Every caller in this
 * codebase follows that rule, which is what keeps estimateLer /
 * decodeBatch bit-identical for any thread count even with dynamic
 * scheduling (enforced by tests/test_parallel_ler.cpp).
 */

#ifndef QEC_UTIL_PARALLEL_FOR_HPP
#define QEC_UTIL_PARALLEL_FOR_HPP

#include <cstddef>
#include <functional>

namespace qec
{

/**
 * The project-wide thread-count convention, resolved: values <= 0
 * mean one worker per hardware thread; positive values pass
 * through. Always returns >= 1.
 */
int resolveHardwareThreads(int threads);

/**
 * Run `body(begin, end, worker)` over chunks of [0, n), pulled
 * from an atomic chunk queue by up to `threads` workers.
 *
 * @param n        iteration-space size; n == 0 returns immediately
 * @param threads  requested worker count; <= 0 means one per
 *                 hardware thread (resolveHardwareThreads), then
 *                 clamped to [1, n]. With one effective worker the
 *                 body runs inline on the calling thread (no
 *                 spawn, single call covering [0, n)).
 * @param body     chunk handler; `worker` is the executing
 *                 worker's index in [0, workers) and may see
 *                 several chunks. The body must key per-index work
 *                 off the index (not the worker or chunk bounds),
 *                 touch only state disjoint between indices (e.g.
 *                 per-index output cells) or owned by `worker`,
 *                 and accumulate per-worker state commutatively;
 *                 exceptions must not escape it.
 */
void parallelFor(
    size_t n, int threads,
    const std::function<void(size_t begin, size_t end, int worker)>
        &body);

/**
 * Effective worker count parallelFor would use:
 * clamp(resolveHardwareThreads(threads), 1, n). Exposed so callers
 * can size per-worker scratch state.
 */
int parallelWorkers(size_t n, int threads);

} // namespace qec

#endif // QEC_UTIL_PARALLEL_FOR_HPP
