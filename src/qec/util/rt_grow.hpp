/**
 * @file
 * Outlined std::vector growth funnels for audited hot paths.
 *
 * The zero-allocation discipline (docs/api.md "Workspace & memory
 * contract") lets capacity-keeping workspace vectors grow while a
 * working set is still finding its high-water mark; the counting-
 * allocator suite proves the growth converges to zero in steady
 * state. The *static* auditor (tools/rt_audit) cannot see that
 * convergence — it sees relocations — so all hot-path vector
 * operations that may allocate must go through a named symbol the
 * allowlist can exempt. At -O3 GCC inlines the libstdc++ growth
 * helpers (reserve, _M_default_append, even _M_realloc_insert for
 * small element types) straight into the caller, which would leave
 * raw `operator new` relocations in an audited body. These wrappers
 * are QEC_RT_OUTLINE (noinline, not cold: several run on every
 * decode), so every such operation compiles to one call against a
 * `qec::rt::*` symbol — exempted by tools/rt_audit/allow.txt with
 * the warmup-growth justification, and kept honest dynamically by
 * the counting allocator.
 *
 * Inside an audited function, use these instead of the member calls
 * whenever the vector is a capacity-keeping workspace member:
 *
 *     rt::assignFill(v, n, x)      for v.assign(n, x)
 *     rt::assignRange(v, f, l)     for v.assign(f, l)
 *     rt::resizeTo(v, n)           for v.resize(n)
 *     rt::resizeFill(v, n, x)      for v.resize(n, x)
 *     rt::reserveTo(v, n)          for v.reserve(n)
 *     rt::pushBack(v, x)           for v.push_back(x)
 *
 * A plain member call in an audited body is how the auditor flags a
 * *stray* container (a temporary vector constructed on the hot
 * path): those must be moved into the workspace, not funneled.
 */

#ifndef QEC_UTIL_RT_GROW_HPP
#define QEC_UTIL_RT_GROW_HPP

#include <cstddef>
#include <vector>

#include "qec/util/realtime.hpp"

namespace qec::rt
{

template <typename T, typename A>
QEC_RT_OUTLINE void
assignFill(std::vector<T, A> &v, size_t n, const T &value)
{
    v.assign(n, value);
}

template <typename T, typename A, typename It>
QEC_RT_OUTLINE void
assignRange(std::vector<T, A> &v, It first, It last)
{
    v.assign(first, last);
}

template <typename T, typename A>
QEC_RT_OUTLINE void
resizeTo(std::vector<T, A> &v, size_t n)
{
    v.resize(n);
}

template <typename T, typename A>
QEC_RT_OUTLINE void
resizeFill(std::vector<T, A> &v, size_t n, const T &value)
{
    v.resize(n, value);
}

template <typename T, typename A>
QEC_RT_OUTLINE void
reserveTo(std::vector<T, A> &v, size_t n)
{
    v.reserve(n);
}

template <typename T, typename A>
QEC_RT_OUTLINE void
pushBack(std::vector<T, A> &v, const T &value)
{
    v.push_back(value);
}

template <typename T, typename A>
QEC_RT_OUTLINE T &
emplaceBack(std::vector<T, A> &v)
{
    return v.emplace_back();
}

template <typename T, typename A, typename It>
QEC_RT_OUTLINE void
appendRange(std::vector<T, A> &v, It first, It last)
{
    v.insert(v.end(), first, last);
}

} // namespace qec::rt

#endif // QEC_UTIL_RT_GROW_HPP
