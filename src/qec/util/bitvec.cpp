#include "qec/util/bitvec.hpp"

#include <bit>

#include "qec/util/assert.hpp"

namespace qec
{

BitVec::BitVec(size_t num_bits)
    : numBits(num_bits), words((num_bits + 63) / 64, 0)
{
}

bool
BitVec::get(size_t i) const
{
    QEC_ASSERT(i < numBits, "BitVec::get out of range");
    return (words[i >> 6] >> (i & 63)) & 1;
}

void
BitVec::set(size_t i, bool value)
{
    QEC_ASSERT(i < numBits, "BitVec::set out of range");
    const uint64_t bit = 1ull << (i & 63);
    if (value) {
        words[i >> 6] |= bit;
    } else {
        words[i >> 6] &= ~bit;
    }
}

void
BitVec::flip(size_t i)
{
    QEC_ASSERT(i < numBits, "BitVec::flip out of range");
    words[i >> 6] ^= 1ull << (i & 63);
}

void
BitVec::clear()
{
    for (auto &w : words) {
        w = 0;
    }
}

BitVec &
BitVec::operator^=(const BitVec &other)
{
    QEC_ASSERT(numBits == other.numBits, "BitVec size mismatch in xor");
    for (size_t w = 0; w < words.size(); ++w) {
        words[w] ^= other.words[w];
    }
    return *this;
}

size_t
BitVec::popcount() const
{
    size_t total = 0;
    for (uint64_t w : words) {
        total += std::popcount(w);
    }
    return total;
}

bool
BitVec::none() const
{
    for (uint64_t w : words) {
        if (w) {
            return false;
        }
    }
    return true;
}

std::vector<uint32_t>
BitVec::onesIndices() const
{
    std::vector<uint32_t> out;
    forEachSetBit([&](uint32_t i) { out.push_back(i); });
    return out;
}

} // namespace qec
