/**
 * @file
 * A dynamic bit vector with word-level access.
 *
 * Syndromes, Pauli frames, and GF(2) rows all need a compact bit
 * container with fast XOR, popcount, and per-word access for the
 * 64-shot batch simulator. std::vector<bool> provides none of that,
 * so we roll a small one.
 */

#ifndef QEC_UTIL_BITVEC_HPP
#define QEC_UTIL_BITVEC_HPP

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qec
{

/**
 * Invoke fn(bit_index) for every set bit of a word, ascending — a
 * countr_zero walk whose cost is proportional to the popcount, not
 * the word width. The shared idiom for extracting sparse defects
 * from 64-lane batch words (Stim-style word iteration).
 */
template <typename Fn>
inline void
forEachSetBit(uint64_t word, Fn &&fn)
{
    while (word) {
        fn(std::countr_zero(word));
        word &= word - 1;
    }
}

/** Mask of the low `lanes` bits — the active-lane word of a batch
 *  block holding `lanes` (in [1, 64]) shots. */
inline uint64_t
laneMask64(int lanes)
{
    return lanes >= 64 ? ~uint64_t{0}
                       : (uint64_t{1} << lanes) - 1;
}

/** Fixed-length bit vector backed by 64-bit words. */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct with all bits cleared. */
    explicit BitVec(size_t num_bits);

    /** Number of addressable bits. */
    size_t size() const { return numBits; }

    /** Read one bit. */
    bool get(size_t i) const;

    /** Write one bit. */
    void set(size_t i, bool value);

    /** XOR one bit with value. */
    void flip(size_t i);

    /** Clear all bits. */
    void clear();

    /** XOR another vector of the same length into this one. */
    BitVec &operator^=(const BitVec &other);

    bool operator==(const BitVec &other) const = default;

    /** Number of set bits. */
    size_t popcount() const;

    /** True if no bit is set. */
    bool none() const;

    /** Indices of all set bits, ascending. Prefer forEachSetBit in
     *  hot paths — this allocates the result vector. */
    std::vector<uint32_t> onesIndices() const;

    /** Invoke fn(index) for every set bit, ascending, without
     *  allocating (popcount-proportional word walk). */
    template <typename Fn>
    void
    forEachSetBit(Fn &&fn) const
    {
        for (size_t w = 0; w < words.size(); ++w) {
            qec::forEachSetBit(words[w], [&](int b) {
                fn(static_cast<uint32_t>(w * 64 + b));
            });
        }
    }

    /** Direct word access for batch kernels. */
    uint64_t word(size_t w) const { return words[w]; }
    uint64_t &word(size_t w) { return words[w]; }
    size_t numWords() const { return words.size(); }

  private:
    size_t numBits = 0;
    std::vector<uint64_t> words;
};

} // namespace qec

#endif // QEC_UTIL_BITVEC_HPP
