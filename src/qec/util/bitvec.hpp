/**
 * @file
 * A dynamic bit vector with word-level access.
 *
 * Syndromes, Pauli frames, and GF(2) rows all need a compact bit
 * container with fast XOR, popcount, and per-word access for the
 * 64-shot batch simulator. std::vector<bool> provides none of that,
 * so we roll a small one.
 */

#ifndef QEC_UTIL_BITVEC_HPP
#define QEC_UTIL_BITVEC_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qec
{

/** Fixed-length bit vector backed by 64-bit words. */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct with all bits cleared. */
    explicit BitVec(size_t num_bits);

    /** Number of addressable bits. */
    size_t size() const { return numBits; }

    /** Read one bit. */
    bool get(size_t i) const;

    /** Write one bit. */
    void set(size_t i, bool value);

    /** XOR one bit with value. */
    void flip(size_t i);

    /** Clear all bits. */
    void clear();

    /** XOR another vector of the same length into this one. */
    BitVec &operator^=(const BitVec &other);

    bool operator==(const BitVec &other) const = default;

    /** Number of set bits. */
    size_t popcount() const;

    /** True if no bit is set. */
    bool none() const;

    /** Indices of all set bits, ascending. */
    std::vector<uint32_t> onesIndices() const;

    /** Direct word access for batch kernels. */
    uint64_t word(size_t w) const { return words[w]; }
    uint64_t &word(size_t w) { return words[w]; }
    size_t numWords() const { return words.size(); }

  private:
    size_t numBits = 0;
    std::vector<uint64_t> words;
};

} // namespace qec

#endif // QEC_UTIL_BITVEC_HPP
