/**
 * @file
 * Monotonic scratch arena for the zero-allocation decode hot path.
 *
 * A MonotonicArena hands out raw bump-allocated storage from a
 * chunked byte buffer; reset() rewinds the cursor while keeping the
 * high-water capacity, so a call path that resets the arena at the
 * top of every decode performs heap allocations only while its
 * working-set high-water mark is still growing ("warmup"), and none
 * at all in steady state.
 *
 * ArenaVector<T> is the typed scratch-vector companion: a small
 * push_back container whose storage lives in the arena. Growth
 * re-bumps a doubled span and copies (the old span is simply
 * abandoned until the next reset — the arena is monotonic), so it
 * is intended for transient per-decode lists whose lifetime ends
 * before the owning component returns.
 *
 * Neither type is thread-safe; the decode path gives every worker
 * thread its own DecodeWorkspace (and therefore its own arena).
 */

#ifndef QEC_UTIL_ARENA_HPP
#define QEC_UTIL_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace qec
{

/** Chunked bump allocator; reset() keeps the high-water capacity. */
class MonotonicArena
{
  public:
    explicit MonotonicArena(size_t initial_bytes = 4096)
        : initialBytes_(initial_bytes)
    {
    }

    MonotonicArena(const MonotonicArena &) = delete;
    MonotonicArena &operator=(const MonotonicArena &) = delete;

    /**
     * Bump-allocate `bytes` aligned to `align` (a power of two).
     * The storage is uninitialized and valid until the next
     * reset(). Allocates a new chunk only when the current one is
     * exhausted.
     */
    void *allocate(size_t bytes, size_t align);

    /** Typed helper: uninitialized storage for `count` Ts. */
    template <typename T>
    T *
    allocate(size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena storage is never destructed");
        return static_cast<T *>(
            allocate(count * sizeof(T), alignof(T)));
    }

    /**
     * Rewind to empty, keeping capacity. When the last cycle
     * overflowed into extra chunks, they are coalesced into one
     * chunk of the total size (a single allocation now instead of
     * repeated overflow later), so the per-cycle allocation count
     * converges to zero as the working set stabilizes.
     */
    void reset();

    /** Bytes handed out since the last reset. */
    size_t used() const { return used_; }

    /** Total chunk capacity currently owned. */
    size_t capacity() const;

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        size_t size = 0;
    };

    void addChunk(size_t min_bytes);
    void coalesce();

    std::vector<Chunk> chunks_;
    size_t initialBytes_;
    size_t active_ = 0; //!< Index of the chunk being bumped.
    size_t cursor_ = 0; //!< Bump offset within the active chunk.
    size_t used_ = 0;
};

/**
 * Growable typed scratch over a MonotonicArena. Supports the few
 * operations the decode path needs (push_back, clear, indexing,
 * iteration); growth abandons the old span inside the arena.
 */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is never destructed");

  public:
    explicit ArenaVector(MonotonicArena &arena,
                         size_t initial_capacity = 8)
        : arena_(&arena)
    {
        capacity_ = initial_capacity < 4 ? 4 : initial_capacity;
        data_ = arena_->allocate<T>(capacity_);
    }

    // Copies would alias the same arena span and then grow apart;
    // pass ArenaVectors by reference.
    ArenaVector(const ArenaVector &) = delete;
    ArenaVector &operator=(const ArenaVector &) = delete;

    void
    push_back(const T &value)
    {
        if (size_ == capacity_) {
            grow();
        }
        ::new (static_cast<void *>(data_ + size_)) T(value);
        ++size_;
    }

    void clear() { size_ = 0; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    T &operator[](size_t i) { return data_[i]; }
    const T &operator[](size_t i) const { return data_[i]; }
    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }
    T *data() { return data_; }
    const T *data() const { return data_; }

  private:
    void
    grow()
    {
        const size_t next = capacity_ * 2;
        T *moved = arena_->allocate<T>(next);
        for (size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void *>(moved + i)) T(data_[i]);
        }
        data_ = moved;
        capacity_ = next;
    }

    MonotonicArena *arena_;
    T *data_ = nullptr;
    size_t size_ = 0;
    size_t capacity_ = 0;
};

} // namespace qec

#endif // QEC_UTIL_ARENA_HPP
