#include "qec/util/arena.hpp"

#include <algorithm>

#include "qec/util/realtime.hpp"

namespace qec
{

// The arena's only heap traffic. Outlined and cold so the audit
// can exempt it by name (tools/rt_audit/allow.txt): chunk growth
// happens while the per-decode working set is still finding its
// high-water mark, and the counting-allocator suite proves it
// converges to zero in steady state.
QEC_RT_COLD void
MonotonicArena::addChunk(size_t min_bytes)
{
    size_t size = chunks_.empty()
                      ? std::max(initialBytes_, min_bytes)
                      : std::max(chunks_.back().size * 2,
                                 min_bytes);
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(size);
    chunk.size = size;
    chunks_.push_back(std::move(chunk));
}

void *
MonotonicArena::allocate(size_t bytes, size_t align)
{
    QEC_REALTIME;
    if (bytes == 0) {
        bytes = 1;
    }
    while (true) {
        if (active_ < chunks_.size()) {
            Chunk &chunk = chunks_[active_];
            // Align the actual address, not the chunk offset — the
            // chunk base is only guaranteed the default operator
            // new alignment, so offset-aligning would silently
            // misalign any stricter request (e.g. SIMD types).
            const uintptr_t base = reinterpret_cast<uintptr_t>(
                chunk.data.get());
            const uintptr_t aligned =
                (base + cursor_ + align - 1) & ~(align - 1);
            const size_t offset = aligned - base;
            if (offset + bytes <= chunk.size) {
                cursor_ = offset + bytes;
                used_ += bytes;
                return chunk.data.get() + offset;
            }
            // Exhausted: move on (a later chunk may already exist
            // from a previous cycle's high-water mark).
            ++active_;
            cursor_ = 0;
            continue;
        }
        addChunk(bytes + align);
    }
}

// Outlined like addChunk (and exempted with it): coalescing frees
// the overflow chunks of a still-growing cycle, which only happens
// while warming up — a steady-state reset() never enters here.
QEC_RT_COLD void
MonotonicArena::coalesce()
{
    const size_t total = capacity();
    chunks_.clear();
    addChunk(total);
}

void
MonotonicArena::reset()
{
    QEC_REALTIME;
    if (chunks_.size() > 1) {
        // Coalesce so the next cycle fits in one chunk and the
        // steady state stops allocating.
        coalesce();
    }
    active_ = 0;
    cursor_ = 0;
    used_ = 0;
}

size_t
MonotonicArena::capacity() const
{
    size_t total = 0;
    for (const Chunk &chunk : chunks_) {
        total += chunk.size;
    }
    return total;
}

} // namespace qec
