/**
 * @file
 * Streaming statistics accumulators used by the evaluation harness.
 */

#ifndef QEC_UTIL_STATS_HPP
#define QEC_UTIL_STATS_HPP

#include <cstddef>
#include <cstdint>

namespace qec
{

/**
 * Weighted streaming accumulator for mean / max / total.
 *
 * The importance sampler attaches an occurrence weight to every sample
 * (Eq. 1 of the paper); latency and coverage statistics are therefore
 * weighted averages rather than plain ones.
 */
class WeightedStats
{
  public:
    /** Record one observation with the given weight (default 1). */
    void add(double value, double weight = 1.0);

    /** Weighted arithmetic mean; 0 if nothing was recorded. */
    double mean() const;

    /** Largest recorded value; 0 if nothing was recorded. */
    double max() const { return maxValue; }

    /** Smallest recorded value; 0 if nothing was recorded. */
    double min() const { return minValue; }

    /** Sum of all weights. */
    double totalWeight() const { return weightSum; }

    /** Number of add() calls. */
    size_t count() const { return numSamples; }

  private:
    double weightSum = 0.0;
    double weightedValueSum = 0.0;
    double maxValue = 0.0;
    double minValue = 0.0;
    size_t numSamples = 0;
};

/** Bernoulli success-rate accumulator with a Wilson confidence bound. */
class RateStats
{
  public:
    /** Record one trial. */
    void add(bool success);

    /** Record many trials at once. */
    void addMany(uint64_t successes, uint64_t trials);

    double rate() const;
    uint64_t successes() const { return numSuccesses; }
    uint64_t trials() const { return numTrials; }

    /** Half-width of the 95% Wilson score interval. */
    double wilsonHalfWidth() const;

  private:
    uint64_t numSuccesses = 0;
    uint64_t numTrials = 0;
};

} // namespace qec

#endif // QEC_UTIL_STATS_HPP
