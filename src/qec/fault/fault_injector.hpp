/**
 * @file
 * Deterministic fault injection for the serve subsystem.
 *
 * A robustness claim ("the server never strands an accepted
 * request") is only as strong as the faults it was tested against.
 * FaultInjector produces a seeded schedule of the failure modes a
 * production decode service actually sees — worker stalls (GC
 * pause, page fault, NUMA migration), admission storms (every slot
 * in flight), corrupted streams (a detector id past the graph), and
 * misbehaving response handlers — and threads them through
 * DecodeServer behind a nullable hook: a server built without an
 * injector takes one null-pointer branch per request and nothing
 * else.
 *
 * Determinism contract: every decision is a pure function of
 * (seed, site, k) via the counter-based Rng, where k is the site's
 * own atomic draw counter. Two runs with the same seed and plan see
 * the same multiset of fired faults per site regardless of thread
 * interleaving — the chaos suite exploits this to assert exact
 * counter reconciliation.
 */

#ifndef QEC_FAULT_FAULT_INJECTOR_HPP
#define QEC_FAULT_FAULT_INJECTOR_HPP

#include <atomic>
#include <cstdint>

#include "qec/serve/stream.hpp"

namespace qec
{

/** Per-site fault rates (probability per opportunity). */
struct FaultPlan
{
    /** Chance a worker stalls for stallNs after dequeuing. */
    double stallProbability = 0.0;
    /** Injected stall duration (through the server's TimeSource). */
    uint64_t stallNs = 100'000;
    /** Chance a request's stream is corrupted before decoding. */
    double corruptProbability = 0.0;
    /** Chance an admission is refused outright (simulated storm). */
    double rejectProbability = 0.0;
    /**
     * Chance a throw-aware response handler throws. The injector
     * only makes the decision; the test's handler consults
     * injectThrow() and does the throwing.
     */
    double throwProbability = 0.0;
};

/** Seeded fault schedule; all methods are thread-safe. */
class FaultInjector
{
  public:
    explicit FaultInjector(uint64_t seed, FaultPlan plan = {});

    const FaultPlan &plan() const { return plan_; }

    /** Decide whether this admission is refused. */
    bool injectReject();

    /** Decide whether to stall; fills *ns with the duration. */
    bool injectStall(uint64_t *ns);

    /** Decide whether a response handler should throw. */
    bool injectThrow();

    /**
     * Decide whether to corrupt `stream`. When the fault fires, the
     * stream is copied into `scratch` (capacity reused across
     * calls), its last defect is replaced by an id past
     * `numDetectors` (an empty stream gains one such defect in its
     * final layer), and &scratch is returned; otherwise &stream is
     * returned untouched. The corruption keeps defect ids ascending
     * so it is caught by the out-of-range check, not by accident.
     */
    const SyndromeStream *maybeCorrupt(const SyndromeStream &stream,
                                       SyndromeStream &scratch,
                                       uint32_t numDetectors);

    /**
     * Manually wedge worker `worker` (in [0, 64)): the worker parks
     * after its next dequeue until release(). Drives the watchdog
     * tests; independent of the probabilistic schedule.
     */
    void wedge(int worker);
    void release(int worker);
    bool wedged(int worker) const;

    /** Faults fired so far, per site. */
    struct Counts
    {
        uint64_t stalls = 0;
        uint64_t corrupted = 0;
        uint64_t rejects = 0;
        uint64_t throws = 0;
    };

    Counts counts() const;

  private:
    /** Decision-stream ids (the `stream` argument of forSample). */
    enum Site : uint64_t
    {
        kStallSite = 1,
        kCorruptSite = 2,
        kRejectSite = 3,
        kThrowSite = 4,
    };

    bool fire(Site site, double probability,
              std::atomic<uint64_t> &draws,
              std::atomic<uint64_t> &fired);

    uint64_t seed_;
    FaultPlan plan_;

    std::atomic<uint64_t> stallDraws_{0};
    std::atomic<uint64_t> corruptDraws_{0};
    std::atomic<uint64_t> rejectDraws_{0};
    std::atomic<uint64_t> throwDraws_{0};
    std::atomic<uint64_t> stallsFired_{0};
    std::atomic<uint64_t> corruptedFired_{0};
    std::atomic<uint64_t> rejectsFired_{0};
    std::atomic<uint64_t> throwsFired_{0};
    std::atomic<uint64_t> wedgedMask_{0};
};

} // namespace qec

#endif // QEC_FAULT_FAULT_INJECTOR_HPP
