#include "qec/fault/fault_injector.hpp"

#include "qec/util/assert.hpp"
#include "qec/util/rng.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

FaultInjector::FaultInjector(uint64_t seed, FaultPlan plan)
    : seed_(seed), plan_(plan)
{
    QEC_ASSERT(plan.stallProbability >= 0.0 &&
                   plan.stallProbability <= 1.0 &&
                   plan.corruptProbability >= 0.0 &&
                   plan.corruptProbability <= 1.0 &&
                   plan.rejectProbability >= 0.0 &&
                   plan.rejectProbability <= 1.0 &&
                   plan.throwProbability >= 0.0 &&
                   plan.throwProbability <= 1.0,
               "fault probabilities must lie in [0, 1]");
}

bool
FaultInjector::fire(Site site, double probability,
                    std::atomic<uint64_t> &draws,
                    std::atomic<uint64_t> &fired)
{
    if (probability <= 0.0) {
        return false;
    }
    // The k-th draw of a site is decision k of that site's stream
    // no matter which thread makes it: the multiset of decisions is
    // a pure function of (seed, site, plan).
    const uint64_t k =
        draws.fetch_add(1, std::memory_order_relaxed);
    Rng rng = Rng::forSample(seed_, site, k);
    if (rng.nextDouble() >= probability) {
        return false;
    }
    fired.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
FaultInjector::injectReject()
{
    return fire(kRejectSite, plan_.rejectProbability, rejectDraws_,
                rejectsFired_);
}

bool
FaultInjector::injectStall(uint64_t *ns)
{
    if (!fire(kStallSite, plan_.stallProbability, stallDraws_,
              stallsFired_)) {
        return false;
    }
    *ns = plan_.stallNs;
    return true;
}

bool
FaultInjector::injectThrow()
{
    return fire(kThrowSite, plan_.throwProbability, throwDraws_,
                throwsFired_);
}

const SyndromeStream *
FaultInjector::maybeCorrupt(const SyndromeStream &stream,
                            SyndromeStream &scratch,
                            uint32_t numDetectors)
{
    if (!fire(kCorruptSite, plan_.corruptProbability, corruptDraws_,
              corruptedFired_)) {
        return &stream;
    }
    scratch.rounds = stream.rounds;
    scratch.detectorsPerRound = stream.detectorsPerRound;
    scratch.observedObs = stream.observedObs;
    rt::assignRange(scratch.defects, stream.defects.begin(),
                    stream.defects.end());
    rt::assignRange(scratch.layerOffsets,
                    stream.layerOffsets.begin(),
                    stream.layerOffsets.end());
    if (scratch.defects.empty()) {
        // Give the empty stream one impossible defect in its final
        // layer so the CSR stays consistent.
        rt::pushBack(scratch.defects, numDetectors);
        scratch.layerOffsets.back() = 1;
    } else {
        // Ids stay ascending: numDetectors exceeds every valid id.
        scratch.defects.back() = numDetectors;
    }
    return &scratch;
}

void
FaultInjector::wedge(int worker)
{
    QEC_ASSERT(worker >= 0 && worker < 64,
               "wedge() supports workers 0..63");
    wedgedMask_.fetch_or(uint64_t{1} << worker,
                         std::memory_order_release);
}

void
FaultInjector::release(int worker)
{
    QEC_ASSERT(worker >= 0 && worker < 64,
               "release() supports workers 0..63");
    wedgedMask_.fetch_and(~(uint64_t{1} << worker),
                          std::memory_order_release);
}

bool
FaultInjector::wedged(int worker) const
{
    if (worker < 0 || worker >= 64) {
        return false;
    }
    return (wedgedMask_.load(std::memory_order_acquire) >> worker) &
           1u;
}

FaultInjector::Counts
FaultInjector::counts() const
{
    Counts out;
    out.stalls = stallsFired_.load(std::memory_order_acquire);
    out.corrupted = corruptedFired_.load(std::memory_order_acquire);
    out.rejects = rejectsFired_.load(std::memory_order_acquire);
    out.throws = throwsFired_.load(std::memory_order_acquire);
    return out;
}

} // namespace qec
