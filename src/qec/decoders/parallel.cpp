#include "qec/decoders/parallel.hpp"

#include <algorithm>
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

DecodeResult
ParallelDecoder::decode(std::span<const uint32_t> defects,
                        DecodeWorkspace &workspace,
                        DecodeTrace *trace)
{
    QEC_REALTIME;
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }
    // The sides run sequentially on the shared workspace; each
    // result is plain data, fully extracted before the other side
    // reuses the scratch.
    DecodeResult ra = a->decode(
        defects, workspace,
        trace ? &rt::emplaceBack(trace->children) : nullptr);
    DecodeResult rb = b->decode(
        defects, workspace,
        trace ? &rt::emplaceBack(trace->children) : nullptr);

    const double compare_ns =
        latency_.compareCycles * latency_.nsPerCycle;
    // Each side is cut off at the effective budget (that is what
    // the 10-cycle comparison reserve is for), so an aborted or
    // overlong side cannot push the comparison past the deadline.
    const double cutoff = latency_.effectiveBudgetNs();
    const double latency =
        std::max(std::min(ra.latencyNs, cutoff),
                 std::min(rb.latencyNs, cutoff)) +
        compare_ns;

    DecodeResult result;
    int winner;
    if (ra.aborted && rb.aborted) {
        result.aborted = true;
        result.latencyNs = latency_.budgetNs;
        return result;
    }
    if (ra.aborted) {
        winner = 1;
        result = rb;
    } else if (rb.aborted) {
        winner = 0;
        result = ra;
    } else if (ra.weight <= rb.weight) {
        winner = 0;
        result = ra;
    } else {
        winner = 1;
        result = rb;
    }
    if (trace) {
        trace->parallelWinner = winner;
        // Swap, not move-assign: move-assignment frees chainLengths'
        // retained capacity right here in the decode body. The swap
        // parks it in the child, torn down with the trace tree.
        std::swap(trace->chainLengths,
                  trace->children[winner].chainLengths);
    }
    result.latencyNs = latency;
    if (latency > latency_.budgetNs) {
        result.aborted = true;
    }
    return result;
}

} // namespace qec
