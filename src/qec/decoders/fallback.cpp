#include "qec/decoders/fallback.hpp"

#include <cmath>
#include <utility>

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/util/assert.hpp"
#include "qec/util/realtime.hpp"

namespace qec
{

struct FallbackDecoder::Shared
{
    explicit Shared(size_t tiers) : tierUsed(tiers)
    {
        for (auto &t : tierUsed) {
            t.store(0, std::memory_order_relaxed);
        }
    }

    std::vector<std::atomic<uint64_t>> tierUsed;
    std::atomic<uint64_t> escalations{0};
    std::atomic<uint64_t> overruns{0};
};

FallbackDecoder::FallbackDecoder(
    const DecodingGraph &graph, const PathTable &paths,
    std::vector<std::unique_ptr<Decoder>> tiers,
    FallbackConfig config)
    : FallbackDecoder(graph, paths, std::move(tiers), config,
                      nullptr)
{
}

FallbackDecoder::FallbackDecoder(
    const DecodingGraph &graph, const PathTable &paths,
    std::vector<std::unique_ptr<Decoder>> tiers,
    FallbackConfig config, std::shared_ptr<Shared> shared)
    : Decoder(graph, paths), tiers_(std::move(tiers)),
      config_(config),
      time_(config.time ? config.time : &steadyTimeSource()),
      shared_(std::move(shared))
{
    QEC_ASSERT(!tiers_.empty(),
               "degradation ladder needs at least one tier");
    for (const auto &tier : tiers_) {
        QEC_ASSERT(tier != nullptr,
                   "degradation ladder tiers must be non-null");
    }
    if (!shared_) {
        shared_ = std::make_shared<Shared>(tiers_.size());
    }
}

DecodeResult
FallbackDecoder::decode(std::span<const uint32_t> defects,
                        DecodeWorkspace &workspace,
                        DecodeTrace *trace)
{
    QEC_REALTIME;
    if (config_.budgetNs <= 0.0) {
        // Degradation disabled: forward to the primary tier with no
        // clock reads at all, so results are bit-identical to
        // running that stack alone.
        shared_->tierUsed[0].fetch_add(1,
                                       std::memory_order_relaxed);
        return tiers_[0]->decode(defects, workspace, trace);
    }
    TimeSource &time = *time_;
    for (size_t i = 0;; ++i) {
        // Per-tier measurement: each tier gets a fresh budget, so
        // `escalations` counts tiers that individually missed it and
        // `overruns` means even the accepted (cheapest reached) tier
        // could not fit — the budget is unachievable, not merely
        // consumed by earlier attempts.
        const uint64_t start = time.nowNs();
        const DecodeResult result =
            tiers_[i]->decode(defects, workspace, trace);
        const double elapsedNs =
            static_cast<double>(time.nowNs() - start);
        const bool last = i + 1 == tiers_.size();
        if (elapsedNs <= config_.budgetNs || last) {
            shared_->tierUsed[i].fetch_add(
                1, std::memory_order_relaxed);
            if (elapsedNs > config_.budgetNs) {
                shared_->overruns.fetch_add(
                    1, std::memory_order_relaxed);
            }
            return result;
        }
        shared_->escalations.fetch_add(1,
                                       std::memory_order_relaxed);
    }
}

std::unique_ptr<Decoder>
FallbackDecoder::clone() const
{
    std::vector<std::unique_ptr<Decoder>> tiers;
    tiers.reserve(tiers_.size());
    for (const auto &tier : tiers_) {
        tiers.push_back(tier->clone());
    }
    return std::unique_ptr<Decoder>(new FallbackDecoder(
        graph_, paths_, std::move(tiers), config_, shared_));
}

std::string
FallbackDecoder::name() const
{
    std::string out = "Fallback(";
    for (size_t i = 0; i < tiers_.size(); ++i) {
        if (i) {
            out += ">";
        }
        out += tiers_[i]->name();
    }
    out += ")";
    return out;
}

bool
FallbackDecoder::wantsDistanceView() const
{
    for (const auto &tier : tiers_) {
        if (tier->wantsDistanceView()) {
            return true;
        }
    }
    return false;
}

FallbackStats
FallbackDecoder::stats() const
{
    FallbackStats out;
    out.tierUsed.reserve(shared_->tierUsed.size());
    for (const auto &t : shared_->tierUsed) {
        out.tierUsed.push_back(
            t.load(std::memory_order_acquire));
    }
    out.escalations =
        shared_->escalations.load(std::memory_order_acquire);
    out.overruns =
        shared_->overruns.load(std::memory_order_acquire);
    return out;
}

void
FallbackDecoder::resetStats()
{
    for (auto &t : shared_->tierUsed) {
        t.store(0, std::memory_order_relaxed);
    }
    shared_->escalations.store(0, std::memory_order_relaxed);
    shared_->overruns.store(0, std::memory_order_relaxed);
}

PredecodeCommitDecoder::PredecodeCommitDecoder(
    const DecodingGraph &graph, const PathTable &paths,
    std::unique_ptr<Predecoder> predecoder, LatencyConfig latency)
    : PredecodeCommitDecoder(graph, paths, std::move(predecoder),
                             latency, nullptr)
{
}

PredecodeCommitDecoder::PredecodeCommitDecoder(
    const DecodingGraph &graph, const PathTable &paths,
    std::unique_ptr<Predecoder> predecoder, LatencyConfig latency,
    std::shared_ptr<std::atomic<uint64_t>> flagged)
    : Decoder(graph, paths), predecoder_(std::move(predecoder)),
      latency_(latency), flagged_(std::move(flagged))
{
    QEC_ASSERT(predecoder_ != nullptr,
               "commit tier needs a predecoder");
    if (!flagged_) {
        flagged_ = std::make_shared<std::atomic<uint64_t>>(0);
    }
}

DecodeResult
PredecodeCommitDecoder::decode(std::span<const uint32_t> defects,
                               DecodeWorkspace &workspace,
                               DecodeTrace *trace)
{
    QEC_REALTIME;
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }
    DecodeResult result;
    if (defects.empty()) {
        return result;
    }
    const long long budget = static_cast<long long>(
        latency_.effectiveBudgetNs() / latency_.nsPerCycle);
    PredecodeResult &pre = workspace.predecodeResult;
    predecoder_->predecode(defects, budget, workspace, pre);
    result.predictedObs = pre.obsMask;
    result.weight = pre.weight;
    result.latencyNs =
        static_cast<double>(pre.cycles) * latency_.nsPerCycle;
    // Whatever the predecoder did not resolve is abandoned, not
    // matched: counted so the serving layer can report how much
    // accuracy the degraded mode traded away.
    const uint64_t flagged =
        pre.forwarded ? defects.size()
                      : (pre.decodedAll ? 0 : pre.residual.size());
    if (flagged) {
        flagged_->fetch_add(flagged, std::memory_order_relaxed);
    }
    if (trace) {
        trace->predecoderEngaged = true;
        trace->hwAfter = static_cast<int>(flagged);
        trace->predecodeNs = result.latencyNs;
        trace->steps = pre.steps;
        trace->predecodeRounds = pre.rounds;
    }
    return result;
}

std::unique_ptr<Decoder>
PredecodeCommitDecoder::clone() const
{
    return std::unique_ptr<Decoder>(new PredecodeCommitDecoder(
        graph_, paths_, predecoder_->clone(), latency_, flagged_));
}

std::string
PredecodeCommitDecoder::name() const
{
    return "Commit(" + predecoder_->name() + ")";
}

uint64_t
PredecodeCommitDecoder::flaggedDefects() const
{
    return flagged_->load(std::memory_order_acquire);
}

void
PredecodeCommitDecoder::resetFlagged()
{
    flagged_->store(0, std::memory_order_relaxed);
}

std::unique_ptr<FallbackDecoder>
makeDegradationLadder(const DecodingGraph &graph,
                      const PathTable &paths,
                      const std::vector<std::string> &tierSpecs,
                      const std::string &commitPredecoder,
                      FallbackConfig config,
                      const LatencyConfig &latency)
{
    std::vector<std::unique_ptr<Decoder>> tiers;
    tiers.reserve(tierSpecs.size() +
                  (commitPredecoder.empty() ? 0 : 1));
    for (const std::string &spec : tierSpecs) {
        tiers.push_back(build(DecoderSpec::parse(spec), graph,
                              paths, latency));
    }
    if (!commitPredecoder.empty()) {
        BuildContext context{graph, paths, latency, {}, {}};
        tiers.push_back(std::make_unique<PredecodeCommitDecoder>(
            graph, paths,
            DecoderRegistry::instance().buildPredecoder(
                commitPredecoder, context),
            latency));
    }
    return std::make_unique<FallbackDecoder>(
        graph, paths, std::move(tiers), config);
}

} // namespace qec
