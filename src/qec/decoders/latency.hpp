/**
 * @file
 * Hardware latency model (§6.4 of the paper).
 *
 * All real-time decoders are modeled at 250 MHz (4 ns per cycle) with
 * a 1 us decoding budget. Running Promatch beside Astrea-G reserves
 * 10 cycles for the final solution comparison, leaving 960 ns of
 * effective budget. Astrea's brute-force engine is modeled as walking
 * matchingCount(HW) pairings (945 at HW = 10) at `parallelism`
 * pairings per cycle plus a fixed pipeline fill, calibrated to
 * Astrea's published ~456 ns at HW = 10.
 */

#ifndef QEC_DECODERS_LATENCY_HPP
#define QEC_DECODERS_LATENCY_HPP

#include <cstdint>

namespace qec
{

/** Shared timing constants for the real-time decoder models. */
struct LatencyConfig
{
    double nsPerCycle = 4.0;  //!< 250 MHz.
    double budgetNs = 1000.0; //!< Real-time deadline (1 us).
    int compareCycles = 10;   //!< ||AG final comparison reserve.
    int astreaMaxHw = 10;     //!< Astrea handles HW <= 10 (§2.3).
    int astreaParallelism = 8; //!< Pairings evaluated per cycle.
    int astreaFixedCycles = 5; //!< Pipeline fill/drain.
    /** Promatch subgraph-generation / register-load overhead charged
     *  once whenever the predecoder engages (§4.2). */
    int promatchFixedCycles = 16;
    /**
     * Parallel Promatch edge pipelines. §6.4 notes the predecoder is
     * light enough to replicate; each round's edge-walk charge is
     * divided across lanes. Default 1 (the paper's evaluation).
     */
    int promatchLanes = 1;
    /** Astrea-G near-exhaustive search budget, in search states. */
    long long astreaGSearchBudget = 1880;
    /** Astrea-G pruning threshold on chain probability (~LER). */
    double astreaGPruneProbability = 1e-13;
    /**
     * Let Astrea-G's search use an admissible lower bound to prune
     * branches. The hardware's greedy near-exhaustive walk has no
     * such bound, so this is off by default; enabling it is the
     * "smarter Astrea-G" ablation.
     */
    bool astreaGUseBound = false;

    /** Budget left after reserving the comparison cycles. */
    double effectiveBudgetNs() const
    {
        return budgetNs - compareCycles * nsPerCycle;
    }

    /** Number of pairings Astrea's engine enumerates at this HW. */
    static long long matchingCount(int hw);

    /** Modeled Astrea cycles for a syndrome of this Hamming weight;
     *  -1 if the HW exceeds the engine's reach. */
    long long astreaCycles(int hw) const;

    /** Modeled Astrea latency in ns; negative if out of reach. */
    double astreaLatencyNs(int hw) const;
};

} // namespace qec

#endif // QEC_DECODERS_LATENCY_HPP
