#include "qec/decoders/latency.hpp"

namespace qec
{

long long
LatencyConfig::matchingCount(int hw)
{
    if (hw <= 0) {
        return 0;
    }
    // Even HW: (hw-1)!! pairings (945 at HW = 10, as in §2.3).
    // Odd HW: one defect must take the boundary; hw!! pairings.
    long long count = 1;
    int start = (hw % 2 == 0) ? hw - 1 : hw;
    for (int k = start; k > 1; k -= 2) {
        count *= k;
    }
    return count;
}

long long
LatencyConfig::astreaCycles(int hw) const
{
    if (hw > astreaMaxHw) {
        return -1;
    }
    if (hw <= 0) {
        return astreaFixedCycles;
    }
    const long long m = matchingCount(hw);
    return (m + astreaParallelism - 1) / astreaParallelism +
           astreaFixedCycles;
}

double
LatencyConfig::astreaLatencyNs(int hw) const
{
    const long long cycles = astreaCycles(hw);
    return cycles < 0 ? -1.0 : cycles * nsPerCycle;
}

} // namespace qec
