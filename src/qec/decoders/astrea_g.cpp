#include "qec/decoders/astrea_g.hpp"

#include <cmath>

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/matching/defect_graph.hpp"
#include "qec/matching/near_exhaustive.hpp"
#include "qec/util/realtime.hpp"

namespace qec
{

DecodeResult
AstreaGDecoder::decode(std::span<const uint32_t> defects,
                       DecodeWorkspace &workspace,
                       DecodeTrace *trace)
{
    QEC_REALTIME;
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }
    DecodeResult result;
    const int hw = static_cast<int>(defects.size());
    if (hw == 0) {
        result.latencyNs =
            latency_.astreaFixedCycles * latency_.nsPerCycle;
        return result;
    }

    DefectGraph &dg = workspace.defectGraph;
    buildDefectGraphInto(defects, paths_, workspace.distances,
                         dg);

    // Prune pair edges whose chain probability is below the LER
    // scale; boundary edges always survive so a matching exists.
    const double max_weight =
        -std::log(latency_.astreaGPruneProbability);
    for (int i = 0; i < dg.problem.n; ++i) {
        for (int j = i + 1; j < dg.problem.n; ++j) {
            if (dg.problem.pair(i, j) != kNoEdge &&
                dg.problem.pair(i, j) > max_weight) {
                dg.problem.setPair(i, j, kNoEdge);
            }
        }
    }

    NearExhaustiveSolver &search = workspace.nearExhaustive;
    MatchingSolution &solution = workspace.solution;
    search.solve(dg.problem, latency_.astreaGSearchBudget,
                 latency_.astreaGUseBound, solution);
    if (trace) {
        trace->searchStates = search.statesExplored();
        trace->searchTruncated = search.truncated();
    }
    if (!solution.valid) {
        result.aborted = true;
        result.latencyNs = latency_.budgetNs;
        return result;
    }
    result.predictedObs =
        dg.solutionObs(workspace.distances, solution);
    result.weight = solution.totalWeight;
    const long long cycles =
        search.statesExplored() / latency_.astreaParallelism +
        latency_.astreaFixedCycles;
    result.latencyNs = static_cast<double>(cycles) *
                       latency_.nsPerCycle;
    if (trace) {
        dg.chainLengthsInto(workspace.distances, solution,
                            trace->chainLengths);
    }
    return result;
}

QEC_REGISTER_DECODER(
    astrea_g,
    "Astrea-G pruned, budgeted near-exhaustive matcher",
    [](const BuildContext &context) {
        return std::make_unique<AstreaGDecoder>(
            context.graph, context.paths, context.latency);
    });

} // namespace qec
