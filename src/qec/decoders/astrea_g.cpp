#include "qec/decoders/astrea_g.hpp"

#include <algorithm>
#include <cmath>

#include "qec/api/registry.hpp"
#include "qec/matching/defect_graph.hpp"
#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

/** Budgeted branch-and-bound over pairings of a pruned defect graph. */
class NearExhaustiveSearch
{
  public:
    NearExhaustiveSearch(const MatchingProblem &problem,
                         long long budget, bool use_bound)
        : problem_(problem), budget_(budget), useBound(use_bound),
          mate(problem.n, -2), bestMate(problem.n, -2)
    {
        // Per-defect candidate lists sorted by ascending weight, the
        // "prioritized matchings" of Astrea-G's greedy order.
        options.resize(problem_.n);
        minOption.assign(problem_.n, kNoEdge);
        for (int i = 0; i < problem_.n; ++i) {
            if (problem_.boundaryWeight[i] != kNoEdge) {
                options[i].push_back({problem_.boundaryWeight[i], -1});
            }
            for (int j = 0; j < problem_.n; ++j) {
                if (j != i && problem_.pair(i, j) != kNoEdge) {
                    options[i].push_back({problem_.pair(i, j), j});
                }
            }
            std::sort(options[i].begin(), options[i].end());
            if (!options[i].empty()) {
                minOption[i] = options[i].front().first;
            }
        }
    }

    /** Run the search; returns best matching found (maybe greedy). */
    MatchingSolution
    run()
    {
        recurse(0.0);
        MatchingSolution solution;
        if (best == kNoEdge) {
            // Not even a greedy completion existed.
            solution.valid = false;
            return solution;
        }
        solution.mate = bestMate;
        solution.totalWeight = best;
        solution.valid = true;
        return solution;
    }

    long long statesExplored() const { return states; }
    bool truncated() const { return hitBudget; }

  private:
    /** Admissible lower bound on completing the partial matching. */
    double
    remainingBound() const
    {
        double bound = 0.0;
        for (int i = 0; i < problem_.n; ++i) {
            if (mate[i] == -2) {
                bound += minOption[i] * 0.5;
            }
        }
        return bound;
    }

    /** Greedy completion used when the budget runs out. */
    void
    greedyComplete(double weight)
    {
        std::vector<int> saved = mate;
        for (int i = 0; i < problem_.n; ++i) {
            if (mate[i] != -2) {
                continue;
            }
            double best_w = kNoEdge;
            int best_j = -3;
            for (const auto &[w, j] : options[i]) {
                if (j == -1 || mate[j] == -2) {
                    best_w = w;
                    best_j = j;
                    break; // Options are sorted by weight.
                }
            }
            if (best_j == -3) {
                mate = saved;
                return; // Dead end; keep previous best.
            }
            mate[i] = best_j;
            if (best_j >= 0) {
                mate[best_j] = i;
            }
            weight += best_w;
        }
        if (weight < best) {
            best = weight;
            bestMate = mate;
        }
        mate = saved;
    }

    void
    recurse(double weight)
    {
        if (hitBudget) {
            return;
        }
        if (++states > budget_) {
            hitBudget = true;
            return;
        }
        if (weight + (useBound ? remainingBound() : 0.0) >= best) {
            return;
        }
        int first = 0;
        const int n = problem_.n;
        while (first < n && mate[first] != -2) {
            ++first;
        }
        if (first == n) {
            if (weight < best) {
                best = weight;
                bestMate = mate;
            }
            return;
        }
        bool expanded = false;
        for (const auto &[w, j] : options[first]) {
            if (j >= 0 && mate[j] != -2) {
                continue;
            }
            mate[first] = j;
            if (j >= 0) {
                mate[j] = first;
            }
            expanded = true;
            recurse(weight + w);
            mate[first] = -2;
            if (j >= 0) {
                mate[j] = -2;
            }
            if (hitBudget) {
                // Out of budget mid-expansion: finish this branch
                // greedily so we always return some matching.
                mate[first] = j;
                if (j >= 0) {
                    mate[j] = first;
                }
                greedyComplete(weight + w);
                mate[first] = -2;
                if (j >= 0) {
                    mate[j] = -2;
                }
                return;
            }
        }
        if (!expanded) {
            return; // No options for this defect: dead branch.
        }
    }

    const MatchingProblem &problem_;
    long long budget_;
    bool useBound;
    std::vector<int> mate;
    std::vector<int> bestMate;
    std::vector<std::vector<std::pair<double, int>>> options;
    std::vector<double> minOption;
    double best = kNoEdge;
    long long states = 0;
    bool hitBudget = false;
};

} // namespace

DecodeResult
AstreaGDecoder::decode(std::span<const uint32_t> defects,
                       DecodeTrace *trace)
{
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }
    DecodeResult result;
    const int hw = static_cast<int>(defects.size());
    if (hw == 0) {
        result.latencyNs =
            latency_.astreaFixedCycles * latency_.nsPerCycle;
        return result;
    }

    DefectGraph dg = buildDefectGraph(defects, paths_);

    // Prune pair edges whose chain probability is below the LER
    // scale; boundary edges always survive so a matching exists.
    const double max_weight =
        -std::log(latency_.astreaGPruneProbability);
    for (int i = 0; i < dg.problem.n; ++i) {
        for (int j = i + 1; j < dg.problem.n; ++j) {
            if (dg.problem.pair(i, j) != kNoEdge &&
                dg.problem.pair(i, j) > max_weight) {
                dg.problem.setPair(i, j, kNoEdge);
            }
        }
    }

    NearExhaustiveSearch search(dg.problem,
                                latency_.astreaGSearchBudget,
                                latency_.astreaGUseBound);
    const MatchingSolution solution = search.run();
    if (trace) {
        trace->searchStates = search.statesExplored();
        trace->searchTruncated = search.truncated();
    }
    if (!solution.valid) {
        result.aborted = true;
        result.latencyNs = latency_.budgetNs;
        return result;
    }
    result.predictedObs = dg.solutionObs(paths_, solution);
    result.weight = solution.totalWeight;
    const long long cycles =
        search.statesExplored() / latency_.astreaParallelism +
        latency_.astreaFixedCycles;
    result.latencyNs = static_cast<double>(cycles) *
                       latency_.nsPerCycle;
    result.chainLengths = dg.chainLengths(paths_, solution);
    return result;
}

QEC_REGISTER_DECODER(
    astrea_g,
    "Astrea-G pruned, budgeted near-exhaustive matcher",
    [](const BuildContext &context) {
        return std::make_unique<AstreaGDecoder>(
            context.graph, context.paths, context.latency);
    });

} // namespace qec
