#include "qec/decoders/astrea.hpp"

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/matching/defect_graph.hpp"
#include "qec/util/realtime.hpp"

namespace qec
{

DecodeResult
AstreaDecoder::decode(std::span<const uint32_t> defects,
                      DecodeWorkspace &workspace,
                      DecodeTrace *trace)
{
    QEC_REALTIME;
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }
    DecodeResult result;
    const int hw = static_cast<int>(defects.size());
    if (hw == 0) {
        result.latencyNs =
            latency_.astreaFixedCycles * latency_.nsPerCycle;
        return result;
    }
    if (hw > latency_.astreaMaxHw) {
        // Beyond the brute-force engine's reach: give up, which the
        // harness counts as a logical error.
        result.aborted = true;
        result.latencyNs = latency_.budgetNs;
        return result;
    }
    DefectGraph &dg = workspace.defectGraph;
    buildDefectGraphInto(defects, paths_, workspace.distances,
                         dg);
    MatchingSolution &solution = workspace.solution;
    workspace.exhaustive.solve(dg.problem, solution);
    if (!solution.valid) {
        result.aborted = true;
        result.latencyNs = latency_.budgetNs;
        return result;
    }
    result.predictedObs =
        dg.solutionObs(workspace.distances, solution);
    result.weight = solution.totalWeight;
    result.latencyNs = latency_.astreaLatencyNs(hw);
    if (trace) {
        dg.chainLengthsInto(workspace.distances, solution,
                            trace->chainLengths);
    }
    return result;
}

QEC_REGISTER_DECODER(
    astrea, "Astrea exact brute-force matcher (HW <= hw_threshold)",
    [](const BuildContext &context) {
        return std::make_unique<AstreaDecoder>(
            context.graph, context.paths, context.latency);
    });

} // namespace qec
