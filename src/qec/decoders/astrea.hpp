/**
 * @file
 * Behavioural model of the Astrea RT-MWPM decoder [66].
 *
 * Astrea's hardware brute-forces every pairing of the flipped bits
 * (945 pairings at HW = 10) and is therefore *exact* for HW <= 10 but
 * cannot decode anything beyond that. We reproduce exactly that
 * contract: an exhaustive exact matcher guarded by the HW limit, with
 * latency from the shared LatencyConfig model.
 */

#ifndef QEC_DECODERS_ASTREA_HPP
#define QEC_DECODERS_ASTREA_HPP

#include "qec/decoders/decoder.hpp"
#include "qec/decoders/latency.hpp"

namespace qec
{

/** Exact brute-force matcher for low-HW syndromes (HW <= 10). */
class AstreaDecoder : public Decoder
{
  public:
    AstreaDecoder(const DecodingGraph &graph, const PathTable &paths,
                  const LatencyConfig &latency = {})
        : Decoder(graph, paths), latency_(latency)
    {
    }

    using Decoder::decode;
    DecodeResult decode(std::span<const uint32_t> defects,
                        DecodeWorkspace &workspace,
                        DecodeTrace *trace = nullptr) override;

    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<AstreaDecoder>(graph_, paths_,
                                               latency_);
    }

    std::string name() const override { return "Astrea"; }

    const LatencyConfig &latencyConfig() const { return latency_; }

  private:
    LatencyConfig latency_;
};

} // namespace qec

#endif // QEC_DECODERS_ASTREA_HPP
