#include "qec/decoders/pipeline.hpp"

#include <algorithm>

#include "qec/decoders/workspace.hpp"

namespace qec
{

DecodeResult
PredecodedDecoder::decode(std::span<const uint32_t> defects,
                          DecodeWorkspace &workspace,
                          DecodeTrace *trace)
{
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }

    // Low-HW syndromes skip the predecoder entirely (§3).
    if (static_cast<int>(defects.size()) <= latency_.astreaMaxHw) {
        DecodeResult result = main_->decode(
            defects, workspace,
            trace ? &trace->children.emplace_back() : nullptr);
        if (trace) {
            trace->hwAfter = trace->hwBefore;
            trace->mainNs = result.latencyNs;
            trace->chainLengths = std::move(
                trace->children.back().chainLengths);
        }
        if (result.latencyNs > latency_.effectiveBudgetNs()) {
            result.aborted = true;
        }
        return result;
    }

    const long long budget_cycles = static_cast<long long>(
        latency_.effectiveBudgetNs() / latency_.nsPerCycle);
    // The predecoder writes into the workspace-owned handoff slot;
    // its residual must stay untouched through the nested main
    // decode below (main decoders never write predecodeResult).
    PredecodeResult &pre_result = workspace.predecodeResult;
    pre->predecode(defects, budget_cycles, workspace, pre_result);
    const double predecode_ns =
        static_cast<double>(pre_result.cycles) * latency_.nsPerCycle;
    if (trace) {
        trace->predecoderEngaged = true;
        trace->steps = pre_result.steps;
        trace->predecodeRounds = pre_result.rounds;
        trace->predecodeNs = predecode_ns;
    }

    DecodeResult result;
    if (pre_result.decodedAll) {
        // NSM predecoder finished the whole syndrome locally.
        result.predictedObs = pre_result.obsMask;
        result.weight = pre_result.weight;
        result.latencyNs = predecode_ns;
        if (result.latencyNs > latency_.effectiveBudgetNs()) {
            result.aborted = true;
        }
        return result;
    }

    const std::vector<uint32_t> &handoff = pre_result.residual;
    if (trace) {
        trace->hwAfter = static_cast<int>(handoff.size());
    }

    DecodeResult main_result = main_->decode(
        handoff, workspace,
        trace ? &trace->children.emplace_back() : nullptr);
    if (trace) {
        trace->mainNs = main_result.latencyNs;
        trace->chainLengths =
            std::move(trace->children.back().chainLengths);
    }

    result.predictedObs =
        pre_result.obsMask ^ main_result.predictedObs;
    result.weight = pre_result.weight + main_result.weight;
    if (pre_result.forwarded) {
        // NSM forwarding: the main decoder already had the
        // unmodified syndrome, so the stages overlap rather than
        // serialize (Fig. 3(a)).
        result.latencyNs =
            std::max(predecode_ns, main_result.latencyNs);
    } else {
        result.latencyNs = predecode_ns + main_result.latencyNs;
    }
    result.aborted = main_result.aborted ||
                     result.latencyNs > latency_.effectiveBudgetNs();
    return result;
}

} // namespace qec
