#include "qec/decoders/pipeline.hpp"

namespace qec
{

DecodeResult
PredecodedDecoder::decode(const std::vector<uint32_t> &defects)
{
    trace = {};
    trace.hwBefore = static_cast<int>(defects.size());

    // Low-HW syndromes skip the predecoder entirely (§3).
    if (static_cast<int>(defects.size()) <= latency_.astreaMaxHw) {
        DecodeResult result = main_->decode(defects);
        trace.hwAfter = trace.hwBefore;
        trace.mainNs = result.latencyNs;
        if (result.latencyNs > latency_.effectiveBudgetNs()) {
            result.aborted = true;
        }
        return result;
    }

    trace.predecoderEngaged = true;
    const long long budget_cycles = static_cast<long long>(
        latency_.effectiveBudgetNs() / latency_.nsPerCycle);
    PredecodeResult pre_result =
        pre->predecode(defects, budget_cycles);
    trace.steps = pre_result.steps;
    trace.predecodeRounds = pre_result.rounds;
    trace.predecodeNs =
        static_cast<double>(pre_result.cycles) * latency_.nsPerCycle;

    DecodeResult result;
    if (pre_result.decodedAll) {
        // NSM predecoder finished the whole syndrome locally.
        trace.hwAfter = 0;
        result.predictedObs = pre_result.obsMask;
        result.weight = pre_result.weight;
        result.latencyNs = trace.predecodeNs;
        if (result.latencyNs > latency_.effectiveBudgetNs()) {
            result.aborted = true;
        }
        return result;
    }

    const std::vector<uint32_t> &handoff = pre_result.residual;
    trace.hwAfter = static_cast<int>(handoff.size());

    DecodeResult main_result = main_->decode(handoff);
    trace.mainNs = main_result.latencyNs;

    result.predictedObs =
        pre_result.obsMask ^ main_result.predictedObs;
    result.weight = pre_result.weight + main_result.weight;
    if (pre_result.forwarded) {
        // NSM forwarding: the main decoder already had the
        // unmodified syndrome, so the stages overlap rather than
        // serialize (Fig. 3(a)).
        result.latencyNs =
            std::max(trace.predecodeNs, main_result.latencyNs);
    } else {
        result.latencyNs = trace.predecodeNs + main_result.latencyNs;
    }
    result.aborted = main_result.aborted ||
                     result.latencyNs > latency_.effectiveBudgetNs();
    result.chainLengths = std::move(main_result.chainLengths);
    return result;
}

} // namespace qec
