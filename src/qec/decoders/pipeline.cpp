#include "qec/decoders/pipeline.hpp"

#include <algorithm>

#include "qec/decoders/workspace.hpp"
#include "qec/util/assert.hpp"
#include "qec/util/bitvec.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

DecodeResult
PredecodedDecoder::decode(std::span<const uint32_t> defects,
                          DecodeWorkspace &workspace,
                          DecodeTrace *trace)
{
    QEC_REALTIME;
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }

    // Low-HW syndromes skip the predecoder entirely (§3).
    if (static_cast<int>(defects.size()) <= latency_.astreaMaxHw) {
        DecodeResult result = main_->decode(
            defects, workspace,
            trace ? &rt::emplaceBack(trace->children) : nullptr);
        if (trace) {
            trace->hwAfter = trace->hwBefore;
            trace->mainNs = result.latencyNs;
            // Swap, not move-assign (no inline free; see parallel.cpp).
            std::swap(trace->chainLengths,
                      trace->children.back().chainLengths);
        }
        if (result.latencyNs > latency_.effectiveBudgetNs()) {
            result.aborted = true;
        }
        return result;
    }

    const long long budget_cycles = static_cast<long long>(
        latency_.effectiveBudgetNs() / latency_.nsPerCycle);
    // The predecoder writes into the workspace-owned handoff slot;
    // its residual must stay untouched through the nested main
    // decode below (main decoders never write predecodeResult).
    PredecodeResult &pre_result = workspace.predecodeResult;
    pre->predecode(defects, budget_cycles, workspace, pre_result);
    const double predecode_ns =
        static_cast<double>(pre_result.cycles) * latency_.nsPerCycle;
    if (trace) {
        trace->predecoderEngaged = true;
        trace->steps = pre_result.steps;
        trace->predecodeRounds = pre_result.rounds;
        trace->predecodeNs = predecode_ns;
    }

    DecodeResult result;
    if (pre_result.decodedAll) {
        // NSM predecoder finished the whole syndrome locally.
        result.predictedObs = pre_result.obsMask;
        result.weight = pre_result.weight;
        result.latencyNs = predecode_ns;
        if (result.latencyNs > latency_.effectiveBudgetNs()) {
            result.aborted = true;
        }
        return result;
    }

    const std::vector<uint32_t> &handoff = pre_result.residual;
    if (trace) {
        trace->hwAfter = static_cast<int>(handoff.size());
    }

    DecodeResult main_result = main_->decode(
        handoff, workspace,
        trace ? &rt::emplaceBack(trace->children) : nullptr);
    if (trace) {
        trace->mainNs = main_result.latencyNs;
        // Swap, not move-assign (no inline free; see parallel.cpp).
        std::swap(trace->chainLengths,
                  trace->children.back().chainLengths);
    }

    result.predictedObs =
        pre_result.obsMask ^ main_result.predictedObs;
    result.weight = pre_result.weight + main_result.weight;
    if (pre_result.forwarded) {
        // NSM forwarding: the main decoder already had the
        // unmodified syndrome, so the stages overlap rather than
        // serialize (Fig. 3(a)).
        result.latencyNs =
            std::max(predecode_ns, main_result.latencyNs);
    } else {
        result.latencyNs = predecode_ns + main_result.latencyNs;
    }
    result.aborted = main_result.aborted ||
                     result.latencyNs > latency_.effectiveBudgetNs();
    return result;
}

void
PredecodedDecoder::decodeBlock(std::span<const uint64_t> detectorWords,
                               int lanes, DecodeWorkspace &workspace,
                               DecodeResult *results)
{
    QEC_REALTIME;
    QEC_ASSERT(lanes >= 1 && lanes <= 64,
               "decodeBlock lane count must be in [1, 64]");
    const uint64_t laneMask = laneMask64(lanes);
    BlockScratch &block = workspace.block;
    scatterBlockLanes(detectorWords, laneMask, block.laneDefects);

    // Engaged lanes (HW above the threshold) take the predecoder;
    // the rest go straight to the main decoder, as in decode().
    uint64_t engagedMask = 0;
    for (int lane = 0; lane < lanes; ++lane) {
        if (static_cast<int>(block.laneDefects[lane].size()) >
            latency_.astreaMaxHw) {
            engagedMask |= uint64_t{1} << lane;
        }
    }
    const long long budget_cycles = static_cast<long long>(
        latency_.effectiveBudgetNs() / latency_.nsPerCycle);
    BlockPredecodeResult &pre_result = block.pre;
    if (engagedMask != 0) {
        // One call carries every engaged lane through the
        // predecoder's word kernel together. May clobber the
        // engaged laneDefects buckets; they are rebuilt from the
        // residual lists below. Low lanes' buckets stay intact.
        pre->predecodeBlock(detectorWords, engagedMask,
                            budget_cycles, workspace, pre_result);
    } else {
        pre_result.reset();
    }

    // Lane compaction: rebuild the engaged buckets as main-decode
    // inputs from the sparse residual lists (detector-ascending, so
    // each bucket comes back sorted). Fully resolved lanes end up
    // with empty buckets and never reach the matcher.
    forEachSetBit(engagedMask,
                  [&](int lane) { block.laneDefects[lane].clear(); });
    for (size_t r = 0; r < pre_result.residualDets.size(); ++r) {
        const uint32_t det = pre_result.residualDets[r];
        forEachSetBit(pre_result.residualWords[r], [&](int lane) {
            rt::pushBack(block.laneDefects[lane], det);
        });
    }

    // Shared distance gather: when the union of all main-decode
    // inputs is cheaper to gather once (U^2 cells) than per-lane
    // (sum of s_l^2 cells), pre-gather it so every lane's problem
    // builder resolves as a subset of one block (bit-identical: the
    // view holds bit-copies of the PathTable either way).
    block.touched.clear();
    rt::resizeFill(block.laneWords, detectorWords.size(),
                   uint64_t{0});
    size_t sum_sq = 0;
    const uint64_t mainMask =
        laneMask & ~(engagedMask & pre_result.decodedAllMask);
    forEachSetBit(mainMask, [&](int lane) {
        const std::vector<uint32_t> &input = block.laneDefects[lane];
        sum_sq += input.size() * input.size();
        for (uint32_t det : input) {
            if (block.laneWords[det] == 0) {
                rt::pushBack(block.touched, det);
            }
            block.laneWords[det] = 1;
        }
    });
    const size_t u = block.touched.size();
    if (u > 0 && u * u <= sum_sq && main_->wantsDistanceView()) {
        std::sort(block.touched.begin(), block.touched.end());
        rt::assignRange(block.unionDets, block.touched.begin(),
                        block.touched.end());
        workspace.distances.gather(paths_, block.unionDets);
    }
    for (uint32_t det : block.touched) {
        block.laneWords[det] = 0;
    }

    // Per-lane compose, mirroring decode() case by case. Lanes the
    // predecoder fully prematched share one cached empty-input main
    // decode (the main decoder is deterministic and stateless
    // per-call, so the first result stands in for all of them).
    DecodeResult empty_main;
    bool have_empty_main = false;
    const double budget_ns = latency_.effectiveBudgetNs();
    for (int lane = 0; lane < lanes; ++lane) {
        const uint64_t bit = uint64_t{1} << lane;
        const std::vector<uint32_t> &input = block.laneDefects[lane];
        if ((bit & engagedMask) == 0) {
            DecodeResult result =
                main_->decode(input, workspace, nullptr);
            if (result.latencyNs > budget_ns) {
                result.aborted = true;
            }
            results[lane] = result;
            continue;
        }
        const double predecode_ns =
            static_cast<double>(pre_result.cycles[lane]) *
            latency_.nsPerCycle;
        if (bit & pre_result.decodedAllMask) {
            DecodeResult result;
            result.predictedObs = pre_result.obsMask[lane];
            result.weight = pre_result.weight[lane];
            result.latencyNs = predecode_ns;
            result.aborted = result.latencyNs > budget_ns;
            results[lane] = result;
            continue;
        }
        DecodeResult main_result;
        if (input.empty()) {
            if (!have_empty_main) {
                empty_main = main_->decode(input, workspace, nullptr);
                have_empty_main = true;
            }
            main_result = empty_main;
        } else {
            main_result = main_->decode(input, workspace, nullptr);
        }
        DecodeResult result;
        result.predictedObs =
            pre_result.obsMask[lane] ^ main_result.predictedObs;
        result.weight =
            pre_result.weight[lane] + main_result.weight;
        if (bit & pre_result.forwardedMask) {
            result.latencyNs =
                std::max(predecode_ns, main_result.latencyNs);
        } else {
            result.latencyNs = predecode_ns + main_result.latencyNs;
        }
        result.aborted =
            main_result.aborted || result.latencyNs > budget_ns;
        results[lane] = result;
    }
}

} // namespace qec
