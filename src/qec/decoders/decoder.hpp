/**
 * @file
 * Common decoder interface.
 *
 * A decoder receives a syndrome (the sorted list of flipped detector
 * indices) and predicts which logical observables flipped. Real-time
 * decoders also report a modeled hardware latency; exceeding the
 * budget marks the result aborted, which the harness counts as a
 * logical error (§6.4 of the paper).
 *
 * Memory contract: the hot `decode()` overload borrows a caller-owned
 * DecodeWorkspace holding every per-decode scratch structure; a warm
 * workspace makes steady-state decoding allocation-free. The
 * workspace-less overload decodes on a lazily created internal
 * workspace, preserving the historical API (and the same
 * steady-state property). DecodeResult itself is plain data — the
 * error-chain lengths that used to ride on it live in DecodeTrace
 * now, computed only when a trace is requested.
 *
 * Thread-safety contract: `decode()` keeps no per-call state on the
 * decoder — all per-decode introspection is written into the
 * caller-owned DecodeTrace out-parameter. One decoder instance (or
 * workspace) must not be shared between threads, but `clone()`
 * produces an independent, identically configured instance, and the
 * default `decodeBatch()` uses clones — each with its own
 * workspace — to fan a batch of syndromes across worker threads
 * with results identical to a serial run.
 *
 * Decoder stacks are described by a DecoderSpec and constructed
 * through the component registry — see qec/api/decoder_spec.hpp and
 * qec/api/registry.hpp, or docs/api.md for the spec grammar.
 */

#ifndef QEC_DECODERS_DECODER_HPP
#define QEC_DECODERS_DECODER_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/path_table.hpp"
#include "qec/matching/matching_problem.hpp"

namespace qec
{

struct DecodeWorkspace;

/** Which Promatch algorithm steps a syndrome exercised (Table 6). */
struct StepUsage
{
    bool step1 = false; //!< Isolated pairs.
    bool step2 = false; //!< Singleton-safe neighbor matches.
    bool step3 = false; //!< Singleton rescue via shortest paths.
    bool step4 = false; //!< Risky matches (may create singletons).

    /** Deepest step reached: 0 (none) .. 4. */
    int
    deepest() const
    {
        if (step4) return 4;
        if (step3) return 3;
        if (step2) return 2;
        if (step1) return 1;
        return 0;
    }
};

/**
 * Outcome of decoding one syndrome. Plain data (trivially
 * copyable): returning or storing one never touches the heap.
 */
struct DecodeResult
{
    /** Predicted observable flips (bit o = observable o). */
    uint64_t predictedObs = 0;
    /** Total weight of the chosen correction (lower = more likely). */
    double weight = 0.0;
    /** Modeled hardware latency; 0 for software baselines. */
    double latencyNs = 0.0;
    /** True if the decoder gave up or blew the deadline. */
    bool aborted = false;
    /** False for software (non-real-time) decoders. */
    bool realTime = true;
};

/**
 * Caller-owned introspection of one decode.
 *
 * Pass a DecodeTrace* to decode() to collect it; pass nullptr to
 * skip all trace bookkeeping on the hot path. Every decoder fills
 * only the fields it understands and resets the rest, so a trace
 * can be reused across calls. Composite decoders (pipeline,
 * parallel) additionally record one child trace per sub-decoder.
 */
struct DecodeTrace
{
    // --- Pipeline stage (PredecodedDecoder).
    bool predecoderEngaged = false;
    int hwBefore = 0;       //!< Syndrome HW entering the stack.
    int hwAfter = 0;        //!< Residual HW handed to the main decoder.
    double predecodeNs = 0.0;
    double mainNs = 0.0;
    StepUsage steps;        //!< Promatch step usage (Table 6).
    int predecodeRounds = 0;
    // --- Parallel arbitration (ParallelDecoder).
    int parallelWinner = -1; //!< 0 = first, 1 = second, -1 = n/a.
    // --- Search decoders (Astrea-G).
    long long searchStates = 0;
    bool searchTruncated = false;
    // --- Matching decoders (MWPM, Astrea, Astrea-G).
    // Error-chain lengths of the final matching (Fig. 5 stats);
    // composite stacks hoist the winning child's lengths here.
    std::vector<int> chainLengths;
    // --- Correction-extracting decoders (UnionFind).
    std::vector<uint32_t> correctionEdges;
    // --- Sub-decoder traces of composite stacks, in child order.
    // Pipeline: children[0] is the main decoder's trace *when the
    // main decoder ran* (empty if an NSM predecoder resolved the
    // whole syndrome locally). Parallel: children[0]/[1] are the
    // two sides.
    std::vector<DecodeTrace> children;

    /**
     * Clear for reuse, keeping vector capacity across decodes.
     * Out of line (decoder.cpp): children.clear() destroys child
     * traces, whose inlined vector deletes would otherwise land in
     * every audited decode body (tools/rt_audit exempts the reset
     * symbol instead).
     */
    void reset();
};

/** Abstract decoder over a fixed decoding graph. */
class Decoder
{
  public:
    // Out of line: the workspace_ member's deleter needs the full
    // DecodeWorkspace type (see decoder.cpp).
    Decoder(const DecodingGraph &graph, const PathTable &paths);
    virtual ~Decoder();

    /**
     * Decode one syndrome given as sorted flipped-detector indices,
     * borrowing the caller's workspace for all scratch state.
     *
     * @param defects    sorted flipped-detector indices
     * @param workspace  caller-owned scratch; reusing one (warm)
     *                   workspace across calls makes steady-state
     *                   decoding allocation-free. Must not be
     *                   shared between threads.
     * @param trace      optional caller-owned introspection sink;
     *                   the decoder resets and fills it. nullptr
     *                   skips all trace bookkeeping (including
     *                   chain-length extraction).
     */
    virtual DecodeResult decode(std::span<const uint32_t> defects,
                                DecodeWorkspace &workspace,
                                DecodeTrace *trace = nullptr) = 0;

    /**
     * Historical workspace-less overload: decodes on this
     * instance's lazily created internal workspace. Equivalent to
     * (and bit-identical with) the workspace overload.
     */
    DecodeResult decode(std::span<const uint32_t> defects,
                        DecodeTrace *trace = nullptr);

    /**
     * Independent copy with identical configuration, bound to the
     * same graph/path tables. Clones share no mutable state with
     * the original (internal workspaces included), so each thread
     * of a batched harness can decode on its own clone.
     */
    virtual std::unique_ptr<Decoder> clone() const = 0;

    /**
     * Decode all `lanes` shots of a 64-lane syndrome block (one
     * word per detector, shot l = bit l — the FrameSimulator's
     * BatchResult layout) on the calling thread.
     *
     * Results land at results[0 .. lanes), and every lane's result
     * is bit-identical to a serial decode() of that lane's defect
     * list (fuzz-enforced registry-wide by
     * tests/test_block_decode.cpp). The default implementation
     * extracts the lanes and decodes them one at a time; pipeline
     * stacks override it to carry all lanes through predecode
     * together (see PredecodedDecoder::decodeBlock).
     *
     * @param detectorWords one 64-lane word per detector; bits of
     *                      lanes >= `lanes` are ignored
     * @param lanes         shots in the block, in [1, 64]
     * @param workspace     caller-owned scratch (as decode())
     * @param results       caller-owned array of >= `lanes` slots
     */
    virtual void decodeBlock(std::span<const uint64_t> detectorWords,
                             int lanes, DecodeWorkspace &workspace,
                             DecodeResult *results);

    /**
     * Decode a batch of syndromes, optionally across threads.
     *
     * The default implementation decodes in order on this instance
     * when one worker suffices, and otherwise fans chunks of the
     * batch across worker threads, each working on its own clone()
     * and per-worker workspace (worker 0 runs on the calling
     * thread with this instance). Results and traces land at the
     * same indices as their syndromes and are bit-identical to a
     * serial run for any thread count.
     *
     * @param batch    syndromes (each sorted)
     * @param traces   optional per-syndrome traces, resized to match
     * @param threads  worker thread count; 1 decodes serially, and
     *                 <= 0 means one worker per hardware thread
     *                 (the project-wide convention of
     *                 qec::parallelFor / LerOptions::threads)
     */
    virtual std::vector<DecodeResult> decodeBatch(
        const std::vector<std::vector<uint32_t>> &batch,
        std::vector<DecodeTrace> *traces = nullptr, int threads = 1);

    /** Short identifier used in reports (e.g. "Promatch||AG"). */
    virtual std::string name() const = 0;

    /**
     * True when this decoder's problem builder reads the
     * workspace's gathered DistanceView (the dense matchers).
     * Sparse-core decoders return false so composite stacks can
     * skip shared gathers that nobody would consume.
     */
    virtual bool wantsDistanceView() const { return true; }

    const DecodingGraph &graph() const { return graph_; }
    const PathTable &paths() const { return paths_; }

    /**
     * This instance's internal workspace, created on first use.
     * Exposed so harness code that decodes through the historical
     * overload can still inspect or pre-warm it.
     */
    DecodeWorkspace &internalWorkspace();

  protected:
    const DecodingGraph &graph_;
    const PathTable &paths_;

  private:
    std::unique_ptr<DecodeWorkspace> workspace_;
};

/**
 * Scatter the set bits of a detector-major 64-lane block into
 * per-lane sorted defect lists. Only the buckets of lanes in
 * `laneMask` are cleared and filled; the rest are left untouched
 * (the block decode path relies on that to keep low-HW lanes'
 * buckets alive across a predecodeBlock call).
 */
void scatterBlockLanes(std::span<const uint64_t> detectorWords,
                       uint64_t laneMask,
                       std::array<std::vector<uint32_t>, 64> &lanes);

/**
 * Per-worker decoder engines (plus scratch workspaces) for a
 * deterministic fork/join region: worker 0 decodes on the source
 * instance (the calling thread's slice), workers 1..W-1 on clones.
 * Clones are created serially in the constructor — the Decoder
 * contract does not promise clone() is safe while another thread
 * decodes on the source — and shared by decodeBatch, estimateLer,
 * and estimateLerDirect. Each worker gets its own DecodeWorkspace,
 * reused across every syndrome that worker decodes.
 */
class WorkerDecoders
{
  public:
    WorkerDecoders(Decoder &source, int workers);
    ~WorkerDecoders();

    /** The engine worker `worker` must decode on. */
    Decoder *
    engine(int worker) const
    {
        return worker == 0 ? &source_
                           : clones_[worker - 1].get();
    }

    /**
     * The scratch workspace owned by worker `worker`. Worker 0
     * reuses the source decoder's internal workspace, so repeated
     * fork/join regions over the same decoder stay warm instead of
     * re-warming a fresh workspace every call.
     */
    DecodeWorkspace &
    workspace(int worker) const
    {
        return worker == 0 ? sourceWorkspace_
                           : *workspaces_[worker - 1];
    }

  private:
    Decoder &source_;
    DecodeWorkspace &sourceWorkspace_;
    std::vector<std::unique_ptr<Decoder>> clones_;
    std::vector<std::unique_ptr<DecodeWorkspace>> workspaces_;
};

} // namespace qec

#endif // QEC_DECODERS_DECODER_HPP
