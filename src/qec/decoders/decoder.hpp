/**
 * @file
 * Common decoder interface.
 *
 * A decoder receives a syndrome (the sorted list of flipped detector
 * indices) and predicts which logical observables flipped. Real-time
 * decoders also report a modeled hardware latency; exceeding the
 * budget marks the result aborted, which the harness counts as a
 * logical error (§6.4 of the paper).
 */

#ifndef QEC_DECODERS_DECODER_HPP
#define QEC_DECODERS_DECODER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/path_table.hpp"
#include "qec/matching/matching_problem.hpp"

namespace qec
{

/** Outcome of decoding one syndrome. */
struct DecodeResult
{
    /** Predicted observable flips (bit o = observable o). */
    uint64_t predictedObs = 0;
    /** Total weight of the chosen correction (lower = more likely). */
    double weight = 0.0;
    /** Modeled hardware latency; 0 for software baselines. */
    double latencyNs = 0.0;
    /** True if the decoder gave up or blew the deadline. */
    bool aborted = false;
    /** False for software (non-real-time) decoders. */
    bool realTime = true;
    /** Error-chain lengths of the final matching (Fig. 5 stats). */
    std::vector<int> chainLengths;
};

/** Abstract decoder over a fixed decoding graph. */
class Decoder
{
  public:
    Decoder(const DecodingGraph &graph, const PathTable &paths)
        : graph_(graph), paths_(paths)
    {
    }
    virtual ~Decoder() = default;

    /** Decode one syndrome given as sorted flipped-detector indices. */
    virtual DecodeResult decode(
        const std::vector<uint32_t> &defects) = 0;

    /** Short identifier used in reports (e.g. "Promatch||AG"). */
    virtual std::string name() const = 0;

    const DecodingGraph &graph() const { return graph_; }
    const PathTable &paths() const { return paths_; }

  protected:
    const DecodingGraph &graph_;
    const PathTable &paths_;
};

} // namespace qec

#endif // QEC_DECODERS_DECODER_HPP
