#include "qec/decoders/mwpm_decoder.hpp"

#include "qec/api/registry.hpp"
#include "qec/matching/blossom.hpp"
#include "qec/matching/defect_graph.hpp"

namespace qec
{

DecodeResult
MwpmDecoder::decode(std::span<const uint32_t> defects,
                    DecodeTrace *trace)
{
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }
    DecodeResult result;
    result.realTime = false;
    if (defects.empty()) {
        return result;
    }
    const DefectGraph dg = buildDefectGraph(defects, paths_);
    const MatchingSolution solution = solveBlossom(dg.problem);
    if (!solution.valid) {
        result.aborted = true;
        return result;
    }
    result.predictedObs = dg.solutionObs(paths_, solution);
    result.weight = solution.totalWeight;
    result.chainLengths = dg.chainLengths(paths_, solution);
    return result;
}

QEC_REGISTER_DECODER(
    mwpm, "idealized software MWPM (exact, not real-time)",
    [](const BuildContext &context) {
        return std::make_unique<MwpmDecoder>(context.graph,
                                             context.paths);
    });

} // namespace qec
