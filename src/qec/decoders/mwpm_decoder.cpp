#include "qec/decoders/mwpm_decoder.hpp"

#include "qec/matching/blossom.hpp"
#include "qec/matching/defect_graph.hpp"

namespace qec
{

DecodeResult
MwpmDecoder::decode(const std::vector<uint32_t> &defects)
{
    DecodeResult result;
    result.realTime = false;
    if (defects.empty()) {
        return result;
    }
    const DefectGraph dg = buildDefectGraph(defects, paths_);
    const MatchingSolution solution = solveBlossom(dg.problem);
    if (!solution.valid) {
        result.aborted = true;
        return result;
    }
    result.predictedObs = dg.solutionObs(paths_, solution);
    result.weight = solution.totalWeight;
    result.chainLengths = dg.chainLengths(paths_, solution);
    return result;
}

} // namespace qec
