#include "qec/decoders/mwpm_decoder.hpp"

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/matching/defect_graph.hpp"
#include "qec/util/realtime.hpp"

namespace qec
{

DecodeResult
MwpmDecoder::decode(std::span<const uint32_t> defects,
                    DecodeWorkspace &workspace, DecodeTrace *trace)
{
    QEC_REALTIME;
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }
    DecodeResult result;
    result.realTime = false;
    if (defects.empty()) {
        return result;
    }
    DefectGraph &dg = workspace.defectGraph;
    buildDefectGraphInto(defects, paths_, workspace.distances,
                         dg);
    MatchingSolution &solution = workspace.solution;
    workspace.blossom.solve(dg.problem, solution);
    if (!solution.valid) {
        result.aborted = true;
        return result;
    }
    result.predictedObs =
        dg.solutionObs(workspace.distances, solution);
    result.weight = solution.totalWeight;
    if (trace) {
        dg.chainLengthsInto(workspace.distances, solution,
                            trace->chainLengths);
    }
    return result;
}

QEC_REGISTER_DECODER(
    mwpm, "idealized software MWPM (exact, not real-time)",
    [](const BuildContext &context) {
        return std::make_unique<MwpmDecoder>(context.graph,
                                             context.paths);
    });

} // namespace qec
