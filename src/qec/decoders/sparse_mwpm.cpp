#include "qec/decoders/sparse_mwpm.hpp"

#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/util/realtime.hpp"

namespace qec
{

DecodeResult
SparseMwpmDecoder::decode(std::span<const uint32_t> defects,
                          DecodeWorkspace &workspace,
                          DecodeTrace *trace)
{
    QEC_REALTIME;
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }
    DecodeResult result;
    result.realTime = false;
    if (defects.empty()) {
        return result;
    }
    SparseMatchingProblem &problem = workspace.sparseProblem;
    problem.build(paths_, defects);
    MatchingSolution &solution = workspace.solution;
    workspace.sparseMatcher.solve(problem, solution);
    if (!solution.valid) {
        result.aborted = true;
        return result;
    }
    result.predictedObs = problem.solutionObs(solution);
    result.weight = solution.totalWeight;
    if (trace) {
        problem.chainLengthsInto(solution, trace->chainLengths);
    }
    return result;
}

QEC_REGISTER_DECODER(
    sparse,
    "exact MWPM via sparse local growth (PathTable-pair-free)",
    [](const BuildContext &context) {
        return std::make_unique<SparseMwpmDecoder>(context.graph,
                                                   context.paths);
    });

} // namespace qec
