/**
 * @file
 * Behavioural model of the Astrea-G decoder [66] (§4.2.3).
 *
 * Astrea-G builds the complete MWPM graph over the flipped bits,
 * prunes edges whose error-chain probability falls below the LER
 * scale, and then runs a greedy near-exhaustive (budgeted
 * branch-and-bound) search over the remaining pairings. Sparse
 * syndromes prune well and decode exactly; dense high-HW syndromes
 * exhaust the search budget and fall back to the best greedy
 * matching found, which is where the paper's 43x accuracy loss at
 * d = 13 comes from.
 */

#ifndef QEC_DECODERS_ASTREA_G_HPP
#define QEC_DECODERS_ASTREA_G_HPP

#include "qec/decoders/decoder.hpp"
#include "qec/decoders/latency.hpp"

namespace qec
{

/** Pruned, budgeted near-exhaustive matching decoder. */
class AstreaGDecoder : public Decoder
{
  public:
    AstreaGDecoder(const DecodingGraph &graph, const PathTable &paths,
                   const LatencyConfig &latency = {})
        : Decoder(graph, paths), latency_(latency)
    {
    }

    DecodeResult decode(const std::vector<uint32_t> &defects) override;
    std::string name() const override { return "Astrea-G"; }

    /** Search states expanded while decoding the last syndrome. */
    long long lastStatesExplored() const { return statesExplored; }

    /** True if the last decode ran out of search budget. */
    bool lastSearchTruncated() const { return searchTruncated; }

  private:
    LatencyConfig latency_;
    long long statesExplored = 0;
    bool searchTruncated = false;
};

} // namespace qec

#endif // QEC_DECODERS_ASTREA_G_HPP
