/**
 * @file
 * Behavioural model of the Astrea-G decoder [66] (§4.2.3).
 *
 * Astrea-G builds the complete MWPM graph over the flipped bits,
 * prunes edges whose error-chain probability falls below the LER
 * scale, and then runs a greedy near-exhaustive (budgeted
 * branch-and-bound) search over the remaining pairings. Sparse
 * syndromes prune well and decode exactly; dense high-HW syndromes
 * exhaust the search budget and fall back to the best greedy
 * matching found, which is where the paper's 43x accuracy loss at
 * d = 13 comes from.
 */

#ifndef QEC_DECODERS_ASTREA_G_HPP
#define QEC_DECODERS_ASTREA_G_HPP

#include "qec/decoders/decoder.hpp"
#include "qec/decoders/latency.hpp"

namespace qec
{

/** Pruned, budgeted near-exhaustive matching decoder. */
class AstreaGDecoder : public Decoder
{
  public:
    AstreaGDecoder(const DecodingGraph &graph, const PathTable &paths,
                   const LatencyConfig &latency = {})
        : Decoder(graph, paths), latency_(latency)
    {
    }

    /**
     * Decode; search statistics (states expanded, budget
     * truncation) land in DecodeTrace::searchStates /
     * searchTruncated.
     */
    using Decoder::decode;
    DecodeResult decode(std::span<const uint32_t> defects,
                        DecodeWorkspace &workspace,
                        DecodeTrace *trace = nullptr) override;

    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<AstreaGDecoder>(graph_, paths_,
                                                latency_);
    }

    std::string name() const override { return "Astrea-G"; }

  private:
    LatencyConfig latency_;
};

} // namespace qec

#endif // QEC_DECODERS_ASTREA_G_HPP
