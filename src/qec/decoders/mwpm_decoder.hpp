/**
 * @file
 * Idealized (software) MWPM decoder — the accuracy gold standard.
 *
 * Solves the complete defect graph exactly with the blossom core.
 * It is not real-time (the paper's "MWPM (Ideal)" baseline): the
 * reported latency is zero and realTime is false.
 */

#ifndef QEC_DECODERS_MWPM_DECODER_HPP
#define QEC_DECODERS_MWPM_DECODER_HPP

#include "qec/decoders/decoder.hpp"

namespace qec
{

/** Exact minimum-weight perfect matching decoder. */
class MwpmDecoder : public Decoder
{
  public:
    using Decoder::Decoder;

    using Decoder::decode;
    DecodeResult decode(std::span<const uint32_t> defects,
                        DecodeWorkspace &workspace,
                        DecodeTrace *trace = nullptr) override;

    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<MwpmDecoder>(graph_, paths_);
    }

    std::string name() const override { return "MWPM"; }
};

} // namespace qec

#endif // QEC_DECODERS_MWPM_DECODER_HPP
