#include "qec/decoders/factory.hpp"

#include <array>
#include <utility>

#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

/** Historical evaluation names -> canonical spec strings. */
constexpr std::array<std::pair<const char *, const char *>, 18>
    kLegacyNames{{
        {"mwpm", "mwpm"},
        {"sparse", "sparse"},
        {"astrea", "astrea"},
        {"astrea_g", "astrea_g"},
        {"union_find", "union_find"},
        {"promatch_astrea", "promatch+astrea"},
        {"smith_astrea", "smith+astrea"},
        {"clique_astrea", "clique+astrea"},
        {"hierarchical_astrea", "hierarchical+astrea"},
        {"clique_mwpm", "clique+mwpm"},
        {"clique_ag", "clique+astrea_g"},
        {"promatch_par_ag", "promatch+astrea||astrea_g"},
        {"smith_par_ag", "smith+astrea||astrea_g"},
        {"promatch_sparse", "promatch+sparse"},
        {"pinball_sparse", "pinball+sparse"},
        {"pinball_astrea", "pinball+astrea"},
        {"pinball_mwpm", "pinball+mwpm"},
        {"pinball_par_ag", "pinball+astrea||astrea_g"},
    }};

} // namespace

std::string
specForName(const std::string &name)
{
    for (const auto &[legacy, spec] : kLegacyNames) {
        if (name == legacy) {
            return spec;
        }
    }
    return name;
}

std::unique_ptr<Decoder>
makeDecoder(const std::string &name, const DecodingGraph &graph,
            const PathTable &paths, const LatencyConfig &latency,
            const PromatchConfig &promatch)
{
    try {
        return build(DecoderSpec::parse(specForName(name)), graph,
                     paths, latency, promatch);
    } catch (const SpecError &error) {
        const std::string message =
            "unknown decoder configuration '" + name +
            "': " + error.what();
        QEC_FATAL(message.c_str());
    }
}

std::vector<std::string>
decoderNames()
{
    std::vector<std::string> names;
    names.reserve(kLegacyNames.size());
    for (const auto &[legacy, spec] : kLegacyNames) {
        names.push_back(legacy);
    }
    return names;
}

} // namespace qec
