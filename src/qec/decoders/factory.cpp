#include "qec/decoders/factory.hpp"

#include "qec/decoders/astrea.hpp"
#include "qec/decoders/astrea_g.hpp"
#include "qec/decoders/mwpm_decoder.hpp"
#include "qec/decoders/parallel.hpp"
#include "qec/decoders/pipeline.hpp"
#include "qec/decoders/union_find.hpp"
#include "qec/predecode/clique.hpp"
#include "qec/predecode/hierarchical.hpp"
#include "qec/predecode/smith.hpp"
#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

std::unique_ptr<Decoder>
makePipeline(std::unique_ptr<Predecoder> pre,
             std::unique_ptr<Decoder> main,
             const DecodingGraph &graph, const PathTable &paths,
             const LatencyConfig &latency)
{
    return std::make_unique<PredecodedDecoder>(
        graph, paths, std::move(pre), std::move(main), latency);
}

} // namespace

std::unique_ptr<Decoder>
makeDecoder(const std::string &name, const DecodingGraph &graph,
            const PathTable &paths, const LatencyConfig &latency,
            const PromatchConfig &promatch)
{
    if (name == "mwpm") {
        return std::make_unique<MwpmDecoder>(graph, paths);
    }
    if (name == "astrea") {
        return std::make_unique<AstreaDecoder>(graph, paths,
                                               latency);
    }
    if (name == "astrea_g") {
        return std::make_unique<AstreaGDecoder>(graph, paths,
                                                latency);
    }
    if (name == "union_find") {
        return std::make_unique<UnionFindDecoder>(graph, paths);
    }
    if (name == "promatch_astrea") {
        return makePipeline(
            std::make_unique<PromatchPredecoder>(
                graph, paths, latency, promatch),
            std::make_unique<AstreaDecoder>(graph, paths, latency),
            graph, paths, latency);
    }
    if (name == "smith_astrea") {
        return makePipeline(
            std::make_unique<SmithPredecoder>(graph, paths),
            std::make_unique<AstreaDecoder>(graph, paths, latency),
            graph, paths, latency);
    }
    if (name == "clique_astrea") {
        return makePipeline(
            std::make_unique<CliquePredecoder>(graph, paths),
            std::make_unique<AstreaDecoder>(graph, paths, latency),
            graph, paths, latency);
    }
    if (name == "hierarchical_astrea") {
        return makePipeline(
            std::make_unique<HierarchicalPredecoder>(graph, paths),
            std::make_unique<AstreaDecoder>(graph, paths, latency),
            graph, paths, latency);
    }
    if (name == "clique_mwpm") {
        // Clique in front of software MWPM (Fig. 4's Clique+MWPM):
        // accuracy of MWPM, but the main decoder is not real-time.
        return makePipeline(
            std::make_unique<CliquePredecoder>(graph, paths),
            std::make_unique<MwpmDecoder>(graph, paths), graph,
            paths, latency);
    }
    if (name == "clique_ag") {
        return makePipeline(
            std::make_unique<CliquePredecoder>(graph, paths),
            std::make_unique<AstreaGDecoder>(graph, paths, latency),
            graph, paths, latency);
    }
    if (name == "promatch_par_ag") {
        return std::make_unique<ParallelDecoder>(
            graph, paths,
            makeDecoder("promatch_astrea", graph, paths, latency,
                        promatch),
            makeDecoder("astrea_g", graph, paths, latency),
            latency);
    }
    if (name == "smith_par_ag") {
        return std::make_unique<ParallelDecoder>(
            graph, paths,
            makeDecoder("smith_astrea", graph, paths, latency),
            makeDecoder("astrea_g", graph, paths, latency),
            latency);
    }
    QEC_FATAL("unknown decoder configuration name");
}

std::vector<std::string>
decoderNames()
{
    return {"mwpm",
            "astrea",
            "astrea_g",
            "union_find",
            "promatch_astrea",
            "smith_astrea",
            "clique_astrea",
            "hierarchical_astrea",
            "clique_mwpm",
            "clique_ag",
            "promatch_par_ag",
            "smith_par_ag"};
}

} // namespace qec
