/**
 * @file
 * Sparse exact MWPM decoder — the high-distance matching core.
 *
 * Same accuracy contract as MwpmDecoder (exact minimum-weight
 * matching, not real-time), but built on the sparse local-growth
 * matcher: no dense S×S problem matrix, and no dependency on the
 * O(V²) pair half of the PathTable — it runs unchanged on a table
 * built with PathTable::DeferPairs, which is what makes d = 21
 * stacks constructible at all. Registered as component "sparse";
 * select it anywhere a main decoder goes in a spec string (e.g.
 * "sparse", "promatch+sparse").
 */

#ifndef QEC_DECODERS_SPARSE_MWPM_HPP
#define QEC_DECODERS_SPARSE_MWPM_HPP

#include "qec/decoders/decoder.hpp"

namespace qec
{

/** Exact MWPM over the sparse local-growth matching core. */
class SparseMwpmDecoder : public Decoder
{
  public:
    using Decoder::Decoder;

    using Decoder::decode;
    DecodeResult decode(std::span<const uint32_t> defects,
                        DecodeWorkspace &workspace,
                        DecodeTrace *trace = nullptr) override;

    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<SparseMwpmDecoder>(graph_, paths_);
    }

    std::string name() const override { return "SparseMWPM"; }

    /** The sparse core never reads the gathered DistanceView, so
     *  pipeline stacks skip the shared union pre-gather. */
    bool wantsDistanceView() const override { return false; }
};

} // namespace qec

#endif // QEC_DECODERS_SPARSE_MWPM_HPP
