#include "qec/decoders/union_find.hpp"

#include <algorithm>
#include <queue>

#include "qec/api/registry.hpp"
#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

/** Disjoint-set forest with parity (defect count mod 2) and
 *  boundary-contact tracking per cluster root. */
class ClusterSets
{
  public:
    explicit ClusterSets(uint32_t n)
        : parent(n + 1), odd(n + 1, false), touchesBoundary(n + 1)
    {
        for (uint32_t i = 0; i <= n; ++i) {
            parent[i] = i;
        }
        // The last slot is the virtual boundary vertex: contact with
        // it neutralizes any cluster.
        touchesBoundary[n] = true;
        boundaryVertex = n;
    }

    uint32_t
    find(uint32_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    void
    unite(uint32_t a, uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b) {
            return;
        }
        parent[b] = a;
        odd[a] = odd[a] != odd[b];
        touchesBoundary[a] =
            touchesBoundary[a] || touchesBoundary[b];
    }

    bool
    isActive(uint32_t x)
    {
        const uint32_t r = find(x);
        return odd[r] && !touchesBoundary[r];
    }

    void
    markDefect(uint32_t x)
    {
        const uint32_t r = find(x);
        odd[r] = !odd[r];
    }

    uint32_t boundaryVertex;
    std::vector<uint32_t> parent;
    std::vector<bool> odd;
    std::vector<bool> touchesBoundary;
};

} // namespace

DecodeResult
UnionFindDecoder::decode(std::span<const uint32_t> defects,
                         DecodeTrace *trace)
{
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }
    DecodeResult result;
    std::vector<uint32_t> &correction = correction_;
    correction.clear();
    if (defects.empty()) {
        return result;
    }

    const uint32_t n = graph_.numDetectors();
    ClusterSets clusters(n);
    std::vector<bool> is_defect(n, false);
    for (uint32_t d : defects) {
        is_defect[d] = true;
        clusters.markDefect(d);
    }

    // --- Growth. Each edge has growth 0..2 halves; an edge becomes
    // part of the cluster support when fully grown. Odd clusters grow
    // all edges incident to their current vertex set each round.
    const auto &edges = graph_.edges();
    std::vector<uint8_t> growth(edges.size(), 0);
    std::vector<bool> in_support(n, false);
    for (uint32_t d : defects) {
        in_support[d] = true;
    }

    bool any_active = true;
    int guard = 0;
    while (any_active) {
        QEC_ASSERT(++guard < 10000, "union-find growth diverged");
        any_active = false;
        std::vector<uint32_t> newly_full;
        for (uint32_t eid = 0; eid < edges.size(); ++eid) {
            if (growth[eid] >= 2) {
                continue;
            }
            const GraphEdge &edge = edges[eid];
            const bool u_active =
                in_support[edge.u] && clusters.isActive(edge.u);
            const bool v_active = edge.v != kBoundary &&
                                  in_support[edge.v] &&
                                  clusters.isActive(edge.v);
            if (!u_active && !v_active) {
                continue;
            }
            any_active = true;
            growth[eid] += (u_active && v_active) ? 2 : 1;
            if (growth[eid] >= 2) {
                growth[eid] = 2;
                newly_full.push_back(eid);
            }
        }
        for (uint32_t eid : newly_full) {
            const GraphEdge &edge = edges[eid];
            const uint32_t v = (edge.v == kBoundary)
                                   ? clusters.boundaryVertex
                                   : edge.v;
            if (edge.v != kBoundary) {
                in_support[edge.v] = true;
            }
            in_support[edge.u] = true;
            clusters.unite(edge.u, v);
        }
        if (!any_active) {
            break;
        }
        // Re-check: if all clusters went neutral we are done.
        any_active = false;
        for (uint32_t d : defects) {
            if (clusters.isActive(d)) {
                any_active = true;
                break;
            }
        }
    }

    // --- Peeling. Build a spanning forest over fully grown edges,
    // rooting each tree at the boundary when available, then peel
    // leaves upward: a vertex with an unresolved defect toggles the
    // edge to its parent into the correction.
    std::vector<int> parent_edge(n, -1);
    std::vector<int> parent_vertex(n, -1);
    std::vector<bool> visited(n, false);
    std::vector<uint32_t> order;

    // Adjacency restricted to grown edges.
    std::vector<std::vector<uint32_t>> grown_adj(n);
    std::vector<int> boundary_root_edge(n, -1);
    for (uint32_t eid = 0; eid < edges.size(); ++eid) {
        if (growth[eid] < 2) {
            continue;
        }
        const GraphEdge &edge = edges[eid];
        if (edge.v == kBoundary) {
            boundary_root_edge[edge.u] = static_cast<int>(eid);
        } else {
            grown_adj[edge.u].push_back(eid);
            grown_adj[edge.v].push_back(eid);
        }
    }

    // BFS from boundary-attached vertices first (their trees can dump
    // parity into the boundary), then from arbitrary roots.
    std::queue<uint32_t> queue;
    auto bfs_from = [&](uint32_t root) {
        visited[root] = true;
        queue.push(root);
        while (!queue.empty()) {
            const uint32_t u = queue.front();
            queue.pop();
            order.push_back(u);
            for (uint32_t eid : grown_adj[u]) {
                const GraphEdge &edge = edges[eid];
                const uint32_t w =
                    (edge.u == u) ? edge.v : edge.u;
                if (!visited[w]) {
                    visited[w] = true;
                    parent_edge[w] = static_cast<int>(eid);
                    parent_vertex[w] = static_cast<int>(u);
                    queue.push(w);
                }
            }
        }
    };
    for (uint32_t v = 0; v < n; ++v) {
        if (boundary_root_edge[v] >= 0 && !visited[v]) {
            bfs_from(v);
        }
    }
    for (uint32_t d : defects) {
        if (!visited[d]) {
            bfs_from(d);
        }
    }

    // Peel in reverse BFS order.
    std::vector<bool> flagged(n, false);
    for (uint32_t d : defects) {
        flagged[d] = true;
    }
    uint64_t obs = 0;
    double weight = 0.0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const uint32_t u = *it;
        if (!flagged[u]) {
            continue;
        }
        if (parent_edge[u] >= 0) {
            const GraphEdge &edge = edges[parent_edge[u]];
            correction.push_back(edge.id);
            obs ^= edge.obsMask;
            weight += edge.weight;
            flagged[u] = false;
            const uint32_t p =
                static_cast<uint32_t>(parent_vertex[u]);
            flagged[p] = !flagged[p];
        } else if (boundary_root_edge[u] >= 0) {
            const GraphEdge &edge = edges[boundary_root_edge[u]];
            correction.push_back(edge.id);
            obs ^= edge.obsMask;
            weight += edge.weight;
            flagged[u] = false;
        } else {
            // A root with unresolved parity and no boundary: the
            // growth stage guarantees this cannot happen.
            result.aborted = true;
            return result;
        }
    }

    result.predictedObs = obs;
    result.weight = weight;
    // Union-find is fast in hardware; model a token latency that is
    // always within budget (AFS reports sub-500ns for these sizes).
    result.latencyNs = 420.0;
    if (trace) {
        // Copy (not move) so the scratch keeps its capacity.
        trace->correctionEdges = correction;
    }
    return result;
}

QEC_REGISTER_DECODER(
    union_find,
    "Delfosse-Nickerson cluster-growth union-find decoder",
    [](const BuildContext &context) {
        return std::make_unique<UnionFindDecoder>(context.graph,
                                                  context.paths);
    });

} // namespace qec
