#include "qec/decoders/union_find.hpp"

#include <algorithm>

#include "qec/api/registry.hpp"
#include "qec/util/assert.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

/**
 * Reusable per-decode state. Every vector is assign()ed to its
 * fixed, graph-derived size at the top of decode, so after the
 * first decode no buffer ever reallocates.
 */
struct UnionFindDecoder::Scratch
{
    // --- Disjoint-set forest with parity (defect count mod 2) and
    // boundary-contact tracking per cluster root. Slot n is the
    // virtual boundary vertex: contact with it neutralizes any
    // cluster.
    std::vector<uint32_t> parent;
    std::vector<uint8_t> odd;
    std::vector<uint8_t> touchesBoundary;
    uint32_t boundaryVertex = 0;

    // --- Growth stage.
    std::vector<uint8_t> growth;    //!< 0..2 halves per edge.
    std::vector<uint8_t> inSupport; //!< Per detector.
    std::vector<uint32_t> newlyFull;

    // --- Peeling stage.
    std::vector<int> parentEdge, parentVertex;
    std::vector<uint8_t> visited, flagged;
    std::vector<uint32_t> order;
    std::vector<int> boundaryRootEdge;
    // Adjacency restricted to grown edges, CSR over detectors.
    std::vector<int32_t> grownOffset, grownCursor;
    std::vector<uint32_t> grownEdge;
    std::vector<uint32_t> queue; //!< BFS ring (head index below).
    std::vector<uint32_t> correction;

    uint32_t
    find(uint32_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    void
    unite(uint32_t a, uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b) {
            return;
        }
        parent[b] = a;
        odd[a] = odd[a] != odd[b];
        touchesBoundary[a] =
            touchesBoundary[a] || touchesBoundary[b];
    }

    bool
    isActive(uint32_t x)
    {
        const uint32_t r = find(x);
        return odd[r] && !touchesBoundary[r];
    }

    void
    markDefect(uint32_t x)
    {
        const uint32_t r = find(x);
        odd[r] = !odd[r];
    }
};

UnionFindDecoder::UnionFindDecoder(const DecodingGraph &graph,
                                   const PathTable &paths)
    : Decoder(graph, paths)
{
    // Eager so decode() never runs make_unique: a lazily created
    // scratch would put a first-call operator new straight into the
    // audited hot body.
    scratch_ = std::make_unique<Scratch>();
}

UnionFindDecoder::~UnionFindDecoder() = default;

std::unique_ptr<Decoder>
UnionFindDecoder::clone() const
{
    return std::make_unique<UnionFindDecoder>(graph_, paths_);
}

DecodeResult
UnionFindDecoder::decode(std::span<const uint32_t> defects,
                         DecodeWorkspace & /*workspace*/,
                         DecodeTrace *trace)
{
    QEC_REALTIME;
    if (trace) {
        trace->reset();
        trace->hwBefore = static_cast<int>(defects.size());
    }
    DecodeResult result;
    Scratch &s = *scratch_;
    s.correction.clear();
    if (defects.empty()) {
        return result;
    }

    const uint32_t n = graph_.numDetectors();
    rt::assignFill(s.parent, n + 1, 0u);
    for (uint32_t i = 0; i <= n; ++i) {
        s.parent[i] = i;
    }
    rt::assignFill<uint8_t>(s.odd, n + 1, 0);
    rt::assignFill<uint8_t>(s.touchesBoundary, n + 1, 0);
    s.touchesBoundary[n] = 1;
    s.boundaryVertex = n;
    for (uint32_t d : defects) {
        s.markDefect(d);
    }

    // --- Growth. Each edge has growth 0..2 halves; an edge becomes
    // part of the cluster support when fully grown. Odd clusters grow
    // all edges incident to their current vertex set each round.
    // Every per-edge scan below reads only the SoA endpoint arrays
    // (8 bytes/edge) instead of the 40-byte GraphEdge records.
    const size_t num_edges = graph_.edges().size();
    rt::assignFill<uint8_t>(s.growth, num_edges, 0);
    rt::assignFill<uint8_t>(s.inSupport, n, 0);
    for (uint32_t d : defects) {
        s.inSupport[d] = 1;
    }

    bool any_active = true;
    int guard = 0;
    while (any_active) {
        QEC_ASSERT(++guard < 10000, "union-find growth diverged");
        any_active = false;
        s.newlyFull.clear();
        for (uint32_t eid = 0; eid < num_edges; ++eid) {
            if (s.growth[eid] >= 2) {
                continue;
            }
            const uint32_t eu = graph_.edgeU(eid);
            const uint32_t ev = graph_.edgeV(eid);
            const bool u_active =
                s.inSupport[eu] && s.isActive(eu);
            const bool v_active = ev != kBoundary &&
                                  s.inSupport[ev] &&
                                  s.isActive(ev);
            if (!u_active && !v_active) {
                continue;
            }
            any_active = true;
            s.growth[eid] += (u_active && v_active) ? 2 : 1;
            if (s.growth[eid] >= 2) {
                s.growth[eid] = 2;
                rt::pushBack(s.newlyFull, eid);
            }
        }
        for (uint32_t eid : s.newlyFull) {
            const uint32_t eu = graph_.edgeU(eid);
            const uint32_t ev = graph_.edgeV(eid);
            const uint32_t v =
                (ev == kBoundary) ? s.boundaryVertex : ev;
            if (ev != kBoundary) {
                s.inSupport[ev] = 1;
            }
            s.inSupport[eu] = 1;
            s.unite(eu, v);
        }
        if (!any_active) {
            break;
        }
        // Re-check: if all clusters went neutral we are done.
        any_active = false;
        for (uint32_t d : defects) {
            if (s.isActive(d)) {
                any_active = true;
                break;
            }
        }
    }

    // --- Peeling. Build a spanning forest over fully grown edges,
    // rooting each tree at the boundary when available, then peel
    // leaves upward: a vertex with an unresolved defect toggles the
    // edge to its parent into the correction.
    rt::assignFill(s.parentEdge, n, -1);
    rt::assignFill(s.parentVertex, n, -1);
    rt::assignFill<uint8_t>(s.visited, n, 0);
    s.order.clear();

    // Adjacency restricted to grown edges (CSR, filled in edge-id
    // order so BFS neighbor order matches a per-vertex push_back).
    rt::assignFill(s.grownOffset, n + 1, 0);
    rt::assignFill(s.boundaryRootEdge, n, -1);
    for (uint32_t eid = 0; eid < num_edges; ++eid) {
        if (s.growth[eid] < 2) {
            continue;
        }
        const uint32_t eu = graph_.edgeU(eid);
        const uint32_t ev = graph_.edgeV(eid);
        if (ev == kBoundary) {
            s.boundaryRootEdge[eu] = static_cast<int>(eid);
        } else {
            ++s.grownOffset[eu + 1];
            ++s.grownOffset[ev + 1];
        }
    }
    for (uint32_t v = 0; v < n; ++v) {
        s.grownOffset[v + 1] += s.grownOffset[v];
    }
    rt::assignFill(s.grownEdge,
                   static_cast<size_t>(s.grownOffset[n]), 0u);
    rt::assignRange(s.grownCursor, s.grownOffset.begin(),
                    s.grownOffset.end() - 1);
    for (uint32_t eid = 0; eid < num_edges; ++eid) {
        if (s.growth[eid] < 2) {
            continue;
        }
        const uint32_t eu = graph_.edgeU(eid);
        const uint32_t ev = graph_.edgeV(eid);
        if (ev != kBoundary) {
            s.grownEdge[s.grownCursor[eu]++] = eid;
            s.grownEdge[s.grownCursor[ev]++] = eid;
        }
    }

    // BFS from boundary-attached vertices first (their trees can dump
    // parity into the boundary), then from arbitrary roots.
    s.queue.clear();
    auto bfs_from = [&](uint32_t root) {
        size_t head = s.queue.size();
        s.visited[root] = 1;
        rt::pushBack(s.queue, root);
        while (head < s.queue.size()) {
            const uint32_t u = s.queue[head++];
            rt::pushBack(s.order, u);
            for (int32_t o = s.grownOffset[u];
                 o < s.grownOffset[u + 1]; ++o) {
                const uint32_t eid = s.grownEdge[o];
                const uint32_t eu = graph_.edgeU(eid);
                const uint32_t w =
                    (eu == u) ? graph_.edgeV(eid) : eu;
                if (!s.visited[w]) {
                    s.visited[w] = 1;
                    s.parentEdge[w] = static_cast<int>(eid);
                    s.parentVertex[w] = static_cast<int>(u);
                    rt::pushBack(s.queue, w);
                }
            }
        }
    };
    for (uint32_t v = 0; v < n; ++v) {
        if (s.boundaryRootEdge[v] >= 0 && !s.visited[v]) {
            bfs_from(v);
        }
    }
    for (uint32_t d : defects) {
        if (!s.visited[d]) {
            bfs_from(d);
        }
    }

    // Peel in reverse BFS order.
    rt::assignFill<uint8_t>(s.flagged, n, 0);
    for (uint32_t d : defects) {
        s.flagged[d] = 1;
    }
    uint64_t obs = 0;
    double weight = 0.0;
    for (auto it = s.order.rbegin(); it != s.order.rend(); ++it) {
        const uint32_t u = *it;
        if (!s.flagged[u]) {
            continue;
        }
        if (s.parentEdge[u] >= 0) {
            const uint32_t eid =
                static_cast<uint32_t>(s.parentEdge[u]);
            rt::pushBack(s.correction, eid);
            obs ^= graph_.edgeObsMask(eid);
            weight += graph_.edgeWeight(eid);
            s.flagged[u] = 0;
            const uint32_t p =
                static_cast<uint32_t>(s.parentVertex[u]);
            s.flagged[p] = !s.flagged[p];
        } else if (s.boundaryRootEdge[u] >= 0) {
            const uint32_t eid = static_cast<uint32_t>(
                s.boundaryRootEdge[u]);
            rt::pushBack(s.correction, eid);
            obs ^= graph_.edgeObsMask(eid);
            weight += graph_.edgeWeight(eid);
            s.flagged[u] = 0;
        } else {
            // A root with unresolved parity and no boundary: the
            // growth stage guarantees this cannot happen.
            result.aborted = true;
            return result;
        }
    }

    result.predictedObs = obs;
    result.weight = weight;
    // Union-find is fast in hardware; model a token latency that is
    // always within budget (AFS reports sub-500ns for these sizes).
    result.latencyNs = 420.0;
    if (trace) {
        // Copy (not move) so the scratch keeps its capacity.
        rt::assignRange(trace->correctionEdges,
                        s.correction.begin(),
                        s.correction.end());
    }
    return result;
}

QEC_REGISTER_DECODER(
    union_find,
    "Delfosse-Nickerson cluster-growth union-find decoder",
    [](const BuildContext &context) {
        return std::make_unique<UnionFindDecoder>(context.graph,
                                                  context.paths);
    });

} // namespace qec
