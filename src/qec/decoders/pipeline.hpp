/**
 * @file
 * Predecoder + main-decoder pipeline (Fig. 1(a)/Fig. 3).
 *
 * Low-HW syndromes (HW <= threshold) go straight to the main decoder,
 * exactly as in the paper's evaluation where predecoding applies only
 * to HW > 10. High-HW syndromes pass through the predecoder; SM
 * predecoders hand over the residual, NSM ones either finish locally
 * or forward everything. The combined latency is checked against the
 * real-time budget; overruns abort (= logical error, §6.4).
 *
 * Per-decode introspection (HW reduction, stage latencies, Promatch
 * step usage) goes into the caller's DecodeTrace; when the main
 * decoder runs, its own trace lands in trace->children[0] (children
 * stays empty if an NSM predecoder resolves the syndrome locally).
 */

#ifndef QEC_DECODERS_PIPELINE_HPP
#define QEC_DECODERS_PIPELINE_HPP

#include <memory>

#include "qec/decoders/decoder.hpp"
#include "qec/decoders/latency.hpp"
#include "qec/predecode/predecoder.hpp"

namespace qec
{

/** Predecoder followed by a main decoder. */
class PredecodedDecoder : public Decoder
{
  public:
    PredecodedDecoder(const DecodingGraph &graph,
                      const PathTable &paths,
                      std::unique_ptr<Predecoder> predecoder,
                      std::unique_ptr<Decoder> main,
                      const LatencyConfig &latency = {})
        : Decoder(graph, paths), pre(std::move(predecoder)),
          main_(std::move(main)), latency_(latency)
    {
    }

    using Decoder::decode;
    DecodeResult decode(std::span<const uint32_t> defects,
                        DecodeWorkspace &workspace,
                        DecodeTrace *trace = nullptr) override;

    /**
     * 64-lane block path: one predecodeBlock call carries every
     * engaged lane (HW above the threshold) through the predecoder
     * together, lanes the predecoder fully resolves never reach the
     * matcher, and the remaining main-decode inputs share one
     * gathered DistanceView when the union block is cheaper than
     * per-lane gathers. Per-lane results are bit-identical with
     * looping the lanes through decode().
     */
    void decodeBlock(std::span<const uint64_t> detectorWords,
                     int lanes, DecodeWorkspace &workspace,
                     DecodeResult *results) override;

    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<PredecodedDecoder>(
            graph_, paths_, pre->clone(), main_->clone(), latency_);
    }

    std::string
    name() const override
    {
        return pre->name() + "+" + main_->name();
    }

    Predecoder &predecoder() { return *pre; }
    Decoder &mainDecoder() { return *main_; }
    const LatencyConfig &latencyConfig() const { return latency_; }

  private:
    std::unique_ptr<Predecoder> pre;
    std::unique_ptr<Decoder> main_;
    LatencyConfig latency_;
};

} // namespace qec

#endif // QEC_DECODERS_PIPELINE_HPP
