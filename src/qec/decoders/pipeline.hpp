/**
 * @file
 * Predecoder + main-decoder pipeline (Fig. 1(a)/Fig. 3).
 *
 * Low-HW syndromes (HW <= threshold) go straight to the main decoder,
 * exactly as in the paper's evaluation where predecoding applies only
 * to HW > 10. High-HW syndromes pass through the predecoder; SM
 * predecoders hand over the residual, NSM ones either finish locally
 * or forward everything. The combined latency is checked against the
 * real-time budget; overruns abort (= logical error, §6.4).
 */

#ifndef QEC_DECODERS_PIPELINE_HPP
#define QEC_DECODERS_PIPELINE_HPP

#include <memory>

#include "qec/decoders/decoder.hpp"
#include "qec/decoders/latency.hpp"
#include "qec/predecode/predecoder.hpp"

namespace qec
{

/** Statistics of the last pipeline decode (for the benches). */
struct PipelineTrace
{
    bool predecoderEngaged = false;
    int hwBefore = 0;
    int hwAfter = 0;
    double predecodeNs = 0.0;
    double mainNs = 0.0;
    StepUsage steps;
    int predecodeRounds = 0;
};

/** Predecoder followed by a main decoder. */
class PredecodedDecoder : public Decoder
{
  public:
    PredecodedDecoder(const DecodingGraph &graph,
                      const PathTable &paths,
                      std::unique_ptr<Predecoder> predecoder,
                      std::unique_ptr<Decoder> main,
                      const LatencyConfig &latency = {})
        : Decoder(graph, paths), pre(std::move(predecoder)),
          main_(std::move(main)), latency_(latency)
    {
    }

    DecodeResult decode(const std::vector<uint32_t> &defects) override;

    std::string
    name() const override
    {
        return pre->name() + "+" + main_->name();
    }

    /** Introspection for HW-reduction and latency benches. */
    const PipelineTrace &lastTrace() const { return trace; }

    Predecoder &predecoder() { return *pre; }
    Decoder &mainDecoder() { return *main_; }

  private:
    std::unique_ptr<Predecoder> pre;
    std::unique_ptr<Decoder> main_;
    LatencyConfig latency_;
    PipelineTrace trace;
};

} // namespace qec

#endif // QEC_DECODERS_PIPELINE_HPP
