/**
 * @file
 * Union-Find decoder (the AFS-class baseline of Fig. 4).
 *
 * Implements the Delfosse–Nickerson cluster-growth + peeling decoder
 * directly on the decoding graph: odd clusters grow by half-edges,
 * merging on contact, until every cluster is even or touches the
 * boundary; each cluster is then peeled along a spanning forest to
 * extract the correction. Growth is unweighted (uniform), which is
 * exactly what makes union-find less accurate than MWPM at the
 * near-term p = 1e-4 regime the paper evaluates (§7.2).
 *
 * All per-decode state (cluster forest, growth table, spanning
 * forest, peeling flags) lives in a decoder-owned scratch block
 * sized to the decoding graph and reused across decodes, so a warm
 * instance decodes without heap allocation. Clones get their own
 * scratch, keeping the per-thread contract.
 */

#ifndef QEC_DECODERS_UNION_FIND_HPP
#define QEC_DECODERS_UNION_FIND_HPP

#include "qec/decoders/decoder.hpp"

namespace qec
{

/** Cluster-growth union-find decoder. */
class UnionFindDecoder : public Decoder
{
  public:
    // Out of line: the scratch_ member's deleter needs the full
    // Scratch type (see union_find.cpp).
    UnionFindDecoder(const DecodingGraph &graph,
                     const PathTable &paths);
    ~UnionFindDecoder() override;

    /**
     * Decode; the chosen correction-edge ids land in
     * DecodeTrace::correctionEdges (for validity checks in tests).
     * Uses decoder-owned scratch; the workspace is passed through
     * for interface uniformity only.
     */
    using Decoder::decode;
    DecodeResult decode(std::span<const uint32_t> defects,
                        DecodeWorkspace &workspace,
                        DecodeTrace *trace = nullptr) override;

    std::unique_ptr<Decoder> clone() const override;

    std::string name() const override { return "UnionFind"; }

  private:
    /** Per-decode scratch, lazily sized to the decoding graph and
     *  reused across decodes (defined in union_find.cpp). */
    struct Scratch;
    std::unique_ptr<Scratch> scratch_;
};

} // namespace qec

#endif // QEC_DECODERS_UNION_FIND_HPP
