/**
 * @file
 * Union-Find decoder (the AFS-class baseline of Fig. 4).
 *
 * Implements the Delfosse–Nickerson cluster-growth + peeling decoder
 * directly on the decoding graph: odd clusters grow by half-edges,
 * merging on contact, until every cluster is even or touches the
 * boundary; each cluster is then peeled along a spanning forest to
 * extract the correction. Growth is unweighted (uniform), which is
 * exactly what makes union-find less accurate than MWPM at the
 * near-term p = 1e-4 regime the paper evaluates (§7.2).
 */

#ifndef QEC_DECODERS_UNION_FIND_HPP
#define QEC_DECODERS_UNION_FIND_HPP

#include "qec/decoders/decoder.hpp"

namespace qec
{

/** Cluster-growth union-find decoder. */
class UnionFindDecoder : public Decoder
{
  public:
    using Decoder::Decoder;

    /**
     * Decode; the chosen correction-edge ids land in
     * DecodeTrace::correctionEdges (for validity checks in tests).
     */
    DecodeResult decode(std::span<const uint32_t> defects,
                        DecodeTrace *trace = nullptr) override;

    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<UnionFindDecoder>(graph_, paths_);
    }

    std::string name() const override { return "UnionFind"; }

  private:
    /** Scratch reused across decodes (capacity only, no state). */
    std::vector<uint32_t> correction_;
};

} // namespace qec

#endif // QEC_DECODERS_UNION_FIND_HPP
