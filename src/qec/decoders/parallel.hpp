/**
 * @file
 * Parallel decoder combiner — the "Promatch || Astrea-G" design
 * (§4.2.3).
 *
 * Both decoders run concurrently on the same syndrome; after the
 * slower one finishes, a 10-cycle comparator picks the solution with
 * the lower total weight (higher probability). If one side aborts,
 * the other side's answer is used; if both abort, the combination
 * aborts.
 *
 * The arbitration outcome lands in DecodeTrace::parallelWinner, and
 * each side's own trace in trace->children[0] / [1].
 */

#ifndef QEC_DECODERS_PARALLEL_HPP
#define QEC_DECODERS_PARALLEL_HPP

#include <memory>

#include "qec/decoders/decoder.hpp"
#include "qec/decoders/latency.hpp"

namespace qec
{

/** Weight-arbitrated parallel composition of two decoders. */
class ParallelDecoder : public Decoder
{
  public:
    ParallelDecoder(const DecodingGraph &graph,
                    const PathTable &paths,
                    std::unique_ptr<Decoder> first,
                    std::unique_ptr<Decoder> second,
                    const LatencyConfig &latency = {})
        : Decoder(graph, paths), a(std::move(first)),
          b(std::move(second)), latency_(latency)
    {
    }

    using Decoder::decode;
    DecodeResult decode(std::span<const uint32_t> defects,
                        DecodeWorkspace &workspace,
                        DecodeTrace *trace = nullptr) override;

    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<ParallelDecoder>(
            graph_, paths_, a->clone(), b->clone(), latency_);
    }

    std::string
    name() const override
    {
        return a->name() + "||" + b->name();
    }

    Decoder &first() { return *a; }
    Decoder &second() { return *b; }

  private:
    std::unique_ptr<Decoder> a;
    std::unique_ptr<Decoder> b;
    LatencyConfig latency_;
};

} // namespace qec

#endif // QEC_DECODERS_PARALLEL_HPP
