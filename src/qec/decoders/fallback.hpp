/**
 * @file
 * Graceful degradation: a decode-time budget over a decoder ladder.
 *
 * A real-time service that misses its budget must not queue — it
 * must answer with the best correction it can afford. FallbackDecoder
 * wraps an ordered ladder of decoders (typically full matcher →
 * sparse matcher → predecoder-only commit) and runs them under a
 * wall-clock budget: tier 0 always runs first; if its decode blew
 * the budget the next tier runs, and so on, with the last tier's
 * answer accepted unconditionally (counted as an overrun when it,
 * too, was late). Per-tier counters record where every decode was
 * answered.
 *
 * Bit-identity contract: with the budget disabled (budgetNs <= 0)
 * decode() forwards to tier 0 verbatim — no clock reads, no extra
 * branches in the tier — so a ladder-wrapped stack is
 * bit-identical to the primary stack alone. With a budget set but
 * never exceeded, tier 0's results are likewise returned unchanged.
 *
 * PredecodeCommitDecoder is the ladder's floor: it runs only a
 * predecoder and commits whatever that stage resolved, flagging the
 * residual defects it abandoned (counted, not matched) — trading
 * accuracy for a bounded, matcher-free latency, exactly the
 * degraded mode a predecoding architecture buys (arXiv:2208.04660).
 */

#ifndef QEC_DECODERS_FALLBACK_HPP
#define QEC_DECODERS_FALLBACK_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qec/decoders/decoder.hpp"
#include "qec/decoders/latency.hpp"
#include "qec/predecode/predecoder.hpp"
#include "qec/util/time_source.hpp"

namespace qec
{

/** Degradation policy of a FallbackDecoder. */
struct FallbackConfig
{
    /**
     * Wall-clock budget per tier attempt (each tier is measured
     * afresh); a tier finishing past it escalates to the next.
     * <= 0 disables degradation entirely (tier 0 always answers,
     * and no clock is read).
     */
    double budgetNs = 0.0;
    /** Clock to measure against; nullptr = process steady clock. */
    TimeSource *time = nullptr;
};

/** Where decodes were answered (aggregated across clones). */
struct FallbackStats
{
    /** Decodes answered by each tier, in ladder order. */
    std::vector<uint64_t> tierUsed;
    /** Tier handoffs (one decode can escalate several times). */
    uint64_t escalations = 0;
    /** Decodes where even the last tier finished past budget. */
    uint64_t overruns = 0;
};

/** Budgeted degradation ladder over owned decoder tiers. */
class FallbackDecoder : public Decoder
{
  public:
    /**
     * @param tiers  ladder, fastest-degrading last; all tiers must
     *               be built over `graph`/`paths` (>= 1 tier)
     */
    FallbackDecoder(const DecodingGraph &graph,
                    const PathTable &paths,
                    std::vector<std::unique_ptr<Decoder>> tiers,
                    FallbackConfig config = {});

    using Decoder::decode;
    DecodeResult decode(std::span<const uint32_t> defects,
                        DecodeWorkspace &workspace,
                        DecodeTrace *trace = nullptr) override;

    /** Clones share the stats block, so counters aggregate. */
    std::unique_ptr<Decoder> clone() const override;

    std::string name() const override;

    bool wantsDistanceView() const override;

    size_t tierCount() const { return tiers_.size(); }
    Decoder &tier(size_t i) { return *tiers_[i]; }

    /** Aggregated over this instance and every clone. */
    FallbackStats stats() const;
    void resetStats();

    const FallbackConfig &config() const { return config_; }

  private:
    struct Shared;

    FallbackDecoder(const DecodingGraph &graph,
                    const PathTable &paths,
                    std::vector<std::unique_ptr<Decoder>> tiers,
                    FallbackConfig config,
                    std::shared_ptr<Shared> shared);

    std::vector<std::unique_ptr<Decoder>> tiers_;
    FallbackConfig config_;
    // Resolved at construction so decode() never runs the
    // steadyTimeSource() one-time-init guard (a __cxa_guard lock
    // pair the real-time audit forbids on hot paths).
    TimeSource *time_;
    std::shared_ptr<Shared> shared_;
};

/** Predecoder-only commit decoder (the ladder's last tier). */
class PredecodeCommitDecoder : public Decoder
{
  public:
    PredecodeCommitDecoder(const DecodingGraph &graph,
                           const PathTable &paths,
                           std::unique_ptr<Predecoder> predecoder,
                           LatencyConfig latency = {});

    using Decoder::decode;
    DecodeResult decode(std::span<const uint32_t> defects,
                        DecodeWorkspace &workspace,
                        DecodeTrace *trace = nullptr) override;

    /** Clones share the flagged-defect counter. */
    std::unique_ptr<Decoder> clone() const override;

    std::string name() const override;

    bool wantsDistanceView() const override { return false; }

    /** Defects abandoned unmatched (this instance + clones). */
    uint64_t flaggedDefects() const;
    void resetFlagged();

  private:
    PredecodeCommitDecoder(
        const DecodingGraph &graph, const PathTable &paths,
        std::unique_ptr<Predecoder> predecoder,
        LatencyConfig latency,
        std::shared_ptr<std::atomic<uint64_t>> flagged);

    std::unique_ptr<Predecoder> predecoder_;
    LatencyConfig latency_;
    std::shared_ptr<std::atomic<uint64_t>> flagged_;
};

/**
 * Build a degradation ladder from registry spec strings: one tier
 * per spec (in order), plus an optional trailing
 * PredecodeCommitDecoder over `commitPredecoder` (a registered
 * predecoder name; empty skips the tier). Throws SpecError on
 * unknown components — a recoverable configuration error, not an
 * abort.
 */
std::unique_ptr<FallbackDecoder> makeDegradationLadder(
    const DecodingGraph &graph, const PathTable &paths,
    const std::vector<std::string> &tierSpecs,
    const std::string &commitPredecoder = "",
    FallbackConfig config = {}, const LatencyConfig &latency = {});

} // namespace qec

#endif // QEC_DECODERS_FALLBACK_HPP
