/**
 * @file
 * The reusable scratch workspace of the decode hot path.
 *
 * Every per-decode data structure that used to be rebuilt on the
 * heap for each syndrome — the predecoder's defect subgraph, the
 * matching layer's defect graph and solver state, the pipeline's
 * residual handoff — lives here instead, owned by the caller and
 * borrowed by `Decoder::decode` / `Predecoder::predecode`. All
 * members reuse their capacity across decodes, so a warm workspace
 * makes steady-state decoding allocation-free (enforced by the
 * counting-allocator suite in tests/test_workspace.cpp).
 *
 * Ownership and aliasing contract:
 *  - One workspace per thread: a workspace must never be used by
 *    two threads at once. The batched harness allocates one per
 *    worker (see WorkerDecoders); decoders also keep a lazily
 *    created internal workspace so the workspace-less `decode()`
 *    overload keeps working (and stays allocation-free too, since
 *    clones — one per worker — never share it).
 *  - Composite decoders pass the *same* workspace down to their
 *    children; the members are used strictly sequentially (the
 *    predecoder finishes with `subgraph` before the main decoder
 *    touches `defectGraph`), and only `predecodeResult.residual`
 *    must survive a nested decode (the pipeline's handoff — main
 *    decoders must not write `predecodeResult`).
 *  - `arena` is for transients that die before the owning
 *    component returns: a component may reset() it at the top of
 *    its own decode/predecode step, and must not hold arena spans
 *    across a call into another component.
 *
 * See docs/api.md ("Workspace & memory contract") for the narrative
 * version.
 */

#ifndef QEC_DECODERS_WORKSPACE_HPP
#define QEC_DECODERS_WORKSPACE_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "qec/graph/distance_view.hpp"
#include "qec/matching/blossom.hpp"
#include "qec/matching/defect_graph.hpp"
#include "qec/matching/exhaustive.hpp"
#include "qec/matching/near_exhaustive.hpp"
#include "qec/matching/sparse_matcher.hpp"
#include "qec/predecode/predecoder.hpp"
#include "qec/predecode/syndrome_subgraph.hpp"
#include "qec/util/arena.hpp"

namespace qec
{

/**
 * Scratch of the 64-lane block decode path (Decoder::decodeBlock /
 * Predecoder::predecodeBlock). Used only by the block entry points
 * — serial decode()/predecode() must never touch it, which is what
 * lets decodeBlock hand `laneDefects[l]` spans to nested serial
 * decodes. `laneWords` is a dense detector -> lane-word merge
 * scratch with an all-zero invariant between uses (users re-zero
 * exactly the entries they touched, recorded in `touched`).
 */
struct BlockScratch
{
    /** Per-lane extracted defect lists (see scatterBlockLanes). */
    std::array<std::vector<uint32_t>, 64> laneDefects;
    /** Dense detector -> lane-word scratch, all-zero between uses. */
    std::vector<uint64_t> laneWords;
    /** Detectors whose laneWords entry is currently nonzero. */
    std::vector<uint32_t> touched;
    /** Sorted union defect list of the current block. */
    std::vector<uint32_t> unionDets;
    /** Pipeline handoff: the block predecode outcome. */
    BlockPredecodeResult pre;
};

/** Caller-owned scratch arena for one decode stack on one thread. */
struct DecodeWorkspace
{
    /** Bump storage for per-decode transients (see file comment). */
    MonotonicArena arena;
    /** Predecode layer: the defect subgraph, rebuilt in place. */
    SyndromeSubgraph subgraph;
    /** Gathered S×S PathTable block of the current syndrome. The
     *  predecoder gathers it for the full defect set; the main
     *  decoder's residual resolves against it as a subset (see
     *  distance_view.hpp). */
    DistanceView distances;
    /** Pipeline handoff: the predecoder's output, incl. residual. */
    PredecodeResult predecodeResult;
    /** Matching layer: the complete defect graph of a syndrome. */
    DefectGraph defectGraph;
    /** Matching layer: the solution slot shared by all solvers. */
    MatchingSolution solution;
    /** Reusable exact blossom engine (MWPM decoder). */
    BlossomSolver blossom;
    /** Reusable brute-force engine (Astrea model). */
    ExhaustiveSolver exhaustive;
    /** Reusable budgeted branch-and-bound engine (Astrea-G). */
    NearExhaustiveSolver nearExhaustive;
    /** Sparse matching layer: pruned candidate view of a syndrome
     *  (holds its own lazy DistanceOracle). */
    SparseMatchingProblem sparseProblem;
    /** Reusable sparse local-growth matcher (SparseMWPM decoder). */
    SparseMatcher sparseMatcher;
    /** 64-lane block decode scratch (decodeBlock only). */
    BlockScratch block;
};

} // namespace qec

#endif // QEC_DECODERS_WORKSPACE_HPP
