#include "qec/decoders/decoder.hpp"

#include "qec/util/parallel_for.hpp"

namespace qec
{

std::vector<DecodeResult>
Decoder::decodeBatch(const std::vector<std::vector<uint32_t>> &batch,
                     std::vector<DecodeTrace> *traces, int threads)
{
    std::vector<DecodeResult> results(batch.size());
    if (traces) {
        traces->assign(batch.size(), DecodeTrace{});
    }
    // Each worker decodes a contiguous slice on its own engine
    // (slice 0, which parallelFor runs on the calling thread,
    // reuses this instance; see WorkerDecoders), so no mutable
    // decoder state is shared and results land at the same indices
    // as their syndromes — bit-identical to a serial run.
    const WorkerDecoders engines(
        *this, parallelWorkers(batch.size(), threads));
    parallelFor(
        batch.size(), threads,
        [&batch, &results, traces,
         &engines](size_t begin, size_t end, int worker) {
            Decoder *engine = engines.engine(worker);
            for (size_t i = begin; i < end; ++i) {
                results[i] = engine->decode(
                    batch[i], traces ? &(*traces)[i] : nullptr);
            }
        });
    return results;
}

} // namespace qec
