#include "qec/decoders/decoder.hpp"

#include <thread>

namespace qec
{

std::vector<DecodeResult>
Decoder::decodeBatch(const std::vector<std::vector<uint32_t>> &batch,
                     std::vector<DecodeTrace> *traces, int threads)
{
    std::vector<DecodeResult> results(batch.size());
    if (traces) {
        traces->assign(batch.size(), DecodeTrace{});
    }
    if (threads <= 1 || batch.size() <= 1) {
        for (size_t i = 0; i < batch.size(); ++i) {
            results[i] = decode(batch[i],
                                traces ? &(*traces)[i] : nullptr);
        }
        return results;
    }

    const size_t workers = std::min<size_t>(
        static_cast<size_t>(threads), batch.size());
    // Contiguous static partition: deterministic assignment, and
    // each worker decodes on its own clone so no state is shared.
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
        const size_t begin = batch.size() * w / workers;
        const size_t end = batch.size() * (w + 1) / workers;
        pool.emplace_back([this, &batch, &results, traces, begin,
                           end]() {
            const std::unique_ptr<Decoder> worker = clone();
            for (size_t i = begin; i < end; ++i) {
                results[i] = worker->decode(
                    batch[i], traces ? &(*traces)[i] : nullptr);
            }
        });
    }
    for (std::thread &t : pool) {
        t.join();
    }
    return results;
}

} // namespace qec
