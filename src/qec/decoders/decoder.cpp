#include "qec/decoders/decoder.hpp"

#include "qec/decoders/workspace.hpp"
#include "qec/util/assert.hpp"
#include "qec/util/bitvec.hpp"
#include "qec/util/parallel_for.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

// Out of line: DecodeWorkspace is only forward-declared in the
// header, so the unique_ptr needs the full type here.
Decoder::Decoder(const DecodingGraph &graph,
                 const PathTable &paths)
    : graph_(graph), paths_(paths)
{
}

Decoder::~Decoder() = default;

// Outlined so the audited decode bodies carry one call to a symbol
// the allowlist exempts: clearing `children` destroys whole child
// traces (heap-backed vectors), which is trace-path-only work that
// must not inline delete relocations into hot decode bodies.
QEC_RT_OUTLINE void
DecodeTrace::reset()
{
    predecoderEngaged = false;
    hwBefore = 0;
    hwAfter = 0;
    predecodeNs = 0.0;
    mainNs = 0.0;
    steps = {};
    predecodeRounds = 0;
    parallelWinner = -1;
    searchStates = 0;
    searchTruncated = false;
    chainLengths.clear();
    correctionEdges.clear();
    children.clear();
}

DecodeWorkspace &
Decoder::internalWorkspace()
{
    if (!workspace_) {
        workspace_ = std::make_unique<DecodeWorkspace>();
    }
    return *workspace_;
}

DecodeResult
Decoder::decode(std::span<const uint32_t> defects,
                DecodeTrace *trace)
{
    return decode(defects, internalWorkspace(), trace);
}

void
scatterBlockLanes(std::span<const uint64_t> detectorWords,
                  uint64_t laneMask,
                  std::array<std::vector<uint32_t>, 64> &lanes)
{
    forEachSetBit(laneMask, [&](int lane) { lanes[lane].clear(); });
    // One countr_zero walk over the detector-major words: work
    // proportional to the number of defects, not 64 x #detectors.
    // Buckets stay detector-ascending because det ascends here.
    for (size_t det = 0; det < detectorWords.size(); ++det) {
        forEachSetBit(detectorWords[det] & laneMask, [&](int lane) {
            rt::pushBack(lanes[lane],
                         static_cast<uint32_t>(det));
        });
    }
}

void
Decoder::decodeBlock(std::span<const uint64_t> detectorWords,
                     int lanes, DecodeWorkspace &workspace,
                     DecodeResult *results)
{
    QEC_REALTIME;
    QEC_ASSERT(lanes >= 1 && lanes <= 64,
               "decodeBlock lane count must be in [1, 64]");
    scatterBlockLanes(detectorWords, laneMask64(lanes),
                      workspace.block.laneDefects);
    for (int lane = 0; lane < lanes; ++lane) {
        results[lane] = decode(workspace.block.laneDefects[lane],
                               workspace, nullptr);
    }
}

WorkerDecoders::WorkerDecoders(Decoder &source, int workers)
    : source_(source),
      sourceWorkspace_(source.internalWorkspace())
{
    for (int w = 1; w < workers; ++w) {
        clones_.push_back(source.clone());
        workspaces_.push_back(
            std::make_unique<DecodeWorkspace>());
    }
}

WorkerDecoders::~WorkerDecoders() = default;

std::vector<DecodeResult>
Decoder::decodeBatch(const std::vector<std::vector<uint32_t>> &batch,
                     std::vector<DecodeTrace> *traces, int threads)
{
    std::vector<DecodeResult> results(batch.size());
    if (traces) {
        traces->assign(batch.size(), DecodeTrace{});
    }
    // Each worker decodes on its own engine and workspace (worker
    // 0, which parallelFor runs on the calling thread, reuses this
    // instance; see WorkerDecoders), so no mutable decoder state is
    // shared and results land at the same indices as their
    // syndromes — bit-identical to a serial run.
    const WorkerDecoders engines(
        *this, parallelWorkers(batch.size(), threads));
    parallelFor(
        batch.size(), threads,
        [&batch, &results, traces,
         &engines](size_t begin, size_t end, int worker) {
            Decoder *engine = engines.engine(worker);
            DecodeWorkspace &workspace =
                engines.workspace(worker);
            for (size_t i = begin; i < end; ++i) {
                results[i] = engine->decode(
                    batch[i], workspace,
                    traces ? &(*traces)[i] : nullptr);
            }
        });
    return results;
}

} // namespace qec
