/**
 * @file
 * Decoder-stack factory.
 *
 * Builds every decoder configuration evaluated in the paper by name,
 * so the benches and examples share one construction path:
 *
 *   "mwpm"               idealized software MWPM
 *   "astrea"             Astrea alone (exact, HW <= 10)
 *   "astrea_g"           Astrea-G alone
 *   "union_find"         union-find / AFS-class decoder
 *   "promatch_astrea"    Promatch + Astrea (the paper's "Promatch")
 *   "smith_astrea"       Smith et al. + Astrea
 *   "clique_astrea"      Clique + Astrea (NSM)
 *   "hierarchical_astrea" Hierarchical + Astrea (NSM)
 *   "clique_ag"          Clique + Astrea-G (NSM)
 *   "promatch_par_ag"    (Promatch + Astrea) || Astrea-G
 *   "smith_par_ag"       (Smith + Astrea) || Astrea-G
 */

#ifndef QEC_DECODERS_FACTORY_HPP
#define QEC_DECODERS_FACTORY_HPP

#include <memory>
#include <string>

#include "qec/decoders/decoder.hpp"
#include "qec/decoders/latency.hpp"
#include "qec/predecode/promatch.hpp"

namespace qec
{

/** Create a decoder stack by configuration name; fatal on unknown. */
std::unique_ptr<Decoder> makeDecoder(
    const std::string &name, const DecodingGraph &graph,
    const PathTable &paths, const LatencyConfig &latency = {},
    const PromatchConfig &promatch = {});

/** All configuration names accepted by makeDecoder. */
std::vector<std::string> decoderNames();

} // namespace qec

#endif // QEC_DECODERS_FACTORY_HPP
