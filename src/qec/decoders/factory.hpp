/**
 * @file
 * Legacy decoder-stack factory — a thin alias over the DecoderSpec
 * registry API (qec/api/decoder_spec.hpp, qec/api/registry.hpp).
 *
 * New code should parse and build specs directly:
 *
 *   auto decoder = qec::build(
 *       qec::DecoderSpec::parse("promatch+astrea||astrea_g"),
 *       graph, paths);
 *
 * makeDecoder() is kept so existing call sites work unchanged: it
 * accepts both the historical configuration names of the paper's
 * evaluation (below) and any spec string, and exits fatally on
 * unusable input (the spec API throws SpecError instead).
 *
 *   "mwpm"                idealized software MWPM
 *   "astrea"              Astrea alone (exact, HW <= 10)
 *   "astrea_g"            Astrea-G alone
 *   "union_find"          union-find / AFS-class decoder
 *   "promatch_astrea"     Promatch + Astrea (the paper's "Promatch")
 *   "smith_astrea"        Smith et al. + Astrea
 *   "clique_astrea"       Clique + Astrea (NSM)
 *   "hierarchical_astrea" Hierarchical + Astrea (NSM)
 *   "clique_mwpm"         Clique + software MWPM
 *   "clique_ag"           Clique + Astrea-G (NSM)
 *   "promatch_par_ag"     (Promatch + Astrea) || Astrea-G
 *   "smith_par_ag"        (Smith + Astrea) || Astrea-G
 *
 * The old-name -> spec-string migration table lives in docs/api.md.
 */

#ifndef QEC_DECODERS_FACTORY_HPP
#define QEC_DECODERS_FACTORY_HPP

#include <memory>
#include <string>
#include <vector>

#include "qec/api/decoder_spec.hpp"
#include "qec/api/registry.hpp"
#include "qec/decoders/decoder.hpp"
#include "qec/decoders/latency.hpp"
#include "qec/predecode/promatch.hpp"

namespace qec
{

/**
 * Create a decoder stack by legacy configuration name or spec
 * string; fatal on unknown names / malformed specs. Equivalent to
 * build(DecoderSpec::parse(specForName(name)), ...).
 */
std::unique_ptr<Decoder> makeDecoder(
    const std::string &name, const DecodingGraph &graph,
    const PathTable &paths, const LatencyConfig &latency = {},
    const PromatchConfig &promatch = {});

/**
 * Spec string for a legacy configuration name (e.g.
 * "promatch_par_ag" -> "promatch+astrea||astrea_g"). Inputs that
 * are not legacy names pass through unchanged, so the result is
 * always directly parseable by DecoderSpec::parse.
 */
std::string specForName(const std::string &name);

/** The paper's configuration names accepted by makeDecoder. */
std::vector<std::string> decoderNames();

} // namespace qec

#endif // QEC_DECODERS_FACTORY_HPP
