#include "qec/gf2/gf2.hpp"

#include <bit>

#include "qec/util/assert.hpp"

namespace qec
{

Gf2Matrix::Gf2Matrix(size_t rows, size_t cols)
    : numCols(cols), rowData(rows, BitVec(cols))
{
}

void
Gf2Matrix::appendRow(const BitVec &r)
{
    if (rowData.empty() && numCols == 0) {
        numCols = r.size();
    }
    QEC_ASSERT(r.size() == numCols, "appendRow width mismatch");
    rowData.push_back(r);
}

namespace
{

/**
 * Reduce rows in place to row-echelon form; returns pivot columns.
 * Helper shared by rank/kernel/row-space queries.
 */
std::vector<int>
eliminate(std::vector<BitVec> &rows, size_t cols)
{
    std::vector<int> pivot_col_of_row;
    size_t next_row = 0;
    for (size_t col = 0; col < cols && next_row < rows.size(); ++col) {
        size_t pivot = next_row;
        while (pivot < rows.size() && !rows[pivot].get(col)) {
            ++pivot;
        }
        if (pivot == rows.size()) {
            continue;
        }
        std::swap(rows[pivot], rows[next_row]);
        for (size_t r = 0; r < rows.size(); ++r) {
            if (r != next_row && rows[r].get(col)) {
                rows[r] ^= rows[next_row];
            }
        }
        pivot_col_of_row.push_back(static_cast<int>(col));
        ++next_row;
    }
    return pivot_col_of_row;
}

} // namespace

size_t
Gf2Matrix::rank() const
{
    std::vector<BitVec> work = rowData;
    return eliminate(work, numCols).size();
}

std::vector<BitVec>
Gf2Matrix::kernelBasis() const
{
    std::vector<BitVec> work = rowData;
    const std::vector<int> pivots = eliminate(work, numCols);

    std::vector<bool> is_pivot(numCols, false);
    for (int c : pivots) {
        is_pivot[c] = true;
    }

    std::vector<BitVec> basis;
    for (size_t free_col = 0; free_col < numCols; ++free_col) {
        if (is_pivot[free_col]) {
            continue;
        }
        BitVec v(numCols);
        v.set(free_col, true);
        // Back-substitute: each pivot row determines its pivot column.
        for (size_t r = 0; r < pivots.size(); ++r) {
            if (work[r].get(free_col)) {
                v.set(static_cast<size_t>(pivots[r]), true);
            }
        }
        basis.push_back(v);
    }
    return basis;
}

bool
Gf2Matrix::inRowSpace(const BitVec &v) const
{
    QEC_ASSERT(v.size() == numCols, "inRowSpace width mismatch");
    std::vector<BitVec> work = rowData;
    const size_t base_rank = eliminate(work, numCols).size();
    work.resize(base_rank);
    work.push_back(v);
    return eliminate(work, numCols).size() == base_rank;
}

bool
gf2Dot(const BitVec &a, const BitVec &b)
{
    QEC_ASSERT(a.size() == b.size(), "gf2Dot size mismatch");
    uint64_t acc = 0;
    for (size_t w = 0; w < a.numWords(); ++w) {
        acc ^= a.word(w) & b.word(w);
    }
    return std::popcount(acc) & 1;
}

} // namespace qec
