/**
 * @file
 * Dense linear algebra over GF(2).
 *
 * The surface-code layout uses this to validate stabilizer independence
 * and to *derive* logical operator representatives instead of
 * hard-coding them: a logical operator is a kernel vector of the
 * opposite-type stabilizer support matrix that is independent of the
 * same-type stabilizer row space.
 */

#ifndef QEC_GF2_GF2_HPP
#define QEC_GF2_GF2_HPP

#include <cstddef>
#include <vector>

#include "qec/util/bitvec.hpp"

namespace qec
{

/** Row-major dense matrix over GF(2). */
class Gf2Matrix
{
  public:
    Gf2Matrix() = default;

    /** Construct a rows x cols zero matrix. */
    Gf2Matrix(size_t rows, size_t cols);

    size_t rows() const { return rowData.size(); }
    size_t cols() const { return numCols; }

    bool get(size_t r, size_t c) const { return rowData[r].get(c); }
    void set(size_t r, size_t c, bool v) { rowData[r].set(c, v); }

    const BitVec &row(size_t r) const { return rowData[r]; }
    BitVec &row(size_t r) { return rowData[r]; }

    /** Append a row (must have cols() bits). */
    void appendRow(const BitVec &r);

    /** Rank via Gaussian elimination (input is not modified). */
    size_t rank() const;

    /** Basis of the kernel {x : Mx = 0}; each vector has cols() bits. */
    std::vector<BitVec> kernelBasis() const;

    /**
     * True if v lies in the row space of this matrix (i.e. v is a
     * GF(2) combination of the rows).
     */
    bool inRowSpace(const BitVec &v) const;

  private:
    size_t numCols = 0;
    std::vector<BitVec> rowData;
};

/** Dot product of two equal-length GF(2) vectors (parity of AND). */
bool gf2Dot(const BitVec &a, const BitVec &b);

} // namespace qec

#endif // QEC_GF2_GF2_HPP
