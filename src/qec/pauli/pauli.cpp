#include "qec/pauli/pauli.hpp"

#include <algorithm>

#include "qec/util/assert.hpp"

namespace qec
{

Pauli
makePauli(bool x, bool z)
{
    return static_cast<Pauli>((x ? 1 : 0) | (z ? 2 : 0));
}

Pauli
pauliProduct(Pauli a, Pauli b)
{
    return static_cast<Pauli>(static_cast<uint8_t>(a) ^
                              static_cast<uint8_t>(b));
}

bool
pauliAnticommute(Pauli a, Pauli b)
{
    // Anticommute iff the symplectic product x_a*z_b + z_a*x_b is odd.
    return (pauliX(a) && pauliZ(b)) != (pauliZ(a) && pauliX(b));
}

char
pauliChar(Pauli p)
{
    switch (p) {
      case Pauli::I: return 'I';
      case Pauli::X: return 'X';
      case Pauli::Z: return 'Z';
      case Pauli::Y: return 'Y';
    }
    QEC_PANIC("invalid Pauli value");
}

Pauli
pauliFromChar(char c)
{
    switch (c) {
      case 'I': return Pauli::I;
      case 'X': return Pauli::X;
      case 'Z': return Pauli::Z;
      case 'Y': return Pauli::Y;
      default: QEC_PANIC("invalid Pauli character");
    }
}

void
SparsePauli::mul(uint32_t qubit, Pauli p)
{
    if (p == Pauli::I) {
        return;
    }
    auto it = std::lower_bound(qubits.begin(), qubits.end(), qubit);
    const size_t idx = static_cast<size_t>(it - qubits.begin());
    if (it != qubits.end() && *it == qubit) {
        const Pauli merged = pauliProduct(ops[idx], p);
        if (merged == Pauli::I) {
            qubits.erase(qubits.begin() + idx);
            ops.erase(ops.begin() + idx);
        } else {
            ops[idx] = merged;
        }
    } else {
        qubits.insert(it, qubit);
        ops.insert(ops.begin() + idx, p);
    }
}

std::string
SparsePauli::str() const
{
    if (qubits.empty()) {
        return "I";
    }
    std::string out;
    for (size_t i = 0; i < qubits.size(); ++i) {
        if (i) {
            out += '*';
        }
        out += pauliChar(ops[i]);
        out += std::to_string(qubits[i]);
    }
    return out;
}

std::vector<std::pair<Pauli, Pauli>>
twoQubitPaulis()
{
    std::vector<std::pair<Pauli, Pauli>> out;
    out.reserve(15);
    for (uint8_t a = 0; a < 4; ++a) {
        for (uint8_t b = 0; b < 4; ++b) {
            if (a == 0 && b == 0) {
                continue;
            }
            out.emplace_back(static_cast<Pauli>(a),
                             static_cast<Pauli>(b));
        }
    }
    return out;
}

std::vector<Pauli>
oneQubitPaulis()
{
    return {Pauli::X, Pauli::Y, Pauli::Z};
}

} // namespace qec
