/**
 * @file
 * Single-qubit Pauli algebra and sparse Pauli strings.
 *
 * Phases are deliberately not tracked: Pauli-frame simulation and
 * detector error models only need the X/Z components of each operator
 * (global phase never affects measurement outcomes in stabilizer
 * circuits).
 */

#ifndef QEC_PAULI_PAULI_HPP
#define QEC_PAULI_PAULI_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace qec
{

/** A phase-free single-qubit Pauli, encoded as (x bit, z bit). */
enum class Pauli : uint8_t
{
    I = 0, //!< x=0, z=0
    X = 1, //!< x=1, z=0
    Z = 2, //!< x=0, z=1
    Y = 3, //!< x=1, z=1
};

/** X component of a Pauli. */
inline bool pauliX(Pauli p) { return static_cast<uint8_t>(p) & 1; }

/** Z component of a Pauli. */
inline bool pauliZ(Pauli p) { return static_cast<uint8_t>(p) & 2; }

/** Build a Pauli from its X/Z components. */
Pauli makePauli(bool x, bool z);

/** Phase-free product of two Paulis (XOR of components). */
Pauli pauliProduct(Pauli a, Pauli b);

/** True if the two Paulis anticommute. */
bool pauliAnticommute(Pauli a, Pauli b);

/** One-character name: I, X, Y, or Z. */
char pauliChar(Pauli p);

/** Parse a one-character name; panics on anything else. */
Pauli pauliFromChar(char c);

/**
 * A Pauli on a named subset of qubits (identity elsewhere).
 *
 * Used to describe elementary error mechanisms: e.g. the XZ component
 * of a two-qubit depolarizing channel after a CX.
 */
struct SparsePauli
{
    /** Qubit indices, strictly ascending. */
    std::vector<uint32_t> qubits;
    /** Pauli on each listed qubit (same length as qubits). */
    std::vector<Pauli> ops;

    /** Number of non-identity sites. */
    size_t weight() const { return qubits.size(); }

    /** Add one site, keeping the qubit list sorted and merged. */
    void mul(uint32_t qubit, Pauli p);

    /** Human-readable form such as "X3*Z7". */
    std::string str() const;

    bool operator==(const SparsePauli &other) const = default;
};

/**
 * The 15 non-identity two-qubit Paulis, in a fixed order, for
 * expanding DEPOLARIZE2 channels into elementary mechanisms.
 */
std::vector<std::pair<Pauli, Pauli>> twoQubitPaulis();

/** The 3 non-identity one-qubit Paulis in fixed order {X, Y, Z}. */
std::vector<Pauli> oneQubitPaulis();

} // namespace qec

#endif // QEC_PAULI_PAULI_HPP
