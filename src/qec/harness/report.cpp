#include "qec/harness/report.hpp"

#include <cstdio>
#include <cstdlib>

namespace qec
{

ReportTable::ReportTable(std::string title,
                         std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
}

void
ReportTable::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows.push_back(std::move(cells));
}

std::string
ReportTable::str() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto &row : rows) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::string out = "\n== " + title_ + " ==\n";
    const auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            out.append(widths[c] - row[c].size() + 2, ' ');
        }
        out += '\n';
    };
    emit_row(headers_);
    size_t rule = 0;
    for (size_t w : widths) {
        rule += w + 2;
    }
    out.append(rule, '-');
    out += '\n';
    for (const auto &row : rows) {
        emit_row(row);
    }
    return out;
}

void
ReportTable::print() const
{
    std::fputs(str().c_str(), stdout);
    std::fflush(stdout);
}

std::string
ReportTable::json() const
{
    std::string out = "{\"title\": " + jsonQuote(title_) +
                      ", \"headers\": [";
    for (size_t c = 0; c < headers_.size(); ++c) {
        out += (c ? ", " : "") + jsonQuote(headers_[c]);
    }
    out += "], \"rows\": [";
    for (size_t r = 0; r < rows.size(); ++r) {
        out += r ? ", [" : "[";
        for (size_t c = 0; c < rows[r].size(); ++c) {
            out += (c ? ", " : "") + jsonQuote(rows[r][c]);
        }
        out += "]";
    }
    out += "]}";
    return out;
}

std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (char ch : text) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
    return out;
}

std::string
formatSci(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2e", value);
    return buf;
}

std::string
formatFixed(double value, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string
formatRatio(double value, double baseline)
{
    if (baseline <= 0.0) {
        return "-";
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fx", value / baseline);
    return buf;
}

double
benchScale()
{
    const char *env = std::getenv("QEC_BENCH_SCALE");
    if (!env) {
        return 1.0;
    }
    const double scale = std::atof(env);
    return scale > 0.0 ? scale : 1.0;
}

} // namespace qec
