/**
 * @file
 * Logical error rate estimation.
 *
 * Two estimators:
 *  - estimateLer: the paper's Eq. 1 importance-sampled estimator,
 *    with an observer hook so the benches can collect HW histograms,
 *    latency distributions, and step-usage statistics on the same
 *    sample stream.
 *  - estimateLerDirect: plain Monte-Carlo over the frame simulator
 *    (only usable at higher physical error rates).
 */

#ifndef QEC_HARNESS_LER_ESTIMATOR_HPP
#define QEC_HARNESS_LER_ESTIMATOR_HPP

#include <functional>

#include "qec/decoders/decoder.hpp"
#include "qec/harness/context.hpp"
#include "qec/harness/importance_sampler.hpp"

namespace qec
{

/** Options for the importance-sampled estimator. */
struct LerOptions
{
    int kMax = 24;              //!< Up to 24 injections (paper).
    uint64_t samplesPerK = 2000; //!< Conditional samples per k.
    uint64_t seed = 0x51ab5eed;
    /**
     * Skip the decode for k below this (P_f provably 0 when fewer
     * than (d+1)/2 faults cannot make a logical). 0 = decode all.
     */
    int skipBelowK = 0;
    /**
     * Decode worker threads per k-batch. Sampling stays serial (the
     * RNG stream, and therefore every syndrome, is identical for
     * any thread count); the decodes fan out over decoder clones
     * via Decoder::decodeBatch, and the observer runs serially in
     * sample order afterwards — results are bit-identical to a
     * single-threaded run.
     */
    int threads = 1;
};

/** Per-k statistics from the estimator. */
struct KStats
{
    int k = 0;
    double occurrence = 0.0; //!< P_o(k).
    uint64_t samples = 0;
    uint64_t failures = 0;
    double failureProb = 0.0; //!< P_f(k).
};

/** Result of an importance-sampled LER estimation. */
struct LerEstimate
{
    double ler = 0.0;
    double expectedFaults = 0.0;
    std::vector<KStats> perK;
};

/**
 * Everything an observer sees about one decoded sample; weight is
 * the sample's contribution P_o(k)/N_k for absolute statistics.
 */
struct SampleView
{
    int k;
    double weight;
    const std::vector<uint32_t> &defects;
    const DecodeResult &result;
    bool failed;
};

using SampleObserver = std::function<void(const SampleView &)>;

/** Importance-sampled LER (Eq. 1). */
LerEstimate estimateLer(const ExperimentContext &context,
                        Decoder &decoder, const LerOptions &options,
                        const SampleObserver &observer = nullptr);

/** Result of direct Monte-Carlo estimation. */
struct DirectMcResult
{
    uint64_t shots = 0;
    uint64_t failures = 0;
    double ler = 0.0;
};

/** Plain Monte-Carlo LER over the frame simulator. */
DirectMcResult estimateLerDirect(const ExperimentContext &context,
                                 Decoder &decoder, uint64_t shots,
                                 uint64_t seed = 12345);

} // namespace qec

#endif // QEC_HARNESS_LER_ESTIMATOR_HPP
