/**
 * @file
 * Logical error rate estimation.
 *
 * Two estimators:
 *  - estimateLer: the paper's Eq. 1 importance-sampled estimator,
 *    with an observer hook so the benches can collect HW histograms,
 *    latency distributions, and step-usage statistics on the same
 *    sample stream.
 *  - estimateLerDirect: plain Monte-Carlo over the frame simulator
 *    (only usable at higher physical error rates).
 */

#ifndef QEC_HARNESS_LER_ESTIMATOR_HPP
#define QEC_HARNESS_LER_ESTIMATOR_HPP

#include <functional>

#include "qec/decoders/decoder.hpp"
#include "qec/harness/context.hpp"
#include "qec/harness/importance_sampler.hpp"

namespace qec
{

/** Options for the importance-sampled estimator. */
struct LerOptions
{
    int kMax = 24;              //!< Up to 24 injections (paper).
    uint64_t samplesPerK = 2000; //!< Conditional samples per k.
    uint64_t seed = 0x51ab5eed;
    /**
     * Skip the decode for k below this (P_f provably 0 when fewer
     * than (d+1)/2 faults cannot make a logical). 0 = decode all.
     */
    int skipBelowK = 0;
    /**
     * Worker threads per k-batch; 0 means one per hardware thread.
     *
     * Threading contract: sample i of the k-batch draws from its
     * own counter-based stream Rng::forSample(seed, k, i), so every
     * syndrome is a pure function of (seed, k, i) and the DEM —
     * independent of thread count, partitioning, and execution
     * order. Workers fuse sampling and decoding, each on its own
     * Decoder::clone(); statistics and observer callbacks are then
     * replayed serially in sample order. Results are bit-identical
     * for any value of `threads`.
     */
    int threads = 1;

    /**
     * Collect a full DecodeTrace per decoded sample and hand it to
     * the observer as SampleView::trace. Off by default: trace
     * bookkeeping costs allocation on the hot decode loop, and
     * most observers only need the result.
     */
    bool collectTraces = false;

    /**
     * Optional pre-decode filter: return false to skip decoding a
     * sample entirely. Skipped samples still count toward
     * KStats::samples (as non-failures — the estimate treats the
     * skipped population as decoded correctly) and are never shown
     * to the observer. Trace-statistics benches use this to pay
     * only for the sub-population they study (e.g. HW > 10). Must
     * be a pure function of its arguments; it is called
     * concurrently from worker threads, and results stay
     * bit-identical for any thread count.
     */
    std::function<bool(int k, const std::vector<uint32_t> &defects)>
        decodeFilter;

    /** `threads` with 0 resolved to the hardware concurrency. */
    int resolvedThreads() const;
};

/** Per-k statistics from the estimator. */
struct KStats
{
    int k = 0;
    double occurrence = 0.0; //!< P_o(k).
    uint64_t samples = 0;
    uint64_t failures = 0;
    double failureProb = 0.0; //!< P_f(k).
};

/** Result of an importance-sampled LER estimation. */
struct LerEstimate
{
    double ler = 0.0;
    double expectedFaults = 0.0;
    std::vector<KStats> perK;
};

/**
 * Everything an observer sees about one decoded sample; weight is
 * the sample's contribution P_o(k)/N_k for absolute statistics.
 */
struct SampleView
{
    int k;
    double weight;
    const std::vector<uint32_t> &defects;
    const DecodeResult &result;
    /**
     * Full decode introspection (predecoder HW reduction, step
     * usage, latencies, sub-decoder traces). Non-null only when
     * LerOptions::collectTraces is set; the benches' trace-level
     * statistics all ride on this hook.
     */
    const DecodeTrace *trace;
    bool failed;
};

using SampleObserver = std::function<void(const SampleView &)>;

/** Importance-sampled LER (Eq. 1). */
LerEstimate estimateLer(const ExperimentContext &context,
                        Decoder &decoder, const LerOptions &options,
                        const SampleObserver &observer = nullptr);

/** Result of direct Monte-Carlo estimation. */
struct DirectMcResult
{
    uint64_t shots = 0;
    uint64_t failures = 0;
    double ler = 0.0;
};

/**
 * Plain Monte-Carlo LER over the frame simulator.
 *
 * Shots are processed in 64-lane blocks; block b draws from the
 * counter-based stream Rng::forSample(seed, 0, b) and the blocks
 * are sharded across `threads` workers (0 = hardware concurrency),
 * each owning its own FrameSimulator and Decoder::clone(). The
 * result is bit-identical for any thread count.
 */
DirectMcResult estimateLerDirect(const ExperimentContext &context,
                                 Decoder &decoder, uint64_t shots,
                                 uint64_t seed = 12345,
                                 int threads = 1);

} // namespace qec

#endif // QEC_HARNESS_LER_ESTIMATOR_HPP
