#include "qec/harness/ler_estimator.hpp"

#include "qec/sim/frame_simulator.hpp"
#include "qec/util/assert.hpp"

namespace qec
{

LerEstimate
estimateLer(const ExperimentContext &context, Decoder &decoder,
            const LerOptions &options, const SampleObserver &observer)
{
    ImportanceSampler sampler(context.dem(), options.kMax);
    Rng rng(options.seed);

    LerEstimate estimate;
    estimate.expectedFaults = sampler.expectedFaults();
    for (int k = 1; k <= options.kMax; ++k) {
        KStats stats;
        stats.k = k;
        stats.occurrence = sampler.occurrenceProb(k);
        if (k < options.skipBelowK) {
            // Provably below the failure threshold: P_f(k) = 0.
            estimate.perK.push_back(stats);
            continue;
        }
        const double weight =
            stats.occurrence /
            static_cast<double>(options.samplesPerK);
        // Draw the whole k-batch serially (deterministic RNG
        // stream), then fan the decodes across threads. Identical
        // samples and results regardless of options.threads.
        std::vector<std::vector<uint32_t>> batch;
        batch.reserve(options.samplesPerK);
        std::vector<uint64_t> obs_masks;
        obs_masks.reserve(options.samplesPerK);
        for (uint64_t s = 0; s < options.samplesPerK; ++s) {
            ImportanceSampler::Sample sample =
                sampler.sample(k, rng);
            obs_masks.push_back(sample.obsMask);
            batch.push_back(std::move(sample.defects));
        }
        const std::vector<DecodeResult> results =
            decoder.decodeBatch(batch, nullptr, options.threads);
        for (uint64_t s = 0; s < options.samplesPerK; ++s) {
            const DecodeResult &result = results[s];
            const bool failed =
                result.aborted ||
                result.predictedObs != obs_masks[s];
            ++stats.samples;
            stats.failures += failed ? 1 : 0;
            if (observer) {
                observer({k, weight, batch[s], result, failed});
            }
        }
        stats.failureProb =
            static_cast<double>(stats.failures) /
            static_cast<double>(stats.samples);
        estimate.ler += stats.occurrence * stats.failureProb;
        estimate.perK.push_back(stats);
    }
    return estimate;
}

DirectMcResult
estimateLerDirect(const ExperimentContext &context, Decoder &decoder,
                  uint64_t shots, uint64_t seed)
{
    FrameSimulator simulator(context.experiment().circuit);
    Rng rng(seed);
    BatchResult batch;
    DirectMcResult result;
    while (result.shots < shots) {
        simulator.sampleBatch(rng, batch);
        const int lanes = static_cast<int>(
            std::min<uint64_t>(64, shots - result.shots));
        for (int lane = 0; lane < lanes; ++lane) {
            std::vector<uint32_t> defects;
            for (size_t det = 0; det < batch.detectors.size();
                 ++det) {
                if ((batch.detectors[det] >> lane) & 1) {
                    defects.push_back(
                        static_cast<uint32_t>(det));
                }
            }
            const uint64_t actual = batch.observableMask(lane);
            const DecodeResult decoded = decoder.decode(defects);
            const bool failed = decoded.aborted ||
                                decoded.predictedObs != actual;
            result.failures += failed ? 1 : 0;
            ++result.shots;
        }
    }
    result.ler = static_cast<double>(result.failures) /
                 static_cast<double>(result.shots);
    return result;
}

} // namespace qec
