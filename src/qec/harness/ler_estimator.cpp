#include "qec/harness/ler_estimator.hpp"

#include <algorithm>
#include <array>

#include "qec/sim/frame_simulator.hpp"
#include "qec/util/assert.hpp"
#include "qec/util/bitvec.hpp"
#include "qec/util/parallel_for.hpp"

namespace qec
{

int
LerOptions::resolvedThreads() const
{
    return resolveHardwareThreads(threads);
}

LerEstimate
estimateLer(const ExperimentContext &context, Decoder &decoder,
            const LerOptions &options, const SampleObserver &observer)
{
    ImportanceSampler sampler(context.dem(), options.kMax);
    // parallelFor resolves threads <= 0 to hardware concurrency.
    const int threads = options.threads;
    const size_t n = static_cast<size_t>(options.samplesPerK);

    // One engine per worker (worker 0 = the original decoder on
    // the calling thread, the rest clones created serially up
    // front), each with its own DecodeWorkspace, reused across
    // every k-batch — steady-state decoding allocates nothing.
    const int workers = parallelWorkers(n, threads);
    const WorkerDecoders engines(decoder, workers);

    LerEstimate estimate;
    estimate.expectedFaults = sampler.expectedFaults();

    // Per-sample slots, reused across k-batches. Workers only write
    // their own indices, so the index-keyed work stays disjoint.
    std::vector<ImportanceSampler::Sample> samples(n);
    std::vector<DecodeResult> results(n);
    const bool wantTraces =
        observer && options.collectTraces;
    std::vector<DecodeTrace> traces(wantTraces ? n : 0);
    const bool hasFilter =
        static_cast<bool>(options.decodeFilter);
    std::vector<char> skipped(hasFilter ? n : 0, 0);

    // Block decoding carries up to 64 consecutive samples through
    // decodeBlock together (bit-identical per lane with the serial
    // path, so the estimate is unchanged). Traces and filters need
    // the per-sample path. Each worker owns a detector-major pack
    // buffer, re-zeroed after every block via the same defect lists
    // that set it — NOT workspace scratch, which decodeBlock
    // clobbers while the words span is live.
    const bool useBlocks = !hasFilter && !wantTraces;
    std::vector<std::vector<uint64_t>> packs;
    if (useBlocks) {
        packs.assign(static_cast<size_t>(workers),
                     std::vector<uint64_t>(
                         context.graph().numDetectors(), 0));
    }

    for (int k = 1; k <= options.kMax; ++k) {
        KStats stats;
        stats.k = k;
        stats.occurrence = sampler.occurrenceProb(k);
        if (k < options.skipBelowK) {
            // Provably below the failure threshold: P_f(k) = 0.
            estimate.perK.push_back(stats);
            continue;
        }
        const double weight =
            stats.occurrence / static_cast<double>(n);
        // Sharded k-batch: sample i draws from its own counter-based
        // stream Rng::forSample(seed, k, i), so the syndrome set is
        // a pure function of (seed, k) — workers fuse sampling and
        // decoding without any serial bottleneck, and the results
        // are bit-identical for any thread count.
        parallelFor(
            n, threads,
            [&](size_t begin, size_t end, int worker) {
                Decoder *engine = engines.engine(worker);
                DecodeWorkspace &workspace =
                    engines.workspace(worker);
                if (useBlocks) {
                    std::vector<uint64_t> &pack =
                        packs[static_cast<size_t>(worker)];
                    for (size_t i = begin; i < end;) {
                        const int lanes = static_cast<int>(
                            std::min<size_t>(64, end - i));
                        for (int l = 0; l < lanes; ++l) {
                            Rng rng = Rng::forSample(
                                options.seed,
                                static_cast<uint64_t>(k), i + l);
                            sampler.sample(k, rng, samples[i + l]);
                            for (uint32_t det :
                                 samples[i + l].defects) {
                                pack[det] |= uint64_t{1} << l;
                            }
                        }
                        engine->decodeBlock(pack, lanes, workspace,
                                            &results[i]);
                        for (int l = 0; l < lanes; ++l) {
                            for (uint32_t det :
                                 samples[i + l].defects) {
                                pack[det] = 0;
                            }
                        }
                        i += static_cast<size_t>(lanes);
                    }
                    return;
                }
                for (size_t i = begin; i < end; ++i) {
                    Rng rng = Rng::forSample(
                        options.seed, static_cast<uint64_t>(k), i);
                    sampler.sample(k, rng, samples[i]);
                    if (hasFilter) {
                        skipped[i] = options.decodeFilter(
                                         k, samples[i].defects)
                                         ? 0
                                         : 1;
                        if (skipped[i]) {
                            continue;
                        }
                    }
                    results[i] = engine->decode(
                        samples[i].defects, workspace,
                        wantTraces ? &traces[i] : nullptr);
                }
            });
        // Serial replay in sample order: per-K statistics accumulate
        // and the observer fires in the same sequence regardless of
        // how the batch was partitioned.
        for (size_t i = 0; i < n; ++i) {
            ++stats.samples;
            if (hasFilter && skipped[i]) {
                // Filtered out before decoding: counted as a
                // non-failure, invisible to the observer.
                continue;
            }
            const DecodeResult &result = results[i];
            const bool failed =
                result.aborted ||
                result.predictedObs != samples[i].obsMask;
            stats.failures += failed ? 1 : 0;
            if (observer) {
                observer({k, weight, samples[i].defects, result,
                          wantTraces ? &traces[i] : nullptr,
                          failed});
            }
        }
        stats.failureProb = static_cast<double>(stats.failures) /
                            static_cast<double>(stats.samples);
        estimate.ler += stats.occurrence * stats.failureProb;
        estimate.perK.push_back(stats);
    }
    return estimate;
}

DirectMcResult
estimateLerDirect(const ExperimentContext &context, Decoder &decoder,
                  uint64_t shots, uint64_t seed, int threads)
{
    DirectMcResult result;
    if (shots == 0) {
        return result;
    }
    const uint64_t blocks = (shots + 63) / 64;
    const int workers =
        parallelWorkers(static_cast<size_t>(blocks), threads);
    // Block b draws from Rng::forSample(seed, 0, b), so each
    // 64-lane batch is independent of every other — workers own a
    // FrameSimulator and a decoder engine (see WorkerDecoders) and
    // the failure count is bit-identical for any thread count.
    const WorkerDecoders engines(decoder, workers);
    std::vector<uint64_t> failures(
        static_cast<size_t>(workers), 0);
    // Per-worker simulators and scratch, created up front: the
    // work-stealing parallelFor may hand a worker several chunks,
    // so the body must only *accumulate* into per-worker state.
    std::vector<FrameSimulator> simulators(
        static_cast<size_t>(workers),
        FrameSimulator(context.experiment().circuit));
    std::vector<BatchResult> batches(
        static_cast<size_t>(workers));
    parallelFor(
        static_cast<size_t>(blocks), threads,
        [&](size_t begin, size_t end, int worker) {
            FrameSimulator &simulator =
                simulators[static_cast<size_t>(worker)];
            Decoder *engine = engines.engine(worker);
            DecodeWorkspace &workspace =
                engines.workspace(worker);
            BatchResult &batch =
                batches[static_cast<size_t>(worker)];
            uint64_t local = 0;
            std::array<DecodeResult, 64> decoded;
            for (size_t b = begin; b < end; ++b) {
                Rng rng = Rng::forSample(seed, 0, b);
                simulator.sampleBatch(rng, batch);
                const int lanes = static_cast<int>(
                    std::min<uint64_t>(64, shots - b * 64));
                // The simulator's detector-major words are already
                // the decodeBlock layout, so the whole 64-lane block
                // goes down in one call (stray tail-lane bits are
                // masked off by the lane count).
                engine->decodeBlock(batch.detectors, lanes,
                                    workspace, decoded.data());
                for (int lane = 0; lane < lanes; ++lane) {
                    const bool fail =
                        decoded[lane].aborted ||
                        decoded[lane].predictedObs !=
                            batch.observableMask(lane);
                    local += fail ? 1 : 0;
                }
            }
            failures[static_cast<size_t>(worker)] += local;
        });
    for (uint64_t f : failures) {
        result.failures += f;
    }
    result.shots = shots;
    result.ler = static_cast<double>(result.failures) /
                 static_cast<double>(result.shots);
    return result;
}

} // namespace qec
