#include "qec/harness/ler_estimator.hpp"

#include <algorithm>

#include "qec/sim/frame_simulator.hpp"
#include "qec/util/assert.hpp"
#include "qec/util/bitvec.hpp"
#include "qec/util/parallel_for.hpp"

namespace qec
{

int
LerOptions::resolvedThreads() const
{
    return resolveHardwareThreads(threads);
}

LerEstimate
estimateLer(const ExperimentContext &context, Decoder &decoder,
            const LerOptions &options, const SampleObserver &observer)
{
    ImportanceSampler sampler(context.dem(), options.kMax);
    // parallelFor resolves threads <= 0 to hardware concurrency.
    const int threads = options.threads;
    const size_t n = static_cast<size_t>(options.samplesPerK);

    // One engine per worker (worker 0 = the original decoder on
    // the calling thread, the rest clones created serially up
    // front), each with its own DecodeWorkspace, reused across
    // every k-batch — steady-state decoding allocates nothing.
    const WorkerDecoders engines(decoder,
                                 parallelWorkers(n, threads));

    LerEstimate estimate;
    estimate.expectedFaults = sampler.expectedFaults();

    // Per-sample slots, reused across k-batches. Workers only write
    // their own indices, so the index-keyed work stays disjoint.
    std::vector<ImportanceSampler::Sample> samples(n);
    std::vector<DecodeResult> results(n);
    const bool wantTraces =
        observer && options.collectTraces;
    std::vector<DecodeTrace> traces(wantTraces ? n : 0);
    const bool hasFilter =
        static_cast<bool>(options.decodeFilter);
    std::vector<char> skipped(hasFilter ? n : 0, 0);

    for (int k = 1; k <= options.kMax; ++k) {
        KStats stats;
        stats.k = k;
        stats.occurrence = sampler.occurrenceProb(k);
        if (k < options.skipBelowK) {
            // Provably below the failure threshold: P_f(k) = 0.
            estimate.perK.push_back(stats);
            continue;
        }
        const double weight =
            stats.occurrence / static_cast<double>(n);
        // Sharded k-batch: sample i draws from its own counter-based
        // stream Rng::forSample(seed, k, i), so the syndrome set is
        // a pure function of (seed, k) — workers fuse sampling and
        // decoding without any serial bottleneck, and the results
        // are bit-identical for any thread count.
        parallelFor(
            n, threads,
            [&](size_t begin, size_t end, int worker) {
                Decoder *engine = engines.engine(worker);
                DecodeWorkspace &workspace =
                    engines.workspace(worker);
                for (size_t i = begin; i < end; ++i) {
                    Rng rng = Rng::forSample(
                        options.seed, static_cast<uint64_t>(k), i);
                    sampler.sample(k, rng, samples[i]);
                    if (hasFilter) {
                        skipped[i] = options.decodeFilter(
                                         k, samples[i].defects)
                                         ? 0
                                         : 1;
                        if (skipped[i]) {
                            continue;
                        }
                    }
                    results[i] = engine->decode(
                        samples[i].defects, workspace,
                        wantTraces ? &traces[i] : nullptr);
                }
            });
        // Serial replay in sample order: per-K statistics accumulate
        // and the observer fires in the same sequence regardless of
        // how the batch was partitioned.
        for (size_t i = 0; i < n; ++i) {
            ++stats.samples;
            if (hasFilter && skipped[i]) {
                // Filtered out before decoding: counted as a
                // non-failure, invisible to the observer.
                continue;
            }
            const DecodeResult &result = results[i];
            const bool failed =
                result.aborted ||
                result.predictedObs != samples[i].obsMask;
            stats.failures += failed ? 1 : 0;
            if (observer) {
                observer({k, weight, samples[i].defects, result,
                          wantTraces ? &traces[i] : nullptr,
                          failed});
            }
        }
        stats.failureProb = static_cast<double>(stats.failures) /
                            static_cast<double>(stats.samples);
        estimate.ler += stats.occurrence * stats.failureProb;
        estimate.perK.push_back(stats);
    }
    return estimate;
}

DirectMcResult
estimateLerDirect(const ExperimentContext &context, Decoder &decoder,
                  uint64_t shots, uint64_t seed, int threads)
{
    DirectMcResult result;
    if (shots == 0) {
        return result;
    }
    const uint64_t blocks = (shots + 63) / 64;
    const int workers =
        parallelWorkers(static_cast<size_t>(blocks), threads);
    // Block b draws from Rng::forSample(seed, 0, b), so each
    // 64-lane batch is independent of every other — workers own a
    // FrameSimulator and a decoder engine (see WorkerDecoders) and
    // the failure count is bit-identical for any thread count.
    const WorkerDecoders engines(decoder, workers);
    std::vector<uint64_t> failures(
        static_cast<size_t>(workers), 0);
    // Per-worker simulators and scratch, created up front: the
    // work-stealing parallelFor may hand a worker several chunks,
    // so the body must only *accumulate* into per-worker state.
    std::vector<FrameSimulator> simulators(
        static_cast<size_t>(workers),
        FrameSimulator(context.experiment().circuit));
    std::vector<BatchResult> batches(
        static_cast<size_t>(workers));
    // Per-worker lane buckets: one defect list per bit lane,
    // capacities reused across every block the worker decodes.
    std::vector<std::vector<std::vector<uint32_t>>> lane_buckets(
        static_cast<size_t>(workers),
        std::vector<std::vector<uint32_t>>(64));
    parallelFor(
        static_cast<size_t>(blocks), threads,
        [&](size_t begin, size_t end, int worker) {
            FrameSimulator &simulator =
                simulators[static_cast<size_t>(worker)];
            Decoder *engine = engines.engine(worker);
            DecodeWorkspace &workspace =
                engines.workspace(worker);
            BatchResult &batch =
                batches[static_cast<size_t>(worker)];
            std::vector<std::vector<uint32_t>> &lanes_of =
                lane_buckets[static_cast<size_t>(worker)];
            uint64_t local = 0;
            for (size_t b = begin; b < end; ++b) {
                Rng rng = Rng::forSample(seed, 0, b);
                simulator.sampleBatch(rng, batch);
                const int lanes = static_cast<int>(
                    std::min<uint64_t>(64, shots - b * 64));
                // Bit-parallel defect extraction: one countr_zero
                // word walk over the detector-major batch words,
                // scattering each set bit into its lane's bucket —
                // work proportional to the number of defects, not
                // 64 x #detectors. Buckets stay detector-ascending
                // because det ascends in the outer loop.
                for (int lane = 0; lane < 64; ++lane) {
                    lanes_of[lane].clear();
                }
                for (size_t det = 0;
                     det < batch.detectors.size(); ++det) {
                    forEachSetBit(
                        batch.detectors[det], [&](int lane) {
                            lanes_of[lane].push_back(
                                static_cast<uint32_t>(det));
                        });
                }
                for (int lane = 0; lane < lanes; ++lane) {
                    const uint64_t actual =
                        batch.observableMask(lane);
                    const DecodeResult decoded = engine->decode(
                        lanes_of[lane], workspace);
                    const bool fail =
                        decoded.aborted ||
                        decoded.predictedObs != actual;
                    local += fail ? 1 : 0;
                }
            }
            failures[static_cast<size_t>(worker)] += local;
        });
    for (uint64_t f : failures) {
        result.failures += f;
    }
    result.shots = shots;
    result.ler = static_cast<double>(result.failures) /
                 static_cast<double>(result.shots);
    return result;
}

} // namespace qec
