#include "qec/harness/context.hpp"

#include <map>
#include <mutex>
#include <tuple>

#include "qec/sim/error_enumerator.hpp"

namespace qec
{

ExperimentContext::ExperimentContext(int distance, double p,
                                     int rounds)
    : ExperimentContext(distance, p, rounds, false)
{
}

ExperimentContext::ExperimentContext(int distance, double p,
                                     int rounds,
                                     bool deferPathTable)
    : distance_(distance), p_(p),
      rounds_(rounds < 0 ? distance : rounds), layout_(distance),
      experiment_(generateMemoryZ(layout_, rounds_,
                                  NoiseParams::uniform(p))),
      dem_(buildDetectorErrorModel(experiment_.circuit)),
      graphlike_(decomposeToGraphlike(dem_)),
      graph_(DecodingGraph::fromDem(graphlike_,
                                    experiment_.detectors)),
      paths_(deferPathTable
                 ? PathTable(graph_, PathTable::DeferPairs{})
                 : PathTable(graph_))
{
}

const ExperimentContext &
ExperimentContext::get(int distance, double p, int rounds)
{
    static std::mutex mutex;
    static std::map<std::tuple<int, double, int>,
                    std::unique_ptr<ExperimentContext>>
        cache;
    // Normalize the default so get(d, p) and get(d, p, d) share an
    // entry.
    const int effective_rounds = rounds < 0 ? distance : rounds;
    const auto key =
        std::make_tuple(distance, p, effective_rounds);
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache.emplace(key, std::make_unique<ExperimentContext>(
                                    distance, p, effective_rounds))
                 .first;
    }
    return *it->second;
}

} // namespace qec
