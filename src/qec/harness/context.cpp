#include "qec/harness/context.hpp"

#include <map>

#include "qec/sim/error_enumerator.hpp"

namespace qec
{

ExperimentContext::ExperimentContext(int distance, double p,
                                     int rounds)
    : distance_(distance), p_(p),
      rounds_(rounds < 0 ? distance : rounds), layout_(distance),
      experiment_(generateMemoryZ(layout_, rounds_,
                                  NoiseParams::uniform(p))),
      dem_(buildDetectorErrorModel(experiment_.circuit)),
      graphlike_(decomposeToGraphlike(dem_)),
      graph_(DecodingGraph::fromDem(graphlike_,
                                    experiment_.detectors)),
      paths_(graph_)
{
}

const ExperimentContext &
ExperimentContext::get(int distance, double p)
{
    static std::map<std::pair<int, double>,
                    std::unique_ptr<ExperimentContext>>
        cache;
    const auto key = std::make_pair(distance, p);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache.emplace(key, std::make_unique<ExperimentContext>(
                                    distance, p))
                 .first;
    }
    return *it->second;
}

} // namespace qec
