/**
 * @file
 * Weighted integer histograms (HW distributions of Figs. 16/17).
 */

#ifndef QEC_HARNESS_HISTOGRAM_HPP
#define QEC_HARNESS_HISTOGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "qec/util/stats.hpp"

namespace qec
{

/** Histogram over small non-negative integer bins with weights. */
class WeightedHistogram
{
  public:
    /** Record weight at an integer bin (bins grow on demand). */
    void add(int bin, double weight);

    /** Highest populated bin (-1 if empty). */
    int maxBin() const;

    /** Raw accumulated weight of one bin. */
    double weightAt(int bin) const;

    /** Total accumulated weight. */
    double totalWeight() const { return total; }

    /** Weight at bin divided by `denominator` (probability view). */
    double probabilityAt(int bin, double denominator) const;

    /**
     * Render as a two-column table "bin probability" with
     * probabilities relative to the given denominator.
     */
    std::string str(double denominator) const;

  private:
    std::vector<double> bins;
    double total = 0.0;
};

/**
 * Failure statistics conditioned on syndrome Hamming weight.
 *
 * Fed from the importance-sampling observer (weights = P_o(k)/N_k),
 * this gives the discriminating statistic of the paper's evaluation:
 * how decoders behave on the rare high-HW syndromes.
 */
class HwConditionalStats
{
  public:
    /** Record one decoded sample. */
    void record(int hw, double weight, bool failed);

    /** Weighted P(fail | hw_min <= HW <= hw_max). */
    double conditionalFailRate(int hw_min, int hw_max) const;

    /** Weighted probability mass of the HW band. */
    double mass(int hw_min, int hw_max) const;

    /** Unweighted sample count in the band. */
    uint64_t samplesIn(int hw_min, int hw_max) const;

  private:
    WeightedHistogram all;
    WeightedHistogram failed_;
    std::vector<uint64_t> counts;
};

} // namespace qec

#endif // QEC_HARNESS_HISTOGRAM_HPP
