/**
 * @file
 * Histograms of the evaluation harness:
 *
 *  - WeightedHistogram / HwConditionalStats: weighted integer bins
 *    (HW distributions of Figs. 16/17).
 *  - Histogram: fixed-shape geometric bins over positive reals with
 *    quantile interpolation — the latency-tail accumulator of the
 *    serving front end (p50/p99/p999 in bench/serve_latency.cpp).
 */

#ifndef QEC_HARNESS_HISTOGRAM_HPP
#define QEC_HARNESS_HISTOGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "qec/util/stats.hpp"

namespace qec
{

/**
 * Fixed-shape histogram over positive values with geometric
 * (log-spaced) bins, built for latency distributions.
 *
 * The bin layout is fixed at construction — bin i of the geometric
 * range covers [lo * r^i, lo * r^(i+1)) with r = 10^(1/binsPerDecade)
 * — plus an underflow bin below `lo` and an overflow bin at/above
 * `hi`. add() therefore never allocates, which is what lets the
 * serving workers record every decode into a per-worker Histogram
 * on the zero-allocation steady-state path; histograms of identical
 * shape merge with merge() at report time.
 */
class Histogram
{
  public:
    /**
     * @param lo            lower edge of the geometric range; values
     *                      below land in the underflow bin
     * @param hi            upper edge; values at/above land in the
     *                      overflow bin
     * @param binsPerDecade geometric resolution (relative bin width
     *                      10^(1/binsPerDecade); 24 gives ~10%
     *                      wide bins — ample for p999 reporting)
     */
    explicit Histogram(double lo = 1.0, double hi = 1e10,
                       int binsPerDecade = 24);

    /** Record one observation (values <= 0 clamp into underflow). */
    void add(double value);

    /** Fold another histogram of the SAME shape into this one. */
    void merge(const Histogram &other);

    /** Forget all observations; the bin layout is kept. */
    void clear();

    uint64_t count() const { return count_; }
    /** Smallest / largest recorded value (0 when empty). */
    double min() const { return count_ ? minSeen : 0.0; }
    double max() const { return count_ ? maxSeen : 0.0; }
    /** Arithmetic mean of recorded values (0 when empty). */
    double mean() const;

    /**
     * Quantile estimate with documented interpolation semantics:
     *
     * Let n = count() and rank = q * n (a real number, q clamped to
     * [0, 1]). The result is taken from the first bin whose
     * cumulative count reaches rank, linearly interpolated between
     * the bin's edges by the fraction of that bin's count needed to
     * reach rank — i.e. observations are assumed uniform within a
     * bin. A rank landing exactly on a bin boundary resolves to the
     * upper edge of the lower bin. The result is finally clamped to
     * [min(), max()], so quantile(0) == min(), quantile(1) == max()
     * exactly, and a distribution confined to a single bin returns
     * exact values whenever min() == max(). An empty histogram
     * returns 0.
     */
    double quantile(double q) const;

    /** Number of bins (underflow + geometric range + overflow). */
    size_t binCount() const { return bins.size(); }

    /**
     * Bin index for a value (0 = underflow, last = overflow).
     * For any value in [lo, hi) the returned bin brackets it:
     * lowerEdge(binOf(v)) <= v < upperEdge(binOf(v)) — the log here
     * and the exp in the edge queries round independently, so the
     * index is clamped against the reported edges (edge-consistency
     * suite in tests/test_harness.cpp).
     */
    size_t binOf(double value) const;
    /** Lower/upper edge of bin i. Adjacent bins are flush:
     *  upperEdge(i) == lowerEdge(i + 1) at every interior seam; the
     *  overflow bin's upper edge is the observed maximum. */
    double lowerEdge(size_t i) const;
    double upperEdge(size_t i) const;

  private:

    double lo_ = 1.0;
    double hi_ = 1e10;
    int binsPerDecade_ = 24;
    double invLogWidth_ = 1.0; //!< binsPerDecade / ln(10).
    std::vector<uint64_t> bins;
    uint64_t count_ = 0;
    double sum = 0.0;
    double minSeen = 0.0;
    double maxSeen = 0.0;
};

/** Histogram over small non-negative integer bins with weights. */
class WeightedHistogram
{
  public:
    /** Record weight at an integer bin (bins grow on demand). */
    void add(int bin, double weight);

    /** Highest populated bin (-1 if empty). */
    int maxBin() const;

    /** Raw accumulated weight of one bin. */
    double weightAt(int bin) const;

    /** Total accumulated weight. */
    double totalWeight() const { return total; }

    /** Weight at bin divided by `denominator` (probability view). */
    double probabilityAt(int bin, double denominator) const;

    /**
     * Render as a two-column table "bin probability" with
     * probabilities relative to the given denominator.
     */
    std::string str(double denominator) const;

  private:
    std::vector<double> bins;
    double total = 0.0;
};

/**
 * Failure statistics conditioned on syndrome Hamming weight.
 *
 * Fed from the importance-sampling observer (weights = P_o(k)/N_k),
 * this gives the discriminating statistic of the paper's evaluation:
 * how decoders behave on the rare high-HW syndromes.
 */
class HwConditionalStats
{
  public:
    /** Record one decoded sample. */
    void record(int hw, double weight, bool failed);

    /** Weighted P(fail | hw_min <= HW <= hw_max). */
    double conditionalFailRate(int hw_min, int hw_max) const;

    /** Weighted probability mass of the HW band. */
    double mass(int hw_min, int hw_max) const;

    /** Unweighted sample count in the band. */
    uint64_t samplesIn(int hw_min, int hw_max) const;

  private:
    WeightedHistogram all;
    WeightedHistogram failed_;
    std::vector<uint64_t> counts;
};

} // namespace qec

#endif // QEC_HARNESS_HISTOGRAM_HPP
