/**
 * @file
 * ExperimentContext: everything needed to evaluate decoders on one
 * (distance, physical error rate) configuration, built once and
 * cached — layout, noisy circuit, detector error model, decoding
 * graph, and path tables.
 */

#ifndef QEC_HARNESS_CONTEXT_HPP
#define QEC_HARNESS_CONTEXT_HPP

#include <memory>

#include "qec/dem/decompose.hpp"
#include "qec/dem/dem.hpp"
#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/path_table.hpp"
#include "qec/surface/circuit_gen.hpp"
#include "qec/surface/layout.hpp"

namespace qec
{

/** One fully-built evaluation configuration. */
class ExperimentContext
{
  public:
    /**
     * Build the full stack for a memory-Z experiment.
     *
     * @param distance  code distance (odd, >= 3)
     * @param p         uniform physical error rate
     * @param rounds    syndrome extraction rounds; -1 means d rounds
     *                  (the paper's setting)
     */
    ExperimentContext(int distance, double p, int rounds = -1);

    /**
     * Like the main constructor, but when `deferPathTable` is true
     * the PathTable is built with PathTable::DeferPairs: only the
     * O(V) boundary column, no O(V²) pair half and no V per-source
     * Dijkstras. This is the high-distance (d >= 17) configuration
     * for sparse-matcher stacks; dense-matcher stacks still work on
     * it (DistanceView computes gathers on the fly) but pay a
     * Dijkstra per gathered row.
     */
    ExperimentContext(int distance, double p, int rounds,
                      bool deferPathTable);

    /**
     * Process-wide cache keyed by (distance, p, rounds); -1 rounds
     * means the paper's d-round setting. Thread-safe: concurrent
     * callers serialize on an internal mutex, so a threaded harness
     * can share cached contexts freely.
     */
    static const ExperimentContext &get(int distance, double p,
                                        int rounds = -1);

    int distance() const { return distance_; }
    double physicalErrorRate() const { return p_; }
    int rounds() const { return rounds_; }

    const SurfaceCodeLayout &layout() const { return layout_; }
    const MemoryExperiment &experiment() const { return experiment_; }
    const DetectorErrorModel &dem() const { return dem_; }
    const GraphlikeDem &graphlike() const { return graphlike_; }
    const DecodingGraph &graph() const { return graph_; }
    const PathTable &paths() const { return paths_; }

  private:
    int distance_;
    double p_;
    int rounds_;
    SurfaceCodeLayout layout_;
    MemoryExperiment experiment_;
    DetectorErrorModel dem_;
    GraphlikeDem graphlike_;
    DecodingGraph graph_;
    PathTable paths_;
};

} // namespace qec

#endif // QEC_HARNESS_CONTEXT_HPP
