/**
 * @file
 * Console table formatting for the benchmark binaries.
 *
 * Every bench prints its measured values next to the paper's
 * reported numbers; the helpers here keep that output consistent.
 */

#ifndef QEC_HARNESS_REPORT_HPP
#define QEC_HARNESS_REPORT_HPP

#include <string>
#include <vector>

namespace qec
{

/** Fixed-width console table with a title and column headers. */
class ReportTable
{
  public:
    ReportTable(std::string title, std::vector<std::string> headers);

    /** Add one row (cells already formatted). */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string str() const;

    /** Render and print to stdout. */
    void print() const;

    /**
     * Machine-readable rendering:
     * {"title": ..., "headers": [...], "rows": [[...], ...]}.
     * Cells are the already-formatted strings of the console view,
     * so one schema covers every bench (docs/benchmarks.md).
     */
    std::string json() const;

    const std::string &title() const { return title_; }

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows;
};

/** "3.4e-15" style scientific formatting. */
std::string formatSci(double value);

/** "12.3" fixed formatting with one decimal. */
std::string formatFixed(double value, int decimals = 1);

/** "2.5x" ratio formatting (against a baseline). */
std::string formatRatio(double value, double baseline);

/** Reads a scale factor from the environment (QEC_BENCH_SCALE);
 *  benches multiply their sample counts by it. Default 1.0. */
double benchScale();

/** JSON string literal: escapes and surrounds with quotes. */
std::string jsonQuote(const std::string &text);

} // namespace qec

#endif // QEC_HARNESS_REPORT_HPP
