#include "qec/harness/importance_sampler.hpp"

#include <algorithm>

#include "qec/util/assert.hpp"

namespace qec
{

ImportanceSampler::ImportanceSampler(const DetectorErrorModel &dem,
                                     int k_max)
    : dem_(dem), kMax_(k_max), po(k_max + 1, 0.0)
{
    const auto &mechanisms = dem.mechanisms();
    QEC_ASSERT(!mechanisms.empty(), "empty detector error model");
    QEC_ASSERT(k_max >= 1, "k_max must be positive");
    // Probabilities must lie in [0, 1): p == 1 breaks both the DP
    // (the 1-p factors collapse) and the p/(1-p) draw weights below,
    // and negative or >1 values are corrupt input. At least one
    // mechanism must be able to fire, or conditional sampling has
    // nothing to draw from.
    bool any_positive = false;
    for (const DemMechanism &m : mechanisms) {
        QEC_ASSERT(m.prob >= 0.0 && m.prob < 1.0,
                   "mechanism probability must be in [0, 1)");
        any_positive = any_positive || m.prob > 0.0;
    }
    QEC_ASSERT(any_positive,
               "all mechanism probabilities are zero");

    // Exact Poisson-binomial DP over the fault count, truncated at
    // k_max (the tail above k_max is irrelevant for Eq. 1). The
    // inner loop must run all the way up to kMax_: capping it lower
    // silently drops the mass above the cap, so occurrenceProb()
    // would underreport for models whose fault count concentrates
    // past it (regression-tested in tests/test_harness.cpp).
    po[0] = 1.0;
    for (const DemMechanism &m : mechanisms) {
        lambda += m.prob;
        for (int k = kMax_; k >= 1; --k) {
            po[k] = po[k] * (1.0 - m.prob) + po[k - 1] * m.prob;
        }
        po[0] *= (1.0 - m.prob);
    }

    cumulative.reserve(mechanisms.size());
    double acc = 0.0;
    for (const DemMechanism &m : mechanisms) {
        acc += m.prob / (1.0 - m.prob);
        cumulative.push_back(acc);
    }
    // Cache-resident draw index: the per-draw upper-bound search is
    // the sample stage's hot loop (42% of the pinball stack's serial
    // time before this), and the Eytzinger layout keeps its first
    // probe levels in cache instead of striding across the whole
    // prefix-sum array. Bit-identical ranks (see eytzinger.hpp).
    draw_.build(cumulative);
}

void
ImportanceSampler::sample(int k, Rng &rng, Sample &out) const
{
    QEC_ASSERT(k >= 1 && k <= kMax_, "k out of range");
    const auto &mechanisms = dem_.mechanisms();
    const double total = cumulative.back();
    out.obsMask = 0;

    // Draw k distinct mechanisms, weight-proportionally, by
    // rejection on duplicates (k << M so collisions are rare).
    std::vector<uint32_t> &chosen = out.chosen;
    chosen.clear();
    int guard = 0;
    while (static_cast<int>(chosen.size()) < k) {
        QEC_ASSERT(++guard < 100000,
                   "importance sampling stuck rejecting duplicates");
        const double u = rng.nextDouble() * total;
        const uint32_t idx = static_cast<uint32_t>(
            std::min<size_t>(draw_.upperBound(u),
                             cumulative.size() - 1));
        if (std::find(chosen.begin(), chosen.end(), idx) ==
            chosen.end()) {
            chosen.push_back(idx);
        }
    }

    // XOR together the symptoms of the chosen mechanisms:
    // concatenate, sort, and collapse odd-parity runs in place
    // (defects doubles as the flip buffer — no transient vector).
    std::vector<uint32_t> &flips = out.defects;
    flips.clear();
    for (uint32_t idx : chosen) {
        const DemMechanism &m = mechanisms[idx];
        flips.insert(flips.end(), m.dets.begin(), m.dets.end());
        out.obsMask ^= m.obsMask;
    }
    std::sort(flips.begin(), flips.end());
    size_t write = 0;
    for (size_t i = 0; i < flips.size();) {
        size_t j = i;
        while (j < flips.size() && flips[j] == flips[i]) {
            ++j;
        }
        if ((j - i) % 2) {
            flips[write++] = flips[i];
        }
        i = j;
    }
    flips.resize(write);
}

ImportanceSampler::Sample
ImportanceSampler::sample(int k, Rng &rng) const
{
    Sample out;
    sample(k, rng, out);
    return out;
}

} // namespace qec
