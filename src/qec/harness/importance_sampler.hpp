/**
 * @file
 * Importance sampling of rare syndromes (Eq. 1 of the paper, after
 * [48]).
 *
 * Directly sampling LERs of order 1e-15 would need ~1e15 shots. The
 * paper's alternative: for each number of injected faults k up to 24,
 * estimate the decoding failure probability P_f(k) from Monte-Carlo
 * samples conditioned on exactly k faults, and combine with the
 * exact occurrence probability P_o(k):
 *
 *     LER = sum_k P_o(k) * P_f(k).
 *
 * P_o(k) is the Poisson-binomial distribution of the number of DEM
 * mechanisms firing, computed exactly by dynamic programming.
 * Conditional sampling draws k distinct mechanisms with probability
 * proportional to p/(1-p) (the leading-order exact conditional
 * law; see DESIGN.md §2 for the documented approximation).
 */

#ifndef QEC_HARNESS_IMPORTANCE_SAMPLER_HPP
#define QEC_HARNESS_IMPORTANCE_SAMPLER_HPP

#include <cstdint>
#include <vector>

#include "qec/dem/dem.hpp"
#include "qec/util/eytzinger.hpp"
#include "qec/util/rng.hpp"

namespace qec
{

/** Conditional syndrome sampler over a detector error model. */
class ImportanceSampler
{
  public:
    /**
     * @param dem   the (pre-decomposition) detector error model;
     *              injections act on physical mechanisms so that
     *              correlated multi-detector faults stay correlated
     * @param k_max highest injection count (24 in the paper)
     */
    ImportanceSampler(const DetectorErrorModel &dem, int k_max = 24);

    /** Exact P(number of firing mechanisms == k). */
    double occurrenceProb(int k) const { return po[k]; }

    int kMax() const { return kMax_; }

    /** Expected number of firing mechanisms (sum of probs). */
    double expectedFaults() const { return lambda; }

    /** One syndrome with exactly k mechanisms fired. */
    struct Sample
    {
        /** Flipped detectors (sorted). */
        std::vector<uint32_t> defects;
        /** True observable flips of the injected error. */
        uint64_t obsMask = 0;
        /** Scratch (drawn mechanism ids); reused across draws so
         *  the in-place overload below is allocation-free when
         *  warm. */
        std::vector<uint32_t> chosen;
    };

    /** Draw a conditional sample with exactly k faults. */
    Sample sample(int k, Rng &rng) const;

    /**
     * Draw into a reused Sample: all buffers keep their capacity,
     * so a warm slot samples without heap allocation — enforced by
     * the counting-allocator suite in tests/test_workspace.cpp (the
     * harness keeps one slot per batch index). Bit-identical with
     * the returning overload.
     */
    void sample(int k, Rng &rng, Sample &out) const;

  private:
    const DetectorErrorModel &dem_;
    int kMax_;
    double lambda = 0.0;
    std::vector<double> po;
    /** Prefix sums of p/(1-p) weights for weighted mechanism draws. */
    std::vector<double> cumulative;
    /**
     * Cache-friendly mirror of `cumulative` for the per-draw
     * upper-bound search; built once here so the hot sample() path
     * carries no per-call temporaries (the draw itself returns the
     * exact std::upper_bound rank, keeping samples bit-identical to
     * the historical binary search).
     */
    EytzingerIndex draw_;
};

} // namespace qec

#endif // QEC_HARNESS_IMPORTANCE_SAMPLER_HPP
