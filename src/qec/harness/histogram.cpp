#include "qec/harness/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "qec/util/assert.hpp"

namespace qec
{

Histogram::Histogram(double lo, double hi, int binsPerDecade)
    : lo_(lo), hi_(hi), binsPerDecade_(binsPerDecade)
{
    QEC_ASSERT(lo > 0.0 && hi > lo, "histogram range must satisfy 0 < lo < hi");
    QEC_ASSERT(binsPerDecade >= 1, "binsPerDecade must be >= 1");
    invLogWidth_ = static_cast<double>(binsPerDecade) / std::log(10.0);
    const size_t geometric = static_cast<size_t>(std::ceil(
        std::log(hi / lo) * invLogWidth_));
    // [0] underflow, [1 .. geometric] range, [geometric+1] overflow.
    bins.assign(geometric + 2, 0);
}

size_t
Histogram::binOf(double value) const
{
    if (!(value >= lo_)) { // Also catches NaN: clamp to underflow.
        return 0;
    }
    if (value >= hi_) {
        return bins.size() - 1;
    }
    const size_t i = static_cast<size_t>(
        std::log(value / lo_) * invLogWidth_);
    size_t b = std::min(i + 1, bins.size() - 2);
    // The log here and the exp in lowerEdge()/upperEdge() round
    // independently, so a value sitting on a geometric edge can
    // land one bin off the edges later reported for it. Nudge by at
    // most one bin so the returned bin always brackets the value —
    // lowerEdge(b) <= value < upperEdge(b) — which quantile()'s
    // interpolation assumes.
    if (b > 1 && value < lowerEdge(b)) {
        --b;
    } else if (b < bins.size() - 2 && value >= upperEdge(b)) {
        ++b;
    }
    return b;
}

double
Histogram::lowerEdge(size_t i) const
{
    if (i == 0) {
        return 0.0;
    }
    if (i == bins.size() - 1) {
        return hi_;
    }
    return lo_ * std::exp(static_cast<double>(i - 1) / invLogWidth_);
}

double
Histogram::upperEdge(size_t i) const
{
    if (i == 0) {
        return lo_;
    }
    if (i == bins.size() - 1) {
        // Overflow has no geometric upper edge; the observed max is
        // the tightest honest bound (quantile() clamps anyway).
        return std::max(hi_, maxSeen);
    }
    if (i == bins.size() - 2) {
        // The constructor's ceil makes the last geometric bin
        // partial: binOf() cuts it at hi_ (values at/above land in
        // overflow), so hi_ — not the geometric edge — is its upper
        // boundary, flush with lowerEdge(overflow).
        return hi_;
    }
    return lo_ * std::exp(static_cast<double>(i) / invLogWidth_);
}

void
Histogram::add(double value)
{
    ++bins[binOf(value)];
    if (count_ == 0) {
        minSeen = maxSeen = value;
    } else {
        minSeen = std::min(minSeen, value);
        maxSeen = std::max(maxSeen, value);
    }
    ++count_;
    sum += value;
}

void
Histogram::merge(const Histogram &other)
{
    QEC_ASSERT(other.bins.size() == bins.size() &&
                   other.lo_ == lo_ && other.hi_ == hi_,
               "merging histograms of different shapes");
    if (other.count_ == 0) {
        return;
    }
    for (size_t i = 0; i < bins.size(); ++i) {
        bins[i] += other.bins[i];
    }
    if (count_ == 0) {
        minSeen = other.minSeen;
        maxSeen = other.maxSeen;
    } else {
        minSeen = std::min(minSeen, other.minSeen);
        maxSeen = std::max(maxSeen, other.maxSeen);
    }
    count_ += other.count_;
    sum += other.sum;
}

void
Histogram::clear()
{
    std::fill(bins.begin(), bins.end(), 0);
    count_ = 0;
    sum = 0.0;
    minSeen = maxSeen = 0.0;
}

double
Histogram::mean() const
{
    return count_ ? sum / static_cast<double>(count_) : 0.0;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(count_);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < bins.size(); ++i) {
        if (bins[i] == 0) {
            continue;
        }
        const double before = static_cast<double>(cumulative);
        cumulative += bins[i];
        if (static_cast<double>(cumulative) >= rank) {
            const double within =
                (rank - before) / static_cast<double>(bins[i]);
            const double lo = lowerEdge(i);
            const double hi = upperEdge(i);
            const double value = lo + within * (hi - lo);
            return std::clamp(value, minSeen, maxSeen);
        }
    }
    return maxSeen; // q == 1 with floating-point slack.
}

void
WeightedHistogram::add(int bin, double weight)
{
    QEC_ASSERT(bin >= 0, "histogram bins are non-negative");
    if (static_cast<size_t>(bin) >= bins.size()) {
        bins.resize(bin + 1, 0.0);
    }
    bins[bin] += weight;
    total += weight;
}

int
WeightedHistogram::maxBin() const
{
    for (int b = static_cast<int>(bins.size()) - 1; b >= 0; --b) {
        if (bins[b] > 0.0) {
            return b;
        }
    }
    return -1;
}

double
WeightedHistogram::weightAt(int bin) const
{
    if (bin < 0 || static_cast<size_t>(bin) >= bins.size()) {
        return 0.0;
    }
    return bins[bin];
}

double
WeightedHistogram::probabilityAt(int bin, double denominator) const
{
    return denominator > 0.0 ? weightAt(bin) / denominator : 0.0;
}

void
HwConditionalStats::record(int hw, double weight, bool failed)
{
    all.add(hw, weight);
    if (failed) {
        failed_.add(hw, weight);
    }
    if (static_cast<size_t>(hw) >= counts.size()) {
        counts.resize(hw + 1, 0);
    }
    ++counts[hw];
}

double
HwConditionalStats::conditionalFailRate(int hw_min, int hw_max) const
{
    double fail = 0.0, total = 0.0;
    for (int h = hw_min; h <= hw_max; ++h) {
        fail += failed_.weightAt(h);
        total += all.weightAt(h);
    }
    return total > 0.0 ? fail / total : 0.0;
}

double
HwConditionalStats::mass(int hw_min, int hw_max) const
{
    double total = 0.0;
    for (int h = hw_min; h <= hw_max; ++h) {
        total += all.weightAt(h);
    }
    return total;
}

uint64_t
HwConditionalStats::samplesIn(int hw_min, int hw_max) const
{
    uint64_t n = 0;
    for (int h = hw_min;
         h <= hw_max && static_cast<size_t>(h) < counts.size();
         ++h) {
        n += counts[h];
    }
    return n;
}

std::string
WeightedHistogram::str(double denominator) const
{
    std::string out;
    char line[64];
    for (int b = 0; b <= maxBin(); ++b) {
        std::snprintf(line, sizeof line, "%3d  %.3e\n", b,
                      probabilityAt(b, denominator));
        out += line;
    }
    return out;
}

} // namespace qec
