#include "qec/harness/histogram.hpp"

#include <cstdio>

#include "qec/util/assert.hpp"

namespace qec
{

void
WeightedHistogram::add(int bin, double weight)
{
    QEC_ASSERT(bin >= 0, "histogram bins are non-negative");
    if (static_cast<size_t>(bin) >= bins.size()) {
        bins.resize(bin + 1, 0.0);
    }
    bins[bin] += weight;
    total += weight;
}

int
WeightedHistogram::maxBin() const
{
    for (int b = static_cast<int>(bins.size()) - 1; b >= 0; --b) {
        if (bins[b] > 0.0) {
            return b;
        }
    }
    return -1;
}

double
WeightedHistogram::weightAt(int bin) const
{
    if (bin < 0 || static_cast<size_t>(bin) >= bins.size()) {
        return 0.0;
    }
    return bins[bin];
}

double
WeightedHistogram::probabilityAt(int bin, double denominator) const
{
    return denominator > 0.0 ? weightAt(bin) / denominator : 0.0;
}

void
HwConditionalStats::record(int hw, double weight, bool failed)
{
    all.add(hw, weight);
    if (failed) {
        failed_.add(hw, weight);
    }
    if (static_cast<size_t>(hw) >= counts.size()) {
        counts.resize(hw + 1, 0);
    }
    ++counts[hw];
}

double
HwConditionalStats::conditionalFailRate(int hw_min, int hw_max) const
{
    double fail = 0.0, total = 0.0;
    for (int h = hw_min; h <= hw_max; ++h) {
        fail += failed_.weightAt(h);
        total += all.weightAt(h);
    }
    return total > 0.0 ? fail / total : 0.0;
}

double
HwConditionalStats::mass(int hw_min, int hw_max) const
{
    double total = 0.0;
    for (int h = hw_min; h <= hw_max; ++h) {
        total += all.weightAt(h);
    }
    return total;
}

uint64_t
HwConditionalStats::samplesIn(int hw_min, int hw_max) const
{
    uint64_t n = 0;
    for (int h = hw_min;
         h <= hw_max && static_cast<size_t>(h) < counts.size();
         ++h) {
        n += counts[h];
    }
    return n;
}

std::string
WeightedHistogram::str(double denominator) const
{
    std::string out;
    char line[64];
    for (int b = 0; b <= maxBin(); ++b) {
        std::snprintf(line, sizeof line, "%3d  %.3e\n", b,
                      probabilityAt(b, denominator));
        out += line;
    }
    return out;
}

} // namespace qec
