/**
 * @file
 * Graphlike decomposition of a detector error model.
 *
 * Matching decoders require every mechanism to flip at most two
 * detectors ("graphlike"). Circuit-level noise produces a minority of
 * composite mechanisms (e.g. a two-qubit depolarizing component whose
 * data half makes a space-like pair while its ancilla half makes a
 * time-like pair). Following Stim's decompose_errors semantics, each
 * composite mechanism is split into blocks that already exist as
 * graphlike mechanisms, preferring a split whose observable masks XOR
 * to the composite's mask.
 */

#ifndef QEC_DEM_DECOMPOSE_HPP
#define QEC_DEM_DECOMPOSE_HPP

#include <cstdint>
#include <limits>
#include <vector>

#include "qec/dem/dem.hpp"

namespace qec
{

/** Sentinel node index for the (virtual) boundary. */
constexpr uint32_t kBoundary = std::numeric_limits<uint32_t>::max();

/** A graphlike error mechanism: one or two detectors. */
struct DemEdge
{
    uint32_t u = 0;         //!< First detector.
    uint32_t v = kBoundary; //!< Second detector or kBoundary.
    uint64_t obsMask = 0;   //!< Observables flipped by this mechanism.
    double prob = 0.0;      //!< Probability the mechanism fires.
};

/** Diagnostics from the decomposition pass. */
struct DecomposeStats
{
    uint32_t compositeMechanisms = 0; //!< Mechanisms with > 2 dets.
    uint32_t obsRelaxed = 0; //!< Split found only ignoring obs masks.
    uint32_t forcedPairings = 0; //!< No atomic split existed at all.
};

/** A fully graphlike detector error model. */
struct GraphlikeDem
{
    uint32_t numDetectors = 0;
    uint32_t numObservables = 0;
    std::vector<DemEdge> edges;
    DecomposeStats stats;
};

/** Decompose an arbitrary DEM into a graphlike one. */
GraphlikeDem decomposeToGraphlike(const DetectorErrorModel &dem);

} // namespace qec

#endif // QEC_DEM_DECOMPOSE_HPP
