#include "qec/dem/dem.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "qec/util/assert.hpp"

namespace qec
{

double
xorProbability(double a, double b)
{
    return a * (1.0 - b) + b * (1.0 - a);
}

namespace
{

uint64_t
hashDets(const std::vector<uint32_t> &dets, uint64_t obs_mask)
{
    uint64_t h = 0x9e3779b97f4a7c15ull ^ obs_mask;
    for (uint32_t d : dets) {
        h ^= d + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
}

} // namespace

int
DetectorErrorModel::findMechanism(const std::vector<uint32_t> &dets,
                                  uint64_t obs_mask,
                                  uint64_t hash) const
{
    auto [begin, end] = index_.equal_range(hash);
    for (auto it = begin; it != end; ++it) {
        const uint32_t pos = it->second;
        if (mechanisms_[pos].dets == dets &&
            mechanisms_[pos].obsMask == obs_mask) {
            return static_cast<int>(pos);
        }
    }
    return -1;
}

void
DetectorErrorModel::addMechanism(std::vector<uint32_t> dets,
                                 uint64_t obs_mask, double prob)
{
    if (prob <= 0.0) {
        return;
    }
    std::sort(dets.begin(), dets.end());
    // Repeated detectors cancel pairwise.
    std::vector<uint32_t> unique;
    for (size_t i = 0; i < dets.size();) {
        size_t j = i;
        while (j < dets.size() && dets[j] == dets[i]) {
            ++j;
        }
        if ((j - i) % 2) {
            unique.push_back(dets[i]);
        }
        i = j;
    }
    if (unique.empty() && obs_mask == 0) {
        return; // Invisible and harmless.
    }
    // Untrusted entry path (imported DEMs): recoverable throws, so
    // one bad external model fails alone instead of aborting.
    if (unique.empty() && obs_mask != 0) {
        throw DemError("undetectable logical error mechanism "
                       "(distance-0 circuit?)");
    }
    for (uint32_t d : unique) {
        if (d >= numDetectors_) {
            throw DemError("mechanism detector index " +
                           std::to_string(d) +
                           " out of range (model declares " +
                           std::to_string(numDetectors_) +
                           " detectors)");
        }
    }

    const uint64_t h = hashDets(unique, obs_mask);
    const int existing = findMechanism(unique, obs_mask, h);
    if (existing >= 0) {
        mechanisms_[existing].prob =
            xorProbability(mechanisms_[existing].prob, prob);
        return;
    }
    index_.emplace(h, static_cast<uint32_t>(mechanisms_.size()));
    mechanisms_.push_back({std::move(unique), obs_mask, prob});
}

double
DetectorErrorModel::expectedMechanisms() const
{
    double total = 0.0;
    for (const DemMechanism &m : mechanisms_) {
        total += m.prob;
    }
    return total;
}

std::string
DetectorErrorModel::str() const
{
    std::ostringstream out;
    out << "DEM with " << mechanisms_.size() << " mechanisms over "
        << numDetectors_ << " detectors\n";
    for (const DemMechanism &m : mechanisms_) {
        out << "  p=" << m.prob << " dets={";
        for (size_t i = 0; i < m.dets.size(); ++i) {
            out << (i ? "," : "") << m.dets[i];
        }
        out << "} obs=" << m.obsMask << "\n";
    }
    return out.str();
}

} // namespace qec
