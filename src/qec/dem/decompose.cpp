#include "qec/dem/decompose.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

/** Key for an edge: (u, v) with u < v, or (u, kBoundary). */
using EdgeKey = std::pair<uint32_t, uint32_t>;

EdgeKey
makeKey(uint32_t a, uint32_t b)
{
    if (a > b) {
        std::swap(a, b);
    }
    return {a, b};
}

/** One block of a decomposition: an edge key plus its obs mask. */
struct Block
{
    EdgeKey key;
    uint64_t obsMask;
};

/**
 * Recursive exact partition of `dets` into blocks drawn from
 * `atomic` (pairs and singles that already exist as graphlike
 * mechanisms). Returns the first partition whose obs masks XOR to
 * `target_obs`; if `respect_obs` is false any partition is accepted.
 */
bool
partitionDets(const std::vector<uint32_t> &dets, size_t used_mask,
              const std::map<EdgeKey, std::set<uint64_t>> &atomic,
              uint64_t target_obs, bool respect_obs,
              std::vector<Block> &blocks)
{
    const size_t n = dets.size();
    size_t first = 0;
    while (first < n && (used_mask >> first) & 1) {
        ++first;
    }
    if (first == n) {
        if (!respect_obs) {
            return true;
        }
        uint64_t acc = 0;
        for (const Block &b : blocks) {
            acc ^= b.obsMask;
        }
        return acc == target_obs;
    }

    // Try pairing `first` with each later unused detector.
    for (size_t j = first + 1; j < n; ++j) {
        if ((used_mask >> j) & 1) {
            continue;
        }
        const EdgeKey key = makeKey(dets[first], dets[j]);
        const auto it = atomic.find(key);
        if (it == atomic.end()) {
            continue;
        }
        for (uint64_t obs : it->second) {
            blocks.push_back({key, obs});
            if (partitionDets(dets,
                              used_mask | (1u << first) | (1u << j),
                              atomic, target_obs, respect_obs,
                              blocks)) {
                return true;
            }
            blocks.pop_back();
            if (!respect_obs) {
                break; // Any obs variant is as good as another.
            }
        }
    }

    // Try `first` alone as a boundary block.
    const EdgeKey bkey = makeKey(dets[first], kBoundary);
    const auto bit = atomic.find(bkey);
    if (bit != atomic.end()) {
        for (uint64_t obs : bit->second) {
            blocks.push_back({bkey, obs});
            if (partitionDets(dets, used_mask | (1u << first), atomic,
                              target_obs, respect_obs, blocks)) {
                return true;
            }
            blocks.pop_back();
            if (!respect_obs) {
                break;
            }
        }
    }
    return false;
}

} // namespace

GraphlikeDem
decomposeToGraphlike(const DetectorErrorModel &dem)
{
    GraphlikeDem out;
    out.numDetectors = dem.numDetectors();
    out.numObservables = dem.numObservables();

    // Pass 1: collect atomic (graphlike) mechanisms and the obs-mask
    // variants each edge appears with.
    std::map<EdgeKey, std::set<uint64_t>> atomic;
    for (const DemMechanism &m : dem.mechanisms()) {
        if (m.dets.size() == 1) {
            atomic[makeKey(m.dets[0], kBoundary)].insert(m.obsMask);
        } else if (m.dets.size() == 2) {
            atomic[makeKey(m.dets[0], m.dets[1])].insert(m.obsMask);
        }
    }

    // Accumulate probability per (edge, obs) with XOR combination.
    std::map<std::pair<EdgeKey, uint64_t>, double> edge_probs;
    auto accumulate = [&](EdgeKey key, uint64_t obs, double prob) {
        double &slot = edge_probs[{key, obs}];
        slot = xorProbability(slot, prob);
    };

    // Pass 2: route every mechanism into edges.
    for (const DemMechanism &m : dem.mechanisms()) {
        QEC_ASSERT(!m.dets.empty(), "mechanism with no detectors");
        if (m.dets.size() == 1) {
            accumulate(makeKey(m.dets[0], kBoundary), m.obsMask,
                       m.prob);
            continue;
        }
        if (m.dets.size() == 2) {
            accumulate(makeKey(m.dets[0], m.dets[1]), m.obsMask,
                       m.prob);
            continue;
        }

        ++out.stats.compositeMechanisms;
        QEC_ASSERT(m.dets.size() <= 16,
                   "mechanism flips implausibly many detectors");
        std::vector<Block> blocks;
        if (partitionDets(m.dets, 0, atomic, m.obsMask,
                          /*respect_obs=*/true, blocks)) {
            for (const Block &b : blocks) {
                accumulate(b.key, b.obsMask, m.prob);
            }
            continue;
        }
        blocks.clear();
        if (partitionDets(m.dets, 0, atomic, m.obsMask,
                          /*respect_obs=*/false, blocks)) {
            ++out.stats.obsRelaxed;
            for (const Block &b : blocks) {
                accumulate(b.key, b.obsMask, m.prob);
            }
            continue;
        }
        // Last resort: pair consecutive detectors, inventing edges.
        ++out.stats.forcedPairings;
        for (size_t i = 0; i + 1 < m.dets.size(); i += 2) {
            accumulate(makeKey(m.dets[i], m.dets[i + 1]),
                       (i == 0) ? m.obsMask : 0, m.prob);
        }
        if (m.dets.size() % 2) {
            accumulate(makeKey(m.dets.back(), kBoundary), 0, m.prob);
        }
    }

    for (const auto &[key_obs, prob] : edge_probs) {
        const auto &[key, obs] = key_obs;
        out.edges.push_back({key.first, key.second, obs, prob});
    }
    return out;
}

} // namespace qec
