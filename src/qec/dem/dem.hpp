/**
 * @file
 * Detector error model (DEM).
 *
 * A DEM is the decoder-facing summary of a noisy circuit: a list of
 * independent error mechanisms, each with a probability, the set of
 * detectors it flips, and the logical observables it flips. This is
 * our substitute for Stim's detector_error_model() (DESIGN.md §2).
 */

#ifndef QEC_DEM_DEM_HPP
#define QEC_DEM_DEM_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace qec
{

/**
 * A DEM that violates its own dimensions (a mechanism naming a
 * detector past numDetectors, or an undetectable logical error).
 * Thrown, not asserted: DEMs cross the trust boundary when they are
 * imported from external circuit models, and one bad model must not
 * abort a process serving others.
 */
class DemError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One independent error mechanism. */
struct DemMechanism
{
    /** Detectors flipped (sorted, deduplicated). */
    std::vector<uint32_t> dets;
    /** Bitmask of flipped observables (bit o = observable o). */
    uint64_t obsMask = 0;
    /** Probability that this mechanism fires. */
    double prob = 0.0;
};

/** A detector error model: mechanisms plus dimension metadata. */
class DetectorErrorModel
{
  public:
    DetectorErrorModel() = default;
    DetectorErrorModel(uint32_t num_detectors, uint32_t num_observables)
        : numDetectors_(num_detectors), numObservables_(num_observables)
    {
    }

    uint32_t numDetectors() const { return numDetectors_; }
    uint32_t numObservables() const { return numObservables_; }

    const std::vector<DemMechanism> &mechanisms() const
    {
        return mechanisms_;
    }

    /**
     * Add a mechanism, merging with an existing one that has the same
     * detector set and observable mask. Merging uses XOR-combination
     * (p = p1(1-p2) + p2(1-p1)): the symptom appears iff an odd
     * number of the underlying faults fire.
     *
     * Throws DemError when a detector index is out of range or the
     * mechanism is an undetectable logical error (flips observables
     * but no detectors); p <= 0 inputs are dropped silently.
     */
    void addMechanism(std::vector<uint32_t> dets, uint64_t obs_mask,
                      double prob);

    /** Sum of mechanism probabilities (expected faults per shot). */
    double expectedMechanisms() const;

    /** Human-readable dump for debugging. */
    std::string str() const;

  private:
    uint32_t numDetectors_ = 0;
    uint32_t numObservables_ = 0;
    std::vector<DemMechanism> mechanisms_;
    // Index from hashed (detector set, obs mask) to mechanism position.
    std::unordered_multimap<uint64_t, uint32_t> index_;

    int findMechanism(const std::vector<uint32_t> &dets,
                      uint64_t obs_mask, uint64_t hash) const;
};

/** XOR-combine two independent event probabilities. */
double xorProbability(double a, double b);

} // namespace qec

#endif // QEC_DEM_DEM_HPP
