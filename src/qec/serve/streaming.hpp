/**
 * @file
 * Sliding-window streaming decoder (overlapping-commit protocol).
 *
 * A batch decoder sees a shot's complete syndrome at once; a
 * real-time service must emit corrections while the syndrome is
 * still arriving. StreamingDecoder adapts any registry-built
 * Decoder to that setting: measurement layers are pushed in order,
 * and whenever a full window of W layers is buffered the decoder
 * commits the correction attributable to the window's first C
 * layers, then slides forward by C.
 *
 * Commit rule. Defects cluster temporally: two defects within G
 * layers of each other may be explained by one error chain, while
 * clusters separated by more than G layers are decoded
 * independently by any graph decoder whose corrections are local
 * (error-chain span <= G). A window therefore carries into the next
 * window the suffix of its defects that chains (gap <= G) into the
 * uncommitted region, and commits the rest as
 *
 *     commit = decode(window) XOR decode(carried)
 *
 * so the carried cluster's contribution cancels and is re-decoded
 * — once, in full — by the window that finally closes it. With
 * W >= C + G (asserted), a committed cluster is more than G layers
 * from every defect the stream has yet to deliver, which makes the
 * XOR of all committed corrections bit-identical to decoding the
 * entire stream in one shot whenever cluster decomposition holds —
 * verified against one-shot decoding across the promatch, pinball,
 * and mwpm stacks in tests/test_serve.cpp.
 *
 * A cluster that refuses to close (pathological dense streams)
 * would otherwise grow the buffer without bound; once the buffered
 * defect count reaches forceCommitDefects the window commits its
 * prefix anyway (counted in stats — equivalence is forfeit, latency
 * is bounded).
 */

#ifndef QEC_SERVE_STREAMING_HPP
#define QEC_SERVE_STREAMING_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "qec/api/status.hpp"
#include "qec/decoders/decoder.hpp"
#include "qec/serve/stream.hpp"

namespace qec
{

/** Sliding-window geometry. */
struct StreamingConfig
{
    /** Layers buffered before the first commit (W). */
    int windowRounds = 12;
    /** Layers committed (and slid past) per window (C). */
    int commitRounds = 4;
    /**
     * Temporal guard gap (G): defects further apart than this many
     * layers are assumed to belong to independent clusters. Must
     * satisfy windowRounds >= commitRounds + guardRounds.
     */
    int guardRounds = 3;
    /**
     * Buffered-defect ceiling that forces a commit even through an
     * open cluster (latency bound for pathological streams).
     */
    int forceCommitDefects = 512;
};

/** Windowing counters of one stream (or since reset()). */
struct StreamingStats
{
    /** Windows processed (excluding the finish() flush). */
    uint64_t windows = 0;
    /** decode() calls issued (window + carried decodes). */
    uint64_t decodes = 0;
    /** Defects pushed in. */
    uint64_t defectsSeen = 0;
    /** Defects carried across a window seam (re-decoded later). */
    uint64_t defectsCarried = 0;
    /** Commits forced through an open cluster (see config). */
    uint64_t forcedCommits = 0;
    /** Largest buffered defect count at any window boundary. */
    uint64_t maxWindowDefects = 0;
    /** Layers refused with a non-ok status (one per bad stream). */
    uint64_t malformedLayers = 0;
};

/** Outcome of a checked end-to-end stream decode. */
struct StreamDecodeOutcome
{
    /** XOR of all committed corrections (0 unless status is ok). */
    uint64_t committedObs = 0;
    /** Why the stream failed, or kOk. */
    DecodeStatus status = DecodeStatus::kOk;
    /** True if any underlying decode aborted. */
    bool aborted = false;
};

/**
 * Streaming wrapper around one Decoder instance.
 *
 * Not thread-safe (it drives one decoder and one workspace); the
 * serving layer gives each worker its own StreamingDecoder over a
 * clone(). All buffers reach steady capacity after warmup, so a
 * warm instance streams without heap allocation.
 */
class StreamingDecoder
{
  public:
    /**
     * @param decoder           batch decoder to adapt (borrowed;
     *                          must outlive this instance)
     * @param detectorsPerRound detectors declared per measurement
     *                          layer (SyndromeStream convention)
     */
    StreamingDecoder(Decoder &decoder, int detectorsPerRound,
                     StreamingConfig config = {});

    /**
     * Push the next measurement layer's defects (ascending absolute
     * detector ids, all inside that layer). Processes any window
     * that becomes complete.
     *
     * Layer data is an untrusted entry path: a defect past the
     * decoding graph, one from the wrong layer, or an unsorted pair
     * returns a non-ok status instead of aborting the process. The
     * first failure poisons the stream — status() sticks and every
     * further push (and finish()) is refused until reset() — so one
     * bad layer cannot half-corrupt the window invariants the
     * commit math relies on.
     */
    DecodeStatus pushLayer(std::span<const uint32_t> defects);

    /**
     * Flush: commit everything still buffered (end of stream).
     * No-op on a poisoned stream.
     */
    void finish();

    /** Forget all stream state; ready for a new stream. */
    void reset();

    /** XOR of all committed corrections so far. */
    uint64_t committedObs() const { return committedObs_; }

    /** True if any underlying decode aborted (sticky until reset). */
    bool aborted() const { return aborted_; }

    /** First failure of the current stream; kOk until poisoned. */
    DecodeStatus status() const { return status_; }

    const StreamingStats &stats() const { return stats_; }
    const StreamingConfig &config() const { return config_; }

    /**
     * Checked end-to-end decode of an untrusted stream: reset,
     * validate the CSR structure, push every layer, finish. A
     * malformed stream (inconsistent offsets, wrong
     * detectorsPerRound, bad defect ids) comes back with a non-ok
     * status and committedObs == 0; the instance is reusable for
     * the next stream either way.
     */
    StreamDecodeOutcome runChecked(const SyndromeStream &stream);

    /**
     * Trusted-input convenience: runChecked, asserting the stream
     * was well-formed. Returns the committed correction.
     */
    uint64_t run(const SyndromeStream &stream);

  private:
    void processWindow();
    DecodeStatus poison(DecodeStatus status);

    int layerOf(uint32_t id) const
    {
        return static_cast<int>(id) / detectorsPerRound_;
    }

    Decoder &decoder_;
    DecodeWorkspace &workspace_;
    int detectorsPerRound_;
    StreamingConfig config_;

    /** Uncommitted defects, ascending (spans >= winStart_). */
    std::vector<uint32_t> window_;
    int pushedLayers_ = 0;
    int winStart_ = 0;
    uint64_t committedObs_ = 0;
    bool aborted_ = false;
    DecodeStatus status_ = DecodeStatus::kOk;
    uint32_t numDetectors_ = 0;
    StreamingStats stats_;
};

} // namespace qec

#endif // QEC_SERVE_STREAMING_HPP
