/**
 * @file
 * Continuous multi-round syndrome streams for the serve subsystem.
 *
 * The batch harness evaluates one syndrome at a time; a real-time
 * decoder instead consumes detection events round by round as the
 * syndrome-extraction cycle runs. A SyndromeStream is one shot's
 * full detector record of a long memory experiment, organized as a
 * CSR over measurement layers so a consumer (StreamingDecoder, the
 * serve bench, tests) can replay it layer by layer exactly the way
 * hardware would deliver it.
 *
 * Streams are generated from the FrameSimulator on the
 * counter-based Rng::forSample streams, so stream i of a seed is a
 * pure function of (seed, i) — independent of batching and thread
 * count, same contract as the LER harness.
 */

#ifndef QEC_SERVE_STREAM_HPP
#define QEC_SERVE_STREAM_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "qec/harness/context.hpp"

namespace qec
{

/**
 * One shot's full multi-round syndrome stream.
 *
 * Detector ids are the absolute ids of the experiment's decoding
 * graph, declared round-major by the circuit generator: layer L
 * (L in [0, rounds]) owns ids [L * detectorsPerRound,
 * (L+1) * detectorsPerRound). Layer `rounds` is the final
 * transversal data-measurement layer — one more layer than
 * measurement rounds.
 */
struct SyndromeStream
{
    /** Syndrome-extraction rounds; the stream has rounds+1 layers. */
    int rounds = 0;
    /** Detectors declared per layer. */
    int detectorsPerRound = 0;
    /** All flipped detectors of the shot, ascending. */
    std::vector<uint32_t> defects;
    /** CSR offsets into `defects`, one per layer (size layers()+1). */
    std::vector<uint32_t> layerOffsets;
    /** The simulator's true observable flips (bit o = obs o). */
    uint64_t observedObs = 0;

    int layers() const { return rounds + 1; }

    /** Defects of one layer (ascending absolute ids). */
    std::span<const uint32_t>
    layer(int l) const
    {
        return {defects.data() + layerOffsets[l],
                defects.data() + layerOffsets[l + 1]};
    }
};

/**
 * Monte-Carlo sample `count` streams of the context's experiment.
 *
 * Stream i draws from Rng::forSample(seed, 0, i / 64) lane i % 64
 * (the simulator's 64-lane batching), so the set is reproducible
 * and grows consistently: the first `count` streams of a seed are
 * the same for any larger count.
 */
std::vector<SyndromeStream> sampleStreams(
    const ExperimentContext &context, uint64_t seed, int count);

} // namespace qec

#endif // QEC_SERVE_STREAM_HPP
