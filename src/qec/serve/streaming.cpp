#include "qec/serve/streaming.hpp"

#include <algorithm>

#include "qec/decoders/workspace.hpp"
#include "qec/util/assert.hpp"
#include "qec/util/rt_grow.hpp"

namespace qec
{

StreamingDecoder::StreamingDecoder(Decoder &decoder,
                                   int detectorsPerRound,
                                   StreamingConfig config)
    : decoder_(decoder), workspace_(decoder.internalWorkspace()),
      detectorsPerRound_(detectorsPerRound), config_(config),
      numDetectors_(decoder.graph().numDetectors())
{
    QEC_ASSERT(detectorsPerRound >= 1,
               "detectorsPerRound must be positive");
    QEC_ASSERT(config.commitRounds >= 1,
               "commitRounds must be positive");
    QEC_ASSERT(config.guardRounds >= 1,
               "guardRounds must be positive");
    QEC_ASSERT(
        config.windowRounds >=
            config.commitRounds + config.guardRounds,
        "windowRounds must cover commitRounds + guardRounds: a "
        "committed cluster must end more than guardRounds layers "
        "before any defect the stream has yet to deliver");
    QEC_ASSERT(config.forceCommitDefects >= 1,
               "forceCommitDefects must be positive");
}

DecodeStatus
StreamingDecoder::poison(DecodeStatus status)
{
    status_ = status;
    ++stats_.malformedLayers;
    return status;
}

DecodeStatus
StreamingDecoder::pushLayer(std::span<const uint32_t> defects)
{
    if (status_ != DecodeStatus::kOk) {
        // Poisoned stream: refuse everything until reset() so a bad
        // layer cannot half-corrupt the window invariants.
        return status_;
    }
    // Validate the full span before buffering any of it, not just
    // its endpoints: a mid-span defect from the wrong layer (or an
    // unsorted pair) would silently corrupt the window's
    // ascending-id invariant that every split computation below
    // relies on. Layer data crosses the trust boundary (it arrives
    // through the serve layer), so failures are recoverable
    // statuses, never aborts.
    for (size_t i = 0; i < defects.size(); ++i) {
        if (defects[i] >= numDetectors_) {
            return poison(DecodeStatus::kDetectorOutOfRange);
        }
        if (layerOf(defects[i]) != pushedLayers_ ||
            (i > 0 && defects[i] <= defects[i - 1])) {
            return poison(DecodeStatus::kMalformedStream);
        }
    }
    rt::appendRange(window_, defects.begin(), defects.end());
    stats_.defectsSeen += defects.size();
    ++pushedLayers_;
    while (pushedLayers_ >= winStart_ + config_.windowRounds) {
        processWindow();
    }
    return DecodeStatus::kOk;
}

void
StreamingDecoder::processWindow()
{
    ++stats_.windows;
    stats_.maxWindowDefects =
        std::max(stats_.maxWindowDefects,
                 static_cast<uint64_t>(window_.size()));

    // Everything below the commit boundary is a candidate commit;
    // the suffix from the boundary on is carried by definition.
    const uint32_t boundary = static_cast<uint32_t>(
        (winStart_ + config_.commitRounds) *
        static_cast<int64_t>(detectorsPerRound_));
    const size_t boundarySplit = static_cast<size_t>(
        std::lower_bound(window_.begin(), window_.end(), boundary) -
        window_.begin());

    // Chain the carried set backward: a committed cluster must be
    // separated from every carried defect by more than guardRounds
    // layers, so keep pulling the split down while the gap closes.
    size_t split = boundarySplit;
    while (split > 0 && split < window_.size() &&
           layerOf(window_[split - 1]) + config_.guardRounds >=
               layerOf(window_[split])) {
        --split;
    }

    if (split == 0 && window_.size() >=
                          static_cast<size_t>(
                              config_.forceCommitDefects)) {
        // One cluster has swallowed the whole window and keeps
        // growing; cut it to bound latency. The boundary prefix is
        // the natural cut, but when the cluster sits entirely past
        // the boundary (boundarySplit == 0) that cut would commit
        // nothing and the buffer would grow forever — so always
        // drain at least the oldest buffered layer. When
        // boundarySplit > 0 the layer cut is a subset of it and the
        // cut is unchanged.
        const uint32_t first_layer_end = static_cast<uint32_t>(
            (layerOf(window_.front()) + 1) *
            static_cast<int64_t>(detectorsPerRound_));
        const size_t layerSplit = static_cast<size_t>(
            std::lower_bound(window_.begin(), window_.end(),
                             first_layer_end) -
            window_.begin());
        split = std::max(boundarySplit, layerSplit);
        ++stats_.forcedCommits; // split >= 1: this always commits
    }

    if (split > 0) {
        // commit = decode(window) XOR decode(carried): the carried
        // cluster's contribution cancels out and is re-decoded by
        // whichever window finally closes it.
        const DecodeResult all =
            decoder_.decode(window_, workspace_);
        ++stats_.decodes;
        aborted_ = aborted_ || all.aborted;
        uint64_t carriedObs = 0;
        if (split < window_.size()) {
            const DecodeResult carried = decoder_.decode(
                std::span<const uint32_t>(window_.data() + split,
                                          window_.size() - split),
                workspace_);
            ++stats_.decodes;
            aborted_ = aborted_ || carried.aborted;
            carriedObs = carried.predictedObs;
        }
        committedObs_ ^= all.predictedObs ^ carriedObs;
        stats_.defectsCarried += window_.size() - split;
        window_.erase(window_.begin(),
                      window_.begin() +
                          static_cast<ptrdiff_t>(split));
    }
    // split == 0: the whole window is one open carried cluster —
    // commit nothing (decode(window) XOR decode(window) == 0) and
    // let the slide bring in the defects that close it.

    winStart_ += config_.commitRounds;
}

void
StreamingDecoder::finish()
{
    if (status_ != DecodeStatus::kOk) {
        // A poisoned stream's buffered prefix is not worth
        // committing: the request failed as a unit.
        return;
    }
    // pushLayer already processed every complete window; whatever
    // is buffered now is the stream's tail — commit it whole.
    if (!window_.empty()) {
        stats_.maxWindowDefects =
            std::max(stats_.maxWindowDefects,
                     static_cast<uint64_t>(window_.size()));
        const DecodeResult tail =
            decoder_.decode(window_, workspace_);
        ++stats_.decodes;
        aborted_ = aborted_ || tail.aborted;
        committedObs_ ^= tail.predictedObs;
        window_.clear();
    }
}

void
StreamingDecoder::reset()
{
    window_.clear(); // Keeps capacity: warm instances stay heap-free.
    pushedLayers_ = 0;
    winStart_ = 0;
    committedObs_ = 0;
    aborted_ = false;
    status_ = DecodeStatus::kOk;
    stats_ = {};
}

StreamDecodeOutcome
StreamingDecoder::runChecked(const SyndromeStream &stream)
{
    reset();
    StreamDecodeOutcome out;
    // Structural validation before replaying a single layer: the
    // CSR must be self-consistent or layer() spans would read out
    // of bounds. None of these checks allocates, so the serve hot
    // path stays heap-free.
    bool wellFormed =
        stream.detectorsPerRound == detectorsPerRound_ &&
        stream.rounds >= 0 &&
        stream.layerOffsets.size() ==
            static_cast<size_t>(stream.layers()) + 1 &&
        stream.layerOffsets.front() == 0 &&
        stream.layerOffsets.back() == stream.defects.size();
    for (int l = 0; wellFormed && l < stream.layers(); ++l) {
        wellFormed = stream.layerOffsets[l] <=
                     stream.layerOffsets[l + 1];
    }
    if (!wellFormed) {
        out.status = poison(DecodeStatus::kMalformedStream);
        return out;
    }
    for (int l = 0; l < stream.layers(); ++l) {
        if (pushLayer(stream.layer(l)) != DecodeStatus::kOk) {
            break;
        }
    }
    finish();
    out.committedObs =
        status_ == DecodeStatus::kOk ? committedObs_ : 0;
    out.status = status_;
    out.aborted = aborted_;
    return out;
}

uint64_t
StreamingDecoder::run(const SyndromeStream &stream)
{
    const StreamDecodeOutcome out = runChecked(stream);
    QEC_ASSERT(out.status == DecodeStatus::kOk,
               "run() requires a well-formed stream; use "
               "runChecked() on untrusted input");
    return out.committedObs;
}

} // namespace qec
