#include "qec/serve/streaming.hpp"

#include <algorithm>

#include "qec/decoders/workspace.hpp"
#include "qec/util/assert.hpp"

namespace qec
{

StreamingDecoder::StreamingDecoder(Decoder &decoder,
                                   int detectorsPerRound,
                                   StreamingConfig config)
    : decoder_(decoder), workspace_(decoder.internalWorkspace()),
      detectorsPerRound_(detectorsPerRound), config_(config)
{
    QEC_ASSERT(detectorsPerRound >= 1,
               "detectorsPerRound must be positive");
    QEC_ASSERT(config.commitRounds >= 1,
               "commitRounds must be positive");
    QEC_ASSERT(config.guardRounds >= 1,
               "guardRounds must be positive");
    QEC_ASSERT(
        config.windowRounds >=
            config.commitRounds + config.guardRounds,
        "windowRounds must cover commitRounds + guardRounds: a "
        "committed cluster must end more than guardRounds layers "
        "before any defect the stream has yet to deliver");
    QEC_ASSERT(config.forceCommitDefects >= 1,
               "forceCommitDefects must be positive");
}

void
StreamingDecoder::pushLayer(std::span<const uint32_t> defects)
{
    // Validate the full span, not just its endpoints: a mid-span
    // defect from the wrong layer (or an unsorted pair) would
    // silently corrupt the window's ascending-id invariant that
    // every split computation below relies on.
    for (size_t i = 0; i < defects.size(); ++i) {
        QEC_ASSERT(layerOf(defects[i]) == pushedLayers_,
                   "pushed defects must all belong to the next "
                   "layer");
        QEC_ASSERT(i == 0 || defects[i] > defects[i - 1],
                   "pushed defects must be strictly ascending");
    }
    window_.insert(window_.end(), defects.begin(), defects.end());
    stats_.defectsSeen += defects.size();
    ++pushedLayers_;
    while (pushedLayers_ >= winStart_ + config_.windowRounds) {
        processWindow();
    }
}

void
StreamingDecoder::processWindow()
{
    ++stats_.windows;
    stats_.maxWindowDefects =
        std::max(stats_.maxWindowDefects,
                 static_cast<uint64_t>(window_.size()));

    // Everything below the commit boundary is a candidate commit;
    // the suffix from the boundary on is carried by definition.
    const uint32_t boundary = static_cast<uint32_t>(
        (winStart_ + config_.commitRounds) *
        static_cast<int64_t>(detectorsPerRound_));
    const size_t boundarySplit = static_cast<size_t>(
        std::lower_bound(window_.begin(), window_.end(), boundary) -
        window_.begin());

    // Chain the carried set backward: a committed cluster must be
    // separated from every carried defect by more than guardRounds
    // layers, so keep pulling the split down while the gap closes.
    size_t split = boundarySplit;
    while (split > 0 && split < window_.size() &&
           layerOf(window_[split - 1]) + config_.guardRounds >=
               layerOf(window_[split])) {
        --split;
    }

    if (split == 0 && window_.size() >=
                          static_cast<size_t>(
                              config_.forceCommitDefects)) {
        // One cluster has swallowed the whole window and keeps
        // growing; cut it to bound latency. The boundary prefix is
        // the natural cut, but when the cluster sits entirely past
        // the boundary (boundarySplit == 0) that cut would commit
        // nothing and the buffer would grow forever — so always
        // drain at least the oldest buffered layer. When
        // boundarySplit > 0 the layer cut is a subset of it and the
        // cut is unchanged.
        const uint32_t first_layer_end = static_cast<uint32_t>(
            (layerOf(window_.front()) + 1) *
            static_cast<int64_t>(detectorsPerRound_));
        const size_t layerSplit = static_cast<size_t>(
            std::lower_bound(window_.begin(), window_.end(),
                             first_layer_end) -
            window_.begin());
        split = std::max(boundarySplit, layerSplit);
        ++stats_.forcedCommits; // split >= 1: this always commits
    }

    if (split > 0) {
        // commit = decode(window) XOR decode(carried): the carried
        // cluster's contribution cancels out and is re-decoded by
        // whichever window finally closes it.
        const DecodeResult all =
            decoder_.decode(window_, workspace_);
        ++stats_.decodes;
        aborted_ = aborted_ || all.aborted;
        uint64_t carriedObs = 0;
        if (split < window_.size()) {
            const DecodeResult carried = decoder_.decode(
                std::span<const uint32_t>(window_.data() + split,
                                          window_.size() - split),
                workspace_);
            ++stats_.decodes;
            aborted_ = aborted_ || carried.aborted;
            carriedObs = carried.predictedObs;
        }
        committedObs_ ^= all.predictedObs ^ carriedObs;
        stats_.defectsCarried += window_.size() - split;
        window_.erase(window_.begin(),
                      window_.begin() +
                          static_cast<ptrdiff_t>(split));
    }
    // split == 0: the whole window is one open carried cluster —
    // commit nothing (decode(window) XOR decode(window) == 0) and
    // let the slide bring in the defects that close it.

    winStart_ += config_.commitRounds;
}

void
StreamingDecoder::finish()
{
    // pushLayer already processed every complete window; whatever
    // is buffered now is the stream's tail — commit it whole.
    if (!window_.empty()) {
        stats_.maxWindowDefects =
            std::max(stats_.maxWindowDefects,
                     static_cast<uint64_t>(window_.size()));
        const DecodeResult tail =
            decoder_.decode(window_, workspace_);
        ++stats_.decodes;
        aborted_ = aborted_ || tail.aborted;
        committedObs_ ^= tail.predictedObs;
        window_.clear();
    }
}

void
StreamingDecoder::reset()
{
    window_.clear(); // Keeps capacity: warm instances stay heap-free.
    pushedLayers_ = 0;
    winStart_ = 0;
    committedObs_ = 0;
    aborted_ = false;
    stats_ = {};
}

uint64_t
StreamingDecoder::run(const SyndromeStream &stream)
{
    QEC_ASSERT(stream.detectorsPerRound == detectorsPerRound_,
               "stream and decoder disagree on detectors per layer");
    reset();
    for (int l = 0; l < stream.layers(); ++l) {
        pushLayer(stream.layer(l));
    }
    finish();
    return committedObs_;
}

} // namespace qec
