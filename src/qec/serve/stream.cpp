#include "qec/serve/stream.hpp"

#include "qec/sim/frame_simulator.hpp"
#include "qec/util/assert.hpp"
#include "qec/util/rng.hpp"

namespace qec
{

std::vector<SyndromeStream>
sampleStreams(const ExperimentContext &context, uint64_t seed,
              int count)
{
    QEC_ASSERT(count >= 0, "stream count must be non-negative");
    const MemoryExperiment &experiment = context.experiment();
    const int numDetectors =
        static_cast<int>(experiment.circuit.numDetectors());
    const int rounds = experiment.rounds;
    const int layers = rounds + 1;
    QEC_ASSERT(numDetectors % layers == 0,
               "detector count must split evenly across layers");
    const int detPerRound = numDetectors / layers;

    std::vector<SyndromeStream> streams;
    streams.reserve(count);

    FrameSimulator sim(experiment.circuit);
    BatchResult batch;
    for (int i = 0; i < count; ++i) {
        const int lane = i % 64;
        if (lane == 0) {
            // Same block convention as the direct Monte-Carlo
            // estimator: block b draws from stream (seed, 0, b).
            Rng rng = Rng::forSample(seed, 0,
                                     static_cast<uint64_t>(i) / 64);
            sim.sampleBatch(rng, batch);
        }

        SyndromeStream s;
        s.rounds = rounds;
        s.detectorsPerRound = detPerRound;
        s.observedObs = batch.observableMask(lane);
        s.layerOffsets.reserve(layers + 1);
        for (int d = 0; d < numDetectors; ++d) {
            if ((batch.detectors[d] >> lane) & 1) {
                s.defects.push_back(static_cast<uint32_t>(d));
            }
        }
        // Detectors are declared round-major, so the ascending defect
        // list is already grouped by layer; emit the CSR offsets.
        s.layerOffsets.push_back(0);
        size_t cursor = 0;
        for (int l = 0; l < layers; ++l) {
            const uint32_t end =
                static_cast<uint32_t>((l + 1) * detPerRound);
            while (cursor < s.defects.size() &&
                   s.defects[cursor] < end) {
                ++cursor;
            }
            s.layerOffsets.push_back(static_cast<uint32_t>(cursor));
        }
        streams.push_back(std::move(s));
    }
    return streams;
}

} // namespace qec
