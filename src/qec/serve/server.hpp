/**
 * @file
 * DecodeServer: a QPS/latency serving front end over streaming
 * decode.
 *
 * Client threads submit syndrome streams; a fixed pool of worker
 * threads decodes them through per-worker StreamingDecoders (each
 * worker owns a clone() of the prototype decoder plus its own
 * workspace — no shared mutable decoder state) and reports each
 * result through a caller-supplied handler.
 *
 * Admission path. Requests live in a fixed pool of slots, one per
 * ring cell. submit() pops a free slot from the recycle ring, fills
 * it, and pushes the slot index into the ingest ring; a worker pops
 * the index, decodes, fires the handler, and pushes the slot back.
 * Both rings are the lock-free IngestRing, so many producers can
 * submit concurrently against many workers, and a warm server
 * handles steady-state traffic without any heap allocation
 * (enforced by the counting-allocator suite in
 * tests/test_workspace.cpp).
 *
 * Backpressure contract: admission never blocks. When every slot is
 * in flight, submit() returns false, the request is counted in
 * stats().rejected, and the caller decides what to do — retry
 * (submitWithRetry bounds that with deterministic backoff), shed,
 * or slow down. The server never drops a request it accepted.
 *
 * Robustness contract (docs/api.md §Robustness):
 *  - Deadlines: submit() takes an optional relative deadline; a
 *    request still queued when its deadline passes is completed
 *    with DecodeStatus::kDeadlineExpired (no decode, counted in
 *    stats().expired) — the handler still fires exactly once.
 *  - Error taxonomy: a malformed or out-of-range stream fails alone
 *    with a non-ok DecodeResponse::status (counted in
 *    stats().failed); the worker pool keeps serving.
 *  - Handlers that throw are contained: the exception is swallowed,
 *    counted in stats().handlerExceptions, and never re-fires the
 *    handler or strands the slot.
 *  - Fault injection: a FaultInjector in ServeConfig threads
 *    deterministic stalls / rejects / corruptions through the
 *    worker loop; with no injector configured the hooks are single
 *    null-pointer branches.
 *
 * Shutdown protocol: drain() spin-waits (with backoff) until every
 * accepted request has completed or expired. stop() linearizes
 * admission against shutdown — it raises the stopping flag, waits
 * out every submit() already in flight, drains, and only then lets
 * the workers exit — so a submit() racing stop() is either rejected
 * or fully served, never stranded. stop() is idempotent and runs
 * automatically on destruction; submit() after stop() always
 * returns false (counted as rejected).
 */

#ifndef QEC_SERVE_SERVER_HPP
#define QEC_SERVE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "qec/api/status.hpp"
#include "qec/decoders/decoder.hpp"
#include "qec/harness/histogram.hpp"
#include "qec/serve/ring.hpp"
#include "qec/serve/stream.hpp"
#include "qec/serve/streaming.hpp"
#include "qec/util/time_source.hpp"

namespace qec
{

class FaultInjector;

/** Server shape; fixed for the server's lifetime. */
struct ServeConfig
{
    /** Worker threads (>= 1). */
    int workers = 2;
    /**
     * In-flight request capacity (slots + ring cells); rounded up
     * to a power of two. Bounds memory and queueing delay: when
     * all slots are busy, new submissions are rejected.
     */
    int queueCapacity = 256;
    /** Sliding-window geometry of the per-worker decoders. */
    StreamingConfig streaming;
    /** Clock for deadlines/latency; nullptr = steady clock. */
    TimeSource *time = nullptr;
    /**
     * Deterministic fault schedule (chaos testing); nullptr (the
     * default) disables every hook at the cost of one null check
     * per request. Must outlive the server.
     */
    FaultInjector *faults = nullptr;
};

/** Completion record handed to the response handler. */
struct DecodeResponse
{
    /** Caller's tag from submit() (e.g. an index into results). */
    uint64_t tag = 0;
    /** Committed observable correction (0 unless status is kOk). */
    uint64_t correctedObs = 0;
    /** kOk, kDeadlineExpired, or a stream-validation failure. */
    DecodeStatus status = DecodeStatus::kOk;
    /** True if any underlying decode aborted. */
    bool aborted = false;
    /** submit() to completion, wall clock. */
    double latencyNs = 0.0;
    /** Decode time only (dequeue to completion). */
    double serviceNs = 0.0;
};

/**
 * Called by worker threads, possibly concurrently, once per
 * completed request (including expired and failed ones — check
 * response.status). Must be thread-safe and should not allocate
 * (it runs on the serving hot path). A throwing handler is
 * contained and counted, never re-fired.
 */
using ResponseHandler = std::function<void(const DecodeResponse &)>;

/** Aggregated serving counters and latency distributions. */
struct ServeStats
{
    uint64_t accepted = 0;
    uint64_t rejected = 0; //!< Backpressure drops (ring full).
    /** Decoded (kOk or failed) — excludes expired. Invariant after
     *  drain(): accepted == completed + expired. */
    uint64_t completed = 0;
    uint64_t expired = 0;  //!< Deadline passed while queued.
    uint64_t failed = 0;   //!< Completed with a non-ok status.
    uint64_t aborted = 0;  //!< Completed but with a decoder abort.
    uint64_t handlerExceptions = 0; //!< Contained handler throws.
    /** submit()-to-completion latency (ns); decoded requests only. */
    Histogram latency;
    /** Decode service time (ns), queueing excluded. */
    Histogram service;
};

/** Bounded-backoff policy of submitWithRetry. */
struct RetryPolicy
{
    /** Total submit() attempts (>= 1). */
    int maxAttempts = 6;
    /** Backoff before the first retry. */
    uint64_t initialBackoffNs = 2'000;
    /** Exponential growth per retry. */
    double multiplier = 2.0;
    /** Backoff ceiling. */
    uint64_t maxBackoffNs = 1'000'000;
    /**
     * Seed of the deterministic jitter stream: each wait is drawn
     * from [backoff/2, backoff] as a pure function of
     * (jitterSeed, tag, attempt) via the counter RNG, so retry
     * storms decorrelate identically across runs.
     */
    uint64_t jitterSeed = 0x9ec0ffee;
};

/** Outcome of submitWithRetry. */
struct SubmitResult
{
    /** False: every attempt was rejected (the request is shed). */
    bool accepted = false;
    /** Re-attempts made (0 = first submit succeeded). */
    int retries = 0;
};

/** One worker's health fields (read concurrently, approximate). */
struct WorkerHealth
{
    /** Last loop activity tick (TimeSource ns); 0 = never ran. */
    uint64_t lastProgressNs = 0;
    /** Dequeue tick of the request in hand; 0 = idle. */
    uint64_t busySinceNs = 0;
    /** Requests finished (expired included). */
    uint64_t completed = 0;
};

/** Concurrent snapshot of server liveness (see health()). */
struct HealthSnapshot
{
    /** Snapshot tick (same TimeSource as the worker fields). */
    uint64_t nowNs = 0;
    /** Requests admitted but not yet dequeued (approximate). */
    size_t queueDepth = 0;
    /** Slots free for admission (approximate). */
    size_t freeSlots = 0;
    /** Age of the oldest request currently held by a worker; 0 if
     *  every worker is idle. A wedged worker makes this grow. */
    uint64_t oldestInFlightAgeNs = 0;
    std::vector<WorkerHealth> workers;
};

/** Worker-pool decode service over one prototype decoder. */
class DecodeServer
{
  public:
    /**
     * Starts the worker pool immediately.
     *
     * @param prototype         decoder to clone per worker (not
     *                          used for decoding itself; must
     *                          outlive the server)
     * @param detectorsPerRound SyndromeStream layer width
     * @param config            pool shape and window geometry
     * @param handler           completion callback (may be empty)
     */
    DecodeServer(const Decoder &prototype, int detectorsPerRound,
                 ServeConfig config, ResponseHandler handler = {});

    /** Stops and joins the workers (drains accepted work first). */
    ~DecodeServer();

    DecodeServer(const DecodeServer &) = delete;
    DecodeServer &operator=(const DecodeServer &) = delete;

    /**
     * Submit one stream for decoding. Returns false — counting a
     * rejection — when all slots are in flight or the server is
     * stopped; the stream is then untouched. The caller must keep
     * `stream` alive until the response fires. Thread-safe (any
     * number of producers).
     *
     * @param deadlineNs relative deadline from now; 0 = none. A
     *                   request still queued past its deadline is
     *                   completed as kDeadlineExpired without
     *                   decoding (a decode already underway is
     *                   never cancelled).
     */
    bool submit(const SyndromeStream &stream, uint64_t tag,
                uint64_t deadlineNs = 0);

    /**
     * submit() with bounded exponential backoff between rejected
     * attempts (deterministic jitter; waits go through the server's
     * TimeSource, so a fake clock makes them instant). Every
     * rejected attempt still counts in stats().rejected.
     */
    SubmitResult submitWithRetry(const SyndromeStream &stream,
                                 uint64_t tag,
                                 uint64_t deadlineNs = 0,
                                 const RetryPolicy &policy = {});

    /**
     * Wait until every accepted request has completed or expired.
     * Call after producers have stopped submitting; returns
     * immediately if nothing is in flight.
     */
    void drain();

    /**
     * Quiesce admission (racing submits finish first), drain, then
     * stop and join the workers. Idempotent.
     */
    void stop();

    /**
     * Liveness snapshot, safe to call concurrently with serving
     * traffic (reads only atomics and the rings' approximate
     * sizes). A watchdog polls this: queueDepth > 0 with a stale
     * lastProgressNs, or a growing oldestInFlightAgeNs, flags a
     * wedged worker. Allocates (the workers vector) — poll it from
     * a monitoring thread, not the hot path.
     */
    HealthSnapshot health() const;

    /**
     * Aggregate per-worker stats. Only meaningful in a quiescent
     * state (after drain() or stop()): a concurrent snapshot would
     * tear across workers.
     */
    ServeStats stats() const;

    /** Zero all counters and histograms (quiescent state only). */
    void resetStats();

    const ServeConfig &config() const { return config_; }

  private:
    struct Slot
    {
        const SyndromeStream *stream = nullptr;
        uint64_t tag = 0;
        /** TimeSource nanos at admission. */
        uint64_t submitNs = 0;
        /** Relative deadline; 0 = none. */
        uint64_t deadlineNs = 0;
    };

    /** Per-worker engine and stats, cache-line separated. */
    struct Worker;

    void workerLoop(Worker &w);
    TimeSource &time() const { return *time_; }

    ServeConfig config_;
    ResponseHandler handler_;
    TimeSource *time_;
    FaultInjector *faults_;
    uint32_t numDetectors_ = 0;

    std::vector<Slot> slots_;
    /** Recycled slot indices (workers produce, submitters consume). */
    IngestRing<uint32_t> freeRing_;
    /** Admitted slot indices (submitters produce, workers consume). */
    IngestRing<uint32_t> ingestRing_;

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> expired_{0};
    /** submit() calls past the stopping check (see stop()). */
    std::atomic<uint64_t> pendingSubmits_{0};
    /** Refuse new admissions (raised first by stop()). */
    std::atomic<bool> stopping_{false};
    /** Workers may exit once the ring is empty (raised last). */
    std::atomic<bool> exit_{false};
    bool stopped_ = false;
};

} // namespace qec

#endif // QEC_SERVE_SERVER_HPP
