/**
 * @file
 * DecodeServer: a QPS/latency serving front end over streaming
 * decode.
 *
 * Client threads submit syndrome streams; a fixed pool of worker
 * threads decodes them through per-worker StreamingDecoders (each
 * worker owns a clone() of the prototype decoder plus its own
 * workspace — no shared mutable decoder state) and reports each
 * result through a caller-supplied handler.
 *
 * Admission path. Requests live in a fixed pool of slots, one per
 * ring cell. submit() pops a free slot from the recycle ring, fills
 * it, and pushes the slot index into the ingest ring; a worker pops
 * the index, decodes, fires the handler, and pushes the slot back.
 * Both rings are the lock-free IngestRing, so many producers can
 * submit concurrently against many workers, and a warm server
 * handles steady-state traffic without any heap allocation
 * (enforced by the counting-allocator suite in
 * tests/test_workspace.cpp).
 *
 * Backpressure contract: admission never blocks. When every slot is
 * in flight, submit() returns false, the request is counted in
 * stats().rejected, and the caller decides what to do — retry,
 * shed, or slow down. The server never drops a request it accepted.
 *
 * Shutdown protocol: drain() spin-waits (with backoff) until every
 * accepted request has completed. stop() asks the workers to exit
 * once the ingest ring is empty and joins them; it drains
 * implicitly, is idempotent, and runs automatically on destruction.
 * Both require that producers have stopped submitting first — a
 * submit() racing stop() may be admitted after the workers checked
 * out and then never complete. submit() after stop() has returned
 * always returns false (counted as rejected).
 */

#ifndef QEC_SERVE_SERVER_HPP
#define QEC_SERVE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "qec/decoders/decoder.hpp"
#include "qec/harness/histogram.hpp"
#include "qec/serve/ring.hpp"
#include "qec/serve/stream.hpp"
#include "qec/serve/streaming.hpp"

namespace qec
{

/** Server shape; fixed for the server's lifetime. */
struct ServeConfig
{
    /** Worker threads (>= 1). */
    int workers = 2;
    /**
     * In-flight request capacity (slots + ring cells); rounded up
     * to a power of two. Bounds memory and queueing delay: when
     * all slots are busy, new submissions are rejected.
     */
    int queueCapacity = 256;
    /** Sliding-window geometry of the per-worker decoders. */
    StreamingConfig streaming;
};

/** Completion record handed to the response handler. */
struct DecodeResponse
{
    /** Caller's tag from submit() (e.g. an index into results). */
    uint64_t tag = 0;
    /** Committed observable correction of the stream. */
    uint64_t correctedObs = 0;
    /** True if any underlying decode aborted. */
    bool aborted = false;
    /** submit() to completion, wall clock. */
    double latencyNs = 0.0;
    /** Decode time only (dequeue to completion). */
    double serviceNs = 0.0;
};

/**
 * Called by worker threads, possibly concurrently, once per
 * completed request. Must be thread-safe and should not allocate
 * (it runs on the serving hot path).
 */
using ResponseHandler = std::function<void(const DecodeResponse &)>;

/** Aggregated serving counters and latency distributions. */
struct ServeStats
{
    uint64_t accepted = 0;
    uint64_t rejected = 0; //!< Backpressure drops (ring full).
    uint64_t completed = 0;
    uint64_t aborted = 0;  //!< Completed but with a decoder abort.
    /** submit()-to-completion latency (ns). */
    Histogram latency;
    /** Decode service time (ns), queueing excluded. */
    Histogram service;
};

/** Worker-pool decode service over one prototype decoder. */
class DecodeServer
{
  public:
    /**
     * Starts the worker pool immediately.
     *
     * @param prototype         decoder to clone per worker (not
     *                          used for decoding itself; must
     *                          outlive the server)
     * @param detectorsPerRound SyndromeStream layer width
     * @param config            pool shape and window geometry
     * @param handler           completion callback (may be empty)
     */
    DecodeServer(const Decoder &prototype, int detectorsPerRound,
                 ServeConfig config, ResponseHandler handler = {});

    /** Stops and joins the workers (drains accepted work first). */
    ~DecodeServer();

    DecodeServer(const DecodeServer &) = delete;
    DecodeServer &operator=(const DecodeServer &) = delete;

    /**
     * Submit one stream for decoding. Returns false — counting a
     * rejection — when all slots are in flight or the server is
     * stopped; the stream is then untouched. The caller must keep
     * `stream` alive until the response fires. Thread-safe (any
     * number of producers).
     */
    bool submit(const SyndromeStream &stream, uint64_t tag);

    /**
     * Wait until every accepted request has completed. Call after
     * producers have stopped submitting; returns immediately if
     * nothing is in flight.
     */
    void drain();

    /** Drain, then stop and join the workers. Idempotent. */
    void stop();

    /**
     * Aggregate per-worker stats. Only meaningful in a quiescent
     * state (after drain() or stop()): a concurrent snapshot would
     * tear across workers.
     */
    ServeStats stats() const;

    /** Zero all counters and histograms (quiescent state only). */
    void resetStats();

    const ServeConfig &config() const { return config_; }

  private:
    struct Slot
    {
        const SyndromeStream *stream = nullptr;
        uint64_t tag = 0;
        /** steady_clock nanos at admission. */
        uint64_t submitNs = 0;
    };

    /** Per-worker engine and stats, cache-line separated. */
    struct Worker;

    void workerLoop(Worker &w);

    ServeConfig config_;
    ResponseHandler handler_;

    std::vector<Slot> slots_;
    /** Recycled slot indices (workers produce, submitters consume). */
    IngestRing<uint32_t> freeRing_;
    /** Admitted slot indices (submitters produce, workers consume). */
    IngestRing<uint32_t> ingestRing_;

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<bool> stopping_{false};
    bool stopped_ = false;
};

} // namespace qec

#endif // QEC_SERVE_SERVER_HPP
