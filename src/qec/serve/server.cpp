#include "qec/serve/server.hpp"

#include <algorithm>
#include <chrono>

#include "qec/fault/fault_injector.hpp"
#include "qec/util/assert.hpp"
#include "qec/util/backoff.hpp"
#include "qec/util/realtime.hpp"
#include "qec/util/rng.hpp"

namespace qec
{

struct DecodeServer::Worker
{
    Worker(const Decoder &prototype, int detectorsPerRound,
           const StreamingConfig &streaming, int index)
        : index(index), engine(prototype.clone()),
          streamer(*engine, detectorsPerRound, streaming)
    {
    }

    int index;
    std::unique_ptr<Decoder> engine;
    StreamingDecoder streamer;
    /** Copy-on-corrupt scratch (fault injection only). */
    SyndromeStream corruptScratch;
    // Plain counters: written by the owning worker thread only,
    // merged by stats() in a quiescent state.
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t aborted = 0;
    uint64_t handlerExceptions = 0;
    Histogram latency;
    Histogram service;
    // Health fields, read concurrently by health().
    std::atomic<uint64_t> lastProgressNs{0};
    std::atomic<uint64_t> busySinceNs{0};
    std::atomic<uint64_t> finishedApprox{0};
};

DecodeServer::DecodeServer(const Decoder &prototype,
                           int detectorsPerRound, ServeConfig config,
                           ResponseHandler handler)
    : config_(config), handler_(std::move(handler)),
      time_(config.time ? config.time : &steadyTimeSource()),
      faults_(config.faults),
      numDetectors_(prototype.graph().numDetectors()),
      freeRing_(static_cast<size_t>(config.queueCapacity)),
      ingestRing_(static_cast<size_t>(config.queueCapacity))
{
    QEC_ASSERT(config.workers >= 1,
               "server needs at least one worker");
    QEC_ASSERT(config.queueCapacity >= 1,
               "server needs at least one request slot");

    // One slot per ring cell: a submitter that wins a free slot is
    // guaranteed a cell in the ingest ring, so an admitted request
    // can never be dropped.
    slots_.resize(freeRing_.capacity());
    for (uint32_t i = 0;
         i < static_cast<uint32_t>(slots_.size()); ++i) {
        const bool pushed = freeRing_.tryPush(i);
        QEC_ASSERT(pushed, "free ring must hold every slot");
    }

    workers_.reserve(config.workers);
    threads_.reserve(config.workers);
    for (int w = 0; w < config.workers; ++w) {
        workers_.push_back(std::make_unique<Worker>(
            prototype, detectorsPerRound, config.streaming, w));
    }
    for (int w = 0; w < config.workers; ++w) {
        threads_.emplace_back(
            [this, w] { workerLoop(*workers_[w]); });
    }
}

DecodeServer::~DecodeServer() { stop(); }

bool
DecodeServer::submit(const SyndromeStream &stream, uint64_t tag,
                     uint64_t deadlineNs)
{
    // Admission/shutdown linearization (Dekker store-load): raise
    // the pending count, then check the stopping flag — stop() does
    // the mirror image (raise stopping, then wait for pending == 0).
    // Under the seq_cst total order every submit either sees
    // stopping (and rejects) or its increment is visible to stop()'s
    // wait, which then outlasts the push below. Either way a racing
    // submit is rejected or fully served — never stranded.
    pendingSubmits_.fetch_add(1, std::memory_order_seq_cst);
    if (stopping_.load(std::memory_order_seq_cst)) {
        pendingSubmits_.fetch_sub(1, std::memory_order_release);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    uint32_t slot;
    if ((faults_ && faults_->injectReject()) ||
        !freeRing_.tryPop(slot)) {
        pendingSubmits_.fetch_sub(1, std::memory_order_release);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    Slot &s = slots_[slot];
    s.stream = &stream;
    s.tag = tag;
    s.submitNs = time().nowNs();
    s.deadlineNs = deadlineNs;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    // Slots and ring cells are in one-to-one supply and we hold a
    // slot that is in neither ring, so there is always logical room
    // — but a Vyukov tryPush can still fail transiently while a
    // consumer that claimed the target cell has not yet published
    // its sequence. Spin it out: the wait is bounded by that one
    // consumer's in-progress pop, not by queue drain (found by the
    // chaos suite under TSan at small ring capacities).
    SpinBackoff backoff;
    while (!ingestRing_.tryPush(slot)) {
        backoff.pause();
    }
    pendingSubmits_.fetch_sub(1, std::memory_order_release);
    return true;
}

SubmitResult
DecodeServer::submitWithRetry(const SyndromeStream &stream,
                              uint64_t tag, uint64_t deadlineNs,
                              const RetryPolicy &policy)
{
    QEC_ASSERT(policy.maxAttempts >= 1,
               "retry policy needs at least one attempt");
    SubmitResult out;
    uint64_t backoffNs = policy.initialBackoffNs;
    for (int attempt = 0; attempt < policy.maxAttempts; ++attempt) {
        if (submit(stream, tag, deadlineNs)) {
            out.accepted = true;
            out.retries = attempt;
            return out;
        }
        if (attempt + 1 == policy.maxAttempts) {
            break;
        }
        // Deterministic jitter in [backoff/2, backoff]: a pure
        // function of (jitterSeed, tag, attempt), so identical runs
        // wait identically and concurrent retriers decorrelate.
        Rng rng = Rng::forSample(policy.jitterSeed, tag,
                                 static_cast<uint64_t>(attempt));
        const uint64_t waitNs =
            backoffNs / 2 + rng.nextBelow(backoffNs / 2 + 1);
        time().sleepNs(waitNs);
        backoffNs = std::min(
            policy.maxBackoffNs,
            static_cast<uint64_t>(static_cast<double>(backoffNs) *
                                  policy.multiplier));
    }
    out.retries = policy.maxAttempts - 1;
    return out;
}

void
DecodeServer::drain()
{
    SpinBackoff backoff;
    while (completed_.load(std::memory_order_acquire) +
               expired_.load(std::memory_order_acquire) <
           accepted_.load(std::memory_order_acquire)) {
        backoff.pause();
    }
}

void
DecodeServer::stop()
{
    if (stopped_) {
        return;
    }
    stopping_.store(true, std::memory_order_seq_cst);
    // Wait out every submit() that got past the stopping check:
    // after this loop the accepted count is final (see submit()).
    SpinBackoff backoff;
    while (pendingSubmits_.load(std::memory_order_seq_cst) != 0) {
        backoff.pause();
    }
    drain();
    // Only now may workers exit on an empty ring: everything
    // admitted has been served, and nothing can be admitted again.
    exit_.store(true, std::memory_order_release);
    for (std::thread &t : threads_) {
        t.join();
    }
    threads_.clear();
    stopped_ = true;
}

void
DecodeServer::workerLoop(Worker &w)
{
    QEC_REALTIME;
    SpinBackoff backoff;
    for (;;) {
        uint32_t slot;
        if (ingestRing_.tryPop(slot)) {
            backoff.reset();
            Slot &s = slots_[slot];
            const SyndromeStream *stream = s.stream;
            const uint64_t tag = s.tag;
            const uint64_t submitNs = s.submitNs;
            const uint64_t deadlineNs = s.deadlineNs;

            uint64_t t0 = time().nowNs();
            w.busySinceNs.store(t0, std::memory_order_release);
            w.lastProgressNs.store(t0, std::memory_order_relaxed);

            if (faults_) {
                // Wedge gate: parks holding the request so
                // health()'s oldestInFlightAgeNs grows (the
                // watchdog tests key off that).
                while (faults_->wedged(w.index)) {
                    idleNap(20);
                }
                uint64_t stallNs = 0;
                if (faults_->injectStall(&stallNs)) {
                    time().sleepNs(stallNs);
                }
                t0 = time().nowNs();
            }

            DecodeResponse response;
            response.tag = tag;
            const bool expired =
                deadlineNs != 0 && t0 > submitNs + deadlineNs;
            if (expired) {
                response.status = DecodeStatus::kDeadlineExpired;
            } else {
                if (faults_) {
                    stream = faults_->maybeCorrupt(
                        *stream, w.corruptScratch, numDetectors_);
                }
                const StreamDecodeOutcome decoded =
                    w.streamer.runChecked(*stream);
                response.correctedObs = decoded.committedObs;
                response.status = decoded.status;
                response.aborted = decoded.aborted;
            }
            const uint64_t t1 = time().nowNs();

            // Recycle before the handler: the slot's contents are
            // already copied out, and a waiting submitter can reuse
            // it while the handler runs. As in submit(), the push
            // has guaranteed logical room but can fail transiently
            // under a concurrent in-progress pop — spin it out.
            SpinBackoff recycleBackoff;
            while (!freeRing_.tryPush(slot)) {
                recycleBackoff.pause();
            }

            response.latencyNs =
                static_cast<double>(t1 - submitNs);
            response.serviceNs = static_cast<double>(t1 - t0);

            if (!expired) {
                ++w.completed;
                if (response.status != DecodeStatus::kOk) {
                    ++w.failed;
                }
                if (response.aborted) {
                    ++w.aborted;
                }
                w.latency.add(response.latencyNs);
                w.service.add(response.serviceNs);
            }
            if (handler_) {
                try {
                    handler_(response);
                } catch (...) {
                    // Contained: the response already fired once;
                    // re-firing or unwinding the worker would break
                    // the exactly-once and drain guarantees.
                    ++w.handlerExceptions;
                }
            }
            w.busySinceNs.store(0, std::memory_order_release);
            w.lastProgressNs.store(t1, std::memory_order_relaxed);
            w.finishedApprox.fetch_add(1,
                                       std::memory_order_relaxed);
            // Release-publish after the handler so drain() waiters
            // observe the handler's writes.
            if (expired) {
                expired_.fetch_add(1, std::memory_order_release);
            } else {
                completed_.fetch_add(1, std::memory_order_release);
            }
        } else if (exit_.load(std::memory_order_acquire)) {
            // exit_ rises only after stop() saw admission quiesced
            // and every accepted request served, so an empty ring
            // here is final.
            return;
        } else {
            w.lastProgressNs.store(time().nowNs(),
                                   std::memory_order_relaxed);
            backoff.pause();
        }
    }
}

HealthSnapshot
DecodeServer::health() const
{
    HealthSnapshot out;
    out.nowNs = time_->nowNs();
    out.queueDepth = ingestRing_.sizeApprox();
    out.freeSlots = freeRing_.sizeApprox();
    out.workers.reserve(workers_.size());
    for (const auto &w : workers_) {
        WorkerHealth h;
        h.lastProgressNs =
            w->lastProgressNs.load(std::memory_order_acquire);
        h.busySinceNs =
            w->busySinceNs.load(std::memory_order_acquire);
        h.completed =
            w->finishedApprox.load(std::memory_order_relaxed);
        if (h.busySinceNs != 0 && out.nowNs > h.busySinceNs) {
            out.oldestInFlightAgeNs =
                std::max(out.oldestInFlightAgeNs,
                         out.nowNs - h.busySinceNs);
        }
        out.workers.push_back(h);
    }
    return out;
}

ServeStats
DecodeServer::stats() const
{
    ServeStats out;
    out.accepted = accepted_.load(std::memory_order_acquire);
    out.rejected = rejected_.load(std::memory_order_acquire);
    out.completed = completed_.load(std::memory_order_acquire);
    out.expired = expired_.load(std::memory_order_acquire);
    for (const auto &w : workers_) {
        out.failed += w->failed;
        out.aborted += w->aborted;
        out.handlerExceptions += w->handlerExceptions;
        out.latency.merge(w->latency);
        out.service.merge(w->service);
    }
    return out;
}

void
DecodeServer::resetStats()
{
    accepted_.store(0, std::memory_order_relaxed);
    rejected_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    expired_.store(0, std::memory_order_relaxed);
    for (auto &w : workers_) {
        w->completed = 0;
        w->failed = 0;
        w->aborted = 0;
        w->handlerExceptions = 0;
        w->latency.clear();
        w->service.clear();
        w->finishedApprox.store(0, std::memory_order_relaxed);
    }
}

} // namespace qec
