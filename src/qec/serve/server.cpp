#include "qec/serve/server.hpp"

#include <chrono>

#include "qec/util/assert.hpp"
#include "qec/util/backoff.hpp"

namespace qec
{

namespace
{

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

struct DecodeServer::Worker
{
    Worker(const Decoder &prototype, int detectorsPerRound,
           const StreamingConfig &streaming)
        : engine(prototype.clone()),
          streamer(*engine, detectorsPerRound, streaming)
    {
    }

    std::unique_ptr<Decoder> engine;
    StreamingDecoder streamer;
    uint64_t completed = 0;
    uint64_t aborted = 0;
    Histogram latency;
    Histogram service;
};

DecodeServer::DecodeServer(const Decoder &prototype,
                           int detectorsPerRound, ServeConfig config,
                           ResponseHandler handler)
    : config_(config), handler_(std::move(handler)),
      freeRing_(static_cast<size_t>(config.queueCapacity)),
      ingestRing_(static_cast<size_t>(config.queueCapacity))
{
    QEC_ASSERT(config.workers >= 1,
               "server needs at least one worker");
    QEC_ASSERT(config.queueCapacity >= 1,
               "server needs at least one request slot");

    // One slot per ring cell: a submitter that wins a free slot is
    // guaranteed a cell in the ingest ring, so an admitted request
    // can never be dropped.
    slots_.resize(freeRing_.capacity());
    for (uint32_t i = 0;
         i < static_cast<uint32_t>(slots_.size()); ++i) {
        const bool pushed = freeRing_.tryPush(i);
        QEC_ASSERT(pushed, "free ring must hold every slot");
    }

    workers_.reserve(config.workers);
    threads_.reserve(config.workers);
    for (int w = 0; w < config.workers; ++w) {
        workers_.push_back(std::make_unique<Worker>(
            prototype, detectorsPerRound, config.streaming));
    }
    for (int w = 0; w < config.workers; ++w) {
        threads_.emplace_back(
            [this, w] { workerLoop(*workers_[w]); });
    }
}

DecodeServer::~DecodeServer() { stop(); }

bool
DecodeServer::submit(const SyndromeStream &stream, uint64_t tag)
{
    uint32_t slot;
    if (stopping_.load(std::memory_order_acquire) ||
        !freeRing_.tryPop(slot)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    Slot &s = slots_[slot];
    s.stream = &stream;
    s.tag = tag;
    s.submitNs = nowNs();
    accepted_.fetch_add(1, std::memory_order_relaxed);
    // Cannot fail: slots and cells are in one-to-one supply, and
    // the slot we hold is not in either ring.
    const bool pushed = ingestRing_.tryPush(slot);
    QEC_ASSERT(pushed, "ingest ring rejected an admitted slot");
    return true;
}

void
DecodeServer::drain()
{
    SpinBackoff backoff;
    while (completed_.load(std::memory_order_acquire) <
           accepted_.load(std::memory_order_acquire)) {
        backoff.pause();
    }
}

void
DecodeServer::stop()
{
    if (stopped_) {
        return;
    }
    stopping_.store(true, std::memory_order_release);
    drain();
    for (std::thread &t : threads_) {
        t.join();
    }
    threads_.clear();
    stopped_ = true;
}

void
DecodeServer::workerLoop(Worker &w)
{
    SpinBackoff backoff;
    for (;;) {
        uint32_t slot;
        if (ingestRing_.tryPop(slot)) {
            backoff.reset();
            Slot &s = slots_[slot];
            const SyndromeStream *stream = s.stream;
            const uint64_t tag = s.tag;
            const uint64_t submitNs = s.submitNs;

            const uint64_t t0 = nowNs();
            const uint64_t obs = w.streamer.run(*stream);
            const bool aborted = w.streamer.aborted();
            const uint64_t t1 = nowNs();

            // Recycle before the handler: the slot's contents are
            // already copied out, and a waiting submitter can reuse
            // it while the handler runs.
            const bool pushed = freeRing_.tryPush(slot);
            QEC_ASSERT(pushed, "free ring rejected a retired slot");

            DecodeResponse response;
            response.tag = tag;
            response.correctedObs = obs;
            response.aborted = aborted;
            response.latencyNs =
                static_cast<double>(t1 - submitNs);
            response.serviceNs = static_cast<double>(t1 - t0);

            ++w.completed;
            if (aborted) {
                ++w.aborted;
            }
            w.latency.add(response.latencyNs);
            w.service.add(response.serviceNs);
            if (handler_) {
                handler_(response);
            }
            // Release-publish after the handler so drain() waiters
            // observe the handler's writes.
            completed_.fetch_add(1, std::memory_order_release);
        } else if (stopping_.load(std::memory_order_acquire)) {
            // The ring was empty after the stop flag was up; any
            // in-flight submit either lost admission (rejected) or
            // pushed before we saw the ring empty.
            return;
        } else {
            backoff.pause();
        }
    }
}

ServeStats
DecodeServer::stats() const
{
    ServeStats out;
    out.accepted = accepted_.load(std::memory_order_acquire);
    out.rejected = rejected_.load(std::memory_order_acquire);
    out.completed = completed_.load(std::memory_order_acquire);
    for (const auto &w : workers_) {
        out.aborted += w->aborted;
        out.latency.merge(w->latency);
        out.service.merge(w->service);
    }
    return out;
}

void
DecodeServer::resetStats()
{
    accepted_.store(0, std::memory_order_relaxed);
    rejected_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    for (auto &w : workers_) {
        w->completed = 0;
        w->aborted = 0;
        w->latency.clear();
        w->service.clear();
    }
}

} // namespace qec
