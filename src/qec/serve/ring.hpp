/**
 * @file
 * Bounded lock-free ingest ring of the serving front end.
 *
 * A Vyukov-style bounded queue over a power-of-two array of
 * sequence-stamped cells: producers claim a cell with one CAS on
 * the head counter, consumers with one CAS on the tail counter, and
 * the per-cell sequence number hands the cell between them without
 * any lock. The DecodeServer deploys it twice — many client threads
 * producing into the worker pool (the MPSC ingest path of the serve
 * subsystem), and workers recycling request slots back to
 * producers — and both directions are multi-producer AND
 * multi-consumer safe, which the stress matrix in
 * tests/test_serve.cpp exercises under ThreadSanitizer.
 *
 * Backpressure contract: tryPush returns false instead of blocking
 * when the ring is full (the caller counts the drop); tryPop
 * returns false when it is empty. Neither ever waits, so a full
 * ring can never stall a producer and a closed server can always
 * drain. Capacity is fixed at construction — steady-state traffic
 * allocates nothing.
 */

#ifndef QEC_SERVE_RING_HPP
#define QEC_SERVE_RING_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace qec
{

/**
 * Bounded lock-free queue. T must be default-constructible and
 * copy-assignable; the server queues 32-bit slot indices, so
 * element copies are trivial.
 */
template <typename T>
class IngestRing
{
  public:
    /** Capacity is rounded up to a power of two (minimum 2). */
    explicit IngestRing(size_t capacity)
    {
        size_t cap = 2;
        while (cap < capacity) {
            cap <<= 1;
        }
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        for (size_t i = 0; i < cap; ++i) {
            cells_[i].sequence.store(i, std::memory_order_relaxed);
        }
    }

    size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue one element; false when the ring is full (the
     * element is NOT queued — count it as a dropped request).
     * Multi-producer safe; the value written before the publishing
     * store is visible to the consumer that pops it.
     */
    bool
    tryPush(const T &value)
    {
        Cell *cell;
        size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const size_t seq =
                cell->sequence.load(std::memory_order_acquire);
            const intptr_t dif = static_cast<intptr_t>(seq) -
                                 static_cast<intptr_t>(pos);
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    break;
                }
            } else if (dif < 0) {
                return false; // Cell not yet consumed: full.
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
        cell->value = value;
        cell->sequence.store(pos + 1, std::memory_order_release);
        return true;
    }

    /** Dequeue one element; false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        Cell *cell;
        size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const size_t seq =
                cell->sequence.load(std::memory_order_acquire);
            const intptr_t dif = static_cast<intptr_t>(seq) -
                                 static_cast<intptr_t>(pos + 1);
            if (dif == 0) {
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    break;
                }
            } else if (dif < 0) {
                return false; // Cell not yet produced: empty.
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
        out = cell->value;
        cell->sequence.store(pos + mask_ + 1,
                             std::memory_order_release);
        return true;
    }

    /**
     * Instantaneous element count. Racy by nature — use only for
     * monitoring or in quiescent states (tests, drain loops), never
     * for flow-control decisions.
     */
    size_t
    sizeApprox() const
    {
        const size_t head = head_.load(std::memory_order_relaxed);
        const size_t tail = tail_.load(std::memory_order_relaxed);
        return head >= tail ? head - tail : 0;
    }

  private:
    struct Cell
    {
        std::atomic<size_t> sequence;
        T value;
    };

    std::unique_ptr<Cell[]> cells_;
    size_t mask_ = 0;
    /** Producer and consumer cursors on separate cache lines. */
    alignas(64) std::atomic<size_t> head_{0};
    alignas(64) std::atomic<size_t> tail_{0};
};

} // namespace qec

#endif // QEC_SERVE_RING_HPP
