/**
 * @file
 * Line-oriented text serialization for circuits.
 *
 * Format (one instruction per line, '#' comments):
 *
 *     QUBITS 25
 *     R 0 1 2
 *     DEPOLARIZE1(0.0001) 0 1 2
 *     CX 0 9 1 10
 *     M(0.0001) 9 10
 *     DETECTOR 0 1
 *     OBSERVABLE(0) 4 5 6
 *     TICK
 *
 * DETECTOR/OBSERVABLE targets are absolute measurement-record indices.
 */

#include "qec/circuit/circuit.hpp"

#include <cstdio>
#include <sstream>

#include "qec/util/assert.hpp"

namespace qec
{

namespace
{

std::string
formatArg(double arg)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", arg);
    return buf;
}

} // namespace

std::string
circuitToText(const Circuit &circuit)
{
    std::ostringstream out;
    out << "QUBITS " << circuit.numQubits() << "\n";
    for (const Instruction &inst : circuit.instructions()) {
        out << opName(inst.type);
        if (inst.type == OpType::Observable) {
            out << '(' << inst.id << ')';
        } else if (opIsNoise(inst.type) ||
                   (inst.type == OpType::M && inst.arg != 0.0)) {
            out << '(' << formatArg(inst.arg) << ')';
        }
        for (uint32_t t : inst.targets) {
            out << ' ' << t;
        }
        out << '\n';
    }
    return out.str();
}

Circuit
circuitFromText(const std::string &text)
{
    Circuit circuit;
    std::istringstream in(text);
    std::string line;
    bool saw_qubits = false;
    while (std::getline(in, line)) {
        // Strip comments and whitespace-only lines.
        const size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.resize(hash);
        }
        std::istringstream ls(line);
        std::string head;
        if (!(ls >> head)) {
            continue;
        }

        if (head == "QUBITS") {
            uint32_t n = 0;
            if (!(ls >> n)) {
                QEC_FATAL("QUBITS line missing count");
            }
            circuit.setNumQubits(n);
            saw_qubits = true;
            continue;
        }
        if (!saw_qubits) {
            QEC_FATAL("circuit text must start with a QUBITS line");
        }

        // Split "NAME(arg)" into name and argument.
        double arg = 0.0;
        uint32_t obs_id = 0;
        std::string name = head;
        const size_t paren = head.find('(');
        if (paren != std::string::npos) {
            name = head.substr(0, paren);
            const std::string arg_text =
                head.substr(paren + 1, head.size() - paren - 2);
            if (name == "OBSERVABLE") {
                obs_id = static_cast<uint32_t>(std::stoul(arg_text));
            } else {
                arg = std::stod(arg_text);
            }
        }

        std::vector<uint32_t> targets;
        uint32_t t;
        while (ls >> t) {
            targets.push_back(t);
        }

        if (name == "R") {
            circuit.appendReset(targets);
        } else if (name == "H") {
            circuit.appendH(targets);
        } else if (name == "CX") {
            circuit.appendCx(targets);
        } else if (name == "M") {
            circuit.appendMeasure(targets, arg);
        } else if (name == "X_ERROR") {
            circuit.appendXError(targets, arg);
        } else if (name == "Z_ERROR") {
            circuit.appendZError(targets, arg);
        } else if (name == "DEPOLARIZE1") {
            circuit.appendDepolarize1(targets, arg);
        } else if (name == "DEPOLARIZE2") {
            circuit.appendDepolarize2(targets, arg);
        } else if (name == "TICK") {
            circuit.appendTick();
        } else if (name == "DETECTOR") {
            circuit.appendDetector(targets);
        } else if (name == "OBSERVABLE") {
            circuit.appendObservable(obs_id, targets);
        } else {
            QEC_FATAL("unknown instruction in circuit text");
        }
    }
    circuit.validate();
    return circuit;
}

} // namespace qec
