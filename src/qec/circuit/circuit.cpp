#include "qec/circuit/circuit.hpp"

#include <algorithm>

#include "qec/util/assert.hpp"

namespace qec
{

bool
opIsNoise(OpType type)
{
    switch (type) {
      case OpType::XError:
      case OpType::ZError:
      case OpType::Depolarize1:
      case OpType::Depolarize2:
        return true;
      default:
        return false;
    }
}

const char *
opName(OpType type)
{
    switch (type) {
      case OpType::R: return "R";
      case OpType::H: return "H";
      case OpType::CX: return "CX";
      case OpType::M: return "M";
      case OpType::XError: return "X_ERROR";
      case OpType::ZError: return "Z_ERROR";
      case OpType::Depolarize1: return "DEPOLARIZE1";
      case OpType::Depolarize2: return "DEPOLARIZE2";
      case OpType::Tick: return "TICK";
      case OpType::Detector: return "DETECTOR";
      case OpType::Observable: return "OBSERVABLE";
    }
    QEC_PANIC("invalid OpType");
}

void
Circuit::append(Instruction inst)
{
    ops.push_back(std::move(inst));
}

void
Circuit::appendReset(const std::vector<uint32_t> &qubits)
{
    append({OpType::R, 0.0, qubits, 0});
}

void
Circuit::appendH(const std::vector<uint32_t> &qubits)
{
    append({OpType::H, 0.0, qubits, 0});
}

void
Circuit::appendCx(const std::vector<uint32_t> &pairs)
{
    QEC_ASSERT(pairs.size() % 2 == 0, "CX needs (control,target) pairs");
    append({OpType::CX, 0.0, pairs, 0});
}

uint32_t
Circuit::appendMeasure(const std::vector<uint32_t> &qubits,
                       double flip_prob)
{
    const uint32_t first = numMeasurements_;
    numMeasurements_ += static_cast<uint32_t>(qubits.size());
    append({OpType::M, flip_prob, qubits, 0});
    return first;
}

void
Circuit::appendXError(const std::vector<uint32_t> &qubits, double p)
{
    append({OpType::XError, p, qubits, 0});
}

void
Circuit::appendZError(const std::vector<uint32_t> &qubits, double p)
{
    append({OpType::ZError, p, qubits, 0});
}

void
Circuit::appendDepolarize1(const std::vector<uint32_t> &qubits, double p)
{
    append({OpType::Depolarize1, p, qubits, 0});
}

void
Circuit::appendDepolarize2(const std::vector<uint32_t> &pairs, double p)
{
    QEC_ASSERT(pairs.size() % 2 == 0,
               "DEPOLARIZE2 needs (a,b) pairs");
    append({OpType::Depolarize2, p, pairs, 0});
}

void
Circuit::appendTick()
{
    append({OpType::Tick, 0.0, {}, 0});
}

void
Circuit::appendDetector(const std::vector<uint32_t> &record_indices)
{
    ++numDetectors_;
    append({OpType::Detector, 0.0, record_indices, 0});
}

void
Circuit::appendObservable(uint32_t id,
                          const std::vector<uint32_t> &record_indices)
{
    numObservables_ = std::max(numObservables_, id + 1);
    append({OpType::Observable, 0.0, record_indices, id});
}

void
Circuit::validate() const
{
    uint32_t measured = 0;
    for (const Instruction &inst : ops) {
        switch (inst.type) {
          case OpType::Detector:
          case OpType::Observable:
            for (uint32_t rec : inst.targets) {
                QEC_ASSERT(rec < measured,
                           "detector/observable references a "
                           "measurement that has not happened yet");
            }
            break;
          case OpType::M:
            for (uint32_t q : inst.targets) {
                QEC_ASSERT(q < numQubits_, "qubit index out of range");
            }
            measured += static_cast<uint32_t>(inst.targets.size());
            break;
          case OpType::CX:
          case OpType::Depolarize2:
            QEC_ASSERT(inst.targets.size() % 2 == 0,
                       "pairwise op with odd target count");
            [[fallthrough]];
          default:
            for (uint32_t q : inst.targets) {
                QEC_ASSERT(q < numQubits_, "qubit index out of range");
            }
            break;
        }
        if (opIsNoise(inst.type) || inst.type == OpType::M) {
            QEC_ASSERT(inst.arg >= 0.0 && inst.arg <= 1.0,
                       "probability argument out of [0,1]");
        }
    }
    QEC_ASSERT(measured == numMeasurements_,
               "measurement count metadata mismatch");
}

} // namespace qec
