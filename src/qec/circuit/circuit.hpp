/**
 * @file
 * Stabilizer-circuit intermediate representation.
 *
 * A Circuit is a flat list of instructions over qubit indices plus a
 * measurement record. It is the common language between the surface
 * code generator, the Pauli-frame simulator, and the fault enumerator
 * (our substitute for Stim's circuit format; see DESIGN.md §2).
 *
 * Detector and observable instructions reference absolute measurement
 * record indices, which keeps both the simulator and the enumerator
 * trivially correct (no look-back bookkeeping).
 */

#ifndef QEC_CIRCUIT_CIRCUIT_HPP
#define QEC_CIRCUIT_CIRCUIT_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace qec
{

/** Operation kinds understood by the simulator and enumerator. */
enum class OpType : uint8_t
{
    R,           //!< Reset listed qubits to |0>.
    H,           //!< Hadamard on listed qubits.
    CX,          //!< CNOTs on (control, target) pairs.
    M,           //!< Z-basis measurement; arg = record flip probability.
    XError,      //!< X error on listed qubits with probability arg.
    ZError,      //!< Z error on listed qubits with probability arg.
    Depolarize1, //!< One-qubit depolarizing channel, total prob arg.
    Depolarize2, //!< Two-qubit depolarizing on pairs, total prob arg.
    Tick,        //!< Layer separator (no semantic effect).
    Detector,    //!< Parity of listed measurement-record indices.
    Observable,  //!< Logical observable: parity of record indices.
};

/** True for the probabilistic channels (XError..Depolarize2). */
bool opIsNoise(OpType type);

/** Canonical instruction name used by the text format. */
const char *opName(OpType type);

/** One circuit instruction. */
struct Instruction
{
    OpType type = OpType::Tick;
    /** Channel probability (noise ops, M) — unused otherwise. */
    double arg = 0.0;
    /**
     * Qubit indices (gates/noise) or absolute measurement-record
     * indices (Detector/Observable). CX and Depolarize2 interpret the
     * list as consecutive pairs.
     */
    std::vector<uint32_t> targets;
    /** Observable index (Observable instructions only). */
    uint32_t id = 0;
};

/** A complete stabilizer circuit with declared metadata. */
class Circuit
{
  public:
    Circuit() = default;

    /** Construct for a given qubit count. */
    explicit Circuit(uint32_t num_qubits) : numQubits_(num_qubits) {}

    uint32_t numQubits() const { return numQubits_; }
    void setNumQubits(uint32_t n) { numQubits_ = n; }

    const std::vector<Instruction> &instructions() const { return ops; }

    /** Number of measurement results the circuit produces. */
    uint32_t numMeasurements() const { return numMeasurements_; }

    /** Number of Detector instructions. */
    uint32_t numDetectors() const { return numDetectors_; }

    /** Number of distinct observable ids (max id + 1). */
    uint32_t numObservables() const { return numObservables_; }

    /** @name Builder methods
     * Append instructions; measurement indices are assigned in order.
     * @{
     */
    void appendReset(const std::vector<uint32_t> &qubits);
    void appendH(const std::vector<uint32_t> &qubits);
    void appendCx(const std::vector<uint32_t> &pairs);
    /** Returns the record index of the first measurement appended. */
    uint32_t appendMeasure(const std::vector<uint32_t> &qubits,
                           double flip_prob);
    void appendXError(const std::vector<uint32_t> &qubits, double p);
    void appendZError(const std::vector<uint32_t> &qubits, double p);
    void appendDepolarize1(const std::vector<uint32_t> &qubits, double p);
    void appendDepolarize2(const std::vector<uint32_t> &pairs, double p);
    void appendTick();
    void appendDetector(const std::vector<uint32_t> &record_indices);
    void appendObservable(uint32_t id,
                          const std::vector<uint32_t> &record_indices);
    /** @} */

    /**
     * Check structural invariants (qubit indices in range, record
     * indices refer to earlier measurements, pair lists even).
     * Panics with a description on violation.
     */
    void validate() const;

    /** Total instruction count. */
    size_t size() const { return ops.size(); }

  private:
    void append(Instruction inst);

    uint32_t numQubits_ = 0;
    uint32_t numMeasurements_ = 0;
    uint32_t numDetectors_ = 0;
    uint32_t numObservables_ = 0;
    std::vector<Instruction> ops;
};

/** Serialize to the line-oriented text format (see circuit_text.cpp). */
std::string circuitToText(const Circuit &circuit);

/** Parse the text format; fatal on malformed input. */
Circuit circuitFromText(const std::string &text);

} // namespace qec

#endif // QEC_CIRCUIT_CIRCUIT_HPP
