/**
 * @file
 * Tests for the cache-compact decode-core data layout:
 *
 *  - CSR adjacency (and the pair-edge half-edge CSR) match a
 *    reference adjacency reconstructed from the edge list, on
 *    random DEMs and on surface-code graphs;
 *  - the SoA hot fields (weight/obs/endpoints) are bit-copies of
 *    the GraphEdge AoS (weight narrowed to float);
 *  - DistanceView gathers are bit-copies of direct PathTable reads,
 *    and subsetMap resolves residual subsets without regathering;
 *  - PathTable symmetry invariants: dist(a,b) == dist(b,a) (up to
 *    float accumulation order), symmetric reachability, zero
 *    diagonal.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/distance_view.hpp"
#include "qec/graph/path_table.hpp"
#include "qec/harness/context.hpp"
#include "qec/util/rng.hpp"

namespace qec
{
namespace
{

/** Random connected-ish graphlike DEM with boundary edges. */
GraphlikeDem
randomDem(Rng &rng, uint32_t num_detectors)
{
    GraphlikeDem dem;
    dem.numDetectors = num_detectors;
    dem.numObservables = 2;
    const auto random_prob = [&] {
        return 0.005 + 0.4 * rng.nextDouble();
    };
    // A spine so most nodes are reachable, plus random chords and
    // boundary edges (occasionally duplicated, exercising the
    // parallel-edge merge).
    for (uint32_t v = 1; v < num_detectors; ++v) {
        dem.edges.push_back(
            {v - 1, v, rng.next64() & 3, random_prob()});
    }
    const uint32_t chords = num_detectors * 2;
    for (uint32_t c = 0; c < chords; ++c) {
        const uint32_t a = static_cast<uint32_t>(
            rng.next64() % num_detectors);
        const uint32_t b = static_cast<uint32_t>(
            rng.next64() % num_detectors);
        if (a == b) {
            continue;
        }
        dem.edges.push_back(
            {std::min(a, b), std::max(a, b), rng.next64() & 3,
             random_prob()});
    }
    for (uint32_t v = 0; v < num_detectors; v += 3) {
        dem.edges.push_back(
            {v, kBoundary, rng.next64() & 1, random_prob()});
    }
    return dem;
}

/** Reference adjacency built exactly like the historical
 *  vector-of-vectors: iterate edges in id order, append to both
 *  endpoint rows (boundary edges only to u). */
std::vector<std::vector<uint32_t>>
referenceAdjacency(const DecodingGraph &graph)
{
    std::vector<std::vector<uint32_t>> adjacency(
        graph.numDetectors());
    for (const GraphEdge &edge : graph.edges()) {
        adjacency[edge.u].push_back(edge.id);
        if (edge.v != kBoundary) {
            adjacency[edge.v].push_back(edge.id);
        }
    }
    return adjacency;
}

void
expectCsrMatchesReference(const DecodingGraph &graph)
{
    const auto reference = referenceAdjacency(graph);
    for (uint32_t det = 0; det < graph.numDetectors(); ++det) {
        const auto row = graph.adjacentEdges(det);
        ASSERT_EQ(row.size(), reference[det].size()) << det;
        for (size_t o = 0; o < row.size(); ++o) {
            EXPECT_EQ(row[o], reference[det][o])
                << det << "," << o;
        }
        // The pair CSR is the same row with boundary edges
        // filtered, preserving order, with matching neighbors.
        size_t p = 0;
        for (uint32_t eid : row) {
            const GraphEdge &edge = graph.edges()[eid];
            if (edge.v == kBoundary) {
                continue;
            }
            ASSERT_LT(p, graph.pairNeighbors(det).size());
            const PairHalfEdge half = graph.pairNeighbors(det)[p];
            EXPECT_EQ(half.edgeId, eid);
            EXPECT_EQ(half.neighbor,
                      edge.u == det ? edge.v : edge.u);
            ++p;
        }
        EXPECT_EQ(p, graph.pairNeighbors(det).size()) << det;
    }
}

TEST(DataLayout, CsrAdjacencyMatchesReferenceOnRandomDems)
{
    Rng rng(0xC5A);
    for (int round = 0; round < 8; ++round) {
        const uint32_t n = 8 + static_cast<uint32_t>(
                                   rng.next64() % 40);
        const DecodingGraph graph =
            DecodingGraph::fromDem(randomDem(rng, n));
        expectCsrMatchesReference(graph);
    }
}

TEST(DataLayout, CsrAdjacencyMatchesReferenceOnSurfaceGraph)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    expectCsrMatchesReference(ctx.graph());
}

TEST(DataLayout, SoaHotFieldsAreBitCopiesOfAos)
{
    Rng rng(0x50A);
    const DecodingGraph graph =
        DecodingGraph::fromDem(randomDem(rng, 32));
    for (const GraphEdge &edge : graph.edges()) {
        EXPECT_EQ(graph.edgeWeight(edge.id),
                  static_cast<float>(edge.weight));
        EXPECT_EQ(graph.edgeObsMask(edge.id), edge.obsMask);
        EXPECT_EQ(graph.edgeU(edge.id), edge.u);
        EXPECT_EQ(graph.edgeV(edge.id), edge.v);
    }
}

TEST(DataLayout, DistanceViewGatherIsBitExact)
{
    Rng rng(0xD15);
    const DecodingGraph graph =
        DecodingGraph::fromDem(randomDem(rng, 40));
    const PathTable paths(graph);

    DistanceView view;
    for (int round = 0; round < 6; ++round) {
        // Random sorted defect subset.
        std::vector<uint32_t> defects;
        for (uint32_t det = 0; det < graph.numDetectors();
             ++det) {
            if (rng.nextDouble() < 0.3) {
                defects.push_back(det);
            }
        }
        view.gather(paths, defects);
        ASSERT_EQ(view.size(),
                  static_cast<int>(defects.size()));
        for (size_t i = 0; i < defects.size(); ++i) {
            // Bit-copies: compare with == (inf == inf holds).
            EXPECT_EQ(view.distToBoundary(i),
                      paths.distToBoundary(defects[i]));
            EXPECT_EQ(view.boundaryObs(i),
                      paths.boundaryObs(defects[i]));
            EXPECT_EQ(view.boundaryHops(i),
                      paths.boundaryHops(defects[i]));
            for (size_t j = 0; j < defects.size(); ++j) {
                EXPECT_EQ(view.dist(i, j),
                          paths.dist(defects[i], defects[j]));
                EXPECT_EQ(view.obs(i, j),
                          paths.pathObs(defects[i], defects[j]));
                EXPECT_EQ(
                    view.hops(i, j),
                    paths.pathHops(defects[i], defects[j]));
            }
        }
    }
}

TEST(DataLayout, DistanceViewSubsetMapResolvesResiduals)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    const PathTable &paths = ctx.paths();
    std::vector<uint32_t> full = {1, 4, 7, 9, 13, 20, 31};
    DistanceView view;
    view.gather(paths, full);

    // Every subset resolves without regathering; mapped cells read
    // back the direct PathTable values.
    std::vector<int32_t> map;
    std::vector<uint32_t> residual = {4, 9, 31};
    ASSERT_TRUE(view.subsetMap(paths, residual, map));
    ASSERT_EQ(map.size(), residual.size());
    for (size_t i = 0; i < residual.size(); ++i) {
        EXPECT_EQ(view.det(map[i]), residual[i]);
        for (size_t j = 0; j < residual.size(); ++j) {
            EXPECT_EQ(view.dist(map[i], map[j]),
                      paths.dist(residual[i], residual[j]));
        }
    }

    // A detector outside the gathered set must force a regather.
    std::vector<uint32_t> foreign = {4, 9, 32};
    EXPECT_FALSE(view.subsetMap(paths, foreign, map));

    // Exact cover is the identity map.
    ASSERT_TRUE(view.subsetMap(paths, full, map));
    for (size_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(map[i], static_cast<int32_t>(i));
    }

    // covers() distinguishes exact matches from subsets.
    EXPECT_TRUE(view.covers(paths, full));
    EXPECT_FALSE(view.covers(paths, residual));
}

void
expectPathTableSymmetry(const DecodingGraph &graph)
{
    const PathTable paths(graph);
    const uint32_t n = paths.numDetectors();
    for (uint32_t a = 0; a < n; ++a) {
        // Zero diagonal.
        EXPECT_EQ(paths.dist(a, a), 0.0f);
        EXPECT_EQ(paths.pathHops(a, a), 0);
        EXPECT_EQ(paths.pathObs(a, a), 0ull);
        for (uint32_t b = a + 1; b < n; ++b) {
            // Reachability is exactly symmetric.
            ASSERT_EQ(paths.unreachable(a, b),
                      paths.unreachable(b, a))
                << a << "," << b;
            if (paths.unreachable(a, b)) {
                continue;
            }
            // Distances agree up to float accumulation order
            // (both directions sum the same edge weights).
            const float ab = paths.dist(a, b);
            const float ba = paths.dist(b, a);
            EXPECT_NEAR(ab, ba,
                        1e-5 * std::max(1.0f, std::abs(ab)))
                << a << "," << b;
        }
    }
}

TEST(DataLayout, PathTableSymmetryOnRandomDems)
{
    Rng rng(0x5E7);
    for (int round = 0; round < 4; ++round) {
        const uint32_t n = 8 + static_cast<uint32_t>(
                                   rng.next64() % 24);
        expectPathTableSymmetry(
            DecodingGraph::fromDem(randomDem(rng, n)));
    }
}

TEST(DataLayout, PathTableSymmetryOnSurfaceGraph)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    expectPathTableSymmetry(ctx.graph());
}

} // namespace
} // namespace qec
