/**
 * @file
 * Tests for the detector error model: enumeration, merging,
 * graphlike decomposition, and statistical agreement with the
 * Monte-Carlo simulator.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <map>

#include "qec/dem/decompose.hpp"
#include "qec/dem/dem.hpp"
#include "qec/sim/error_enumerator.hpp"
#include "qec/sim/frame_simulator.hpp"
#include "qec/surface/circuit_gen.hpp"
#include "qec/surface/layout.hpp"

namespace qec
{
namespace
{

TEST(Dem, XorProbability)
{
    EXPECT_DOUBLE_EQ(xorProbability(0.0, 0.3), 0.3);
    EXPECT_DOUBLE_EQ(xorProbability(0.5, 0.5), 0.5);
    EXPECT_NEAR(xorProbability(0.1, 0.2), 0.1 * 0.8 + 0.2 * 0.9,
                1e-12);
}

TEST(Dem, MergesIdenticalMechanisms)
{
    DetectorErrorModel dem(4, 1);
    dem.addMechanism({1, 2}, 0, 0.1);
    dem.addMechanism({2, 1}, 0, 0.1); // Same set, unsorted.
    ASSERT_EQ(dem.mechanisms().size(), 1u);
    EXPECT_NEAR(dem.mechanisms()[0].prob, xorProbability(0.1, 0.1),
                1e-12);
}

TEST(Dem, KeepsDistinctObsMasksSeparate)
{
    DetectorErrorModel dem(4, 1);
    dem.addMechanism({1}, 0, 0.1);
    dem.addMechanism({1}, 1, 0.1);
    EXPECT_EQ(dem.mechanisms().size(), 2u);
}

TEST(Dem, CancelsRepeatedDetectors)
{
    DetectorErrorModel dem(4, 1);
    dem.addMechanism({1, 1, 2}, 0, 0.1);
    ASSERT_EQ(dem.mechanisms().size(), 1u);
    EXPECT_EQ(dem.mechanisms()[0].dets,
              (std::vector<uint32_t>{2}));
}

TEST(Dem, DropsInvisibleMechanisms)
{
    DetectorErrorModel dem(4, 1);
    dem.addMechanism({}, 0, 0.1);
    dem.addMechanism({3, 3}, 0, 0.1);
    EXPECT_TRUE(dem.mechanisms().empty());
}

TEST(Decompose, PassesThroughGraphlikeMechanisms)
{
    DetectorErrorModel dem(6, 1);
    dem.addMechanism({0}, 1, 0.01);
    dem.addMechanism({1, 2}, 0, 0.02);
    const GraphlikeDem graphlike = decomposeToGraphlike(dem);
    EXPECT_EQ(graphlike.edges.size(), 2u);
    EXPECT_EQ(graphlike.stats.compositeMechanisms, 0u);
}

TEST(Decompose, SplitsCompositeIntoAtomicBlocks)
{
    DetectorErrorModel dem(6, 1);
    dem.addMechanism({0, 1}, 0, 0.01);
    dem.addMechanism({2, 3}, 1, 0.01);
    // Composite = union of the two atomics, obs consistent.
    dem.addMechanism({0, 1, 2, 3}, 1, 0.005);
    const GraphlikeDem graphlike = decomposeToGraphlike(dem);
    EXPECT_EQ(graphlike.stats.compositeMechanisms, 1u);
    EXPECT_EQ(graphlike.stats.obsRelaxed, 0u);
    EXPECT_EQ(graphlike.stats.forcedPairings, 0u);
    // Probability routed onto both blocks.
    std::map<std::pair<uint32_t, uint32_t>, double> probs;
    for (const DemEdge &edge : graphlike.edges) {
        probs[{edge.u, edge.v}] += edge.prob;
    }
    EXPECT_NEAR((probs[{0, 1}]), xorProbability(0.01, 0.005), 1e-12);
    EXPECT_NEAR((probs[{2, 3}]), xorProbability(0.01, 0.005), 1e-12);
}

TEST(Decompose, UsesBoundaryBlocksForOddComposites)
{
    DetectorErrorModel dem(6, 1);
    dem.addMechanism({0, 1}, 0, 0.01);
    dem.addMechanism({2}, 0, 0.01); // Boundary atomic.
    dem.addMechanism({0, 1, 2}, 0, 0.005);
    const GraphlikeDem graphlike = decomposeToGraphlike(dem);
    EXPECT_EQ(graphlike.stats.compositeMechanisms, 1u);
    EXPECT_EQ(graphlike.stats.forcedPairings, 0u);
}

class SurfaceDemTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SurfaceDemTest, SurfaceCodeDemIsCleanlyGraphlike)
{
    const int d = GetParam();
    SurfaceCodeLayout layout(d);
    const MemoryExperiment exp =
        generateMemoryZ(layout, d, NoiseParams::uniform(1e-3));
    const DetectorErrorModel dem =
        buildDetectorErrorModel(exp.circuit);
    // At least timelike + boundary edges worth of distinct symptoms.
    EXPECT_GT(dem.mechanisms().size(),
              static_cast<size_t>(dem.numDetectors()));

    const GraphlikeDem graphlike = decomposeToGraphlike(dem);
    // The standard CX schedule makes every single fault graphlike
    // (mid-round cancellations): no composite mechanisms at all.
    // This is the property that makes the code matchable.
    EXPECT_EQ(graphlike.stats.compositeMechanisms, 0u);
    EXPECT_EQ(graphlike.stats.obsRelaxed, 0u);
    EXPECT_EQ(graphlike.stats.forcedPairings, 0u);
    for (const DemEdge &edge : graphlike.edges) {
        EXPECT_LT(edge.u, dem.numDetectors());
        EXPECT_TRUE(edge.v == kBoundary ||
                    edge.v < dem.numDetectors());
        EXPECT_GT(edge.prob, 0.0);
        EXPECT_LT(edge.prob, 0.5);
    }
}

INSTANTIATE_TEST_SUITE_P(SmallDistances, SurfaceDemTest,
                         ::testing::Values(3, 5));

TEST(SurfaceDem, PredictsSimulatorDetectorRates)
{
    // Marginal per-detector flip rate from the DEM (xor-combination
    // of incident mechanism probabilities) must match Monte Carlo.
    SurfaceCodeLayout layout(3);
    const double p = 0.01;
    const MemoryExperiment exp =
        generateMemoryZ(layout, 3, NoiseParams::uniform(p));
    const DetectorErrorModel dem =
        buildDetectorErrorModel(exp.circuit);

    std::vector<double> predicted(exp.circuit.numDetectors(), 0.0);
    for (const DemMechanism &m : dem.mechanisms()) {
        for (uint32_t det : m.dets) {
            predicted[det] = xorProbability(predicted[det], m.prob);
        }
    }

    FrameSimulator sim(exp.circuit);
    Rng rng(2024);
    BatchResult out;
    const int batches = 3000;
    std::vector<uint64_t> fires(exp.circuit.numDetectors(), 0);
    for (int b = 0; b < batches; ++b) {
        sim.sampleBatch(rng, out);
        for (size_t det = 0; det < out.detectors.size(); ++det) {
            fires[det] += std::popcount(out.detectors[det]);
        }
    }
    const double shots = 64.0 * batches;
    for (size_t det = 0; det < fires.size(); ++det) {
        const double observed = fires[det] / shots;
        const double sigma = std::sqrt(
            std::max(predicted[det], 1e-9) / shots);
        EXPECT_NEAR(observed, predicted[det],
                    5 * sigma + 0.2 * predicted[det])
            << "detector " << det;
    }
}

TEST(SurfaceDem, PredictsObservableFlipRate)
{
    // The total observable-flip probability (uncorrected) from the
    // DEM must match the simulator within statistics.
    SurfaceCodeLayout layout(3);
    const double p = 0.02;
    const MemoryExperiment exp =
        generateMemoryZ(layout, 3, NoiseParams::uniform(p));
    const DetectorErrorModel dem =
        buildDetectorErrorModel(exp.circuit);

    double predicted = 0.0;
    for (const DemMechanism &m : dem.mechanisms()) {
        if (m.obsMask & 1) {
            predicted = xorProbability(predicted, m.prob);
        }
    }

    FrameSimulator sim(exp.circuit);
    Rng rng(555);
    const uint64_t shots = 400000;
    const uint64_t flips = sim.countObservableFlips(rng, shots);
    const double observed =
        static_cast<double>(flips) / static_cast<double>(shots);
    const double sigma = std::sqrt(predicted / shots);
    EXPECT_NEAR(observed, predicted, 6 * sigma + 0.05 * predicted);
}

} // namespace
} // namespace qec
