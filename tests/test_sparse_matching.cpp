/**
 * @file
 * Equivalence suite for the sparse local-growth matching core
 * (src/qec/matching/sparse_matcher.hpp):
 *
 *  - randomized fuzz against the dense blossom solver — identical
 *    validity and total weight (up to quantization) on surface-code
 *    syndromes at d in {5, 7, 11, 13}, importance-sampled defect
 *    counts from 0 up through the kMax tail, and random DEMs
 *    including infeasible defect subsets;
 *  - backend bit-identity: the dense-table-backed and the
 *    DeferPairs/Dijkstra-backed builds of SparseMatchingProblem
 *    must produce the identical candidate sets, solutions, and
 *    predicted observables;
 *  - the deferred DistanceView gather (the path Promatch Step 3
 *    takes at d = 21) is a bit-copy of the dense table;
 *  - LER parity between the `sparse` and `mwpm` decoders;
 *  - decodeBlock lane equivalence with the sparse matcher active on
 *    a DeferPairs table (the registry-wide block fuzz covers the
 *    dense-table case).
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "qec/api/decoder_spec.hpp"
#include "qec/api/registry.hpp"
#include "qec/decoders/factory.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/distance_view.hpp"
#include "qec/graph/path_table.hpp"
#include "qec/harness/context.hpp"
#include "qec/harness/importance_sampler.hpp"
#include "qec/harness/ler_estimator.hpp"
#include "qec/matching/blossom.hpp"
#include "qec/matching/defect_graph.hpp"
#include "qec/matching/sparse_matcher.hpp"
#include "qec/util/rng.hpp"

namespace qec
{
namespace
{

/** Random connected-ish graphlike DEM with boundary edges (the
 *  test_data_layout idiom). */
GraphlikeDem
randomDem(Rng &rng, uint32_t num_detectors)
{
    GraphlikeDem dem;
    dem.numDetectors = num_detectors;
    dem.numObservables = 2;
    const auto random_prob = [&] {
        return 0.005 + 0.4 * rng.nextDouble();
    };
    for (uint32_t v = 1; v < num_detectors; ++v) {
        dem.edges.push_back(
            {v - 1, v, rng.next64() & 3, random_prob()});
    }
    const uint32_t chords = num_detectors * 2;
    for (uint32_t c = 0; c < chords; ++c) {
        const uint32_t a = static_cast<uint32_t>(
            rng.next64() % num_detectors);
        const uint32_t b = static_cast<uint32_t>(
            rng.next64() % num_detectors);
        if (a == b) {
            continue;
        }
        dem.edges.push_back(
            {std::min(a, b), std::max(a, b), rng.next64() & 3,
             random_prob()});
    }
    for (uint32_t v = 0; v < num_detectors; v += 3) {
        dem.edges.push_back(
            {v, kBoundary, rng.next64() & 1, random_prob()});
    }
    return dem;
}

/** Valid graphlike syndrome: flip random edges, accumulate endpoint
 *  parity (always matchable). */
std::vector<uint32_t>
randomSyndrome(const DecodingGraph &graph, Rng &rng, double rate)
{
    std::vector<uint8_t> flipped(graph.numDetectors(), 0);
    for (const GraphEdge &edge : graph.edges()) {
        if (rng.nextDouble() >= rate) {
            continue;
        }
        flipped[edge.u] ^= 1;
        if (edge.v != kBoundary) {
            flipped[edge.v] ^= 1;
        }
    }
    std::vector<uint32_t> defects;
    for (uint32_t det = 0; det < graph.numDetectors(); ++det) {
        if (flipped[det]) {
            defects.push_back(det);
        }
    }
    return defects;
}

/**
 * Core fuzz check: the sparse matcher must agree with dense blossom
 * on validity and total weight. The mate arrays may legitimately
 * differ between equal-weight optima (and the two solvers quantize
 * differently — globally vs per component — so weights agree up to
 * quantization, not bit-exactly); when the solvers picked the same
 * matching, the predicted observables must be bit-identical.
 */
void
expectSparseMatchesDense(const PathTable &paths,
                         std::span<const uint32_t> defects,
                         const std::string &label)
{
    const DefectGraph dg = buildDefectGraph(defects, paths);
    BlossomSolver blossom;
    MatchingSolution dense;
    blossom.solve(dg.problem, dense);

    SparseMatchingProblem sp;
    sp.build(paths, defects);
    SparseMatcher matcher;
    MatchingSolution sparse;
    matcher.solve(sp, sparse);

    ASSERT_EQ(dense.valid, sparse.valid) << label;
    if (!dense.valid) {
        return;
    }
    const double tol =
        2e-3 * std::max(1.0, std::abs(dense.totalWeight));
    EXPECT_NEAR(dense.totalWeight, sparse.totalWeight, tol)
        << label;
    // Internal consistency of the sparse mates.
    for (int i = 0; i < sp.size(); ++i) {
        const int m = sparse.mate[i];
        ASSERT_TRUE(m == -1 || (m >= 0 && m < sp.size())) << label;
        if (m >= 0) {
            EXPECT_EQ(sparse.mate[m], i) << label;
        }
    }
    if (dense.mate == sparse.mate) {
        EXPECT_EQ(dg.solutionObs(paths, dense),
                  sp.solutionObs(sparse))
            << label;
    }
}

TEST(SparseMatch, MatchesBlossomOnSurfaceSyndromes)
{
    for (int d : {5, 7, 11, 13}) {
        const auto &ctx = ExperimentContext::get(d, 1e-3);
        Rng rng(0x5a11 + static_cast<uint64_t>(d));
        const int trials = d <= 7 ? 30 : 8;
        for (double rate : {0.002, 0.005, 0.01, 0.03}) {
            for (int t = 0; t < trials; ++t) {
                const std::vector<uint32_t> defects =
                    randomSyndrome(ctx.graph(), rng, rate);
                expectSparseMatchesDense(
                    ctx.paths(), defects,
                    "d=" + std::to_string(d) + " rate=" +
                        std::to_string(rate) + " trial " +
                        std::to_string(t));
            }
        }
    }
}

TEST(SparseMatch, MatchesBlossomAcrossDefectCounts)
{
    // Defect counts 0..S via the importance sampler's k sweep (S =
    // 2k before deduplication; the sampler requires k >= 1, and the
    // zero-defect end of the axis is pinned explicitly here and in
    // EmptyAndSingletonSyndromes).
    const auto &ctx = ExperimentContext::get(7, 1e-3);
    expectSparseMatchesDense(ctx.paths(), {}, "k=0 empty");
    ImportanceSampler sampler(ctx.dem(), 16);
    for (int k = 1; k <= 16; ++k) {
        for (int i = 0; i < 12; ++i) {
            Rng rng = Rng::forSample(0x5a2e, k, i);
            const auto sample = sampler.sample(k, rng);
            expectSparseMatchesDense(
                ctx.paths(), sample.defects,
                "k=" + std::to_string(k) + " sample " +
                    std::to_string(i));
        }
    }
}

TEST(SparseMatch, MatchesBlossomOnRandomDems)
{
    Rng dem_rng(0x5a3d);
    for (int round = 0; round < 3; ++round) {
        const DecodingGraph graph =
            DecodingGraph::fromDem(randomDem(dem_rng, 40));
        const PathTable paths(graph);
        Rng rng(0x5a4e + static_cast<uint64_t>(round));
        for (double rate : {0.01, 0.05, 0.15, 0.4}) {
            for (int t = 0; t < 20; ++t) {
                const std::vector<uint32_t> defects =
                    randomSyndrome(graph, rng, rate);
                expectSparseMatchesDense(
                    paths, defects,
                    "dem" + std::to_string(round) + " rate=" +
                        std::to_string(rate) + " trial " +
                        std::to_string(t));
            }
        }
        // Arbitrary detector subsets: not necessarily matchable, so
        // this also fuzzes the valid=false agreement.
        for (int t = 0; t < 40; ++t) {
            std::vector<uint32_t> defects;
            for (uint32_t det = 0; det < graph.numDetectors();
                 ++det) {
                if (rng.nextDouble() < 0.15) {
                    defects.push_back(det);
                }
            }
            expectSparseMatchesDense(paths, defects,
                                     "dem" + std::to_string(round) +
                                         " subset trial " +
                                         std::to_string(t));
        }
    }
}

TEST(SparseMatch, DeferredBackendBitIdenticalToTableBackend)
{
    // The Dijkstra-backed build (DeferPairs table) must reproduce
    // the dense-table-backed build exactly: same candidate sets
    // (cells bit-identical), hence the same solutions bit-for-bit.
    for (int d : {5, 7, 11}) {
        const auto &ctx = ExperimentContext::get(d, 1e-3);
        const PathTable deferred(ctx.graph(),
                                 PathTable::DeferPairs{});
        ASSERT_FALSE(deferred.pairsAvailable());
        ASSERT_TRUE(ctx.paths().pairsAvailable());
        Rng rng(0x5a5f + static_cast<uint64_t>(d));
        SparseMatchingProblem viaTable;
        SparseMatchingProblem viaDijkstra;
        SparseMatcher matcher;
        MatchingSolution solTable;
        MatchingSolution solDijkstra;
        for (double rate : {0.002, 0.01, 0.03}) {
            for (int t = 0; t < 12; ++t) {
                const std::vector<uint32_t> defects =
                    randomSyndrome(ctx.graph(), rng, rate);
                const std::string label =
                    "d=" + std::to_string(d) + " rate=" +
                    std::to_string(rate) + " trial " +
                    std::to_string(t);
                viaTable.build(ctx.paths(), defects);
                viaDijkstra.build(deferred, defects);
                ASSERT_EQ(viaTable.size(), viaDijkstra.size())
                    << label;
                for (int i = 0; i < viaTable.size(); ++i) {
                    const auto a = viaTable.candidates(i);
                    const auto b = viaDijkstra.candidates(i);
                    ASSERT_EQ(a.size(), b.size())
                        << label << " defect " << i;
                    for (size_t c = 0; c < a.size(); ++c) {
                        EXPECT_EQ(a[c].j, b[c].j) << label;
                        EXPECT_EQ(a[c].cell.dist, b[c].cell.dist)
                            << label; // bit-identical floats
                        EXPECT_EQ(a[c].cell.obs, b[c].cell.obs)
                            << label;
                        EXPECT_EQ(a[c].cell.hops, b[c].cell.hops)
                            << label;
                    }
                }
                matcher.solve(viaTable, solTable);
                matcher.solve(viaDijkstra, solDijkstra);
                EXPECT_EQ(solTable.valid, solDijkstra.valid)
                    << label;
                EXPECT_EQ(solTable.mate, solDijkstra.mate) << label;
                EXPECT_EQ(solTable.totalWeight,
                          solDijkstra.totalWeight)
                    << label; // exact ==: same cells, same order
                if (solTable.valid) {
                    EXPECT_EQ(viaTable.solutionObs(solTable),
                              viaDijkstra.solutionObs(solDijkstra))
                        << label;
                }
            }
        }
    }
}

TEST(SparseMatch, DeferredViewGatherIsBitIdenticalToDense)
{
    // Promatch Step 3 reads the workspace DistanceView; on a
    // DeferPairs table the gather computes cells with the oracle.
    // Every cell must be a bit-copy of the dense table's.
    const auto &ctx = ExperimentContext::get(7, 1e-3);
    const PathTable deferred(ctx.graph(), PathTable::DeferPairs{});
    Rng rng(0x5a6f);
    DistanceView view;
    for (int t = 0; t < 10; ++t) {
        const std::vector<uint32_t> defects =
            randomSyndrome(ctx.graph(), rng, 0.01);
        if (defects.empty()) {
            continue;
        }
        view.gather(deferred, defects);
        const int s = view.size();
        ASSERT_EQ(s, static_cast<int>(defects.size()));
        for (int a = 0; a < s; ++a) {
            EXPECT_EQ(view.distToBoundary(a),
                      ctx.paths().distToBoundary(defects[a]));
            EXPECT_EQ(view.boundaryObs(a),
                      ctx.paths().boundaryObs(defects[a]));
            for (int b = 0; b < s; ++b) {
                EXPECT_EQ(view.dist(a, b),
                          ctx.paths().dist(defects[a], defects[b]))
                    << "pair " << a << "," << b;
                EXPECT_EQ(view.obs(a, b),
                          ctx.paths().pathObs(defects[a],
                                              defects[b]));
                EXPECT_EQ(view.hops(a, b),
                          ctx.paths().pathHops(defects[a],
                                               defects[b]));
            }
        }
    }
}

TEST(SparseMatch, LerMatchesDenseMwpm)
{
    // Both are exact matchers, so per-sample weights agree (up to
    // quantization) and the LER estimates track each other; they
    // need not be bit-equal because equal-weight optima may predict
    // different observables.
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    auto dense = makeDecoder("mwpm", ctx.graph(), ctx.paths());
    auto sparse = makeDecoder("sparse", ctx.graph(), ctx.paths());
    ImportanceSampler sampler(ctx.dem(), 10);
    DecodeWorkspace denseWs;
    DecodeWorkspace sparseWs;
    for (int k = 1; k <= 8; ++k) {
        for (int i = 0; i < 40; ++i) {
            Rng rng = Rng::forSample(0x5a7e, k, i);
            const auto sample = sampler.sample(k, rng);
            const DecodeResult a =
                dense->decode(sample.defects, denseWs);
            const DecodeResult b =
                sparse->decode(sample.defects, sparseWs);
            ASSERT_EQ(a.aborted, b.aborted);
            EXPECT_NEAR(a.weight, b.weight,
                        2e-3 * std::max(1.0, a.weight))
                << "k=" << k << " sample " << i;
        }
    }

    LerOptions options;
    options.kMax = 10;
    options.samplesPerK = 300;
    options.skipBelowK = 2;
    const LerEstimate lerDense = estimateLer(ctx, *dense, options);
    const LerEstimate lerSparse =
        estimateLer(ctx, *sparse, options);
    ASSERT_GT(lerDense.ler, 0.0);
    ASSERT_GT(lerSparse.ler, 0.0);
    const double ratio = lerSparse.ler / lerDense.ler;
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.0 / 0.7);
}

TEST(SparseMatch, DecodeBlockLaneEquivalenceOnDeferredTable)
{
    // The registry-wide block fuzz covers sparse stacks on dense
    // tables; this pins the DeferPairs configuration (the actual
    // d = 21 setup) for both the bare matcher and a promatch stack.
    const auto &ctx = ExperimentContext::get(7, 1e-3);
    const PathTable deferred(ctx.graph(), PathTable::DeferPairs{});
    for (const char *spec : {"sparse", "promatch+sparse"}) {
        auto decoder = build(DecoderSpec::parse(spec), ctx.graph(),
                             deferred);
        auto reference = decoder->clone();
        DecodeWorkspace blockWs;
        DecodeWorkspace serialWs;
        std::array<DecodeResult, 64> results;
        Rng rng(0x5a8f);
        for (int lanes : {1, 7, 64}) {
            std::vector<uint64_t> words(ctx.graph().numDetectors(),
                                        0);
            const double rates[] = {0.0,  0.004, 0.01, 0.02,
                                    0.04, 0.08,  0.15, 0.3};
            for (int lane = 0; lane < 64; ++lane) {
                const double rate = rates[lane % 8];
                const uint64_t bit = uint64_t{1} << lane;
                for (const GraphEdge &edge : ctx.graph().edges()) {
                    if (rng.nextDouble() >= rate) {
                        continue;
                    }
                    words[edge.u] ^= bit;
                    if (edge.v != kBoundary) {
                        words[edge.v] ^= bit;
                    }
                }
            }
            decoder->decodeBlock(words, lanes, blockWs,
                                 results.data());
            for (int lane = 0; lane < lanes; ++lane) {
                std::vector<uint32_t> defects;
                for (size_t det = 0; det < words.size(); ++det) {
                    if ((words[det] >> lane) & 1) {
                        defects.push_back(
                            static_cast<uint32_t>(det));
                    }
                }
                const DecodeResult serial =
                    reference->decode(defects, serialWs);
                const std::string label =
                    std::string(spec) + " lanes=" +
                    std::to_string(lanes) + " lane=" +
                    std::to_string(lane);
                EXPECT_EQ(results[lane].predictedObs,
                          serial.predictedObs)
                    << label;
                EXPECT_EQ(results[lane].weight, serial.weight)
                    << label;
                EXPECT_EQ(results[lane].latencyNs,
                          serial.latencyNs)
                    << label;
                EXPECT_EQ(results[lane].aborted, serial.aborted)
                    << label;
            }
        }
    }
}

TEST(SparseMatch, EmptyAndSingletonSyndromes)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    SparseMatchingProblem sp;
    SparseMatcher matcher;
    MatchingSolution sol;
    sp.build(ctx.paths(), {});
    matcher.solve(sp, sol);
    EXPECT_TRUE(sol.valid);
    EXPECT_EQ(sol.totalWeight, 0.0);
    EXPECT_TRUE(sol.mate.empty());

    // Any single surface-code defect has a boundary path.
    const std::vector<uint32_t> one = {0};
    sp.build(ctx.paths(), one);
    matcher.solve(sp, sol);
    ASSERT_TRUE(sol.valid);
    EXPECT_EQ(sol.mate, std::vector<int>{-1});
    EXPECT_EQ(sol.totalWeight,
              static_cast<double>(ctx.paths().distToBoundary(0)));
}

} // namespace
} // namespace qec
