/**
 * @file
 * Decoder unit tests: correctness on injected faults, Astrea/MWPM
 * agreement, abort contracts, union-find validity, and parallel
 * arbitration.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "qec/decoders/astrea.hpp"
#include "qec/decoders/astrea_g.hpp"
#include "qec/decoders/factory.hpp"
#include "qec/decoders/mwpm_decoder.hpp"
#include "qec/decoders/union_find.hpp"
#include "qec/harness/context.hpp"
#include "qec/harness/importance_sampler.hpp"

namespace qec
{
namespace
{

std::vector<uint32_t>
defectsOf(const DemMechanism &m)
{
    return m.dets;
}

TEST(Decoders, EmptySyndromeIsNoOpEverywhere)
{
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    for (const std::string &name : decoderNames()) {
        auto decoder = makeDecoder(name, ctx.graph(), ctx.paths());
        const DecodeResult result = decoder->decode({});
        EXPECT_FALSE(result.aborted) << name;
        EXPECT_EQ(result.predictedObs, 0ull) << name;
    }
}

class SingleFaultTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SingleFaultTest, EverySingleFaultIsDecodedCorrectly)
{
    // A single DEM mechanism is always within the code's correction
    // radius; every decoder must get every one of them right.
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    auto decoder =
        makeDecoder(GetParam(), ctx.graph(), ctx.paths());
    for (const DemMechanism &m : ctx.dem().mechanisms()) {
        const DecodeResult result = decoder->decode(defectsOf(m));
        ASSERT_FALSE(result.aborted)
            << GetParam() << " aborted on single fault";
        ASSERT_EQ(result.predictedObs, m.obsMask)
            << GetParam() << " misdecoded mechanism with "
            << m.dets.size() << " detectors";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDecoders, SingleFaultTest,
    ::testing::Values("mwpm", "astrea", "astrea_g", "union_find",
                      "promatch_astrea", "promatch_par_ag",
                      "smith_astrea", "smith_par_ag"));

TEST(Decoders, MwpmCorrectsTwoArbitraryFaultsAtD5)
{
    // floor((5-1)/2) = 2: any two faults must be correctable by the
    // exact decoder — this doubles as a circuit-distance check.
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    MwpmDecoder decoder(ctx.graph(), ctx.paths());
    const auto &mechanisms = ctx.dem().mechanisms();
    Rng rng(99);
    for (int trial = 0; trial < 1500; ++trial) {
        const uint32_t a = static_cast<uint32_t>(
            rng.nextBelow(mechanisms.size()));
        const uint32_t b = static_cast<uint32_t>(
            rng.nextBelow(mechanisms.size()));
        std::map<uint32_t, int> counts;
        for (uint32_t det : mechanisms[a].dets) {
            ++counts[det];
        }
        for (uint32_t det : mechanisms[b].dets) {
            ++counts[det];
        }
        std::vector<uint32_t> defects;
        for (const auto &[det, c] : counts) {
            if (c % 2) {
                defects.push_back(det);
            }
        }
        const uint64_t obs =
            mechanisms[a].obsMask ^ mechanisms[b].obsMask;
        const DecodeResult result = decoder.decode(defects);
        ASSERT_FALSE(result.aborted);
        ASSERT_EQ(result.predictedObs, obs)
            << "trial " << trial << " mechanisms " << a << ","
            << b;
    }
}

TEST(Decoders, AstreaEqualsMwpmOnLowHwSyndromes)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    AstreaDecoder astrea(ctx.graph(), ctx.paths());
    MwpmDecoder mwpm(ctx.graph(), ctx.paths());
    ImportanceSampler sampler(ctx.dem(), 4);
    Rng rng(4242);
    int compared = 0;
    for (int k = 1; k <= 4; ++k) {
        for (int s = 0; s < 200; ++s) {
            const auto sample = sampler.sample(k, rng);
            if (sample.defects.size() > 10) {
                continue;
            }
            const DecodeResult a = astrea.decode(sample.defects);
            const DecodeResult b = mwpm.decode(sample.defects);
            ASSERT_FALSE(a.aborted);
            // Exact engines must agree on the matching weight; obs
            // can only differ between equal-weight optima.
            ASSERT_NEAR(a.weight, b.weight, 1e-6);
            ++compared;
        }
    }
    EXPECT_GT(compared, 500);
}

TEST(Decoders, AstreaAbortsAboveMaxHw)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    AstreaDecoder astrea(ctx.graph(), ctx.paths());
    std::vector<uint32_t> defects;
    for (uint32_t det = 0; det < 11; ++det) {
        defects.push_back(det);
    }
    const DecodeResult result = astrea.decode(defects);
    EXPECT_TRUE(result.aborted);
}

TEST(Decoders, AstreaLatencyGrowsWithHw)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    AstreaDecoder astrea(ctx.graph(), ctx.paths());
    ImportanceSampler sampler(ctx.dem(), 5);
    Rng rng(7);
    double low_hw_lat = -1, high_hw_lat = -1;
    for (int s = 0; s < 300; ++s) {
        const auto sample = sampler.sample(1, rng);
        if (sample.defects.size() <= 2) {
            low_hw_lat = astrea.decode(sample.defects).latencyNs;
            break;
        }
    }
    for (int s = 0; s < 300; ++s) {
        const auto sample = sampler.sample(5, rng);
        if (sample.defects.size() >= 8 &&
            sample.defects.size() <= 10) {
            high_hw_lat = astrea.decode(sample.defects).latencyNs;
            break;
        }
    }
    ASSERT_GE(low_hw_lat, 0.0);
    ASSERT_GE(high_hw_lat, 0.0);
    EXPECT_GT(high_hw_lat, low_hw_lat);
}

TEST(Decoders, UnionFindCorrectionReproducesSyndrome)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    UnionFindDecoder uf(ctx.graph(), ctx.paths());
    ImportanceSampler sampler(ctx.dem(), 6);
    Rng rng(31);
    for (int k = 1; k <= 6; ++k) {
        for (int s = 0; s < 100; ++s) {
            const auto sample = sampler.sample(k, rng);
            DecodeTrace trace;
            const DecodeResult result =
                uf.decode(sample.defects, &trace);
            ASSERT_FALSE(result.aborted);
            // XOR of correction-edge endpoints == syndrome.
            std::set<uint32_t> flipped;
            for (uint32_t eid : trace.correctionEdges) {
                const GraphEdge &edge = ctx.graph().edges()[eid];
                for (uint32_t v : {edge.u, edge.v}) {
                    if (v == kBoundary) {
                        continue;
                    }
                    if (!flipped.insert(v).second) {
                        flipped.erase(v);
                    }
                }
            }
            const std::set<uint32_t> expected(
                sample.defects.begin(), sample.defects.end());
            ASSERT_EQ(flipped, expected)
                << "k=" << k << " sample " << s;
        }
    }
}

TEST(Decoders, AstreaGPrunesAndStaysWithinBudget)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    LatencyConfig cfg;
    AstreaGDecoder ag(ctx.graph(), ctx.paths(), cfg);
    ImportanceSampler sampler(ctx.dem(), 8);
    Rng rng(11);
    for (int s = 0; s < 200; ++s) {
        const auto sample = sampler.sample(6, rng);
        DecodeTrace trace;
        const DecodeResult result =
            ag.decode(sample.defects, &trace);
        ASSERT_FALSE(result.aborted);
        EXPECT_LE(trace.searchStates, cfg.astreaGSearchBudget + 1);
        EXPECT_LE(result.latencyNs, cfg.budgetNs + 1e-9);
    }
}

TEST(Decoders, ParallelPicksLowerWeightSide)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    auto parallel = makeDecoder("promatch_par_ag", ctx.graph(),
                                ctx.paths());
    MwpmDecoder mwpm(ctx.graph(), ctx.paths());
    ImportanceSampler sampler(ctx.dem(), 4);
    Rng rng(5);
    for (int s = 0; s < 200; ++s) {
        const auto sample = sampler.sample(3, rng);
        const DecodeResult par = parallel->decode(sample.defects);
        const DecodeResult ideal = mwpm.decode(sample.defects);
        ASSERT_FALSE(par.aborted);
        // The arbitrated weight can never beat the exact optimum.
        EXPECT_GE(par.weight + 1e-6, ideal.weight);
    }
}

TEST(Decoders, FactoryRejectsUnknownName)
{
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    EXPECT_DEATH(
        makeDecoder("no_such_decoder", ctx.graph(), ctx.paths()),
        "unknown decoder");
}

TEST(Decoders, NamesAreWellFormed)
{
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    for (const std::string &name : decoderNames()) {
        auto decoder = makeDecoder(name, ctx.graph(), ctx.paths());
        EXPECT_FALSE(decoder->name().empty());
    }
}

} // namespace
} // namespace qec
