/**
 * @file
 * Edge-case and failure-path tests: decomposition fallbacks, text
 * parser rejection, abort propagation in composed decoders, and
 * boundary-heavy union-find cases.
 */

#include <gtest/gtest.h>

#include "qec/circuit/circuit.hpp"
#include "qec/decoders/astrea.hpp"
#include "qec/decoders/factory.hpp"
#include "qec/decoders/parallel.hpp"
#include "qec/decoders/union_find.hpp"
#include "qec/dem/decompose.hpp"
#include "qec/harness/context.hpp"

namespace qec
{
namespace
{

TEST(DecomposeEdge, ForcedPairingWhenNoAtomicSplitExists)
{
    DetectorErrorModel dem(8, 1);
    // A 4-detector composite with *no* graphlike mechanisms to
    // decompose into: the decomposition must fall back to forced
    // consecutive pairing and say so.
    dem.addMechanism({0, 1, 2, 3}, 1, 0.01);
    const GraphlikeDem graphlike = decomposeToGraphlike(dem);
    EXPECT_EQ(graphlike.stats.compositeMechanisms, 1u);
    EXPECT_EQ(graphlike.stats.forcedPairings, 1u);
    EXPECT_EQ(graphlike.edges.size(), 2u);
}

TEST(DecomposeEdge, ObsRelaxedWhenMasksCannotMatch)
{
    DetectorErrorModel dem(8, 1);
    dem.addMechanism({0, 1}, 0, 0.01);
    dem.addMechanism({2, 3}, 0, 0.01);
    // Composite whose obs mask (1) cannot be assembled from the
    // obs-0 atomics: accepted with the obsRelaxed counter bumped.
    dem.addMechanism({0, 1, 2, 3}, 1, 0.005);
    const GraphlikeDem graphlike = decomposeToGraphlike(dem);
    EXPECT_EQ(graphlike.stats.obsRelaxed, 1u);
    EXPECT_EQ(graphlike.stats.forcedPairings, 0u);
}

TEST(CircuitTextEdge, RejectsUnknownInstruction)
{
    EXPECT_EXIT(circuitFromText("QUBITS 2\nFROB 0 1\n"),
                ::testing::ExitedWithCode(1), "unknown instruction");
}

TEST(CircuitTextEdge, RejectsMissingQubitsHeader)
{
    EXPECT_EXIT(circuitFromText("H 0\n"),
                ::testing::ExitedWithCode(1), "QUBITS");
}

TEST(ParallelEdge, BothSidesAbortingAborts)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    LatencyConfig latency;
    // Two Astreas: both abort on HW > 10.
    ParallelDecoder parallel(
        ctx.graph(), ctx.paths(),
        std::make_unique<AstreaDecoder>(ctx.graph(), ctx.paths(),
                                        latency),
        std::make_unique<AstreaDecoder>(ctx.graph(), ctx.paths(),
                                        latency),
        latency);
    std::vector<uint32_t> defects;
    for (uint32_t det = 0; det < 12; ++det) {
        defects.push_back(det);
    }
    const DecodeResult result = parallel.decode(defects);
    EXPECT_TRUE(result.aborted);
}

TEST(ParallelEdge, SurvivingSideWins)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    LatencyConfig latency;
    ParallelDecoder parallel(
        ctx.graph(), ctx.paths(),
        std::make_unique<AstreaDecoder>(ctx.graph(), ctx.paths(),
                                        latency),
        makeDecoder("astrea_g", ctx.graph(), ctx.paths(), latency),
        latency);
    std::vector<uint32_t> defects;
    for (uint32_t det = 0; det < 12; ++det) {
        defects.push_back(det);
    }
    // Astrea aborts (HW 12 > 10); Astrea-G must carry the result.
    DecodeTrace trace;
    const DecodeResult result = parallel.decode(defects, &trace);
    EXPECT_FALSE(result.aborted);
    EXPECT_EQ(trace.parallelWinner, 1);
    ASSERT_EQ(trace.children.size(), 2u);
}

TEST(UnionFindEdge, LoneBoundaryAdjacentDefect)
{
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    // Find a detector with a boundary edge and decode it alone.
    int det = -1;
    for (uint32_t d = 0; d < ctx.graph().numDetectors(); ++d) {
        if (ctx.graph().boundaryEdge(d) >= 0) {
            det = static_cast<int>(d);
            break;
        }
    }
    ASSERT_GE(det, 0);
    UnionFindDecoder uf(ctx.graph(), ctx.paths());
    const std::vector<uint32_t> defects{
        static_cast<uint32_t>(det)};
    DecodeTrace trace;
    const DecodeResult result = uf.decode(defects, &trace);
    EXPECT_FALSE(result.aborted);
    // The correction must be exactly one boundary-reaching path.
    EXPECT_GE(trace.correctionEdges.size(), 1u);
}

TEST(UnionFindEdge, AllDetectorsFlippedStillResolves)
{
    // Pathological syndrome: every detector flipped. Union-find
    // must still produce a valid correction (one big cluster
    // touching the boundary).
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    std::vector<uint32_t> defects;
    for (uint32_t det = 0; det < ctx.graph().numDetectors();
         ++det) {
        defects.push_back(det);
    }
    UnionFindDecoder uf(ctx.graph(), ctx.paths());
    const DecodeResult result = uf.decode(defects);
    EXPECT_FALSE(result.aborted);
}

TEST(AstreaEdge, ExactlyTenDefectsIsStillExact)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    // Take the first 10 detectors of layer 0 as a syndrome: legal
    // input, boundary matches available for all.
    std::vector<uint32_t> defects;
    for (uint32_t det = 0; det < 10; ++det) {
        defects.push_back(det);
    }
    AstreaDecoder astrea(ctx.graph(), ctx.paths());
    const DecodeResult result = astrea.decode(defects);
    EXPECT_FALSE(result.aborted);
    EXPECT_GT(result.weight, 0.0);
}

} // namespace
} // namespace qec
