/**
 * @file
 * Tests for the decoding graph and path tables, including a
 * Floyd-Warshall cross-check of the Dijkstra all-pairs distances.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/path_table.hpp"
#include "qec/harness/context.hpp"

namespace qec
{
namespace
{

GraphlikeDem
smallDem()
{
    // 0 -(0.1)- 1 -(0.1)- 2 ; 0 -(0.01)- B ; 2 -(0.2)- B
    // plus a heavy direct 0-2 edge that shortest paths must avoid.
    GraphlikeDem dem;
    dem.numDetectors = 3;
    dem.numObservables = 1;
    dem.edges.push_back({0, 1, 0, 0.1});
    dem.edges.push_back({1, 2, 0, 0.1});
    dem.edges.push_back({0, 2, 1, 0.001});
    dem.edges.push_back({0, kBoundary, 1, 0.01});
    dem.edges.push_back({2, kBoundary, 0, 0.2});
    return dem;
}

TEST(DecodingGraph, BuildsAdjacency)
{
    const DecodingGraph graph = DecodingGraph::fromDem(smallDem());
    EXPECT_EQ(graph.numDetectors(), 3u);
    EXPECT_EQ(graph.edges().size(), 5u);
    EXPECT_EQ(graph.adjacentEdges(1).size(), 2u);
    EXPECT_GE(graph.boundaryEdge(0), 0);
    EXPECT_EQ(graph.boundaryEdge(1), -1);
    EXPECT_GE(graph.edgeBetween(0, 1), 0);
    EXPECT_EQ(graph.edgeBetween(1, 0), graph.edgeBetween(0, 1));
}

TEST(DecodingGraph, WeightIsLogLikelihoodRatio)
{
    const DecodingGraph graph = DecodingGraph::fromDem(smallDem());
    const int eid = graph.edgeBetween(0, 1);
    ASSERT_GE(eid, 0);
    EXPECT_NEAR(graph.edges()[eid].weight,
                std::log(0.9 / 0.1), 1e-12);
}

TEST(DecodingGraph, MergesParallelEdgesKeepingDominantObs)
{
    GraphlikeDem dem;
    dem.numDetectors = 2;
    dem.numObservables = 1;
    dem.edges.push_back({0, 1, 0, 0.2});
    dem.edges.push_back({0, 1, 1, 0.01});
    const DecodingGraph graph = DecodingGraph::fromDem(dem);
    ASSERT_EQ(graph.edges().size(), 1u);
    EXPECT_EQ(graph.edges()[0].obsMask, 0ull);
    EXPECT_NEAR(graph.edges()[0].prob,
                0.2 * 0.99 + 0.01 * 0.8, 1e-12);
    EXPECT_EQ(graph.obsConflicts(), 1u);
}

TEST(PathTable, ShortestPathsAvoidHeavyEdge)
{
    const DecodingGraph graph = DecodingGraph::fromDem(smallDem());
    const PathTable paths(graph);
    const double w01 = std::log(0.9 / 0.1);
    // 0->2 goes through 1 (2*w01) instead of the heavy direct edge.
    EXPECT_NEAR(paths.dist(0, 2), 2 * w01, 1e-6);
    EXPECT_EQ(paths.pathHops(0, 2), 2);
    // Observable parity along 0-1-2 is 0 (both edges obs-free).
    EXPECT_EQ(paths.pathObs(0, 2), 0ull);
    EXPECT_DOUBLE_EQ(paths.dist(1, 1), 0.0);
}

TEST(PathTable, BoundaryUsesBestAttachment)
{
    const DecodingGraph graph = DecodingGraph::fromDem(smallDem());
    const PathTable paths(graph);
    // Node 0 attaches directly (p=0.01 edge).
    EXPECT_NEAR(paths.distToBoundary(0), std::log(0.99 / 0.01),
                1e-6);
    EXPECT_EQ(paths.boundaryHops(0), 1);
    EXPECT_EQ(paths.boundaryObs(0), 1ull);
    // Node 1's best boundary route is via node 2 (w12 + w2B is
    // cheaper than w01 + w0B).
    const double expected = std::log(0.9 / 0.1) +
                            std::log(0.8 / 0.2);
    EXPECT_NEAR(paths.distToBoundary(1), expected, 1e-6);
    EXPECT_EQ(paths.boundaryHops(1), 2);
    EXPECT_EQ(paths.boundaryObs(1), 0ull);
}

TEST(PathTable, MatchesFloydWarshallOnSurfaceGraph)
{
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    const DecodingGraph &graph = ctx.graph();
    const PathTable &paths = ctx.paths();
    const uint32_t n = graph.numDetectors();

    // Floyd-Warshall reference.
    std::vector<std::vector<double>> dist(
        n, std::vector<double>(n, 1e18));
    for (uint32_t i = 0; i < n; ++i) {
        dist[i][i] = 0.0;
    }
    for (const GraphEdge &edge : graph.edges()) {
        if (edge.v == kBoundary) {
            continue;
        }
        dist[edge.u][edge.v] =
            std::min(dist[edge.u][edge.v], edge.weight);
        dist[edge.v][edge.u] = dist[edge.u][edge.v];
    }
    for (uint32_t k = 0; k < n; ++k) {
        for (uint32_t i = 0; i < n; ++i) {
            for (uint32_t j = 0; j < n; ++j) {
                dist[i][j] = std::min(dist[i][j],
                                      dist[i][k] + dist[k][j]);
            }
        }
    }
    for (uint32_t i = 0; i < n; ++i) {
        for (uint32_t j = 0; j < n; ++j) {
            ASSERT_NEAR(paths.dist(i, j), dist[i][j], 1e-4)
                << i << "," << j;
        }
    }
}

TEST(PathTable, SurfaceGraphBoundaryReachableEverywhere)
{
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    for (uint32_t det = 0; det < ctx.graph().numDetectors();
         ++det) {
        EXPECT_TRUE(std::isfinite(ctx.paths().distToBoundary(det)));
        EXPECT_GT(ctx.paths().distToBoundary(det), 0.0);
    }
}

} // namespace
} // namespace qec
