/**
 * @file
 * End-to-end tests for the qec-rt-audit static hot-path auditor.
 *
 * Three angles, mirroring docs/static_analysis.md:
 *  - the seeded-violation fixture (tools/rt_audit/fixture) is
 *    flagged, once per denylist class, with readable call chains —
 *    including a multi-hop chain through an intermediate helper and
 *    a chain through a GCC hot/cold-split clone;
 *  - the production library audits clean under the committed
 *    allowlist and root baseline;
 *  - an allowlist entry that matches no edge fails the audit as
 *    stale, so exemptions cannot silently outlive the code they
 *    were written for.
 *
 * Only compiled when QEC_RT_AUDIT is ON (the build provides the
 * auditor binary and fixture objects; tests/CMakeLists.txt injects
 * their paths as compile definitions).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

namespace
{

struct AuditRun
{
    int exitCode = -1;
    std::string output;
};

/** Run the auditor with `args`, capturing stdout+stderr. */
AuditRun
runAudit(const std::string &args)
{
    const std::string cmd = std::string("\"") + QEC_RT_AUDIT_BIN +
                            "\" " + args + " 2>&1";
    AuditRun run;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe) {
        return run;
    }
    std::array<char, 4096> buf;
    size_t got;
    while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
        run.output.append(buf.data(), got);
    }
    const int status = pclose(pipe);
    run.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return run;
}

std::string
commonArgs()
{
    return std::string("--compile-commands \"") +
           QEC_RT_AUDIT_CCJSON + "\"";
}

TEST(RtAudit, FixtureFlagsEveryDenylistClass)
{
    const AuditRun run = runAudit(
        commonArgs() + " --filter tools/rt_audit/fixture/");
    ASSERT_EQ(run.exitCode, 1) << run.output;

    // One hit per seeded class, attributed to the right root.
    EXPECT_NE(run.output.find(
                  "class=alloc "
                  "root=\"qec_rt_fixture::rtAllocViolation(int)\""),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find(
                  "class=lock "
                  "root=\"qec_rt_fixture::rtLockViolation("),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find(
                  "class=clock "
                  "root=\"qec_rt_fixture::rtClockViolation()\""),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find(
                  "class=throw "
                  "root=\"qec_rt_fixture::rtThrowViolation(int)\""),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find(
                  "class=rand "
                  "root=\"qec_rt_fixture::rtRandViolation()\""),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find(
                  "class=io "
                  "root=\"qec_rt_fixture::rtIoViolation(int)\""),
              std::string::npos)
        << run.output;

    // Transitive chain: the allocation two frames below the root is
    // reported with the full path, not just the direct relocation.
    EXPECT_NE(
        run.output.find("qec_rt_fixture::rtAllocViaHelper(int) -> "
                        "qec_rt_fixture::allocatingHelper(int) -> "
                        "operator new[]"),
        std::string::npos)
        << run.output;

    // Hot/cold-split clones stay attributed to their parent: the
    // throw lives in rtThrowViolation's .cold section.
    EXPECT_NE(run.output.find("[clone .cold] -> __cxa_throw"),
              std::string::npos)
        << run.output;

    // No false positive on the arithmetic-only control root.
    EXPECT_EQ(run.output.find("root=\"qec_rt_fixture::"
                              "rtCleanControl"),
              std::string::npos)
        << run.output;

    // All eight fixture roots were discovered via the anchor.
    EXPECT_NE(run.output.find("8 roots"), std::string::npos)
        << run.output;
}

TEST(RtAudit, LibraryHotPathsAuditClean)
{
    const std::string src = QEC_RT_AUDIT_SRC;
    const AuditRun run = runAudit(
        commonArgs() + " --filter src/qec/" + " --allow \"" + src +
        "/tools/rt_audit/allow.txt\"" + " --baseline \"" + src +
        "/tools/rt_audit/baseline.txt\"" +
        " --require-roots 30 --unknown error");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_NE(run.output.find(" 0 violations"), std::string::npos)
        << run.output;
    EXPECT_EQ(run.output.find("STALE"), std::string::npos)
        << run.output;
}

TEST(RtAudit, StaleAllowlistEntryFails)
{
    // Committed allowlist plus one entry that can match nothing.
    const std::string src = QEC_RT_AUDIT_SRC;
    std::ifstream in(src + "/tools/rt_audit/allow.txt");
    ASSERT_TRUE(in.good());
    std::stringstream copy;
    copy << in.rdbuf();
    copy << "_ZN3qec19NoSuchSymbolAnywhereEv  stale test entry\n";

    const std::string tmp =
        testing::TempDir() + "rt_audit_stale_allow.txt";
    {
        std::ofstream out(tmp);
        ASSERT_TRUE(out.good());
        out << copy.str();
    }

    const AuditRun run = runAudit(
        commonArgs() + " --filter src/qec/" + " --allow \"" + tmp +
        "\" --require-roots 30 --unknown error");
    std::remove(tmp.c_str());
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_NE(run.output.find("STALE"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("_ZN3qec19NoSuchSymbolAnywhereEv"),
              std::string::npos)
        << run.output;
}

} // namespace
