/**
 * @file
 * Serve-subsystem suite:
 *
 *  - IngestRing: FIFO/wraparound unit behavior, backpressure
 *    accounting, and a multi-producer/multi-consumer stress matrix
 *    (run under ThreadSanitizer in CI);
 *  - StreamingDecoder: sliding-window committed corrections are
 *    bit-equivalent to one-shot decoding of the full stream across
 *    the promatch, pinball, and mwpm stacks, plus window
 *    accounting, reset, and empty-stream behavior;
 *  - DecodeServer: results identical to serial streaming decode,
 *    deterministic backpressure rejection, drain/stop protocol,
 *    and a multi-producer stress test.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "qec/api/decoder_spec.hpp"
#include "qec/api/registry.hpp"
#include "qec/api/status.hpp"
#include "qec/fault/fault_injector.hpp"
#include "qec/harness/context.hpp"
#include "qec/serve/ring.hpp"
#include "qec/serve/server.hpp"
#include "qec/serve/stream.hpp"
#include "qec/serve/streaming.hpp"
#include "qec/util/time_source.hpp"

namespace qec
{
namespace
{

// ---------------------------------------------------------------
// IngestRing
// ---------------------------------------------------------------

TEST(IngestRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(IngestRing<int>(0).capacity(), 2u);
    EXPECT_EQ(IngestRing<int>(2).capacity(), 2u);
    EXPECT_EQ(IngestRing<int>(3).capacity(), 4u);
    EXPECT_EQ(IngestRing<int>(64).capacity(), 64u);
    EXPECT_EQ(IngestRing<int>(65).capacity(), 128u);
}

TEST(IngestRing, FifoSingleThread)
{
    IngestRing<int> ring(8);
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(ring.tryPush(i));
    }
    EXPECT_FALSE(ring.tryPush(99)); // Full.
    for (int i = 0; i < 8; ++i) {
        int out = -1;
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, i);
    }
    int out = -1;
    EXPECT_FALSE(ring.tryPop(out)); // Empty.
}

TEST(IngestRing, WraparoundKeepsFifo)
{
    IngestRing<int> ring(4);
    int next_push = 0, next_pop = 0;
    // Many uneven push/pop cycles force the cursors far past the
    // capacity, exercising the sequence-number recycling.
    for (int cycle = 0; cycle < 1000; ++cycle) {
        const int burst = 1 + cycle % 4;
        for (int i = 0; i < burst; ++i) {
            ASSERT_TRUE(ring.tryPush(next_push));
            ++next_push;
        }
        for (int i = 0; i < burst; ++i) {
            int out = -1;
            ASSERT_TRUE(ring.tryPop(out));
            ASSERT_EQ(out, next_pop);
            ++next_pop;
        }
    }
}

TEST(IngestRing, RejectsWhenFullAndRecovers)
{
    IngestRing<int> ring(4);
    int pushed = 0;
    while (ring.tryPush(pushed)) {
        ++pushed;
    }
    EXPECT_EQ(pushed, 4); // Exactly capacity, then backpressure.
    int out = -1;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(ring.tryPush(100)); // One free cell again.
    EXPECT_FALSE(ring.tryPush(101));
}

/** P producers, C consumers, full accounting + per-producer order. */
void
mpmcStress(int producers, int consumers, int perProducer)
{
    IngestRing<uint64_t> ring(64);
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> produced{0};
    std::atomic<bool> done{false};

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < perProducer; ++i) {
                const uint64_t token =
                    (static_cast<uint64_t>(p) << 32) |
                    static_cast<uint64_t>(i);
                // Retry on backpressure, counting every rejection:
                // attempts == successes + rejections.
                while (!ring.tryPush(token)) {
                    rejected.fetch_add(1,
                                       std::memory_order_relaxed);
                    std::this_thread::yield();
                }
                produced.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    std::vector<std::vector<uint64_t>> logs(consumers);
    for (int c = 0; c < consumers; ++c) {
        threads.emplace_back([&, c] {
            uint64_t token;
            for (;;) {
                if (ring.tryPop(token)) {
                    logs[c].push_back(token);
                } else if (done.load(std::memory_order_acquire)) {
                    // One final sweep after the flag: anything
                    // pushed before `done` was set is still ours.
                    while (ring.tryPop(token)) {
                        logs[c].push_back(token);
                    }
                    return;
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }

    for (int p = 0; p < producers; ++p) {
        threads[p].join();
    }
    done.store(true, std::memory_order_release);
    for (int c = 0; c < consumers; ++c) {
        threads[producers + c].join();
    }

    // Every token popped exactly once.
    std::vector<std::vector<char>> seen(
        producers, std::vector<char>(perProducer, 0));
    size_t total = 0;
    for (const auto &log : logs) {
        total += log.size();
        // Within one consumer, each producer's tokens appear in
        // push order (ring positions are claimed FIFO).
        std::vector<int64_t> last(producers, -1);
        for (uint64_t token : log) {
            const int p = static_cast<int>(token >> 32);
            const int64_t seq =
                static_cast<int64_t>(token & 0xffffffffu);
            ASSERT_LT(p, producers);
            ASSERT_LT(seq, perProducer);
            ASSERT_GT(seq, last[p])
                << "producer " << p
                << " reordered within one consumer";
            last[p] = seq;
            ASSERT_FALSE(seen[p][seq]) << "token popped twice";
            seen[p][seq] = 1;
        }
    }
    EXPECT_EQ(total,
              static_cast<size_t>(producers) *
                  static_cast<size_t>(perProducer));
    EXPECT_EQ(produced.load(),
              static_cast<uint64_t>(producers) *
                  static_cast<uint64_t>(perProducer));
}

TEST(IngestRing, MpmcStressMatrix)
{
    for (int producers : {1, 2, 4}) {
        for (int consumers : {1, 2}) {
            mpmcStress(producers, consumers, 2000);
        }
    }
}

// ---------------------------------------------------------------
// StreamingDecoder
// ---------------------------------------------------------------

/** Long sparse memory experiment: many windows per stream, and HW
 *  low enough that the astrea-backed stacks never abort. */
const ExperimentContext &
streamContext()
{
    return ExperimentContext::get(7, 1e-4, 40);
}

const char *const kStreamSpecs[] = {"promatch+astrea",
                                    "pinball+astrea", "mwpm"};

TEST(Streaming, MatchesOneShotAcrossStacks)
{
    const auto &ctx = streamContext();
    const int detPerRound = static_cast<int>(
        ctx.experiment().circuit.numDetectors() /
        static_cast<size_t>(ctx.rounds() + 1));
    const auto streams = sampleStreams(ctx, 0xfeedbeef, 300);

    for (const char *spec : kStreamSpecs) {
        auto oneShot = build(DecoderSpec::parse(spec), ctx.graph(),
                             ctx.paths());
        auto windowed = build(DecoderSpec::parse(spec), ctx.graph(),
                              ctx.paths());
        StreamingConfig cfg;
        cfg.windowRounds = 12;
        cfg.commitRounds = 4;
        cfg.guardRounds = 4;
        StreamingDecoder streamer(*windowed, detPerRound, cfg);

        int compared = 0, skipped = 0;
        uint64_t carried = 0, windowsSeen = 0;
        for (const SyndromeStream &s : streams) {
            const DecodeResult ref = oneShot->decode(s.defects);
            const uint64_t committed = streamer.run(s);
            if (ref.aborted || streamer.aborted()) {
                ++skipped; // HW beyond the stack's budget: the
                continue;  // one-shot baseline itself gives up.
            }
            ASSERT_EQ(committed, ref.predictedObs)
                << spec << ": windowed commit diverged from "
                << "one-shot on a stream with "
                << s.defects.size() << " defects";
            // Window accounting: 41 layers, W=12, C=4 -> windows
            // at winStart 0,4,...,28, then the finish() flush.
            EXPECT_EQ(streamer.stats().windows, 8u);
            EXPECT_EQ(streamer.stats().defectsSeen,
                      s.defects.size());
            EXPECT_EQ(streamer.stats().forcedCommits, 0u);
            carried += streamer.stats().defectsCarried;
            windowsSeen += streamer.stats().windows;
            ++compared;
        }
        // The equivalence must actually be exercised: nearly every
        // stream compared, and plenty of defects carried across
        // window seams (a defect past the commit region is carried
        // by every window that slides over it).
        EXPECT_GE(compared, 285) << spec;
        EXPECT_GT(carried, 0u) << spec;
        EXPECT_GT(windowsSeen, 0u) << spec;
    }
}

TEST(Streaming, EmptyStreamCommitsNothing)
{
    const auto &ctx = streamContext();
    const int detPerRound = static_cast<int>(
        ctx.experiment().circuit.numDetectors() /
        static_cast<size_t>(ctx.rounds() + 1));
    auto decoder = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                         ctx.paths());
    StreamingDecoder streamer(*decoder, detPerRound);

    SyndromeStream empty;
    empty.rounds = ctx.rounds();
    empty.detectorsPerRound = detPerRound;
    empty.layerOffsets.assign(
        static_cast<size_t>(empty.layers()) + 1, 0);
    EXPECT_EQ(streamer.run(empty), 0u);
    EXPECT_FALSE(streamer.aborted());
    EXPECT_EQ(streamer.stats().decodes, 0u);
    EXPECT_EQ(streamer.stats().defectsSeen, 0u);
}

TEST(Streaming, ResetMakesRunsIndependent)
{
    const auto &ctx = streamContext();
    const int detPerRound = static_cast<int>(
        ctx.experiment().circuit.numDetectors() /
        static_cast<size_t>(ctx.rounds() + 1));
    auto decoder = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                         ctx.paths());
    StreamingDecoder streamer(*decoder, detPerRound);
    const auto streams = sampleStreams(ctx, 0x5eed5, 20);

    std::vector<uint64_t> first;
    for (const SyndromeStream &s : streams) {
        first.push_back(streamer.run(s));
    }
    // Re-running the same streams (run() resets) must reproduce
    // every result bit-for-bit: no state leaks across streams.
    for (size_t i = 0; i < streams.size(); ++i) {
        EXPECT_EQ(streamer.run(streams[i]), first[i]) << i;
    }
}

TEST(Streaming, ForcedCommitActuallyDrainsOpenCluster)
{
    // Regression: when one cluster swallows the whole window AND
    // sits entirely past the commit boundary (boundarySplit == 0),
    // the forced-commit path used to count a forcedCommit without
    // committing anything — the buffer grew forever and no decode
    // was ever issued. The fix drains at least the oldest buffered
    // layer, so a pathological dense stream stays bounded.
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    ASSERT_GE(ctx.graph().numDetectors(), 52u);
    auto decoder = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                         ctx.paths());
    // Artificial 4-detector layers; W=4/C=1/G=3 with a tiny force
    // threshold so the dense stream trips it on the first window.
    StreamingConfig cfg;
    cfg.windowRounds = 4;
    cfg.commitRounds = 1;
    cfg.guardRounds = 3;
    cfg.forceCommitDefects = 8;
    StreamingDecoder streamer(*decoder, 4, cfg);

    // Layer 0 empty (keeps the commit-boundary prefix empty), then
    // every layer dense: consecutive layers always chain (gap 1 <=
    // G), so the cluster never closes on its own.
    streamer.pushLayer({});
    for (uint32_t l = 1; l <= 12; ++l) {
        const uint32_t layer[] = {4 * l, 4 * l + 1, 4 * l + 2,
                                  4 * l + 3};
        streamer.pushLayer(layer);
    }
    const StreamingStats &stats = streamer.stats();
    EXPECT_GT(stats.forcedCommits, 0u);
    // Pre-fix: decodes == 0 (no forced window ever committed) and
    // maxWindowDefects grows with the stream (44+ here).
    EXPECT_GE(stats.decodes, 1u);
    EXPECT_LE(stats.maxWindowDefects, 16u);
}

TEST(Streaming, MidSpanDefectFromWrongLayerPoisonsStream)
{
    // {0, 4, 1} with 4 detectors per layer: both endpoints are
    // layer-0 ids, the middle one belongs to layer 1 — an
    // endpoints-only validation would let it through and corrupt
    // the window's ascending-id invariant. Layer data is untrusted,
    // so this must come back as a recoverable status, not a death.
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    auto decoder = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                         ctx.paths());
    StreamingDecoder streamer(*decoder, 4);
    const uint32_t bad[] = {0, 4, 1};
    EXPECT_EQ(streamer.pushLayer(bad),
              DecodeStatus::kMalformedStream);
    // Sticky poison: further input is refused until reset().
    EXPECT_EQ(streamer.status(), DecodeStatus::kMalformedStream);
    const uint32_t fine[] = {0};
    EXPECT_EQ(streamer.pushLayer(fine),
              DecodeStatus::kMalformedStream);
    EXPECT_EQ(streamer.stats().malformedLayers, 1u);
    streamer.reset();
    EXPECT_EQ(streamer.status(), DecodeStatus::kOk);
    EXPECT_EQ(streamer.pushLayer(fine), DecodeStatus::kOk);
}

TEST(Streaming, UnsortedLayerPoisonsStream)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    auto decoder = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                         ctx.paths());
    StreamingDecoder streamer(*decoder, 4);
    const uint32_t bad[] = {1, 0};
    EXPECT_EQ(streamer.pushLayer(bad),
              DecodeStatus::kMalformedStream);
    EXPECT_EQ(streamer.committedObs(), 0u);
}

TEST(Streaming, OutOfRangeDetectorReturnsStatus)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    auto decoder = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                         ctx.paths());
    StreamingDecoder streamer(*decoder, 4);
    const uint32_t bad[] = {0, ctx.graph().numDetectors()};
    EXPECT_EQ(streamer.pushLayer(bad),
              DecodeStatus::kDetectorOutOfRange);
    EXPECT_EQ(streamer.status(),
              DecodeStatus::kDetectorOutOfRange);
}

TEST(Streaming, RunCheckedRejectsBadStreamsAcrossStacks)
{
    // The taxonomy holds for every registry stack, and a failed
    // stream must not wedge the instance: the next well-formed
    // stream decodes to its usual result.
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    const int detPerRound = static_cast<int>(
        ctx.experiment().circuit.numDetectors() /
        static_cast<size_t>(ctx.rounds() + 1));
    const auto streams = sampleStreams(ctx, 0xbad5, 32);
    // A stream with defects, so replacing one id means something.
    size_t busy = 0;
    while (busy < streams.size() &&
           streams[busy].defects.empty()) {
        ++busy;
    }
    ASSERT_LT(busy, streams.size());
    for (const char *spec :
         {"promatch+astrea", "pinball+astrea", "sparse"}) {
        SCOPED_TRACE(spec);
        auto decoder = build(DecoderSpec::parse(spec), ctx.graph(),
                             ctx.paths());
        StreamingDecoder streamer(*decoder, detPerRound);
        const uint64_t good = streamer.run(streams[busy]);

        // Out-of-range defect id.
        SyndromeStream outOfRange = streams[busy];
        outOfRange.defects.back() = ctx.graph().numDetectors();
        EXPECT_EQ(streamer.runChecked(outOfRange).status,
                  DecodeStatus::kDetectorOutOfRange);

        // Inconsistent CSR: the final offset overshoots.
        SyndromeStream badCsr = streams[1];
        badCsr.layerOffsets.back() =
            static_cast<uint32_t>(badCsr.defects.size()) + 7;
        EXPECT_EQ(streamer.runChecked(badCsr).status,
                  DecodeStatus::kMalformedStream);

        // detectorsPerRound disagreement.
        SyndromeStream wrongWidth = streams[2];
        wrongWidth.detectorsPerRound = detPerRound + 1;
        EXPECT_EQ(streamer.runChecked(wrongWidth).status,
                  DecodeStatus::kMalformedStream);

        // The instance recovered: same stream, same answer.
        const StreamDecodeOutcome after =
            streamer.runChecked(streams[busy]);
        EXPECT_EQ(after.status, DecodeStatus::kOk);
        EXPECT_EQ(after.committedObs, good);
    }
}

// ---------------------------------------------------------------
// DecodeServer
// ---------------------------------------------------------------

/** Cheap dense context for the serving tests. */
const ExperimentContext &
serveContext()
{
    return ExperimentContext::get(5, 1e-3);
}

int
detectorsPerRound(const ExperimentContext &ctx)
{
    return static_cast<int>(
        ctx.experiment().circuit.numDetectors() /
        static_cast<size_t>(ctx.rounds() + 1));
}

TEST(Serve, MatchesSerialStreamingDecode)
{
    const auto &ctx = serveContext();
    const int detPerRound = detectorsPerRound(ctx);
    const auto streams = sampleStreams(ctx, 0xab1e, 200);
    auto proto = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                       ctx.paths());

    // Serial reference through the same streaming protocol.
    std::vector<uint64_t> reference;
    {
        StreamingDecoder serial(*proto, detPerRound);
        for (const SyndromeStream &s : streams) {
            reference.push_back(serial.run(s));
        }
    }

    std::vector<uint64_t> results(streams.size(), ~0ull);
    std::vector<std::atomic<int>> fired(streams.size());
    ServeConfig config;
    config.workers = 4;
    config.queueCapacity = 64;
    DecodeServer server(
        *proto, detPerRound, config,
        [&](const DecodeResponse &r) {
            // Tags index disjoint cells, so concurrent handler
            // calls never write the same location.
            results[r.tag] = r.correctedObs;
            fired[r.tag].fetch_add(1, std::memory_order_relaxed);
            EXPECT_FALSE(r.aborted);
            EXPECT_GE(r.latencyNs, r.serviceNs);
        });

    for (size_t i = 0; i < streams.size(); ++i) {
        while (!server.submit(streams[i], i)) {
            std::this_thread::yield(); // Backpressure: retry.
        }
    }
    server.drain();
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.accepted, streams.size());
    EXPECT_EQ(stats.completed, streams.size());
    EXPECT_EQ(stats.aborted, 0u);
    EXPECT_EQ(stats.latency.count(), streams.size());
    EXPECT_EQ(stats.service.count(), streams.size());
    server.stop();

    for (size_t i = 0; i < streams.size(); ++i) {
        EXPECT_EQ(fired[i].load(), 1) << "response " << i;
        EXPECT_EQ(results[i], reference[i]) << "stream " << i;
    }
}

TEST(Serve, BackpressureRejectsWhenSlotsExhausted)
{
    const auto &ctx = serveContext();
    const int detPerRound = detectorsPerRound(ctx);
    const auto streams = sampleStreams(ctx, 0xbacc, 8);
    auto proto = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                       ctx.paths());

    // A gate the single worker blocks on inside the handler: with
    // 2 slots and the worker parked, the 4th-or-so submit must hit
    // a full ring deterministically.
    std::atomic<bool> gate{false};
    std::atomic<int> handled{0};
    ServeConfig config;
    config.workers = 1;
    config.queueCapacity = 2;
    DecodeServer server(*proto, detPerRound, config,
                        [&](const DecodeResponse &) {
                            while (!gate.load(
                                std::memory_order_acquire)) {
                                std::this_thread::yield();
                            }
                            handled.fetch_add(
                                1, std::memory_order_relaxed);
                        });

    int accepted = 0, attempts = 0;
    bool sawReject = false;
    // Keep submitting until backpressure fires; the worker can hold
    // at most one in-flight request plus two queued slots.
    while (!sawReject && attempts < 16) {
        sawReject = !server.submit(
            streams[static_cast<size_t>(attempts) %
                    streams.size()],
            static_cast<uint64_t>(attempts));
        accepted += sawReject ? 0 : 1;
        ++attempts;
    }
    EXPECT_TRUE(sawReject);
    EXPECT_LE(accepted, 3); // 2 slots + 1 parked in the handler.

    gate.store(true, std::memory_order_release);
    server.drain();
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.accepted, static_cast<uint64_t>(accepted));
    EXPECT_EQ(stats.completed, static_cast<uint64_t>(accepted));
    EXPECT_GE(stats.rejected, 1u);
    EXPECT_EQ(stats.accepted + stats.rejected,
              static_cast<uint64_t>(attempts));
    EXPECT_EQ(handled.load(), accepted);
    server.stop();
}

TEST(Serve, StopIsIdempotentAndRefusesLateSubmits)
{
    const auto &ctx = serveContext();
    const int detPerRound = detectorsPerRound(ctx);
    const auto streams = sampleStreams(ctx, 0x57a7, 4);
    auto proto = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                       ctx.paths());

    ServeConfig config;
    config.workers = 2;
    config.queueCapacity = 8;
    DecodeServer server(*proto, detPerRound, config);
    for (size_t i = 0; i < streams.size(); ++i) {
        ASSERT_TRUE(server.submit(streams[i], i));
    }
    server.stop();
    server.stop(); // Second stop is a no-op.
    server.drain(); // Drain after stop returns immediately.

    EXPECT_FALSE(server.submit(streams[0], 99));
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.accepted, streams.size());
    EXPECT_EQ(stats.completed, streams.size());
    EXPECT_EQ(stats.rejected, 1u); // The post-stop submit.
}

TEST(Serve, MultiProducerStressMatchesSerial)
{
    const auto &ctx = serveContext();
    const int detPerRound = detectorsPerRound(ctx);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 50;
    const auto streams =
        sampleStreams(ctx, 0x9a11, kProducers * kPerProducer);
    auto proto = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                       ctx.paths());

    std::vector<uint64_t> reference;
    {
        StreamingDecoder serial(*proto, detPerRound);
        for (const SyndromeStream &s : streams) {
            reference.push_back(serial.run(s));
        }
    }

    std::vector<uint64_t> results(streams.size(), ~0ull);
    ServeConfig config;
    config.workers = 2;
    config.queueCapacity = 8; // Small: backpressure gets exercised.
    DecodeServer server(*proto, detPerRound, config,
                        [&](const DecodeResponse &r) {
                            results[r.tag] = r.correctedObs;
                        });

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const size_t idx = static_cast<size_t>(
                    p * kPerProducer + i);
                while (!server.submit(streams[idx], idx)) {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto &t : producers) {
        t.join();
    }
    server.drain();
    server.stop();

    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.accepted, streams.size());
    EXPECT_EQ(stats.completed, streams.size());
    for (size_t i = 0; i < streams.size(); ++i) {
        EXPECT_EQ(results[i], reference[i]) << "stream " << i;
    }
}

TEST(Serve, DeadlineExpiresInQueueWithoutDecoding)
{
    const auto &ctx = serveContext();
    const int detPerRound = detectorsPerRound(ctx);
    const auto streams = sampleStreams(ctx, 0xdead, 4);
    auto proto = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                       ctx.paths());

    // Wedge the only worker, queue requests with a deadline, let
    // virtual time blow past it, then release: every queued request
    // must complete as kDeadlineExpired without a decode, and the
    // counters must reconcile (accepted == completed + expired).
    FakeTimeSource clock;
    FaultInjector faults(0);
    faults.wedge(0);
    std::atomic<int> expiredSeen{0}, okSeen{0};
    ServeConfig config;
    config.workers = 1;
    config.queueCapacity = 8;
    config.time = &clock;
    config.faults = &faults;
    DecodeServer server(
        *proto, detPerRound, config,
        [&](const DecodeResponse &r) {
            if (r.status == DecodeStatus::kDeadlineExpired) {
                EXPECT_EQ(r.correctedObs, 0u);
                expiredSeen.fetch_add(1,
                                      std::memory_order_relaxed);
            } else {
                EXPECT_EQ(r.status, DecodeStatus::kOk);
                okSeen.fetch_add(1, std::memory_order_relaxed);
            }
        });

    constexpr uint64_t kDeadlineNs = 1'000'000;
    for (size_t i = 0; i < streams.size(); ++i) {
        ASSERT_TRUE(server.submit(streams[i], i, kDeadlineNs));
    }
    clock.advance(kDeadlineNs + 1);
    // One more with no deadline: it must decode normally even
    // though it waited just as long.
    ASSERT_TRUE(server.submit(streams[0], 99));
    faults.release(0);
    server.drain();

    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.accepted, streams.size() + 1);
    EXPECT_EQ(stats.expired, streams.size());
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.accepted, stats.completed + stats.expired);
    // Expired requests stay out of the service histogram: nothing
    // was decoded for them.
    EXPECT_EQ(stats.service.count(), 1u);
    EXPECT_EQ(expiredSeen.load(), static_cast<int>(streams.size()));
    EXPECT_EQ(okSeen.load(), 1);
    server.stop();
}

TEST(Serve, HealthWatchdogDetectsWedgedWorker)
{
    const auto &ctx = serveContext();
    const int detPerRound = detectorsPerRound(ctx);
    const auto streams = sampleStreams(ctx, 0x4ead, 4);
    auto proto = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                       ctx.paths());

    FaultInjector faults(0);
    faults.wedge(0);
    ServeConfig config;
    config.workers = 1;
    config.queueCapacity = 8;
    config.faults = &faults;
    DecodeServer server(*proto, detPerRound, config);
    for (size_t i = 0; i < streams.size(); ++i) {
        ASSERT_TRUE(server.submit(streams[i], i));
    }

    // The worker parks holding its first request; wait until the
    // snapshot shows it busy, then watch the in-flight age grow —
    // that growth is exactly what a production watchdog keys off.
    HealthSnapshot snap;
    do {
        snap = server.health();
        std::this_thread::yield();
    } while (snap.oldestInFlightAgeNs == 0);
    ASSERT_EQ(snap.workers.size(), 1u);
    EXPECT_NE(snap.workers[0].busySinceNs, 0u);
    EXPECT_GE(snap.queueDepth, 1u); // The rest still queued.

    const uint64_t ageBefore = snap.oldestInFlightAgeNs;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GT(server.health().oldestInFlightAgeNs, ageBefore);

    faults.release(0);
    server.drain();
    snap = server.health();
    EXPECT_EQ(snap.queueDepth, 0u);
    EXPECT_EQ(snap.oldestInFlightAgeNs, 0u);
    EXPECT_EQ(snap.workers[0].completed, streams.size());
    EXPECT_EQ(snap.freeSlots,
              static_cast<size_t>(server.config().queueCapacity));
    server.stop();
}

TEST(Serve, SubmitWithRetryRidesOutBackpressure)
{
    const auto &ctx = serveContext();
    const int detPerRound = detectorsPerRound(ctx);
    const auto streams = sampleStreams(ctx, 0x4e74, 4);
    auto proto = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                       ctx.paths());

    // Park the single worker behind a gate and fill every slot, so
    // plain submits are rejected until the gate opens.
    std::atomic<bool> gate{false};
    ServeConfig config;
    config.workers = 1;
    config.queueCapacity = 2;
    DecodeServer server(*proto, detPerRound, config,
                        [&](const DecodeResponse &) {
                            while (!gate.load(
                                std::memory_order_acquire)) {
                                std::this_thread::yield();
                            }
                        });
    // Park the worker first: submit one request and wait until the
    // worker has dequeued it, recycled its slot, and blocked in the
    // handler (slots all free again, worker busy). Only then is the
    // saturation below stable — nothing can free a slot anymore.
    ASSERT_TRUE(server.submit(streams[0], 999));
    while (true) {
        const HealthSnapshot snap = server.health();
        if (snap.workers[0].busySinceNs != 0 &&
            snap.freeSlots ==
                static_cast<size_t>(
                    server.config().queueCapacity)) {
            break;
        }
        std::this_thread::yield();
    }
    int filled = 0;
    while (server.submit(streams[0], 1000 + filled)) {
        ++filled;
    }
    ASSERT_EQ(filled, server.config().queueCapacity);

    // Bounded retries against a saturated server: shed, with every
    // attempt counted as a rejection (verified post-drain — the
    // worker is live here, and stats() is quiescent-only).
    RetryPolicy fast;
    fast.maxAttempts = 3;
    fast.initialBackoffNs = 1'000;
    const SubmitResult shed =
        server.submitWithRetry(streams[1], 7, 0, fast);
    EXPECT_FALSE(shed.accepted);
    EXPECT_EQ(shed.retries, fast.maxAttempts - 1);

    // Open the gate from another thread mid-retry: the retry loop
    // must eventually win a freed slot and report how many
    // attempts that took.
    std::thread opener([&] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
        gate.store(true, std::memory_order_release);
    });
    RetryPolicy patient;
    patient.maxAttempts = 200;
    patient.initialBackoffNs = 100'000; // 0.1 ms between attempts.
    patient.maxBackoffNs = 1'000'000;
    const SubmitResult won =
        server.submitWithRetry(streams[2], 8, 0, patient);
    opener.join();
    EXPECT_TRUE(won.accepted);
    EXPECT_GE(won.retries, 1);
    server.drain();
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.accepted, stats.completed + stats.expired);
    // Every shed attempt plus the winning attempt's failures were
    // counted as rejections.
    EXPECT_GE(stats.rejected,
              static_cast<uint64_t>(fast.maxAttempts));
    server.stop();
}

TEST(Serve, FakeClockMakesRetryBackoffInstant)
{
    const auto &ctx = serveContext();
    const int detPerRound = detectorsPerRound(ctx);
    const auto streams = sampleStreams(ctx, 0xfa4e, 1);
    auto proto = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                       ctx.paths());

    FakeTimeSource clock;
    ServeConfig config;
    config.workers = 1;
    config.queueCapacity = 2;
    config.time = &clock;
    DecodeServer server(*proto, detPerRound, config);
    server.stop(); // Stopped server rejects every attempt...

    RetryPolicy policy;
    policy.maxAttempts = 10;
    policy.initialBackoffNs = 1'000'000'000; // 1 s per wait...
    const uint64_t t0 = clock.nowNs();
    const SubmitResult out =
        server.submitWithRetry(streams[0], 0, 0, policy);
    EXPECT_FALSE(out.accepted);
    EXPECT_EQ(out.retries, policy.maxAttempts - 1);
    // ...but the waits only advanced the virtual clock: all nine
    // backoffs (1s, 2s, ... capped) happened instantly.
    EXPECT_GT(clock.nowNs(), t0);
}

} // namespace
} // namespace qec
