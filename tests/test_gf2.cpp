/**
 * @file
 * Unit tests for GF(2) linear algebra.
 */

#include <gtest/gtest.h>

#include "qec/gf2/gf2.hpp"
#include "qec/util/rng.hpp"

namespace qec
{
namespace
{

BitVec
makeRow(std::initializer_list<int> bits, size_t width)
{
    BitVec row(width);
    for (int b : bits) {
        row.set(b, true);
    }
    return row;
}

TEST(Gf2, RankOfIdentity)
{
    Gf2Matrix m(0, 4);
    for (int i = 0; i < 4; ++i) {
        m.appendRow(makeRow({i}, 4));
    }
    EXPECT_EQ(m.rank(), 4u);
}

TEST(Gf2, RankWithDependentRows)
{
    Gf2Matrix m(0, 4);
    m.appendRow(makeRow({0, 1}, 4));
    m.appendRow(makeRow({1, 2}, 4));
    m.appendRow(makeRow({0, 2}, 4)); // Sum of the first two.
    EXPECT_EQ(m.rank(), 2u);
}

TEST(Gf2, KernelVectorsAnnihilate)
{
    Rng rng(31337);
    for (int trial = 0; trial < 50; ++trial) {
        const size_t rows = 4 + rng.nextBelow(4);
        const size_t cols = 6 + rng.nextBelow(5);
        Gf2Matrix m(0, cols);
        for (size_t r = 0; r < rows; ++r) {
            BitVec row(cols);
            for (size_t c = 0; c < cols; ++c) {
                row.set(c, rng.nextBool(0.5));
            }
            m.appendRow(row);
        }
        const auto basis = m.kernelBasis();
        EXPECT_EQ(basis.size(), cols - m.rank());
        for (const BitVec &k : basis) {
            for (size_t r = 0; r < rows; ++r) {
                EXPECT_FALSE(gf2Dot(m.row(r), k))
                    << "kernel vector fails at trial " << trial;
            }
        }
    }
}

TEST(Gf2, KernelBasisIsIndependent)
{
    Gf2Matrix m(0, 6);
    m.appendRow(makeRow({0, 1, 2}, 6));
    m.appendRow(makeRow({2, 3}, 6));
    const auto basis = m.kernelBasis();
    Gf2Matrix basis_mat(0, 6);
    for (const BitVec &k : basis) {
        basis_mat.appendRow(k);
    }
    EXPECT_EQ(basis_mat.rank(), basis.size());
}

TEST(Gf2, InRowSpace)
{
    Gf2Matrix m(0, 4);
    m.appendRow(makeRow({0, 1}, 4));
    m.appendRow(makeRow({1, 2}, 4));
    EXPECT_TRUE(m.inRowSpace(makeRow({0, 2}, 4)));
    EXPECT_TRUE(m.inRowSpace(makeRow({0, 1}, 4)));
    EXPECT_TRUE(m.inRowSpace(BitVec(4))); // Zero vector.
    EXPECT_FALSE(m.inRowSpace(makeRow({3}, 4)));
    EXPECT_FALSE(m.inRowSpace(makeRow({0}, 4)));
}

TEST(Gf2, DotProduct)
{
    EXPECT_FALSE(gf2Dot(makeRow({0, 1}, 4), makeRow({2, 3}, 4)));
    EXPECT_TRUE(gf2Dot(makeRow({0, 1}, 4), makeRow({1, 2}, 4)));
    EXPECT_FALSE(gf2Dot(makeRow({0, 1}, 4), makeRow({0, 1}, 4)));
}

} // namespace
} // namespace qec
