/**
 * @file
 * Batch-vs-serial bit-identity suite for the 64-lane block decode
 * path:
 *
 *  - registry-wide fuzz: every registered main decoder, every
 *    predecoder stacked on astrea and mwpm, and a parallel stack,
 *    on a surface-code context and on random DEMs, at lane counts
 *    1..64 including partial tails — decodeBlock's per-lane results
 *    must be bit-identical (obs, weight, latency, abort flag) with
 *    serial decode() of each lane, with stray bits in tail lanes
 *    ignored;
 *  - per-kernel predecodeBlock equivalence: the Pinball/Smith/
 *    Clique word kernels (and the serial fallback of the others)
 *    reproduce the scalar predecode() of every lane exactly —
 *    residual lists, obs/weight (FP accumulation order included),
 *    cycles, rounds, and the NSM decodedAll/forwarded flags.
 */

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "qec/api/decoder_spec.hpp"
#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/graph/decoding_graph.hpp"
#include "qec/graph/path_table.hpp"
#include "qec/harness/context.hpp"
#include "qec/util/bitvec.hpp"
#include "qec/util/rng.hpp"

namespace qec
{
namespace
{

/** Random connected-ish graphlike DEM with boundary edges (the
 *  test_data_layout idiom: a spine, random chords, sparse
 *  boundaries, occasional parallel edges). */
GraphlikeDem
randomDem(Rng &rng, uint32_t num_detectors)
{
    GraphlikeDem dem;
    dem.numDetectors = num_detectors;
    dem.numObservables = 2;
    const auto random_prob = [&] {
        return 0.005 + 0.4 * rng.nextDouble();
    };
    for (uint32_t v = 1; v < num_detectors; ++v) {
        dem.edges.push_back(
            {v - 1, v, rng.next64() & 3, random_prob()});
    }
    const uint32_t chords = num_detectors * 2;
    for (uint32_t c = 0; c < chords; ++c) {
        const uint32_t a = static_cast<uint32_t>(
            rng.next64() % num_detectors);
        const uint32_t b = static_cast<uint32_t>(
            rng.next64() % num_detectors);
        if (a == b) {
            continue;
        }
        dem.edges.push_back(
            {std::min(a, b), std::max(a, b), rng.next64() & 3,
             random_prob()});
    }
    for (uint32_t v = 0; v < num_detectors; v += 3) {
        dem.edges.push_back(
            {v, kBoundary, rng.next64() & 1, random_prob()});
    }
    return dem;
}

/**
 * Random 64-lane syndrome block in the detector-major word layout.
 * Each lane flips a per-lane random subset of the decoding graph's
 * edges and accumulates endpoint parity, so every lane is a valid
 * graphlike syndrome (always matchable). Per-lane error rates cycle
 * from 0 (empty lanes) through dense (HW well above the predecode
 * threshold), covering the low-HW bypass, engaged SM/NSM lanes, and
 * fully prematched lanes in one block.
 */
std::vector<uint64_t>
randomBlock(const DecodingGraph &graph, Rng &rng)
{
    std::vector<uint64_t> words(graph.numDetectors(), 0);
    const double rates[] = {0.0,  0.004, 0.01, 0.02,
                            0.04, 0.08,  0.15, 0.3};
    for (int lane = 0; lane < 64; ++lane) {
        const double rate = rates[lane % 8];
        const uint64_t bit = uint64_t{1} << lane;
        for (const GraphEdge &edge : graph.edges()) {
            if (rng.nextDouble() >= rate) {
                continue;
            }
            words[edge.u] ^= bit;
            if (edge.v != kBoundary) {
                words[edge.v] ^= bit;
            }
        }
    }
    return words;
}

/** Lane `lane`'s sorted defect list of a detector-major block. */
std::vector<uint32_t>
laneDefects(const std::vector<uint64_t> &words, int lane)
{
    std::vector<uint32_t> defects;
    for (size_t det = 0; det < words.size(); ++det) {
        if ((words[det] >> lane) & 1) {
            defects.push_back(static_cast<uint32_t>(det));
        }
    }
    return defects;
}

void
expectSameResult(const DecodeResult &block, const DecodeResult &serial,
                 const std::string &label)
{
    EXPECT_EQ(block.predictedObs, serial.predictedObs) << label;
    EXPECT_EQ(block.weight, serial.weight) << label; // exact ==
    EXPECT_EQ(block.latencyNs, serial.latencyNs) << label;
    EXPECT_EQ(block.aborted, serial.aborted) << label;
    EXPECT_EQ(block.realTime, serial.realTime) << label;
}

/** Every registered main alone, every predecoder stacked on astrea
 *  and on mwpm, plus one parallel stack. */
std::vector<std::string>
allStackSpecs()
{
    const DecoderRegistry &registry = DecoderRegistry::instance();
    std::vector<std::string> specs = registry.decoderComponents();
    for (const std::string &pre : registry.predecoderComponents()) {
        specs.push_back(pre + "+astrea");
        specs.push_back(pre + "+mwpm");
    }
    specs.push_back("promatch+astrea||astrea_g");
    return specs;
}

void
expectBlockMatchesSerial(const DecodingGraph &graph,
                         const PathTable &paths, uint64_t seed,
                         const std::string &graph_label)
{
    Rng rng(seed);
    for (const std::string &spec : allStackSpecs()) {
        auto decoder =
            build(DecoderSpec::parse(spec), graph, paths);
        auto reference = decoder->clone();
        DecodeWorkspace block_ws;
        DecodeWorkspace serial_ws;
        std::array<DecodeResult, 64> results;
        // Partial tails included; stray bits are planted in the
        // lanes past the count and must be ignored.
        for (int lanes : {1, 2, 7, 33, 63, 64}) {
            std::vector<uint64_t> words = randomBlock(graph, rng);
            decoder->decodeBlock(words, lanes, block_ws,
                                 results.data());
            for (int lane = 0; lane < lanes; ++lane) {
                const std::vector<uint32_t> defects =
                    laneDefects(words, lane);
                expectSameResult(
                    results[lane],
                    reference->decode(defects, serial_ws),
                    graph_label + " " + spec + " lanes=" +
                        std::to_string(lanes) + " lane=" +
                        std::to_string(lane));
            }
        }
    }
}

TEST(BlockDecode, RegistryWideBatchMatchesSerialOnSurfaceCode)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    expectBlockMatchesSerial(ctx.graph(), ctx.paths(), 0xb10c5,
                             "d=5");
}

TEST(BlockDecode, RegistryWideBatchMatchesSerialOnRandomDems)
{
    Rng dem_rng(0xdeb10c);
    for (int round = 0; round < 2; ++round) {
        const DecodingGraph graph =
            DecodingGraph::fromDem(randomDem(dem_rng, 40));
        const PathTable paths(graph);
        expectBlockMatchesSerial(
            graph, paths, 0x5eed0 + static_cast<uint64_t>(round),
            "random-dem" + std::to_string(round));
    }
}

void
expectPredecodeBlockMatchesSerial(const DecodingGraph &graph,
                                  const PathTable &paths,
                                  uint64_t seed,
                                  const std::string &graph_label)
{
    const DecoderRegistry &registry = DecoderRegistry::instance();
    const BuildContext context{graph, paths, LatencyConfig{},
                               PromatchConfig{}, PinballConfig{}};
    const long long budget = 240; // the pipeline's default cycles
    Rng rng(seed);
    for (const std::string &name :
         registry.predecoderComponents()) {
        auto predecoder = registry.buildPredecoder(name, context);
        auto reference = predecoder->clone();
        DecodeWorkspace block_ws;
        DecodeWorkspace serial_ws;
        BlockPredecodeResult block_result;
        PredecodeResult serial_result;
        for (int lanes : {1, 9, 64}) {
            const std::vector<uint64_t> words =
                randomBlock(graph, rng);
            const uint64_t mask = laneMask64(lanes);
            predecoder->predecodeBlock(words, mask, budget,
                                       block_ws, block_result);
            EXPECT_EQ(block_result.laneMask, mask);
            for (int lane = 0; lane < lanes; ++lane) {
                const std::string label =
                    graph_label + " " + name + " lanes=" +
                    std::to_string(lanes) + " lane=" +
                    std::to_string(lane);
                const std::vector<uint32_t> defects =
                    laneDefects(words, lane);
                reference->predecode(defects, budget, serial_ws,
                                     serial_result);
                EXPECT_EQ(block_result.obsMask[lane],
                          serial_result.obsMask)
                    << label;
                EXPECT_EQ(block_result.weight[lane],
                          serial_result.weight)
                    << label; // exact ==: same accumulation order
                EXPECT_EQ(block_result.cycles[lane],
                          serial_result.cycles)
                    << label;
                EXPECT_EQ(block_result.rounds[lane],
                          serial_result.rounds)
                    << label;
                EXPECT_EQ(
                    (block_result.decodedAllMask >> lane) & 1,
                    serial_result.decodedAll ? 1u : 0u)
                    << label;
                EXPECT_EQ(
                    (block_result.forwardedMask >> lane) & 1,
                    serial_result.forwarded ? 1u : 0u)
                    << label;
                // Reassemble the lane's residual from the sparse
                // column lists.
                std::vector<uint32_t> residual;
                for (size_t r = 0;
                     r < block_result.residualDets.size(); ++r) {
                    if ((block_result.residualWords[r] >> lane) &
                        1) {
                        residual.push_back(
                            block_result.residualDets[r]);
                    }
                }
                EXPECT_EQ(residual, serial_result.residual)
                    << label;
            }
            // No residual bits outside the requested lanes.
            for (uint64_t word : block_result.residualWords) {
                EXPECT_EQ(word & ~mask, 0u);
                EXPECT_NE(word, 0u); // sparse list: no empty rows
            }
        }
    }
}

TEST(BlockDecode, PredecodeBlockMatchesSerialOnSurfaceCode)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    expectPredecodeBlockMatchesSerial(ctx.graph(), ctx.paths(),
                                      0x91e, "d=5");
}

TEST(BlockDecode, PredecodeBlockMatchesSerialOnRandomDem)
{
    Rng dem_rng(0xfade);
    const DecodingGraph graph =
        DecodingGraph::fromDem(randomDem(dem_rng, 48));
    const PathTable paths(graph);
    expectPredecodeBlockMatchesSerial(graph, paths, 0xfad2,
                                      "random-dem");
}

TEST(BlockDecode, ScatterBlockLanesMatchesPerLaneExtraction)
{
    Rng rng(0x5ca7);
    std::vector<uint64_t> words(97);
    for (uint64_t &w : words) {
        w = rng.next64() & rng.next64(); // sparse-ish
    }
    std::array<std::vector<uint32_t>, 64> buckets;
    // Pre-poison an excluded lane's bucket: scatter must leave
    // lanes outside the mask untouched.
    buckets[63].assign({1234u});
    const uint64_t mask = laneMask64(63);
    scatterBlockLanes(words, mask, buckets);
    for (int lane = 0; lane < 63; ++lane) {
        EXPECT_EQ(buckets[lane], laneDefects(words, lane)) << lane;
    }
    EXPECT_EQ(buckets[63], std::vector<uint32_t>({1234u}));
}

} // namespace
} // namespace qec
