/**
 * @file
 * Degradation and fault-injection unit suites:
 *
 *  - TimeSource: steady/fake clock semantics (fake sleeps advance
 *    virtual time instead of blocking);
 *  - FaultInjector: seeded counter-RNG schedules are deterministic
 *    and the corruption helper produces exactly the out-of-range
 *    streams the taxonomy must catch;
 *  - PredecodeCommitDecoder: commits precisely what the predecoder
 *    resolved and counts the abandoned residual;
 *  - FallbackDecoder: bit-identical to tier 0 with the budget
 *    disabled, deterministic escalation under a fake clock, and
 *    clone-aggregated counters.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "qec/api/decoder_spec.hpp"
#include "qec/api/registry.hpp"
#include "qec/decoders/fallback.hpp"
#include "qec/decoders/latency.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/fault/fault_injector.hpp"
#include "qec/harness/context.hpp"
#include "qec/harness/importance_sampler.hpp"
#include "qec/util/rng.hpp"
#include "qec/util/time_source.hpp"

namespace qec
{
namespace
{

const ExperimentContext &
faultContext()
{
    return ExperimentContext::get(5, 1e-3);
}

// ---------------------------------------------------------------
// TimeSource
// ---------------------------------------------------------------

TEST(TimeSource, SteadyClockIsMonotonic)
{
    TimeSource &clock = steadyTimeSource();
    const uint64_t a = clock.nowNs();
    const uint64_t b = clock.nowNs();
    EXPECT_GE(b, a);
}

TEST(TimeSource, FakeClockAdvancesOnDemandAndOnSleep)
{
    FakeTimeSource clock(500);
    EXPECT_EQ(clock.nowNs(), 500u);
    clock.advance(250);
    EXPECT_EQ(clock.nowNs(), 750u);
    // sleepNs must not block: it advances virtual time, so backoff
    // loops driven by a fake clock terminate deterministically.
    clock.sleepNs(1'000'000'000);
    EXPECT_EQ(clock.nowNs(), 1'000'000'750u);
}

// ---------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------

TEST(FaultInjector, ScheduleIsDeterministicPerSeed)
{
    FaultPlan plan;
    plan.stallProbability = 0.3;
    plan.rejectProbability = 0.5;
    FaultInjector a(0x5eed, plan);
    FaultInjector b(0x5eed, plan);
    for (int i = 0; i < 200; ++i) {
        uint64_t nsA = 0, nsB = 0;
        EXPECT_EQ(a.injectStall(&nsA), b.injectStall(&nsB)) << i;
        EXPECT_EQ(a.injectReject(), b.injectReject()) << i;
    }
    EXPECT_EQ(a.counts().stalls, b.counts().stalls);
    EXPECT_EQ(a.counts().rejects, b.counts().rejects);
    EXPECT_GT(a.counts().stalls, 0u);
    EXPECT_GT(a.counts().rejects, 0u);

    // A different seed draws a different decision sequence (the
    // rate stays the same, the schedule does not).
    FaultInjector c(0x5eed, plan);
    FaultInjector d(0xd1ff, plan);
    int diverged = 0;
    for (int i = 0; i < 200; ++i) {
        uint64_t nsC = 0, nsD = 0;
        diverged +=
            c.injectStall(&nsC) != d.injectStall(&nsD) ? 1 : 0;
    }
    EXPECT_GT(diverged, 0);
}

TEST(FaultInjector, DisabledSitesNeverFire)
{
    FaultInjector quiet(1); // All probabilities default to 0.
    uint64_t ns = 0;
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(quiet.injectStall(&ns));
        EXPECT_FALSE(quiet.injectReject());
        EXPECT_FALSE(quiet.injectThrow());
    }
    const FaultInjector::Counts counts = quiet.counts();
    EXPECT_EQ(counts.stalls + counts.rejects + counts.throws, 0u);
}

TEST(FaultInjector, CorruptionProducesOutOfRangeAscendingStream)
{
    FaultPlan plan;
    plan.corruptProbability = 1.0;
    FaultInjector always(7, plan);
    const uint32_t numDetectors = 64;

    SyndromeStream stream;
    stream.rounds = 2;
    stream.detectorsPerRound = 4;
    stream.defects = {1, 5, 9};
    stream.layerOffsets = {0, 1, 2, 3};
    SyndromeStream scratch;
    const SyndromeStream *out =
        always.maybeCorrupt(stream, scratch, numDetectors);
    ASSERT_EQ(out, &scratch);
    EXPECT_EQ(out->defects.back(), numDetectors);
    for (size_t i = 1; i < out->defects.size(); ++i) {
        EXPECT_GT(out->defects[i], out->defects[i - 1]);
    }
    // The original stream is untouched.
    EXPECT_EQ(stream.defects.back(), 9u);

    // Empty streams gain one impossible defect, CSR-consistently.
    SyndromeStream empty;
    empty.rounds = 2;
    empty.detectorsPerRound = 4;
    empty.layerOffsets = {0, 0, 0, 0};
    out = always.maybeCorrupt(empty, scratch, numDetectors);
    ASSERT_EQ(out->defects.size(), 1u);
    EXPECT_EQ(out->defects[0], numDetectors);
    EXPECT_EQ(out->layerOffsets.back(), 1u);

    FaultInjector never(7); // corruptProbability 0.
    EXPECT_EQ(never.maybeCorrupt(stream, scratch, numDetectors),
              &stream);
}

TEST(FaultInjector, WedgeMaskIsPerWorker)
{
    FaultInjector faults(3);
    EXPECT_FALSE(faults.wedged(0));
    faults.wedge(0);
    faults.wedge(5);
    EXPECT_TRUE(faults.wedged(0));
    EXPECT_TRUE(faults.wedged(5));
    EXPECT_FALSE(faults.wedged(1));
    faults.release(0);
    EXPECT_FALSE(faults.wedged(0));
    EXPECT_TRUE(faults.wedged(5));
}

// ---------------------------------------------------------------
// PredecodeCommitDecoder
// ---------------------------------------------------------------

TEST(PredecodeCommit, CommitsPredecoderResolutionAndFlagsResidual)
{
    const auto &ctx = faultContext();
    BuildContext bc{ctx.graph(), ctx.paths(), {}, {}, {}};
    PredecodeCommitDecoder commit(
        ctx.graph(), ctx.paths(),
        DecoderRegistry::instance().buildPredecoder("promatch",
                                                    bc));
    auto reference = DecoderRegistry::instance().buildPredecoder(
        "promatch", bc);

    // Same cycle budget the commit tier derives from its (default)
    // LatencyConfig, so budget-adaptive predecoders agree.
    const LatencyConfig latency;
    const long long budget = static_cast<long long>(
        latency.effectiveBudgetNs() / latency.nsPerCycle);

    ImportanceSampler sampler(ctx.dem(), 6);
    Rng rng(0xc0117);
    uint64_t expectFlagged = 0;
    int nonTrivial = 0;
    for (int k = 1; k <= 6; ++k) {
        for (int s = 0; s < 50; ++s) {
            const auto sample = sampler.sample(k, rng);
            const DecodeResult got =
                commit.decode(sample.defects);
            const PredecodeResult pre =
                reference->predecode(sample.defects, budget);
            // The commit tier answers with exactly what the
            // predecoder resolved; the residual is abandoned.
            EXPECT_EQ(got.predictedObs, pre.obsMask);
            EXPECT_FALSE(got.aborted);
            expectFlagged += pre.forwarded
                                 ? sample.defects.size()
                                 : (pre.decodedAll
                                        ? 0
                                        : pre.residual.size());
            nonTrivial += sample.defects.empty() ? 0 : 1;
        }
    }
    EXPECT_GT(nonTrivial, 100);
    EXPECT_EQ(commit.flaggedDefects(), expectFlagged);
    EXPECT_GT(commit.flaggedDefects(), 0u);

    // Clones aggregate into the same counter.
    auto clone = commit.clone();
    const uint32_t lone[] = {0};
    (void)clone->decode(lone);
    EXPECT_GE(commit.flaggedDefects(), expectFlagged);
    commit.resetFlagged();
    EXPECT_EQ(commit.flaggedDefects(), 0u);
}

// ---------------------------------------------------------------
// FallbackDecoder
// ---------------------------------------------------------------

/**
 * Test tier: forwards to an inner decoder and advances a fake
 * clock by a fixed cost per decode, so escalation fires at exact,
 * reproducible instants.
 */
class TimedDecoder final : public Decoder
{
  public:
    TimedDecoder(std::unique_ptr<Decoder> inner,
                 FakeTimeSource &clock, uint64_t costNs)
        : Decoder(inner->graph(), inner->paths()),
          inner_(std::move(inner)), clock_(clock), costNs_(costNs)
    {
    }

    using Decoder::decode;
    DecodeResult
    decode(std::span<const uint32_t> defects,
           DecodeWorkspace &workspace,
           DecodeTrace *trace = nullptr) override
    {
        clock_.advance(costNs_);
        return inner_->decode(defects, workspace, trace);
    }

    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<TimedDecoder>(inner_->clone(),
                                              clock_, costNs_);
    }

    std::string name() const override { return "Timed"; }

  private:
    std::unique_ptr<Decoder> inner_;
    FakeTimeSource &clock_;
    uint64_t costNs_;
};

TEST(Fallback, DisabledBudgetIsBitIdenticalToPrimary)
{
    const auto &ctx = faultContext();
    auto primary = build(DecoderSpec::parse("promatch+astrea"),
                         ctx.graph(), ctx.paths());
    auto ladder = makeDegradationLadder(
        ctx.graph(), ctx.paths(), {"promatch+astrea", "sparse"},
        "pinball");
    ASSERT_EQ(ladder->tierCount(), 3u);

    ImportanceSampler sampler(ctx.dem(), 6);
    Rng rng(0xb17);
    uint64_t decodes = 0;
    for (int k = 1; k <= 6; ++k) {
        for (int s = 0; s < 50; ++s) {
            const auto sample = sampler.sample(k, rng);
            const DecodeResult a =
                primary->decode(sample.defects);
            const DecodeResult b =
                ladder->decode(sample.defects);
            ASSERT_EQ(a.predictedObs, b.predictedObs);
            ASSERT_EQ(a.weight, b.weight);
            ASSERT_EQ(a.latencyNs, b.latencyNs);
            ASSERT_EQ(a.aborted, b.aborted);
            ++decodes;
        }
    }
    const FallbackStats stats = ladder->stats();
    ASSERT_EQ(stats.tierUsed.size(), 3u);
    EXPECT_EQ(stats.tierUsed[0], decodes);
    EXPECT_EQ(stats.tierUsed[1], 0u);
    EXPECT_EQ(stats.tierUsed[2], 0u);
    EXPECT_EQ(stats.escalations, 0u);
    EXPECT_EQ(stats.overruns, 0u);
}

TEST(Fallback, EscalatesDownLadderWhenBudgetFires)
{
    const auto &ctx = faultContext();
    FakeTimeSource clock;

    // Tier 0 costs 10 us per decode, tier 1 costs 1 us; with a
    // 5 us budget every decode escalates exactly once and answers
    // from tier 1.
    std::vector<std::unique_ptr<Decoder>> tiers;
    tiers.push_back(std::make_unique<TimedDecoder>(
        build(DecoderSpec::parse("mwpm"), ctx.graph(),
              ctx.paths()),
        clock, 10'000));
    tiers.push_back(std::make_unique<TimedDecoder>(
        build(DecoderSpec::parse("sparse"), ctx.graph(),
              ctx.paths()),
        clock, 1'000));
    FallbackConfig config;
    config.budgetNs = 5'000;
    config.time = &clock;
    FallbackDecoder ladder(ctx.graph(), ctx.paths(),
                           std::move(tiers), config);

    auto reference = build(DecoderSpec::parse("sparse"),
                           ctx.graph(), ctx.paths());
    ImportanceSampler sampler(ctx.dem(), 4);
    Rng rng(0xe5c);
    uint64_t decodes = 0;
    for (int s = 0; s < 100; ++s) {
        const auto sample = sampler.sample(3, rng);
        const DecodeResult got = ladder.decode(sample.defects);
        const DecodeResult want =
            reference->decode(sample.defects);
        ASSERT_EQ(got.predictedObs, want.predictedObs);
        ++decodes;
    }
    const FallbackStats stats = ladder.stats();
    EXPECT_EQ(stats.tierUsed[0], 0u);
    EXPECT_EQ(stats.tierUsed[1], decodes);
    EXPECT_EQ(stats.escalations, decodes);
    EXPECT_EQ(stats.overruns, 0u);
}

TEST(Fallback, LastTierOverrunIsAcceptedAndCounted)
{
    const auto &ctx = faultContext();
    FakeTimeSource clock;
    std::vector<std::unique_ptr<Decoder>> tiers;
    tiers.push_back(std::make_unique<TimedDecoder>(
        build(DecoderSpec::parse("mwpm"), ctx.graph(),
              ctx.paths()),
        clock, 10'000));
    FallbackConfig config;
    config.budgetNs = 1'000;
    config.time = &clock;
    FallbackDecoder ladder(ctx.graph(), ctx.paths(),
                           std::move(tiers), config);

    const uint32_t defects[] = {0, 1};
    const DecodeResult got = ladder.decode(defects);
    (void)got;
    const FallbackStats stats = ladder.stats();
    EXPECT_EQ(stats.tierUsed[0], 1u);
    EXPECT_EQ(stats.overruns, 1u);
    EXPECT_EQ(stats.escalations, 0u);
}

TEST(Fallback, ClonesShareAggregatedStats)
{
    const auto &ctx = faultContext();
    auto ladder = makeDegradationLadder(ctx.graph(), ctx.paths(),
                                        {"mwpm", "sparse"});
    auto clone = ladder->clone();
    const uint32_t defects[] = {0, 1};
    (void)ladder->decode(defects);
    (void)clone->decode(defects);
    EXPECT_EQ(ladder->stats().tierUsed[0], 2u);
    ladder->resetStats();
    EXPECT_EQ(ladder->stats().tierUsed[0], 0u);
}

TEST(Fallback, LadderBuilderRejectsUnknownComponents)
{
    const auto &ctx = faultContext();
    EXPECT_THROW(makeDegradationLadder(ctx.graph(), ctx.paths(),
                                       {"no_such_decoder"}),
                 SpecError);
    EXPECT_THROW(makeDegradationLadder(ctx.graph(), ctx.paths(),
                                       {"mwpm"},
                                       "no_such_predecoder"),
                 SpecError);
}

} // namespace
} // namespace qec
