/**
 * @file
 * Unit tests for qec::util (rng, bitvec, stats, eytzinger).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "qec/util/bitvec.hpp"
#include "qec/util/eytzinger.hpp"
#include "qec/util/rng.hpp"
#include "qec/util/stats.hpp"

namespace qec
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next64(), b.next64());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += (a.next64() == b.next64());
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.nextDouble();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(99);
    std::set<uint64_t> seen;
    for (int i = 0; i < 3000; ++i) {
        const uint64_t v = rng.nextBelow(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // All residues hit.
}

TEST(Rng, BiasedMaskMatchesProbability)
{
    Rng rng(42);
    const double p = 0.03;
    uint64_t ones = 0;
    const int batches = 20000;
    for (int i = 0; i < batches; ++i) {
        ones += std::popcount(rng.biasedMask64(p));
    }
    const double rate = static_cast<double>(ones) / (64.0 * batches);
    EXPECT_NEAR(rate, p, 0.002);
}

TEST(Rng, BiasedMaskEdgeCases)
{
    Rng rng(5);
    EXPECT_EQ(rng.biasedMask64(0.0), 0ull);
    EXPECT_EQ(rng.biasedMask64(1.0), ~0ull);
}

TEST(Rng, BinomialMeanIsNP)
{
    Rng rng(11);
    const int n = 64;
    const double p = 0.1;
    double total = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        total += rng.nextBinomial(n, p);
    }
    EXPECT_NEAR(total / trials, n * p, 0.1);
}

TEST(Rng, WeightedSampleDistinctReturnsDistinct)
{
    Rng rng(3);
    std::vector<double> weights = {1, 2, 3, 4, 5, 6, 7, 8};
    for (int trial = 0; trial < 100; ++trial) {
        auto picks = rng.weightedSampleDistinct(weights, 5);
        std::set<uint32_t> unique(picks.begin(), picks.end());
        EXPECT_EQ(unique.size(), 5u);
        for (uint32_t idx : picks) {
            EXPECT_LT(idx, weights.size());
        }
    }
}

TEST(Rng, WeightedSampleDistinctFavorsHeavyItems)
{
    Rng rng(17);
    std::vector<double> weights = {0.001, 1000.0, 0.001};
    int heavy_hits = 0;
    for (int trial = 0; trial < 500; ++trial) {
        auto picks = rng.weightedSampleDistinct(weights, 1);
        heavy_hits += (picks[0] == 1);
    }
    EXPECT_GT(heavy_hits, 490);
}

TEST(BitVec, SetGetFlip)
{
    BitVec bits(130);
    EXPECT_EQ(bits.size(), 130u);
    EXPECT_TRUE(bits.none());
    bits.set(0, true);
    bits.set(129, true);
    bits.flip(64);
    EXPECT_TRUE(bits.get(0));
    EXPECT_TRUE(bits.get(64));
    EXPECT_TRUE(bits.get(129));
    EXPECT_FALSE(bits.get(1));
    EXPECT_EQ(bits.popcount(), 3u);
    bits.flip(64);
    EXPECT_FALSE(bits.get(64));
}

TEST(BitVec, XorAndOnesIndices)
{
    BitVec a(100), b(100);
    a.set(3, true);
    a.set(77, true);
    b.set(77, true);
    b.set(99, true);
    a ^= b;
    const auto ones = a.onesIndices();
    EXPECT_EQ(ones, (std::vector<uint32_t>{3, 99}));
}

TEST(BitVec, ClearResets)
{
    BitVec a(65);
    a.set(64, true);
    a.clear();
    EXPECT_TRUE(a.none());
}

TEST(WeightedStats, MeanAndExtremes)
{
    WeightedStats stats;
    stats.add(10.0, 1.0);
    stats.add(20.0, 3.0);
    EXPECT_DOUBLE_EQ(stats.mean(), (10.0 + 60.0) / 4.0);
    EXPECT_DOUBLE_EQ(stats.max(), 20.0);
    EXPECT_DOUBLE_EQ(stats.min(), 10.0);
    EXPECT_EQ(stats.count(), 2u);
}

TEST(WeightedStats, EmptyIsZero)
{
    WeightedStats stats;
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(RateStats, RateAndWilson)
{
    RateStats rate;
    for (int i = 0; i < 90; ++i) {
        rate.add(false);
    }
    for (int i = 0; i < 10; ++i) {
        rate.add(true);
    }
    EXPECT_DOUBLE_EQ(rate.rate(), 0.1);
    EXPECT_GT(rate.wilsonHalfWidth(), 0.0);
    EXPECT_LT(rate.wilsonHalfWidth(), 0.1);
}

TEST(Eytzinger, UpperBoundMatchesStdUpperBound)
{
    // The index must return the exact std::upper_bound rank for
    // every query — below, above, between, and exactly on elements
    // (duplicates included) — across array sizes around powers of
    // two. The importance sampler's bit-identity rests on this.
    Rng rng(0xe7ce);
    for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                     size_t{7}, size_t{8}, size_t{9}, size_t{100},
                     size_t{1000}}) {
        std::vector<double> sorted;
        sorted.reserve(n);
        double acc = 0.0;
        for (size_t i = 0; i < n; ++i) {
            // Occasional zero-width steps create duplicate values.
            acc += (rng.nextBelow(4) == 0) ? 0.0
                                           : rng.nextDouble() + 0.1;
            sorted.push_back(acc);
        }
        EytzingerIndex index(sorted);
        ASSERT_EQ(index.size(), n);

        auto check = [&](double q) {
            const size_t expected = static_cast<size_t>(
                std::upper_bound(sorted.begin(), sorted.end(), q) -
                sorted.begin());
            ASSERT_EQ(index.upperBound(q), expected)
                << "n=" << n << " q=" << q;
        };
        check(-1.0);
        check(acc + 1.0);
        for (size_t i = 0; i < n; ++i) {
            check(sorted[i]); // Exactly on an element (tie rule).
            check(sorted[i] - 1e-9);
            check(sorted[i] + 1e-9);
        }
        for (int t = 0; t < 200; ++t) {
            check(rng.nextDouble() * (acc + 1.0));
        }
    }
}

} // namespace
} // namespace qec
