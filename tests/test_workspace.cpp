/**
 * @file
 * The DecodeWorkspace memory-contract suite:
 *
 *  - a counting global allocator proves that steady-state decoding
 *    (after a warmup pass over the same syndrome set) performs
 *    ZERO heap allocations for promatch+astrea, astrea_g, and
 *    mwpm — both through an explicit caller-owned workspace and
 *    through the decoder's internal one;
 *  - decode results are bit-identical with and without an explicit
 *    workspace, serially and through decodeBatch at threads
 *    {1, 8};
 *  - MonotonicArena / ArenaVector unit behavior (reset keeps
 *    capacity, growth preserves contents);
 *  - SyndromeSubgraph rebuild-in-place equivalence.
 *
 * The allocator instrumentation replaces the global operator
 * new/delete for this test binary; it only counts, never changes
 * behavior, and each gtest case runs in its own ctest process.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <string>
#include <vector>

#include "qec/api/decoder_spec.hpp"
#include "qec/api/registry.hpp"
#include "qec/decoders/workspace.hpp"
#include "qec/harness/context.hpp"
#include "qec/harness/importance_sampler.hpp"
#include "qec/harness/ler_estimator.hpp"
#include "qec/serve/server.hpp"
#include "qec/serve/stream.hpp"
#include "qec/util/arena.hpp"
#include "qec/util/rng.hpp"

namespace
{
std::atomic<uint64_t> g_allocations{0};

void *
countedAlloc(std::size_t size)
{
    ++g_allocations;
    void *p = std::malloc(size ? size : 1);
    if (!p) {
        throw std::bad_alloc();
    }
    return p;
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    ++g_allocations;
    // aligned_alloc requires the size to be a multiple of the
    // alignment.
    const std::size_t padded = (size + align - 1) / align * align;
    void *p = std::aligned_alloc(align, padded ? padded : align);
    if (!p) {
        throw std::bad_alloc();
    }
    return p;
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size,
                               static_cast<std::size_t>(align));
}
void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size,
                               static_cast<std::size_t>(align));
}
void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace qec
{
namespace
{

/** Mixed-HW syndrome set; k up to 14 at d = 7 reliably produces
 *  HW > 10 syndromes, so the Promatch stage genuinely engages. */
std::vector<std::vector<uint32_t>>
syndromeSet(const ExperimentContext &ctx)
{
    ImportanceSampler sampler(ctx.dem(), 16);
    std::vector<std::vector<uint32_t>> set;
    set.emplace_back(); // Empty syndrome.
    for (int k = 2; k <= 14; k += 2) {
        for (int i = 0; i < 10; ++i) {
            Rng rng = Rng::forSample(0x5eed, k, i);
            set.push_back(sampler.sample(k, rng).defects);
        }
    }
    return set;
}

const char *const kZeroAllocSpecs[] = {"promatch+astrea",
                                       "astrea_g", "mwpm",
                                       "pinball+mwpm",
                                       "pinball+astrea",
                                       "sparse",
                                       "promatch+sparse"};

TEST(WorkspaceZeroAlloc, ExplicitWorkspaceSteadyState)
{
    const auto &ctx = ExperimentContext::get(7, 1e-3);
    const auto batch = syndromeSet(ctx);
    bool saw_high_hw = false;
    for (const auto &s : batch) {
        saw_high_hw = saw_high_hw || s.size() > 10;
    }
    ASSERT_TRUE(saw_high_hw)
        << "syndrome set never engages the predecoder";

    for (const char *spec : kZeroAllocSpecs) {
        auto decoder = build(DecoderSpec::parse(spec),
                             ctx.graph(), ctx.paths());
        DecodeWorkspace workspace;
        // Warmup: every scratch buffer reaches its high-water
        // capacity for this syndrome set.
        uint64_t sink = 0;
        for (const auto &s : batch) {
            sink ^= decoder->decode(s, workspace).predictedObs;
        }
        const uint64_t before = g_allocations.load();
        for (const auto &s : batch) {
            sink ^= decoder->decode(s, workspace).predictedObs;
        }
        const uint64_t after = g_allocations.load();
        EXPECT_EQ(after - before, 0u)
            << spec << " allocated in steady state (sink=" << sink
            << ")";
    }
}

TEST(WorkspaceZeroAlloc, InternalWorkspaceSteadyState)
{
    const auto &ctx = ExperimentContext::get(7, 1e-3);
    const auto batch = syndromeSet(ctx);
    for (const char *spec : kZeroAllocSpecs) {
        auto decoder = build(DecoderSpec::parse(spec),
                             ctx.graph(), ctx.paths());
        uint64_t sink = 0;
        for (const auto &s : batch) {
            sink ^= decoder->decode(s).predictedObs;
        }
        const uint64_t before = g_allocations.load();
        for (const auto &s : batch) {
            sink ^= decoder->decode(s).predictedObs;
        }
        const uint64_t after = g_allocations.load();
        EXPECT_EQ(after - before, 0u)
            << spec << " allocated in steady state (sink=" << sink
            << ")";
    }
}

TEST(WorkspaceZeroAlloc, DecodeBlockSteadyState)
{
    // The 64-lane block path must also run allocation-free once
    // warm: scatter, predecodeBlock word kernels, the shared union
    // gather, and the per-lane compose all draw from workspace- or
    // arena-owned scratch.
    const auto &ctx = ExperimentContext::get(7, 1e-3);
    const auto batch = syndromeSet(ctx);
    const size_t lanes = std::min<size_t>(batch.size(), 64);
    std::vector<uint64_t> words(ctx.graph().numDetectors(), 0);
    for (size_t lane = 0; lane < lanes; ++lane) {
        for (uint32_t det : batch[lane]) {
            words[det] |= uint64_t{1} << lane;
        }
    }

    for (const char *spec : kZeroAllocSpecs) {
        auto decoder = build(DecoderSpec::parse(spec),
                             ctx.graph(), ctx.paths());
        DecodeWorkspace workspace;
        DecodeResult results[64];
        // Warmup. More than one pass: the arena coalesces overflow
        // chunks on the reset *after* the cycle that overflowed, so
        // a block path whose first call multi-chunks needs a second
        // cycle to converge (serial decodes get 71 cycles per pass
        // here; a block call is a single cycle).
        for (int pass = 0; pass < 3; ++pass) {
            decoder->decodeBlock(words, static_cast<int>(lanes),
                                 workspace, results);
        }
        const uint64_t before = g_allocations.load();
        decoder->decodeBlock(words, static_cast<int>(lanes),
                             workspace, results);
        const uint64_t after = g_allocations.load();
        EXPECT_EQ(after - before, 0u)
            << spec << " decodeBlock allocated in steady state";
    }
}

void
expectSameResult(const DecodeResult &a, const DecodeResult &b,
                 const std::string &label)
{
    EXPECT_EQ(a.predictedObs, b.predictedObs) << label;
    EXPECT_EQ(a.weight, b.weight) << label;
    EXPECT_EQ(a.latencyNs, b.latencyNs) << label;
    EXPECT_EQ(a.aborted, b.aborted) << label;
    EXPECT_EQ(a.realTime, b.realTime) << label;
}

TEST(Workspace, ExplicitAndInternalWorkspacesAreBitIdentical)
{
    // The same decoder must produce identical results whether the
    // caller supplies a (reused) workspace, relies on the internal
    // one, or decodes through the threaded batch path — at thread
    // counts 1 and 8.
    const auto &ctx = ExperimentContext::get(7, 1e-3);
    const auto batch = syndromeSet(ctx);
    for (const char *spec : kZeroAllocSpecs) {
        auto internal = build(DecoderSpec::parse(spec),
                              ctx.graph(), ctx.paths());
        auto explicit_ws = build(DecoderSpec::parse(spec),
                                 ctx.graph(), ctx.paths());
        DecodeWorkspace workspace;
        std::vector<DecodeResult> reference;
        reference.reserve(batch.size());
        for (const auto &s : batch) {
            reference.push_back(internal->decode(s));
        }
        for (size_t i = 0; i < batch.size(); ++i) {
            expectSameResult(
                reference[i],
                explicit_ws->decode(batch[i], workspace),
                std::string(spec) + " explicit-ws sample " +
                    std::to_string(i));
        }
        for (int threads : {1, 8}) {
            const std::vector<DecodeResult> batched =
                internal->decodeBatch(batch, nullptr, threads);
            ASSERT_EQ(batched.size(), batch.size());
            for (size_t i = 0; i < batch.size(); ++i) {
                expectSameResult(
                    reference[i], batched[i],
                    std::string(spec) + " threads=" +
                        std::to_string(threads) + " sample " +
                        std::to_string(i));
            }
        }
    }
}

TEST(WorkspaceZeroAlloc, SamplerInPlaceSteadyState)
{
    // The in-place sample() overload must draw without touching the
    // heap once its Sample's buffers are warm — the sample stage is
    // 42% of the pinball stack's serial time, so a per-draw
    // allocation there is a measurable regression.
    const auto &ctx = ExperimentContext::get(7, 1e-3);
    ImportanceSampler sampler(ctx.dem(), 16);
    ImportanceSampler::Sample slot;

    auto drawAll = [&] {
        uint64_t sink = 0;
        // Fresh Rng per pass: the measured pass replays exactly the
        // warmup draws, so no buffer can outgrow its warm capacity.
        Rng rng = Rng::forSample(0xa110c, 1, 0);
        for (int k = 1; k <= 16; ++k) {
            for (int i = 0; i < 20; ++i) {
                sampler.sample(k, rng, slot);
                sink ^= slot.obsMask ^ slot.defects.size();
            }
        }
        return sink;
    };

    const uint64_t warm = drawAll();
    const uint64_t before = g_allocations.load();
    const uint64_t measured = drawAll();
    const uint64_t after = g_allocations.load();
    EXPECT_EQ(after - before, 0u)
        << "in-place sampling allocated in steady state";
    EXPECT_EQ(warm, measured); // Identical replay, same draws.
}

TEST(WorkspaceZeroAlloc, DecodeServerSteadyState)
{
    // A warm DecodeServer must serve steady-state traffic with zero
    // heap allocations end to end: admission (slot + ring), the
    // per-worker streaming decode, latency recording, and the
    // response handler. One worker so both passes warm the same
    // engine regardless of scheduling.
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    const int detPerRound = static_cast<int>(
        ctx.experiment().circuit.numDetectors() /
        static_cast<size_t>(ctx.rounds() + 1));
    const auto streams = sampleStreams(ctx, 0x2e20, 64);
    auto proto = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                       ctx.paths());

    std::vector<uint64_t> results(streams.size(), 0);
    ServeConfig config;
    config.workers = 1;
    config.queueCapacity = 64;
    DecodeServer server(*proto, detPerRound, config,
                        [&](const DecodeResponse &r) {
                            results[r.tag] = r.correctedObs;
                        });

    auto pass = [&] {
        for (size_t i = 0; i < streams.size(); ++i) {
            while (!server.submit(streams[i], i)) {
            }
        }
        server.drain();
    };

    pass(); // Warmup: every scratch structure reaches capacity.
    const uint64_t before = g_allocations.load();
    pass();
    const uint64_t after = g_allocations.load();
    EXPECT_EQ(after - before, 0u)
        << "serving path allocated in steady state";
    server.stop();
    EXPECT_EQ(server.stats().completed, 2 * streams.size());
}

TEST(Workspace, LerEstimateUnchangedByThreadCount)
{
    // The harness threads one workspace per worker; the estimate
    // must stay bit-identical between 1 and 8 workers (the
    // workspace refactor's regression guard on the engine).
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    for (const char *spec : kZeroAllocSpecs) {
        auto decoder = build(DecoderSpec::parse(spec),
                             ctx.graph(), ctx.paths());
        LerOptions options;
        options.kMax = 6;
        options.samplesPerK = 150;
        options.threads = 1;
        const LerEstimate serial =
            estimateLer(ctx, *decoder, options);
        options.threads = 8;
        const LerEstimate parallel =
            estimateLer(ctx, *decoder, options);
        EXPECT_EQ(serial.ler, parallel.ler) << spec;
        ASSERT_EQ(serial.perK.size(), parallel.perK.size());
        for (size_t i = 0; i < serial.perK.size(); ++i) {
            EXPECT_EQ(serial.perK[i].failures,
                      parallel.perK[i].failures)
                << spec << " k=" << serial.perK[i].k;
        }
    }
}

TEST(Arena, ResetKeepsCapacityAndStopsAllocating)
{
    MonotonicArena arena(64);
    // Force growth across several chunks.
    for (int i = 0; i < 100; ++i) {
        arena.allocate<uint64_t>(16);
    }
    const size_t high_water = arena.used();
    EXPECT_EQ(high_water, 100u * 16u * sizeof(uint64_t));
    arena.reset();
    EXPECT_EQ(arena.used(), 0u);
    EXPECT_GE(arena.capacity(), high_water);

    // Steady state: same usage pattern, no new heap allocations.
    arena.reset();
    const uint64_t before = g_allocations.load();
    for (int cycle = 0; cycle < 10; ++cycle) {
        arena.reset();
        for (int i = 0; i < 100; ++i) {
            arena.allocate<uint64_t>(16);
        }
    }
    EXPECT_EQ(g_allocations.load() - before, 0u);
}

TEST(Arena, AllocationsAreAlignedAndDisjoint)
{
    MonotonicArena arena(32);
    auto *a = arena.allocate<uint8_t>(3);
    auto *b = arena.allocate<uint64_t>(2);
    auto *c = arena.allocate<uint32_t>(5);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(uint64_t),
              0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % alignof(uint32_t),
              0u);
    // Writes must not overlap.
    for (int i = 0; i < 3; ++i) a[i] = 0xAB;
    for (int i = 0; i < 2; ++i) b[i] = ~0ull;
    for (int i = 0; i < 5; ++i) c[i] = 0x12345678u;
    EXPECT_EQ(a[0], 0xAB);
    EXPECT_EQ(b[1], ~0ull);
    EXPECT_EQ(c[4], 0x12345678u);
}

TEST(Arena, ArenaVectorGrowsAndKeepsContents)
{
    MonotonicArena arena(64);
    ArenaVector<int> v(arena, 4);
    for (int i = 0; i < 1000; ++i) {
        v.push_back(i);
    }
    ASSERT_EQ(v.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(v[i], i);
    }
    v.clear();
    EXPECT_TRUE(v.empty());
}

TEST(Workspace, SyndromeSubgraphIncrementalLivenessMatchesRecompute)
{
    // kill() maintains the live degree / #dependent counters
    // incrementally and refresh() publishes only the dirty entries;
    // after any kill sequence + refresh, the published counters
    // must equal a from-scratch recompute over the alive set (the
    // historical O(V+E) refresh semantics).
    const auto &ctx = ExperimentContext::get(7, 1e-3);
    ImportanceSampler sampler(ctx.dem(), 14);
    SyndromeSubgraph subgraph;
    Rng rng(0x1d1e);
    for (int round = 0; round < 30; ++round) {
        const auto sample = sampler.sample(2 + round % 12, rng);
        subgraph.build(ctx.graph(), sample.defects);
        const int n = subgraph.size();
        // Random kill sequence with refresh() at random points;
        // compare the published snapshot against a from-scratch
        // recompute after every refresh.
        std::vector<int> alive_order(n);
        std::iota(alive_order.begin(), alive_order.end(), 0);
        int remaining = n;
        while (remaining > 0) {
            // Kill 1..3 random alive nodes, then refresh + check.
            const int burst =
                1 + static_cast<int>(rng.nextBelow(3));
            for (int b = 0; b < burst && remaining > 0; ++b) {
                const int pick = static_cast<int>(
                    rng.nextBelow(static_cast<uint64_t>(remaining)));
                std::swap(alive_order[pick],
                          alive_order[remaining - 1]);
                subgraph.kill(alive_order[remaining - 1]);
                --remaining;
            }
            subgraph.refresh();

            std::vector<int> ref_deg(n, 0), ref_dep(n, 0);
            for (int i = 0; i < n; ++i) {
                if (!subgraph.alive(i)) {
                    continue;
                }
                for (int j : subgraph.neighbors(i)) {
                    if (subgraph.alive(j)) {
                        ++ref_deg[i];
                    }
                }
            }
            for (int i = 0; i < n; ++i) {
                if (!subgraph.alive(i)) {
                    continue;
                }
                for (int j : subgraph.neighbors(i)) {
                    if (subgraph.alive(j) && ref_deg[j] == 1) {
                        ++ref_dep[i];
                    }
                }
            }
            for (int i = 0; i < n; ++i) {
                ASSERT_EQ(subgraph.degree(i), ref_deg[i])
                    << "degree mismatch at node " << i
                    << " remaining=" << remaining;
                ASSERT_EQ(subgraph.dependentCount(i), ref_dep[i])
                    << "dependent mismatch at node " << i
                    << " remaining=" << remaining;
            }
        }
        EXPECT_EQ(subgraph.aliveCount(), 0);
    }
}

TEST(Workspace, SyndromeSubgraphRebuildsInPlace)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    ImportanceSampler sampler(ctx.dem(), 8);
    SyndromeSubgraph subgraph;
    Rng rng(7);
    for (int round = 0; round < 20; ++round) {
        const auto sample = sampler.sample(1 + round % 8, rng);
        subgraph.build(ctx.graph(), sample.defects);
        ASSERT_EQ(subgraph.size(),
                  static_cast<int>(sample.defects.size()));
        EXPECT_EQ(subgraph.aliveCount(), subgraph.size());
        for (int i = 0; i < subgraph.size(); ++i) {
            EXPECT_EQ(subgraph.det(i), sample.defects[i]);
            // Degree must equal the number of in-set neighbors,
            // and every neighbor row entry must point back.
            EXPECT_EQ(subgraph.degree(i),
                      static_cast<int>(
                          subgraph.neighbors(i).size()));
            for (int j : subgraph.neighbors(i)) {
                EXPECT_TRUE(subgraph.adjacent(j, i))
                    << "asymmetric adjacency at " << i << "," << j;
            }
        }
    }
}

} // namespace
} // namespace qec
