/**
 * @file
 * End-to-end integration tests: memory experiments through the full
 * stack, importance-sampling vs direct Monte-Carlo agreement, and
 * code-distance scaling of the logical error rate.
 */

#include <gtest/gtest.h>

#include "qec/decoders/factory.hpp"
#include "qec/decoders/mwpm_decoder.hpp"
#include "qec/harness/context.hpp"
#include "qec/harness/ler_estimator.hpp"

namespace qec
{
namespace
{

TEST(Integration, MwpmSuppressesErrorsBelowThreshold)
{
    // At p = 2e-3 (well below the ~1% threshold), the LER must fall
    // with distance.
    const auto &ctx3 = ExperimentContext::get(3, 2e-3);
    const auto &ctx5 = ExperimentContext::get(5, 2e-3);
    MwpmDecoder d3(ctx3.graph(), ctx3.paths());
    MwpmDecoder d5(ctx5.graph(), ctx5.paths());

    const DirectMcResult r3 =
        estimateLerDirect(ctx3, d3, 40000, 7);
    const DirectMcResult r5 =
        estimateLerDirect(ctx5, d5, 40000, 7);
    EXPECT_GT(r3.failures, 10u)
        << "test underpowered: raise shots";
    EXPECT_LT(r5.ler, r3.ler);
}

TEST(Integration, ImportanceSamplingMatchesDirectMonteCarlo)
{
    // The Eq. 1 estimator and plain Monte-Carlo must agree within
    // statistics at a rate where both are measurable.
    const auto &ctx = ExperimentContext::get(3, 3e-3);
    MwpmDecoder decoder(ctx.graph(), ctx.paths());

    LerOptions options;
    options.kMax = 12;
    options.samplesPerK = 4000;
    const LerEstimate importance =
        estimateLer(ctx, decoder, options);

    const DirectMcResult direct =
        estimateLerDirect(ctx, decoder, 300000, 3);

    ASSERT_GT(direct.failures, 50u)
        << "test underpowered: raise shots";
    // Allow generous tolerance: both estimators carry statistical
    // error and the conditional sampler is leading-order exact.
    EXPECT_GT(importance.ler, 0.4 * direct.ler);
    EXPECT_LT(importance.ler, 2.5 * direct.ler);
}

TEST(Integration, DecodersRankSensiblyAtD5)
{
    // Exact MWPM must not lose to union-find; Promatch+Astrea must
    // track MWPM closely at d=5 (all syndromes are low-HW there).
    const auto &ctx = ExperimentContext::get(5, 3e-3);
    auto mwpm = makeDecoder("mwpm", ctx.graph(), ctx.paths());
    auto uf = makeDecoder("union_find", ctx.graph(), ctx.paths());

    LerOptions options;
    options.kMax = 10;
    options.samplesPerK = 1500;
    const double ler_mwpm =
        estimateLer(ctx, *mwpm, options).ler;
    const double ler_uf = estimateLer(ctx, *uf, options).ler;
    EXPECT_LE(ler_mwpm, ler_uf * 1.05);
}

TEST(Integration, PromatchAstreaMatchesMwpmOnLowHw)
{
    // At d = 5 every relevant syndrome fits Astrea directly, so the
    // Promatch pipeline must reproduce MWPM-grade accuracy.
    const auto &ctx = ExperimentContext::get(5, 2e-3);
    auto promatch =
        makeDecoder("promatch_astrea", ctx.graph(), ctx.paths());
    auto mwpm = makeDecoder("mwpm", ctx.graph(), ctx.paths());

    LerOptions options;
    options.kMax = 8;
    options.samplesPerK = 1500;
    const double ler_pm =
        estimateLer(ctx, *promatch, options).ler;
    const double ler_mwpm =
        estimateLer(ctx, *mwpm, options).ler;
    EXPECT_LT(ler_pm, ler_mwpm * 2.0 + 1e-12);
}

TEST(Integration, ThreadedLerEstimateIsDeterministic)
{
    // LerOptions::threads shards sampling and decoding across
    // decoder clones, with sample i of the k-batch on its own
    // counter-based Rng::forSample(seed, k, i) stream — so the
    // estimate must be bit-identical for any thread count.
    const auto &ctx = ExperimentContext::get(5, 2e-3);
    auto decoder =
        makeDecoder("promatch_par_ag", ctx.graph(), ctx.paths());

    LerOptions serial;
    serial.kMax = 8;
    serial.samplesPerK = 500;
    LerOptions threaded = serial;
    threaded.threads = 4;

    const LerEstimate a = estimateLer(ctx, *decoder, serial);
    const LerEstimate b = estimateLer(ctx, *decoder, threaded);
    EXPECT_EQ(a.ler, b.ler);
    ASSERT_EQ(a.perK.size(), b.perK.size());
    for (size_t k = 0; k < a.perK.size(); ++k) {
        EXPECT_EQ(a.perK[k].failures, b.perK[k].failures) << k;
    }
}

TEST(Integration, NoiselessExperimentNeverFails)
{
    const ExperimentContext ctx(3, 1e-4, 3);
    // Decode noiseless shots: every decoder sees empty syndromes.
    MwpmDecoder decoder(ctx.graph(), ctx.paths());
    const ExperimentContext quiet(3, 1e-9, 3);
    const DirectMcResult result =
        estimateLerDirect(quiet, decoder, 5000, 1);
    EXPECT_EQ(result.failures, 0u);
}

TEST(Integration, OccurrenceProbabilitiesFormDistribution)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    ImportanceSampler sampler(ctx.dem(), 24);
    double total = 0.0;
    for (int k = 1; k <= 24; ++k) {
        EXPECT_GE(sampler.occurrenceProb(k), 0.0);
        total += sampler.occurrenceProb(k);
    }
    // P_o(0) + sum P_o(k) <= 1; with lambda ~ O(1) the tail above
    // k=24 is negligible.
    EXPECT_LT(total, 1.0);
    EXPECT_GT(total, 0.0);
    EXPECT_GT(sampler.expectedFaults(), 0.1);
}

TEST(Integration, SampleDefectsMatchInjectedParity)
{
    // A k-sample's defect list must equal the XOR of its mechanism
    // symptom sets — verified indirectly: decoding with MWPM and
    // checking failures are rare for k=1 (always correctable).
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    MwpmDecoder decoder(ctx.graph(), ctx.paths());
    ImportanceSampler sampler(ctx.dem(), 4);
    Rng rng(2);
    for (int s = 0; s < 500; ++s) {
        const auto sample = sampler.sample(1, rng);
        const DecodeResult result = decoder.decode(sample.defects);
        ASSERT_EQ(result.predictedObs, sample.obsMask);
    }
}

} // namespace
} // namespace qec
