/**
 * @file
 * Tests for the DecoderSpec registry API: parse/print round-trips,
 * option overrides, error paths, registry completeness against the
 * legacy factory names, and thread-safety of cloned stacks
 * (identical batch results with independent traces).
 */

#include <gtest/gtest.h>

#include <thread>

#include "qec/api/decoder_spec.hpp"
#include "qec/api/registry.hpp"
#include "qec/decoders/astrea.hpp"
#include "qec/decoders/factory.hpp"
#include "qec/decoders/parallel.hpp"
#include "qec/decoders/pipeline.hpp"
#include "qec/harness/context.hpp"
#include "qec/harness/importance_sampler.hpp"
#include "qec/predecode/pinball.hpp"
#include "qec/predecode/promatch.hpp"

namespace qec
{
namespace
{

TEST(DecoderSpec, ParsesPlainComponent)
{
    const DecoderSpec spec = DecoderSpec::parse("mwpm");
    EXPECT_EQ(spec.primary.main, "mwpm");
    EXPECT_TRUE(spec.primary.predecoder.empty());
    EXPECT_FALSE(spec.partner.has_value());
    EXPECT_TRUE(spec.options.empty());
    EXPECT_EQ(spec.toString(), "mwpm");
}

TEST(DecoderSpec, ParsesFullGrammar)
{
    const DecoderSpec spec = DecoderSpec::parse(
        "promatch+astrea||astrea_g?hw_threshold=10&promatch_lanes=2");
    EXPECT_EQ(spec.primary.predecoder, "promatch");
    EXPECT_EQ(spec.primary.main, "astrea");
    ASSERT_TRUE(spec.partner.has_value());
    EXPECT_TRUE(spec.partner->predecoder.empty());
    EXPECT_EQ(spec.partner->main, "astrea_g");
    EXPECT_EQ(spec.option("hw_threshold"), "10");
    EXPECT_EQ(spec.option("promatch_lanes"), "2");
    EXPECT_FALSE(spec.option("budget_ns").has_value());
}

TEST(DecoderSpec, RoundTripsThroughToString)
{
    const char *specs[] = {
        "mwpm",
        "astrea",
        "promatch+astrea",
        "clique+mwpm",
        "promatch+astrea||astrea_g",
        "smith+astrea||clique+astrea_g",
        "promatch+astrea||astrea_g?hw_threshold=8&step4=0",
        "pinball+mwpm",
        "pinball+astrea_g?pinball_boundary=0&pinball_rounds=3",
    };
    for (const char *text : specs) {
        const DecoderSpec spec = DecoderSpec::parse(text);
        EXPECT_EQ(spec.toString(), text) << text;
        EXPECT_EQ(DecoderSpec::parse(spec.toString()), spec)
            << text;
    }
}

TEST(DecoderSpec, ToStringIsCanonicalOnOptionOrder)
{
    const DecoderSpec a =
        DecoderSpec::parse("astrea?hw_threshold=8&budget_ns=500");
    const DecoderSpec b =
        DecoderSpec::parse("astrea?budget_ns=500&hw_threshold=8");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.toString(), "astrea?budget_ns=500&hw_threshold=8");
    EXPECT_EQ(a.toString(), b.toString());
}

TEST(DecoderSpec, RejectsMalformedSpecs)
{
    const char *malformed[] = {
        "",                      // empty
        "+astrea",               // empty predecoder
        "promatch+",             // empty main
        "a+b+c",                 // two '+'
        "||astrea_g",            // empty left stack
        "astrea||",              // empty right stack
        "a||b||c",               // two '||'
        "astrea?",               // empty option list
        "astrea?hw_threshold",   // no '='
        "astrea?=10",            // empty key
        "astrea?hw_threshold=",  // empty value
        "astrea?a=1&a=2",        // duplicate key
        "Astrea",                // illegal (uppercase) character
        "astrea?bad-key=1",      // illegal key character
    };
    for (const char *text : malformed) {
        EXPECT_THROW(DecoderSpec::parse(text), SpecError) << text;
    }
}

TEST(DecoderSpec, BuildRejectsUnknownComponentsAndOptions)
{
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    const auto try_build = [&](const char *text) {
        return build(DecoderSpec::parse(text), ctx.graph(),
                     ctx.paths());
    };
    // Unknown components.
    EXPECT_THROW(try_build("no_such_decoder"), SpecError);
    EXPECT_THROW(try_build("no_such_pre+astrea"), SpecError);
    EXPECT_THROW(try_build("mwpm||no_such_decoder"), SpecError);
    // Role confusion: a predecoder is not a main decoder and vice
    // versa.
    EXPECT_THROW(try_build("promatch"), SpecError);
    EXPECT_THROW(try_build("astrea+mwpm"), SpecError);
    // Unknown / malformed option values.
    EXPECT_THROW(try_build("astrea?no_such_option=1"), SpecError);
    EXPECT_THROW(try_build("astrea?hw_threshold=ten"), SpecError);
    EXPECT_THROW(try_build("astrea?step4=maybe"), SpecError);
    // Out-of-range values must throw, not silently clamp.
    EXPECT_THROW(
        try_build("astrea?hw_threshold=99999999999999999999"),
        SpecError);
    EXPECT_THROW(try_build("astrea?hw_threshold=9999999999"),
                 SpecError);
    EXPECT_THROW(try_build("astrea?budget_ns=1e999"), SpecError);
    // Out-of-domain values must throw, not crash a later decode
    // (astrea_parallelism and ns_per_cycle are divisors).
    EXPECT_THROW(try_build("astrea_g?astrea_parallelism=0"),
                 SpecError);
    EXPECT_THROW(try_build("astrea?ns_per_cycle=0"), SpecError);
    EXPECT_THROW(try_build("astrea?ns_per_cycle=-4"), SpecError);
    EXPECT_THROW(try_build("astrea?hw_threshold=-1"), SpecError);
    EXPECT_THROW(try_build("promatch+astrea?promatch_lanes=0"),
                 SpecError);
    EXPECT_THROW(try_build("astrea_g?astrea_g_prune=0"), SpecError);
}

TEST(DecoderSpec, OptionsOverrideLatencyAndPromatchConfig)
{
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    {
        auto decoder = build(
            DecoderSpec::parse("astrea?hw_threshold=4&budget_ns=500"),
            ctx.graph(), ctx.paths());
        auto *astrea = dynamic_cast<AstreaDecoder *>(decoder.get());
        ASSERT_NE(astrea, nullptr);
        EXPECT_EQ(astrea->latencyConfig().astreaMaxHw, 4);
        EXPECT_DOUBLE_EQ(astrea->latencyConfig().budgetNs, 500.0);
        // Behavioral check: HW 5 is now beyond the engine's reach.
        const std::vector<uint32_t> five{0, 1, 2, 3, 4};
        EXPECT_TRUE(decoder->decode(five).aborted);
    }
    {
        auto decoder = build(
            DecoderSpec::parse(
                "promatch+astrea?adaptive=0&fixed_target=6&step4=off"),
            ctx.graph(), ctx.paths());
        auto *pipe =
            dynamic_cast<PredecodedDecoder *>(decoder.get());
        ASSERT_NE(pipe, nullptr);
        auto *promatch = dynamic_cast<PromatchPredecoder *>(
            &pipe->predecoder());
        ASSERT_NE(promatch, nullptr);
        EXPECT_FALSE(promatch->config().adaptiveTarget);
        EXPECT_EQ(promatch->config().fixedTarget, 6);
        EXPECT_FALSE(promatch->config().enableStep4);
        EXPECT_TRUE(promatch->config().enableStep3);
    }
    {
        // Explicitly-passed defaults still apply under the options.
        LatencyConfig latency;
        latency.promatchLanes = 4;
        auto decoder =
            build(DecoderSpec::parse("astrea?hw_threshold=6"),
                  ctx.graph(), ctx.paths(), latency);
        auto *astrea = dynamic_cast<AstreaDecoder *>(decoder.get());
        ASSERT_NE(astrea, nullptr);
        EXPECT_EQ(astrea->latencyConfig().astreaMaxHw, 6);
        EXPECT_EQ(astrea->latencyConfig().promatchLanes, 4);
    }
}

TEST(DecoderSpec, PinballSpecsParseBuildAndConfigure)
{
    // The registry-onboarding contract for a new predecoder
    // (docs/api.md worked example): every spec shape must build,
    // and its option keys must land in the component's config.
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    for (const char *text :
         {"pinball+mwpm", "pinball+astrea",
          "pinball+astrea_g?hw_threshold=8",
          "pinball+astrea||astrea_g",
          "promatch+astrea||pinball+astrea_g"}) {
        auto decoder =
            build(DecoderSpec::parse(text), ctx.graph(),
                  ctx.paths());
        ASSERT_NE(decoder, nullptr) << text;
    }

    auto decoder = build(
        DecoderSpec::parse(
            "pinball+mwpm?pinball_rounds=4&pinball_boundary=off"),
        ctx.graph(), ctx.paths());
    auto *pipe = dynamic_cast<PredecodedDecoder *>(decoder.get());
    ASSERT_NE(pipe, nullptr);
    auto *pinball =
        dynamic_cast<PinballPredecoder *>(&pipe->predecoder());
    ASSERT_NE(pinball, nullptr);
    EXPECT_EQ(pinball->config().rounds, 4);
    EXPECT_FALSE(pinball->config().matchBoundary);

    // Option domain guards.
    const auto try_build = [&](const char *text) {
        return build(DecoderSpec::parse(text), ctx.graph(),
                     ctx.paths());
    };
    EXPECT_THROW(try_build("pinball+mwpm?pinball_rounds=0"),
                 SpecError);
    EXPECT_THROW(try_build("pinball+mwpm?pinball_rounds=two"),
                 SpecError);
    EXPECT_THROW(try_build("pinball+mwpm?pinball_boundary=maybe"),
                 SpecError);
    // Role confusion still throws.
    EXPECT_THROW(try_build("pinball"), SpecError);
}

TEST(DecoderRegistry, ComponentsAreRegistered)
{
    const DecoderRegistry &registry = DecoderRegistry::instance();
    for (const char *name :
         {"mwpm", "astrea", "astrea_g", "union_find"}) {
        EXPECT_TRUE(registry.hasDecoder(name)) << name;
        EXPECT_FALSE(registry.describe(name).empty()) << name;
    }
    for (const char *name :
         {"promatch", "smith", "clique", "hierarchical",
          "pinball"}) {
        EXPECT_TRUE(registry.hasPredecoder(name)) << name;
        EXPECT_FALSE(registry.describe(name).empty()) << name;
    }
    EXPECT_FALSE(registry.hasDecoder("promatch"));
    EXPECT_FALSE(registry.hasPredecoder("astrea"));
}

TEST(DecoderRegistry, EveryLegacyNameBuildsAndRoundTrips)
{
    const auto &ctx = ExperimentContext::get(3, 1e-3);
    for (const std::string &name : decoderNames()) {
        const std::string text = specForName(name);
        const DecoderSpec spec = DecoderSpec::parse(text);
        EXPECT_EQ(spec.toString(), text) << name;
        auto via_spec = build(spec, ctx.graph(), ctx.paths());
        auto via_factory =
            makeDecoder(name, ctx.graph(), ctx.paths());
        ASSERT_NE(via_spec, nullptr) << name;
        // Same composition: the legacy factory is a thin alias.
        EXPECT_EQ(via_spec->name(), via_factory->name()) << name;
    }
}

TEST(DecoderSpec, ClonedStacksDecodeConcurrentlyWithSameResults)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    auto stack = build(
        DecoderSpec::parse(specForName("promatch_par_ag")),
        ctx.graph(), ctx.paths());

    // A mixed batch, including HW > 10 syndromes that engage the
    // predecoder.
    ImportanceSampler sampler(ctx.dem(), 12);
    Rng rng(0xc0de);
    std::vector<std::vector<uint32_t>> batch;
    for (int k = 1; k <= 12; ++k) {
        for (int s = 0; s < 25; ++s) {
            batch.push_back(sampler.sample(k, rng).defects);
        }
    }

    // Serial reference on the original instance.
    std::vector<DecodeTrace> ref_traces;
    const std::vector<DecodeResult> reference =
        stack->decodeBatch(batch, &ref_traces);

    // Two clones decode the same batch from different threads.
    auto clone_a = stack->clone();
    auto clone_b = stack->clone();
    EXPECT_EQ(clone_a->name(), stack->name());
    std::vector<DecodeResult> results_a(batch.size());
    std::vector<DecodeResult> results_b(batch.size());
    std::vector<DecodeTrace> traces_a(batch.size());
    std::vector<DecodeTrace> traces_b(batch.size());
    std::thread ta([&]() {
        for (size_t i = 0; i < batch.size(); ++i) {
            results_a[i] = clone_a->decode(batch[i], &traces_a[i]);
        }
    });
    std::thread tb([&]() {
        for (size_t i = 0; i < batch.size(); ++i) {
            results_b[i] = clone_b->decode(batch[i], &traces_b[i]);
        }
    });
    ta.join();
    tb.join();

    const auto same_trace = [](const DecodeTrace &x,
                               const DecodeTrace &y) {
        return x.hwBefore == y.hwBefore && x.hwAfter == y.hwAfter &&
               x.predecoderEngaged == y.predecoderEngaged &&
               x.parallelWinner == y.parallelWinner &&
               x.predecodeRounds == y.predecodeRounds &&
               x.steps.deepest() == y.steps.deepest() &&
               x.children.size() == y.children.size();
    };
    for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(results_a[i].predictedObs,
                  reference[i].predictedObs);
        EXPECT_EQ(results_b[i].predictedObs,
                  reference[i].predictedObs);
        EXPECT_DOUBLE_EQ(results_a[i].weight, reference[i].weight);
        EXPECT_DOUBLE_EQ(results_b[i].weight, reference[i].weight);
        EXPECT_EQ(results_a[i].aborted, reference[i].aborted);
        EXPECT_EQ(results_b[i].aborted, reference[i].aborted);
        // Traces are independent per clone but identical in
        // content.
        EXPECT_TRUE(same_trace(traces_a[i], ref_traces[i])) << i;
        EXPECT_TRUE(same_trace(traces_b[i], ref_traces[i])) << i;
    }

    // The built-in threaded batch path agrees with the serial one.
    const std::vector<DecodeResult> threaded =
        stack->decodeBatch(batch, nullptr, 4);
    for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(threaded[i].predictedObs,
                  reference[i].predictedObs);
        EXPECT_DOUBLE_EQ(threaded[i].weight, reference[i].weight);
        EXPECT_EQ(threaded[i].aborted, reference[i].aborted);
    }
}

} // namespace
} // namespace qec
