/**
 * @file
 * Property tests for the matching engines.
 *
 * The blossom implementation is validated against the exhaustive
 * oracle over thousands of random instances, including instances with
 * forbidden edges and odd-cycle structures that force blossom
 * shrinking.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "qec/matching/blossom.hpp"
#include "qec/matching/exhaustive.hpp"
#include "qec/util/rng.hpp"

namespace qec
{
namespace
{

MatchingProblem
randomProblem(Rng &rng, int n, double no_edge_prob,
              bool allow_boundary)
{
    MatchingProblem p;
    p.n = n;
    p.pairWeight.assign(static_cast<size_t>(n) * n, kNoEdge);
    p.boundaryWeight.assign(n, kNoEdge);
    for (int i = 0; i < n; ++i) {
        if (allow_boundary) {
            p.boundaryWeight[i] = 0.5 + 10.0 * rng.nextDouble();
        }
        for (int j = i + 1; j < n; ++j) {
            if (!rng.nextBool(no_edge_prob)) {
                p.setPair(i, j, 0.5 + 10.0 * rng.nextDouble());
            }
        }
    }
    return p;
}

void
expectSolutionsMatch(const MatchingProblem &problem, int trial)
{
    const MatchingSolution oracle = solveExhaustive(problem);
    MatchingSolution blossom = solveBlossom(problem);
    ASSERT_EQ(oracle.valid, blossom.valid) << "trial " << trial;
    if (!oracle.valid) {
        return;
    }
    // Weights must agree up to quantization error; the mate arrays
    // may legitimately differ between equal-weight optima.
    EXPECT_NEAR(oracle.totalWeight, blossom.totalWeight, 1e-4)
        << "trial " << trial;
    // The blossom solution must be internally consistent.
    EXPECT_NEAR(matchingWeight(problem, blossom),
                blossom.totalWeight, 1e-9);
    for (int i = 0; i < problem.n; ++i) {
        const int m = blossom.mate[i];
        ASSERT_TRUE(m == -1 || (m >= 0 && m < problem.n));
        if (m >= 0) {
            EXPECT_EQ(blossom.mate[m], i);
        }
    }
}

class BlossomRandomTest
    : public ::testing::TestWithParam<std::tuple<int, double, bool>>
{
};

TEST_P(BlossomRandomTest, AgreesWithExhaustiveOracle)
{
    const auto [n, no_edge_prob, allow_boundary] = GetParam();
    Rng rng(0xabcdu + n * 1000 +
            static_cast<int>(no_edge_prob * 100));
    const int trials = 120;
    for (int trial = 0; trial < trials; ++trial) {
        const MatchingProblem problem =
            randomProblem(rng, n, no_edge_prob, allow_boundary);
        expectSolutionsMatch(problem, trial);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlossomRandomTest,
    ::testing::Values(
        std::make_tuple(2, 0.0, true),
        std::make_tuple(3, 0.0, true),
        std::make_tuple(4, 0.0, true),
        std::make_tuple(5, 0.2, true),
        std::make_tuple(6, 0.0, true),
        std::make_tuple(6, 0.3, true),
        std::make_tuple(7, 0.2, true),
        std::make_tuple(8, 0.0, true),
        std::make_tuple(8, 0.4, true),
        std::make_tuple(9, 0.3, true),
        std::make_tuple(10, 0.2, true),
        std::make_tuple(4, 0.0, false),
        std::make_tuple(6, 0.2, false),
        std::make_tuple(8, 0.3, false),
        std::make_tuple(10, 0.0, false)));

TEST(Blossom, OddCycleForcesBlossom)
{
    // C5 plus pendant edges: the optimum requires shrinking the odd
    // cycle. Without boundary, 5 nodes have no perfect matching, so
    // add a 6th vertex attached to one cycle node.
    MatchingProblem p;
    p.n = 6;
    p.pairWeight.assign(36, kNoEdge);
    p.boundaryWeight.assign(6, kNoEdge);
    // Cycle 0-1-2-3-4-0, cheap chord weights to tempt greed.
    p.setPair(0, 1, 1.0);
    p.setPair(1, 2, 1.0);
    p.setPair(2, 3, 1.0);
    p.setPair(3, 4, 1.0);
    p.setPair(4, 0, 1.0);
    p.setPair(4, 5, 2.0);
    expectSolutionsMatch(p, 0);
    const MatchingSolution s = solveBlossom(p);
    ASSERT_TRUE(s.valid);
    // Optimal: (4,5) + two cycle edges = 4.0 total.
    EXPECT_NEAR(s.totalWeight, 4.0, 1e-6);
}

TEST(Blossom, PrefersBoundaryWhenCheaper)
{
    MatchingProblem p;
    p.n = 2;
    p.pairWeight.assign(4, kNoEdge);
    p.boundaryWeight = {1.0, 1.0};
    p.setPair(0, 1, 10.0);
    const MatchingSolution s = solveBlossom(p);
    ASSERT_TRUE(s.valid);
    EXPECT_EQ(s.mate[0], -1);
    EXPECT_EQ(s.mate[1], -1);
    EXPECT_NEAR(s.totalWeight, 2.0, 1e-6);
}

TEST(Blossom, PrefersPairWhenCheaper)
{
    MatchingProblem p;
    p.n = 2;
    p.pairWeight.assign(4, kNoEdge);
    p.boundaryWeight = {10.0, 10.0};
    p.setPair(0, 1, 1.0);
    const MatchingSolution s = solveBlossom(p);
    ASSERT_TRUE(s.valid);
    EXPECT_EQ(s.mate[0], 1);
    EXPECT_NEAR(s.totalWeight, 1.0, 1e-6);
}

TEST(Blossom, EmptyProblem)
{
    MatchingProblem p;
    p.n = 0;
    const MatchingSolution s = solveBlossom(p);
    EXPECT_TRUE(s.valid);
    EXPECT_DOUBLE_EQ(s.totalWeight, 0.0);
}

TEST(Blossom, SingleDefectMatchesBoundary)
{
    MatchingProblem p;
    p.n = 1;
    p.pairWeight.assign(1, kNoEdge);
    p.boundaryWeight = {3.5};
    const MatchingSolution s = solveBlossom(p);
    ASSERT_TRUE(s.valid);
    EXPECT_EQ(s.mate[0], -1);
    EXPECT_NEAR(s.totalWeight, 3.5, 1e-9);
}

TEST(Blossom, InfeasibleWithoutBoundaryOddN)
{
    MatchingProblem p;
    p.n = 3;
    p.pairWeight.assign(9, kNoEdge);
    p.boundaryWeight.assign(3, kNoEdge);
    p.setPair(0, 1, 1.0);
    p.setPair(1, 2, 1.0);
    p.setPair(0, 2, 1.0);
    const MatchingSolution s = solveBlossom(p);
    EXPECT_FALSE(s.valid);
    EXPECT_FALSE(solveExhaustive(p).valid);
}

TEST(Blossom, DenseEntryAcceptsEitherTriangle)
{
    // maxWeightMatchingDense copies each directed entry as-is, so
    // a caller filling only one triangle (legal historically) gets
    // the same matching as a symmetric fill.
    const int n = 4;
    std::vector<std::vector<long long>> lower(
        n + 1, std::vector<long long>(n + 1, 0));
    // Path 1-2, 3-4 heavy; chord 2-3 light.
    lower[2][1] = 10;
    lower[4][3] = 10;
    lower[3][2] = 1;
    std::vector<std::vector<long long>> symmetric = lower;
    for (int u = 1; u <= n; ++u) {
        for (int v = 1; v <= n; ++v) {
            if (lower[u][v]) {
                symmetric[v][u] = lower[u][v];
            }
        }
    }
    const std::vector<int> from_lower =
        maxWeightMatchingDense(lower);
    const std::vector<int> from_symmetric =
        maxWeightMatchingDense(symmetric);
    for (int u = 1; u <= n; ++u) {
        EXPECT_EQ(from_lower[u], from_symmetric[u]) << u;
    }
    EXPECT_EQ(from_lower[1], 2);
    EXPECT_EQ(from_lower[3], 4);
}

TEST(Blossom, SolverReuseMatchesFreshSolves)
{
    // One BlossomSolver cycled over instances of varying size must
    // reproduce the one-shot results exactly (stale-state guard
    // for the workspace reuse contract).
    Rng rng(0xb10550);
    BlossomSolver solver;
    MatchingSolution reused;
    for (int trial = 0; trial < 60; ++trial) {
        const int n = 1 + static_cast<int>(rng.next64() % 10);
        const MatchingProblem p =
            randomProblem(rng, n, 0.2, true);
        solver.solve(p, reused);
        const MatchingSolution fresh = solveBlossom(p);
        ASSERT_EQ(reused.valid, fresh.valid) << trial;
        if (!fresh.valid) {
            continue;
        }
        EXPECT_EQ(reused.mate, fresh.mate) << trial;
        EXPECT_DOUBLE_EQ(reused.totalWeight, fresh.totalWeight)
            << trial;
    }
}

TEST(Matching, MatchingWeightFlagsDisallowedPairing)
{
    // Regression: matchingWeight used to silently sum kNoEdge
    // (infinity) into the total when a solution used a disallowed
    // pairing; it must report valid=false instead.
    MatchingProblem p;
    p.n = 2;
    p.pairWeight.assign(4, kNoEdge); // Pairing 0-1 is illegal.
    p.boundaryWeight.assign(2, 1.5);

    MatchingSolution bad;
    bad.mate = {1, 0};
    bad.valid = true;
    EXPECT_EQ(matchingWeight(p, bad), kNoEdge);
    EXPECT_FALSE(bad.valid);

    MatchingSolution boundary;
    boundary.mate = {-1, -1};
    boundary.valid = true;
    EXPECT_DOUBLE_EQ(matchingWeight(p, boundary), 3.0);
    EXPECT_TRUE(boundary.valid);

    // Disallowed boundary matches are caught too.
    p.boundaryWeight[1] = kNoEdge;
    MatchingSolution badBoundary;
    badBoundary.mate = {-1, -1};
    badBoundary.valid = true;
    EXPECT_EQ(matchingWeight(p, badBoundary), kNoEdge);
    EXPECT_FALSE(badBoundary.valid);
}

TEST(Exhaustive, CountsMatchingsWithoutPruning)
{
    // With uniform weights the pruning bound never fires before a
    // first solution exists, but we only check the oracle's result.
    MatchingProblem p;
    p.n = 4;
    p.pairWeight.assign(16, kNoEdge);
    p.boundaryWeight.assign(4, 1.0);
    for (int i = 0; i < 4; ++i) {
        for (int j = i + 1; j < 4; ++j) {
            p.setPair(i, j, 1.0);
        }
    }
    const MatchingSolution s = solveExhaustive(p);
    ASSERT_TRUE(s.valid);
    EXPECT_NEAR(s.totalWeight, 2.0, 1e-9); // Two pair matches.
}

} // namespace
} // namespace qec
