/**
 * @file
 * Predecoder tests: Promatch invariants (coverage, adaptivity, step
 * priorities, singleton logic), Smith coverage behaviour, and the
 * NSM contracts of Clique and Hierarchical.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "qec/harness/context.hpp"
#include "qec/harness/importance_sampler.hpp"
#include "qec/predecode/clique.hpp"
#include "qec/predecode/hierarchical.hpp"
#include "qec/predecode/pinball.hpp"
#include "qec/predecode/promatch.hpp"
#include "qec/predecode/smith.hpp"

namespace qec
{
namespace
{

constexpr long long kBudgetCycles = 240; // 960 ns at 250 MHz.

/** High-HW syndromes sampled from a d=9 model (HW > 10 plentiful). */
std::vector<std::vector<uint32_t>>
highHwSyndromes(const ExperimentContext &ctx, int count,
                uint64_t seed)
{
    ImportanceSampler sampler(ctx.dem(), 16);
    Rng rng(seed);
    std::vector<std::vector<uint32_t>> out;
    int guard = 0;
    while (static_cast<int>(out.size()) < count &&
           ++guard < 100000) {
        const auto sample =
            sampler.sample(8 + rng.nextBelow(8), rng);
        if (sample.defects.size() > 10) {
            out.push_back(sample.defects);
        }
    }
    return out;
}

TEST(Promatch, ReducesHighHwToTenOrLess)
{
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    PromatchPredecoder promatch(ctx.graph(), ctx.paths());
    for (const auto &defects :
         highHwSyndromes(ctx, 50, 0xfeed)) {
        const PredecodeResult result =
            promatch.predecode(defects, kBudgetCycles);
        EXPECT_LE(result.residual.size(), 10u)
            << "HW " << defects.size() << " not reduced";
        EXPECT_GE(result.cycles, 0);
        EXPECT_GT(result.rounds, 0);
    }
}

TEST(Promatch, ResidualIsSubsetOfInput)
{
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    PromatchPredecoder promatch(ctx.graph(), ctx.paths());
    for (const auto &defects : highHwSyndromes(ctx, 30, 0xbee)) {
        const PredecodeResult result =
            promatch.predecode(defects, kBudgetCycles);
        const std::set<uint32_t> input(defects.begin(),
                                       defects.end());
        for (uint32_t det : result.residual) {
            EXPECT_TRUE(input.count(det));
        }
        // Residual must be sorted for the main decoder.
        EXPECT_TRUE(std::is_sorted(result.residual.begin(),
                                   result.residual.end()));
    }
}

TEST(Promatch, LowHwWithFixedTargetIsUntouched)
{
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    PromatchPredecoder promatch(ctx.graph(), ctx.paths());
    ImportanceSampler sampler(ctx.dem(), 4);
    Rng rng(1);
    const auto sample = sampler.sample(2, rng);
    if (sample.defects.size() <= 10) {
        const PredecodeResult result =
            promatch.predecode(sample.defects, kBudgetCycles);
        EXPECT_EQ(result.residual, sample.defects);
        EXPECT_EQ(result.cycles, 0);
    }
}

TEST(Promatch, IsolatedPairIsMatchedByStep1)
{
    // Construct a syndrome that is exactly one adjacent pair plus a
    // spread of 10 far-apart defects so HW = 12 > 10 engages the
    // predecoder; the pair must fall to Step 1.
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    const DecodingGraph &graph = ctx.graph();

    // Find an internal (non-boundary) edge.
    int pair_edge = -1;
    for (const GraphEdge &edge : graph.edges()) {
        if (edge.v != kBoundary) {
            pair_edge = static_cast<int>(edge.id);
            break;
        }
    }
    ASSERT_GE(pair_edge, 0);
    const GraphEdge &edge = graph.edges()[pair_edge];

    // Collect far defects: pairwise non-adjacent, not adjacent to
    // the pair.
    std::vector<uint32_t> defects = {edge.u, edge.v};
    for (uint32_t det = 0;
         det < graph.numDetectors() && defects.size() < 12;
         ++det) {
        bool adjacent_to_any = false;
        for (uint32_t existing : defects) {
            if (det == existing ||
                graph.edgeBetween(det, existing) >= 0) {
                adjacent_to_any = true;
                break;
            }
        }
        if (!adjacent_to_any) {
            defects.push_back(det);
        }
    }
    ASSERT_EQ(defects.size(), 12u);
    std::sort(defects.begin(), defects.end());

    PromatchPredecoder promatch(ctx.graph(), ctx.paths());
    const PredecodeResult result =
        promatch.predecode(defects, kBudgetCycles);
    EXPECT_TRUE(result.steps.step1);
    // The isolated pair must be gone from the residual.
    EXPECT_FALSE(std::binary_search(result.residual.begin(),
                                    result.residual.end(), edge.u));
    EXPECT_LE(result.residual.size(), 10u);
}

TEST(Promatch, StepUsageIsDominatedByStep1)
{
    // Table 6: the overwhelming majority of high-HW syndromes need
    // only Step 1.
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    PromatchPredecoder promatch(ctx.graph(), ctx.paths());
    int step1_only = 0, total = 0;
    for (const auto &defects :
         highHwSyndromes(ctx, 100, 0xcafe)) {
        const PredecodeResult result =
            promatch.predecode(defects, kBudgetCycles);
        ++total;
        if (result.steps.deepest() <= 1) {
            ++step1_only;
        }
    }
    EXPECT_GT(static_cast<double>(step1_only) / total, 0.5);
}

TEST(Promatch, AdaptiveTargetDropsWhenBudgetShrinks)
{
    // With a tiny budget the adaptive target must fall below 10,
    // forcing deeper predecoding than the default budget needs.
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    PromatchPredecoder promatch(ctx.graph(), ctx.paths());
    for (const auto &defects : highHwSyndromes(ctx, 20, 0x77)) {
        const PredecodeResult rich =
            promatch.predecode(defects, kBudgetCycles);
        const PredecodeResult poor =
            promatch.predecode(defects, 30);
        EXPECT_LE(poor.residual.size(), 8u)
            << "tight budget should force HW <= 8";
        EXPECT_LE(poor.residual.size(), rich.residual.size() + 0u);
    }
}

TEST(Promatch, ExactAndHardwareSingletonChecksBothCovered)
{
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    PromatchConfig hw_cfg;
    PromatchConfig exact_cfg;
    exact_cfg.exactSingletonCheck = true;
    PromatchPredecoder hw(ctx.graph(), ctx.paths(), {}, hw_cfg);
    PromatchPredecoder exact(ctx.graph(), ctx.paths(), {},
                             exact_cfg);
    for (const auto &defects : highHwSyndromes(ctx, 30, 0x88)) {
        const PredecodeResult a =
            hw.predecode(defects, kBudgetCycles);
        const PredecodeResult b =
            exact.predecode(defects, kBudgetCycles);
        EXPECT_LE(a.residual.size(), 10u);
        EXPECT_LE(b.residual.size(), 10u);
    }
}

TEST(Promatch, ParallelLanesReduceCycleCharge)
{
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    LatencyConfig one_lane;
    LatencyConfig four_lanes;
    four_lanes.promatchLanes = 4;
    PromatchPredecoder pm1(ctx.graph(), ctx.paths(), one_lane);
    PromatchPredecoder pm4(ctx.graph(), ctx.paths(), four_lanes);
    for (const auto &defects : highHwSyndromes(ctx, 20, 0x4a)) {
        const PredecodeResult r1 =
            pm1.predecode(defects, kBudgetCycles);
        const PredecodeResult r4 =
            pm4.predecode(defects, kBudgetCycles);
        EXPECT_LE(r4.cycles, r1.cycles);
        // Lanes change timing, not the matching decisions made
        // before the adaptive target reacts to the cheaper cycles;
        // coverage contracts still hold.
        EXPECT_LE(r4.residual.size(), 10u);
    }
}

TEST(Smith, OnePassMatchesOnlyAdjacentPairs)
{
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    SmithPredecoder smith(ctx.graph(), ctx.paths());
    for (const auto &defects : highHwSyndromes(ctx, 30, 0x99)) {
        const PredecodeResult result =
            smith.predecode(defects, kBudgetCycles);
        EXPECT_EQ(result.rounds, 1);
        // Parity: matched count is even.
        EXPECT_EQ((defects.size() - result.residual.size()) % 2,
                  0u);
        // Residual defects have no *matched* partner adjacent...
        // weak check: residual is subset and sorted.
        EXPECT_TRUE(std::is_sorted(result.residual.begin(),
                                   result.residual.end()));
    }
}

TEST(Pinball, ResidualIsSortedSubsetWithConsistentParity)
{
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    PinballPredecoder pinball(ctx.graph(), ctx.paths());
    for (const auto &defects : highHwSyndromes(ctx, 30, 0x31)) {
        const PredecodeResult result =
            pinball.predecode(defects, kBudgetCycles);
        const std::set<uint32_t> input(defects.begin(),
                                       defects.end());
        for (uint32_t det : result.residual) {
            EXPECT_TRUE(input.count(det));
        }
        EXPECT_TRUE(std::is_sorted(result.residual.begin(),
                                   result.residual.end()));
        EXPECT_LE(result.residual.size(), defects.size());
        // SM contract: it prematches, never forwards or finishes.
        EXPECT_FALSE(result.forwarded);
        EXPECT_FALSE(result.decodedAll);
    }
}

TEST(Pinball, RoundsAndCyclesAreBounded)
{
    // The modeled pipeline is fixed-latency: at most
    // PinballConfig::rounds propose/commit rounds, each at a
    // constant cycle charge, independent of the Hamming weight.
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    PinballConfig config;
    config.rounds = 3;
    PinballPredecoder pinball(ctx.graph(), ctx.paths(), config);
    for (const auto &defects : highHwSyndromes(ctx, 30, 0x32)) {
        const PredecodeResult result =
            pinball.predecode(defects, kBudgetCycles);
        EXPECT_GE(result.rounds, 1);
        EXPECT_LE(result.rounds, 3);
        EXPECT_EQ(result.cycles % result.rounds, 0)
            << "per-round charge must be constant";
        EXPECT_EQ(result.cycles / result.rounds, 3);
    }
}

TEST(Pinball, MatchesIsolatedPairViaMutualSelection)
{
    // An isolated adjacent pair is each endpoint's only pattern
    // hit, so the selections are mutual and the pair commits in
    // round 1.
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    const DecodingGraph &graph = ctx.graph();
    int pair_edge = -1;
    for (const GraphEdge &edge : graph.edges()) {
        if (edge.v != kBoundary) {
            pair_edge = static_cast<int>(edge.id);
            break;
        }
    }
    ASSERT_GE(pair_edge, 0);
    const GraphEdge &edge = graph.edges()[pair_edge];
    std::vector<uint32_t> defects = {edge.u, edge.v};
    std::sort(defects.begin(), defects.end());

    PinballPredecoder pinball(ctx.graph(), ctx.paths());
    const PredecodeResult result =
        pinball.predecode(defects, kBudgetCycles);
    EXPECT_FALSE(std::binary_search(result.residual.begin(),
                                    result.residual.end(), edge.u));
    EXPECT_FALSE(std::binary_search(result.residual.begin(),
                                    result.residual.end(), edge.v));
    EXPECT_EQ(result.obsMask, graph.edgeObsMask(edge.id));
}

TEST(Pinball, BoundaryPatternIsConfigurable)
{
    // A lone flipped bit with a boundary edge commits to the
    // boundary pattern; with pinball_boundary off it must survive
    // to the residual.
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    const DecodingGraph &graph = ctx.graph();
    uint32_t lone = kBoundary;
    for (uint32_t det = 0; det < graph.numDetectors(); ++det) {
        if (graph.boundaryEdge(det) >= 0) {
            lone = det;
            break;
        }
    }
    ASSERT_NE(lone, kBoundary);
    const std::vector<uint32_t> defects = {lone};

    PinballPredecoder with_boundary(ctx.graph(), ctx.paths());
    const PredecodeResult hit =
        with_boundary.predecode(defects, kBudgetCycles);
    EXPECT_TRUE(hit.residual.empty());
    const uint32_t beid =
        static_cast<uint32_t>(graph.boundaryEdge(lone));
    EXPECT_EQ(hit.obsMask, graph.edgeObsMask(beid));

    PinballConfig no_boundary;
    no_boundary.matchBoundary = false;
    PinballPredecoder without(ctx.graph(), ctx.paths(),
                              no_boundary);
    const PredecodeResult miss =
        without.predecode(defects, kBudgetCycles);
    EXPECT_EQ(miss.residual, defects);
    EXPECT_EQ(miss.obsMask, 0ull);
}

TEST(Pinball, CloneIsBitIdentical)
{
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    PinballPredecoder pinball(ctx.graph(), ctx.paths());
    auto clone = pinball.clone();
    for (const auto &defects : highHwSyndromes(ctx, 20, 0x33)) {
        const PredecodeResult a =
            pinball.predecode(defects, kBudgetCycles);
        const PredecodeResult b =
            clone->predecode(defects, kBudgetCycles);
        EXPECT_EQ(a.residual, b.residual);
        EXPECT_EQ(a.obsMask, b.obsMask);
        EXPECT_EQ(a.weight, b.weight);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.rounds, b.rounds);
    }
}

TEST(Clique, AllOrNothingContract)
{
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    CliquePredecoder clique(ctx.graph(), ctx.paths());
    int forwarded = 0, decoded = 0;
    for (const auto &defects : highHwSyndromes(ctx, 50, 0xaa)) {
        const PredecodeResult result =
            clique.predecode(defects, kBudgetCycles);
        EXPECT_TRUE(result.forwarded || result.decodedAll);
        if (result.forwarded) {
            ++forwarded;
            EXPECT_EQ(result.residual, defects);
            EXPECT_EQ(result.obsMask, 0ull);
        } else {
            ++decoded;
            EXPECT_TRUE(result.residual.empty());
        }
    }
    // Dense high-HW syndromes almost always contain complex
    // patterns; forwarding must dominate (Table 3's failure mode).
    EXPECT_GT(forwarded, decoded);
}

TEST(Hierarchical, ForwardsComplexSyndromes)
{
    const auto &ctx = ExperimentContext::get(9, 1e-3);
    HierarchicalPredecoder hier(ctx.graph(), ctx.paths());
    for (const auto &defects : highHwSyndromes(ctx, 20, 0xbb)) {
        const PredecodeResult result =
            hier.predecode(defects, kBudgetCycles);
        EXPECT_TRUE(result.forwarded || result.decodedAll);
    }
}

} // namespace
} // namespace qec
