/**
 * @file
 * Tests for the batch Pauli-frame simulator against hand-computed
 * physics on small circuits and full surface-code rounds.
 */

#include <gtest/gtest.h>

#include <bit>

#include "qec/sim/frame_simulator.hpp"
#include "qec/surface/circuit_gen.hpp"
#include "qec/surface/layout.hpp"

namespace qec
{
namespace
{

TEST(FrameSimulator, NoiselessCircuitHasSilentDetectors)
{
    SurfaceCodeLayout layout(5);
    const MemoryExperiment exp =
        generateMemoryZ(layout, 5, NoiseParams::noiseless());
    FrameSimulator sim(exp.circuit);
    Rng rng(1);
    BatchResult out;
    for (int batch = 0; batch < 4; ++batch) {
        sim.sampleBatch(rng, out);
        for (uint64_t word : out.detectors) {
            EXPECT_EQ(word, 0ull);
        }
        for (uint64_t word : out.observables) {
            EXPECT_EQ(word, 0ull);
        }
    }
}

TEST(FrameSimulator, DeterministicXErrorFlipsAdjacentZStabilizers)
{
    // Put a guaranteed X error on one bulk data qubit before round 0:
    // exactly its adjacent Z stabilizers must fire in the first
    // detector layer and the final layer, and nothing else.
    SurfaceCodeLayout layout(3);
    NoiseParams noise; // All zero.
    MemoryExperiment exp = generateMemoryZ(layout, 3, noise);

    // Rebuild the circuit with an X error (p=1) on data qubit 4 (the
    // bulk center qubit of d=3) injected right after initialization.
    Circuit patched(exp.circuit.numQubits());
    bool injected = false;
    for (const Instruction &inst : exp.circuit.instructions()) {
        switch (inst.type) {
          case OpType::R:
            patched.appendReset(inst.targets);
            if (!injected) {
                patched.appendXError({4}, 1.0);
                injected = true;
            }
            break;
          case OpType::H: patched.appendH(inst.targets); break;
          case OpType::CX: patched.appendCx(inst.targets); break;
          case OpType::M:
            patched.appendMeasure(inst.targets, inst.arg);
            break;
          case OpType::Tick: patched.appendTick(); break;
          case OpType::Detector:
            patched.appendDetector(inst.targets);
            break;
          case OpType::Observable:
            patched.appendObservable(inst.id, inst.targets);
            break;
          default:
            FAIL() << "unexpected op in noiseless circuit";
        }
    }

    // Which Z stabilizers contain data qubit 4?
    std::vector<uint32_t> expected_z;
    const auto &z_idx = layout.zStabilizers();
    for (uint32_t zo = 0; zo < z_idx.size(); ++zo) {
        const auto &support =
            layout.stabilizers()[z_idx[zo]].support;
        for (uint32_t q : support) {
            if (q == 4) {
                expected_z.push_back(zo);
            }
        }
    }
    ASSERT_EQ(expected_z.size(), 2u); // Bulk qubit.

    FrameSimulator sim(patched);
    Rng rng(2);
    BatchResult out;
    sim.sampleBatch(rng, out);

    const uint32_t nz = static_cast<uint32_t>(z_idx.size());
    for (uint32_t det = 0; det < patched.numDetectors(); ++det) {
        const uint32_t layer = det / nz;
        const uint32_t zo = det % nz;
        const bool is_adjacent =
            std::find(expected_z.begin(), expected_z.end(), zo) !=
            expected_z.end();
        // The error happens before round 0: layer 0 sees it; later
        // difference layers see no change; the final data layer
        // compares data parity to the last measurement and is quiet.
        const bool expect_fire = is_adjacent && layer == 0;
        EXPECT_EQ(out.detectors[det], expect_fire ? ~0ull : 0ull)
            << "detector " << det;
    }
    // A single bulk X error is correctable: it flips the observable
    // iff it sits on the logical-Z support.
    const auto &lz = layout.logicalZSupport();
    const bool on_logical =
        std::find(lz.begin(), lz.end(), 4u) != lz.end();
    EXPECT_EQ(out.observables[0], on_logical ? ~0ull : 0ull);
}

TEST(FrameSimulator, LogicalXChainFlipsObservableSilently)
{
    // Apply the full logical X operator: no detector fires but the
    // observable flips — the definition of a logical error.
    SurfaceCodeLayout layout(5);
    MemoryExperiment exp =
        generateMemoryZ(layout, 5, NoiseParams::noiseless());
    Circuit patched(exp.circuit.numQubits());
    bool injected = false;
    for (const Instruction &inst : exp.circuit.instructions()) {
        switch (inst.type) {
          case OpType::R:
            patched.appendReset(inst.targets);
            if (!injected) {
                patched.appendXError(layout.logicalXSupport(), 1.0);
                injected = true;
            }
            break;
          case OpType::H: patched.appendH(inst.targets); break;
          case OpType::CX: patched.appendCx(inst.targets); break;
          case OpType::M:
            patched.appendMeasure(inst.targets, inst.arg);
            break;
          case OpType::Tick: patched.appendTick(); break;
          case OpType::Detector:
            patched.appendDetector(inst.targets);
            break;
          case OpType::Observable:
            patched.appendObservable(inst.id, inst.targets);
            break;
          default: FAIL();
        }
    }
    FrameSimulator sim(patched);
    Rng rng(3);
    BatchResult out;
    sim.sampleBatch(rng, out);
    for (uint64_t word : out.detectors) {
        EXPECT_EQ(word, 0ull);
    }
    EXPECT_EQ(out.observables[0], ~0ull);
}

TEST(FrameSimulator, MeasurementErrorMakesTimelikePair)
{
    // A single measurement flip on a Z ancilla in round t fires the
    // same stabilizer's detectors at layers t and t+1.
    SurfaceCodeLayout layout(3);
    MemoryExperiment exp =
        generateMemoryZ(layout, 3, NoiseParams::noiseless());
    FrameSimulator sim(exp.circuit);

    // Find the measurement instruction of round 1 and inject a
    // record flip on the first Z ancilla.
    const auto &instructions = exp.circuit.instructions();
    uint32_t m_count = 0;
    uint32_t target_op = 0;
    for (uint32_t i = 0; i < instructions.size(); ++i) {
        if (instructions[i].type == OpType::M) {
            if (m_count == 1) { // Round 1 ancilla block.
                target_op = i;
                break;
            }
            ++m_count;
        }
    }
    ASSERT_GT(target_op, 0u);

    std::vector<Injection> injections;
    Injection inj;
    inj.opIndex = target_op;
    inj.targetOffset = 0; // First Z stabilizer's ancilla.
    inj.recordFlip = true;
    injections.push_back(inj);

    BatchResult out;
    sim.runInjections(injections, out);

    const uint32_t nz =
        static_cast<uint32_t>(layout.zStabilizers().size());
    for (uint32_t det = 0; det < exp.circuit.numDetectors();
         ++det) {
        const uint32_t layer = det / nz;
        const uint32_t zo = det % nz;
        const bool expect = (zo == 0 && (layer == 1 || layer == 2));
        EXPECT_EQ((out.detectors[det] & 1ull) != 0, expect)
            << "detector " << det;
    }
    EXPECT_EQ(out.observables[0] & 1ull, 0ull);
}

TEST(FrameSimulator, SameSeedSameResults)
{
    SurfaceCodeLayout layout(3);
    MemoryExperiment exp =
        generateMemoryZ(layout, 3, NoiseParams::uniform(0.01));
    FrameSimulator sim_a(exp.circuit), sim_b(exp.circuit);
    Rng rng_a(77), rng_b(77);
    BatchResult out_a, out_b;
    for (int i = 0; i < 10; ++i) {
        sim_a.sampleBatch(rng_a, out_a);
        sim_b.sampleBatch(rng_b, out_b);
        EXPECT_EQ(out_a.detectors, out_b.detectors);
        EXPECT_EQ(out_a.observables, out_b.observables);
    }
}

TEST(FrameSimulator, NoisyShotsFireDetectorsAtPlausibleRate)
{
    SurfaceCodeLayout layout(3);
    MemoryExperiment exp =
        generateMemoryZ(layout, 3, NoiseParams::uniform(0.01));
    FrameSimulator sim(exp.circuit);
    Rng rng(123);
    BatchResult out;
    uint64_t fires = 0, slots = 0;
    for (int batch = 0; batch < 200; ++batch) {
        sim.sampleBatch(rng, out);
        for (uint64_t word : out.detectors) {
            fires += std::popcount(word);
            slots += 64;
        }
    }
    const double rate = static_cast<double>(fires) / slots;
    // Each detector aggregates tens of p=1e-2 fault locations; the
    // empirical per-detector rate should be a few percent.
    EXPECT_GT(rate, 0.005);
    EXPECT_LT(rate, 0.25);
}

} // namespace
} // namespace qec
