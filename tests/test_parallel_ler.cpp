/**
 * @file
 * Equivalence suite for the parallel LER evaluation engine:
 *
 *  - Rng::forSample counter-based streams are pure functions of
 *    (seed, stream, sample);
 *  - parallelFor's static partition covers [0, n) exactly once for
 *    any thread count;
 *  - estimateLer / estimateLerDirect are bit-identical for
 *    threads in {1, 2, 8};
 *  - decodeBatch matches sequential decode for every component in
 *    the DecoderRegistry (and every predecoder composed with a
 *    main decoder);
 *  - a recording SampleObserver sees the same samples, in the same
 *    order, with the same weights, for any thread count.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "qec/api/registry.hpp"
#include "qec/decoders/factory.hpp"
#include "qec/harness/context.hpp"
#include "qec/harness/importance_sampler.hpp"
#include "qec/harness/ler_estimator.hpp"
#include "qec/util/parallel_for.hpp"
#include "qec/util/rng.hpp"

namespace qec
{
namespace
{

TEST(RngForSample, IsPureFunctionOfItsArguments)
{
    Rng a = Rng::forSample(42, 3, 17);
    Rng b = Rng::forSample(42, 3, 17);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(a.next64(), b.next64());
    }
}

TEST(RngForSample, NearbyCountersGiveDistinctStreams)
{
    // Adjacent (stream, sample) pairs — the hot case in the sharded
    // estimator — must produce unrelated draws, including the
    // swapped pair (k, i) vs (i, k).
    Rng base = Rng::forSample(7, 5, 100);
    Rng next_sample = Rng::forSample(7, 5, 101);
    Rng next_stream = Rng::forSample(7, 6, 100);
    Rng swapped = Rng::forSample(7, 100, 5);
    Rng other_seed = Rng::forSample(8, 5, 100);
    const uint64_t word = base.next64();
    EXPECT_NE(word, next_sample.next64());
    EXPECT_NE(word, next_stream.next64());
    EXPECT_NE(word, swapped.next64());
    EXPECT_NE(word, other_seed.next64());
}

TEST(RngForSample, StreamsAreStatisticallySane)
{
    // Pooling the first double of many per-sample streams must look
    // uniform: mean ~ 0.5.
    double sum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        sum += Rng::forSample(123, 4, i).nextDouble();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(ParallelFor, PartitionCoversRangeExactlyOnce)
{
    for (size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
        for (int threads : {1, 2, 3, 8, 64}) {
            std::vector<int> hits(n, 0);
            parallelFor(n, threads,
                        [&](size_t begin, size_t end, int) {
                            for (size_t i = begin; i < end; ++i) {
                                ++hits[i];
                            }
                        });
            EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
                      static_cast<int>(n))
                << "n=" << n << " threads=" << threads;
            for (size_t i = 0; i < n; ++i) {
                ASSERT_EQ(hits[i], 1) << "index " << i;
            }
        }
    }
    EXPECT_EQ(parallelWorkers(0, 8), 0);
    EXPECT_EQ(parallelWorkers(3, 8), 3);
    EXPECT_EQ(parallelWorkers(100, 8), 8);
    // threads <= 0 resolves to hardware concurrency everywhere.
    EXPECT_EQ(parallelWorkers(100, 0),
              resolveHardwareThreads(0));
    EXPECT_GE(resolveHardwareThreads(0), 1);
    EXPECT_EQ(resolveHardwareThreads(5), 5);
}

void
expectSameEstimate(const LerEstimate &a, const LerEstimate &b,
                   const std::string &label)
{
    EXPECT_EQ(a.ler, b.ler) << label;
    EXPECT_EQ(a.expectedFaults, b.expectedFaults) << label;
    ASSERT_EQ(a.perK.size(), b.perK.size()) << label;
    for (size_t i = 0; i < a.perK.size(); ++i) {
        EXPECT_EQ(a.perK[i].k, b.perK[i].k) << label;
        EXPECT_EQ(a.perK[i].occurrence, b.perK[i].occurrence)
            << label << " k=" << a.perK[i].k;
        EXPECT_EQ(a.perK[i].samples, b.perK[i].samples)
            << label << " k=" << a.perK[i].k;
        EXPECT_EQ(a.perK[i].failures, b.perK[i].failures)
            << label << " k=" << a.perK[i].k;
        EXPECT_EQ(a.perK[i].failureProb, b.perK[i].failureProb)
            << label << " k=" << a.perK[i].k;
    }
}

TEST(ParallelLer, EstimateIsBitIdenticalAcrossThreadCounts)
{
    // The determinism suite: promatch+astrea, astrea_g, mwpm and
    // the pinball+* stacks at d = 5 must produce bit-identical
    // LerEstimates for threads in {1, 2, 8} and for the 0 =
    // hardware-concurrency default.
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    for (const char *spec :
         {"promatch+astrea", "astrea_g", "mwpm", "pinball+mwpm",
          "pinball+astrea"}) {
        auto decoder = build(DecoderSpec::parse(spec),
                             ctx.graph(), ctx.paths());
        LerOptions options;
        options.kMax = 6;
        options.samplesPerK = 200;
        options.threads = 1;
        const LerEstimate reference =
            estimateLer(ctx, *decoder, options);
        for (int threads : {0, 2, 8}) {
            options.threads = threads;
            const LerEstimate est =
                estimateLer(ctx, *decoder, options);
            expectSameEstimate(reference, est,
                               std::string(spec) + " threads=" +
                                   std::to_string(threads));
        }
    }
}

TEST(ParallelLer, DirectMonteCarloIsBitIdenticalAcrossThreadCounts)
{
    const auto &ctx = ExperimentContext::get(3, 2e-3);
    auto decoder = makeDecoder("mwpm", ctx.graph(), ctx.paths());
    // 1000 shots = 16 blocks (incl. a partial last block), enough
    // to exercise sharding plus the lane-tail path.
    const DirectMcResult reference =
        estimateLerDirect(ctx, *decoder, 1000, 99, 1);
    EXPECT_EQ(reference.shots, 1000u);
    for (int threads : {2, 8}) {
        const DirectMcResult result =
            estimateLerDirect(ctx, *decoder, 1000, 99, threads);
        EXPECT_EQ(reference.shots, result.shots) << threads;
        EXPECT_EQ(reference.failures, result.failures) << threads;
        EXPECT_EQ(reference.ler, result.ler) << threads;
    }
}

/** Everything an observer can see, flattened for comparison. */
struct ObservedSample
{
    int k;
    double weight;
    std::vector<uint32_t> defects;
    uint64_t predictedObs;
    bool failed;
    int hwAfter;

    bool
    operator==(const ObservedSample &other) const
    {
        return k == other.k && weight == other.weight &&
               defects == other.defects &&
               predictedObs == other.predictedObs &&
               failed == other.failed &&
               hwAfter == other.hwAfter;
    }
};

std::vector<ObservedSample>
recordRun(const ExperimentContext &ctx, Decoder &decoder,
          int threads)
{
    LerOptions options;
    options.kMax = 5;
    options.samplesPerK = 150;
    options.threads = threads;
    options.collectTraces = true;
    std::vector<ObservedSample> seen;
    estimateLer(ctx, decoder, options,
                [&](const SampleView &view) {
                    seen.push_back({view.k, view.weight,
                                    view.defects,
                                    view.result.predictedObs,
                                    view.failed,
                                    view.trace->hwAfter});
                });
    return seen;
}

TEST(ParallelLer, ObserverSeesIdenticalOrderedStreamAnyThreadCount)
{
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    auto decoder =
        makeDecoder("promatch_astrea", ctx.graph(), ctx.paths());
    const std::vector<ObservedSample> serial =
        recordRun(ctx, *decoder, 1);
    ASSERT_EQ(serial.size(), 5u * 150u);
    // Samples must arrive in (k, i) order with k nondecreasing.
    for (size_t i = 1; i < serial.size(); ++i) {
        EXPECT_LE(serial[i - 1].k, serial[i].k);
    }
    for (int threads : {2, 8}) {
        const std::vector<ObservedSample> parallel =
            recordRun(ctx, *decoder, threads);
        ASSERT_EQ(serial.size(), parallel.size()) << threads;
        for (size_t i = 0; i < serial.size(); ++i) {
            ASSERT_TRUE(serial[i] == parallel[i])
                << "threads=" << threads << " sample " << i;
        }
    }
}

void
expectSameResult(const DecodeResult &a, const DecodeResult &b,
                 const std::string &label)
{
    EXPECT_EQ(a.predictedObs, b.predictedObs) << label;
    EXPECT_EQ(a.weight, b.weight) << label;
    EXPECT_EQ(a.latencyNs, b.latencyNs) << label;
    EXPECT_EQ(a.aborted, b.aborted) << label;
    EXPECT_EQ(a.realTime, b.realTime) << label;
}

std::vector<std::vector<uint32_t>>
syndromeBatch(const ExperimentContext &ctx, int count)
{
    // Mixed-k batch (including empty syndromes via k=0 slots is not
    // possible here, so prepend one manually).
    ImportanceSampler sampler(ctx.dem(), 6);
    std::vector<std::vector<uint32_t>> batch;
    batch.emplace_back(); // Empty syndrome.
    for (int i = 0; batch.size() < static_cast<size_t>(count);
         ++i) {
        Rng rng = Rng::forSample(0xbeef, 0, i);
        batch.push_back(
            sampler.sample(1 + i % 6, rng).defects);
    }
    return batch;
}

TEST(ParallelLer, DecodeBatchMatchesSequentialForEveryRegistrySpec)
{
    // Iterate the registry rather than hardcoding names, so any
    // future component is covered automatically: every main decoder
    // bare, and every predecoder piped into a main decoder.
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    const DecoderRegistry &registry = DecoderRegistry::instance();
    std::vector<std::string> specs;
    for (const std::string &main :
         registry.decoderComponents()) {
        specs.push_back(main);
    }
    for (const std::string &pre :
         registry.predecoderComponents()) {
        specs.push_back(pre + "+astrea");
        specs.push_back(pre + "+astrea_g||astrea_g");
    }
    ASSERT_GE(specs.size(), 4u);

    const std::vector<std::vector<uint32_t>> batch =
        syndromeBatch(ctx, 40);
    for (const std::string &spec : specs) {
        auto decoder = build(DecoderSpec::parse(spec),
                             ctx.graph(), ctx.paths());
        std::vector<DecodeResult> sequential;
        std::vector<DecodeTrace> sequential_traces(batch.size());
        sequential.reserve(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
            sequential.push_back(
                decoder->decode(batch[i],
                                &sequential_traces[i]));
        }
        for (int threads : {1, 4}) {
            std::vector<DecodeTrace> traces;
            const std::vector<DecodeResult> batched =
                decoder->decodeBatch(batch, &traces, threads);
            ASSERT_EQ(batched.size(), batch.size()) << spec;
            ASSERT_EQ(traces.size(), batch.size()) << spec;
            for (size_t i = 0; i < batch.size(); ++i) {
                const std::string label =
                    spec + " threads=" +
                    std::to_string(threads) + " sample " +
                    std::to_string(i);
                expectSameResult(sequential[i], batched[i],
                                 label);
                // Introspection must match too — chain lengths
                // moved from DecodeResult to DecodeTrace in the
                // workspace refactor.
                EXPECT_EQ(sequential_traces[i].chainLengths,
                          traces[i].chainLengths)
                    << label;
            }
        }
    }
}

TEST(ParallelLer, DecodeFilterSkipsDeterministicallyAcrossThreads)
{
    // The pre-decode filter must hide the skipped population from
    // the observer, count it as non-failing, and preserve
    // bit-identity across thread counts.
    const auto &ctx = ExperimentContext::get(5, 1e-3);
    auto decoder = makeDecoder("mwpm", ctx.graph(), ctx.paths());
    LerOptions options;
    options.kMax = 5;
    options.samplesPerK = 150;
    options.decodeFilter =
        [](int, const std::vector<uint32_t> &defects) {
            return defects.size() >= 4;
        };

    const auto run = [&](int threads) {
        options.threads = threads;
        std::vector<size_t> seen_sizes;
        const LerEstimate est = estimateLer(
            ctx, *decoder, options,
            [&](const SampleView &view) {
                seen_sizes.push_back(view.defects.size());
            });
        return std::make_pair(est, seen_sizes);
    };

    const auto [ref_est, ref_seen] = run(1);
    for (size_t size : ref_seen) {
        EXPECT_GE(size, 4u);
    }
    // Some samples pass and some are filtered at these settings.
    uint64_t total_samples = 0;
    for (const KStats &stats : ref_est.perK) {
        total_samples += stats.samples;
    }
    EXPECT_EQ(total_samples, 5u * 150u);
    EXPECT_GT(ref_seen.size(), 0u);
    EXPECT_LT(ref_seen.size(), total_samples);

    for (int threads : {2, 8}) {
        const auto [est, seen] = run(threads);
        expectSameEstimate(ref_est, est,
                           "filter threads=" +
                               std::to_string(threads));
        EXPECT_EQ(ref_seen, seen) << threads;
    }
}

TEST(ParallelLer, ThreadsZeroMeansHardwareConcurrency)
{
    LerOptions options;
    options.threads = 0;
    EXPECT_GE(options.resolvedThreads(), 1);
    options.threads = 3;
    EXPECT_EQ(options.resolvedThreads(), 3);
}

} // namespace
} // namespace qec
