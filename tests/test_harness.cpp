/**
 * @file
 * Tests for the evaluation harness: histograms, conditional
 * statistics, the importance sampler's distributional properties,
 * report formatting, and the hardware resource models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "qec/harness/context.hpp"
#include "qec/harness/histogram.hpp"
#include "qec/harness/importance_sampler.hpp"
#include "qec/harness/report.hpp"
#include "qec/hwmodel/resources.hpp"
#include "qec/util/rng.hpp"

namespace qec
{
namespace
{

TEST(Histogram, AccumulatesAndNormalizes)
{
    WeightedHistogram hist;
    hist.add(2, 0.5);
    hist.add(2, 0.25);
    hist.add(5, 0.25);
    EXPECT_EQ(hist.maxBin(), 5);
    EXPECT_DOUBLE_EQ(hist.weightAt(2), 0.75);
    EXPECT_DOUBLE_EQ(hist.weightAt(3), 0.0);
    EXPECT_DOUBLE_EQ(hist.totalWeight(), 1.0);
    EXPECT_DOUBLE_EQ(hist.probabilityAt(5, hist.totalWeight()),
                     0.25);
}

TEST(Histogram, EmptyIsSane)
{
    WeightedHistogram hist;
    EXPECT_EQ(hist.maxBin(), -1);
    EXPECT_DOUBLE_EQ(hist.weightAt(0), 0.0);
    EXPECT_DOUBLE_EQ(hist.probabilityAt(3, 0.0), 0.0);
}

TEST(Histogram, BinEdgesBracketEveryValue)
{
    // binOf computes with a log, the edge queries with an exp; the
    // two round independently, so binOf clamps against the reported
    // edges. Property, over several shapes (including ones whose
    // ceil-created last geometric bin is partial):
    //   lowerEdge(binOf(v)) <= v < upperEdge(binOf(v))
    // for every v in [lo, hi), with all interior seams flush.
    struct Shape
    {
        double lo, hi;
        int binsPerDecade;
    };
    const Shape shapes[] = {{1.0, 1e10, 24},
                            {1.0, 1e10, 7},
                            {0.5, 2e3, 3},
                            {3.0, 9.0, 5}};
    Rng rng(0xed9e);
    for (const Shape &shape : shapes) {
        const Histogram hist(shape.lo, shape.hi,
                             shape.binsPerDecade);
        const size_t n = hist.binCount();
        ASSERT_GE(n, 3u);

        // Flush seams: underflow/range, every geometric seam, and
        // the partial-last-bin/overflow seam.
        for (size_t i = 0; i + 1 < n; ++i) {
            EXPECT_EQ(hist.upperEdge(i), hist.lowerEdge(i + 1))
                << "seam " << i << " lo=" << shape.lo;
        }
        EXPECT_EQ(hist.lowerEdge(1), shape.lo);
        EXPECT_EQ(hist.lowerEdge(n - 1), shape.hi);

        const auto expectBracketed = [&](double v) {
            const size_t b = hist.binOf(v);
            ASSERT_GE(b, 1u) << v;
            ASSERT_LE(b, n - 2) << v;
            EXPECT_LE(hist.lowerEdge(b), v) << "bin " << b;
            EXPECT_LT(v, hist.upperEdge(b)) << "bin " << b;
        };
        // Deterministic probes: each bin's exact lower edge, its
        // geometric midpoint, and a value just below its upper edge
        // — the edge probes are where log/exp disagreement bites.
        for (size_t i = 1; i + 1 < n; ++i) {
            const double lower = hist.lowerEdge(i);
            const double upper = hist.upperEdge(i);
            expectBracketed(lower);
            expectBracketed(std::sqrt(lower * upper));
            expectBracketed(std::nextafter(upper, shape.lo));
        }
        // Log-uniform random sweep over the range.
        const double span = std::log(shape.hi / shape.lo);
        for (int trial = 0; trial < 2000; ++trial) {
            const double v =
                shape.lo *
                std::exp(rng.nextDouble() * span);
            if (v >= shape.lo && v < shape.hi) {
                expectBracketed(v);
            }
        }
        // Out-of-range values land in the named sentinel bins.
        EXPECT_EQ(hist.binOf(shape.hi), n - 1);
        EXPECT_EQ(hist.binOf(shape.hi * 10), n - 1);
        EXPECT_EQ(hist.binOf(shape.lo / 2), 0u);
        EXPECT_EQ(hist.binOf(-1.0), 0u);
    }
}

TEST(HwConditional, ConditionalRates)
{
    HwConditionalStats stats;
    stats.record(12, 1.0, false);
    stats.record(12, 1.0, true);
    stats.record(20, 2.0, true);
    stats.record(5, 10.0, false);
    EXPECT_DOUBLE_EQ(stats.conditionalFailRate(11, 15), 0.5);
    EXPECT_DOUBLE_EQ(stats.conditionalFailRate(11, 30), 0.75);
    EXPECT_DOUBLE_EQ(stats.conditionalFailRate(0, 10), 0.0);
    EXPECT_DOUBLE_EQ(stats.mass(11, 30), 4.0);
    EXPECT_EQ(stats.samplesIn(11, 30), 3u);
}

TEST(ImportanceSampler, OccurrenceMatchesPoissonForUniformProbs)
{
    // For M mechanisms of identical probability the Poisson-
    // binomial is an exact binomial.
    DetectorErrorModel dem(40, 1);
    const int m = 30;
    const double p = 0.01;
    for (int i = 0; i < m; ++i) {
        dem.addMechanism({static_cast<uint32_t>(i)}, 0, p);
    }
    ImportanceSampler sampler(dem, 8);
    double binom = std::pow(1 - p, m);
    for (int k = 1; k <= 8; ++k) {
        binom = binom * (p / (1 - p)) *
                static_cast<double>(m - k + 1) / k;
        EXPECT_NEAR(sampler.occurrenceProb(k), binom,
                    1e-12 + 1e-9 * binom)
            << "k=" << k;
    }
}

TEST(ImportanceSampler, SamplesHaveRequestedFaultCountParity)
{
    // k distinct single-detector mechanisms -> exactly k defects.
    DetectorErrorModel dem(64, 1);
    for (uint32_t i = 0; i < 40; ++i) {
        dem.addMechanism({i}, 0, 1e-3);
    }
    ImportanceSampler sampler(dem, 10);
    Rng rng(8);
    for (int k = 1; k <= 10; ++k) {
        for (int s = 0; s < 50; ++s) {
            const auto sample = sampler.sample(k, rng);
            EXPECT_EQ(sample.defects.size(),
                      static_cast<size_t>(k));
        }
    }
}

TEST(ImportanceSampler, OccurrenceCoversTailAboveLegacyDpCap)
{
    // Regression: the Poisson-binomial DP used to cap its inner
    // loop at k = 1000 regardless of k_max, silently dropping all
    // mass above the cap. A model whose fault count concentrates
    // past 1000 (1200 near-certain mechanisms -> mean 1080) then
    // reported occurrenceProb ~ 0 everywhere that matters.
    const int m = 1200;
    const double p = 0.9;
    DetectorErrorModel dem(m, 1);
    for (int i = 0; i < m; ++i) {
        dem.addMechanism({static_cast<uint32_t>(i)}, 0, p);
    }
    ImportanceSampler sampler(dem, m);
    double total = 0.0;
    for (int k = 0; k <= m; ++k) {
        total += sampler.occurrenceProb(k);
    }
    // The DP runs to k_max = M, so the distribution is complete.
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_LE(total, 1.0 + 1e-9);
    // The bulk of the mass sits above the legacy cap...
    EXPECT_GT(sampler.occurrenceProb(1080), 1e-3);
    // ...and the tail beyond the mode decays monotonically.
    for (int k = 1100; k < m; ++k) {
        EXPECT_GE(sampler.occurrenceProb(k),
                  sampler.occurrenceProb(k + 1))
            << "k=" << k;
    }
}

TEST(ImportanceSamplerDeathTest, RejectsOutOfRangeProbabilities)
{
    // p == 1 would divide the DP's draw weights p/(1-p) by zero
    // (and collapse every 1-p factor); the constructor must refuse
    // it, along with anything outside [0, 1).
    DetectorErrorModel certain(4, 1);
    certain.addMechanism({0}, 0, 0.01);
    certain.addMechanism({1}, 0, 1.0);
    EXPECT_DEATH(ImportanceSampler sampler(certain, 4),
                 "probability must be in \\[0, 1\\)");

    DetectorErrorModel overflow(4, 1);
    overflow.addMechanism({0}, 0, 1.5);
    EXPECT_DEATH(ImportanceSampler sampler(overflow, 4),
                 "probability must be in \\[0, 1\\)");
}

TEST(ImportanceSamplerDeathTest, RejectsAllZeroProbModel)
{
    // With every probability zero the conditional draw has nothing
    // to select (the cumulative weight table is all zeros), so
    // sample() could only spin; the constructor must refuse the
    // model up front. addMechanism drops p <= 0 inputs, but its
    // XOR-merge of two certain faults (1 + 1 - 2*1*1) produces a
    // genuine zero-probability mechanism.
    DetectorErrorModel dem(4, 1);
    dem.addMechanism({0}, 0, 1.0);
    dem.addMechanism({0}, 0, 1.0);
    ASSERT_EQ(dem.mechanisms().size(), 1u);
    ASSERT_EQ(dem.mechanisms()[0].prob, 0.0);
    EXPECT_DEATH(ImportanceSampler sampler(dem, 4),
                 "all mechanism probabilities are zero");
}

TEST(ImportanceSampler, WeightsBiasTowardProbableMechanisms)
{
    DetectorErrorModel dem(4, 1);
    dem.addMechanism({0}, 0, 0.2);
    dem.addMechanism({1}, 0, 0.001);
    ImportanceSampler sampler(dem, 1);
    Rng rng(5);
    int heavy = 0;
    const int trials = 2000;
    for (int s = 0; s < trials; ++s) {
        const auto sample = sampler.sample(1, rng);
        heavy += (sample.defects[0] == 0);
    }
    // w0/w1 = 0.25/0.001001 -> ~99.6% of draws pick mechanism 0.
    EXPECT_GT(heavy, trials * 0.98);
}

TEST(Report, TableRendersAllCells)
{
    ReportTable table("demo", {"a", "bb"});
    table.addRow({"1", "2"});
    table.addRow({"333"});
    const std::string out = table.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
}

TEST(Report, Formatting)
{
    EXPECT_EQ(formatSci(3.4e-15), "3.40e-15");
    EXPECT_EQ(formatFixed(1.25, 1), "1.2");
    EXPECT_EQ(formatRatio(5.0, 2.0), "2.5x");
    EXPECT_EQ(formatRatio(5.0, 0.0), "-");
}

TEST(HwModel, StorageMatchesPaperArithmetic)
{
    const auto &ctx11 = ExperimentContext::get(11, 1e-4);
    const auto &ctx13 = ExperimentContext::get(13, 1e-4);
    const StorageEstimate s11 = estimateStorage(ctx11.graph());
    const StorageEstimate s13 = estimateStorage(ctx13.graph());
    // Path table: n^2 cells at 2 bits; paper reports 129/345 KB.
    EXPECT_EQ(s11.pathTableBytes, 720ull * 720ull * 2 / 8);
    EXPECT_EQ(s13.pathTableBytes, 1176ull * 1176ull * 2 / 8);
    EXPECT_NEAR(static_cast<double>(s11.pathTableBytes) / 1024.0,
                129.0, 5.0);
    EXPECT_NEAR(static_cast<double>(s13.pathTableBytes) / 1024.0,
                345.0, 10.0);
    // Edge tables: ~3.6 KB and ~6 KB.
    EXPECT_NEAR(static_cast<double>(s11.edgeTableBytes) / 1024.0,
                3.6, 0.5);
    EXPECT_NEAR(static_cast<double>(s13.edgeTableBytes) / 1024.0,
                6.0, 0.5);
}

TEST(HwModel, FpgaEstimateScalesWithLanes)
{
    const auto &ctx = ExperimentContext::get(11, 1e-4);
    const FpgaEstimate one = estimateFpga(ctx.graph(), 1);
    const FpgaEstimate eight = estimateFpga(ctx.graph(), 8);
    EXPECT_GT(one.luts, 0u);
    EXPECT_GT(eight.luts, one.luts);
    EXPECT_GT(eight.flipFlops, one.flipFlops);
    // The paper synthesizes at 3% LUTs; the model must stay small.
    EXPECT_LT(eight.lutPercent, 3.0);
}

TEST(LatencyHistogram, EmptyQuantilesAreZero)
{
    Histogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(LatencyHistogram, SingleBucketReturnsTheValue)
{
    // Every sample in one bucket: interpolation is clamped to the
    // observed [min, max], so any quantile is exactly the value.
    Histogram hist;
    for (int i = 0; i < 10; ++i) {
        hist.add(5.0);
    }
    EXPECT_EQ(hist.count(), 10u);
    EXPECT_DOUBLE_EQ(hist.min(), 5.0);
    EXPECT_DOUBLE_EQ(hist.max(), 5.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 5.0);
    for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(hist.quantile(q), 5.0) << "q=" << q;
    }
}

TEST(LatencyHistogram, ExactBoundaryInterpolation)
{
    // 50 samples at 10 and 50 at 1000. rank(q) = q*n lands exactly
    // on the lower bin's cumulative count at q = 0.5, so the
    // documented semantics give the *upper edge of the lower bin*
    // (within-fraction 1.0) — one geometric bin step above 10,
    // far below the upper population.
    Histogram hist;
    for (int i = 0; i < 50; ++i) {
        hist.add(10.0);
    }
    for (int i = 0; i < 50; ++i) {
        hist.add(1000.0);
    }
    const double atBoundary = hist.quantile(0.5);
    EXPECT_GE(atBoundary, 10.0);
    EXPECT_LT(atBoundary, 12.0); // One 24-per-decade step ≈ 1.1x.
    // Just past the boundary the quantile jumps to the upper bin.
    EXPECT_GT(hist.quantile(0.51), 500.0);
    // Extremes clamp to the observed range exactly.
    EXPECT_DOUBLE_EQ(hist.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 1000.0);
    // Quantiles are monotone in q.
    double prev = 0.0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        const double v = hist.quantile(q);
        EXPECT_GE(v, prev) << "q=" << q;
        prev = v;
    }
}

TEST(LatencyHistogram, UnderflowAndOverflowClampToObserved)
{
    Histogram hist(1.0, 1e10);
    hist.add(0.25); // Below lo: underflow bin.
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.25);
    hist.add(5e12); // Above hi: overflow bin.
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 5e12);
    EXPECT_DOUBLE_EQ(hist.min(), 0.25);
    EXPECT_DOUBLE_EQ(hist.max(), 5e12);
}

TEST(LatencyHistogram, MergeMatchesCombinedStream)
{
    Histogram a, b, combined;
    for (int i = 1; i <= 200; ++i) {
        const double v = 10.0 * i;
        (i % 2 ? a : b).add(v);
        combined.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
    for (double q : {0.1, 0.5, 0.9, 0.99}) {
        EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q))
            << "q=" << q;
    }
    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.quantile(0.5), 0.0);
}

TEST(Context, CacheReturnsSameInstance)
{
    const auto &a = ExperimentContext::get(3, 1e-3);
    const auto &b = ExperimentContext::get(3, 1e-3);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.rounds(), 3);
    EXPECT_EQ(a.graph().numDetectors(),
              a.experiment().circuit.numDetectors());
}

} // namespace
} // namespace qec
