/**
 * @file
 * Chaos suite: the DecodeServer under deterministic fault storms.
 *
 * Each scenario threads a seeded FaultInjector schedule through the
 * worker loop (stalls, admission-reject storms, corrupted streams,
 * throwing handlers) while multiple producers push traffic with
 * submitWithRetry, then checks the invariants the robustness
 * contract promises:
 *
 *  - never lose an accepted request: after drain(),
 *    accepted == completed + expired exactly;
 *  - never double-fire: the handler runs exactly once per accepted
 *    tag and zero times for shed tags;
 *  - always drain: stop() returns with no stranded slots even when
 *    a submit() races it (regression for the documented
 *    submit()/stop() race).
 *
 * Runs under ThreadSanitizer and UBSan in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "qec/api/decoder_spec.hpp"
#include "qec/api/registry.hpp"
#include "qec/api/status.hpp"
#include "qec/fault/fault_injector.hpp"
#include "qec/harness/context.hpp"
#include "qec/serve/server.hpp"
#include "qec/serve/stream.hpp"

namespace qec
{
namespace
{

const ExperimentContext &
chaosContext()
{
    return ExperimentContext::get(5, 1e-3);
}

int
chaosDetectorsPerRound(const ExperimentContext &ctx)
{
    return static_cast<int>(
        ctx.experiment().circuit.numDetectors() /
        static_cast<size_t>(ctx.rounds() + 1));
}

/**
 * Drive a faulted server with 4 producers x 40 streams each and
 * check the exactly-once / never-lose / always-drain invariants.
 */
void
runChaosScenario(const FaultPlan &plan, uint64_t seed)
{
    const auto &ctx = chaosContext();
    const int detPerRound = chaosDetectorsPerRound(ctx);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 40;
    const auto streams =
        sampleStreams(ctx, 0xc4a05 ^ seed, kProducers * kPerProducer);
    auto proto = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                       ctx.paths());

    FaultInjector faults(seed, plan);
    std::vector<std::atomic<int>> fired(streams.size());
    std::atomic<uint64_t> nonOk{0};

    ServeConfig config;
    config.workers = 3;
    config.queueCapacity = 8; // Small: force real backpressure.
    config.faults = &faults;
    DecodeServer server(
        *proto, detPerRound, config,
        [&](const DecodeResponse &r) {
            fired[r.tag].fetch_add(1, std::memory_order_relaxed);
            if (r.status != DecodeStatus::kOk) {
                nonOk.fetch_add(1, std::memory_order_relaxed);
            }
            if (faults.injectThrow()) {
                throw std::runtime_error("chaos handler throw");
            }
        });

    std::vector<int> acceptedPerTag(streams.size(), 0);
    std::vector<std::thread> producers;
    std::atomic<uint64_t> shed{0};
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            RetryPolicy patient;
            patient.maxAttempts = 64;
            patient.initialBackoffNs = 2'000;
            patient.maxBackoffNs = 200'000;
            for (int i = 0; i < kPerProducer; ++i) {
                const size_t tag =
                    static_cast<size_t>(p) * kPerProducer + i;
                const SubmitResult r = server.submitWithRetry(
                    streams[tag], tag, /*deadlineNs=*/0, patient);
                if (r.accepted) {
                    acceptedPerTag[tag] = 1; // Disjoint cells.
                } else {
                    shed.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto &t : producers) {
        t.join();
    }
    server.drain();
    server.stop();

    const ServeStats stats = server.stats();
    const FaultInjector::Counts counts = faults.counts();

    // Never lose an accepted request, and count each side exactly.
    EXPECT_EQ(stats.accepted + shed.load(), streams.size());
    EXPECT_EQ(stats.accepted, stats.completed + stats.expired);
    EXPECT_EQ(stats.expired, 0u); // No deadlines in this scenario.

    // Exactly-once handler delivery per accepted tag.
    for (size_t i = 0; i < streams.size(); ++i) {
        EXPECT_EQ(fired[i].load(), acceptedPerTag[i])
            << "tag " << i;
    }

    // Every corrupted stream fails with a non-ok status — and
    // nothing else does (corruption makes a detector id
    // deterministically out of range).
    EXPECT_EQ(stats.failed, counts.corrupted);
    EXPECT_EQ(nonOk.load(), counts.corrupted);

    // Thrown handler exceptions are contained and all counted.
    EXPECT_EQ(stats.handlerExceptions, counts.throws);
    if (plan.throwProbability > 0) {
        EXPECT_GT(counts.throws, 0u);
    }
    if (plan.corruptProbability > 0) {
        EXPECT_GT(counts.corrupted, 0u);
    }
    if (plan.rejectProbability > 0) {
        EXPECT_GT(counts.rejects, 0u);
    }

    // The pool drained: nothing queued, nobody busy.
    const HealthSnapshot snap = server.health();
    EXPECT_EQ(snap.queueDepth, 0u);
    EXPECT_EQ(snap.oldestInFlightAgeNs, 0u);
}

TEST(Chaos, SurvivesWorkerStalls)
{
    FaultPlan plan;
    plan.stallProbability = 0.25;
    plan.stallNs = 20'000; // 20 us: visible, not slow.
    runChaosScenario(plan, 0x57a11);
}

TEST(Chaos, SurvivesCorruptedStreams)
{
    FaultPlan plan;
    plan.corruptProbability = 0.3;
    runChaosScenario(plan, 0xc0bb);
}

TEST(Chaos, SurvivesAdmissionRejectStorm)
{
    FaultPlan plan;
    plan.rejectProbability = 0.5;
    runChaosScenario(plan, 0x4e1ec7);
}

TEST(Chaos, SurvivesThrowingHandlers)
{
    FaultPlan plan;
    plan.throwProbability = 0.5;
    runChaosScenario(plan, 0x7404);
}

TEST(Chaos, SurvivesEverythingAtOnce)
{
    FaultPlan plan;
    plan.stallProbability = 0.1;
    plan.stallNs = 10'000;
    plan.corruptProbability = 0.2;
    plan.rejectProbability = 0.3;
    plan.throwProbability = 0.3;
    runChaosScenario(plan, 0xa11);
}

/**
 * Regression for the submit()/stop() race: a producer spins
 * submitting while the main thread stops the server. Pre-fix, a
 * submit that passed the stopped check while stop() drained could
 * strand its request (accepted but never served) or trip the
 * drained-ring assertion; now it is either rejected or fully
 * served.
 */
TEST(Chaos, StopNeverStrandsConcurrentSubmit)
{
    const auto &ctx = chaosContext();
    const int detPerRound = chaosDetectorsPerRound(ctx);
    const auto streams = sampleStreams(ctx, 0x57a6, 4);

    auto proto = build(DecoderSpec::parse("mwpm"), ctx.graph(),
                       ctx.paths());

    for (int iter = 0; iter < 50; ++iter) {
        std::atomic<uint64_t> firedCount{0};
        ServeConfig config;
        config.workers = 2;
        config.queueCapacity = 4;
        DecodeServer server(
            *proto, detPerRound, config,
            [&](const DecodeResponse &) {
                firedCount.fetch_add(1,
                                     std::memory_order_relaxed);
            });

        std::atomic<bool> quit{false};
        std::atomic<uint64_t> acceptedLocal{0};
        std::thread producer([&] {
            uint64_t tag = 0;
            while (!quit.load(std::memory_order_acquire)) {
                if (server.submit(streams[tag % streams.size()],
                                  tag)) {
                    acceptedLocal.fetch_add(
                        1, std::memory_order_relaxed);
                }
                ++tag;
            }
        });

        // Vary the race window across iterations.
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(iter * 200));
        server.stop(); // Must not strand the racing submit.
        quit.store(true, std::memory_order_release);
        producer.join();

        const ServeStats stats = server.stats();
        EXPECT_EQ(stats.accepted, acceptedLocal.load());
        EXPECT_EQ(stats.accepted,
                  stats.completed + stats.expired);
        EXPECT_EQ(firedCount.load(), stats.accepted);
    }
}

} // namespace
} // namespace qec
