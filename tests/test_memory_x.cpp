/**
 * @file
 * Tests for the X-basis memory experiment (the dual of the paper's
 * Z-memory evaluation): noiseless silence, dual-graph structure,
 * and end-to-end decodability of every single fault.
 */

#include <gtest/gtest.h>

#include "qec/decoders/mwpm_decoder.hpp"
#include "qec/dem/decompose.hpp"
#include "qec/graph/path_table.hpp"
#include "qec/sim/error_enumerator.hpp"
#include "qec/sim/frame_simulator.hpp"
#include "qec/surface/circuit_gen.hpp"
#include "qec/surface/layout.hpp"

namespace qec
{
namespace
{

TEST(MemoryX, NoiselessCircuitIsSilent)
{
    SurfaceCodeLayout layout(5);
    const MemoryExperiment exp =
        generateMemoryX(layout, 5, NoiseParams::noiseless());
    FrameSimulator sim(exp.circuit);
    Rng rng(1);
    BatchResult out;
    sim.sampleBatch(rng, out);
    for (uint64_t word : out.detectors) {
        EXPECT_EQ(word, 0ull);
    }
    EXPECT_EQ(out.observables[0], 0ull);
}

TEST(MemoryX, DetectorCountMatchesXStabilizers)
{
    SurfaceCodeLayout layout(5);
    const MemoryExperiment exp =
        generateMemoryX(layout, 5, NoiseParams::uniform(1e-3));
    EXPECT_EQ(exp.circuit.numDetectors(),
              layout.xStabilizers().size() * (5 + 1));
}

TEST(MemoryX, DemIsGraphlikeToo)
{
    SurfaceCodeLayout layout(3);
    const MemoryExperiment exp =
        generateMemoryX(layout, 3, NoiseParams::uniform(1e-3));
    const DetectorErrorModel dem =
        buildDetectorErrorModel(exp.circuit);
    const GraphlikeDem graphlike = decomposeToGraphlike(dem);
    EXPECT_EQ(graphlike.stats.compositeMechanisms, 0u);
    EXPECT_EQ(graphlike.stats.forcedPairings, 0u);
    EXPECT_GT(dem.mechanisms().size(),
              static_cast<size_t>(dem.numDetectors()));
}

TEST(MemoryX, EverySingleFaultDecodesWithMwpm)
{
    SurfaceCodeLayout layout(3);
    const MemoryExperiment exp =
        generateMemoryX(layout, 3, NoiseParams::uniform(1e-3));
    const DetectorErrorModel dem =
        buildDetectorErrorModel(exp.circuit);
    const DecodingGraph graph =
        DecodingGraph::fromDem(decomposeToGraphlike(dem),
                               exp.detectors);
    const PathTable paths(graph);
    MwpmDecoder decoder(graph, paths);
    for (const DemMechanism &m : dem.mechanisms()) {
        const DecodeResult result = decoder.decode(m.dets);
        ASSERT_FALSE(result.aborted);
        ASSERT_EQ(result.predictedObs, m.obsMask);
    }
}

TEST(MemoryX, LogicalZChainIsInvisibleToXMemory)
{
    // A full logical-Z (phase) chain must flip nothing in an
    // X-basis memory experiment's detectors *or* observable — the
    // dual of the Z-memory property.
    SurfaceCodeLayout layout(3);
    const MemoryExperiment exp =
        generateMemoryX(layout, 3, NoiseParams::noiseless());
    Circuit patched(exp.circuit.numQubits());
    bool injected = false;
    for (const Instruction &inst : exp.circuit.instructions()) {
        switch (inst.type) {
          case OpType::R:
            patched.appendReset(inst.targets);
            break;
          case OpType::H:
            patched.appendH(inst.targets);
            if (!injected) {
                // After the initial basis rotation.
                patched.appendZError(layout.logicalZSupport(),
                                     1.0);
                injected = true;
            }
            break;
          case OpType::CX: patched.appendCx(inst.targets); break;
          case OpType::M:
            patched.appendMeasure(inst.targets, inst.arg);
            break;
          case OpType::Tick: patched.appendTick(); break;
          case OpType::Detector:
            patched.appendDetector(inst.targets);
            break;
          case OpType::Observable:
            patched.appendObservable(inst.id, inst.targets);
            break;
          default: FAIL();
        }
    }
    FrameSimulator sim(patched);
    Rng rng(4);
    BatchResult out;
    sim.sampleBatch(rng, out);
    for (uint64_t word : out.detectors) {
        EXPECT_EQ(word, 0ull);
    }
    // Logical Z anticommutes with logical X: it *flips* the X
    // observable (this is a logical-Z error on X memory).
    EXPECT_EQ(out.observables[0], ~0ull);
}

} // namespace
} // namespace qec
