/**
 * @file
 * Parameterized property sweeps for Promatch across distances,
 * error rates, and configurations — the invariants behind the
 * paper's coverage and adaptivity claims.
 */

#include <gtest/gtest.h>

#include <set>

#include "qec/decoders/latency.hpp"
#include "qec/harness/context.hpp"
#include "qec/harness/importance_sampler.hpp"
#include "qec/predecode/promatch.hpp"

namespace qec
{
namespace
{

struct SweepParam
{
    int distance;
    double p;
    bool exactSingleton;
    bool adaptive;
};

class PromatchSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(PromatchSweep, InvariantsHoldOnHighHwStream)
{
    const SweepParam param = GetParam();
    const auto &ctx =
        ExperimentContext::get(param.distance, param.p);
    LatencyConfig latency;
    PromatchConfig config;
    config.exactSingletonCheck = param.exactSingleton;
    config.adaptiveTarget = param.adaptive;
    PromatchPredecoder promatch(ctx.graph(), ctx.paths(), latency,
                                config);

    const long long budget = static_cast<long long>(
        latency.effectiveBudgetNs() / latency.nsPerCycle);
    ImportanceSampler sampler(ctx.dem(), 20);
    Rng rng(0x5eed + param.distance);

    int checked = 0;
    int guard = 0;
    while (checked < 40 && ++guard < 30000) {
        const auto sample =
            sampler.sample(8 + rng.nextBelow(10), rng);
        if (sample.defects.size() <= 10) {
            continue;
        }
        ++checked;
        const PredecodeResult result =
            promatch.predecode(sample.defects, budget);

        // Coverage: residual must fit the main decoder.
        EXPECT_LE(result.residual.size(), 10u);
        // Residual is a sorted subset of the input.
        const std::set<uint32_t> input(sample.defects.begin(),
                                       sample.defects.end());
        uint32_t prev = 0;
        bool first = true;
        for (uint32_t det : result.residual) {
            EXPECT_TRUE(input.count(det));
            if (!first) {
                EXPECT_GT(det, prev);
            }
            prev = det;
            first = false;
        }
        // Cycle accounting: engaged predecodes pay the fill cost
        // and at least one round.
        EXPECT_GE(result.cycles, latency.promatchFixedCycles);
        EXPECT_GE(result.rounds, 1);
        // Prematching must have removed something and carry
        // positive total weight.
        EXPECT_LT(result.residual.size(), sample.defects.size());
        EXPECT_GT(result.weight, 0.0);
        // Step flags are consistent with the deepest() accessor.
        const int deepest = result.steps.deepest();
        EXPECT_GE(deepest, 1);
        EXPECT_LE(deepest, 4);
    }
    EXPECT_EQ(checked, 40) << "not enough high-HW syndromes";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PromatchSweep,
    ::testing::Values(SweepParam{9, 1e-3, false, true},
                      SweepParam{9, 1e-3, true, true},
                      SweepParam{9, 1e-3, false, false},
                      SweepParam{11, 1e-4, false, true},
                      SweepParam{11, 5e-4, false, true},
                      SweepParam{13, 1e-4, false, true},
                      SweepParam{13, 1e-4, true, true},
                      SweepParam{13, 5e-4, false, true}));

TEST(PromatchBudget, TighterBudgetNeverLoosensCoverage)
{
    const auto &ctx = ExperimentContext::get(11, 1e-4);
    PromatchPredecoder promatch(ctx.graph(), ctx.paths());
    ImportanceSampler sampler(ctx.dem(), 20);
    Rng rng(0xabc);
    int checked = 0, guard = 0;
    while (checked < 25 && ++guard < 30000) {
        const auto sample = sampler.sample(10, rng);
        if (sample.defects.size() <= 10) {
            continue;
        }
        ++checked;
        size_t prev_residual = 1000;
        for (long long budget : {240ll, 150ll, 40ll}) {
            const PredecodeResult result =
                promatch.predecode(sample.defects, budget);
            EXPECT_LE(result.residual.size(), prev_residual);
            prev_residual = result.residual.size();
        }
    }
    EXPECT_EQ(checked, 25);
}

} // namespace
} // namespace qec
