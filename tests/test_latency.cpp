/**
 * @file
 * Tests for the hardware latency model (§6.4).
 */

#include <gtest/gtest.h>

#include "qec/decoders/latency.hpp"

namespace qec
{
namespace
{

TEST(Latency, MatchingCountMatchesPaper)
{
    // §2.3: 945 possible matchings at Hamming weight 10.
    EXPECT_EQ(LatencyConfig::matchingCount(10), 945);
    EXPECT_EQ(LatencyConfig::matchingCount(2), 1);
    EXPECT_EQ(LatencyConfig::matchingCount(4), 3);
    EXPECT_EQ(LatencyConfig::matchingCount(6), 15);
    EXPECT_EQ(LatencyConfig::matchingCount(8), 105);
    // Odd HW: one defect pairs with the boundary.
    EXPECT_EQ(LatencyConfig::matchingCount(3), 3);
    EXPECT_EQ(LatencyConfig::matchingCount(5), 15);
    EXPECT_EQ(LatencyConfig::matchingCount(0), 0);
}

TEST(Latency, AstreaCyclesMonotone)
{
    LatencyConfig cfg;
    long long prev = 0;
    for (int hw = 1; hw <= cfg.astreaMaxHw; ++hw) {
        const long long cycles = cfg.astreaCycles(hw);
        ASSERT_GE(cycles, prev);
        prev = cycles;
    }
}

TEST(Latency, AstreaLatencyNearPublishedValue)
{
    // Astrea reports ~456 ns at HW = 10; the model should land in
    // the same ballpark (within ~20%).
    LatencyConfig cfg;
    const double ns = cfg.astreaLatencyNs(10);
    EXPECT_GT(ns, 380.0);
    EXPECT_LT(ns, 550.0);
}

TEST(Latency, BeyondMaxHwIsUnreachable)
{
    LatencyConfig cfg;
    EXPECT_LT(cfg.astreaCycles(11), 0);
    EXPECT_LT(cfg.astreaLatencyNs(12), 0.0);
}

TEST(Latency, EffectiveBudgetReservesCompareCycles)
{
    LatencyConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.effectiveBudgetNs(),
                     1000.0 - 10 * 4.0); // 960 ns (§6.4).
}

TEST(Latency, TargetLadderFitsWithinBudget)
{
    // All three adaptive targets {10, 8, 6} must be affordable in a
    // fresh budget, and the ladder must be strictly cheaper.
    LatencyConfig cfg;
    const long long budget = static_cast<long long>(
        cfg.effectiveBudgetNs() / cfg.nsPerCycle);
    EXPECT_LE(cfg.astreaCycles(10), budget);
    EXPECT_LT(cfg.astreaCycles(8), cfg.astreaCycles(10));
    EXPECT_LT(cfg.astreaCycles(6), cfg.astreaCycles(8));
}

} // namespace
} // namespace qec
