/**
 * @file
 * Unit tests for Pauli algebra and the circuit IR.
 */

#include <gtest/gtest.h>

#include <set>

#include "qec/circuit/circuit.hpp"
#include "qec/pauli/pauli.hpp"

namespace qec
{
namespace
{

TEST(Pauli, ComponentsRoundTrip)
{
    for (bool x : {false, true}) {
        for (bool z : {false, true}) {
            const Pauli p = makePauli(x, z);
            EXPECT_EQ(pauliX(p), x);
            EXPECT_EQ(pauliZ(p), z);
        }
    }
}

TEST(Pauli, ProductTable)
{
    EXPECT_EQ(pauliProduct(Pauli::X, Pauli::Z), Pauli::Y);
    EXPECT_EQ(pauliProduct(Pauli::X, Pauli::X), Pauli::I);
    EXPECT_EQ(pauliProduct(Pauli::Y, Pauli::X), Pauli::Z);
    EXPECT_EQ(pauliProduct(Pauli::I, Pauli::Z), Pauli::Z);
}

TEST(Pauli, Anticommutation)
{
    EXPECT_TRUE(pauliAnticommute(Pauli::X, Pauli::Z));
    EXPECT_TRUE(pauliAnticommute(Pauli::X, Pauli::Y));
    EXPECT_TRUE(pauliAnticommute(Pauli::Y, Pauli::Z));
    EXPECT_FALSE(pauliAnticommute(Pauli::X, Pauli::X));
    EXPECT_FALSE(pauliAnticommute(Pauli::I, Pauli::Y));
}

TEST(Pauli, CharRoundTrip)
{
    for (Pauli p :
         {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z}) {
        EXPECT_EQ(pauliFromChar(pauliChar(p)), p);
    }
}

TEST(SparsePauli, MulMergesAndCancels)
{
    SparsePauli sp;
    sp.mul(5, Pauli::X);
    sp.mul(2, Pauli::Z);
    sp.mul(5, Pauli::Z); // X*Z = Y on qubit 5.
    EXPECT_EQ(sp.weight(), 2u);
    EXPECT_EQ(sp.qubits, (std::vector<uint32_t>{2, 5}));
    EXPECT_EQ(sp.ops[1], Pauli::Y);
    sp.mul(2, Pauli::Z); // Cancels.
    EXPECT_EQ(sp.weight(), 1u);
    EXPECT_EQ(sp.str(), "Y5");
}

TEST(Pauli, TwoQubitPaulisAreThe15NonIdentities)
{
    const auto pairs = twoQubitPaulis();
    EXPECT_EQ(pairs.size(), 15u);
    std::set<std::pair<Pauli, Pauli>> unique(pairs.begin(),
                                             pairs.end());
    EXPECT_EQ(unique.size(), 15u);
    for (const auto &[a, b] : pairs) {
        EXPECT_FALSE(a == Pauli::I && b == Pauli::I);
    }
}

TEST(Circuit, BuilderTracksCounts)
{
    Circuit c(4);
    c.appendReset({0, 1, 2, 3});
    c.appendH({0});
    c.appendCx({0, 1, 2, 3});
    const uint32_t base = c.appendMeasure({1, 3}, 0.01);
    EXPECT_EQ(base, 0u);
    c.appendDetector({0});
    c.appendDetector({1});
    c.appendObservable(0, {0, 1});
    EXPECT_EQ(c.numMeasurements(), 2u);
    EXPECT_EQ(c.numDetectors(), 2u);
    EXPECT_EQ(c.numObservables(), 1u);
    c.validate();
}

TEST(Circuit, SecondMeasureBlockContinuesRecord)
{
    Circuit c(2);
    EXPECT_EQ(c.appendMeasure({0}, 0.0), 0u);
    EXPECT_EQ(c.appendMeasure({1}, 0.0), 1u);
    EXPECT_EQ(c.numMeasurements(), 2u);
}

TEST(Circuit, ValidateRejectsForwardReference)
{
    Circuit c(2);
    c.appendDetector({0}); // References measurement 0 before it exists.
    EXPECT_DEATH(c.validate(), "detector/observable references");
}

TEST(Circuit, ValidateRejectsOutOfRangeQubit)
{
    Circuit c(2);
    c.appendH({5});
    EXPECT_DEATH(c.validate(), "qubit index out of range");
}

TEST(CircuitText, RoundTrip)
{
    Circuit c(6);
    c.appendReset({0, 1, 2});
    c.appendXError({0, 1}, 0.001);
    c.appendH({3});
    c.appendDepolarize1({3}, 0.0001);
    c.appendCx({0, 3, 1, 4});
    c.appendDepolarize2({0, 3}, 0.0002);
    c.appendTick();
    c.appendMeasure({3, 4}, 0.003);
    c.appendDetector({0, 1});
    c.appendObservable(0, {1});
    c.validate();

    const std::string text = circuitToText(c);
    const Circuit parsed = circuitFromText(text);
    EXPECT_EQ(parsed.numQubits(), c.numQubits());
    EXPECT_EQ(parsed.numMeasurements(), c.numMeasurements());
    EXPECT_EQ(parsed.numDetectors(), c.numDetectors());
    EXPECT_EQ(parsed.numObservables(), c.numObservables());
    // Second serialization must be identical (fixed point).
    EXPECT_EQ(circuitToText(parsed), text);
}

TEST(CircuitText, ParsesCommentsAndBlankLines)
{
    const std::string text =
        "QUBITS 3\n"
        "# a comment\n"
        "\n"
        "H 0 1  # trailing comment\n"
        "M(0.5) 2\n";
    const Circuit parsed = circuitFromText(text);
    EXPECT_EQ(parsed.numQubits(), 3u);
    EXPECT_EQ(parsed.numMeasurements(), 1u);
    EXPECT_EQ(parsed.instructions().size(), 2u);
    EXPECT_DOUBLE_EQ(parsed.instructions()[1].arg, 0.5);
}

} // namespace
} // namespace qec
