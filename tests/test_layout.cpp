/**
 * @file
 * Tests for the rotated surface code layout.
 *
 * The constructor already proves commutation/rank/logical properties;
 * these tests re-verify the key invariants externally and pin down
 * conventions the rest of the library depends on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "qec/surface/layout.hpp"

namespace qec
{
namespace
{

class LayoutTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LayoutTest, Counts)
{
    const int d = GetParam();
    SurfaceCodeLayout layout(d);
    EXPECT_EQ(layout.distance(), d);
    EXPECT_EQ(layout.numDataQubits(),
              static_cast<uint32_t>(d * d));
    EXPECT_EQ(layout.numStabilizers(),
              static_cast<uint32_t>(d * d - 1));
    EXPECT_EQ(layout.zStabilizers().size(),
              static_cast<size_t>((d * d - 1) / 2));
    EXPECT_EQ(layout.xStabilizers().size(),
              static_cast<size_t>((d * d - 1) / 2));
}

TEST_P(LayoutTest, SupportSizesAreTwoOrFour)
{
    SurfaceCodeLayout layout(GetParam());
    for (const Stabilizer &stab : layout.stabilizers()) {
        EXPECT_TRUE(stab.support.size() == 2 ||
                    stab.support.size() == 4);
    }
}

TEST_P(LayoutTest, EveryDataQubitInAtMostTwoZStabilizers)
{
    SurfaceCodeLayout layout(GetParam());
    std::map<uint32_t, int> z_count;
    for (uint32_t zi : layout.zStabilizers()) {
        for (uint32_t q : layout.stabilizers()[zi].support) {
            ++z_count[q];
        }
    }
    for (const auto &[q, count] : z_count) {
        EXPECT_LE(count, 2) << "data qubit " << q;
    }
    // Every data qubit is covered by at least one Z stabilizer.
    EXPECT_EQ(z_count.size(), layout.numDataQubits());
}

TEST_P(LayoutTest, AncillaIndicesAreContiguousAfterData)
{
    SurfaceCodeLayout layout(GetParam());
    uint32_t expected = layout.numDataQubits();
    for (const Stabilizer &stab : layout.stabilizers()) {
        EXPECT_EQ(stab.ancilla, expected);
        ++expected;
    }
}

TEST_P(LayoutTest, LogicalOperatorsHaveWeightD)
{
    const int d = GetParam();
    SurfaceCodeLayout layout(d);
    EXPECT_EQ(layout.logicalZSupport().size(),
              static_cast<size_t>(d));
    EXPECT_EQ(layout.logicalXSupport().size(),
              static_cast<size_t>(d));
}

TEST_P(LayoutTest, LogicalZCommutesWithAllXStabilizers)
{
    SurfaceCodeLayout layout(GetParam());
    const auto &lz = layout.logicalZSupport();
    for (uint32_t xi : layout.xStabilizers()) {
        const auto &support = layout.stabilizers()[xi].support;
        int overlap = 0;
        for (uint32_t q : support) {
            if (std::find(lz.begin(), lz.end(), q) != lz.end()) {
                ++overlap;
            }
        }
        EXPECT_EQ(overlap % 2, 0);
    }
}

TEST_P(LayoutTest, LogicalXCommutesWithAllZStabilizers)
{
    SurfaceCodeLayout layout(GetParam());
    const auto &lx = layout.logicalXSupport();
    for (uint32_t zi : layout.zStabilizers()) {
        const auto &support = layout.stabilizers()[zi].support;
        int overlap = 0;
        for (uint32_t q : support) {
            if (std::find(lx.begin(), lx.end(), q) != lx.end()) {
                ++overlap;
            }
        }
        EXPECT_EQ(overlap % 2, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, LayoutTest,
                         ::testing::Values(3, 5, 7, 9, 11, 13));

TEST(Layout, RejectsEvenDistance)
{
    EXPECT_DEATH(SurfaceCodeLayout(4), "odd distance");
}

TEST(Layout, DataIndexIsRowMajor)
{
    SurfaceCodeLayout layout(5);
    EXPECT_EQ(layout.dataIndex(0, 0), 0u);
    EXPECT_EQ(layout.dataIndex(1, 0), 5u);
    EXPECT_EQ(layout.dataIndex(4, 4), 24u);
}

} // namespace
} // namespace qec
