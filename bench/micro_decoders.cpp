/**
 * @file
 * Google-benchmark microbenchmarks of the software substrate: frame
 * simulation throughput, DEM construction, path-table builds, and
 * per-decoder software decode latency as a function of syndrome
 * Hamming weight.
 *
 * These measure *host software* speed (how fast the reproduction
 * itself runs), not the modeled 250 MHz hardware latency of
 * Tables 4/5.
 */

#include <benchmark/benchmark.h>

#include "qec/qec.hpp"

using namespace qec;

namespace
{

/** Pre-sampled syndromes of a given k for decoder benchmarks. */
std::vector<std::vector<uint32_t>>
sampleSyndromes(const ExperimentContext &ctx, int k, int count)
{
    ImportanceSampler sampler(ctx.dem(), 24);
    Rng rng(0xbe7c);
    std::vector<std::vector<uint32_t>> out;
    for (int i = 0; i < count; ++i) {
        out.push_back(sampler.sample(k, rng).defects);
    }
    return out;
}

void
BM_FrameSimulatorShots(benchmark::State &state)
{
    const auto &ctx = ExperimentContext::get(
        static_cast<int>(state.range(0)), 1e-4);
    FrameSimulator sim(ctx.experiment().circuit);
    Rng rng(1);
    BatchResult batch;
    for (auto _ : state) {
        sim.sampleBatch(rng, batch);
        benchmark::DoNotOptimize(batch.detectors.data());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FrameSimulatorShots)->Arg(5)->Arg(9)->Arg(13);

void
BM_BuildDem(benchmark::State &state)
{
    SurfaceCodeLayout layout(static_cast<int>(state.range(0)));
    const MemoryExperiment exp = generateMemoryZ(
        layout, layout.distance(), NoiseParams::uniform(1e-4));
    for (auto _ : state) {
        const DetectorErrorModel dem =
            buildDetectorErrorModel(exp.circuit);
        benchmark::DoNotOptimize(dem.mechanisms().size());
    }
}
BENCHMARK(BM_BuildDem)->Arg(5)->Arg(9)->Unit(
    benchmark::kMillisecond);

void
BM_PathTableBuild(benchmark::State &state)
{
    const auto &ctx = ExperimentContext::get(
        static_cast<int>(state.range(0)), 1e-4);
    for (auto _ : state) {
        PathTable paths(ctx.graph());
        benchmark::DoNotOptimize(paths.numDetectors());
    }
}
BENCHMARK(BM_PathTableBuild)->Arg(5)->Arg(9)->Unit(
    benchmark::kMillisecond);

void
decoderBench(benchmark::State &state, const char *name)
{
    const auto &ctx = ExperimentContext::get(13, 1e-4);
    auto decoder = makeDecoder(name, ctx.graph(), ctx.paths());
    const auto syndromes = sampleSyndromes(
        ctx, static_cast<int>(state.range(0)), 64);
    size_t i = 0;
    for (auto _ : state) {
        const DecodeResult result =
            decoder->decode(syndromes[i++ % syndromes.size()]);
        benchmark::DoNotOptimize(result.predictedObs);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_DecodeMwpm(benchmark::State &state)
{
    decoderBench(state, "mwpm");
}
BENCHMARK(BM_DecodeMwpm)->Arg(4)->Arg(8)->Arg(16);

void
BM_DecodePromatchAstrea(benchmark::State &state)
{
    decoderBench(state, "promatch_astrea");
}
BENCHMARK(BM_DecodePromatchAstrea)->Arg(4)->Arg(8)->Arg(16);

void
BM_DecodeAstreaG(benchmark::State &state)
{
    decoderBench(state, "astrea_g");
}
BENCHMARK(BM_DecodeAstreaG)->Arg(4)->Arg(8)->Arg(16);

void
BM_DecodeUnionFind(benchmark::State &state)
{
    decoderBench(state, "union_find");
}
BENCHMARK(BM_DecodeUnionFind)->Arg(4)->Arg(8)->Arg(16);

void
BM_DecodeBatchThreads(benchmark::State &state)
{
    // Threaded batch decode over per-worker clones: the scaling
    // knob behind LerOptions::threads.
    const auto &ctx = ExperimentContext::get(13, 1e-4);
    auto decoder =
        makeDecoder("promatch_astrea", ctx.graph(), ctx.paths());
    const auto batch = sampleSyndromes(ctx, 10, 256);
    const int threads = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto results =
            decoder->decodeBatch(batch, nullptr, threads);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_DecodeBatchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

MatchingProblem
randomDenseProblem(int n, uint64_t seed)
{
    Rng rng(seed);
    MatchingProblem problem;
    problem.n = n;
    problem.pairWeight.assign(static_cast<size_t>(n) * n, kNoEdge);
    problem.boundaryWeight.assign(n, 0.0);
    for (int i = 0; i < n; ++i) {
        problem.boundaryWeight[i] = 1.0 + rng.nextDouble();
        for (int j = i + 1; j < n; ++j) {
            problem.setPair(i, j, 1.0 + 10.0 * rng.nextDouble());
        }
    }
    return problem;
}

void
BM_BlossomRandomDense(benchmark::State &state)
{
    const MatchingProblem problem =
        randomDenseProblem(static_cast<int>(state.range(0)), 42);
    for (auto _ : state) {
        const MatchingSolution solution = solveBlossom(problem);
        benchmark::DoNotOptimize(solution.totalWeight);
    }
}
BENCHMARK(BM_BlossomRandomDense)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

void
BM_BlossomReuse(benchmark::State &state)
{
    // Regression guard for the workspace refactor: a reused
    // BlossomSolver must overwrite (not re-assign) its O(cap^2)
    // matrices, so a warm solver cycling over same-size instances
    // performs zero heap allocations per solve. Compare against
    // BM_BlossomRandomDense, which pays the cold-solver cost every
    // iteration.
    const int n = static_cast<int>(state.range(0));
    std::vector<MatchingProblem> problems;
    for (uint64_t seed = 0; seed < 8; ++seed) {
        problems.push_back(randomDenseProblem(n, 100 + seed));
    }
    BlossomSolver solver;
    MatchingSolution solution;
    size_t i = 0;
    for (auto _ : state) {
        solver.solve(problems[i++ % problems.size()], solution);
        benchmark::DoNotOptimize(solution.totalWeight);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlossomReuse)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

} // namespace

BENCHMARK_MAIN();
