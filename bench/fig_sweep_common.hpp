/**
 * @file
 * Shared driver for the Fig. 14 / Fig. 15 physical-error-rate
 * sweeps.
 *
 * The paper sweeps p in {1..5}x1e-4 for six decoder configurations.
 * We additionally extend the sweep into the directly-measurable
 * regime (p up to 1e-3) where the Eq. 1 estimator fully resolves, so
 * the decoder ordering and slopes can be checked without floor
 * effects (see EXPERIMENTS.md).
 */

#ifndef QEC_BENCH_FIG_SWEEP_COMMON_HPP
#define QEC_BENCH_FIG_SWEEP_COMMON_HPP

#include "bench_common.hpp"

namespace qecbench
{

inline int
runSweep(Bench &bench, int distance,
         double paper_parallel_gap_note)
{
    const char *configs[] = {"mwpm",          "promatch_par_ag",
                             "promatch_astrea", "astrea_g",
                             "smith_par_ag",  "smith_astrea"};
    const char *labels[] = {"MWPM",        "Promatch||AG",
                            "Promatch+Ast", "Astrea-G",
                            "Smith||AG",   "Smith+Ast"};

    qec::ReportTable table(
        "LER vs physical error rate, d = " +
            std::to_string(distance),
        {"p", labels[0], labels[1], labels[2], labels[3], labels[4],
         labels[5]});

    for (double p : {1e-4, 2e-4, 3e-4, 4e-4, 5e-4, 1e-3}) {
        const auto &ctx =
            qec::ExperimentContext::get(distance, p);
        std::vector<std::string> row = {qec::formatSci(p)};
        for (const char *config : configs) {
            if (!bench.specEnabled(config)) {
                row.push_back("-");
                continue;
            }
            row.push_back(qec::formatSci(
                bench.runLer(ctx, config, 700).ler));
        }
        table.addRow(row);
        std::printf("  done: p=%g\n", p);
    }
    bench.emit(table);
    std::printf(
        "\nPaper rows cover p in {1..5}e-4; the p=1e-3 row extends "
        "into the regime\nwhere every entry is resolved by direct "
        "sampling. Paper shape: Promatch||AG\nstays within %.1fx "
        "of MWPM across the sweep; Smith+Astrea is orders of\n"
        "magnitude worse; Astrea-G sits between.\n",
        paper_parallel_gap_note);
    return bench.finish();
}

} // namespace qecbench

#endif // QEC_BENCH_FIG_SWEEP_COMMON_HPP
