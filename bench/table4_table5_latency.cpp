/**
 * @file
 * Tables 4 and 5: latency of predecoding (Table 4) and of the full
 * Promatch + Astrea decode (Table 5) on high-HW syndromes
 * (HW >= 10), modeled at 250 MHz.
 *
 * Paper values (ns):
 *   Table 4 (predecode):        d11 max 824, avg 68.2;
 *                               d13 max 928, avg 70.0
 *   Table 5 (predecode+main):   d11 max 904, avg 524.2;
 *                               d13 max 960, avg 526.0
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

int
main()
{
    banner("Tables 4 & 5", "Promatch latency on high-HW syndromes");

    ReportTable t4("Table 4: predecode latency of high-HW "
                   "syndromes (ns)",
                   {"d", "max", "avg", "paper max", "paper avg"});
    ReportTable t5("Table 5: full decode latency of high-HW "
                   "syndromes (ns)",
                   {"d", "max", "avg", "paper max", "paper avg"});

    const struct
    {
        int d;
        double paper4_max, paper4_avg, paper5_max, paper5_avg;
    } rows[] = {
        {11, 824.0, 68.2, 904.0, 524.2},
        {13, 928.0, 70.0, 960.0, 526.0},
    };

    for (const auto &row : rows) {
        const auto &ctx = ExperimentContext::get(row.d, 1e-4);
        auto decoder = makeDecoder("promatch_astrea", ctx.graph(),
                                   ctx.paths());

        ImportanceSampler sampler(ctx.dem(), 24);
        Rng rng(0x1a7e);
        WeightedStats predecode_ns, total_ns;
        const uint64_t per_k = scaledSamples(400);
        for (int k = 5; k <= 24; ++k) {
            const double weight = sampler.occurrenceProb(k) /
                                  static_cast<double>(per_k);
            for (uint64_t s = 0; s < per_k; ++s) {
                const auto sample = sampler.sample(k, rng);
                // High-HW = the predecoder-engaging population.
                if (sample.defects.size() <= 10) {
                    continue;
                }
                DecodeTrace trace;
                const DecodeResult result =
                    decoder->decode(sample.defects, &trace);
                // The pipeline aborts at the effective budget
                // (960 ns), so observed latencies cap there.
                const double cap =
                    LatencyConfig{}.effectiveBudgetNs();
                predecode_ns.add(
                    std::min(trace.predecodeNs, cap), weight);
                total_ns.add(std::min(result.latencyNs, cap),
                             weight);
            }
        }

        t4.addRow({std::to_string(row.d),
                   formatFixed(predecode_ns.max(), 0),
                   formatFixed(predecode_ns.mean(), 1),
                   formatFixed(row.paper4_max, 0),
                   formatFixed(row.paper4_avg, 1)});
        t5.addRow({std::to_string(row.d),
                   formatFixed(total_ns.max(), 0),
                   formatFixed(total_ns.mean(), 1),
                   formatFixed(row.paper5_max, 0),
                   formatFixed(row.paper5_avg, 1)});
        std::printf("  done: d=%d (%zu high-HW samples)\n", row.d,
                    predecode_ns.count());
    }
    t4.print();
    t5.print();
    std::printf(
        "\nShape checks: predecode averages sit at tens of ns "
        "(most high-HW syndromes\nneed one or two rounds of Step "
        "1); full-decode averages are dominated by the\n~500 ns "
        "Astrea pass at HW 10; maxima approach but respect the "
        "960 ns budget.\n");
    return 0;
}
