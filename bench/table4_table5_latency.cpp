/**
 * @file
 * Tables 4 and 5: latency of predecoding (Table 4) and of the full
 * Promatch + Astrea decode (Table 5) on high-HW syndromes
 * (HW >= 10), modeled at 250 MHz.
 *
 * Paper values (ns):
 *   Table 4 (predecode):        d11 max 824, avg 68.2;
 *                               d13 max 928, avg 70.0
 *   Table 5 (predecode+main):   d11 max 904, avg 524.2;
 *                               d13 max 960, avg 526.0
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

int
main(int argc, char **argv)
{
    Bench bench(argc, argv, "table4_table5_latency",
                "Promatch latency on high-HW syndromes");

    ReportTable t4("Table 4: predecode latency of high-HW "
                   "syndromes (ns)",
                   {"d", "max", "avg", "paper max", "paper avg"});
    ReportTable t5("Table 5: full decode latency of high-HW "
                   "syndromes (ns)",
                   {"d", "max", "avg", "paper max", "paper avg"});

    const struct
    {
        int d;
        double paper4_max, paper4_avg, paper5_max, paper5_avg;
    } rows[] = {
        {11, 824.0, 68.2, 904.0, 524.2},
        {13, 928.0, 70.0, 960.0, 526.0},
    };

    for (const auto &row : rows) {
        const auto &ctx = ExperimentContext::get(row.d, 1e-4);
        auto decoder = makeDecoder(
            bench.specOr("promatch_astrea"), ctx.graph(),
            ctx.paths());

        // High-HW latency statistics ride on the parallel LER
        // engine's trace observer; samples replay in a fixed order,
        // so the statistics are thread-count independent.
        LerOptions options = bench.lerOptions(400);
        options.skipBelowK = 5; // k < 5 cannot produce HW > 10.
        options.seed = 0x1a7e;
        options.collectTraces = true; // Predecode ns is trace data.
        // High-HW = the predecoder-engaging population; skip the
        // decode for everything else.
        options.decodeFilter =
            [](int, const std::vector<uint32_t> &defects) {
                return defects.size() > 10;
            };
        WeightedStats predecode_ns, total_ns;
        estimateLer(
            ctx, *decoder, options,
            [&](const SampleView &view) {
                // The pipeline aborts at the effective budget
                // (960 ns), so observed latencies cap there.
                const double cap =
                    LatencyConfig{}.effectiveBudgetNs();
                predecode_ns.add(
                    std::min(view.trace->predecodeNs, cap),
                    view.weight);
                total_ns.add(
                    std::min(view.result.latencyNs, cap),
                    view.weight);
            });

        t4.addRow({std::to_string(row.d),
                   formatFixed(predecode_ns.max(), 0),
                   formatFixed(predecode_ns.mean(), 1),
                   formatFixed(row.paper4_max, 0),
                   formatFixed(row.paper4_avg, 1)});
        t5.addRow({std::to_string(row.d),
                   formatFixed(total_ns.max(), 0),
                   formatFixed(total_ns.mean(), 1),
                   formatFixed(row.paper5_max, 0),
                   formatFixed(row.paper5_avg, 1)});
        std::printf("  done: d=%d (%zu high-HW samples)\n", row.d,
                    predecode_ns.count());
    }
    bench.emit(t4);
    bench.emit(t5);
    std::printf(
        "\nShape checks: predecode averages sit at tens of ns "
        "(most high-HW syndromes\nneed one or two rounds of Step "
        "1); full-decode averages are dominated by the\n~500 ns "
        "Astrea pass at HW 10; maxima approach but respect the "
        "960 ns budget.\n");
    return bench.finish();
}
